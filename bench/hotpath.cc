// Allocation-free hot path (DESIGN.md §7): single-thread throughput
// and heap traffic of the scratch-arena + flat-propagation query
// engine against the classic engines it replaces.
//
// Workload, seed, strategy, and query count match the batch_resolve
// section of bench/throughput_parallel (BENCH_throughput_parallel.json)
// so qps is directly comparable across PRs. This binary links the
// counting allocator (util/alloc_counter.h), so every section also
// reports heap allocations per query; production binaries do not carry
// the counting hook.
//
// Each section prints one machine-readable line (prefixed "JSON ") for
// collection into BENCH_hotpath.json:
//
//   JSON {"bench":"hotpath","section":"batch_resolve","fast_path":true,...}
//
// `--smoke` shrinks the workload so CI finishes in well under 5s.
// `--audit` starts the audit log on a discard sink and `--shadow <N>`
// turns on 1-in-N shadow verification, so the DESIGN.md §9 overhead
// budget (≤2% with audit + shadow at N≥64) is measurable in place.

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/batch_resolver.h"
#include "core/persistent_system.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "core/system.h"
#include "obs/audit_log.h"
#include "obs/profiler.h"
#include "obs/shadow.h"
#include "util/alloc_counter.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/enterprise.h"
#include "workload/query_stream.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

// Same Livelink-shaped system as bench/throughput_parallel (seed and
// column rates included) so throughput numbers are comparable.
core::AccessControlSystem MakeSystem(uint64_t seed) {
  Random rng(seed);
  workload::EnterpriseOptions shape;  // Defaults = published shape stats.
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  if (!dag.ok()) std::abort();
  core::AccessControlSystem system(std::move(dag).value());

  const struct {
    const char* object;
    const char* right;
    double rate;
  } columns[] = {{"vault", "open", 0.01},   {"vault", "audit", 0.005},
                 {"wiki", "edit", 0.02},    {"wiki", "read", 0.01},
                 {"payroll", "read", 0.003}, {"payroll", "write", 0.002}};
  for (const auto& column : columns) {
    for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
      if (!rng.Bernoulli(column.rate)) continue;
      const std::string& name = system.dag().name(v);
      const Status status =
          rng.Bernoulli(0.3)
              ? system.DenyAccess(name, column.object, column.right)
              : system.Grant(name, column.object, column.right);
      if (!status.ok()) std::abort();
    }
  }
  return system;
}

struct SectionResult {
  const char* section;
  bool fast_path;
  size_t queries;
  double millis;
  double qps;
  double allocs_per_query;
  bool audit = false;
  uint64_t shadow_interval = 0;
};

std::string JsonLine(const SectionResult& r) {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "JSON {\"bench\":\"hotpath\",\"section\":\"%s\","
                "\"fast_path\":%s,\"threads\":1,\"queries\":%zu,"
                "\"millis\":%.3f,\"qps\":%.1f,\"allocs_per_query\":%.4f,"
                "\"audit\":%s,\"shadow_interval\":%llu}",
                r.section, r.fast_path ? "true" : "false", r.queries,
                r.millis, r.qps, r.allocs_per_query,
                r.audit ? "true" : "false",
                static_cast<unsigned long long>(r.shadow_interval));
  return buffer;
}

/// Times `run(queries)` and measures its heap traffic, after one
/// untimed warm-up pass that grows caches, arenas, and pools to their
/// steady-state footprint.
template <typename Body>
SectionResult Measure(const char* section, bool fast_path,
                      std::span<const core::AccessControlSystem::AccessQuery>
                          queries,
                      const Body& run) {
  run(queries);  // Warm-up: arenas/pools grow to steady state.
  const uint64_t allocs_before = AllocationCount();
  Stopwatch watch;
  run(queries);
  const double ms = watch.ElapsedMillis();
  const uint64_t allocs = AllocationCount() - allocs_before;
  const auto n = static_cast<double>(queries.size());
  return SectionResult{section, fast_path, queries.size(), ms,
                       n / (ms / 1000.0), static_cast<double>(allocs) / n};
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool audit = false;
  uint64_t shadow_interval = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--audit") == 0) audit = true;
    if (std::strcmp(argv[i], "--shadow") == 0 && i + 1 < argc) {
      shadow_interval = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (audit) {
    obs::AuditLogOptions options;
    options.sinks.push_back(std::make_unique<obs::DiscardSink>());
    obs::AuditLog::Global().Start(std::move(options));
  }
  obs::ShadowVerifier::Global().SetInterval(shadow_interval);
  // Telemetry timeline + exemplars on by default: the ≤2% overhead
  // budget and the 0-alloc property are measured with the full
  // observability stack live, not an idealized build. The cadence is
  // faster than the production 1 s default so even the smoke run
  // retains real points. UCR_BENCH_NO_TELEMETRY=1 gives the A/B
  // baseline for isolating sampler + health-engine cost.
  obs::SetExemplarThreshold(0);  // Every sampled query may leave one.
  if (std::getenv("UCR_BENCH_NO_TELEMETRY") == nullptr) {
    obs::TimeSeriesSampler::Options ts_options;
    ts_options.interval_ms = 100;
    obs::TimeSeriesSampler::Global().Start(ts_options);
    obs::HealthEngine::Global().Start(/*interval_ms=*/100);
  }

  constexpr uint64_t kSeed = 42;
  const size_t query_count = smoke ? 2000 : 30000;
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();
  const core::Strategy canonical = strategy.Canonical();

  core::AccessControlSystem system = MakeSystem(kSeed);
  workload::QueryStreamOptions stream;
  stream.count = query_count;
  stream.seed = kSeed + 1;
  auto queries =
      workload::GenerateQueryStream(system.dag(), system.eacm(), stream);
  if (!queries.ok()) std::abort();

  std::cout << "== Allocation-free hot path ==\n"
            << "enterprise hierarchy: " << system.dag().node_count()
            << " subjects, " << system.eacm().size()
            << " explicit authorizations; " << query_count
            << " hot-set queries, strategy D+LP-, 1 thread"
            << (smoke ? " (smoke)" : "");
  if (audit) std::cout << ", audit log on";
  if (shadow_interval != 0) {
    std::cout << ", shadow 1-in-" << shadow_interval;
  }
  std::cout << "\n\n";

  std::vector<SectionResult> results;

  // -- resolve_access: uncached end-to-end resolution per query. -----
  // The purest engine comparison: every query extracts, propagates,
  // and resolves from scratch. Fast path = scratch arena + flat kernel
  // + streaming resolve; classic = hash-map extraction + dense label
  // vector + per-node bag vectors.
  for (const bool fast_path : {false, true}) {
    core::ResolveAccessOptions options;
    options.use_fast_path = fast_path;
    results.push_back(Measure(
        "resolve_access", fast_path, *queries, [&](auto span) {
          for (const auto& q : span) {
            auto mode = core::ResolveAccess(system.dag(), system.eacm(),
                                            q.subject, q.object, q.right,
                                            canonical, options);
            if (!mode.ok()) std::abort();
          }
        }));
  }

  // -- resolve_access_wal: the fast workload against a system opened
  // from a durable store (mmap'd binary snapshot + WAL attached, one
  // committed batch in the log). Queries never touch the WAL, so
  // durability must cost the read path nothing: the smoke run
  // hard-asserts the section stays at zero allocations per query.
  {
    const char* tmpdir = std::getenv("TMPDIR");
    const std::string dir =
        std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
        "/ucr_hotpath_wal_" + std::to_string(static_cast<long>(::getpid()));
    if (!core::PersistentSystem::Initialize(dir, system).ok()) std::abort();
    auto store = core::PersistentSystem::Open(dir);
    if (!store.ok()) std::abort();
    const std::vector<core::AccessControlSystem::MutationOp> batch = {
        core::AccessControlSystem::MutationOp::Grant(
            store->system().dag().name(0), "wal_probe", "read")};
    if (!store->Apply(batch).ok()) std::abort();

    core::ResolveAccessOptions options;
    options.use_fast_path = true;
    const core::AccessControlSystem& stored = store->system();
    results.push_back(Measure(
        "resolve_access_wal", true, *queries, [&](auto span) {
          for (const auto& q : span) {
            auto mode = core::ResolveAccess(stored.dag(), stored.eacm(),
                                            q.subject, q.object, q.right,
                                            canonical, options);
            if (!mode.ok()) std::abort();
          }
        }));
    if (smoke && results.back().allocs_per_query != 0.0) {
      std::fprintf(stderr,
                   "FATAL: resolve_access_wal allocated %.4f per query; "
                   "the WAL-enabled hot path must stay allocation-free\n",
                   results.back().allocs_per_query);
      std::abort();
    }
    std::remove(core::PersistentSystem::SnapshotPath(dir).c_str());
    std::remove(core::PersistentSystem::WalPath(dir).c_str());
    ::rmdir(dir.c_str());
  }

  // -- batch_resolve: the serving path. A fresh resolver per pass
  // (cold caches), exactly like throughput_parallel's batch_resolve
  // @1 thread, so the qps trajectory across PRs stays comparable.
  // Allocations here include the caches filling up — the honest
  // serving cost; the steady-state zero-allocation property is the
  // resolve_access fast row and the regression test's concern.
  for (const bool fast_path : {false, true}) {
    core::BatchResolverOptions options;
    options.threads = 1;
    options.use_fast_path = fast_path;
    options.propagation_mode = system.propagation_mode();
    results.push_back(
        Measure("batch_resolve", fast_path, *queries, [&](auto span) {
          core::BatchResolver resolver(system.dag(), system.eacm(), options);
          auto batch = resolver.ResolveBatch(span, strategy);
          if (!batch.ok()) std::abort();
        }));
  }

  // -- profiled: the fast resolve_access workload re-run with the
  // continuous-profiling stack fully live — phase timers arming on
  // sampled queries plus the 97 Hz SIGPROF wall sampler. The overhead
  // against the profiler-idle fast row above is the number the ≤2%
  // budget (DESIGN.md §14) gates; the per-phase sums name the top
  // phases for the trend gate.
  double profiler_overhead_pct = 0.0;
  obs::WallProfiler::Stats prof_stats;
  char top_phases[128] = "";
  {
    std::array<uint64_t, obs::kPhaseCount> phase_before{};
    for (size_t i = 0; i < obs::kPhaseCount; ++i) {
      phase_before[i] =
          obs::Registry::Global()
              .GetHistogram(obs::PhaseMetricName(static_cast<obs::Phase>(i)),
                            "")
              .Snap()
              .sum;
    }
    obs::WallProfiler::Global().Start();
    core::ResolveAccessOptions options;
    options.use_fast_path = true;
    const SectionResult profiled = Measure(
        "resolve_access_profiled", true, *queries, [&](auto span) {
          for (const auto& q : span) {
            auto mode = core::ResolveAccess(system.dag(), system.eacm(),
                                            q.subject, q.object, q.right,
                                            canonical, options);
            if (!mode.ok()) std::abort();
          }
        });
    obs::WallProfiler::Global().Stop();
    prof_stats = obs::WallProfiler::Global().GetStats();
    results.push_back(profiled);
    // The profiler-idle fast resolve_access row is results[1].
    const double base_qps = results[1].qps;
    if (base_qps > 0) {
      profiler_overhead_pct = 100.0 * (base_qps - profiled.qps) / base_qps;
    }
    // Top-3 phases by attributed nanoseconds during the profiled pass.
    std::array<std::pair<uint64_t, size_t>, obs::kPhaseCount> ranked;
    for (size_t i = 0; i < obs::kPhaseCount; ++i) {
      const uint64_t sum =
          obs::Registry::Global()
              .GetHistogram(obs::PhaseMetricName(static_cast<obs::Phase>(i)),
                            "")
              .Snap()
              .sum;
      ranked[i] = {sum - phase_before[i], i};
    }
    std::sort(ranked.begin(), ranked.end(), std::greater<>());
    size_t written = 0;
    for (size_t i = 0; i < 3 && ranked[i].first > 0; ++i) {
      const int w = std::snprintf(
          top_phases + written, sizeof(top_phases) - written, "%s%s",
          written == 0 ? "" : ",",
          obs::PhaseName(static_cast<obs::Phase>(ranked[i].second)));
      if (w > 0) written += static_cast<size_t>(w);
    }
  }

  TablePrinter table(
      {"section", "engine", "total ms", "queries/s", "allocs/query"});
  for (const SectionResult& r : results) {
    table.AddRow({r.section, r.fast_path ? "fast" : "classic",
                  FormatDouble(r.millis, 1), FormatDouble(r.qps, 0),
                  FormatDouble(r.allocs_per_query, 4)});
  }
  table.Print(std::cout);

  std::cout << "\nThe fast rows run the DESIGN.md §7 hot path: epoch-stamped "
               "scratch arenas, one\npooled SoA bag buffer, sparse column "
               "staging, and streaming resolution — zero\nsteady-state heap "
               "allocations per query.\n\n";
  for (SectionResult& r : results) {
    r.audit = audit;
    r.shadow_interval = shadow_interval;
    std::cout << JsonLine(r) << "\n";
  }
  obs::HealthEngine::Global().Stop();
  obs::TimeSeriesSampler::Global().Stop();
  PublishAllocationGauge();  // ucr_heap_allocations joins the snapshot.
  ucr::bench_obs::EmitMetricsSnapshot("hotpath");
  ucr::bench_obs::EmitTimeseriesSummary("hotpath");
  // Continuous-profiling summary (gated by tools/bench_trend.py like
  // timeseries_summary): the overhead of running phase timers + the
  // 97 Hz wall sampler, the achieved sampling rate, and the phases
  // that dominated the profiled pass.
  std::printf(
      "JSON {\"bench\":\"hotpath\",\"section\":\"profiler_summary\","
      "\"overhead_pct\":%.2f,\"samples_total\":%llu,"
      "\"samples_per_sec\":%.1f,\"dropped_total\":%llu,"
      "\"threads_seen\":%u,\"top_phases\":\"%s\"}\n",
      profiler_overhead_pct,
      static_cast<unsigned long long>(prof_stats.samples_total),
      prof_stats.samples_per_sec,
      static_cast<unsigned long long>(prof_stats.dropped_total),
      prof_stats.threads_seen, top_phases);
  obs::ShadowVerifier::Global().SetInterval(0);
  if (audit) obs::AuditLog::Global().Stop();
  return 0;
}
