// Figure 7(a): Resolve() vs Dominance() on the enterprise hierarchy.
//
// The paper ran both algorithms over every individual user (sink) of
// an 8000-node / 22,000-edge Livelink installation at a 0.7%
// authorization rate, plotting CPU time against d (the total length
// of all label paths into the sink) and reporting a 27% average
// overhead of the unified Resolve() over the specialized Dominance().
// The proprietary hierarchy is replaced by a shape-matched synthetic
// one (see DESIGN.md, Substitution); Dominance() is averaged over 1%,
// 50%, and 100% negative placements exactly as published.
//
// Flags:
//   --small       scaled-down hierarchy (fast smoke run)
//   --sinks N     measure only the first N sinks
//   --scatter     dump the raw per-sink (d, resolve_us, dominance_us)

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/experiments.h"

#include "bench_obs.h"

int main(int argc, char** argv) {
  using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

  workload::EnterpriseExperimentOptions options;
  bool scatter = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      options.enterprise.individuals = 200;
      options.enterprise.groups = 700;
      options.enterprise.top_level_groups = 12;
      options.enterprise.target_edges = 2400;
    } else if (std::strcmp(argv[i], "--sinks") == 0 && i + 1 < argc) {
      uint64_t n = 0;
      if (!ParseUint64(argv[++i], &n)) {
        std::cerr << "bad --sinks value\n";
        return 2;
      }
      options.max_sinks = static_cast<size_t>(n);
    } else if (std::strcmp(argv[i], "--scatter") == 0) {
      scatter = true;
    } else {
      std::cerr << "usage: fig7a_livelink [--small] [--sinks N] [--scatter]\n";
      return 2;
    }
  }

  auto result = workload::RunEnterpriseExperiment(options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  const workload::EnterpriseStats& hs = result->hierarchy_stats;
  std::cout << "== Figure 7(a): Resolve() vs Dominance() ==\n"
            << "Hierarchy: " << hs.nodes << " nodes, " << hs.edges
            << " edges, " << hs.sinks << " sinks, sub-graph depths "
            << hs.min_sink_depth << ".." << hs.max_sink_depth << "\n"
            << "Authorization rate 0.7%; Dominance averaged over 1%/50%/100% "
               "negative placements.\n\n";

  if (scatter) {
    std::cout << "d\tnodes\tresolve_us\tdominance_us\n";
    for (const workload::SinkMeasurement& m : result->rows) {
      std::printf("%llu\t%zu\t%.2f\t%.2f\n",
                  static_cast<unsigned long long>(m.d), m.subgraph_nodes,
                  m.resolve_us, m.dominance_us);
    }
    std::cout << "\n";
  }

  // Bin by d (the paper's x axis) and print the two series.
  std::vector<workload::SinkMeasurement> rows = result->rows;
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.d < b.d; });
  const size_t bins = 10;
  TablePrinter table({"d range", "sinks", "Resolve mean us",
                      "Dominance mean us", "Dominance/Resolve"});
  for (size_t b = 0; b < bins && !rows.empty(); ++b) {
    const size_t lo = rows.size() * b / bins;
    const size_t hi = rows.size() * (b + 1) / bins;
    if (lo >= hi) continue;
    RunningStats resolve_us;
    RunningStats dominance_us;
    for (size_t i = lo; i < hi; ++i) {
      resolve_us.Add(rows[i].resolve_us);
      dominance_us.Add(rows[i].dominance_us);
    }
    const std::string range = std::to_string(rows[lo].d) + ".." +
                              std::to_string(rows[hi - 1].d);
    table.AddRow({range, std::to_string(hi - lo),
                  FormatDouble(resolve_us.Mean(), 2),
                  FormatDouble(dominance_us.Mean(), 2),
                  FormatDouble(resolve_us.Mean() > 0
                                   ? dominance_us.Mean() / resolve_us.Mean()
                                   : 0.0,
                               2)});
  }
  table.Print(std::cout);

  std::printf(
      "\nAverages over all sinks:\n"
      "  Resolve():   %.2f us   (placement-independent)\n"
      "  Dominance(): %.2f us   (mean over the three placements)\n"
      "  Wall-clock overhead of the unified algorithm: %+.1f%%\n"
      "  Work-unit overhead (tuples vs path steps):    %+.1f%%\n"
      "  (paper: +27%% wall-clock on a 2007 DBMS testbed, where one tuple\n"
      "   and one path step cost about the same; our in-memory engines "
      "have\n   different per-unit constants, so the work-unit ratio is "
      "the\n   substrate-independent comparison.)\n",
      result->resolve_mean_us, result->dominance_mean_us,
      result->resolve_overhead_pct, result->resolve_work_overhead_pct);

  size_t dominance_faster = 0;
  size_t dominance_slower = 0;
  size_t dominance_more_work = 0;
  for (const auto& m : result->rows) {
    if (m.dominance_us < m.resolve_us) {
      ++dominance_faster;
    } else {
      ++dominance_slower;
    }
    if (m.dominance_steps > static_cast<double>(m.resolve_tuples)) {
      ++dominance_more_work;
    }
  }
  std::printf(
      "  Dominance faster on %zu/%zu sinks, slower on %zu; does MORE work "
      "than\n  Resolve on %zu sinks (paper: \"can fall anywhere below ... "
      "occasionally\n  higher\").\n",
      dominance_faster, result->rows.size(), dominance_slower,
      dominance_more_work);
  ucr::bench_obs::EmitMetricsSnapshot("fig7a_livelink");
  return 0;
}
