// Regenerates the paper's Tables 1–4 from the Fig. 1 fixture and
// checks each against the published values. This is the exactness
// harness: the timing figures live in the fig6/fig7 binaries.
//
// Exit status is non-zero if any regenerated table deviates.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/paper_example.h"
#include "core/propagate.h"
#include "core/relalg_impl.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/ancestor_subgraph.h"
#include "util/table_printer.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

int failures = 0;

void Check(bool ok, const std::string& what) {
  if (!ok) {
    ++failures;
    std::cout << "  MISMATCH: " << what << "\n";
  }
}

// Table 2's published modes, in AllStrategies() mnemonic lookup form.
const std::map<std::string, char>& Table2Expected() {
  static const auto& m = *new std::map<std::string, char>{
      {"D+LMP+", '+'}, {"D+LMP-", '+'}, {"D-LMP+", '-'}, {"D-LMP-", '-'},
      {"D+GMP+", '+'}, {"D+GMP-", '+'}, {"D-GMP+", '+'}, {"D-GMP-", '-'},
      {"D+MP+", '+'},  {"D+MP-", '+'},  {"D-MP+", '-'},  {"D-MP-", '-'},
      {"D+LP+", '+'},  {"D+LP-", '-'},  {"D-LP+", '+'},  {"D-LP-", '-'},
      {"D+GP+", '+'},  {"D+GP-", '+'},  {"D-GP+", '+'},  {"D-GP-", '-'},
      {"D+P+", '+'},   {"D+P-", '-'},   {"D-P+", '+'},   {"D-P-", '-'},
      {"LMP+", '+'},   {"LMP-", '-'},   {"GMP+", '+'},   {"GMP-", '+'},
      {"MP+", '+'},    {"MP-", '+'},    {"LP+", '+'},    {"LP-", '-'},
      {"GP+", '+'},    {"GP-", '+'},    {"P+", '+'},     {"P-", '-'},
      {"D+MLP+", '+'}, {"D+MLP-", '+'}, {"D-MLP+", '-'}, {"D-MLP-", '-'},
      {"D+MGP+", '+'}, {"D+MGP-", '+'}, {"D-MGP+", '-'}, {"D-MGP-", '-'},
      {"MLP+", '+'},   {"MLP-", '+'},   {"MGP+", '+'},   {"MGP-", '+'},
  };
  return m;
}

}  // namespace

int main() {
  const core::PaperExample ex = core::MakePaperExample();
  const graph::AncestorSubgraph sub(ex.dag, ex.user);
  const auto labels =
      ex.eacm.ExtractLabels(ex.dag.node_count(), ex.obj, ex.read);

  // ---------------- Table 1 ----------------
  std::cout << "== Table 1: all read authorizations of User on obj ==\n";
  const core::RightsBag bag = core::PropagateAggregated(sub, labels);
  TablePrinter t1({"subject", "object", "right", "dis", "mode"});
  for (const core::RightsEntry& e : bag.entries()) {
    for (uint64_t i = 0; i < e.multiplicity; ++i) {
      t1.AddRow({"User", "obj", "read", std::to_string(e.dis),
                 std::string(1, acm::PropagatedModeToChar(e.mode))});
    }
  }
  t1.Print(std::cout);
  Check(bag.TotalTuples() == 6, "Table 1 must contain 6 tuples");
  Check(bag.ToString() == "{1:+, 1:-, 1:d, 2:d, 3:+, 3:d}",
        "Table 1 contents (got " + bag.ToString() + ")");

  // ---------------- Table 4 ----------------
  std::cout << "\n== Table 4: the full propagation relation P ==\n";
  const relalg::Relation sdag = core::BuildSdagRelation(ex.dag);
  const relalg::Relation eacm_rel = core::BuildEacmRelation(ex.eacm, ex.dag);
  auto p = core::PropagateRelalgFullP(sdag, eacm_rel, "User", "obj", "read");
  if (!p.ok()) {
    std::cerr << p.status().ToString() << "\n";
    return 1;
  }
  relalg::Relation sorted = *p;
  sorted.SortRows();
  std::cout << sorted.ToString();
  Check(p->size() == 15, "Table 4 must contain 15 tuples (got " +
                             std::to_string(p->size()) + ")");

  // ---------------- Table 2 ----------------
  std::cout << "\n== Table 2: resolved authorization per strategy ==\n";
  TablePrinter t2({"strategy", "mode", "published", "match"});
  for (const core::Strategy& s : core::AllStrategies()) {
    const char got = acm::ModeToChar(core::Resolve(bag, s));
    const char want = Table2Expected().at(s.ToMnemonic());
    t2.AddRow({s.ToMnemonic(), std::string(1, got), std::string(1, want),
               got == want ? "yes" : "NO"});
    Check(got == want, "Table 2 strategy " + s.ToMnemonic());
  }
  t2.Print(std::cout);

  // ---------------- Table 3 ----------------
  std::cout << "\n== Table 3: trace of Resolve() ==\n"
            << "(MGP-: the published row c1=1,c2=0 contradicts Fig. 4 and "
               "the paper's own\n prose; the Fig. 4 semantics give c1=2,"
               "c2=1 with the same decision.)\n";
  struct Expect {
    const char* mnemonic;
    const char* c1;
    const char* c2;
    const char* auth;
    char mode;
    int line;
  };
  const Expect expected[] = {
      {"D+LMP+", "2", "1", "n/a", '+', 6}, {"D-GMP-", "1", "1", "+,-", '-', 9},
      {"D-MP-", "2", "4", "n/a", '-', 6},  {"D-LP+", "n/a", "n/a", "+,-", '+', 9},
      {"D+GP-", "n/a", "n/a", "+", '+', 8}, {"GMP-", "1", "0", "n/a", '+', 6},
      {"P-", "n/a", "n/a", "+,-", '-', 9}, {"MGP-", "2", "1", "n/a", '+', 6},
  };
  TablePrinter t3({"strategy", "c1", "c2", "Auth", "mode", "line"});
  for (const Expect& e : expected) {
    auto strategy = core::ParseStrategy(e.mnemonic);
    core::ResolveTrace trace;
    const char got = acm::ModeToChar(core::Resolve(bag, *strategy, &trace));
    t3.AddRow({e.mnemonic, trace.C1ToString(), trace.C2ToString(),
               trace.AuthToString(), std::string(1, got),
               std::to_string(trace.returned_line)});
    Check(trace.C1ToString() == e.c1 && trace.C2ToString() == e.c2 &&
              trace.AuthToString() == e.auth && got == e.mode &&
              trace.returned_line == e.line,
          std::string("Table 3 strategy ") + e.mnemonic);
  }
  t3.Print(std::cout);

  std::cout << "\n"
            << (failures == 0 ? "ALL TABLES MATCH the publication."
                              : "TABLES DEVIATE from the publication!")
            << "\n";
  ucr::bench_obs::EmitMetricsSnapshot("repro_tables");
  return failures == 0 ? 0 : 1;
}
