// Reachability-index scale bench (R1, DESIGN.md §12): Resolve() on a
// million-subject layered hierarchy in microseconds.
//
// The hierarchy is `GenerateScaleLayeredDag` (layer-contiguous ids,
// every edge descends exactly one layer); explicit labels are confined
// to the top layers and drawn from a handful of role templates, so the
// supernode classes stay few and the per-node profile labels stay far
// under the build budgets — the regime the index is designed for.
//
// Sections (one "JSON " row each, for BENCH_reach_scale.json):
//
//   build        full ReachabilityIndex::Build (qps = builds/s), plus
//                the index size counters
//   indexed      ResolveAccess with the index: O(label) bag compose
//   classic      the same queries through the PR 2 hot path (ancestor
//                sub-graph extraction) — the cost the index removes
//   incremental  RebuildIncremental latency across sink-level
//                membership edits (the "new hire" write path)
//   indexed_after  indexed queries against the last rebuilt generation
//
// The run aborts on any indexed-vs-classic decision divergence, so the
// smoke run doubles as a correctness gate. --smoke shrinks the graph
// to 2^16 nodes. (This shape is too densely reachable for the 2-hop
// labels at either size — the budget abort is itself exercised — so
// `Reaches` would use the interval-filtered traversal; the profile
// labels the bench measures are unaffected.)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "acm/acm.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

struct Workload {
  graph::Dag dag;
  acm::ExplicitAcm eacm;
  acm::ObjectId object = 0;
  acm::RightId right = 0;
};

/// Role templates: every labeled subject gets one template's whole
/// row, so the number of distinct (row, root-ness) classes — and with
/// it the per-node label width — is bounded by design, not by luck.
Workload MakeWorkload(size_t nodes, size_t layers, Random& rng) {
  graph::ScaleLayeredDagOptions shape;
  shape.nodes = nodes;
  shape.layers = layers;
  shape.parents_per_node = 2;
  auto dag = graph::GenerateScaleLayeredDag(shape, rng);
  if (!dag.ok()) std::abort();
  Workload w{std::move(dag).value(), {}, 0, 0};

  const acm::ObjectId doc = w.eacm.InternObject("doc").value();
  const acm::ObjectId vault = w.eacm.InternObject("vault").value();
  const acm::RightId read = w.eacm.InternRight("read").value();
  const acm::RightId write = w.eacm.InternRight("write").value();
  w.object = doc;
  w.right = read;

  struct TemplateEntry {
    acm::ObjectId object;
    acm::RightId right;
    acm::Mode mode;
  };
  const std::vector<std::vector<TemplateEntry>> templates = {
      {{doc, read, acm::Mode::kPositive}},
      {{doc, read, acm::Mode::kNegative}},
      {{doc, read, acm::Mode::kPositive}, {doc, write, acm::Mode::kPositive}},
      {{doc, read, acm::Mode::kNegative}, {vault, read, acm::Mode::kNegative}},
  };

  // Layer 0 (roots) is labeled densely, layer 1 sparsely; everything
  // below is pure folded interior.
  const size_t layer0_end = nodes / layers;
  const size_t layer1_end = 2 * nodes / layers;
  for (graph::NodeId v = 0; v < w.dag.node_count(); ++v) {
    const double rate = v < layer0_end ? 0.3 : (v < layer1_end ? 0.02 : 0.0);
    if (rate == 0.0) break;  // Layer-contiguous ids: nothing below.
    if (!rng.Bernoulli(rate)) continue;
    const auto& row = templates[static_cast<size_t>(
        rng.Uniform(static_cast<uint64_t>(templates.size())))];
    for (const TemplateEntry& e : row) {
      if (!w.eacm.Set(v, e.object, e.right, e.mode).ok()) std::abort();
    }
  }
  return w;
}

struct SectionResult {
  double millis = 0.0;
  uint64_t count = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

uint64_t Percentile(std::vector<uint64_t>& v, double p) {
  if (v.empty()) return 0;
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  std::nth_element(v.begin(),
                   v.begin() + static_cast<std::ptrdiff_t>(idx), v.end());
  return v[idx];
}

SectionResult Summarize(std::vector<uint64_t>& latencies) {
  SectionResult r;
  r.count = latencies.size();
  uint64_t total = 0;
  for (const uint64_t ns : latencies) total += ns;
  r.millis = static_cast<double>(total) / 1e6;
  r.p50_ns = Percentile(latencies, 0.50);
  r.p99_ns = Percentile(latencies, 0.99);
  return r;
}

void EmitRow(const char* section, size_t nodes, const SectionResult& r) {
  const double qps =
      r.millis > 0.0 ? static_cast<double>(r.count) / (r.millis / 1e3) : 0.0;
  std::printf(
      "JSON {\"bench\":\"reach_scale\",\"section\":\"%s\",\"nodes\":%zu,"
      "\"queries\":%llu,\"millis\":%.3f,\"qps\":%.1f,\"p50_ns\":%llu,"
      "\"p99_ns\":%llu}\n",
      section, nodes, static_cast<unsigned long long>(r.count), r.millis, qps,
      static_cast<unsigned long long>(r.p50_ns),
      static_cast<unsigned long long>(r.p99_ns));
}

/// Folded-stack triage for the acceptance gate: how much of the
/// sampled wall time symbolized to a *named* leaf frame, as opposed
/// to "[unknown]", a bare hex pc, or the module+offset fallback.
struct FoldedAttribution {
  uint64_t total = 0;  ///< Samples across every folded line.
  uint64_t named = 0;  ///< Samples whose leaf frame carries a symbol.
};

FoldedAttribution AttributeFolded(const std::string& folded) {
  FoldedAttribution a;
  size_t pos = 0;
  while (pos < folded.size()) {
    size_t eol = folded.find('\n', pos);
    if (eol == std::string::npos) eol = folded.size();
    const std::string line = folded.substr(pos, eol - pos);
    pos = eol + 1;
    // Count is after the last space; demangled frames may themselves
    // contain spaces (template arguments), so split from the right.
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) continue;
    const uint64_t count =
        std::strtoull(line.c_str() + space + 1, nullptr, 10);
    if (count == 0) continue;
    const std::string stack = line.substr(0, space);
    const size_t semi = stack.rfind(';');
    const std::string leaf =
        semi == std::string::npos ? stack : stack.substr(semi + 1);
    a.total += count;
    const bool unnamed = leaf.empty() || leaf == "[unknown]" ||
                         leaf.compare(0, 2, "0x") == 0 ||
                         leaf.find("+0x") != std::string::npos;
    if (!unnamed) a.named += count;
  }
  return a;
}

acm::Mode MustResolve(const Workload& w, graph::NodeId subject,
                      const core::Strategy& strategy,
                      const core::ResolveAccessOptions& options,
                      const graph::ReachabilityIndex* index) {
  auto mode = core::ResolveAccess(w.dag, w.eacm, subject, w.object, w.right,
                                  strategy, options, nullptr, nullptr, index);
  if (!mode.ok()) {
    std::cerr << "FATAL: ResolveAccess failed: " << mode.status().message()
              << "\n";
    std::abort();
  }
  return mode.value();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const size_t kNodes = smoke ? (size_t{1} << 16) : (size_t{1} << 20);
  const size_t kLayers = smoke ? 16 : 24;
  const size_t kQueries = smoke ? 2000 : 20000;
  const size_t kClassicQueries = smoke ? 200 : 50;
  const size_t kVerifyQueries = smoke ? 128 : 64;
  const size_t kEdits = smoke ? 8 : 16;

  // UCR_BENCH_PROFILE=1 runs the whole bench under the §14 wall-clock
  // sampler and reports the named-frame attribution of the folded
  // profile at the end (acceptance gate: >= 90% of sampled time).
  const bool profile = std::getenv("UCR_BENCH_PROFILE") != nullptr;
  if (profile && !obs::WallProfiler::Global().Start()) {
    std::cerr << "FATAL: UCR_BENCH_PROFILE set but the profiler refused "
              << "to start (already running, or metrics compiled out)\n";
    return 1;
  }

  Random rng(20260808);
  Workload w = MakeWorkload(kNodes, kLayers, rng);
  const core::Strategy strategy;  // P- canonical.
  std::cout << "reach_scale: " << w.dag.node_count() << " subjects, "
            << w.eacm.size() << " explicit authorizations"
            << (smoke ? " (smoke)" : "") << "\n\n";

  // Query mix: sinks in the last layer — the deepest subjects, whose
  // ancestor cones (and therefore classic extractions) are largest.
  const size_t last_layer_begin = (kLayers - 1) * kNodes / kLayers;
  std::vector<graph::NodeId> subjects(kQueries);
  for (graph::NodeId& s : subjects) {
    s = static_cast<graph::NodeId>(
        last_layer_begin + rng.Uniform(kNodes - last_layer_begin));
  }

  // -- build ---------------------------------------------------------
  const uint64_t t_build = obs::NowNs();
  std::shared_ptr<const graph::ReachabilityIndex> index =
      graph::ReachabilityIndex::Build(w.dag, w.eacm.epoch(),
                                      w.eacm.ReachRows());
  const double build_ms =
      static_cast<double>(obs::NowNs() - t_build) / 1e6;
  const graph::ReachabilityIndex::IndexStats istats = index->stats();
  if (!istats.ready) {
    std::cerr << "FATAL: index build tripped a budget on the bench shape\n";
    std::abort();
  }
  std::printf(
      "JSON {\"bench\":\"reach_scale\",\"section\":\"build\",\"nodes\":%zu,"
      "\"queries\":1,\"millis\":%.3f,\"qps\":%.3f,\"supernodes\":%zu,"
      "\"folded_nodes\":%zu,\"label_entries\":%zu,\"label_bytes\":%zu,"
      "\"two_hop\":%s}\n",
      kNodes, build_ms, build_ms > 0.0 ? 1e3 / build_ms : 0.0,
      istats.supernodes, istats.folded_nodes, istats.label_entries,
      istats.label_bytes, istats.two_hop_ready ? "true" : "false");

  // -- indexed -------------------------------------------------------
  core::ResolveAccessOptions indexed_options;
  std::vector<uint64_t> latencies;
  latencies.reserve(kQueries);
  for (const graph::NodeId s : subjects) {
    const uint64_t t0 = obs::NowNs();
    (void)MustResolve(w, s, strategy, indexed_options, index.get());
    latencies.push_back(obs::NowNs() - t0);
  }
  const SectionResult indexed = Summarize(latencies);
  EmitRow("indexed", kNodes, indexed);

  // -- classic -------------------------------------------------------
  core::ResolveAccessOptions classic_options;
  classic_options.use_reachability_index = false;
  latencies.clear();
  for (size_t i = 0; i < kClassicQueries; ++i) {
    const graph::NodeId s = subjects[i % subjects.size()];
    const uint64_t t0 = obs::NowNs();
    (void)MustResolve(w, s, strategy, classic_options, nullptr);
    latencies.push_back(obs::NowNs() - t0);
  }
  const SectionResult classic = Summarize(latencies);
  EmitRow("classic", kNodes, classic);

  // -- differential gate ---------------------------------------------
  for (size_t i = 0; i < kVerifyQueries; ++i) {
    const graph::NodeId s = subjects[i];
    const acm::Mode a = MustResolve(w, s, strategy, indexed_options,
                                    index.get());
    const acm::Mode b = MustResolve(w, s, strategy, classic_options, nullptr);
    if (a != b) {
      std::cerr << "FATAL: indexed/classic divergence on subject " << s
                << "\n";
      std::abort();
    }
  }

  // -- incremental ---------------------------------------------------
  // Sink-level membership churn: re-parent one last-layer subject per
  // edit (the affected set is just that subject), then derive the next
  // index generation incrementally.
  latencies.clear();
  for (size_t i = 0; i < kEdits; ++i) {
    const graph::NodeId child = subjects[i];
    const size_t parent_lo = (kLayers - 2) * kNodes / kLayers;
    graph::NodeId parent;
    Status status;
    do {
      parent = static_cast<graph::NodeId>(
          parent_lo + rng.Uniform(last_layer_begin - parent_lo));
      std::vector<graph::NodeId> affected;
      status = w.dag.InsertEdge(parent, child, &affected);
      if (!status.ok()) continue;
      const uint64_t t0 = obs::NowNs();
      index = graph::ReachabilityIndex::RebuildIncremental(
          w.dag, w.eacm.epoch(), index, affected, {});
      latencies.push_back(obs::NowNs() - t0);
    } while (!status.ok());
    if (!index->ready()) {
      std::cerr << "FATAL: incremental rebuild tripped a budget\n";
      std::abort();
    }
  }
  const SectionResult incremental = Summarize(latencies);
  EmitRow("incremental", kNodes, incremental);

  // -- indexed_after -------------------------------------------------
  // The rebuilt generation answers — and still matches the oracle.
  latencies.clear();
  for (const graph::NodeId s : subjects) {
    const uint64_t t0 = obs::NowNs();
    (void)MustResolve(w, s, strategy, indexed_options, index.get());
    latencies.push_back(obs::NowNs() - t0);
  }
  const SectionResult indexed_after = Summarize(latencies);
  EmitRow("indexed_after", kNodes, indexed_after);
  for (size_t i = 0; i < kVerifyQueries; ++i) {
    const graph::NodeId s = subjects[i];
    const acm::Mode a = MustResolve(w, s, strategy, indexed_options,
                                    index.get());
    const acm::Mode b = MustResolve(w, s, strategy, classic_options, nullptr);
    if (a != b) {
      std::cerr << "FATAL: post-rebuild indexed/classic divergence on "
                << "subject " << s << "\n";
      std::abort();
    }
  }

  TablePrinter table({"section", "count", "total ms", "p50 us", "p99 us"});
  auto add_row = [&](const char* name, const SectionResult& r) {
    table.AddRow({name, std::to_string(r.count),
                  FormatDouble(r.millis, 1),
                  FormatDouble(static_cast<double>(r.p50_ns) / 1000.0, 1),
                  FormatDouble(static_cast<double>(r.p99_ns) / 1000.0, 1)});
  };
  add_row("indexed", indexed);
  add_row("classic", classic);
  add_row("incremental", incremental);
  add_row("indexed_after", indexed_after);
  std::cout << "\n" << table.ToString() << "\n";

  bench_obs::EmitMetricsSnapshot("reach_scale");

  if (profile) {
    obs::WallProfiler& wp = obs::WallProfiler::Global();
    const obs::WallProfiler::Stats pstats = wp.GetStats();
    wp.Stop();
    const FoldedAttribution attr = AttributeFolded(wp.RenderFolded());
    const double named_pct =
        attr.total > 0
            ? 100.0 * static_cast<double>(attr.named) /
                  static_cast<double>(attr.total)
            : 0.0;
    std::printf(
        "profile: %llu samples (%.0f/s), %llu dropped, %u threads, "
        "%.1f%% of sampled time in named leaf frames\n",
        static_cast<unsigned long long>(pstats.samples_total),
        pstats.samples_per_sec,
        static_cast<unsigned long long>(pstats.dropped_total),
        pstats.threads_seen, named_pct);
    if (attr.total == 0 || named_pct < 90.0) {
      std::cerr << "FATAL: named-frame attribution below the 90% gate\n";
      return 1;
    }
  }
  return 0;
}
