// Read-path churn: reader latency under concurrent mutation, epoch
// snapshots vs a lock-guarded classic baseline (DESIGN.md §11).
//
// One writer thread applies continuous ApplyMutations batches
// (membership toggles + grant/revoke churn, each batch publishing a
// fresh snapshot) while N reader threads resolve a hot query stream.
// Four sections:
//
//   snapshot_idle    readers on CheckAccessSnapshot, writer quiet
//   snapshot_churn   readers on CheckAccessSnapshot, writer churning
//   locked_idle      readers on classic CheckAccess under one shared
//                    mutex (the facade's caches are unsynchronized, so
//                    concurrent classic readers *must* serialize)
//   locked_churn     same, writer churning under the same mutex
//
// The headline contract: snapshot reader p99 stays flat under churn
// (p99_vs_idle ≈ 1) and the reader path acquires ZERO locks — the
// container is 1-CPU, so the win must be argued via the contention
// counters (`ucr_lock_acquisitions_total`, `ucr_lock_wait_ns`), not
// wall-clock speedups: the baseline's lock counters climb with every
// query while the snapshot sections' stay exactly still. The zero-
// reader-locks property is asserted (abort), making the smoke run a
// real regression gate; the latency ratio is reported for
// tools/bench_trend.py's p99 gate.
//
// Each section prints one machine-readable JSON line (prefixed
// "JSON ") for BENCH_read_churn.json.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/strategy.h"
#include "core/system.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/enterprise.h"
#include "workload/query_stream.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

using Query = core::AccessControlSystem::AccessQuery;

core::AccessControlSystem MakeSystem(uint64_t seed) {
  Random rng(seed);
  workload::EnterpriseOptions shape;  // Defaults = published shape stats.
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  if (!dag.ok()) std::abort();
  core::AccessControlSystem system(std::move(dag).value());

  const struct {
    const char* object;
    const char* right;
    double rate;
  } columns[] = {{"vault", "open", 0.01},    {"vault", "audit", 0.005},
                 {"wiki", "edit", 0.02},     {"wiki", "read", 0.01},
                 {"payroll", "read", 0.003}, {"payroll", "write", 0.002}};
  for (const auto& column : columns) {
    for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
      if (!rng.Bernoulli(column.rate)) continue;
      const std::string& name = system.dag().name(v);
      const Status status =
          rng.Bernoulli(0.3)
              ? system.DenyAccess(name, column.object, column.right)
              : system.Grant(name, column.object, column.right);
      if (!status.ok()) std::abort();
    }
  }
  return system;
}

/// The writer's churn batch: one membership toggle on a sink (affected
/// set = that one user) plus one rights toggle on a hot column — both
/// mutation axes move, so every batch lapses some carried state and
/// publishes a fresh epoch.
struct ChurnPlan {
  std::string parent;
  std::string child;
  std::string rights_subject;
};

ChurnPlan PlanChurn(const core::AccessControlSystem& system) {
  ChurnPlan plan;
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    if (system.dag().children(v).empty() &&
        !system.dag().parents(v).empty()) {
      plan.child = system.dag().name(v);
      plan.parent = system.dag().name(system.dag().parents(v).front());
      plan.rights_subject = system.dag().name(
          v + 1 < system.dag().node_count() ? v + 1 : 0);
      return plan;
    }
  }
  std::abort();
}

struct SectionResult {
  double millis = 0.0;
  uint64_t queries = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  uint64_t mutations = 0;
  uint64_t publications = 0;
  uint64_t lock_acquisitions = 0;  ///< Reader-path lock delta.
  uint64_t lock_wait_ns = 0;       ///< Reader-path contended wait delta.
};

uint64_t Percentile(std::vector<uint64_t>& latencies, double p) {
  if (latencies.empty()) return 0;
  const size_t idx = std::min(
      latencies.size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies.size())));
  std::nth_element(
      latencies.begin(),
      latencies.begin() + static_cast<std::ptrdiff_t>(idx),
      latencies.end());
  return latencies[idx];
}

/// Runs one section: `threads` readers sweep `queries` (each recording
/// per-query latency), optionally against a churning writer. In locked
/// mode every query serializes on `mu` through the instrumented lock
/// (obs::LockWithMetrics), which is what populates the ucr_lock_*
/// family the snapshot sections must keep flat.
SectionResult RunSection(core::AccessControlSystem& system,
                         std::span<const Query> queries, size_t threads,
                         bool use_snapshot, bool churn,
                         const ChurnPlan& plan) {
  static std::mutex classic_mu;
  const core::Strategy strategy = system.strategy();

  obs::LockWaitMetrics& reader_locks = obs::GetLockWaitMetrics();
  const uint64_t acq0 = reader_locks.acquisitions.Value();
  const uint64_t wait0 = reader_locks.wait_ns.Snap().sum;
  const uint64_t pub0 = system.snapshot_reads_enabled()
                            ? system.snapshots()->published_total()
                            : 0;

  std::atomic<bool> stop_writer{false};
  std::atomic<uint64_t> mutations{0};
  std::thread writer;
  if (churn) {
    writer = std::thread([&] {
      // Sections share the system, so both toggles must be seeded from
      // the actual current state, not assumed. The rights toggle is
      // grant/revoke (never grant/deny: SetMode rejects a deny over an
      // existing grant as a contradiction, so a blind flip would fail
      // on its second batch).
      bool edge_present = system.dag().HasEdge(
          system.dag().FindNode(plan.parent),
          system.dag().FindNode(plan.child));
      const auto vault = system.eacm().FindObject("vault");
      const auto open = system.eacm().FindRight("open");
      if (!vault.ok() || !open.ok()) std::abort();
      bool entry_present =
          system.eacm()
              .Get(system.dag().FindNode(plan.rights_subject), *vault, *open)
              .has_value();
      while (!stop_writer.load(std::memory_order_relaxed)) {
        std::vector<core::AccessControlSystem::MutationOp> ops;
        ops.push_back(
            edge_present
                ? core::AccessControlSystem::MutationOp::RemoveMember(
                      plan.parent, plan.child)
                : core::AccessControlSystem::MutationOp::AddMember(
                      plan.parent, plan.child));
        ops.push_back(
            entry_present ? core::AccessControlSystem::MutationOp::Revoke(
                          plan.rights_subject, "vault", "open")
                    : core::AccessControlSystem::MutationOp::Grant(
                          plan.rights_subject, "vault", "open"));
        if (use_snapshot) {
          if (!system.ApplyMutations(ops).ok()) std::abort();
        } else {
          // The classic baseline has no publication protocol: the
          // writer takes the same global lock the readers hold for
          // every query (write-family metrics, so the reader-family
          // comparison stays clean).
          obs::ScopedMetricsLock lock(classic_mu,
                                      obs::GetWriteLockMetrics());
          if (!system.ApplyMutations(ops).ok()) std::abort();
        }
        edge_present = !edge_present;
        entry_present = !entry_present;
        mutations.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });
  }

  std::vector<std::vector<uint64_t>> latencies(threads);
  std::vector<std::thread> readers;
  readers.reserve(threads);
  const uint64_t t_section0 = obs::NowNs();
  for (size_t t = 0; t < threads; ++t) {
    readers.emplace_back([&, t] {
      std::vector<uint64_t>& local = latencies[t];
      local.reserve(queries.size());
      // Offset start points so readers do not move in lockstep.
      const size_t offset = (t * queries.size()) / threads;
      // Churn sections keep sweeping until the writer has actually
      // landed a few batches: a warm sweep finishes in single-digit
      // milliseconds on one core, faster than the scheduler gives the
      // writer a slot, and a "churn" row measured against one mutation
      // proves nothing. Capped so a stalled writer cannot hang the
      // bench.
      constexpr uint64_t kMinMutations = 8;
      constexpr size_t kMaxSweeps = 50;
      size_t total = queries.size();
      for (size_t i = 0; i < total; ++i) {
        if (churn && i + 1 == total &&
            mutations.load(std::memory_order_relaxed) < kMinMutations &&
            total < kMaxSweeps * queries.size()) {
          total += queries.size();
        }
        const Query& q = queries[(i + offset) % queries.size()];
        const uint64_t t0 = obs::NowNs();
        if (use_snapshot) {
          if (!system.CheckAccessSnapshot(q.subject, q.object, q.right)
                   .ok()) {
            std::abort();
          }
        } else {
          obs::ScopedMetricsLock lock(classic_mu, reader_locks);
          if (!system.CheckAccess(q.subject, q.object, q.right, strategy)
                   .ok()) {
            std::abort();
          }
        }
        local.push_back(obs::NowNs() - t0);
      }
    });
  }
  for (std::thread& r : readers) r.join();
  const uint64_t t_section1 = obs::NowNs();
  if (churn) {
    stop_writer.store(true, std::memory_order_relaxed);
    writer.join();
  }

  SectionResult result;
  result.millis =
      static_cast<double>(t_section1 - t_section0) / 1e6;
  std::vector<uint64_t> merged;
  merged.reserve(threads * queries.size());
  for (const auto& local : latencies) {
    merged.insert(merged.end(), local.begin(), local.end());
  }
  result.queries = merged.size();
  result.p50_ns = Percentile(merged, 0.50);
  result.p99_ns = Percentile(merged, 0.99);
  result.mutations = mutations.load();
  result.publications = system.snapshot_reads_enabled()
                            ? system.snapshots()->published_total() - pub0
                            : 0;
  result.lock_acquisitions = reader_locks.acquisitions.Value() - acq0;
  result.lock_wait_ns = reader_locks.wait_ns.Snap().sum - wait0;

  // The tentpole property, enforced rather than eyeballed: the
  // snapshot read path acquires zero reader-path locks no matter what
  // the writer does. (Trivially true with UCR_METRICS=OFF, where the
  // counters are inert — the instrumented build is the gate.)
  if (use_snapshot && result.lock_acquisitions != 0) {
    std::cerr << "FATAL: snapshot section acquired "
              << result.lock_acquisitions << " reader-path locks\n";
    std::abort();
  }
  return result;
}

std::string JsonLine(const char* section, size_t threads,
                     const SectionResult& r, double p99_vs_idle) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "JSON {\"bench\":\"read_churn\",\"section\":\"%s\",\"threads\":%zu,"
      "\"queries\":%llu,\"millis\":%.3f,\"qps\":%.1f,"
      "\"p50_ns\":%llu,\"p99_ns\":%llu,\"p99_vs_idle\":%.3f,"
      "\"mutations\":%llu,\"publications\":%llu,"
      "\"lock_acquisitions\":%llu,\"lock_wait_ns\":%llu}",
      section, threads, static_cast<unsigned long long>(r.queries),
      r.millis,
      r.millis > 0.0 ? static_cast<double>(r.queries) / (r.millis / 1000.0)
                     : 0.0,
      static_cast<unsigned long long>(r.p50_ns),
      static_cast<unsigned long long>(r.p99_ns), p99_vs_idle,
      static_cast<unsigned long long>(r.mutations),
      static_cast<unsigned long long>(r.publications),
      static_cast<unsigned long long>(r.lock_acquisitions),
      static_cast<unsigned long long>(r.lock_wait_ns));
  return buffer;
}

void AddRow(TablePrinter& table, const char* name, const SectionResult& r,
            double p99_vs_idle) {
  table.AddRow({name, FormatDouble(r.millis, 1),
                FormatDouble(static_cast<double>(r.p50_ns) / 1000.0, 1),
                FormatDouble(static_cast<double>(r.p99_ns) / 1000.0, 1),
                FormatDouble(p99_vs_idle, 2) + "x",
                std::to_string(r.mutations),
                std::to_string(r.lock_acquisitions)});
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t threads = 2;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<size_t>(std::atoi(argv[++i]));
      if (threads == 0) threads = 1;
    }
  }

  constexpr uint64_t kSeed = 42;
  const size_t kQueries = smoke ? 1500 : 20000;

  core::AccessControlSystem system = MakeSystem(kSeed);
  system.EnableSnapshotReads();
  const ChurnPlan plan = PlanChurn(system);

  workload::QueryStreamOptions stream;
  stream.count = kQueries;
  stream.seed = kSeed + 1;
  auto queries =
      workload::GenerateQueryStream(system.dag(), system.eacm(), stream);
  if (!queries.ok()) std::abort();

  std::cout << "== Read churn: epoch snapshots vs lock-guarded classic ==\n"
            << "enterprise hierarchy: " << system.dag().node_count()
            << " subjects, " << system.eacm().size()
            << " explicit authorizations; " << threads << " readers x "
            << kQueries << " queries per section, writer churning "
            << "membership + rights batches"
            << (smoke ? " (smoke)" : "") << "\n\n";

  // Snapshot sections first (cold start is the snapshot path's own),
  // then the locked baseline on the same system and stream.
  const SectionResult snap_idle = RunSection(
      system, *queries, threads, /*use_snapshot=*/true, /*churn=*/false,
      plan);
  const SectionResult snap_churn = RunSection(
      system, *queries, threads, /*use_snapshot=*/true, /*churn=*/true,
      plan);
  const SectionResult locked_idle = RunSection(
      system, *queries, threads, /*use_snapshot=*/false, /*churn=*/false,
      plan);
  const SectionResult locked_churn = RunSection(
      system, *queries, threads, /*use_snapshot=*/false, /*churn=*/true,
      plan);

  const auto ratio = [](const SectionResult& churn,
                        const SectionResult& idle) {
    return idle.p99_ns == 0 ? 0.0
                            : static_cast<double>(churn.p99_ns) /
                                  static_cast<double>(idle.p99_ns);
  };
  const double snap_ratio = ratio(snap_churn, snap_idle);
  const double locked_ratio = ratio(locked_churn, locked_idle);

  TablePrinter table({"section", "total ms", "p50 us", "p99 us",
                      "p99 vs idle", "mutations", "reader locks"});
  AddRow(table, "snapshot idle", snap_idle, 1.0);
  AddRow(table, "snapshot churn", snap_churn, snap_ratio);
  AddRow(table, "locked idle", locked_idle, 1.0);
  AddRow(table, "locked churn", locked_churn, locked_ratio);
  table.Print(std::cout);

  std::cout << "\nSnapshot readers pin an epoch and never lock: their "
               "reader-lock column is\nexactly zero (asserted) while the "
               "locked baseline pays one acquisition per\nquery and its "
               "ucr_lock_wait_ns climbs under churn. On a 1-CPU box the\n"
               "contention counters, not wall-clock, carry the argument.\n\n";
  std::cout << JsonLine("snapshot_idle", threads, snap_idle, 1.0) << "\n";
  std::cout << JsonLine("snapshot_churn", threads, snap_churn, snap_ratio)
            << "\n";
  std::cout << JsonLine("locked_idle", threads, locked_idle, 1.0) << "\n";
  std::cout << JsonLine("locked_churn", threads, locked_churn, locked_ratio)
            << "\n";
  ucr::bench_obs::EmitMetricsSnapshot("read_churn");
  return 0;
}
