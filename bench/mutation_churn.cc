// Write-path churn: interleaves membership edits with a hot-set query
// stream and measures steady-state throughput under the two cache
// invalidation policies — reachability-scoped (DESIGN.md §10, the
// default) vs the full clear it replaced
// (SystemOptions::incremental_hierarchy_updates = false).
//
// The workload models an enterprise directory under routine churn: one
// user's membership toggles every kQueriesPerMutation queries. The
// affected set of such an edit is that single user (sinks have no
// descendants), so scoped invalidation keeps every other subject's
// cached sub-graph and decisions warm; the full-clear baseline
// re-derives the whole hot set after every edit.
//
// Each section prints one machine-readable JSON line (prefixed
// "JSON ") for BENCH_mutation_churn.json; tools/bench_trend.py tracks
// the qps trajectory across PRs.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include "core/cache.h"
#include "core/strategy.h"
#include "core/system.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/enterprise.h"
#include "workload/query_stream.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

constexpr size_t kQueriesPerMutation = 100;

// Livelink-shaped hierarchy with explicit labels scattered over
// several (object, right) columns — the throughput_parallel workload,
// minus the thread sweep.
core::AccessControlSystem MakeSystem(uint64_t seed, bool incremental) {
  Random rng(seed);
  workload::EnterpriseOptions shape;  // Defaults = published shape stats.
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  if (!dag.ok()) std::abort();
  core::SystemOptions options;
  options.incremental_hierarchy_updates = incremental;
  core::AccessControlSystem system(std::move(dag).value(), options);

  const struct {
    const char* object;
    const char* right;
    double rate;
  } columns[] = {{"vault", "open", 0.01},    {"vault", "audit", 0.005},
                 {"wiki", "edit", 0.02},     {"wiki", "read", 0.01},
                 {"payroll", "read", 0.003}, {"payroll", "write", 0.002}};
  for (const auto& column : columns) {
    for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
      if (!rng.Bernoulli(column.rate)) continue;
      const std::string& name = system.dag().name(v);
      const Status status =
          rng.Bernoulli(0.3)
              ? system.DenyAccess(name, column.object, column.right)
              : system.Grant(name, column.object, column.right);
      if (!status.ok()) std::abort();
    }
  }
  return system;
}

struct ChurnResult {
  double millis = 0.0;
  size_t mutations = 0;
  double resolution_hit_rate = 0.0;
  double subgraph_hit_rate = 0.0;
};

double Rate(uint64_t hits, uint64_t misses) {
  const uint64_t total = hits + misses;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

/// One churn run: warms the caches with an untimed pass, then times
/// the query stream with one membership toggle every
/// kQueriesPerMutation queries. Hit rates come from the monotonic
/// registry counters, which — unlike the per-cache stats — survive the
/// full-clear baseline's resets.
ChurnResult RunChurn(core::AccessControlSystem& system,
                     std::span<const core::AccessControlSystem::AccessQuery>
                         queries,
                     const core::Strategy& strategy) {
  // The churned edge: the first sink (an individual; sinks have no
  // descendants, so the affected set is exactly that user) together
  // with its first parent group.
  graph::NodeId churn_child = graph::kInvalidNode;
  graph::NodeId churn_parent = graph::kInvalidNode;
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    if (system.dag().children(v).empty() &&
        !system.dag().parents(v).empty()) {
      churn_child = v;
      churn_parent = system.dag().parents(v).front();
      break;
    }
  }
  if (churn_child == graph::kInvalidNode) std::abort();
  const std::string parent_name = system.dag().name(churn_parent);
  const std::string child_name = system.dag().name(churn_child);

  for (const auto& q : queries) {
    if (!system.CheckAccess(q.subject, q.object, q.right, strategy).ok()) {
      std::abort();
    }
  }

  const core::internal::CacheMetrics& metrics =
      core::internal::GetCacheMetrics();
  const uint64_t res_hits0 = metrics.resolution_hits.Value();
  const uint64_t res_misses0 = metrics.resolution_misses.Value();
  const uint64_t sub_hits0 = metrics.subgraph_hits.Value();
  const uint64_t sub_misses0 = metrics.subgraph_misses.Value();

  ChurnResult result;
  bool edge_present = true;
  Stopwatch watch;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i % kQueriesPerMutation == kQueriesPerMutation - 1) {
      const Status status =
          edge_present ? system.RemoveMembership(parent_name, child_name)
                       : system.AddMembership(parent_name, child_name);
      if (!status.ok()) std::abort();
      edge_present = !edge_present;
      ++result.mutations;
    }
    const auto& q = queries[i];
    if (!system.CheckAccess(q.subject, q.object, q.right, strategy).ok()) {
      std::abort();
    }
  }
  result.millis = watch.ElapsedMillis();
  result.resolution_hit_rate =
      Rate(metrics.resolution_hits.Value() - res_hits0,
           metrics.resolution_misses.Value() - res_misses0);
  result.subgraph_hit_rate =
      Rate(metrics.subgraph_hits.Value() - sub_hits0,
           metrics.subgraph_misses.Value() - sub_misses0);
  return result;
}

std::string JsonLine(const char* section, size_t queries,
                     const ChurnResult& r, double qps, double speedup) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "JSON {\"bench\":\"mutation_churn\",\"section\":\"%s\","
      "\"threads\":1,\"queries\":%zu,\"mutations\":%zu,\"millis\":%.3f,"
      "\"qps\":%.1f,\"speedup_vs_full_clear\":%.3f,"
      "\"resolution_hit_rate\":%.4f,\"subgraph_hit_rate\":%.4f}",
      section, queries, r.mutations, r.millis, qps, speedup,
      r.resolution_hit_rate, r.subgraph_hit_rate);
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  constexpr uint64_t kSeed = 42;
  const size_t kQueries = smoke ? 2000 : 50000;
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();

  // Both runs use identical hierarchies, labels, and query streams;
  // only the invalidation policy differs.
  core::AccessControlSystem full_clear = MakeSystem(kSeed, false);
  core::AccessControlSystem incremental = MakeSystem(kSeed, true);
  workload::QueryStreamOptions stream;
  stream.count = kQueries;
  stream.seed = kSeed + 1;
  auto queries = workload::GenerateQueryStream(incremental.dag(),
                                               incremental.eacm(), stream);
  if (!queries.ok()) std::abort();

  std::cout << "== Write-path churn: scoped invalidation vs full clear ==\n"
            << "enterprise hierarchy: " << incremental.dag().node_count()
            << " subjects, " << incremental.eacm().size()
            << " explicit authorizations; " << kQueries
            << " hot-set queries, one membership toggle per "
            << kQueriesPerMutation << " queries, strategy D+LP-"
            << (smoke ? " (smoke)" : "") << "\n\n";

  const ChurnResult clear_result = RunChurn(full_clear, *queries, strategy);
  const ChurnResult incr_result = RunChurn(incremental, *queries, strategy);

  const double clear_qps =
      static_cast<double>(kQueries) / (clear_result.millis / 1000.0);
  const double incr_qps =
      static_cast<double>(kQueries) / (incr_result.millis / 1000.0);
  const double speedup = clear_result.millis / incr_result.millis;

  TablePrinter table({"invalidation", "total ms", "queries/s",
                      "resolution hits", "subgraph hits", "speedup"});
  table.AddRow({"full clear", FormatDouble(clear_result.millis, 1),
                FormatDouble(clear_qps, 0),
                FormatDouble(100.0 * clear_result.resolution_hit_rate, 1) +
                    "%",
                FormatDouble(100.0 * clear_result.subgraph_hit_rate, 1) + "%",
                "1.00x"});
  table.AddRow({"scoped (affected set)",
                FormatDouble(incr_result.millis, 1), FormatDouble(incr_qps, 0),
                FormatDouble(100.0 * incr_result.resolution_hit_rate, 1) +
                    "%",
                FormatDouble(100.0 * incr_result.subgraph_hit_rate, 1) + "%",
                FormatDouble(speedup, 2) + "x"});
  table.Print(std::cout);

  std::cout << "\nEach edit's affected set is one user, so scoped "
               "invalidation drops one\nsubject's entries and the hot set "
               "stays warm; the full clear re-derives\nevery hot subject "
               "from scratch after every edit.\n\n";
  std::cout << JsonLine("full_clear", kQueries, clear_result, clear_qps, 1.0)
            << "\n";
  std::cout << JsonLine("incremental", kQueries, incr_result, incr_qps,
                        speedup)
            << "\n";
  ucr::bench_obs::EmitMetricsSnapshot("mutation_churn");
  return 0;
}
