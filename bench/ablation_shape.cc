// Ablation A7 — hierarchy-shape sensitivity: how does DAG-ness (extra
// group memberships on top of the nesting tree) drive the paper's
// cost metric d and the algorithms' running time?
//
// §5 argues tree-based solutions are inadequate because real subject
// hierarchies are DAGs; this harness quantifies what the D in DAG
// costs: sweeping the extra-membership budget from tree-like to
// heavily cross-linked while holding nodes constant.

#include <cstdio>
#include <iostream>

#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/experiments.h"

#include "bench_obs.h"

int main() {
  using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

  std::cout << "== Ablation: tree-like vs DAG-heavy hierarchies ==\n"
            << "(2100 nodes held constant; extra memberships swept; rate "
               "0.7%, strategy D+LP-)\n\n";

  TablePrinter table({"edges", "edges/node", "mean d", "p90 d", "max depth",
                      "Resolve us", "Dominance us"});
  for (size_t target_edges : {size_t{2050}, size_t{3000}, size_t{4500}, size_t{6800}, size_t{10000}, size_t{15000}}) {
    workload::EnterpriseExperimentOptions options;
    options.enterprise.individuals = 500;
    options.enterprise.groups = 1600;
    options.enterprise.top_level_groups = 20;
    options.enterprise.target_edges = target_edges;
    options.timing_reps = 2;
    options.seed = 17;

    auto result = workload::RunEnterpriseExperiment(options);
    if (!result.ok()) {
      std::cerr << result.status().ToString() << "\n";
      return 1;
    }
    RunningStats d_stats;
    std::vector<double> ds;
    uint32_t depth = 0;
    RunningStats resolve_us;
    RunningStats dominance_us;
    for (const workload::SinkMeasurement& m : result->rows) {
      d_stats.Add(static_cast<double>(m.d));
      ds.push_back(static_cast<double>(m.d));
      depth = std::max(depth, m.subgraph_depth);
      resolve_us.Add(m.resolve_us);
      dominance_us.Add(m.dominance_us);
    }
    const size_t edges = result->hierarchy_stats.edges;
    table.AddRow(
        {std::to_string(edges),
         FormatDouble(static_cast<double>(edges) /
                          static_cast<double>(result->hierarchy_stats.nodes),
                      2),
         FormatDouble(d_stats.Mean(), 0), FormatDouble(Quantile(ds, 0.9), 0),
         std::to_string(depth), FormatDouble(resolve_us.Mean(), 2),
         FormatDouble(dominance_us.Mean(), 2)});
  }
  table.Print(std::cout);

  std::cout
      << "\nAt ~1 edge/node the hierarchy is a forest and d stays near the "
         "depth; each\nextra membership multiplies paths, driving d — and "
         "Resolve()'s literal cost —\nsuper-linearly while the hierarchy "
         "size never changes. This is §5's point:\ntree-only solutions "
         "dodge exactly the regime real systems live in.\n";
  ucr::bench_obs::EmitMetricsSnapshot("ablation_shape");
  return 0;
}
