// Figure 7(b): total path length (d) vs number of nodes in each
// sink's ancestor sub-graph, on the enterprise hierarchy.
//
// The paper's point: sub-graphs with many subjects do not necessarily
// have large d, so the exponential worst case of §3.3 does not bite in
// practice. The harness prints the joint distribution (binned by
// sub-graph size) plus the correlation, and flags the worst observed
// d / nodes ratio.
//
// Flags:  --small   scaled-down hierarchy

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/experiments.h"

#include "bench_obs.h"

int main(int argc, char** argv) {
  using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

  workload::EnterpriseExperimentOptions options;
  options.timing_reps = 1;  // This figure is structural, not timed.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      options.enterprise.individuals = 200;
      options.enterprise.groups = 700;
      options.enterprise.top_level_groups = 12;
      options.enterprise.target_edges = 2400;
    } else {
      std::cerr << "usage: fig7b_paths_vs_nodes [--small]\n";
      return 2;
    }
  }

  auto result = workload::RunEnterpriseExperiment(options);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return 1;
  }

  std::cout << "== Figure 7(b): total path length vs sub-graph size ==\n\n";

  std::vector<workload::SinkMeasurement> rows = result->rows;
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.subgraph_nodes < b.subgraph_nodes;
  });

  const size_t bins = 8;
  TablePrinter table(
      {"sub-graph nodes", "sinks", "mean d", "min d", "max d", "max depth"});
  for (size_t b = 0; b < bins && !rows.empty(); ++b) {
    const size_t lo = rows.size() * b / bins;
    const size_t hi = rows.size() * (b + 1) / bins;
    if (lo >= hi) continue;
    RunningStats d_stats;
    uint32_t depth = 0;
    for (size_t i = lo; i < hi; ++i) {
      d_stats.Add(static_cast<double>(rows[i].d));
      depth = std::max(depth, rows[i].subgraph_depth);
    }
    table.AddRow({std::to_string(rows[lo].subgraph_nodes) + ".." +
                      std::to_string(rows[hi - 1].subgraph_nodes),
                  std::to_string(hi - lo), FormatDouble(d_stats.Mean(), 0),
                  FormatDouble(d_stats.Min(), 0),
                  FormatDouble(d_stats.Max(), 0), std::to_string(depth)});
  }
  table.Print(std::cout);

  // Correlation between |H| and d (log-log fit, since both span
  // orders of magnitude).
  std::vector<double> xs;
  std::vector<double> ys;
  double worst_ratio = 0.0;
  size_t worst_nodes = 0;
  for (const auto& m : rows) {
    xs.push_back(std::log10(static_cast<double>(m.subgraph_nodes)));
    ys.push_back(std::log10(static_cast<double>(std::max<uint64_t>(m.d, 1))));
    const double ratio =
        static_cast<double>(m.d) / static_cast<double>(m.subgraph_nodes);
    if (ratio > worst_ratio) {
      worst_ratio = ratio;
      worst_nodes = m.subgraph_nodes;
    }
  }
  const LinearFit fit = FitLine(xs, ys);
  std::printf(
      "\nlog10(d) ~= %.2f + %.2f * log10(nodes)   (R^2 = %.3f)\n"
      "Worst observed d/nodes ratio: %.1f (at %zu nodes) — polynomial, not\n"
      "exponential: the diamond-stack blow-up of §3.3 does not occur in\n"
      "organization-shaped hierarchies.\n",
      fit.intercept, fit.slope, fit.r_squared, worst_ratio, worst_nodes);
  ucr::bench_obs::EmitMetricsSnapshot("fig7b_paths_vs_nodes");
  return 0;
}
