// Figure 6: Function Propagate() on synthetic data.
//
// Reproduces the paper's KDAG stress test: random complete DAGs of
// three sizes, explicit authorizations assigned to 0.5%–10% of edge
// sources, Propagate() CPU time averaged over repeated random
// placements. The published claim — running time linearly
// proportional to the authorization rate — is checked with a least-
// squares fit per size (R^2 printed).
//
// Flags:
//   --quick       5 repetitions instead of the paper's 20
//   --sizes a,b,c KDAG sizes (default 14,17,20; literal-engine cost is
//                 O(n + d) and d ~ 2^n, so keep n modest)

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "util/stats.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/experiments.h"

#include "bench_obs.h"

int main(int argc, char** argv) {
  using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

  workload::KdagSweepOptions options;
  options.repetitions = 20;  // The paper's setting.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      options.repetitions = 5;
    } else if (std::strcmp(argv[i], "--sizes") == 0 && i + 1 < argc) {
      options.sizes.clear();
      for (const std::string& tok : Split(argv[++i], ',')) {
        uint64_t n = 0;
        if (!ParseUint64(Trim(tok), &n) || n < 2) {
          std::cerr << "bad size '" << tok << "'\n";
          return 2;
        }
        options.sizes.push_back(static_cast<size_t>(n));
      }
    } else {
      std::cerr << "usage: fig6_kdag_sweep [--quick] [--sizes a,b,c]\n";
      return 2;
    }
  }

  std::cout << "== Figure 6: Propagate() on synthetic KDAGs ==\n"
            << "(paper-literal tuple engine; " << options.repetitions
            << " random placements per point)\n\n";

  auto rows = workload::RunKdagSweep(options);
  if (!rows.ok()) {
    std::cerr << rows.status().ToString() << "\n";
    return 1;
  }

  TablePrinter table({"n", "rate %", "mean us", "stddev us", "mean tuples",
                      "mean labeled"});
  for (const workload::KdagSweepRow& row : *rows) {
    table.AddRow({std::to_string(row.n), FormatDouble(row.rate * 100.0, 1),
                  FormatDouble(row.mean_us, 1),
                  FormatDouble(row.stddev_us, 1),
                  FormatDouble(row.mean_tuples, 0),
                  FormatDouble(row.mean_labeled, 1)});
  }
  table.Print(std::cout);

  // The published takeaway: time grows linearly with the rate.
  std::cout << "\nLinearity of CPU time vs authorization rate:\n";
  for (size_t n : options.sizes) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const workload::KdagSweepRow& row : *rows) {
      if (row.n != n) continue;
      xs.push_back(row.rate);
      ys.push_back(row.mean_us);
    }
    const LinearFit fit = FitLine(xs, ys);
    std::printf(
        "  KDAG(%zu): time_us ~= %.1f + %.1f * rate   (R^2 = %.3f)\n", n,
        fit.intercept, fit.slope, fit.r_squared);
  }
  std::cout << "\nPaper: \"for small authorization rates ... the running "
               "time is linearly\nproportional to the authorization rates\" "
               "— reproduced if R^2 is near 1.\n";
  ucr::bench_obs::EmitMetricsSnapshot("fig6_kdag_sweep");
  return 0;
}
