// Google-benchmark microbenchmarks of the relational-algebra engine —
// the substrate of the paper-literal reference implementation. These
// size the fidelity tax measured end-to-end by ablation_relalg.

#include <benchmark/benchmark.h>

#include <string>

#include "core/paper_example.h"
#include "core/relalg_impl.h"
#include "relalg/operators.h"
#include "relalg/relation.h"
#include "util/random.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.
using relalg::Relation;
using relalg::Row;
using relalg::Schema;
using relalg::Value;
using relalg::ValueType;

Relation MakeRights(size_t rows, uint64_t seed) {
  static const char* kSubjects[] = {"u1", "u2", "u3", "u4", "u5"};
  static const char* kModes[] = {"+", "-", "d"};
  Random rng(seed);
  Relation r{Schema({{"subject", ValueType::kString},
                     {"dis", ValueType::kInt},
                     {"mode", ValueType::kString}})};
  for (size_t i = 0; i < rows; ++i) {
    r.AppendUnchecked(Row{Value(kSubjects[rng.Uniform(5)]),
                          Value(static_cast<int64_t>(rng.Uniform(8))),
                          Value(kModes[rng.Uniform(3)])});
  }
  return r;
}

Relation MakeEdges(size_t rows, uint64_t seed) {
  Random rng(seed);
  Relation r{Schema({{"subject", ValueType::kString},
                     {"child", ValueType::kString}})};
  for (size_t i = 0; i < rows; ++i) {
    r.AppendUnchecked(
        Row{Value("u" + std::to_string(rng.Uniform(40))),
            Value("u" + std::to_string(40 + rng.Uniform(40)))});
  }
  return r;
}

void BM_SelectEquals(benchmark::State& state) {
  const Relation r = MakeRights(static_cast<size_t>(state.range(0)), 1);
  const Value d{"d"};
  for (auto _ : state) {
    auto out = relalg::SelectEquals(r, "mode", d);
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_SelectEquals)->Arg(64)->Arg(1024);

void BM_Project(benchmark::State& state) {
  const Relation r = MakeRights(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    auto out = relalg::Project(r, {"mode"});
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_Project)->Arg(64)->Arg(1024);

void BM_NaturalJoin(benchmark::State& state) {
  const Relation rights = MakeRights(static_cast<size_t>(state.range(0)), 3);
  const Relation edges = MakeEdges(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    Relation out = relalg::NaturalJoin(rights, edges);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_NaturalJoin)->Arg(64)->Arg(512)->Arg(2048);

void BM_Distinct(benchmark::State& state) {
  const Relation r = MakeRights(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    Relation out = relalg::Distinct(r);
    benchmark::DoNotOptimize(out.size());
  }
}
BENCHMARK(BM_Distinct)->Arg(64)->Arg(1024);

void BM_Difference(benchmark::State& state) {
  const Relation a = MakeRights(static_cast<size_t>(state.range(0)), 6);
  const Relation b = MakeRights(static_cast<size_t>(state.range(0)) / 2, 7);
  for (auto _ : state) {
    auto out = relalg::Difference(a, b);
    benchmark::DoNotOptimize(out->size());
  }
}
BENCHMARK(BM_Difference)->Arg(64)->Arg(1024);

void BM_AncestorsFixpoint(benchmark::State& state) {
  const core::PaperExample ex = core::MakePaperExample();
  const Relation sdag = core::BuildSdagRelation(ex.dag);
  for (auto _ : state) {
    auto anc = core::AncestorsRelalg(sdag, "User");
    benchmark::DoNotOptimize(anc->size());
  }
}
BENCHMARK(BM_AncestorsFixpoint);

void BM_PropagateRelalgPaperExample(benchmark::State& state) {
  const core::PaperExample ex = core::MakePaperExample();
  const Relation sdag = core::BuildSdagRelation(ex.dag);
  const Relation eacm = core::BuildEacmRelation(ex.eacm, ex.dag);
  for (auto _ : state) {
    auto rights = core::PropagateRelalg(sdag, eacm, "User", "obj", "read");
    benchmark::DoNotOptimize(rights->size());
  }
}
BENCHMARK(BM_PropagateRelalgPaperExample);

void BM_ResolveRelalgPerStrategy(benchmark::State& state) {
  const core::PaperExample ex = core::MakePaperExample();
  const Relation sdag = core::BuildSdagRelation(ex.dag);
  const Relation eacm = core::BuildEacmRelation(ex.eacm, ex.dag);
  auto rights = core::PropagateRelalg(sdag, eacm, "User", "obj", "read");
  if (!rights.ok()) std::abort();
  const core::Strategy strategy =
      core::AllStrategies()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    auto mode = core::ResolveRelalg(*rights, strategy);
    benchmark::DoNotOptimize(mode.ok());
  }
  state.SetLabel(strategy.ToMnemonic());
}
BENCHMARK(BM_ResolveRelalgPerStrategy)->Arg(1)->Arg(9)->Arg(13);

}  // namespace

BENCHMARK_MAIN();
