// Throughput of the parallel query-evaluation layer: sweeps thread
// counts over a Livelink-shaped enterprise workload and reports
// queries/sec, cache hit rates, and parallel effective-matrix
// materialization times.
//
// Each swept config also prints one machine-readable JSON line
// (prefixed "JSON ") so the perf trajectory can be tracked across PRs
// by collecting them into BENCH_*.json:
//
//   JSON {"bench":"throughput_parallel","section":"batch_resolve",...}
//
// Caveat for interpreting results: speedup is bounded by the cores the
// host actually grants (nproc); on a 1-core container every thread
// count serializes and the sweep measures synchronization overhead
// only.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/batch_resolver.h"
#include "core/effective_matrix.h"
#include "core/strategy.h"
#include "core/system.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"
#include "workload/enterprise.h"
#include "workload/query_stream.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

// Livelink-shaped hierarchy (paper §4) with explicit labels scattered
// over several (object, right) columns.
core::AccessControlSystem MakeSystem(uint64_t seed) {
  Random rng(seed);
  workload::EnterpriseOptions shape;  // Defaults = published shape stats.
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  if (!dag.ok()) std::abort();
  core::AccessControlSystem system(std::move(dag).value());

  const struct {
    const char* object;
    const char* right;
    double rate;
  } columns[] = {{"vault", "open", 0.01},   {"vault", "audit", 0.005},
                 {"wiki", "edit", 0.02},    {"wiki", "read", 0.01},
                 {"payroll", "read", 0.003}, {"payroll", "write", 0.002}};
  for (const auto& column : columns) {
    for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
      if (!rng.Bernoulli(column.rate)) continue;
      const std::string& name = system.dag().name(v);
      const Status status =
          rng.Bernoulli(0.3)
              ? system.DenyAccess(name, column.object, column.right)
              : system.Grant(name, column.object, column.right);
      if (!status.ok()) std::abort();
    }
  }
  return system;
}

std::string JsonLine(const char* section, size_t threads, size_t queries,
                     double millis, double qps, double speedup,
                     double hit_rate, double subgraph_hit_rate) {
  // On a host that grants a single core, every multi-threaded config
  // measures synchronization overhead, not scaling: mark those rows so
  // tools/bench_trend.py never reads a "regression" out of a
  // degenerate host (it skips flagged rows entirely).
  const bool skipped_scaling =
      threads > 1 && ThreadPool::DefaultThreadCount() <= 1;
  char buffer[512];
  std::snprintf(
      buffer, sizeof(buffer),
      "JSON {\"bench\":\"throughput_parallel\",\"section\":\"%s\","
      "\"threads\":%zu,\"queries\":%zu,\"millis\":%.3f,\"qps\":%.1f,"
      "\"speedup_vs_1t\":%.3f,\"resolution_hit_rate\":%.4f,"
      "\"subgraph_hit_rate\":%.4f%s}",
      section, threads, queries, millis, qps, speedup, hit_rate,
      subgraph_hit_rate, skipped_scaling ? ",\"skipped_scaling\":true" : "");
  return buffer;
}

double Rate(uint64_t hits, uint64_t misses) {
  const uint64_t total = hits + misses;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  constexpr uint64_t kSeed = 42;
  const size_t kQueries = smoke ? 2000 : 30000;
  const std::vector<size_t> thread_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4, 8};
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();

  core::AccessControlSystem system = MakeSystem(kSeed);
  workload::QueryStreamOptions stream;
  stream.count = kQueries;
  stream.seed = kSeed + 1;
  auto queries =
      workload::GenerateQueryStream(system.dag(), system.eacm(), stream);
  if (!queries.ok()) std::abort();

  std::cout << "== Parallel query-evaluation throughput ==\n"
            << "enterprise hierarchy: " << system.dag().node_count()
            << " subjects, " << system.eacm().size()
            << " explicit authorizations; " << kQueries
            << " hot-set queries, strategy D+LP-"
            << (smoke ? " (smoke)" : "") << "\n"
            << "host concurrency: " << ThreadPool::DefaultThreadCount()
            << " (speedup is bounded by this)\n\n";

  // -- Section 1: BatchResolver with shared sharded caches. ----------
  std::cout << "-- BatchResolver (sharded caches shared by workers) --\n";
  TablePrinter batch_table({"threads", "total ms", "queries/s", "speedup",
                            "resolution hits", "subgraph hits"});
  std::vector<std::string> json_lines;
  double batch_baseline_ms = 0.0;
  for (const size_t threads : thread_counts) {
    core::BatchResolver resolver(system, threads);
    Stopwatch watch;
    auto results = resolver.ResolveBatch(*queries, strategy);
    const double ms = watch.ElapsedMillis();
    if (!results.ok()) std::abort();
    if (batch_baseline_ms == 0.0) batch_baseline_ms = ms;

    const auto stats = resolver.resolution_cache().stats();
    const double hit_rate = Rate(stats.hits, stats.misses);
    const double subgraph_hit_rate = Rate(resolver.subgraph_cache().hits(),
                                          resolver.subgraph_cache().misses());
    const double qps = static_cast<double>(kQueries) / (ms / 1000.0);
    const double speedup = batch_baseline_ms / ms;
    batch_table.AddRow({std::to_string(threads), FormatDouble(ms, 1),
                        FormatDouble(qps, 0), FormatDouble(speedup, 2) + "x",
                        FormatDouble(100.0 * hit_rate, 1) + "%",
                        FormatDouble(100.0 * subgraph_hit_rate, 1) + "%"});
    json_lines.push_back(JsonLine("batch_resolve", threads, kQueries, ms,
                                  qps, speedup, hit_rate, subgraph_hit_rate));
  }
  batch_table.Print(std::cout);

  // -- Section 2: parallel effective-matrix materialization. ---------
  std::cout << "\n-- EffectiveMatrix::Materialize (columns in parallel) --\n";
  TablePrinter matrix_table({"threads", "total ms", "columns/s", "speedup"});
  double matrix_baseline_ms = 0.0;
  size_t column_count = 0;
  for (const size_t threads : thread_counts) {
    Stopwatch watch;
    auto matrix = core::EffectiveMatrix::Materialize(system, strategy,
                                                     threads);
    const double ms = watch.ElapsedMillis();
    if (!matrix.ok()) std::abort();
    column_count = matrix->column_count();
    if (matrix_baseline_ms == 0.0) matrix_baseline_ms = ms;
    const double speedup = matrix_baseline_ms / ms;
    const double cps = static_cast<double>(column_count) / (ms / 1000.0);
    matrix_table.AddRow({std::to_string(threads), FormatDouble(ms, 1),
                         FormatDouble(cps, 1),
                         FormatDouble(speedup, 2) + "x"});
    json_lines.push_back(JsonLine("materialize", threads, column_count, ms,
                                  cps, speedup, 0.0, 0.0));
  }
  matrix_table.Print(std::cout);

  std::cout << "\nWorkers share warm sub-graphs and epoch-guarded decisions "
               "through the sharded\ncaches instead of re-deriving them, so "
               "added threads scale the independent\nwork (propagation) "
               "without duplicating the shared state.\n\n";
  for (const std::string& line : json_lines) std::cout << line << "\n";
  ucr::bench_obs::EmitMetricsSnapshot("throughput_parallel");
  return 0;
}
