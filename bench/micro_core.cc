// Google-benchmark microbenchmarks of the core primitives (ablation
// A3): sub-graph extraction, both propagation engines, Resolve() for
// each policy shape, Dominance(), whole-graph materialization, and
// strategy parsing. These are the numbers a downstream user sizes a
// deployment with.

#include <benchmark/benchmark.h>

#include <optional>
#include <thread>
#include <vector>

#include "acm/acm.h"
#include "acm/assignment.h"
#include "core/dominance.h"
#include "core/explain.h"
#include "core/mixed.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/ancestor_subgraph.h"
#include "graph/generators.h"
#include "util/random.h"
#include "workload/enterprise.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

struct Fixture {
  graph::Dag dag;
  acm::ExplicitAcm eacm;
  acm::ObjectId obj = 0;
  acm::RightId right = 0;
  graph::NodeId subject = 0;
  std::vector<std::optional<acm::Mode>> labels;
};

/// Enterprise-shaped fixture scaled by `users`.
Fixture MakeEnterprise(size_t users) {
  Random rng(500 + users);
  workload::EnterpriseOptions opt;
  opt.individuals = users;
  opt.groups = users * 3;
  opt.top_level_groups = 1 + users / 40;
  opt.target_edges = users * 11;
  auto dag = workload::GenerateEnterpriseHierarchy(opt, rng);
  if (!dag.ok()) std::abort();
  Fixture f;
  f.dag = std::move(dag).value();
  f.obj = f.eacm.InternObject("obj").value();
  f.right = f.eacm.InternRight("read").value();
  acm::RandomAssignmentOptions assign;
  assign.authorization_rate = 0.007;
  if (!acm::AssignRandomAuthorizations(f.dag, f.obj, f.right, assign, rng,
                                       &f.eacm)
           .ok()) {
    std::abort();
  }
  f.labels = f.eacm.ExtractLabels(f.dag.node_count(), f.obj, f.right);
  f.subject = f.dag.Sinks().back();
  return f;
}

void BM_SubgraphExtraction(benchmark::State& state) {
  const Fixture f = MakeEnterprise(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    graph::AncestorSubgraph sub(f.dag, f.subject);
    benchmark::DoNotOptimize(sub.member_count());
  }
}
BENCHMARK(BM_SubgraphExtraction)->Arg(100)->Arg(400)->Arg(1600);

void BM_PropagateAggregated(benchmark::State& state) {
  const Fixture f = MakeEnterprise(static_cast<size_t>(state.range(0)));
  const graph::AncestorSubgraph sub(f.dag, f.subject);
  for (auto _ : state) {
    core::RightsBag bag = core::PropagateAggregated(sub, f.labels);
    benchmark::DoNotOptimize(bag.GroupCount());
  }
}
BENCHMARK(BM_PropagateAggregated)->Arg(100)->Arg(400)->Arg(1600);

void BM_PropagateLiteral(benchmark::State& state) {
  const Fixture f = MakeEnterprise(static_cast<size_t>(state.range(0)));
  const graph::AncestorSubgraph sub(f.dag, f.subject);
  for (auto _ : state) {
    auto bag = core::PropagateLiteral(sub, f.labels);
    if (!bag.ok()) std::abort();
    benchmark::DoNotOptimize(bag->GroupCount());
  }
}
BENCHMARK(BM_PropagateLiteral)->Arg(100)->Arg(400)->Arg(1600);

void BM_PropagateLiteralDiamond(benchmark::State& state) {
  auto dag = graph::GenerateDiamondStack(static_cast<size_t>(state.range(0)));
  if (!dag.ok()) std::abort();
  acm::ExplicitAcm eacm;
  const acm::ObjectId obj = eacm.InternObject("obj").value();
  const acm::RightId right = eacm.InternRight("read").value();
  (void)eacm.Set(dag->FindNode("D0t"), obj, right, acm::Mode::kPositive);
  const auto labels = eacm.ExtractLabels(dag->node_count(), obj, right);
  const graph::AncestorSubgraph sub(*dag, dag->FindNode("Dsink"));
  for (auto _ : state) {
    auto bag = core::PropagateLiteral(sub, labels);
    if (!bag.ok()) std::abort();
    benchmark::DoNotOptimize(bag->GroupCount());
  }
  state.SetLabel("paths=2^" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PropagateLiteralDiamond)->DenseRange(8, 16, 4);

void BM_PropagateAggregatedDiamond(benchmark::State& state) {
  auto dag = graph::GenerateDiamondStack(static_cast<size_t>(state.range(0)));
  if (!dag.ok()) std::abort();
  acm::ExplicitAcm eacm;
  const acm::ObjectId obj = eacm.InternObject("obj").value();
  const acm::RightId right = eacm.InternRight("read").value();
  (void)eacm.Set(dag->FindNode("D0t"), obj, right, acm::Mode::kPositive);
  const auto labels = eacm.ExtractLabels(dag->node_count(), obj, right);
  const graph::AncestorSubgraph sub(*dag, dag->FindNode("Dsink"));
  for (auto _ : state) {
    core::RightsBag bag = core::PropagateAggregated(sub, labels);
    benchmark::DoNotOptimize(bag.GroupCount());
  }
  state.SetLabel("paths=2^" + std::to_string(state.range(0)));
}
BENCHMARK(BM_PropagateAggregatedDiamond)->DenseRange(8, 64, 28);

void BM_ResolvePerShape(benchmark::State& state) {
  const Fixture f = MakeEnterprise(400);
  const graph::AncestorSubgraph sub(f.dag, f.subject);
  const core::RightsBag bag = core::PropagateAggregated(sub, f.labels);
  const core::Strategy strategy =
      core::AllStrategies()[static_cast<size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::Resolve(bag, strategy));
  }
  state.SetLabel(strategy.ToMnemonic());
}
// One representative per policy shape: P-, MP-, LP-, GP-, LMP-, MLP-.
BENCHMARK(BM_ResolvePerShape)
    ->Arg(1)
    ->Arg(3)
    ->Arg(5)
    ->Arg(7)
    ->Arg(9)
    ->Arg(13);

void BM_Dominance(benchmark::State& state) {
  const Fixture f = MakeEnterprise(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::Dominance(f.dag, f.labels, f.subject,
                        core::DefaultRule::kPositive,
                        core::PreferenceRule::kNegative));
  }
}
BENCHMARK(BM_Dominance)->Arg(100)->Arg(400)->Arg(1600);

void BM_WholeDagMaterialization(benchmark::State& state) {
  const Fixture f = MakeEnterprise(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<core::RightsBag> bags =
        core::PropagateWholeDag(f.dag, f.labels);
    benchmark::DoNotOptimize(bags.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(f.dag.node_count()));
}
BENCHMARK(BM_WholeDagMaterialization)->Arg(100)->Arg(400);

void BM_ExplainAccess(benchmark::State& state) {
  const Fixture f = MakeEnterprise(static_cast<size_t>(state.range(0)));
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();
  for (auto _ : state) {
    auto explanation = core::ExplainAccess(f.dag, f.eacm, f.subject, f.obj,
                                           f.right, strategy);
    if (!explanation.ok()) std::abort();
    benchmark::DoNotOptimize(explanation->contributions.size());
  }
}
BENCHMARK(BM_ExplainAccess)->Arg(400);

void BM_CheckAccessBatchThreads(benchmark::State& state) {
  Fixture f = MakeEnterprise(400);
  core::SystemOptions options;
  options.enable_resolution_cache = false;  // Measure raw resolution.
  core::AccessControlSystem system(std::move(f.dag), options);
  // Replay the fixture's labels through the facade.
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    if (f.labels[v].has_value()) {
      const Status status =
          *f.labels[v] == acm::Mode::kPositive
              ? system.Grant(system.dag().name(v), "obj", "read")
              : system.DenyAccess(system.dag().name(v), "obj", "read");
      if (!status.ok()) std::abort();
    }
  }
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId right = system.eacm().FindRight("read").value();

  std::vector<core::AccessControlSystem::AccessQuery> queries;
  Random rng(9);
  const auto sinks = system.dag().Sinks();
  for (int i = 0; i < 256; ++i) {
    queries.push_back({sinks[rng.Uniform(sinks.size())], obj, right});
  }
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();
  const size_t threads = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto results = system.CheckAccessBatch(queries, strategy, threads);
    if (!results.ok()) std::abort();
    benchmark::DoNotOptimize(results->size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 256);
  // Parallel speedup needs parallel hardware; on a single-core host
  // the threaded rows measure pure oversubscription overhead.
  state.SetLabel("hw_cores=" +
                 std::to_string(std::thread::hardware_concurrency()));
}
BENCHMARK(BM_CheckAccessBatchThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_MixedPropagate(benchmark::State& state) {
  Random rng(321);
  auto subjects = graph::GenerateLayeredDag(
      {.layers = 4, .nodes_per_layer = 10, .skip_edge_probability = 0.1},
      rng);
  auto objects = graph::GenerateLayeredDag(
      {.layers = 3, .nodes_per_layer = 8, .skip_edge_probability = 0.1},
      rng);
  if (!subjects.ok() || !objects.ok()) std::abort();
  std::vector<core::MixedAuthorization> auths;
  for (int i = 0; i < 10; ++i) {
    auths.push_back(core::MixedAuthorization{
        static_cast<graph::NodeId>(rng.Uniform(subjects->node_count())),
        static_cast<graph::NodeId>(rng.Uniform(objects->node_count())),
        rng.Bernoulli(0.5) ? acm::Mode::kPositive : acm::Mode::kNegative});
  }
  const graph::NodeId qs = subjects->Sinks().front();
  const graph::NodeId qo = objects->Sinks().front();
  for (auto _ : state) {
    auto bag = core::MixedPropagate(*subjects, *objects, auths, qs, qo);
    if (!bag.ok()) std::abort();
    benchmark::DoNotOptimize(bag->GroupCount());
  }
}
BENCHMARK(BM_MixedPropagate);

void BM_ParseStrategy(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ParseStrategy("D+LMP-"));
  }
}
BENCHMARK(BM_ParseStrategy);

void BM_ExtractLabels(benchmark::State& state) {
  const Fixture f = MakeEnterprise(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto labels = f.eacm.ExtractLabels(f.dag.node_count(), f.obj, f.right);
    benchmark::DoNotOptimize(labels.size());
  }
}
BENCHMARK(BM_ExtractLabels)->Arg(400)->Arg(1600);

}  // namespace

BENCHMARK_MAIN();
