// Ablation A5 — the §5 trade-off, measured: Jajodia et al. suggest
// materializing the entire effective matrix for O(1) checks; the
// paper argues the size and the non-self-maintainability make that
// impractical, and proposes computing on demand instead.
//
// This harness builds an enterprise, materializes the full effective
// matrix, and compares: build cost, memory, lookup cost, and what an
// explicit-matrix update costs each approach.

#include <cstdio>
#include <iostream>
#include <vector>

#include "acm/assignment.h"
#include "core/effective_matrix.h"
#include "core/strategy.h"
#include "core/system.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/enterprise.h"

#include "bench_obs.h"

int main() {
  using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

  std::cout << "== Ablation: full materialization (Jajodia et al.) vs "
               "on-demand Resolve() ==\n\n";

  Random rng(55);
  workload::EnterpriseOptions shape;
  shape.individuals = 800;
  shape.groups = 2600;
  shape.top_level_groups = 30;
  shape.target_edges = 9000;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  if (!dag.ok()) {
    std::cerr << dag.status().ToString() << "\n";
    return 1;
  }
  core::SystemOptions options;
  options.enable_resolution_cache = false;  // Isolate the comparison.
  core::AccessControlSystem system(std::move(dag).value(), options);

  // 24 objects x 2 rights, each with explicit labels on ~0.7% of edges.
  constexpr size_t kObjects = 24;
  for (size_t i = 0; i < kObjects; ++i) {
    const std::string object = "doc" + std::to_string(i);
    for (const char* right : {"read", "write"}) {
      acm::ExplicitAcm seed;
      const acm::ObjectId o = seed.InternObject(object).value();
      const acm::RightId r = seed.InternRight(right).value();
      acm::RandomAssignmentOptions assign;
      assign.authorization_rate = 0.007;
      assign.negative_fraction = 0.3;
      if (!acm::AssignRandomAuthorizations(system.dag(), o, r, assign, rng,
                                           &seed)
               .ok()) {
        return 1;
      }
      for (const auto& e : seed.SortedEntries()) {
        const std::string& subject = system.dag().name(e.subject);
        const Status status =
            e.mode == acm::Mode::kPositive
                ? system.Grant(subject, object, right)
                : system.DenyAccess(subject, object, right);
        if (!status.ok()) return 1;
      }
    }
  }
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();
  std::printf("Hierarchy: %zu subjects; explicit matrix: %zu entries over "
              "%zu columns\n\n",
              system.dag().node_count(), system.eacm().size(), kObjects * 2);

  // ---- Build the materialization -----------------------------------
  Stopwatch build_watch;
  auto matrix = core::EffectiveMatrix::Materialize(system, strategy);
  const double build_ms = build_watch.ElapsedMillis();
  if (!matrix.ok()) {
    std::cerr << matrix.status().ToString() << "\n";
    return 1;
  }

  // ---- Query workload: random triples ------------------------------
  constexpr size_t kQueries = 50000;
  std::vector<graph::NodeId> subjects;
  std::vector<acm::ObjectId> objects;
  std::vector<acm::RightId> rights;
  for (size_t q = 0; q < kQueries; ++q) {
    subjects.push_back(
        static_cast<graph::NodeId>(rng.Uniform(system.dag().node_count())));
    objects.push_back(static_cast<acm::ObjectId>(
        rng.Uniform(system.eacm().object_count())));
    rights.push_back(
        static_cast<acm::RightId>(rng.Uniform(system.eacm().right_count())));
  }

  Stopwatch lookup_watch;
  size_t granted_lookup = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    auto mode = matrix->Lookup(subjects[q], objects[q], rights[q]);
    if (mode.ok() && *mode == acm::Mode::kPositive) ++granted_lookup;
  }
  const double lookup_ms = lookup_watch.ElapsedMillis();

  Stopwatch resolve_watch;
  size_t granted_resolve = 0;
  for (size_t q = 0; q < kQueries; ++q) {
    auto mode =
        system.CheckAccess(subjects[q], objects[q], rights[q], strategy);
    if (mode.ok() && *mode == acm::Mode::kPositive) ++granted_resolve;
  }
  const double resolve_ms = resolve_watch.ElapsedMillis();
  if (granted_lookup != granted_resolve) {
    std::cerr << "BUG: approaches disagree (" << granted_lookup << " vs "
              << granted_resolve << ")\n";
    return 1;
  }

  // ---- Update cost --------------------------------------------------
  // Materialized: one grant stales everything; rebuilding is the only
  // sound response. On demand: the update itself is the whole cost.
  Stopwatch update_watch;
  if (!system.Grant("user0", "doc0", "read").ok()) return 1;
  const double update_us = update_watch.ElapsedMicros();
  Stopwatch rebuild_watch;
  auto rebuilt = core::EffectiveMatrix::Materialize(system, strategy);
  const double rebuild_ms = rebuild_watch.ElapsedMillis();
  if (!rebuilt.ok()) return 1;

  // Incremental maintenance (our §5 answer): refresh only the one
  // column the grant touched.
  if (!system.Grant("user1", "doc1", "read").ok()) return 1;
  Stopwatch refresh_watch;
  auto refreshed = rebuilt->Refresh(system);
  const double refresh_ms = refresh_watch.ElapsedMillis();
  if (!refreshed.ok() || *refreshed != 1) return 1;

  TablePrinter table({"metric", "materialized", "on-demand Resolve()"});
  table.AddRow({"build time", FormatDouble(build_ms, 1) + " ms", "none"});
  table.AddRow({"memory",
                FormatDouble(static_cast<double>(matrix->MemoryBytes()) /
                                 1024.0,
                             1) +
                    " KiB (" + std::to_string(matrix->column_count()) +
                    " columns)",
                "explicit matrix only"});
  table.AddRow({"50k queries", FormatDouble(lookup_ms, 1) + " ms",
                FormatDouble(resolve_ms, 1) + " ms"});
  table.AddRow({"per query",
                FormatDouble(lookup_ms * 1e6 / kQueries, 0) + " ns",
                FormatDouble(resolve_ms * 1e6 / kQueries, 0) + " ns"});
  table.AddRow({"one grant (naive)",
                FormatDouble(rebuild_ms, 1) + " ms (full rebuild)",
                FormatDouble(update_us, 1) + " us"});
  table.AddRow({"one grant (incremental)",
                FormatDouble(refresh_ms, 1) + " ms (1 column refreshed)",
                FormatDouble(update_us, 1) + " us"});
  table.Print(std::cout);

  std::printf(
      "\nBoth answer identically (%zu grants of 50k probes). The paper's "
      "§5 position\nquantified: materialization wins on steady-state reads; "
      "a naive rebuild per\nexplicit-matrix change is ruinous, though "
      "column-scoped incremental\nmaintenance (EffectiveMatrix::Refresh) "
      "recovers most of it. The on-demand\nalgorithm (with the "
      "epoch-validated cache, see ablation_cache) never pays\nmore than "
      "the touched entries.\n",
      granted_lookup);
  ucr::bench_obs::EmitMetricsSnapshot("ablation_materialization");
  return 0;
}
