// Ablation A1: cost of the three implementations of the paper's
// pipeline —
//   native aggregated  (multiplicity DP; the production engine)
//   native literal     (per-tuple queue; the paper's O(n + d) model)
//   relational algebra (operator-for-operator Fig. 4/5 transcription)
//
// All three compute identical answers (the test suite proves it);
// this harness quantifies what the fidelity costs, and shows where
// the aggregated engine's polynomial bound beats the literal engine's
// path-dependent cost (diamond stacks).

#include <cstdio>
#include <functional>
#include <iostream>
#include <optional>
#include <vector>

#include "acm/acm.h"
#include "core/paper_example.h"
#include "core/propagate.h"
#include "core/relalg_impl.h"
#include "core/resolve.h"
#include "graph/ancestor_subgraph.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

struct Workload {
  std::string name;
  graph::Dag dag;
  acm::ExplicitAcm eacm;
  acm::ObjectId obj;
  acm::RightId right;
  graph::NodeId subject;
  bool literal_feasible = true;  // Per-tuple engine affordable here.
  bool relalg_feasible = true;   // Operator-literal engine affordable.
};

Workload MakePaperWorkload() {
  core::PaperExample ex = core::MakePaperExample();
  return Workload{"paper-fig1",  std::move(ex.dag), std::move(ex.eacm),
                  ex.obj,        ex.read,           ex.user,
                  true,          true};
}

Workload MakeLayeredWorkload(size_t layers, size_t width, uint64_t seed) {
  Random rng(seed);
  graph::LayeredDagOptions opt;
  opt.layers = layers;
  opt.nodes_per_layer = width;
  opt.skip_edge_probability = 0.1;
  auto dag = graph::GenerateLayeredDag(opt, rng);
  if (!dag.ok()) std::abort();
  Workload w{"layered-" + std::to_string(layers) + "x" + std::to_string(width),
             std::move(dag).value(),
             {},
             0,
             0,
             0,
             true,
             layers * width <= 100};
  w.obj = w.eacm.InternObject("obj").value();
  w.right = w.eacm.InternRight("read").value();
  for (graph::NodeId v = 0; v < w.dag.node_count(); ++v) {
    if (rng.Bernoulli(0.1)) {
      (void)w.eacm.Set(v, w.obj, w.right,
                       rng.Bernoulli(0.5) ? acm::Mode::kPositive
                                          : acm::Mode::kNegative);
    }
  }
  w.subject = w.dag.Sinks().front();
  return w;
}

Workload MakeDiamondWorkload(size_t k) {
  auto dag = graph::GenerateDiamondStack(k);
  if (!dag.ok()) std::abort();
  Workload w{"diamond-" + std::to_string(k), std::move(dag).value(), {}, 0, 0,
             0,                              k <= 20, k <= 14};
  w.obj = w.eacm.InternObject("obj").value();
  w.right = w.eacm.InternRight("read").value();
  (void)w.eacm.Set(w.dag.FindNode("D0t"), w.obj, w.right,
                   acm::Mode::kPositive);
  w.subject = w.dag.FindNode("Dsink");
  return w;
}

double TimeUs(int reps, const std::function<void()>& fn) {
  double best = 0.0;
  for (int i = 0; i < reps; ++i) {
    Stopwatch watch;
    fn();
    const double us = watch.ElapsedMicros();
    best = i == 0 ? us : std::min(best, us);
  }
  return best;
}

}  // namespace

int main() {
  std::cout << "== Ablation: native aggregated vs native literal vs "
               "relational algebra ==\n"
            << "(strategy D+LMP-; times are best-of-5 microseconds)\n\n";

  std::vector<Workload> workloads;
  workloads.push_back(MakePaperWorkload());
  workloads.push_back(MakeLayeredWorkload(5, 12, 1));
  workloads.push_back(MakeLayeredWorkload(7, 20, 2));
  workloads.push_back(MakeDiamondWorkload(14));
  workloads.push_back(MakeDiamondWorkload(18));
  workloads.push_back(MakeDiamondWorkload(40));  // Literal would need 2^40.

  const core::Strategy strategy = core::ParseStrategy("D+LMP-").value();
  TablePrinter table({"workload", "nodes", "aggregated us", "literal us",
                      "relalg us", "relalg/aggregated"});

  for (const Workload& w : workloads) {
    const graph::AncestorSubgraph sub(w.dag, w.subject);
    const auto labels =
        w.eacm.ExtractLabels(w.dag.node_count(), w.obj, w.right);

    const double aggregated_us = TimeUs(5, [&] {
      const core::RightsBag bag = core::PropagateAggregated(sub, labels);
      (void)core::Resolve(bag, strategy);
    });

    std::string literal_cell = "n/a (too many paths)";
    if (w.literal_feasible) {
      literal_cell = FormatDouble(TimeUs(5, [&] {
                                    auto bag = core::PropagateLiteral(
                                        sub, labels);
                                    (void)core::Resolve(*bag, strategy);
                                  }),
                                  1);
    }

    const relalg::Relation sdag_rel = core::BuildSdagRelation(w.dag);
    const relalg::Relation eacm_rel = core::BuildEacmRelation(w.eacm, w.dag);
    std::string relalg_cell = "n/a (too many paths)";
    double relalg_us = 0.0;
    if (w.relalg_feasible) {
      relalg_us = TimeUs(2, [&] {
        auto rights = core::PropagateRelalg(
            sdag_rel, eacm_rel, w.dag.name(w.subject),
            w.eacm.object_name(w.obj), w.eacm.right_name(w.right));
        (void)core::ResolveRelalg(*rights, strategy);
      });
      relalg_cell = FormatDouble(relalg_us, 1);
    }

    table.AddRow({w.name, std::to_string(w.dag.node_count()),
                  FormatDouble(aggregated_us, 1), literal_cell, relalg_cell,
                  w.relalg_feasible && aggregated_us > 0
                      ? FormatDouble(relalg_us / aggregated_us, 0) + "x"
                      : "-"});
  }
  table.Print(std::cout);

  std::cout
      << "\nTakeaways: the aggregated engine handles the diamond-40 case "
         "(2^40 paths)\nin microseconds where the paper's per-tuple model "
         "cannot run at all, and the\nrelational-algebra reference costs "
         "orders of magnitude more than the native\nengine — the price of "
         "operator-literal fidelity, paid only in tests.\n";
  ucr::bench_obs::EmitMetricsSnapshot("ablation_relalg");
  return 0;
}
