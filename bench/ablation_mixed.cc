// Ablation A4 — mixed subject+object hierarchies (paper §6, future
// work #2): what does adding an object DAG cost?
//
// Sweeps subject- and object-hierarchy sizes, measuring the mixed
// propagation (distance-profile DPs + per-authorization convolution)
// against the subject-only baseline on the same subject hierarchy.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/mixed.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "graph/ancestor_subgraph.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

graph::Dag MakeLayered(size_t layers, size_t width, Random& rng) {
  graph::LayeredDagOptions opt;
  opt.layers = layers;
  opt.nodes_per_layer = width;
  opt.skip_edge_probability = 0.1;
  auto dag = graph::GenerateLayeredDag(opt, rng);
  if (!dag.ok()) std::abort();
  return std::move(dag).value();
}

}  // namespace

int main() {
  std::cout << "== Ablation: mixed subject+object hierarchies (future work "
               "#2) ==\n"
            << "(strategy D+LP-; per-query times, best of 5)\n\n";

  Random rng(2026);
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();

  struct Config {
    size_t subject_layers, subject_width;
    size_t object_layers, object_width;
  };
  const Config configs[] = {
      {3, 6, 1, 1},   // Degenerate object side = paper's model.
      {3, 6, 3, 6},
      {5, 20, 3, 6},
      {5, 20, 5, 20},
      {7, 40, 5, 20},
  };

  TablePrinter table({"subjects", "objects", "auths", "mixed us",
                      "subject-only us", "profile cells", "pair tuples"});
  for (const Config& config : configs) {
    const graph::Dag subjects =
        MakeLayered(config.subject_layers, config.subject_width, rng);
    const graph::Dag objects =
        config.object_layers == 1 && config.object_width == 1
            ? [] {
                graph::DagBuilder b;
                b.AddNode("obj");
                return std::move(b).Build().value();
              }()
            : MakeLayered(config.object_layers, config.object_width, rng);

    // ~8% of (subject, object) node pairs sampled down to 12 auths.
    std::vector<core::MixedAuthorization> auths;
    acm::ExplicitAcm subject_acm;
    const acm::ObjectId obj_id = subject_acm.InternObject("obj").value();
    const acm::RightId read = subject_acm.InternRight("read").value();
    while (auths.size() < 12) {
      const auto s = static_cast<graph::NodeId>(
          rng.Uniform(subjects.node_count()));
      const auto o =
          static_cast<graph::NodeId>(rng.Uniform(objects.node_count()));
      const acm::Mode mode =
          rng.Bernoulli(0.5) ? acm::Mode::kPositive : acm::Mode::kNegative;
      bool duplicate = false;
      for (const auto& a : auths) {
        if (a.subject == s && a.object == o) duplicate = true;
      }
      if (duplicate) continue;
      auths.push_back(core::MixedAuthorization{s, o, mode});
      // Mirror onto the subject-only ACM for the baseline (object
      // coordinate dropped; contradictions skipped).
      (void)subject_acm.Set(s, obj_id, read, mode);
    }

    const graph::NodeId qs = subjects.Sinks().front();
    const graph::NodeId qo = objects.Sinks().front();

    double mixed_us = 0.0;
    core::MixedPropagateStats stats;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch watch;
      auto bag =
          core::MixedPropagate(subjects, objects, auths, qs, qo, &stats);
      if (!bag.ok()) std::abort();
      (void)core::Resolve(*bag, strategy);
      const double us = watch.ElapsedMicros();
      mixed_us = rep == 0 ? us : std::min(mixed_us, us);
    }

    const auto labels =
        subject_acm.ExtractLabels(subjects.node_count(), obj_id, read);
    double subject_us = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      Stopwatch watch;
      const graph::AncestorSubgraph sub(subjects, qs);
      const core::RightsBag bag = core::PropagateAggregated(sub, labels);
      (void)core::Resolve(bag, strategy);
      const double us = watch.ElapsedMicros();
      subject_us = rep == 0 ? us : std::min(subject_us, us);
    }

    table.AddRow({std::to_string(subjects.node_count()),
                  std::to_string(objects.node_count()),
                  std::to_string(auths.size()), FormatDouble(mixed_us, 1),
                  FormatDouble(subject_us, 1),
                  std::to_string(stats.profile_entries),
                  std::to_string(stats.pair_tuples)});
  }
  table.Print(std::cout);

  std::cout << "\nThe object hierarchy adds one distance-profile DP and a "
               "per-authorization\nconvolution — same asymptotics as the "
               "subject-only pipeline, roughly doubled\nconstants at equal "
               "sizes.\n";
  ucr::bench_obs::EmitMetricsSnapshot("ablation_mixed");
  return 0;
}
