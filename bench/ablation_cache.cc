// Ablation A2 — the paper's future-work #1: caching derived
// authorizations.
//
// Replays a skewed query workload (Zipf-ish: a few hot users dominate,
// as in real systems) against the facade with caches off, with only
// the sub-graph cache, and with both caches, then injects explicit-
// matrix updates to show invalidation cost.

#include <cstdio>
#include <iostream>
#include <vector>

#include "acm/assignment.h"
#include "core/strategy.h"
#include "core/system.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/enterprise.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

struct WorkloadSpec {
  std::vector<graph::NodeId> query_subjects;  // One per query, skewed.
  std::vector<size_t> update_points;          // Query indices with updates.
};

core::AccessControlSystem MakeSystem(core::SystemOptions options,
                                     uint64_t seed) {
  Random rng(seed);
  workload::EnterpriseOptions shape;
  shape.individuals = 400;
  shape.groups = 1300;
  shape.top_level_groups = 15;
  shape.target_edges = 4400;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  if (!dag.ok()) std::abort();

  core::AccessControlSystem system(std::move(dag).value(), options);
  acm::ExplicitAcm seed_acm;
  const acm::ObjectId obj = seed_acm.InternObject("vault").value();
  const acm::RightId open = seed_acm.InternRight("open").value();
  acm::RandomAssignmentOptions assign;
  assign.authorization_rate = 0.01;
  if (!acm::AssignRandomAuthorizations(system.dag(), obj, open, assign, rng,
                                       &seed_acm)
           .ok()) {
    std::abort();
  }
  for (const auto& e : seed_acm.SortedEntries()) {
    const std::string& name = system.dag().name(e.subject);
    const Status s = e.mode == acm::Mode::kPositive
                         ? system.Grant(name, "vault", "open")
                         : system.DenyAccess(name, "vault", "open");
    if (!s.ok()) std::abort();
  }
  return system;
}

WorkloadSpec MakeWorkload(const graph::Dag& dag, size_t queries,
                          uint64_t seed) {
  Random rng(seed);
  const std::vector<graph::NodeId> sinks = dag.Sinks();
  // 80% of queries hit a hot set of 16 users; 20% are uniform.
  std::vector<graph::NodeId> hot;
  for (size_t i = 0; i < 16; ++i) {
    hot.push_back(sinks[rng.Uniform(sinks.size())]);
  }
  WorkloadSpec spec;
  for (size_t q = 0; q < queries; ++q) {
    spec.query_subjects.push_back(rng.Bernoulli(0.8)
                                      ? hot[rng.Uniform(hot.size())]
                                      : sinks[rng.Uniform(sinks.size())]);
    if (q > 0 && q % 1000 == 0) spec.update_points.push_back(q);
  }
  return spec;
}

double RunWorkload(core::AccessControlSystem& system,
                   const WorkloadSpec& spec) {
  const acm::ObjectId obj = system.eacm().FindObject("vault").value();
  const acm::RightId open = system.eacm().FindRight("open").value();
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();

  size_t next_update = 0;
  Stopwatch watch;
  for (size_t q = 0; q < spec.query_subjects.size(); ++q) {
    if (next_update < spec.update_points.size() &&
        spec.update_points[next_update] == q) {
      // An administrative change invalidates derived results.
      const std::string subject = system.dag().name(
          spec.query_subjects[q] % 7 == 0 ? spec.query_subjects[q]
                                          : spec.query_subjects[0]);
      (void)system.Grant(subject, "vault", "open");
      ++next_update;
    }
    auto decision =
        system.CheckAccess(spec.query_subjects[q], obj, open, strategy);
    if (!decision.ok()) std::abort();
  }
  return watch.ElapsedMillis();
}

}  // namespace

int main() {
  constexpr size_t kQueries = 20000;
  constexpr uint64_t kSeed = 99;

  std::cout << "== Ablation: resolution & sub-graph caches (paper §6, "
               "future work #1) ==\n"
            << kQueries << " skewed queries, strategy D+LP-, one policy "
            << "update per 1000 queries\n\n";

  struct Config {
    const char* name;
    bool resolution;
    bool subgraph;
  };
  const Config configs[] = {
      {"no caches", false, false},
      {"sub-graph cache only", false, true},
      {"both caches", true, true},
  };

  TablePrinter table({"configuration", "total ms", "us/query", "hit rate",
                      "speedup"});
  double baseline_ms = 0.0;
  for (const Config& config : configs) {
    core::SystemOptions options;
    options.enable_resolution_cache = config.resolution;
    options.enable_subgraph_cache = config.subgraph;
    core::AccessControlSystem system = MakeSystem(options, kSeed);
    const WorkloadSpec spec = MakeWorkload(system.dag(), kQueries, kSeed + 1);
    const double ms = RunWorkload(system, spec);
    if (baseline_ms == 0.0) baseline_ms = ms;

    const auto& stats = system.resolution_cache().stats();
    const uint64_t lookups = stats.hits + stats.misses;
    table.AddRow(
        {config.name, FormatDouble(ms, 1),
         FormatDouble(ms * 1000.0 / static_cast<double>(kQueries), 2),
         lookups == 0 ? std::string("-")
                      : FormatDouble(100.0 * static_cast<double>(stats.hits) /
                                         static_cast<double>(lookups),
                                     1) +
                            "%",
         FormatDouble(baseline_ms / ms, 1) + "x"});
  }
  table.Print(std::cout);

  std::cout << "\nThe resolution cache turns repeat decisions into hash "
               "lookups; updates cost\none epoch bump plus lazy re-derivation "
               "of touched entries only — supporting the\npaper's conjecture "
               "that caching derived authorizations pays off.\n";
  ucr::bench_obs::EmitMetricsSnapshot("ablation_cache");
  return 0;
}
