// Durability-layer benchmark: what the WAL costs the write path, and
// what the binary snapshot buys the cold start.
//
// Sections (one "JSON " line each, for BENCH_durability.json;
// tools/bench_trend.py hard-gates the summary):
//
//   churn_baseline     bench/mutation_churn's incremental workload —
//                      hot-set queries with one membership toggle per
//                      100 queries — applied purely in memory.
//   churn_wal_relaxed  the same stream with every toggle logged
//                      through PersistentSystem::Apply under relaxed
//                      group commit (ordered, checksummed appends; no
//                      per-commit fsync). The gated number: WAL
//                      *append* overhead must stay ≤5%.
//   churn_wal_durable  the same with the default fsync-per-commit —
//                      the full price of an acknowledged commit,
//                      reported (fsync latency is the device's, not
//                      the append path's, so it is not gated).
//   cold_start         a ≥1M-subject layered hierarchy is snapshotted,
//                      then loaded back (mmap + CSR re-validation) and
//                      asked its first query. The acceptance bound:
//                      load + first answer in under 5 seconds.
//
// `--smoke` shrinks both workloads so CI finishes in seconds.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <span>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/binary_snapshot.h"
#include "core/persistent_system.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/enterprise.h"
#include "workload/query_stream.h"

#include "bench_obs.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

constexpr size_t kQueriesPerMutation = 100;

// The mutation_churn hierarchy + label columns, verbatim, so the
// baseline row here tracks that benchmark's incremental section.
core::AccessControlSystem MakeChurnSystem(uint64_t seed) {
  Random rng(seed);
  workload::EnterpriseOptions shape;  // Defaults = published shape stats.
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  if (!dag.ok()) std::abort();
  core::AccessControlSystem system(std::move(dag).value());

  const struct {
    const char* object;
    const char* right;
    double rate;
  } columns[] = {{"vault", "open", 0.01},    {"vault", "audit", 0.005},
                 {"wiki", "edit", 0.02},     {"wiki", "read", 0.01},
                 {"payroll", "read", 0.003}, {"payroll", "write", 0.002}};
  for (const auto& column : columns) {
    for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
      if (!rng.Bernoulli(column.rate)) continue;
      const std::string& name = system.dag().name(v);
      const Status status =
          rng.Bernoulli(0.3)
              ? system.DenyAccess(name, column.object, column.right)
              : system.Grant(name, column.object, column.right);
      if (!status.ok()) std::abort();
    }
  }
  return system;
}

struct ChurnEdge {
  std::string parent;
  std::string child;
};

ChurnEdge FindChurnEdge(const core::AccessControlSystem& system) {
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    if (system.dag().children(v).empty() &&
        !system.dag().parents(v).empty()) {
      return {system.dag().name(system.dag().parents(v).front()),
              system.dag().name(v)};
    }
  }
  std::abort();
}

struct ChurnResult {
  double millis = 0.0;
  size_t mutations = 0;
};

/// The churn loop: warm pass untimed, then the timed stream with one
/// membership toggle per kQueriesPerMutation queries. `toggle` applies
/// the edit — in memory for the baseline, through the WAL for the
/// durable rows — so the delta between runs is exactly the logging.
/// An even toggle count returns the hierarchy to its starting state,
/// so repetitions are identical; callers keep the best of several to
/// shed scheduler noise.
template <typename Toggle>
ChurnResult RunChurnOnce(
    core::AccessControlSystem& system,
    std::span<const core::AccessControlSystem::AccessQuery> queries,
    const core::Strategy& strategy, Toggle toggle) {
  for (const auto& q : queries) {
    if (!system.CheckAccess(q.subject, q.object, q.right, strategy).ok()) {
      std::abort();
    }
  }
  ChurnResult result;
  bool edge_present = true;
  Stopwatch watch;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (i % kQueriesPerMutation == kQueriesPerMutation - 1) {
      toggle(edge_present);
      edge_present = !edge_present;
      ++result.mutations;
    }
    const auto& q = queries[i];
    if (!system.CheckAccess(q.subject, q.object, q.right, strategy).ok()) {
      std::abort();
    }
  }
  result.millis = watch.ElapsedMillis();
  return result;
}

template <typename Toggle>
ChurnResult RunChurn(
    core::AccessControlSystem& system,
    std::span<const core::AccessControlSystem::AccessQuery> queries,
    const core::Strategy& strategy, int reps, Toggle toggle) {
  ChurnResult best;
  for (int rep = 0; rep < reps; ++rep) {
    ChurnResult r = RunChurnOnce(system, queries, strategy, toggle);
    if (rep == 0 || r.millis < best.millis) best = r;
  }
  return best;
}

std::string StoreDir(const char* tag) {
  const char* tmpdir = std::getenv("TMPDIR");
  return std::string(tmpdir != nullptr ? tmpdir : "/tmp") +
         "/ucr_durability_" + tag + "_" +
         std::to_string(static_cast<long>(::getpid()));
}

void RemoveStore(const std::string& dir) {
  std::remove(core::PersistentSystem::SnapshotPath(dir).c_str());
  std::remove(core::PersistentSystem::WalPath(dir).c_str());
  ::rmdir(dir.c_str());
}

void PrintChurnJson(const char* section, size_t queries,
                    const ChurnResult& r, double qps, double overhead_pct,
                    uint64_t wal_bytes) {
  std::printf(
      "JSON {\"bench\":\"durability\",\"section\":\"%s\",\"threads\":1,"
      "\"queries\":%zu,\"mutations\":%zu,\"millis\":%.3f,\"qps\":%.1f,"
      "\"overhead_pct\":%.2f,\"wal_bytes\":%llu}\n",
      section, queries, r.mutations, r.millis, qps, overhead_pct,
      static_cast<unsigned long long>(wal_bytes));
}

uint64_t FileSize(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return 0;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  return size < 0 ? 0 : static_cast<uint64_t>(size);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  constexpr uint64_t kSeed = 42;
  const size_t kQueries = smoke ? 5000 : 50000;
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();

  // ---- WAL overhead on the churn workload --------------------------
  core::AccessControlSystem baseline = MakeChurnSystem(kSeed);
  workload::QueryStreamOptions stream;
  stream.count = kQueries;
  stream.seed = kSeed + 1;
  auto queries =
      workload::GenerateQueryStream(baseline.dag(), baseline.eacm(), stream);
  if (!queries.ok()) std::abort();
  const ChurnEdge edge = FindChurnEdge(baseline);

  std::cout << "== Durability: WAL overhead + snapshot cold start ==\n"
            << "churn workload: " << baseline.dag().node_count()
            << " subjects, " << baseline.eacm().size()
            << " explicit authorizations; " << kQueries
            << " hot-set queries, one durable membership toggle per "
            << kQueriesPerMutation << " queries, strategy D+LP-"
            << (smoke ? " (smoke)" : "") << "\n\n";

  // The baseline applies through the same ApplyMutations batch path
  // the store uses, so the delta is the WAL append alone — not the
  // batch machinery.
  const int kReps = smoke ? 1 : 3;
  using Op = core::AccessControlSystem::MutationOp;
  const ChurnResult base = RunChurn(
      baseline, *queries, strategy, kReps, [&](bool present) {
        const std::vector<Op> batch = {
            present ? Op::RemoveMember(edge.parent, edge.child)
                    : Op::AddMember(edge.parent, edge.child)};
        if (!baseline.ApplyMutations(batch).ok()) std::abort();
      });
  const double base_qps =
      static_cast<double>(kQueries) / (base.millis / 1000.0);

  struct WalRow {
    const char* section;
    bool sync;
    ChurnResult result;
    double qps = 0.0;
    double overhead_pct = 0.0;
    uint64_t wal_bytes = 0;
  } rows[] = {{"churn_wal_relaxed", false, {}},
              {"churn_wal_durable", true, {}}};

  for (WalRow& row : rows) {
    const std::string dir = StoreDir(row.section);
    {
      core::AccessControlSystem seeded = MakeChurnSystem(kSeed);
      if (!core::PersistentSystem::Initialize(dir, seeded).ok()) {
        std::abort();
      }
    }
    auto store = core::PersistentSystem::Open(dir);
    if (!store.ok()) std::abort();
    store->set_sync_on_commit(row.sync);
    core::AccessControlSystem& system = store->system();
    row.result = RunChurn(
        system, *queries, strategy, kReps, [&](bool present) {
          const std::vector<Op> batch = {
              present ? Op::RemoveMember(edge.parent, edge.child)
                      : Op::AddMember(edge.parent, edge.child)};
          if (!store->Apply(batch).ok()) std::abort();
        });
    row.qps = static_cast<double>(kQueries) / (row.result.millis / 1000.0);
    row.overhead_pct = 100.0 * (base_qps - row.qps) / base_qps;
    row.wal_bytes = FileSize(core::PersistentSystem::WalPath(dir));
    RemoveStore(dir);
  }

  TablePrinter table({"section", "total ms", "queries/s", "overhead"});
  table.AddRow({"churn_baseline", FormatDouble(base.millis, 1),
                FormatDouble(base_qps, 0), "-"});
  for (const WalRow& row : rows) {
    table.AddRow({row.section, FormatDouble(row.result.millis, 1),
                  FormatDouble(row.qps, 0),
                  FormatDouble(row.overhead_pct, 2) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\nRelaxed = ordered checksummed appends, fsync deferred "
               "(the gated append cost);\ndurable = one fsync per commit "
               "(the device's price for an acknowledged write).\n\n";

  PrintChurnJson("churn_baseline", kQueries, base, base_qps, 0.0, 0);
  for (const WalRow& row : rows) {
    PrintChurnJson(row.section, kQueries, row.result, row.qps,
                   row.overhead_pct, row.wal_bytes);
  }

  // ---- Cold start from a binary snapshot ---------------------------
  // Build once, snapshot, drop, load, answer. The acceptance bound is
  // load + first query < 5 s at the million-subject scale.
  const size_t kNodes = smoke ? (size_t{1} << 14) : (size_t{1} << 20);
  const std::string snapshot_path = StoreDir("cold") + ".ucrs";
  std::string first_subject;
  {
    Random rng(kSeed + 7);
    graph::ScaleLayeredDagOptions shape;
    shape.nodes = kNodes;
    shape.layers = 24;
    shape.parents_per_node = 2;
    auto dag = graph::GenerateScaleLayeredDag(shape, rng);
    if (!dag.ok()) std::abort();
    core::AccessControlSystem big(std::move(dag).value());
    // Labels on the upper layers so deep sinks resolve through real
    // ancestor sets.
    const size_t labeled = kNodes / 64;
    for (size_t i = 0; i < labeled; ++i) {
      const std::string& name =
          big.dag().name(static_cast<graph::NodeId>(i));
      const Status status =
          (i % 16 == 0) ? big.DenyAccess(name, "vault", "open")
                        : big.Grant(name, "vault", "open");
      if (!status.ok()) std::abort();
    }
    first_subject = big.dag().name(
        static_cast<graph::NodeId>(big.dag().node_count() - 1));
    if (!core::WriteBinarySnapshot(big, /*lsn=*/1, snapshot_path).ok()) {
      std::abort();
    }
  }  // The builder is gone: the load below starts cold.

  Stopwatch load_watch;
  auto loaded = core::LoadBinarySnapshot(snapshot_path, {});
  if (!loaded.ok()) std::abort();
  const double load_millis = load_watch.ElapsedMillis();
  Stopwatch query_watch;
  auto first = loaded->CheckAccessByName(first_subject, "vault", "open",
                                         strategy);
  if (!first.ok()) std::abort();
  const double first_query_millis = query_watch.ElapsedMillis();
  const uint64_t snapshot_bytes = FileSize(snapshot_path);
  std::remove(snapshot_path.c_str());

  std::cout << "cold start: " << loaded->dag().node_count() << " subjects, "
            << loaded->dag().edge_count() << " memberships, "
            << snapshot_bytes << " snapshot bytes -> load "
            << FormatDouble(load_millis, 1) << " ms, first query "
            << FormatDouble(first_query_millis, 1) << " ms\n\n";
  std::printf(
      "JSON {\"bench\":\"durability\",\"section\":\"cold_start\","
      "\"subjects\":%zu,\"memberships\":%zu,\"snapshot_bytes\":%llu,"
      "\"load_millis\":%.3f,\"first_query_millis\":%.3f,"
      "\"total_millis\":%.3f}\n",
      loaded->dag().node_count(), loaded->dag().edge_count(),
      static_cast<unsigned long long>(snapshot_bytes), load_millis,
      first_query_millis, load_millis + first_query_millis);

  // The summary line bench_trend.py gates: append overhead ≤5%, cold
  // start <5000 ms.
  std::printf(
      "JSON {\"bench\":\"durability\",\"section\":\"durability_summary\","
      "\"wal_overhead_pct\":%.2f,\"durable_overhead_pct\":%.2f,"
      "\"cold_start_millis\":%.3f,\"cold_start_subjects\":%zu}\n",
      rows[0].overhead_pct, rows[1].overhead_pct,
      load_millis + first_query_millis, loaded->dag().node_count());

  ucr::bench_obs::EmitMetricsSnapshot("durability");
  return 0;
}
