// Shared tail-of-run metrics exposition for the bench binaries
// (DESIGN.md §8). Every bench ends by printing one machine-readable
// snapshot of the process-wide registry so the BENCH_*.json collectors
// capture the run's counters and histograms next to its timing rows:
//
//   JSON {"bench":"<name>","section":"metrics_snapshot","metrics":{...}}
//
// The snapshot is validated before printing and the process aborts on
// malformed JSON — the smoke-mode CI runs double as the check that the
// exposition surface stays parseable.

#ifndef UCR_BENCH_BENCH_OBS_H_
#define UCR_BENCH_BENCH_OBS_H_

#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/metrics.h"

namespace ucr::bench_obs {

inline void EmitMetricsSnapshot(const char* bench) {
  const std::string metrics = obs::Registry::Global().RenderJson();
  if (!obs::JsonLooksValid(metrics)) {
    std::cerr << "FATAL: " << bench
              << " metrics snapshot is not valid JSON\n";
    std::abort();
  }
  std::cout << "JSON {\"bench\":\"" << bench
            << "\",\"section\":\"metrics_snapshot\",\"metrics\":" << metrics
            << "}\n";
}

}  // namespace ucr::bench_obs

#endif  // UCR_BENCH_BENCH_OBS_H_
