// Shared tail-of-run metrics exposition for the bench binaries
// (DESIGN.md §8). Every bench ends by printing one machine-readable
// snapshot of the process-wide registry so the BENCH_*.json collectors
// capture the run's counters and histograms next to its timing rows:
//
//   JSON {"bench":"<name>","section":"metrics_snapshot","metrics":{...}}
//
// The snapshot is validated before printing and the process aborts on
// malformed JSON — the smoke-mode CI runs double as the check that the
// exposition surface stays parseable.

#ifndef UCR_BENCH_BENCH_OBS_H_
#define UCR_BENCH_BENCH_OBS_H_

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "obs/health.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace ucr::bench_obs {

inline void EmitMetricsSnapshot(const char* bench) {
  const std::string metrics = obs::Registry::Global().RenderJson();
  if (!obs::JsonLooksValid(metrics)) {
    std::cerr << "FATAL: " << bench
              << " metrics snapshot is not valid JSON\n";
    std::abort();
  }
  std::cout << "JSON {\"bench\":\"" << bench
            << "\",\"section\":\"metrics_snapshot\",\"metrics\":" << metrics
            << "}\n";
}

/// One trend-able row summarizing the run's telemetry timeline: how
/// many ticks the sampler completed, what one scrape cost at the tail,
/// and whether the health engine saw transitions. Emitted by benches
/// that run with the sampler enabled so tools/bench_trend.py can gate
/// sampler-overhead regressions like any other metric.
inline void EmitTimeseriesSummary(const char* bench) {
  obs::TimeSeriesSampler& ts = obs::TimeSeriesSampler::Global();
  uint64_t scrape_p99 = 0;
  for (const auto& p :
       ts.Recent("ucr_timeseries_scrape_ns", ts.options().tier0_capacity)) {
    scrape_p99 = std::max(scrape_p99, p.p99);
  }
  uint64_t exemplars = 0;
  for (const auto& m : obs::Registry::Global().Collect()) {
    if (m.kind != 2 || m.histogram_handle == nullptr) continue;
    for (const auto& e : m.histogram_handle->SnapExemplars()) {
      if (e.valid) ++exemplars;
    }
  }
  const obs::HealthVerdict verdict = obs::HealthEngine::Global().last_verdict();
  std::cout << "JSON {\"bench\":\"" << bench
            << "\",\"section\":\"timeseries_summary\",\"sampler_ticks\":"
            << ts.ticks_total()
            << ",\"scrape_p99_ns\":" << scrape_p99
            << ",\"exemplars\":" << exemplars
            << ",\"health_status\":\"" << obs::HealthStatusName(verdict.status)
            << "\",\"health_transitions\":"
            << obs::HealthEngine::Global().transitions_total() << "}\n";
}

}  // namespace ucr::bench_obs

#endif  // UCR_BENCH_BENCH_OBS_H_
