// Ablation A6 — are the 48 strategies *meaningfully* different?
//
// The framework's value rests on strategy choice mattering in
// practice. This harness resolves every (user, strategy) pair on an
// enterprise hierarchy and reports: how often each policy stage
// actually decides, each strategy's grant rate, and how much the
// strategies disagree pairwise — the observable diversity of the
// policy space the single parametric algorithm spans.

#include <algorithm>
#include <array>
#include <cstdio>
#include <iostream>
#include <vector>

#include "acm/assignment.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/ancestor_subgraph.h"
#include "util/random.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "workload/enterprise.h"

#include "bench_obs.h"

int main() {
  using namespace ucr;  // NOLINT(build/namespaces): benchmark brevity.

  Random rng(404);
  workload::EnterpriseOptions shape;
  shape.individuals = 600;
  shape.groups = 2000;
  shape.top_level_groups = 25;
  shape.target_edges = 6800;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  if (!dag.ok()) {
    std::cerr << dag.status().ToString() << "\n";
    return 1;
  }

  acm::ExplicitAcm eacm;
  const acm::ObjectId obj = eacm.InternObject("obj").value();
  const acm::RightId read = eacm.InternRight("read").value();
  acm::RandomAssignmentOptions assign;
  assign.authorization_rate = 0.01;
  assign.negative_fraction = 0.4;
  if (!acm::AssignRandomAuthorizations(*dag, obj, read, assign, rng, &eacm)
           .ok()) {
    return 1;
  }
  const auto labels = eacm.ExtractLabels(dag->node_count(), obj, read);

  // Users only, as in the Fig. 7 experiments.
  std::vector<graph::NodeId> users;
  for (graph::NodeId v : dag->Sinks()) {
    if (dag->name(v).rfind("user", 0) == 0) users.push_back(v);
  }

  const auto& strategies = core::AllStrategies();
  // decisions[u][s]: bit per (user, strategy).
  std::vector<std::vector<bool>> granted(users.size());
  std::array<size_t, 3> decided_by_line{};  // 6, 8, 9.
  for (size_t u = 0; u < users.size(); ++u) {
    const graph::AncestorSubgraph sub(*dag, users[u]);
    const core::RightsBag bag = core::PropagateAggregated(sub, labels);
    granted[u].resize(strategies.size());
    for (size_t s = 0; s < strategies.size(); ++s) {
      core::ResolveTrace trace;
      granted[u][s] =
          core::Resolve(bag, strategies[s], &trace) == acm::Mode::kPositive;
      ++decided_by_line[trace.returned_line == 6   ? 0
                        : trace.returned_line == 8 ? 1
                                                   : 2];
    }
  }

  std::printf("Hierarchy: %zu nodes, %zu users, %zu explicit "
              "authorizations on <obj, read>\n\n",
              dag->node_count(), users.size(), eacm.size());

  const size_t total =
      users.size() * strategies.size();
  std::printf("Which policy decides (over %zu user x strategy cells):\n"
              "  majority (line 6):   %5.1f%%\n"
              "  locality (line 8):   %5.1f%%\n"
              "  preference (line 9): %5.1f%%\n\n",
              total,
              100.0 * static_cast<double>(decided_by_line[0]) /
                  static_cast<double>(total),
              100.0 * static_cast<double>(decided_by_line[1]) /
                  static_cast<double>(total),
              100.0 * static_cast<double>(decided_by_line[2]) /
                  static_cast<double>(total));

  // Grant-rate spectrum.
  std::vector<std::pair<double, std::string>> rates;
  for (size_t s = 0; s < strategies.size(); ++s) {
    size_t count = 0;
    for (size_t u = 0; u < users.size(); ++u) count += granted[u][s] ? size_t{1} : size_t{0};
    rates.emplace_back(
        100.0 * static_cast<double>(count) /
            static_cast<double>(users.size()),
        strategies[s].ToMnemonic());
  }
  std::sort(rates.begin(), rates.end());
  std::cout << "Grant-rate spectrum (least to most permissive):\n";
  for (size_t i = 0; i < rates.size(); i += size_t{6}) {
    std::printf("  %-7s %5.1f%%   ...   %-7s %5.1f%%\n",
                rates[i].second.c_str(), rates[i].first,
                rates[std::min(i + 5, rates.size() - 1)].second.c_str(),
                rates[std::min(i + 5, rates.size() - 1)].first);
  }

  // Pairwise disagreement: distribution and extremes.
  double max_disagree = 0.0;
  std::string max_pair;
  size_t identical_pairs = 0;
  size_t pair_count = 0;
  double total_disagree = 0.0;
  for (size_t a = 0; a < strategies.size(); ++a) {
    for (size_t b = a + 1; b < strategies.size(); ++b) {
      size_t differs = 0;
      for (size_t u = 0; u < users.size(); ++u) {
        differs += granted[u][a] != granted[u][b] ? size_t{1} : size_t{0};
      }
      const double frac =
          static_cast<double>(differs) / static_cast<double>(users.size());
      total_disagree += frac;
      ++pair_count;
      if (differs == 0) ++identical_pairs;
      if (frac > max_disagree) {
        max_disagree = frac;
        max_pair = strategies[a].ToMnemonic() + " vs " +
                   strategies[b].ToMnemonic();
      }
    }
  }
  std::printf(
      "\nPairwise strategy disagreement over %zu users:\n"
      "  mean %.1f%%, max %.1f%% (%s),\n"
      "  %zu of %zu pairs agree on every user of THIS workload\n"
      "  (distinctness in general is proven by the Table 2 golden test,\n"
      "   where strategies differ on the paper's own example).\n",
      users.size(), 100.0 * total_disagree / static_cast<double>(pair_count),
      100.0 * max_disagree, max_pair.c_str(), identical_pairs, pair_count);
  ucr::bench_obs::EmitMetricsSnapshot("ablation_strategies");
  return 0;
}
