#include "util/random.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ucr {
namespace {

TEST(RandomTest, DeterministicForEqualSeeds) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RandomTest, UniformStaysInBounds) {
  Random rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformBoundOneIsAlwaysZero) {
  Random rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RandomTest, UniformCoversAllResidues) {
  Random rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RandomTest, UniformIntRespectsInclusiveRange) {
  Random rng(3);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformIntSingletonRange) {
  Random rng(3);
  EXPECT_EQ(rng.UniformInt(42, 42), 42);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // Law of large numbers.
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyFair) {
  Random rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.03);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RandomTest, SampleWithoutReplacementIsDistinct) {
  Random rng(19);
  const auto sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t s : sample) EXPECT_LT(s, 100u);
}

TEST(RandomTest, SampleAllWhenKExceedsN) {
  Random rng(23);
  const auto sample = rng.SampleWithoutReplacement(5, 99);
  EXPECT_EQ(sample.size(), 5u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(RandomTest, SampleUniformity) {
  // Every index should be sampled roughly equally often.
  Random rng(29);
  std::vector<int> hits(10, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    for (size_t idx : rng.SampleWithoutReplacement(10, 3)) ++hits[idx];
  }
  for (int h : hits) EXPECT_NEAR(h, 600, 120);
}

}  // namespace
}  // namespace ucr
