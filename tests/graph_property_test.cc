// Randomized structural invariants of the graph substrate — the
// quantities (path counts, distances, the d metric) that the paper's
// complexity analysis and Figures 6/7 are built on.

#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "graph/ancestor_subgraph.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::graph {
namespace {

Dag RandomDag(Random& rng) {
  LayeredDagOptions opt;
  opt.layers = 2 + static_cast<size_t>(rng.Uniform(4));
  opt.nodes_per_layer = 2 + static_cast<size_t>(rng.Uniform(5));
  opt.edge_probability = 0.35;
  opt.skip_edge_probability = 0.2;
  auto dag = GenerateLayeredDag(opt, rng);
  EXPECT_TRUE(dag.ok());
  return std::move(dag).value();
}

/// Brute-force path statistics from `source` to `sink` over the Dag.
struct PathStats {
  uint64_t count = 0;
  uint64_t total_length = 0;
  uint32_t shortest = UINT32_MAX;
  uint32_t longest = 0;
};

PathStats BruteForce(const Dag& dag, NodeId source, NodeId sink) {
  PathStats stats;
  std::function<void(NodeId, uint32_t)> dfs = [&](NodeId v, uint32_t len) {
    if (v == sink) {
      ++stats.count;
      stats.total_length += len;
      stats.shortest = std::min(stats.shortest, len);
      stats.longest = std::max(stats.longest, len);
      return;
    }
    for (NodeId c : dag.children(v)) dfs(c, len + 1);
  };
  dfs(source, 0);
  return stats;
}

TEST(GraphPropertyTest, SubgraphMetricsMatchBruteForce) {
  Random rng(123);
  for (int trial = 0; trial < 25; ++trial) {
    const Dag dag = RandomDag(rng);
    for (NodeId sink : dag.Sinks()) {
      const AncestorSubgraph sub(dag, sink);
      for (LocalId v = 0; v < sub.member_count(); ++v) {
        const PathStats expected =
            BruteForce(dag, sub.global_id(v), sink);
        ASSERT_GT(expected.count, 0u)
            << "every member must reach the sink";
        EXPECT_EQ(sub.path_count(v), expected.count);
        EXPECT_EQ(sub.total_path_length(v), expected.total_length);
        EXPECT_EQ(sub.shortest_distance_to_sink(v), expected.shortest);
        EXPECT_EQ(sub.longest_distance_to_sink(v), expected.longest);
      }
    }
  }
}

TEST(GraphPropertyTest, MembershipEqualsReverseReachability) {
  Random rng(456);
  for (int trial = 0; trial < 25; ++trial) {
    const Dag dag = RandomDag(rng);
    const NodeId sink = dag.Sinks().front();
    const AncestorSubgraph sub(dag, sink);
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      const bool reaches = BruteForce(dag, v, sink).count > 0;
      EXPECT_EQ(sub.ToLocal(v) != kInvalidNode, reaches) << dag.name(v);
    }
  }
}

TEST(GraphPropertyTest, KDagClosedForms) {
  // KDAG(n): paths from position i to the sink are 2^(n-i-2) (each
  // intermediate node independently on/off the path), total C(n,2)
  // edges, and the root-to-sink shortest/longest paths are 1 / n-1.
  Random rng(789);
  for (size_t n : {size_t{5}, size_t{8}, size_t{11}}) {
    auto dag = GenerateKDag(n, rng);
    ASSERT_TRUE(dag.ok());
    const NodeId sink = static_cast<NodeId>(n - 1);
    const AncestorSubgraph sub(*dag, sink);
    EXPECT_EQ(sub.member_count(), n);
    EXPECT_EQ(dag->edge_count(), n * (n - 1) / 2);
    for (NodeId i = 0; i + 1 < n; ++i) {
      const LocalId local = sub.ToLocal(i);
      const uint64_t expected =
          i + 2 <= n ? (1ull << (n - i - 2)) : 1ull;
      EXPECT_EQ(sub.path_count(local), expected) << "position " << i;
      EXPECT_EQ(sub.shortest_distance_to_sink(local), 1u);
      EXPECT_EQ(sub.longest_distance_to_sink(local), n - 1 - i);
    }
  }
}

TEST(GraphPropertyTest, TopoOrderAgreesBetweenDagAndSubgraph) {
  Random rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    const Dag dag = RandomDag(rng);
    // Whole-graph order respects edges (checked in dag_test); here:
    // the sub-graph orders of all sinks are consistent projections.
    for (NodeId sink : dag.Sinks()) {
      const AncestorSubgraph sub(dag, sink);
      std::vector<size_t> pos(sub.member_count());
      for (size_t i = 0; i < sub.topological_order().size(); ++i) {
        pos[sub.topological_order()[i]] = i;
      }
      for (LocalId v = 0; v < sub.member_count(); ++v) {
        for (LocalId c : sub.children(v)) {
          EXPECT_LT(pos[v], pos[c]);
        }
      }
    }
  }
}

TEST(GraphPropertyTest, RootsPartitionBySinkReachability) {
  // Every root of a sink's sub-graph is a root of the full graph, and
  // every full-graph root that reaches the sink appears.
  Random rng(654);
  for (int trial = 0; trial < 10; ++trial) {
    const Dag dag = RandomDag(rng);
    const NodeId sink = dag.Sinks().back();
    const AncestorSubgraph sub(dag, sink);
    size_t reaching_roots = 0;
    for (NodeId r : dag.Roots()) {
      if (BruteForce(dag, r, sink).count > 0) ++reaching_roots;
    }
    // The sink itself can be a root only in degenerate graphs.
    size_t sub_roots = sub.roots().size();
    EXPECT_EQ(sub_roots, reaching_roots == 0 ? 1 : reaching_roots);
    for (LocalId r : sub.roots()) {
      if (sub.global_id(r) != sink) {
        EXPECT_TRUE(dag.is_root(sub.global_id(r)));
      }
    }
  }
}

TEST(GraphPropertyTest, EdgeCountConsistency) {
  Random rng(987);
  for (int trial = 0; trial < 10; ++trial) {
    const Dag dag = RandomDag(rng);
    size_t total_children = 0;
    size_t total_parents = 0;
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      total_children += dag.children(v).size();
      total_parents += dag.parents(v).size();
    }
    EXPECT_EQ(total_children, dag.edge_count());
    EXPECT_EQ(total_parents, dag.edge_count());
    // Parent/child lists are mutually consistent.
    for (NodeId v = 0; v < dag.node_count(); ++v) {
      for (NodeId c : dag.children(v)) {
        auto parents = dag.parents(c);
        EXPECT_NE(std::find(parents.begin(), parents.end(), v),
                  parents.end());
      }
    }
  }
}

}  // namespace
}  // namespace ucr::graph
