#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace ucr {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"subject", "dis", "mode"});
  t.AddRow({"User", "1", "-"});
  t.AddRow({"S5", "12", "+"});
  const std::string out = t.ToString();
  EXPECT_EQ(out,
            "subject | dis | mode\n"
            "--------+-----+-----\n"
            "User    | 1   | -   \n"
            "S5      | 12  | +   \n");
}

TEST(TablePrinterTest, WideCellStretchesColumn) {
  TablePrinter t({"a", "b"});
  t.AddRow({"very-long-cell", "x"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("very-long-cell | x"), std::string::npos);
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});
  const std::string out = t.ToString();
  EXPECT_NE(out.find("1 |   |  "), std::string::npos);
}

TEST(TablePrinterTest, ExtraCellsAreDropped) {
  TablePrinter t({"a"});
  t.AddRow({"1", "overflow"});
  EXPECT_EQ(t.ToString(),
            "a\n"
            "-\n"
            "1\n");
}

TEST(TablePrinterTest, RowCount) {
  TablePrinter t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.AddRow({"1"});
  t.AddRow({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TablePrinterTest, HeaderOnlyTable) {
  TablePrinter t({"col1", "col2"});
  EXPECT_EQ(t.ToString(),
            "col1 | col2\n"
            "-----+-----\n");
}

}  // namespace
}  // namespace ucr
