#include "core/wal.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fs.h"

namespace ucr::core {
namespace {

using MutationOp = AccessControlSystem::MutationOp;

std::string TempWalPath(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<MutationOp> SampleBatch() {
  std::vector<MutationOp> ops;
  ops.push_back(MutationOp::AddMember("eng", "alice"));
  ops.push_back(MutationOp::Grant("eng", "repo", "read"));
  ops.push_back(MutationOp::Deny("alice", "repo", "push"));
  return ops;
}

TEST(WalTest, MissingFileReadsAsEmptyLog) {
  auto contents = ReadWal(TempWalPath("wal_missing.log"), true);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->events.empty());
  EXPECT_EQ(contents->last_lsn, 0u);
}

TEST(WalTest, BatchRoundTrip) {
  const std::string path = TempWalPath("wal_roundtrip.log");
  auto writer = WalWriter::Open(path, /*next_lsn=*/1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  const std::vector<MutationOp> ops = SampleBatch();
  ASSERT_TRUE(writer->BeginBatch(ops).ok());
  auto lsn = writer->Commit(ops.size(), ops.size());
  ASSERT_TRUE(lsn.ok());
  // 3 op records consumed LSNs 1..3; the commit record takes 4.
  EXPECT_EQ(lsn.value(), 4u);
  EXPECT_EQ(writer->next_lsn(), 5u);

  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  ASSERT_EQ(contents->events.size(), 1u);
  const WalEvent& event = contents->events[0];
  EXPECT_EQ(event.kind, WalEvent::Kind::kBatch);
  EXPECT_EQ(event.lsn, 4u);
  EXPECT_EQ(event.applied, 3u);
  ASSERT_EQ(event.ops.size(), 3u);
  EXPECT_EQ(event.ops[0].kind, MutationOp::Kind::kAddMembership);
  EXPECT_EQ(event.ops[0].subject, "eng");
  EXPECT_EQ(event.ops[0].object, "alice");
  EXPECT_EQ(event.ops[1].kind, MutationOp::Kind::kGrant);
  EXPECT_EQ(event.ops[1].right, "read");
  EXPECT_EQ(event.ops[2].kind, MutationOp::Kind::kDeny);
  EXPECT_EQ(contents->last_lsn, 4u);
  EXPECT_EQ(contents->torn_bytes, 0u);
}

TEST(WalTest, PartialBatchCommitCarriesAppliedCount) {
  const std::string path = TempWalPath("wal_partial.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<MutationOp> ops = SampleBatch();
  ASSERT_TRUE(writer->BeginBatch(ops).ok());
  ASSERT_TRUE(writer->Commit(ops.size(), /*applied=*/1).ok());

  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->events.size(), 1u);
  EXPECT_EQ(contents->events[0].applied, 1u);  // Replay only op 0.
  EXPECT_EQ(contents->events[0].ops.size(), 3u);
}

TEST(WalTest, StrategyRecordRoundTrip) {
  const std::string path = TempWalPath("wal_strategy.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  auto lsn = writer->AppendStrategyChange("D+LMP-");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 1u);

  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->events.size(), 1u);
  EXPECT_EQ(contents->events[0].kind, WalEvent::Kind::kStrategyChange);
  EXPECT_EQ(contents->events[0].strategy_mnemonic, "D+LMP-");
}

// An op run with no commit record is an unacknowledged batch: recovery
// must discard it (the caller never heard "done").
TEST(WalTest, UncommittedOpsAreDiscarded) {
  const std::string path = TempWalPath("wal_uncommitted.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<MutationOp> ops = SampleBatch();
  ASSERT_TRUE(writer->BeginBatch(ops).ok());  // Written, never committed.

  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->events.empty());
  EXPECT_EQ(contents->uncommitted_ops, 3u);
}

// A crash mid-append leaves a torn record at the tail; recovery keeps
// the valid prefix, truncates the tail, and the next writer continues
// on a clean file.
TEST(WalTest, TornTailIsTruncatedAndLogStaysUsable) {
  const std::string path = TempWalPath("wal_torn.log");
  {
    auto writer = WalWriter::Open(path, 1);
    ASSERT_TRUE(writer.ok());
    const std::vector<MutationOp> ops = SampleBatch();
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
  }
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  const size_t full_size = full->size();

  // Append half a record's worth of garbage — a torn write.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x10\x00\x00\x00\xde\xad";
    std::fwrite(garbage, 1, sizeof(garbage) - 1, f);
    std::fclose(f);
  }

  auto contents = ReadWal(path, /*repair_torn_tail=*/true);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->events.size(), 1u);
  EXPECT_GT(contents->torn_bytes, 0u);

  auto repaired = ReadFileToString(path);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), full_size);  // Tail gone, prefix intact.

  // The next writer appends after the clean tail and both batches read
  // back.
  auto writer = WalWriter::Open(path, contents->last_lsn + 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<MutationOp> more = {MutationOp::Revoke("eng", "repo",
                                                           "read")};
  ASSERT_TRUE(writer->BeginBatch(more).ok());
  ASSERT_TRUE(writer->Commit(1, 1).ok());
  auto again = ReadWal(path, true);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->events.size(), 2u);
}

// A flipped bit inside a record body fails its CRC; the scan stops
// there (everything after is unreachable without a valid frame).
TEST(WalTest, CorruptRecordStopsReplayAtLastValidPrefix) {
  const std::string path = TempWalPath("wal_bitflip.log");
  size_t first_batch_end;
  {
    auto writer = WalWriter::Open(path, 1);
    ASSERT_TRUE(writer.ok());
    std::vector<MutationOp> ops = {MutationOp::AddMember("a", "b")};
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(1, 1).ok());
    auto mid = ReadFileToString(path);
    ASSERT_TRUE(mid.ok());
    first_batch_end = mid->size();
    ops = {MutationOp::AddMember("a", "c")};
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(1, 1).ok());
  }
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated[first_batch_end + 12] ^= 0x40;  // Inside the second batch.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(mutated.data(), 1, mutated.size(), f);
    std::fclose(f);
  }

  auto contents = ReadWal(path, /*repair_torn_tail=*/false);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->events.size(), 1u);  // Only the first batch.
  EXPECT_GT(contents->torn_bytes, 0u);
}

TEST(WalTest, BadMagicIsCorruption) {
  const std::string path = TempWalPath("wal_badmagic.log");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOTAWAL0_and_some_tail", 1, 22, f);
  std::fclose(f);
  auto contents = ReadWal(path, true);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, ResetTruncatesAndKeepsLsnsMonotonic) {
  const std::string path = TempWalPath("wal_reset.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<MutationOp> ops = SampleBatch();
  ASSERT_TRUE(writer->BeginBatch(ops).ok());
  ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
  const uint64_t lsn_before = writer->next_lsn();

  ASSERT_TRUE(writer->Reset(lsn_before).ok());
  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->events.empty());

  // Post-reset records carry LSNs above everything pre-reset.
  ASSERT_TRUE(writer->BeginBatch(ops).ok());
  auto lsn = writer->Commit(ops.size(), ops.size());
  ASSERT_TRUE(lsn.ok());
  EXPECT_GT(lsn.value(), lsn_before);
  auto after = ReadWal(path, true);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->events.size(), 1u);
  EXPECT_EQ(after->events[0].lsn, lsn.value());
}

// Relaxed group commit (`sync_on_commit(false)`): appends stay ordered
// and checksummed, fsync is deferred to Sync()/shutdown — commits read
// back identically, only the crash-loss window differs.
TEST(WalTest, RelaxedCommitsReadBackAfterSyncOrShutdown) {
  const std::string path = TempWalPath("wal_relaxed.log");
  {
    auto writer = WalWriter::Open(path, 1);
    ASSERT_TRUE(writer.ok());
    writer->set_sync_on_commit(false);
    const std::vector<MutationOp> ops = SampleBatch();
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
    ASSERT_TRUE(writer->Sync().ok());  // Explicit barrier mid-stream.
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
  }  // Destructor syncs the relaxed residue on clean shutdown.
  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->events.size(), 2u);
  EXPECT_EQ(contents->torn_bytes, 0u);
}

TEST(WalTest, EmptyBatchCommits) {
  const std::string path = TempWalPath("wal_empty_batch.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->BeginBatch({}).ok());
  auto lsn = writer->Commit(0, 0);
  ASSERT_TRUE(lsn.ok());
  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->events.size(), 1u);
  EXPECT_TRUE(contents->events[0].ops.empty());
}

}  // namespace
}  // namespace ucr::core
