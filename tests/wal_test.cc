#include "core/wal.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fs.h"

namespace ucr::core {
namespace {

using MutationOp = AccessControlSystem::MutationOp;

std::string TempWalPath(const char* name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::vector<MutationOp> SampleBatch() {
  std::vector<MutationOp> ops;
  ops.push_back(MutationOp::AddMember("eng", "alice"));
  ops.push_back(MutationOp::Grant("eng", "repo", "read"));
  ops.push_back(MutationOp::Deny("alice", "repo", "push"));
  return ops;
}

TEST(WalTest, MissingFileReadsAsEmptyLog) {
  auto contents = ReadWal(TempWalPath("wal_missing.log"), true);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->events.empty());
  EXPECT_EQ(contents->last_lsn, 0u);
}

TEST(WalTest, BatchRoundTrip) {
  const std::string path = TempWalPath("wal_roundtrip.log");
  auto writer = WalWriter::Open(path, /*next_lsn=*/1);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();

  const std::vector<MutationOp> ops = SampleBatch();
  ASSERT_TRUE(writer->BeginBatch(ops).ok());
  auto lsn = writer->Commit(ops.size(), ops.size());
  ASSERT_TRUE(lsn.ok());
  // 3 op records consumed LSNs 1..3; the commit record takes 4.
  EXPECT_EQ(lsn.value(), 4u);
  EXPECT_EQ(writer->next_lsn(), 5u);

  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  ASSERT_EQ(contents->events.size(), 1u);
  const WalEvent& event = contents->events[0];
  EXPECT_EQ(event.kind, WalEvent::Kind::kBatch);
  EXPECT_EQ(event.lsn, 4u);
  EXPECT_EQ(event.applied, 3u);
  ASSERT_EQ(event.ops.size(), 3u);
  EXPECT_EQ(event.ops[0].kind, MutationOp::Kind::kAddMembership);
  EXPECT_EQ(event.ops[0].subject, "eng");
  EXPECT_EQ(event.ops[0].object, "alice");
  EXPECT_EQ(event.ops[1].kind, MutationOp::Kind::kGrant);
  EXPECT_EQ(event.ops[1].right, "read");
  EXPECT_EQ(event.ops[2].kind, MutationOp::Kind::kDeny);
  EXPECT_EQ(contents->last_lsn, 4u);
  EXPECT_EQ(contents->torn_bytes, 0u);
}

TEST(WalTest, PartialBatchCommitCarriesAppliedCount) {
  const std::string path = TempWalPath("wal_partial.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<MutationOp> ops = SampleBatch();
  ASSERT_TRUE(writer->BeginBatch(ops).ok());
  ASSERT_TRUE(writer->Commit(ops.size(), /*applied=*/1).ok());

  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->events.size(), 1u);
  EXPECT_EQ(contents->events[0].applied, 1u);  // Replay only op 0.
  EXPECT_EQ(contents->events[0].ops.size(), 3u);
}

TEST(WalTest, StrategyRecordRoundTrip) {
  const std::string path = TempWalPath("wal_strategy.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  auto lsn = writer->AppendStrategyChange("D+LMP-");
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 1u);

  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->events.size(), 1u);
  EXPECT_EQ(contents->events[0].kind, WalEvent::Kind::kStrategyChange);
  EXPECT_EQ(contents->events[0].strategy_mnemonic, "D+LMP-");
}

// An op run with no commit record is an unacknowledged batch: recovery
// must discard it (the caller never heard "done").
TEST(WalTest, UncommittedOpsAreDiscarded) {
  const std::string path = TempWalPath("wal_uncommitted.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<MutationOp> ops = SampleBatch();
  ASSERT_TRUE(writer->BeginBatch(ops).ok());  // Written, never committed.

  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->events.empty());
  EXPECT_EQ(contents->uncommitted_ops, 3u);
}

// The orphan-accumulation regression: repair must truncate trailing
// *valid-but-uncommitted* op records, not just torn bytes. If the
// orphans stayed, the next writer would append fresh batches after
// them, and the following recovery scan would fold the orphans into
// the first new commit's batch, fail its op_count check, and discard
// every later acknowledged commit — silent loss of committed
// mutations.
TEST(WalTest, RepairTruncatesUncommittedTailSoLaterCommitsSurvive) {
  const std::string path = TempWalPath("wal_orphan.log");
  const std::vector<MutationOp> ops = SampleBatch();
  size_t committed_size;
  {
    auto writer = WalWriter::Open(path, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
    auto mid = ReadFileToString(path);
    ASSERT_TRUE(mid.ok());
    committed_size = mid->size();
    // Crash between BeginBatch's write and the commit record: valid op
    // records with no commit land at the tail.
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
  }

  auto first = ReadWal(path, /*repair_torn_tail=*/true);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->events.size(), 1u);
  EXPECT_EQ(first->uncommitted_ops, ops.size());
  auto repaired = ReadFileToString(path);
  ASSERT_TRUE(repaired.ok());
  // The orphans are gone: the file ends at the committed boundary.
  EXPECT_EQ(repaired->size(), committed_size);

  // The next writer appends two more acknowledged batches...
  {
    auto writer = WalWriter::Open(path, first->last_lsn + 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
  }

  // ...and the next recovery sees all three commits, none discarded.
  auto second = ReadWal(path, /*repair_torn_tail=*/true);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->events.size(), 3u);
  EXPECT_EQ(second->torn_bytes, 0u);
  EXPECT_EQ(second->uncommitted_ops, 0u);
}

// A strategy record can never legally sit between a batch's ops and
// its commit; if one does (legacy repair bug wrote after orphans), the
// scan stops at the committed boundary before the orphans so replayed
// events and the repaired file agree.
TEST(WalTest, StrategyRecordAfterOrphanOpsStopsScanAtCommittedBoundary) {
  const std::string path = TempWalPath("wal_orphan_strategy.log");
  const std::vector<MutationOp> ops = SampleBatch();
  {
    auto writer = WalWriter::Open(path, 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->BeginBatch(ops).ok());  // Orphans, no commit.
  }
  {
    // A (buggy) writer that reopened without repair and kept going.
    auto writer = WalWriter::Open(path, ops.size() + 1);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendStrategyChange("D+LMP-").ok());
  }

  auto contents = ReadWal(path, /*repair_torn_tail=*/true);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->events.empty());  // Strategy not replayed.
  EXPECT_EQ(contents->uncommitted_ops, ops.size());

  // Repaired back to the bare magic: nothing was ever committed.
  auto after = ReadWal(path, true);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->events.empty());
  EXPECT_EQ(after->uncommitted_ops, 0u);
  EXPECT_EQ(after->torn_bytes, 0u);
}

// After any append failure the writer must latch: torn bytes may be on
// disk, and a later "successful" append would land beyond them where
// recovery can never reach — acknowledged-then-lost commits. Reset
// (compaction) truncates the tear and reopens the latch.
TEST(WalTest, WriteFailurePoisonsWriterUntilReset) {
  const std::string path = TempWalPath("wal_poison.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<MutationOp> ops = SampleBatch();

  SetAtomicWriteLimitForTesting(4);  // Torn write a few bytes in.
  const Status torn = writer->BeginBatch(ops);
  SetAtomicWriteLimitForTesting(-1);
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(writer->poisoned());

  // The device "recovers", but the writer must refuse to append after
  // the torn bytes — no silent resume.
  EXPECT_EQ(writer->BeginBatch(ops).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Commit(ops.size(), ops.size()).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->AppendStrategyChange("D+LMP-").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(writer->Sync().code(), StatusCode::kFailedPrecondition);

  // Reset truncates the tear away and heals the latch.
  ASSERT_TRUE(writer->Reset(100).ok());
  EXPECT_FALSE(writer->poisoned());
  ASSERT_TRUE(writer->BeginBatch(ops).ok());
  ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());

  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->events.size(), 1u);
  EXPECT_EQ(contents->torn_bytes, 0u);
}

// A crash mid-append leaves a torn record at the tail; recovery keeps
// the valid prefix, truncates the tail, and the next writer continues
// on a clean file.
TEST(WalTest, TornTailIsTruncatedAndLogStaysUsable) {
  const std::string path = TempWalPath("wal_torn.log");
  {
    auto writer = WalWriter::Open(path, 1);
    ASSERT_TRUE(writer.ok());
    const std::vector<MutationOp> ops = SampleBatch();
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
  }
  auto full = ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  const size_t full_size = full->size();

  // Append half a record's worth of garbage — a torn write.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x10\x00\x00\x00\xde\xad";
    std::fwrite(garbage, 1, sizeof(garbage) - 1, f);
    std::fclose(f);
  }

  auto contents = ReadWal(path, /*repair_torn_tail=*/true);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->events.size(), 1u);
  EXPECT_GT(contents->torn_bytes, 0u);

  auto repaired = ReadFileToString(path);
  ASSERT_TRUE(repaired.ok());
  EXPECT_EQ(repaired->size(), full_size);  // Tail gone, prefix intact.

  // The next writer appends after the clean tail and both batches read
  // back.
  auto writer = WalWriter::Open(path, contents->last_lsn + 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<MutationOp> more = {MutationOp::Revoke("eng", "repo",
                                                           "read")};
  ASSERT_TRUE(writer->BeginBatch(more).ok());
  ASSERT_TRUE(writer->Commit(1, 1).ok());
  auto again = ReadWal(path, true);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->events.size(), 2u);
}

// A flipped bit inside a record body fails its CRC; the scan stops
// there (everything after is unreachable without a valid frame).
TEST(WalTest, CorruptRecordStopsReplayAtLastValidPrefix) {
  const std::string path = TempWalPath("wal_bitflip.log");
  size_t first_batch_end;
  {
    auto writer = WalWriter::Open(path, 1);
    ASSERT_TRUE(writer.ok());
    std::vector<MutationOp> ops = {MutationOp::AddMember("a", "b")};
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(1, 1).ok());
    auto mid = ReadFileToString(path);
    ASSERT_TRUE(mid.ok());
    first_batch_end = mid->size();
    ops = {MutationOp::AddMember("a", "c")};
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(1, 1).ok());
  }
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  std::string mutated = *bytes;
  mutated[first_batch_end + 12] ^= 0x40;  // Inside the second batch.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(mutated.data(), 1, mutated.size(), f);
    std::fclose(f);
  }

  auto contents = ReadWal(path, /*repair_torn_tail=*/false);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->events.size(), 1u);  // Only the first batch.
  EXPECT_GT(contents->torn_bytes, 0u);
}

TEST(WalTest, BadMagicIsCorruption) {
  const std::string path = TempWalPath("wal_badmagic.log");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite("NOTAWAL0_and_some_tail", 1, 22, f);
  std::fclose(f);
  auto contents = ReadWal(path, true);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kCorruption);
}

TEST(WalTest, ResetTruncatesAndKeepsLsnsMonotonic) {
  const std::string path = TempWalPath("wal_reset.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  const std::vector<MutationOp> ops = SampleBatch();
  ASSERT_TRUE(writer->BeginBatch(ops).ok());
  ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
  const uint64_t lsn_before = writer->next_lsn();

  ASSERT_TRUE(writer->Reset(lsn_before).ok());
  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->events.empty());

  // Post-reset records carry LSNs above everything pre-reset.
  ASSERT_TRUE(writer->BeginBatch(ops).ok());
  auto lsn = writer->Commit(ops.size(), ops.size());
  ASSERT_TRUE(lsn.ok());
  EXPECT_GT(lsn.value(), lsn_before);
  auto after = ReadWal(path, true);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->events.size(), 1u);
  EXPECT_EQ(after->events[0].lsn, lsn.value());
}

// Relaxed group commit (`sync_on_commit(false)`): appends stay ordered
// and checksummed, fsync is deferred to Sync()/shutdown — commits read
// back identically, only the crash-loss window differs.
TEST(WalTest, RelaxedCommitsReadBackAfterSyncOrShutdown) {
  const std::string path = TempWalPath("wal_relaxed.log");
  {
    auto writer = WalWriter::Open(path, 1);
    ASSERT_TRUE(writer.ok());
    writer->set_sync_on_commit(false);
    const std::vector<MutationOp> ops = SampleBatch();
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
    ASSERT_TRUE(writer->Sync().ok());  // Explicit barrier mid-stream.
    ASSERT_TRUE(writer->BeginBatch(ops).ok());
    ASSERT_TRUE(writer->Commit(ops.size(), ops.size()).ok());
  }  // Destructor syncs the relaxed residue on clean shutdown.
  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->events.size(), 2u);
  EXPECT_EQ(contents->torn_bytes, 0u);
}

TEST(WalTest, EmptyBatchCommits) {
  const std::string path = TempWalPath("wal_empty_batch.log");
  auto writer = WalWriter::Open(path, 1);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer->BeginBatch({}).ok());
  auto lsn = writer->Commit(0, 0);
  ASSERT_TRUE(lsn.ok());
  auto contents = ReadWal(path, true);
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->events.size(), 1u);
  EXPECT_TRUE(contents->events[0].ops.empty());
}

}  // namespace
}  // namespace ucr::core
