// Differential tests for the allocation-free hot path (DESIGN.md §7):
// the scratch-arena + flat-propagation + streaming-resolve engine must
// produce decisions, traces, and propagation stats bit-identical to
// the classic aggregated engine — and both must agree with the
// paper-literal tuple engine — for all 48 canonical strategies, all
// three propagation modes, on the paper's Fig. 1 example and on
// randomized hierarchies with random sparse explicit matrices.

#include <gtest/gtest.h>

#include <vector>

#include "acm/acm.h"
#include "core/batch_resolver.h"
#include "core/effective_matrix.h"
#include "core/paper_example.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/ancestor_subgraph.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;

constexpr PropagationMode kAllModes[] = {PropagationMode::kBoth,
                                         PropagationMode::kFirstWins,
                                         PropagationMode::kSecondWins};

const char* ModeName(PropagationMode mode) {
  switch (mode) {
    case PropagationMode::kBoth: return "both";
    case PropagationMode::kFirstWins: return "first-wins";
    case PropagationMode::kSecondWins: return "second-wins";
  }
  return "?";
}

struct Column {
  acm::ObjectId object;
  acm::RightId right;
};

/// Scatters a random sparse (object, right) column over the hierarchy.
/// `label_rate` may be 1.0 to label every subject — the adversarial
/// case for the first-wins/second-wins suppression logic.
Column MakeRandomColumn(acm::ExplicitAcm& eacm, const graph::Dag& dag,
                        const char* object, const char* right,
                        double label_rate, Random& rng) {
  const acm::ObjectId o = eacm.InternObject(object).value();
  const acm::RightId r = eacm.InternRight(right).value();
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    if (!rng.Bernoulli(label_rate)) continue;
    const Mode mode =
        rng.Bernoulli(0.4) ? Mode::kNegative : Mode::kPositive;
    EXPECT_TRUE(eacm.Set(v, o, r, mode).ok());
  }
  return {o, r};
}

void ExpectTraceEq(const ResolveTrace& fast, const ResolveTrace& classic) {
  ASSERT_EQ(fast.c1, classic.c1);
  ASSERT_EQ(fast.c2, classic.c2);
  ASSERT_EQ(fast.auth_computed, classic.auth_computed);
  ASSERT_EQ(fast.auth_has_positive, classic.auth_has_positive);
  ASSERT_EQ(fast.auth_has_negative, classic.auth_has_negative);
  ASSERT_EQ(fast.returned_line, classic.returned_line);
  ASSERT_EQ(fast.result, classic.result);
}

/// Resolves every ⟨subject, column⟩ under every canonical strategy and
/// every propagation mode through the fast path, the classic
/// aggregated path, and (optionally — it is exponential on dense
/// shapes) the paper-literal tuple engine, asserting identical
/// decisions, traces, and work counters.
void ExpectEnginesAgree(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                        const Column& column, bool check_literal) {
  for (const PropagationMode mode : kAllModes) {
    ResolveAccessOptions fast;
    fast.propagation_mode = mode;
    ResolveAccessOptions classic = fast;
    classic.use_fast_path = false;
    ResolveAccessOptions literal = fast;
    literal.use_literal_engine = true;
    for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
      for (const Strategy& strategy : AllStrategies()) {
        SCOPED_TRACE(std::string(strategy.ToMnemonic()) + " mode " +
                     ModeName(mode) + " subject " + dag.name(v));
        ResolveTrace fast_trace, classic_trace;
        PropagateStats fast_stats, classic_stats;
        const auto fast_mode =
            ResolveAccess(dag, eacm, v, column.object, column.right, strategy,
                          fast, &fast_trace, &fast_stats);
        const auto classic_mode =
            ResolveAccess(dag, eacm, v, column.object, column.right, strategy,
                          classic, &classic_trace, &classic_stats);
        ASSERT_TRUE(fast_mode.ok());
        ASSERT_TRUE(classic_mode.ok());
        ASSERT_EQ(*fast_mode, *classic_mode);
        ExpectTraceEq(fast_trace, classic_trace);
        // The flat kernel counts the same (dis, mode) group merges and
        // reaches the same max distance as the classic engine.
        ASSERT_EQ(fast_stats.tuples_processed, classic_stats.tuples_processed);
        ASSERT_EQ(fast_stats.max_distance, classic_stats.max_distance);
        if (check_literal) {
          ResolveTrace literal_trace;
          const auto literal_mode =
              ResolveAccess(dag, eacm, v, column.object, column.right,
                            strategy, literal, &literal_trace);
          ASSERT_TRUE(literal_mode.ok());
          ASSERT_EQ(*fast_mode, *literal_mode);
          ExpectTraceEq(fast_trace, literal_trace);
        }
      }
    }
  }
}

AccessControlSystem MakePaperSystem() {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S1", "obj", "write").ok());
  return system;
}

TEST(HotPathDifferentialTest, PaperExampleAllStrategiesAllEngines) {
  AccessControlSystem system = MakePaperSystem();
  for (const char* right : {"read", "write"}) {
    const Column column{system.eacm().FindObject("obj").value(),
                        system.eacm().FindRight(right).value()};
    ExpectEnginesAgree(system.dag(), system.eacm(), column,
                       /*check_literal=*/true);
  }
}

TEST(HotPathDifferentialTest, RandomLayeredDagsAgree) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    Random rng(seed);
    graph::LayeredDagOptions shape;
    shape.layers = 4;
    shape.nodes_per_layer = 8;
    shape.skip_edge_probability = 0.15;
    auto dag = graph::GenerateLayeredDag(shape, rng);
    ASSERT_TRUE(dag.ok());
    acm::ExplicitAcm eacm;
    const Column sparse =
        MakeRandomColumn(eacm, *dag, "doc", "read", 0.15, rng);
    const Column dense =
        MakeRandomColumn(eacm, *dag, "doc", "write", 0.5, rng);
    ExpectEnginesAgree(*dag, eacm, sparse, /*check_literal=*/true);
    ExpectEnginesAgree(*dag, eacm, dense, /*check_literal=*/true);
  }
}

TEST(HotPathDifferentialTest, AdversarialShapesAgree) {
  Random rng(9);
  // Diamond stack: 2^k paths with 3k+1 nodes (worst case for the
  // literal engine, distance ties everywhere for locality).
  auto diamonds = graph::GenerateDiamondStack(5);
  // Complete random DAG: maximal edge density, every distance present.
  auto kdag = graph::GenerateKDag(10, rng);
  ASSERT_TRUE(diamonds.ok());
  ASSERT_TRUE(kdag.ok());
  for (const graph::Dag* dag : {&*diamonds, &*kdag}) {
    acm::ExplicitAcm eacm;
    const Column column = MakeRandomColumn(eacm, *dag, "o", "r", 0.35, rng);
    ExpectEnginesAgree(*dag, eacm, column, /*check_literal=*/true);
  }
}

TEST(HotPathDifferentialTest, TreeAndDegenerateColumnsAgree) {
  Random rng(13);
  auto tree = graph::GenerateRandomTree(40, rng);
  ASSERT_TRUE(tree.ok());
  acm::ExplicitAcm eacm;
  // Empty column: pure default propagation (only 'd' markers flow).
  const acm::ObjectId o = eacm.InternObject("empty").value();
  const acm::RightId r = eacm.InternRight("col").value();
  ExpectEnginesAgree(*tree, eacm, {o, r}, /*check_literal=*/true);
  // Fully labeled column: every node labeled — first-wins suppresses
  // everything below the roots, second-wins stops every label at the
  // first labeled descendant.
  const Column full = MakeRandomColumn(eacm, *tree, "full", "col", 1.0, rng);
  ExpectEnginesAgree(*tree, eacm, full, /*check_literal=*/true);
}

TEST(HotPathDifferentialTest, ResolveEntriesMatchesResolveOnPropagatedBags) {
  Random rng(21);
  graph::LayeredDagOptions shape;
  shape.layers = 5;
  shape.nodes_per_layer = 6;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const Column column = MakeRandomColumn(eacm, *dag, "o", "r", 0.3, rng);
  const auto labels =
      eacm.ExtractLabels(dag->node_count(), column.object, column.right);
  for (const PropagationMode mode : kAllModes) {
    PropagateOptions options;
    options.propagation_mode = mode;
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      const graph::AncestorSubgraph sub(*dag, v);
      const RightsBag bag = PropagateAggregated(sub, labels, options);
      for (const Strategy& strategy : AllStrategies()) {
        SCOPED_TRACE(std::string(strategy.ToMnemonic()) + " mode " +
                     ModeName(mode) + " subject " + dag->name(v));
        ResolveTrace vector_trace, streaming_trace;
        const Mode vector_mode = Resolve(bag, strategy, &vector_trace);
        const Mode streaming_mode =
            ResolveEntries(bag.entries(), strategy, &streaming_trace);
        ASSERT_EQ(streaming_mode, vector_mode);
        ExpectTraceEq(streaming_trace, vector_trace);
      }
    }
  }
}

TEST(HotPathDifferentialTest, BatchResolverFastMatchesClassic) {
  Random rng(27);
  graph::LayeredDagOptions shape;
  shape.layers = 5;
  shape.nodes_per_layer = 10;
  shape.skip_edge_probability = 0.1;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const Column column = MakeRandomColumn(eacm, *dag, "o", "r", 0.2, rng);
  std::vector<BatchResolver::Query> queries;
  for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
    queries.push_back({v, column.object, column.right});
  }
  for (const PropagationMode mode : kAllModes) {
    // The fast branch has two sub-paths: propagation over a cached
    // `AncestorSubgraph` and over a scratch-arena view. Exercise both.
    for (const bool subgraph_cache : {true, false}) {
      BatchResolverOptions fast_options;
      fast_options.propagation_mode = mode;
      fast_options.enable_subgraph_cache = subgraph_cache;
      BatchResolverOptions classic_options = fast_options;
      classic_options.use_fast_path = false;
      BatchResolver fast(*dag, eacm, fast_options);
      BatchResolver classic(*dag, eacm, classic_options);
      for (const Strategy& strategy : AllStrategies()) {
        const auto fast_result = fast.ResolveBatch(queries, strategy);
        const auto classic_result = classic.ResolveBatch(queries, strategy);
        ASSERT_TRUE(fast_result.ok());
        ASSERT_TRUE(classic_result.ok());
        ASSERT_EQ(*fast_result, *classic_result)
            << strategy.ToMnemonic() << " mode " << ModeName(mode)
            << (subgraph_cache ? " cached-subgraphs" : " scratch-views");
      }
    }
  }
}

TEST(HotPathDifferentialTest, EffectiveMatrixMatchesClassicResolve) {
  AccessControlSystem system = MakePaperSystem();
  ResolveAccessOptions classic;
  classic.use_fast_path = false;
  for (const Strategy& strategy : AllStrategies()) {
    auto matrix = EffectiveMatrix::Materialize(system, strategy);
    ASSERT_TRUE(matrix.ok());
    for (acm::ObjectId o = 0; o < system.eacm().object_count(); ++o) {
      for (acm::RightId r = 0; r < system.eacm().right_count(); ++r) {
        for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
          const auto expected = ResolveAccess(system.dag(), system.eacm(), v,
                                              o, r, strategy, classic);
          ASSERT_TRUE(expected.ok());
          ASSERT_EQ(matrix->Lookup(v, o, r).value(), *expected)
              << strategy.ToMnemonic() << " subject " << system.dag().name(v)
              << " object " << o << " right " << r;
        }
      }
    }
  }
}

}  // namespace
}  // namespace ucr::core
