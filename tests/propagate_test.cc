#include "core/propagate.h"

#include <functional>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "acm/mode.h"
#include "graph/ancestor_subgraph.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;
using acm::PropagatedMode;
using graph::AncestorSubgraph;
using graph::Dag;
using graph::LocalId;

using Labels = std::vector<std::optional<Mode>>;

std::optional<PropagatedMode> SeedOf(const AncestorSubgraph& sub,
                                     const Labels& labels, LocalId v) {
  if (labels[sub.global_id(v)].has_value()) {
    return acm::ToPropagated(*labels[sub.global_id(v)]);
  }
  if (sub.parents(v).empty()) return PropagatedMode::kDefault;
  return std::nullopt;
}

/// Brute-force oracle: enumerates every path explicitly and applies
/// the per-path propagation rule. Exponential; small graphs only.
RightsBag OracleBag(const AncestorSubgraph& sub, const Labels& labels,
                    PropagationMode mode) {
  RightsBag bag;
  const LocalId sink = sub.sink();

  // DFS from `node` toward the sink; `blocked` becomes true when the
  // path crosses a labeled intermediate node (kSecondWins only).
  std::function<void(LocalId, uint32_t, PropagatedMode, bool)> dfs =
      [&](LocalId node, uint32_t dist, PropagatedMode label, bool blocked) {
        if (node == sink) {
          if (!blocked) bag.Add(dist, label, 1);
          return;
        }
        bool next_blocked = blocked;
        if (mode == PropagationMode::kSecondWins && dist > 0 &&
            SeedOf(sub, labels, node).has_value()) {
          next_blocked = true;  // A more specific label replaces this one.
        }
        for (LocalId c : sub.children(node)) {
          dfs(c, dist + 1, label, next_blocked);
        }
      };

  for (LocalId v = 0; v < sub.member_count(); ++v) {
    const std::optional<PropagatedMode> seed = SeedOf(sub, labels, v);
    if (!seed.has_value()) continue;
    if (mode == PropagationMode::kFirstWins && !sub.parents(v).empty()) {
      continue;  // Only roots are "first" — every root carries a seed.
    }
    dfs(v, 0, *seed, /*blocked=*/false);
  }
  bag.Normalize();
  return bag;
}

Labels RandomLabels(const Dag& dag, double rate, Random& rng) {
  Labels labels(dag.node_count());
  for (size_t v = 0; v < dag.node_count(); ++v) {
    if (rng.Bernoulli(rate)) {
      labels[v] = rng.Bernoulli(0.5) ? Mode::kPositive : Mode::kNegative;
    }
  }
  return labels;
}

TEST(PropagateTest, SingleUnlabeledNodeGetsDefault) {
  graph::DagBuilder b;
  b.AddNode("only");
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  const AncestorSubgraph sub(*dag, 0);
  const Labels labels(1);
  const RightsBag bag = PropagateAggregated(sub, labels);
  ASSERT_EQ(bag.GroupCount(), 1u);
  EXPECT_EQ(bag.entries()[0].dis, 0u);
  EXPECT_EQ(bag.entries()[0].mode, PropagatedMode::kDefault);
}

TEST(PropagateTest, SingleLabeledNodeKeepsItsLabel) {
  graph::DagBuilder b;
  b.AddNode("only");
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  const AncestorSubgraph sub(*dag, 0);
  Labels labels(1);
  labels[0] = Mode::kNegative;
  const RightsBag bag = PropagateAggregated(sub, labels);
  ASSERT_EQ(bag.GroupCount(), 1u);
  EXPECT_EQ(bag.entries()[0].mode, PropagatedMode::kNegative);
  EXPECT_EQ(bag.entries()[0].dis, 0u);
}

TEST(PropagateTest, SubjectOwnLabelAtDistanceZero) {
  // The query subject's own explicit label must appear at distance 0 —
  // the documented fix to Fig. 5's seed join (see relalg_impl.h).
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("g", "u").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(2);
  labels[dag->FindNode("u")] = Mode::kPositive;
  labels[dag->FindNode("g")] = Mode::kNegative;
  const AncestorSubgraph sub(*dag, dag->FindNode("u"));
  const RightsBag bag = PropagateAggregated(sub, labels);
  RightsBag expected;
  expected.Add(0, PropagatedMode::kPositive);
  expected.Add(1, PropagatedMode::kNegative);
  expected.Normalize();
  EXPECT_EQ(bag, expected) << bag.ToString();
}

TEST(PropagateTest, MultiplicityOnDiamond) {
  // Two same-length paths from one source yield one group with
  // multiplicity 2 — per-path bag semantics.
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("t", "a").ok());
  ASSERT_TRUE(b.AddEdge("t", "b").ok());
  ASSERT_TRUE(b.AddEdge("a", "s").ok());
  ASSERT_TRUE(b.AddEdge("b", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(4);
  labels[dag->FindNode("t")] = Mode::kPositive;
  const AncestorSubgraph sub(*dag, dag->FindNode("s"));
  const RightsBag bag = PropagateAggregated(sub, labels);
  ASSERT_EQ(bag.GroupCount(), 1u);
  EXPECT_EQ(bag.entries()[0].dis, 2u);
  EXPECT_EQ(bag.entries()[0].multiplicity, 2u);
}

TEST(PropagateTest, DiamondStackMultiplicityIsExponential) {
  auto dag = graph::GenerateDiamondStack(16);
  ASSERT_TRUE(dag.ok());
  Labels labels(dag->node_count());
  labels[dag->FindNode("D0t")] = Mode::kPositive;
  const AncestorSubgraph sub(*dag, dag->FindNode("Dsink"));
  const RightsBag bag = PropagateAggregated(sub, labels);
  // The top's label reaches the sink along 2^16 paths of length 32;
  // a/b nodes are unlabeled non-roots, so nothing else propagates.
  ASSERT_EQ(bag.GroupCount(), 1u);
  EXPECT_EQ(bag.entries()[0].dis, 32u);
  EXPECT_EQ(bag.entries()[0].multiplicity, 1u << 16);
}

TEST(PropagateTest, LiteralBudgetGuardTrips) {
  auto dag = graph::GenerateDiamondStack(24);
  ASSERT_TRUE(dag.ok());
  Labels labels(dag->node_count());
  labels[dag->FindNode("D0t")] = Mode::kPositive;
  const AncestorSubgraph sub(*dag, dag->FindNode("Dsink"));
  auto result = PropagateLiteral(sub, labels, {}, nullptr,
                                 /*max_tuples=*/10'000);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PropagateTest, LiteralStatsCountSeedsPlusMoves) {
  // g -> u: one explicit label on g, u unlabeled non-root. Seeds: g's
  // label (1). Moves: g->u (1). Total tuples processed: 2.
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("g", "u").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(2);
  labels[dag->FindNode("g")] = Mode::kPositive;
  const AncestorSubgraph sub(*dag, dag->FindNode("u"));
  PropagateStats stats;
  ASSERT_TRUE(PropagateLiteral(sub, labels, {}, &stats).ok());
  EXPECT_EQ(stats.tuples_processed, 2u);
  EXPECT_EQ(stats.max_distance, 1u);
}

class PropagationModeTest
    : public ::testing::TestWithParam<PropagationMode> {};

INSTANTIATE_TEST_SUITE_P(AllModes, PropagationModeTest,
                         ::testing::Values(PropagationMode::kBoth,
                                           PropagationMode::kFirstWins,
                                           PropagationMode::kSecondWins),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case PropagationMode::kBoth:
                               return "Both";
                             case PropagationMode::kFirstWins:
                               return "FirstWins";
                             case PropagationMode::kSecondWins:
                               return "SecondWins";
                           }
                           return "Unknown";
                         });

// Differential test: aggregated engine == literal engine == path-
// enumeration oracle, for every propagation mode, on random graphs.
TEST_P(PropagationModeTest, EnginesAgreeWithOracleOnRandomGraphs) {
  const PropagationMode mode = GetParam();
  Random rng(20250705);
  for (int trial = 0; trial < 40; ++trial) {
    graph::LayeredDagOptions opt;
    opt.layers = 2 + static_cast<size_t>(rng.Uniform(4));
    opt.nodes_per_layer = 2 + static_cast<size_t>(rng.Uniform(4));
    opt.edge_probability = 0.4;
    opt.skip_edge_probability = 0.2;
    auto dag = graph::GenerateLayeredDag(opt, rng);
    ASSERT_TRUE(dag.ok());
    const Labels labels = RandomLabels(*dag, 0.3, rng);

    for (graph::NodeId sink : dag->Sinks()) {
      const AncestorSubgraph sub(*dag, sink);
      PropagateOptions options;
      options.propagation_mode = mode;

      const RightsBag oracle = OracleBag(sub, labels, mode);
      const RightsBag aggregated = PropagateAggregated(sub, labels, options);
      auto literal = PropagateLiteral(sub, labels, options);
      ASSERT_TRUE(literal.ok());

      EXPECT_EQ(aggregated, oracle)
          << "trial " << trial << " sink " << dag->name(sink)
          << "\naggregated: " << aggregated.ToString()
          << "\noracle:     " << oracle.ToString();
      EXPECT_EQ(*literal, oracle)
          << "trial " << trial << " sink " << dag->name(sink)
          << "\nliteral: " << literal->ToString()
          << "\noracle:  " << oracle.ToString();
    }
  }
}

TEST_P(PropagationModeTest, WholeDagMatchesPerSubjectExtraction) {
  const PropagationMode mode = GetParam();
  Random rng(77);
  graph::LayeredDagOptions opt;
  opt.layers = 4;
  opt.nodes_per_layer = 5;
  opt.skip_edge_probability = 0.15;
  auto dag = graph::GenerateLayeredDag(opt, rng);
  ASSERT_TRUE(dag.ok());
  const Labels labels = RandomLabels(*dag, 0.25, rng);

  PropagateOptions options;
  options.propagation_mode = mode;
  const std::vector<RightsBag> whole =
      PropagateWholeDag(*dag, labels, options);
  ASSERT_EQ(whole.size(), dag->node_count());

  for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
    const AncestorSubgraph sub(*dag, v);
    const RightsBag per_subject = PropagateAggregated(sub, labels, options);
    EXPECT_EQ(whole[v], per_subject)
        << "node " << dag->name(v) << "\nwhole: " << whole[v].ToString()
        << "\nper-subject: " << per_subject.ToString();
  }
}

TEST(PropagateModeSemanticsTest, SecondWinsBlocksThroughLabeledNode) {
  // r(+) -> m(-) -> s: under kSecondWins, r's '+' is blocked by the
  // label on m, so s sees only '-' at distance 1.
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("r", "m").ok());
  ASSERT_TRUE(b.AddEdge("m", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(3);
  labels[dag->FindNode("r")] = Mode::kPositive;
  labels[dag->FindNode("m")] = Mode::kNegative;
  const AncestorSubgraph sub(*dag, dag->FindNode("s"));
  PropagateOptions options;
  options.propagation_mode = PropagationMode::kSecondWins;
  const RightsBag bag = PropagateAggregated(sub, labels, options);
  RightsBag expected;
  expected.Add(1, PropagatedMode::kNegative);
  expected.Normalize();
  EXPECT_EQ(bag, expected) << bag.ToString();
}

TEST(PropagateModeSemanticsTest, FirstWinsKeepsOnlyRootLabels) {
  // Same chain: under kFirstWins only the root's '+' propagates; m's
  // '-' never starts because r's label got there first.
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("r", "m").ok());
  ASSERT_TRUE(b.AddEdge("m", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(3);
  labels[dag->FindNode("r")] = Mode::kPositive;
  labels[dag->FindNode("m")] = Mode::kNegative;
  const AncestorSubgraph sub(*dag, dag->FindNode("s"));
  PropagateOptions options;
  options.propagation_mode = PropagationMode::kFirstWins;
  const RightsBag bag = PropagateAggregated(sub, labels, options);
  RightsBag expected;
  expected.Add(2, PropagatedMode::kPositive);
  expected.Normalize();
  EXPECT_EQ(bag, expected) << bag.ToString();
}

TEST(PropagateModeSemanticsTest, BothKeepsEverything) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("r", "m").ok());
  ASSERT_TRUE(b.AddEdge("m", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(3);
  labels[dag->FindNode("r")] = Mode::kPositive;
  labels[dag->FindNode("m")] = Mode::kNegative;
  const AncestorSubgraph sub(*dag, dag->FindNode("s"));
  const RightsBag bag = PropagateAggregated(sub, labels);
  RightsBag expected;
  expected.Add(2, PropagatedMode::kPositive);
  expected.Add(1, PropagatedMode::kNegative);
  expected.Normalize();
  EXPECT_EQ(bag, expected) << bag.ToString();
}

}  // namespace
}  // namespace ucr::core
