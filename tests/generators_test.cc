#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/ancestor_subgraph.h"
#include "util/random.h"

namespace ucr::graph {
namespace {

TEST(KDagTest, CompleteStructure) {
  Random rng(1);
  auto dag = GenerateKDag(10, rng);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->node_count(), 10u);
  EXPECT_EQ(dag->edge_count(), 45u);  // C(10, 2).
  EXPECT_EQ(dag->Roots().size(), 1u);
  EXPECT_EQ(dag->Sinks().size(), 1u);
  EXPECT_EQ(dag->name(dag->Roots()[0]), "K0");
  EXPECT_EQ(dag->name(dag->Sinks()[0]), "K9");
}

TEST(KDagTest, EveryPairConnected) {
  Random rng(2);
  auto dag = GenerateKDag(7, rng);
  ASSERT_TRUE(dag.ok());
  for (NodeId i = 0; i < 7; ++i) {
    for (NodeId j = i + 1; j < 7; ++j) {
      EXPECT_TRUE(dag->HasEdge(i, j) || dag->HasEdge(j, i));
    }
  }
}

TEST(KDagTest, RootToSinkPathsAreExponential) {
  Random rng(3);
  auto dag = GenerateKDag(12, rng);
  ASSERT_TRUE(dag.ok());
  const AncestorSubgraph sub(*dag, dag->Sinks()[0]);
  const LocalId root = sub.ToLocal(dag->Roots()[0]);
  EXPECT_EQ(sub.path_count(root), 1ull << 10);  // 2^(n-2).
}

TEST(KDagTest, RejectsTooSmall) {
  Random rng(4);
  EXPECT_FALSE(GenerateKDag(1, rng).ok());
  EXPECT_TRUE(GenerateKDag(2, rng).ok());
}

TEST(LayeredDagTest, ShapeAndConnectivity) {
  Random rng(5);
  LayeredDagOptions opt;
  opt.layers = 5;
  opt.nodes_per_layer = 7;
  auto dag = GenerateLayeredDag(opt, rng);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->node_count(), 35u);
  // Every non-layer-0 node has at least one parent (connectivity
  // guarantee), so roots are only in layer 0.
  EXPECT_LE(dag->Roots().size(), 7u);
  for (NodeId r : dag->Roots()) {
    EXPECT_EQ(dag->name(r).substr(0, 2), "L0");
  }
}

TEST(LayeredDagTest, RejectsZeroDimensions) {
  Random rng(6);
  EXPECT_FALSE(GenerateLayeredDag({.layers = 0}, rng).ok());
  EXPECT_FALSE(
      GenerateLayeredDag({.layers = 2, .nodes_per_layer = 0}, rng).ok());
}

TEST(LayeredDagTest, DeterministicForSeed) {
  Random rng1(7);
  Random rng2(7);
  auto a = GenerateLayeredDag({}, rng1);
  auto b = GenerateLayeredDag({}, rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->edge_count(), b->edge_count());
  for (NodeId v = 0; v < a->node_count(); ++v) {
    ASSERT_EQ(a->children(v).size(), b->children(v).size());
    for (size_t i = 0; i < a->children(v).size(); ++i) {
      EXPECT_EQ(a->children(v)[i], b->children(v)[i]);
    }
  }
}

TEST(RandomTreeTest, TreeInvariants) {
  Random rng(8);
  auto dag = GenerateRandomTree(50, rng);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->node_count(), 50u);
  EXPECT_EQ(dag->edge_count(), 49u);
  EXPECT_EQ(dag->Roots().size(), 1u);
  // Every non-root has exactly one parent.
  for (NodeId v = 1; v < 50; ++v) {
    EXPECT_EQ(dag->parents(v).size(), 1u);
  }
}

TEST(RandomTreeTest, SingleNode) {
  Random rng(9);
  auto dag = GenerateRandomTree(1, rng);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->node_count(), 1u);
  EXPECT_EQ(dag->edge_count(), 0u);
}

TEST(DiamondStackTest, Shape) {
  auto dag = GenerateDiamondStack(3);
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->node_count(), 10u);  // 3k + 1.
  EXPECT_EQ(dag->edge_count(), 12u);  // 4 per diamond.
  EXPECT_EQ(dag->Roots().size(), 1u);
  EXPECT_EQ(dag->Sinks().size(), 1u);
  EXPECT_EQ(dag->name(dag->Sinks()[0]), "Dsink");
}

TEST(DiamondStackTest, RejectsZero) {
  EXPECT_FALSE(GenerateDiamondStack(0).ok());
}

}  // namespace
}  // namespace ucr::graph
