// The full semantic matrix locked down: all 48 strategies x all 3
// propagation modes, aggregated engine vs literal engine, end to end
// through ResolveAccess on randomized hierarchies. This is the
// broadest differential sweep in the suite (~2000 decision
// comparisons per trial).

#include <gtest/gtest.h>

#include "acm/acm.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;

class PropagationStrategyMatrixTest
    : public ::testing::TestWithParam<PropagationMode> {};

INSTANTIATE_TEST_SUITE_P(AllModes, PropagationStrategyMatrixTest,
                         ::testing::Values(PropagationMode::kBoth,
                                           PropagationMode::kFirstWins,
                                           PropagationMode::kSecondWins),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case PropagationMode::kBoth:
                               return "Both";
                             case PropagationMode::kFirstWins:
                               return "FirstWins";
                             case PropagationMode::kSecondWins:
                               return "SecondWins";
                           }
                           return "Unknown";
                         });

TEST_P(PropagationStrategyMatrixTest, EnginesAgreeEndToEnd) {
  const PropagationMode mode = GetParam();
  Random rng(24680 + static_cast<uint64_t>(mode));
  for (int trial = 0; trial < 6; ++trial) {
    auto dag = graph::GenerateLayeredDag(
        {.layers = 3, .nodes_per_layer = 4, .skip_edge_probability = 0.25},
        rng);
    ASSERT_TRUE(dag.ok());
    acm::ExplicitAcm eacm;
    const acm::ObjectId o = eacm.InternObject("obj").value();
    const acm::RightId r = eacm.InternRight("read").value();
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      if (rng.Bernoulli(0.3)) {
        ASSERT_TRUE(eacm.Set(v, o, r,
                             rng.Bernoulli(0.5) ? Mode::kPositive
                                                : Mode::kNegative)
                        .ok());
      }
    }

    ResolveAccessOptions aggregated;
    aggregated.propagation_mode = mode;
    ResolveAccessOptions literal = aggregated;
    literal.use_literal_engine = true;

    for (graph::NodeId sink : dag->Sinks()) {
      for (const Strategy& s : AllStrategies()) {
        auto a = ResolveAccess(*dag, eacm, sink, o, r, s, aggregated);
        auto b = ResolveAccess(*dag, eacm, sink, o, r, s, literal);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        ASSERT_EQ(*a, *b) << "trial " << trial << " sink "
                          << dag->name(sink) << " strategy "
                          << s.ToMnemonic();
      }
    }
  }
}

// Under kFirstWins only root authorizations matter: erasing every
// non-root explicit label must not change any decision.
TEST(PropagationSemanticsTest, FirstWinsIgnoresNonRootLabels) {
  Random rng(13579);
  for (int trial = 0; trial < 10; ++trial) {
    auto dag = graph::GenerateLayeredDag(
        {.layers = 3, .nodes_per_layer = 5, .skip_edge_probability = 0.2},
        rng);
    ASSERT_TRUE(dag.ok());
    acm::ExplicitAcm full;
    acm::ExplicitAcm roots_only;
    const acm::ObjectId fo = full.InternObject("obj").value();
    const acm::RightId fr = full.InternRight("read").value();
    const acm::ObjectId ro = roots_only.InternObject("obj").value();
    const acm::RightId rr = roots_only.InternRight("read").value();
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      if (rng.Bernoulli(0.3)) {
        const Mode mode =
            rng.Bernoulli(0.5) ? Mode::kPositive : Mode::kNegative;
        ASSERT_TRUE(full.Set(v, fo, fr, mode).ok());
        if (dag->is_root(v)) {
          ASSERT_TRUE(roots_only.Set(v, ro, rr, mode).ok());
        }
      }
    }
    ResolveAccessOptions first_wins;
    first_wins.propagation_mode = PropagationMode::kFirstWins;
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      // Skip subjects whose own non-root label differs between the two
      // matrices — their own label is at distance 0 and suppressed by
      // kFirstWins anyway, which is exactly what this test pins.
      for (size_t si = 0; si < AllStrategies().size(); si += 7) {
        const Strategy& s = AllStrategies()[si];
        auto with_all = ResolveAccess(*dag, full, v, fo, fr, s, first_wins);
        auto with_roots =
            ResolveAccess(*dag, roots_only, v, ro, rr, s, first_wins);
        ASSERT_TRUE(with_all.ok());
        ASSERT_TRUE(with_roots.ok());
        EXPECT_EQ(*with_all, *with_roots)
            << "trial " << trial << " node " << dag->name(v) << " "
            << s.ToMnemonic();
      }
    }
  }
}

}  // namespace
}  // namespace ucr::core
