// Unit tests for the structured audit log (src/obs/audit_log.h,
// DESIGN.md §9): JSON rendering, multi-thread no-loss ordering through
// the MPSC ring, size-based file rotation, and drop-and-count
// backpressure.

#include "obs/audit_log.h"

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/paper_example.h"
#include "core/system.h"
#include "obs/metrics.h"

namespace ucr::obs {
namespace {

AuditEvent MakeDecisionEvent(uint32_t subject) {
  AuditEvent event;
  event.type = AuditEventType::kAccessDecision;
  event.has_ids = true;
  event.has_decision = true;
  event.subject = subject;
  event.object = 2;
  event.right = 3;
  event.granted = true;
  return event;
}

TEST(ObsAuditLogTest, JsonRenderingEmitsOnlySetFieldGroups) {
  AuditEvent event;
  event.type = AuditEventType::kStrategyChange;
  event.sequence = 7;
  event.wall_ns = 123;
  event.value = 21;
  event.SetDetail("D+LP-");
  const std::string json = AuditEventToJson(event);
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"type\":\"strategy_change\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"value\":21"), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"D+LP-\""), std::string::npos);
  // Unset groups stay out of the line.
  EXPECT_EQ(json.find("\"subject\""), std::string::npos);
  EXPECT_EQ(json.find("\"granted\""), std::string::npos);

  const std::string ids = AuditEventToJson(MakeDecisionEvent(9));
  EXPECT_TRUE(JsonLooksValid(ids)) << ids;
  EXPECT_NE(ids.find("\"subject\":9"), std::string::npos);
  EXPECT_NE(ids.find("\"granted\":true"), std::string::npos);
}

TEST(ObsAuditLogTest, JsonEscapesDetailText) {
  AuditEvent event;
  event.SetDetail("quote \" backslash \\ newline \n tab \t done");
  const std::string json = AuditEventToJson(event);
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\\\""), std::string::npos);
  EXPECT_NE(json.find("\\\\"), std::string::npos);
  EXPECT_NE(json.find("\\n"), std::string::npos);
}

TEST(ObsAuditLogTest, DetailTruncatesAtBufferSize) {
  AuditEvent event;
  event.SetDetail(std::string(4096, 'x'));
  EXPECT_EQ(std::string(event.detail).size(), sizeof(event.detail) - 1);
}

#if !UCR_METRICS_ENABLED

TEST(ObsAuditLogTest, DisabledBuildRefusesToStartOrEmit) {
  AuditLogOptions options;
  EXPECT_FALSE(AuditLog::Global().Start(std::move(options)));
  EXPECT_FALSE(AuditLog::Enabled());
  EXPECT_FALSE(AuditLog::Global().Emit(AuditEvent{}));
  EXPECT_EQ(AuditLog::Global().emitted_total(), 0u);
}

#else

/// Appends every rendered line to external storage that outlives the
/// log's ownership of the sink (Stop destroys the sinks).
class VectorSink : public AuditSink {
 public:
  explicit VectorSink(std::vector<std::string>* out) : out_(out) {}
  void Write(std::string_view line) override { out_->emplace_back(line); }

 private:
  std::vector<std::string>* out_;
};

uint64_t ParseSeq(const std::string& line) {
  const size_t at = line.find("\"seq\":");
  EXPECT_NE(at, std::string::npos) << line;
  return std::strtoull(line.c_str() + at + 6, nullptr, 10);
}

TEST(ObsAuditLogTest, StartEmitFlushStopRoundtrip) {
  std::vector<std::string> lines;
  AuditLogOptions options;
  options.sinks.push_back(std::make_unique<VectorSink>(&lines));
  ASSERT_TRUE(AuditLog::Global().Start(std::move(options)));
  EXPECT_TRUE(AuditLog::Enabled());
  EXPECT_FALSE(AuditLog::Global().Start(AuditLogOptions{}));  // Running.

  const uint64_t written_before = AuditLog::Global().written_total();
  EXPECT_TRUE(AuditLog::Global().Emit(MakeDecisionEvent(1)));
  AuditLog::Global().Flush();
  EXPECT_GE(AuditLog::Global().written_total(), written_before + 1);
  AuditLog::Global().Stop();
  EXPECT_FALSE(AuditLog::Enabled());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(JsonLooksValid(lines[0])) << lines[0];
  EXPECT_NE(lines[0].find("\"ts_unix_ns\":"), std::string::npos)
      << "Emit must stamp wall time";
}

TEST(ObsAuditLogTest, EightProducersLoseNothingAndPreserveSequence) {
  std::vector<std::string> lines;
  AuditLogOptions options;
  options.sinks.push_back(std::make_unique<VectorSink>(&lines));
  ASSERT_TRUE(AuditLog::Global().Start(std::move(options)));

  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([t, &accepted] {
      for (int i = 0; i < kPerThread; ++i) {
        if (AuditLog::Global().Emit(
                MakeDecisionEvent(static_cast<uint32_t>(t)))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& p : producers) p.join();
  AuditLog::Global().Flush();
  AuditLog::Global().Stop();

  // Every accepted event reaches the sink exactly once — drops are
  // allowed (bounded ring, drop-and-count backpressure) but accepted
  // events may never vanish.
  EXPECT_EQ(lines.size(), accepted.load());
  EXPECT_GT(accepted.load(), 0u);

  // The writer drains in ring order: sequence numbers come out
  // strictly increasing, and every line is valid JSON.
  uint64_t previous = 0;
  bool first = true;
  for (const std::string& line : lines) {
    ASSERT_TRUE(JsonLooksValid(line)) << line;
    const uint64_t seq = ParseSeq(line);
    if (!first) {
      EXPECT_GT(seq, previous);
    }
    previous = seq;
    first = false;
  }
}

TEST(ObsAuditLogTest, RotatingFileSinkRotatesAtSizeLimit) {
  const std::string path = testing::TempDir() + "/ucr_audit_rotate.jsonl";
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());
  {
    RotatingFileSink sink(path, /*max_bytes=*/256, /*max_backups=*/2);
    ASSERT_TRUE(sink.ok());
    const std::string line(100, 'a');
    for (int i = 0; i < 10; ++i) sink.Write(line);
    sink.Flush();
    EXPECT_GT(sink.rotations(), 0u);
  }
  // Active file plus at least the first backup exist; no file exceeds
  // the limit by more than one line.
  for (const std::string& p : {path, path + ".1"}) {
    std::FILE* f = std::fopen(p.c_str(), "rb");
    ASSERT_NE(f, nullptr) << p;
    std::fseek(f, 0, SEEK_END);
    EXPECT_LE(std::ftell(f), 256 + 101) << p;
    std::fclose(f);
  }
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());
}

TEST(ObsAuditLogTest, EmitWhileStoppedIsRejected) {
  EXPECT_FALSE(AuditLog::Enabled());
  EXPECT_FALSE(AuditLog::Global().Emit(MakeDecisionEvent(1)));
}

// Regression: re-granting an identical right is an idempotent no-op in
// SetMode (the early return precedes audit emission), so it must NOT
// produce a second grant audit event — operators count grant lines as
// actual policy changes.
TEST(ObsAuditLogTest, IdempotentRegrantEmitsNoAuditEvent) {
  std::vector<std::string> lines;
  AuditLogOptions options;
  options.log_sampled_decisions = false;
  options.slow_query_threshold_ns = 0;
  options.sinks.push_back(std::make_unique<VectorSink>(&lines));
  ASSERT_TRUE(AuditLog::Global().Start(std::move(options)));

  core::PaperExample ex = core::MakePaperExample();
  core::AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());  // Idempotent.
  ASSERT_TRUE(system.DenyAccess("S4", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S4", "obj", "read").ok());  // Idempotent.
  ASSERT_TRUE(system.Revoke("S4", "obj", "read").ok());
  ASSERT_TRUE(system.Grant("S4", "obj", "read").ok());  // Real change.

  AuditLog::Global().Flush();
  AuditLog::Global().Stop();
  size_t grants = 0;
  size_t denies = 0;
  size_t revokes = 0;
  for (const std::string& line : lines) {
    if (line.find("\"type\":\"grant\"") != std::string::npos) ++grants;
    if (line.find("\"type\":\"deny\"") != std::string::npos) ++denies;
    if (line.find("\"type\":\"revoke\"") != std::string::npos) ++revokes;
  }
  EXPECT_EQ(grants, 2u);  // First grant + the revoke->grant change only.
  EXPECT_EQ(denies, 1u);
  EXPECT_EQ(revokes, 1u);
}

// The rotating sink must never lose audit lines silently: an
// unwritable path counts errors (ucr_audit_sink_errors_total) and
// diverts every line to stderr, and once the path becomes writable a
// later Write reopens it — no restart required.
TEST(ObsAuditLogTest, UnwritableSinkCountsErrorsAndSelfHeals) {
  Counter& sink_errors = Registry::Global().GetCounter(
      "ucr_audit_sink_errors_total",
      "Audit sink I/O failures (open, write, rotate); failed lines "
      "divert to stderr");
  const std::string dir =
      testing::TempDir() + "/ucr_audit_missing_dir_" +
      std::to_string(static_cast<long>(::getpid()));
  const std::string path = dir + "/audit.jsonl";

  RotatingFileSink sink(path, /*max_bytes=*/4096, /*max_backups=*/1);
  EXPECT_FALSE(sink.ok());  // Directory does not exist yet.
  const uint64_t errors_before = sink.errors();
  const uint64_t metric_before = sink_errors.Value();
  sink.Write("{\"type\":\"diverted\"}");
  EXPECT_GT(sink.errors(), errors_before);
  EXPECT_GT(sink_errors.Value(), metric_before);

  // Create the directory: the very next Write opens the file and lands
  // in it (per-Write open retry), without constructing a new sink.
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  sink.Write("{\"type\":\"landed\"}");
  sink.Flush();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[256] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string contents(buf, n);
  EXPECT_NE(contents.find("landed"), std::string::npos);
  // The diverted line went to stderr, never half-into the file.
  EXPECT_EQ(contents.find("diverted"), std::string::npos);

  std::remove(path.c_str());
  ::rmdir(dir.c_str());
}

TEST(ObsAuditLogTest, FsyncOnFlushSinkPersistsLines) {
  const std::string path =
      testing::TempDir() + "/ucr_audit_fsync.jsonl";
  std::remove(path.c_str());
  {
    RotatingFileSink sink(path, /*max_bytes=*/4096, /*max_backups=*/1,
                          /*fsync_on_flush=*/true);
    ASSERT_TRUE(sink.ok());
    sink.Write("{\"type\":\"durable\"}");
    sink.Flush();  // fflush + fsync: on disk, not just in libc buffers.
    EXPECT_EQ(sink.errors(), 0u);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_NE(std::string(buf, n).find("durable"), std::string::npos);
  std::remove(path.c_str());
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::obs
