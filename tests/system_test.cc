#include "core/system.h"

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "graph/dag.h"

namespace ucr::core {
namespace {

using acm::Mode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

AccessControlSystem MakePaperSystem(SystemOptions options = {}) {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag), options);
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  return system;
}

TEST(SystemTest, CheckAccessUnderExplicitStrategy) {
  AccessControlSystem system = MakePaperSystem();
  auto granted = system.CheckAccessByName("User", "obj", "read", S("D+LMP+"));
  ASSERT_TRUE(granted.ok());
  EXPECT_EQ(*granted, Mode::kPositive);
  auto denied = system.CheckAccessByName("User", "obj", "read", S("D+LP-"));
  ASSERT_TRUE(denied.ok());
  EXPECT_EQ(*denied, Mode::kNegative);
}

TEST(SystemTest, SessionStrategySwitchWithoutReinstall) {
  // The paper's headline: same data, reconfigured strategy, different
  // decision — no rebuild of anything.
  AccessControlSystem system = MakePaperSystem();
  system.SetStrategy(S("D+LP-"));
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kNegative);
  system.SetStrategy(S("D+GP-"));
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kPositive);
}

TEST(SystemTest, UnknownNamesAreReported) {
  AccessControlSystem system = MakePaperSystem();
  EXPECT_EQ(system.CheckAccessByName("ghost", "obj", "read").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(system.CheckAccessByName("User", "ghost", "read").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(system.Grant("ghost", "obj", "read").code(),
            StatusCode::kNotFound);
}

TEST(SystemTest, ContradictingGrantRejected) {
  AccessControlSystem system = MakePaperSystem();
  EXPECT_EQ(system.Grant("S5", "obj", "read").code(),
            StatusCode::kFailedPrecondition);
}

TEST(SystemTest, RevokeChangesDecision) {
  AccessControlSystem system = MakePaperSystem();
  system.SetStrategy(S("D+LP-"));
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kNegative);
  // Removing S5's denial leaves '+' alone at the closest distance.
  ASSERT_TRUE(system.Revoke("S5", "obj", "read").ok());
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kPositive);
}

TEST(SystemTest, CacheServesRepeatsAndInvalidatesOnMutation) {
  AccessControlSystem system = MakePaperSystem();
  system.SetStrategy(S("D+LP-"));
  ASSERT_TRUE(system.CheckAccessByName("User", "obj", "read").ok());
  ASSERT_TRUE(system.CheckAccessByName("User", "obj", "read").ok());
  EXPECT_GE(system.resolution_cache().stats().hits, 1u);

  // Mutation bumps the epoch; the next query must recompute and the
  // new answer must reflect the change.
  ASSERT_TRUE(system.Revoke("S5", "obj", "read").ok());
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kPositive);
}

TEST(SystemTest, CachelessModeAgrees) {
  SystemOptions options;
  options.enable_resolution_cache = false;
  options.enable_subgraph_cache = false;
  AccessControlSystem uncached = MakePaperSystem(options);
  AccessControlSystem cached = MakePaperSystem();
  for (const Strategy& s : AllStrategies()) {
    EXPECT_EQ(uncached.CheckAccessByName("User", "obj", "read", s).value(),
              cached.CheckAccessByName("User", "obj", "read", s).value())
        << s.ToMnemonic();
  }
}

TEST(SystemTest, CheckAccessAllStrategiesMatchesIndividualQueries) {
  AccessControlSystem system = MakePaperSystem();
  const graph::NodeId user = system.dag().FindNode("User");
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  auto all = system.CheckAccessAllStrategies(user, obj, read);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 48u);
  for (size_t i = 0; i < AllStrategies().size(); ++i) {
    EXPECT_EQ((*all)[i],
              system.CheckAccess(user, obj, read, AllStrategies()[i]).value())
        << AllStrategies()[i].ToMnemonic();
  }
}

TEST(SystemTest, EffectiveColumnMatchesPerSubjectResolution) {
  AccessControlSystem system = MakePaperSystem();
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  const Strategy s = S("D-LMP+");
  auto column = system.MaterializeEffectiveColumn(obj, read, s);
  ASSERT_TRUE(column.ok());
  ASSERT_EQ(column->size(), system.dag().node_count());
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    EXPECT_EQ((*column)[v], system.CheckAccess(v, obj, read, s).value())
        << system.dag().name(v);
  }
}

TEST(SystemTest, EffectiveColumnValidatesIds) {
  AccessControlSystem system = MakePaperSystem();
  EXPECT_EQ(system.MaterializeEffectiveColumn(99, 0, S("P-")).status().code(),
            StatusCode::kOutOfRange);
}

TEST(SystemTest, AddMembershipChangesDerivedAccess) {
  AccessControlSystem system = MakePaperSystem();
  system.SetStrategy(S("D-LP-"));
  // S7 sits under S4 ('+' labeled): granted via inheritance.
  EXPECT_EQ(system.CheckAccessByName("S7", "obj", "read").value(),
            Mode::kPositive);
  // Put S7 also under S5 ('-' labeled, distance 1): the denial is now
  // equally specific and the closed preference denies.
  ASSERT_TRUE(system.AddMembership("S5", "S7").ok());
  EXPECT_EQ(system.CheckAccessByName("S7", "obj", "read").value(),
            Mode::kNegative);
}

TEST(SystemTest, AddMembershipCreatesNewSubjects) {
  AccessControlSystem system = MakePaperSystem();
  ASSERT_TRUE(system.AddMembership("S2", "newhire").ok());
  EXPECT_EQ(
      system.CheckAccessByName("newhire", "obj", "read", S("LP-")).value(),
      Mode::kPositive)
      << "inherits S2's grant";
  // Existing ids must be stable: old decisions unchanged.
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read", S("D+LP-"))
                .value(),
            Mode::kNegative);
}

TEST(SystemTest, MembershipCycleRejectedAtomically) {
  AccessControlSystem system = MakePaperSystem();
  const size_t edges_before = system.dag().edge_count();
  EXPECT_FALSE(system.AddMembership("User", "S2").ok())
      << "S2 -> User -> S2 would be a cycle";
  EXPECT_EQ(system.dag().edge_count(), edges_before) << "rollback";
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read", S("D+LP-"))
                .value(),
            Mode::kNegative);
}

TEST(SystemTest, RemoveMembershipChangesDerivedAccess) {
  AccessControlSystem system = MakePaperSystem();
  system.SetStrategy(S("LP-"));
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kNegative);
  // Leaving S5 removes the nearest denial; S2's grant remains.
  ASSERT_TRUE(system.RemoveMembership("S5", "User").ok());
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kPositive);
  EXPECT_EQ(system.RemoveMembership("S5", "User").code(),
            StatusCode::kNotFound);
}

TEST(SystemTest, PropagationModeOptionFlowsThroughFacade) {
  // r(+) -> m(-) -> s: under kSecondWins m's denial blocks r's grant.
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("r", "m").ok());
  ASSERT_TRUE(b.AddEdge("m", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  SystemOptions options;
  options.propagation_mode = PropagationMode::kSecondWins;
  AccessControlSystem system(std::move(dag).value(), options);
  ASSERT_TRUE(system.Grant("r", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("m", "obj", "read").ok());
  EXPECT_EQ(system.CheckAccessByName("s", "obj", "read", S("GP+")).value(),
            Mode::kNegative)
      << "r's grant never reaches s under kSecondWins";
  // The effective column and the batch path agree with the mode.
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  auto column = system.MaterializeEffectiveColumn(obj, read, S("GP+"));
  ASSERT_TRUE(column.ok());
  EXPECT_EQ((*column)[system.dag().FindNode("s")], Mode::kNegative);
  const std::vector<AccessControlSystem::AccessQuery> queries{
      {system.dag().FindNode("s"), obj, read}};
  EXPECT_EQ(system.CheckAccessBatch(queries, S("GP+"), 2)->front(),
            Mode::kNegative);
}

TEST(SystemTest, ColumnScopedInvalidation) {
  // Editing one (object, right) column must not evict cached
  // decisions of other columns.
  AccessControlSystem system = MakePaperSystem();
  ASSERT_TRUE(system.Grant("S2", "other", "read").ok());
  const Strategy s = S("D+LP-");
  ASSERT_TRUE(system.CheckAccessByName("User", "obj", "read", s).ok());
  ASSERT_TRUE(system.CheckAccessByName("User", "other", "read", s).ok());
  const auto before = system.resolution_cache().stats();

  // Mutate the "other" column; re-query both.
  ASSERT_TRUE(system.DenyAccess("S6", "other", "read").ok());
  ASSERT_TRUE(system.CheckAccessByName("User", "obj", "read", s).ok());
  ASSERT_TRUE(system.CheckAccessByName("User", "other", "read", s).ok());
  const auto after = system.resolution_cache().stats();
  EXPECT_EQ(after.hits, before.hits + 1)
      << "the obj column's entry must survive the other column's edit";
  EXPECT_EQ(after.invalidations, before.invalidations + 1)
      << "the other column's entry must be evicted";
}

TEST(SystemTest, BatchMatchesIndividualQueries) {
  AccessControlSystem system = MakePaperSystem();
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  std::vector<AccessControlSystem::AccessQuery> queries;
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    queries.push_back({v, obj, read});
  }
  const Strategy s = S("D-LMP+");
  auto serial = system.CheckAccessBatch(queries, s, /*threads=*/1);
  auto parallel = system.CheckAccessBatch(queries, s, /*threads=*/4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Mode individual =
        system.CheckAccess(queries[i].subject, obj, read, s).value();
    EXPECT_EQ((*serial)[i], individual) << i;
    EXPECT_EQ((*parallel)[i], individual) << i;
  }
}

TEST(SystemTest, BatchValidatesUpFront) {
  AccessControlSystem system = MakePaperSystem();
  const std::vector<AccessControlSystem::AccessQuery> bad{{999, 0, 0}};
  EXPECT_EQ(system.CheckAccessBatch(bad, S("P-"), 4).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(system.CheckAccessBatch({}, S("P-"), 4)->empty());
}

TEST(SystemTest, ExplicitLabelAlwaysWinsUnderMostSpecific) {
  AccessControlSystem system = MakePaperSystem();
  // User's own explicit label is at distance 0: under most-specific it
  // dominates everything above.
  ASSERT_TRUE(system.Grant("User", "obj", "read").ok());
  EXPECT_EQ(
      system.CheckAccessByName("User", "obj", "read", S("D-LP-")).value(),
      Mode::kPositive);
}

}  // namespace
}  // namespace ucr::core
