#include "core/storage.h"

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/strategy.h"
#include "util/fs.h"

namespace ucr::core {
namespace {

using acm::Mode;

AccessControlSystem MakePaperSystem() {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  system.SetStrategy(ParseStrategy("D+LMP-").value());
  return system;
}

TEST(StorageTest, RoundTripPreservesEverything) {
  AccessControlSystem original = MakePaperSystem();
  const std::string text = SaveSystemToText(original);

  auto loaded = LoadSystemFromText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded->dag().node_count(), original.dag().node_count());
  EXPECT_EQ(loaded->dag().edge_count(), original.dag().edge_count());
  EXPECT_EQ(loaded->eacm().size(), original.eacm().size());
  EXPECT_EQ(loaded->strategy().ToMnemonic(), "D+LMP-");

  // Node ids survive (name order is pinned by the format).
  for (graph::NodeId v = 0; v < original.dag().node_count(); ++v) {
    EXPECT_EQ(loaded->dag().name(v), original.dag().name(v));
  }

  // Every effective decision survives, under every strategy.
  for (const Strategy& s : AllStrategies()) {
    EXPECT_EQ(loaded->CheckAccessByName("User", "obj", "read", s).value(),
              original.CheckAccessByName("User", "obj", "read", s).value())
        << s.ToMnemonic();
  }
}

TEST(StorageTest, SecondRoundTripIsByteIdentical) {
  AccessControlSystem original = MakePaperSystem();
  const std::string once = SaveSystemToText(original);
  auto loaded = LoadSystemFromText(once);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(SaveSystemToText(*loaded), once);
}

// A system file that passed through a Windows editor (or a checkout
// with autocrlf) gains \r\n line endings; the loader must parse it
// identically — in particular the trailing mode field of each auth
// line must not absorb the \r.
TEST(StorageTest, LoadsWindowsLineEndings) {
  AccessControlSystem original = MakePaperSystem();
  std::string text = SaveSystemToText(original);
  std::string crlf;
  for (const char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }

  auto loaded = LoadSystemFromText(crlf);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->dag().node_count(), original.dag().node_count());
  EXPECT_EQ(loaded->eacm().size(), original.eacm().size());
  EXPECT_EQ(loaded->strategy().ToMnemonic(), "D+LMP-");
  for (const Strategy& s : AllStrategies()) {
    EXPECT_EQ(loaded->CheckAccessByName("User", "obj", "read", s).value(),
              original.CheckAccessByName("User", "obj", "read", s).value())
        << s.ToMnemonic();
  }
}

// Save∘Load property over the whole strategy space: every one of the
// 48 canonical mnemonics survives a round trip, and the loaded system
// reproduces every subject's effective decision under its configured
// strategy.
TEST(StorageTest, RoundTripPreservesAllStrategyMnemonics) {
  for (const Strategy& strategy : AllStrategies()) {
    AccessControlSystem original = MakePaperSystem();
    original.SetStrategy(strategy);
    auto loaded = LoadSystemFromText(SaveSystemToText(original));
    ASSERT_TRUE(loaded.ok()) << strategy.ToMnemonic();
    EXPECT_EQ(loaded->strategy().ToMnemonic(), strategy.ToMnemonic());
    for (graph::NodeId v = 0; v < original.dag().node_count(); ++v) {
      const std::string& name = original.dag().name(v);
      EXPECT_EQ(loaded->CheckAccessByName(name, "obj", "read").value(),
                original.CheckAccessByName(name, "obj", "read").value())
          << strategy.ToMnemonic() << " subject " << name;
    }
  }
}

TEST(StorageTest, MissingSectionsRejected) {
  EXPECT_FALSE(LoadSystemFromText("strategy P-\n").ok());
  EXPECT_FALSE(LoadSystemFromText("[hierarchy]\nnode a\n").ok());
  EXPECT_FALSE(
      LoadSystemFromText("[authorizations]\n[hierarchy]\nnode a\n").ok());
}

TEST(StorageTest, BadStrategyRejectedWithLineNumber) {
  auto result = LoadSystemFromText(
      "strategy D*LP-\n[hierarchy]\nnode a\n[authorizations]\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("line 1"), std::string::npos);
}

TEST(StorageTest, StrategyLineIsOptional) {
  auto result = LoadSystemFromText(
      "[hierarchy]\nedge g u\n[authorizations]\nauth g doc read +\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Falls back to the options' default strategy (P-).
  EXPECT_EQ(result->strategy().ToMnemonic(), "P-");
  EXPECT_EQ(result->CheckAccessByName("u", "doc", "read").value(),
            Mode::kPositive);
}

TEST(StorageTest, GarbagePreambleRejected) {
  EXPECT_FALSE(LoadSystemFromText("bogus line\n[hierarchy]\n"
                                  "[authorizations]\n")
                   .ok());
}

TEST(StorageTest, CorruptAuthorizationsSurfaceSection) {
  auto result = LoadSystemFromText(
      "[hierarchy]\nedge g u\n[authorizations]\nauth ghost doc read +\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("authorizations"),
            std::string::npos);
}

// The torn-save regression: a save that dies mid-write (ENOSPC, crash)
// must leave the previous file byte-identical, not half-overwritten.
// The injected limit makes WriteFileAtomic fail after a few bytes of
// the *temp* file — the target must never have been touched.
TEST(StorageTest, FailedSaveLeavesOldFileIntact) {
  AccessControlSystem original = MakePaperSystem();
  const std::string path = ::testing::TempDir() + "/ucr_atomic_save_test.ucr";
  ASSERT_TRUE(SaveSystemToFile(original, path).ok());
  auto before = ReadFileToString(path);
  ASSERT_TRUE(before.ok());

  // Grow the system so a successful second save WOULD change the file.
  ASSERT_TRUE(original.Grant("S1", "obj2", "write").ok());

  SetAtomicWriteLimitForTesting(7);  // Simulated device-full mid-write.
  const Status failed = SaveSystemToFile(original, path);
  SetAtomicWriteLimitForTesting(-1);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.message().find("No space left"), std::string::npos);

  // Old contents survive bit-for-bit and still load.
  auto after = ReadFileToString(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);
  EXPECT_TRUE(LoadSystemFromFile(path).ok());

  // And with the device "fixed", the same save goes through.
  ASSERT_TRUE(SaveSystemToFile(original, path).ok());
  auto healed = LoadSystemFromFile(path);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(healed->eacm().size(), 4u);
  std::remove(path.c_str());
}

TEST(StorageTest, FailedSaveToFreshPathCreatesNothing) {
  AccessControlSystem original = MakePaperSystem();
  const std::string path =
      ::testing::TempDir() + "/ucr_atomic_save_fresh.ucr";
  std::remove(path.c_str());
  SetAtomicWriteLimitForTesting(0);
  EXPECT_FALSE(SaveSystemToFile(original, path).ok());
  SetAtomicWriteLimitForTesting(-1);
  // Neither the target nor temp debris with the target's name exists.
  EXPECT_EQ(LoadSystemFromFile(path).status().code(), StatusCode::kNotFound);
}

// Two threads saving the same path concurrently must each get a
// private temp file (unique per call, not just per process): if they
// shared one, a rename could publish a half-overwritten mix. Whatever
// the interleaving, the target is always one writer's complete bytes.
TEST(StorageTest, ConcurrentAtomicSavesNeverMixContents) {
  const std::string path =
      ::testing::TempDir() + "/ucr_atomic_concurrent.ucr";
  std::remove(path.c_str());
  const std::string a(8192, 'a');
  const std::string b(8192, 'b');
  constexpr int kRounds = 50;
  std::thread ta([&] {
    for (int i = 0; i < kRounds; ++i) ASSERT_TRUE(WriteFileAtomic(path, a).ok());
  });
  std::thread tb([&] {
    for (int i = 0; i < kRounds; ++i) ASSERT_TRUE(WriteFileAtomic(path, b).ok());
  });
  ta.join();
  tb.join();
  auto final_bytes = ReadFileToString(path);
  ASSERT_TRUE(final_bytes.ok());
  EXPECT_TRUE(*final_bytes == a || *final_bytes == b)
      << "target holds a mix of two writers' contents";
  std::remove(path.c_str());
}

TEST(StorageTest, FileRoundTrip) {
  AccessControlSystem original = MakePaperSystem();
  const std::string path = ::testing::TempDir() + "/ucr_storage_test.ucr";
  ASSERT_TRUE(SaveSystemToFile(original, path).ok());
  auto loaded = LoadSystemFromFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->eacm().size(), 3u);
  std::remove(path.c_str());
  EXPECT_EQ(LoadSystemFromFile(path).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ucr::core
