#include "util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace ucr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("subject 'bob'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "subject 'bob'");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: subject 'bob'");
}

TEST(StatusTest, FactoryCodesAreDistinct) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "CORRUPTION");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::InvalidArgument("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "payload");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("abc"));
  EXPECT_EQ(v->size(), 3u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

StatusOr<int> Double(int x) {
  UCR_RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

StatusOr<int> DoubleTwice(int x) {
  UCR_ASSIGN_OR_RETURN(const int once, Double(x));
  UCR_ASSIGN_OR_RETURN(const int twice, Double(once));
  return twice;
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_FALSE(helpers::Double(-1).ok());
  EXPECT_EQ(helpers::Double(3).value(), 6);
}

TEST(StatusMacrosTest, AssignOrReturnChainsOnSameScope) {
  // Two UCR_ASSIGN_OR_RETURN in one function exercise the __LINE__
  // uniquification of the temporary variable.
  EXPECT_EQ(helpers::DoubleTwice(3).value(), 12);
  EXPECT_FALSE(helpers::DoubleTwice(-2).ok());
}

}  // namespace
}  // namespace ucr
