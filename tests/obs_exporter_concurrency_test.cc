// Exposition-under-churn test (DESIGN.md §13): N parallel scrapers
// hammer /metrics, /timeseries, /varz, and /statz over real sockets
// while ApplyMutations batches churn hierarchy epochs and the sampler
// ticks at a fast cadence. Every JSON body must be structurally valid
// (no torn reads from the lock-free rings) and a scrape must not touch
// the instrumented reader-lock family at all. Runs under the `obs`
// label, so the TSan preset exercises the same interleavings.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/paper_example.h"
#include "core/system.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace ucr::obs {
namespace {

#if !UCR_METRICS_ENABLED

TEST(ObsExporterConcurrencyTest, DisabledBuildHasNothingToServe) {
  HttpExporter exporter;
  EXPECT_FALSE(exporter.Start(0));
}

#else

/// One blocking HTTP exchange against 127.0.0.1:`port` (same helper as
/// obs_http_exporter_test); returns the raw response.
std::string HttpRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return HttpRequest(port,
                     "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

/// Body after the header/body separator; empty when malformed.
std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

TEST(ObsExporterConcurrencyTest, ScrapesTakeNoReaderLocks) {
  // Warm the surfaces once (first render may intern new metrics).
  std::string body;
  std::string type;
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/metrics", &body, &type));
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/timeseries", &body, &type));
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/statz", &body, &type));

  const uint64_t before = GetLockWaitMetrics().acquisitions.Value();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(HttpExporter::RenderEndpoint("/metrics", &body, &type));
    ASSERT_TRUE(HttpExporter::RenderEndpoint("/timeseries", &body, &type));
    ASSERT_TRUE(HttpExporter::RenderEndpoint("/statz", &body, &type));
  }
  EXPECT_EQ(GetLockWaitMetrics().acquisitions.Value(), before)
      << "a scrape went through an instrumented reader-path lock";
}

TEST(ObsExporterConcurrencyTest, ParallelScrapersSurviveMutationChurn) {
  TimeSeriesSampler::Global().ResetForTesting();
  core::PaperExample ex = core::MakePaperExample();
  core::AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());

  TimeSeriesSampler::Options ts_options;
  ts_options.interval_ms = 2;  // Aggressive cadence: maximize overlap.
  ASSERT_TRUE(TimeSeriesSampler::Global().Start(ts_options, nullptr));
  // The sampler registers its own metrics on the first tick; wait for
  // it so /metrics deterministically carries ucr_timeseries_*.
  for (int waited = 0;
       TimeSeriesSampler::Global().ticks_total() == 0 && waited < 2000;
       waited += 5) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(TimeSeriesSampler::Global().ticks_total(), 1u);

  HttpExporter exporter;
  std::string error;
  ASSERT_TRUE(exporter.Start(0, &error)) << error;
  const uint16_t port = exporter.port();

  constexpr int kScrapers = 4;
  constexpr int kScrapesEach = 25;
  std::atomic<bool> stop_churn{false};
  std::atomic<uint64_t> bodies_checked{0};

  // Churn thread: epoch-bumping mutation batches interleaved with
  // queries, so scrapes race live hierarchy edits and cache sweeps.
  std::thread churn([&] {
    using MutationOp = core::AccessControlSystem::MutationOp;
    while (!stop_churn.load(std::memory_order_relaxed)) {
      const std::vector<MutationOp> grow = {
          MutationOp::Grant("S6", "obj", "read"),
          MutationOp::Deny("S1", "obj", "read"),
          MutationOp::AddMember("S1", "S6"),
      };
      const std::vector<MutationOp> shrink = {
          MutationOp::RemoveMember("S1", "S6"),
          MutationOp::Revoke("S6", "obj", "read"),
          MutationOp::Revoke("S1", "obj", "read"),
      };
      core::AccessControlSystem::MutationBatchStats stats;
      ASSERT_TRUE(system.ApplyMutations(grow, &stats).ok());
      ASSERT_TRUE(system.CheckAccessByName("User", "obj", "read").ok());
      ASSERT_TRUE(system.ApplyMutations(shrink, &stats).ok());
    }
  });

  const char* kJsonPaths[] = {"/timeseries", "/varz", "/statz", "/tracez"};
  std::vector<std::thread> scrapers;
  scrapers.reserve(kScrapers);
  for (int t = 0; t < kScrapers; ++t) {
    scrapers.emplace_back([&, t] {
      for (int i = 0; i < kScrapesEach; ++i) {
        if ((i + t) % 2 == 0) {
          const std::string response = Get(port, "/metrics");
          EXPECT_NE(response.find("200 OK"), std::string::npos);
          const std::string text = BodyOf(response);
          EXPECT_NE(text.find("# HELP"), std::string::npos);
          EXPECT_NE(text.find("ucr_timeseries_ticks_total"),
                    std::string::npos);
        } else {
          const std::string path = kJsonPaths[(i + t) % 4];
          const std::string response = Get(port, path);
          EXPECT_NE(response.find("200 OK"), std::string::npos) << path;
          const std::string json = BodyOf(response);
          EXPECT_TRUE(JsonLooksValid(json))
              << path << " returned torn JSON:\n"
              << json;
        }
        bodies_checked.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::thread& s : scrapers) s.join();
  stop_churn.store(true, std::memory_order_relaxed);
  churn.join();
  exporter.Stop();
  TimeSeriesSampler::Global().Stop();

  EXPECT_EQ(bodies_checked.load(), kScrapers * kScrapesEach);
  EXPECT_GE(exporter.requests_total(),
            static_cast<uint64_t>(kScrapers * kScrapesEach));
  // The sampler really was live during the exchange.
  EXPECT_GE(TimeSeriesSampler::Global().ticks_total(), 1u);
  TimeSeriesSampler::Global().ResetForTesting();
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::obs
