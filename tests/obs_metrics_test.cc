// Unit tests for the metrics layer (src/obs/metrics.h, DESIGN.md §8):
// histogram bucket geometry, multi-thread counter exactness, gauge
// semantics, registry interning, and both exposition formats.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace ucr::obs {
namespace {

#if !UCR_METRICS_ENABLED
// The recording API must stay callable with the kill switch off; the
// value-based assertions below only hold with instrumentation on.
TEST(ObsMetricsTest, DisabledBuildCompilesAndRecordsNothing) {
  Counter& c = Registry::Global().GetCounter("ucr_test_disabled", "t");
  c.Inc();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(NowNs(), 0u);
}
#else

TEST(ObsMetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 is exact zeros; bucket i >= 1 covers [2^(i-1), 2^i - 1].
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  EXPECT_EQ(Histogram::BucketIndex(2), 2u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 3u);
  EXPECT_EQ(Histogram::BucketIndex(7), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1023), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 11u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);

  // Every value maps inside its bucket's range.
  for (uint64_t v : {1u, 2u, 3u, 5u, 100u, 4096u, 1000000u}) {
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << v;
    if (i > 1) {
      EXPECT_GT(v, Histogram::BucketUpperBound(i - 1)) << v;
    }
  }

  // Values past the top bucket clamp instead of indexing out of range.
  EXPECT_EQ(Histogram::BucketIndex(~uint64_t{0}), Histogram::kBuckets - 1);
}

TEST(ObsMetricsTest, HistogramResolvesMillionNodeScaleObservations) {
  // Count-valued series (ucr_subgraph_nodes, ucr_reach_label_bytes,
  // ucr_reach_pruned_nodes) observe million-node extractions and
  // multi-gigabyte footprints; none of those may collapse into the
  // unbounded +Inf tail, or the exported quantiles read as infinite.
  for (const uint64_t v :
       {uint64_t{1} << 20,           // million-node subject hierarchy
        uint64_t{10} * 1000 * 1000,  // 10M-entry label pool
        uint64_t{1} << 33,           // multi-GiB label footprint
        uint64_t{60} * 1000 * 1000 * 1000,  // 60 s in ns
        uint64_t{1} << 45}) {        // ~9.7 h in ns
    const size_t i = Histogram::BucketIndex(v);
    EXPECT_LT(i, Histogram::kBuckets - 1) << v;   // finite bucket
    EXPECT_LE(v, Histogram::BucketUpperBound(i)) << v;
  }
  // The widened layout keeps a finite ceiling of at least 2^46 - 1.
  static_assert(Histogram::kBuckets >= 48);
  EXPECT_GE(Histogram::BucketUpperBound(Histogram::kBuckets - 2),
            (uint64_t{1} << 46) - 1);
}

TEST(ObsMetricsTest, HistogramObserveAndSnapshot) {
  Histogram& h = Registry::Global().GetHistogram(
      "ucr_test_histogram_snapshot", "test");
  h.Observe(0);
  h.Observe(1);
  h.Observe(2);
  h.Observe(3);
  h.Observe(1000);
  const Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 1006u);
  EXPECT_EQ(snap.counts[0], 1u);  // the zero
  EXPECT_EQ(snap.counts[1], 1u);  // 1
  EXPECT_EQ(snap.counts[2], 2u);  // 2, 3
  EXPECT_EQ(snap.counts[10], 1u);  // 1000 in [512, 1023]
}

TEST(ObsMetricsTest, CounterIsExactUnderConcurrentIncrements) {
  Counter& c = Registry::Global().GetCounter(
      "ucr_test_counter_exactness", "test");
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (std::thread& t : threads) t.join();
  // Sharded slots merge exactly once writers are quiescent: no lost
  // updates, no double counts.
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(ObsMetricsTest, CounterIncByDelta) {
  Counter& c = Registry::Global().GetCounter("ucr_test_counter_delta", "t");
  c.Inc(5);
  c.Inc();
  c.Inc(0);
  EXPECT_EQ(c.Value(), 6u);
}

TEST(ObsMetricsTest, GaugeSetAddSub) {
  Gauge& g = Registry::Global().GetGauge("ucr_test_gauge", "test");
  g.Set(10);
  EXPECT_EQ(g.Value(), 10);
  g.Add(5);
  g.Sub(3);
  EXPECT_EQ(g.Value(), 12);
  g.Sub(20);
  EXPECT_EQ(g.Value(), -8);  // Gauges are signed.
  g.Set(0);
}

TEST(ObsMetricsTest, RegistryInternsByName) {
  Registry& r = Registry::Global();
  Counter& a = r.GetCounter("ucr_test_interned", "first registration");
  Counter& b = r.GetCounter("ucr_test_interned", "ignored: already known");
  EXPECT_EQ(&a, &b);

  const size_t before = r.metric_count();
  r.GetCounter("ucr_test_interned", "still ignored");
  EXPECT_EQ(r.metric_count(), before);
  r.GetGauge("ucr_test_interned_gauge", "distinct name, distinct metric");
  EXPECT_EQ(r.metric_count(), before + 1);
}

TEST(ObsMetricsTest, PrometheusExposition) {
  Registry& r = Registry::Global();
  r.GetCounter("ucr_test_prom_counter", "a counter").Inc(7);
  r.GetGauge("ucr_test_prom_gauge", "a gauge").Set(-3);
  r.GetHistogram("ucr_test_prom_histogram", "a histogram").Observe(5);

  const std::string text = r.RenderPrometheus();
  EXPECT_NE(text.find("# HELP ucr_test_prom_counter a counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ucr_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("ucr_test_prom_counter 7\n"), std::string::npos);
  EXPECT_NE(text.find("ucr_test_prom_gauge -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ucr_test_prom_histogram histogram"),
            std::string::npos);
  // 5 lands in bucket 3 (le = 7); the +Inf bucket is mandatory.
  EXPECT_NE(text.find("ucr_test_prom_histogram_bucket{le=\"7\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ucr_test_prom_histogram_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("ucr_test_prom_histogram_sum 5"), std::string::npos);
  EXPECT_NE(text.find("ucr_test_prom_histogram_count 1"), std::string::npos);
}

TEST(ObsMetricsTest, JsonExpositionIsStructurallyValid) {
  Registry& r = Registry::Global();
  r.GetCounter("ucr_test_json_counter", "c").Inc();
  r.GetHistogram("ucr_test_json_histogram", "h").Observe(42);
  const std::string json = r.RenderJson();
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"ucr_test_json_counter\":"), std::string::npos);
  EXPECT_NE(json.find("\"ucr_test_json_histogram\":{\"count\":"),
            std::string::npos);
}

#endif  // UCR_METRICS_ENABLED

// Exposition-format contract: names the registry accepts must match
// the Prometheus identifier grammar [a-zA-Z_:][a-zA-Z0-9_:]* — an
// invalid name would poison every scrape of the shared endpoint.
TEST(ObsMetricsTest, MetricNameValidation) {
  EXPECT_TRUE(IsValidMetricName("ucr_queries_total"));
  EXPECT_TRUE(IsValidMetricName("_private"));
  EXPECT_TRUE(IsValidMetricName("ns:subsystem:metric"));
  EXPECT_TRUE(IsValidMetricName("A9"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(IsValidMetricName("has-dash"));
  EXPECT_FALSE(IsValidMetricName("has space"));
  EXPECT_FALSE(IsValidMetricName("unicode_\xc3\xa9"));
  EXPECT_FALSE(IsValidMetricName("brace{"));
}

TEST(ObsMetricsTest, JsonValidatorRejectsMalformedDocuments) {
  EXPECT_TRUE(JsonLooksValid("{}"));
  EXPECT_TRUE(JsonLooksValid("{\"a\":[1,2,{\"b\":\"}\"}]}"));
  EXPECT_TRUE(JsonLooksValid("{\"esc\":\"quote \\\" brace {\"}"));
  EXPECT_FALSE(JsonLooksValid(""));
  EXPECT_FALSE(JsonLooksValid("[1]"));       // Snapshots are objects.
  EXPECT_FALSE(JsonLooksValid("{"));         // Unbalanced brace.
  EXPECT_FALSE(JsonLooksValid("{\"a\":1"));  // Unterminated object.
  EXPECT_FALSE(JsonLooksValid("{\"a\":\"x}"));  // Unterminated string.
  EXPECT_FALSE(JsonLooksValid("{]}"));       // Mismatched nesting depth.
}

}  // namespace
}  // namespace ucr::obs
