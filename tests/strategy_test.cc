#include "core/strategy.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace ucr::core {
namespace {

TEST(StrategyTest, ParseFullMnemonic) {
  auto s = ParseStrategy("D+LMP-");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->default_rule, DefaultRule::kPositive);
  EXPECT_EQ(s->locality_rule, LocalityRule::kMostSpecific);
  EXPECT_EQ(s->majority_rule, MajorityRule::kAfter);
  EXPECT_EQ(s->preference_rule, PreferenceRule::kNegative);
}

TEST(StrategyTest, ParseMajorityBeforeLocality) {
  auto s = ParseStrategy("D-MGP+");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->default_rule, DefaultRule::kNegative);
  EXPECT_EQ(s->locality_rule, LocalityRule::kMostGeneral);
  EXPECT_EQ(s->majority_rule, MajorityRule::kBefore);
  EXPECT_EQ(s->preference_rule, PreferenceRule::kPositive);
}

TEST(StrategyTest, ParseMinimal) {
  auto s = ParseStrategy("P+");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->default_rule, DefaultRule::kNone);
  EXPECT_EQ(s->locality_rule, LocalityRule::kIdentity);
  EXPECT_EQ(s->majority_rule, MajorityRule::kSkip);
  EXPECT_EQ(s->preference_rule, PreferenceRule::kPositive);
}

TEST(StrategyTest, ParseRejectsMalformed) {
  for (const char* bad : {"", "P", "D*LP+", "DLP+", "LMP", "XP+", "LGP+",
                          "MMP+", "LMMP+", "P*", "D+", "pl+", "LPM+"}) {
    EXPECT_FALSE(ParseStrategy(bad).ok()) << "'" << bad << "' should fail";
  }
}

TEST(StrategyTest, MnemonicRoundTripForAll48) {
  for (const Strategy& s : AllStrategies()) {
    const std::string mnemonic = s.ToMnemonic();
    auto reparsed = ParseStrategy(mnemonic);
    ASSERT_TRUE(reparsed.ok()) << mnemonic;
    EXPECT_EQ(*reparsed, s) << mnemonic;
  }
}

TEST(StrategyTest, ExactlyFortyEightDistinctInstances) {
  const auto& all = AllStrategies();
  EXPECT_EQ(all.size(), 48u);
  std::set<std::string> mnemonics;
  for (const Strategy& s : all) mnemonics.insert(s.ToMnemonic());
  EXPECT_EQ(mnemonics.size(), 48u);
}

TEST(StrategyTest, CanonicalIndexMatchesEnumeration) {
  const auto& all = AllStrategies();
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].CanonicalIndex(), i) << all[i].ToMnemonic();
    EXPECT_TRUE(all[i].IsCanonical());
  }
}

TEST(StrategyTest, AfterWithIdentityNormalizesToBefore) {
  Strategy alias;
  alias.locality_rule = LocalityRule::kIdentity;
  alias.majority_rule = MajorityRule::kAfter;
  EXPECT_FALSE(alias.IsCanonical());
  const Strategy canonical = alias.Canonical();
  EXPECT_TRUE(canonical.IsCanonical());
  EXPECT_EQ(canonical.majority_rule, MajorityRule::kBefore);
  // Same mnemonic as the canonical form.
  EXPECT_EQ(alias.ToMnemonic(), canonical.ToMnemonic());
}

TEST(StrategyTest, MnemonicExamplesFromPaper) {
  // Spot-check the mnemonic renderer against paper spellings.
  EXPECT_EQ(ParseStrategy("D+LMP+")->ToMnemonic(), "D+LMP+");
  EXPECT_EQ(ParseStrategy("D-GMP-")->ToMnemonic(), "D-GMP-");
  EXPECT_EQ(ParseStrategy("MGP-")->ToMnemonic(), "MGP-");
  EXPECT_EQ(ParseStrategy("D+P-")->ToMnemonic(), "D+P-");
  EXPECT_EQ(ParseStrategy("GP+")->ToMnemonic(), "GP+");
}

TEST(StrategyTest, NamedConstant) {
  auto s = strategies::DPlusLPMinus();
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->ToMnemonic(), "D+LP-");
}

TEST(StrategyTest, DefaultConstructedIsClosedPreference) {
  const Strategy s;
  EXPECT_EQ(s.ToMnemonic(), "P-");
  EXPECT_TRUE(s.IsCanonical());
}

}  // namespace
}  // namespace ucr::core
