// Property-based tests of framework-level invariants, swept over all
// 48 canonical strategies (parameterized) and randomized inputs.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "acm/mode.h"
#include "core/resolve.h"
#include "core/rights_bag.h"
#include "core/strategy.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;
using acm::PropagatedMode;

RightsBag RandomBag(Random& rng, bool allow_defaults = true) {
  RightsBag bag;
  const size_t groups = rng.Uniform(6);  // Possibly empty.
  for (size_t i = 0; i < groups; ++i) {
    const uint32_t dis = static_cast<uint32_t>(rng.Uniform(5));
    const uint64_t mult = 1 + rng.Uniform(3);
    const uint64_t kind = rng.Uniform(allow_defaults ? 3 : 2);
    const PropagatedMode mode = kind == 0   ? PropagatedMode::kPositive
                                : kind == 1 ? PropagatedMode::kNegative
                                            : PropagatedMode::kDefault;
    bag.Add(dis, mode, mult);
  }
  bag.Normalize();
  return bag;
}

PropagatedMode FlipMode(PropagatedMode m) {
  if (m == PropagatedMode::kPositive) return PropagatedMode::kNegative;
  if (m == PropagatedMode::kNegative) return PropagatedMode::kPositive;
  return PropagatedMode::kDefault;
}

RightsBag FlipBag(const RightsBag& bag) {
  RightsBag out;
  for (const RightsEntry& e : bag.entries()) {
    out.Add(e.dis, FlipMode(e.mode), e.multiplicity);
  }
  out.Normalize();
  return out;
}

Strategy FlipStrategy(const Strategy& s) {
  Strategy out = s;
  if (s.default_rule == DefaultRule::kPositive) {
    out.default_rule = DefaultRule::kNegative;
  } else if (s.default_rule == DefaultRule::kNegative) {
    out.default_rule = DefaultRule::kPositive;
  }
  out.preference_rule = s.preference_rule == PreferenceRule::kPositive
                            ? PreferenceRule::kNegative
                            : PreferenceRule::kPositive;
  return out;
}

class AllStrategiesTest : public ::testing::TestWithParam<Strategy> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllStrategiesTest, ::testing::ValuesIn(AllStrategies()),
    [](const auto& param_info) {
      std::string name = param_info.param.ToMnemonic();
      std::string out;
      for (char c : name) {
        if (c == '+') {
          out += 'p';
        } else if (c == '-') {
          out += 'm';
        } else {
          out += c;
        }
      }
      return out;
    });

// Sign duality: negating every label, the default mode, and the
// preference mode negates the decision. This pins down that no step
// of Resolve() silently privileges one sign.
TEST_P(AllStrategiesTest, SignDuality) {
  const Strategy s = GetParam();
  const Strategy flipped = FlipStrategy(s);
  Random rng(1000 + s.CanonicalIndex());
  for (int trial = 0; trial < 200; ++trial) {
    const RightsBag bag = RandomBag(rng);
    const Mode a = Resolve(bag, s);
    const Mode b = Resolve(FlipBag(bag), flipped);
    ASSERT_EQ(a, acm::Negate(b))
        << s.ToMnemonic() << " on " << bag.ToString();
  }
}

// Unanimity: when every surviving tuple is positive (no '-' anywhere,
// defaults positive or dropped) and at least one tuple survives, every
// strategy grants.
TEST_P(AllStrategiesTest, PositiveUnanimityGrants) {
  const Strategy s = GetParam();
  if (s.default_rule == DefaultRule::kNegative) {
    GTEST_SKIP() << "negative defaults can inject '-' tuples";
  }
  Random rng(2000 + s.CanonicalIndex());
  for (int trial = 0; trial < 100; ++trial) {
    RightsBag bag;
    const size_t groups = 1 + rng.Uniform(4);
    for (size_t i = 0; i < groups; ++i) {
      bag.Add(static_cast<uint32_t>(rng.Uniform(4)),
              PropagatedMode::kPositive, 1 + rng.Uniform(2));
    }
    bag.Normalize();
    ASSERT_EQ(Resolve(bag, s), Mode::kPositive)
        << s.ToMnemonic() << " on " << bag.ToString();
  }
}

// An all-defaults bag behaves like the default mode (or falls to the
// preference when defaults are off).
TEST_P(AllStrategiesTest, DefaultsOnlyBagFollowsDefaultRule) {
  const Strategy s = GetParam();
  RightsBag bag;
  bag.Add(1, PropagatedMode::kDefault, 2);
  bag.Add(3, PropagatedMode::kDefault, 1);
  bag.Normalize();
  const Mode got = Resolve(bag, s);
  switch (s.default_rule) {
    case DefaultRule::kPositive:
      EXPECT_EQ(got, Mode::kPositive) << s.ToMnemonic();
      break;
    case DefaultRule::kNegative:
      EXPECT_EQ(got, Mode::kNegative) << s.ToMnemonic();
      break;
    case DefaultRule::kNone:
      EXPECT_EQ(got, s.preference_rule == PreferenceRule::kPositive
                         ? Mode::kPositive
                         : Mode::kNegative)
          << s.ToMnemonic();
      break;
  }
}

// The empty bag always resolves to the preference mode — the only
// deterministic policy that is defined on every input.
TEST_P(AllStrategiesTest, EmptyBagFollowsPreference) {
  const Strategy s = GetParam();
  ResolveTrace trace;
  const Mode got = Resolve(RightsBag{}, s, &trace);
  EXPECT_EQ(got, s.preference_rule == PreferenceRule::kPositive
                     ? Mode::kPositive
                     : Mode::kNegative);
  EXPECT_EQ(trace.returned_line, 9);
}

// Determinism across repeated evaluation (no hidden state).
TEST_P(AllStrategiesTest, Deterministic) {
  const Strategy s = GetParam();
  Random rng(3000 + s.CanonicalIndex());
  for (int trial = 0; trial < 50; ++trial) {
    const RightsBag bag = RandomBag(rng);
    EXPECT_EQ(Resolve(bag, s), Resolve(bag, s));
  }
}

// Every non-canonical parameter combination (majority "after" with no
// locality filter) behaves exactly like its canonical alias on every
// input — the 54-combination parameter space really contains only 48
// distinct strategies, as §2.2 claims.
TEST(AliasEquivalenceTest, AllSixAliasesMatchCanonical) {
  std::vector<Strategy> aliases;
  for (DefaultRule d : {DefaultRule::kNone, DefaultRule::kPositive,
                        DefaultRule::kNegative}) {
    for (PreferenceRule p :
         {PreferenceRule::kPositive, PreferenceRule::kNegative}) {
      Strategy alias;
      alias.default_rule = d;
      alias.locality_rule = LocalityRule::kIdentity;
      alias.majority_rule = MajorityRule::kAfter;
      alias.preference_rule = p;
      aliases.push_back(alias);
    }
  }
  ASSERT_EQ(aliases.size(), 6u);
  Random rng(4444);
  for (const Strategy& alias : aliases) {
    ASSERT_FALSE(alias.IsCanonical());
    const Strategy canonical = alias.Canonical();
    for (int trial = 0; trial < 200; ++trial) {
      const RightsBag bag = RandomBag(rng);
      ASSERT_EQ(Resolve(bag, alias), Resolve(bag, canonical))
          << canonical.ToMnemonic() << " on " << bag.ToString();
    }
  }
}

// Strengthening the majority: adding positive tuples can never flip a
// majority-first strategy's grant into a denial.
TEST(MajorityMonotonicityTest, AddingPositivesKeepsGrant) {
  const Strategy mp_minus = ParseStrategy("MP-").value();
  Random rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    RightsBag bag = RandomBag(rng, /*allow_defaults=*/false);
    if (Resolve(bag, mp_minus) != Mode::kPositive) continue;
    RightsBag extended = bag;
    extended.Add(static_cast<uint32_t>(rng.Uniform(5)),
                 PropagatedMode::kPositive, 1 + rng.Uniform(3));
    extended.Normalize();
    EXPECT_EQ(Resolve(extended, mp_minus), Mode::kPositive)
        << bag.ToString() << " -> " << extended.ToString();
  }
}

// Locality filters commute with uniform distance shifts: adding a
// constant to every distance never changes any decision.
TEST(ShiftInvarianceTest, UniformDistanceShiftPreservesDecisions) {
  Random rng(88);
  for (int trial = 0; trial < 100; ++trial) {
    const RightsBag bag = RandomBag(rng);
    RightsBag shifted;
    for (const RightsEntry& e : bag.entries()) {
      shifted.Add(e.dis + 7, e.mode, e.multiplicity);
    }
    shifted.Normalize();
    for (const Strategy& s : AllStrategies()) {
      ASSERT_EQ(Resolve(bag, s), Resolve(shifted, s))
          << s.ToMnemonic() << " on " << bag.ToString();
    }
  }
}

// Preference only matters when invoked: if a strategy returns at line
// 6 or 8, the twin strategy with the opposite preference returns the
// same mode.
TEST(PreferenceIrrelevanceTest, NonLine9ResultsIgnorePreference) {
  Random rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const RightsBag bag = RandomBag(rng);
    for (const Strategy& s : AllStrategies()) {
      ResolveTrace trace;
      const Mode got = Resolve(bag, s, &trace);
      if (trace.returned_line == 9) continue;
      Strategy twin = s;
      twin.preference_rule = s.preference_rule == PreferenceRule::kPositive
                                 ? PreferenceRule::kNegative
                                 : PreferenceRule::kPositive;
      ASSERT_EQ(Resolve(bag, twin), got)
          << s.ToMnemonic() << " on " << bag.ToString();
    }
  }
}

}  // namespace
}  // namespace ucr::core
