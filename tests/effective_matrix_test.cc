#include "core/effective_matrix.h"

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/strategy.h"

namespace ucr::core {
namespace {

using acm::Mode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

AccessControlSystem MakePaperSystem() {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  // A second column exercises multi-column storage.
  EXPECT_TRUE(system.DenyAccess("S1", "obj", "write").ok());
  return system;
}

TEST(EffectiveMatrixTest, LookupMatchesOnDemandResolution) {
  AccessControlSystem system = MakePaperSystem();
  for (const char* mnemonic : {"D+LP-", "D-GMP+", "MP-", "P+"}) {
    auto matrix = EffectiveMatrix::Materialize(system, S(mnemonic));
    ASSERT_TRUE(matrix.ok());
    for (acm::ObjectId o = 0; o < system.eacm().object_count(); ++o) {
      for (acm::RightId r = 0; r < system.eacm().right_count(); ++r) {
        for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
          EXPECT_EQ(matrix->Lookup(v, o, r).value(),
                    system.CheckAccess(v, o, r, S(mnemonic)).value())
              << mnemonic << " subject " << system.dag().name(v);
        }
      }
    }
  }
}

TEST(EffectiveMatrixTest, EmptyColumnIsUniformDefaultDecision) {
  AccessControlSystem system = MakePaperSystem();
  // "write" on a brand-new object has no explicit labels anywhere —
  // intern it before materialization so it is in range.
  ASSERT_TRUE(system.Grant("S2", "other", "exec").ok());
  ASSERT_TRUE(system.Revoke("S2", "other", "exec").ok());
  auto matrix = EffectiveMatrix::Materialize(system, S("D+P-"));
  ASSERT_TRUE(matrix.ok());
  const acm::ObjectId other = system.eacm().FindObject("other").value();
  const acm::RightId exec = system.eacm().FindRight("exec").value();
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    EXPECT_EQ(matrix->Lookup(v, other, exec).value(), Mode::kPositive);
  }
  auto closed = EffectiveMatrix::Materialize(system, S("D-P+"));
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->Lookup(0, other, exec).value(), Mode::kNegative);
  auto no_default = EffectiveMatrix::Materialize(system, S("P+"));
  ASSERT_TRUE(no_default.ok());
  EXPECT_EQ(no_default->Lookup(0, other, exec).value(), Mode::kPositive);
}

TEST(EffectiveMatrixTest, StalenessTracksEpoch) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("D+LP-"));
  ASSERT_TRUE(matrix.ok());
  EXPECT_TRUE(matrix->IsCurrentFor(system));
  ASSERT_TRUE(system.Grant("S6", "obj", "read").ok());
  EXPECT_FALSE(matrix->IsCurrentFor(system))
      << "the §5 self-maintainability problem: any update stales the "
         "whole materialization";
}

TEST(EffectiveMatrixTest, RefreshRebuildsOnlyTouchedColumns) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("D+LP-"));
  ASSERT_TRUE(matrix.ok());

  // Touch only the (obj, write) column.
  ASSERT_TRUE(system.DenyAccess("S2", "obj", "write").ok());
  EXPECT_FALSE(matrix->IsCurrentFor(system));
  auto refreshed = matrix->Refresh(system);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(*refreshed, 1u) << "only the touched column rebuilds";
  EXPECT_TRUE(matrix->IsCurrentFor(system));

  // The refreshed matrix answers like on-demand resolution.
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId write = system.eacm().FindRight("write").value();
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    EXPECT_EQ(matrix->Lookup(v, obj, write).value(),
              system.CheckAccess(v, obj, write, S("D+LP-")).value());
  }
}

TEST(EffectiveMatrixTest, RefreshPicksUpBrandNewColumns) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("LP-"));
  ASSERT_TRUE(matrix.ok());
  ASSERT_TRUE(system.Grant("S3", "newdoc", "read").ok());
  auto refreshed = matrix->Refresh(system);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(*refreshed, 1u);
  const acm::ObjectId newdoc = system.eacm().FindObject("newdoc").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  EXPECT_EQ(matrix->Lookup(system.dag().FindNode("S4"), newdoc, read).value(),
            Mode::kPositive)
      << "S4 inherits S3's grant on the new column";
}

// Hierarchy edits stale the matrix via the dag's generation stamps
// (not the column epochs) and Refresh repairs them by re-resolving
// only the affected rows — the edited child and its descendants.
TEST(EffectiveMatrixTest, StalenessTracksHierarchyGeneration) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("D+LP-"));
  ASSERT_TRUE(matrix.ok());
  EXPECT_TRUE(matrix->IsCurrentFor(system));
  // No column epoch moves, but User's ancestor set changed.
  ASSERT_TRUE(system.RemoveMembership("S5", "User").ok());
  EXPECT_FALSE(matrix->IsCurrentFor(system));
}

TEST(EffectiveMatrixTest, RefreshRepairsAffectedRowsAfterMembershipEdit) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("D+LP-"));
  ASSERT_TRUE(matrix.ok());
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  const graph::NodeId user = system.dag().FindNode("User");
  ASSERT_EQ(matrix->Lookup(user, obj, read).value(), Mode::kNegative);

  // Detaching User from S5 flips User's decision; no rights changed,
  // so no whole column is rebuilt — only the affected rows.
  ASSERT_TRUE(system.RemoveMembership("S5", "User").ok());
  auto refreshed = matrix->Refresh(system);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(*refreshed, 0u) << "row-scoped repair, no column rebuild";
  EXPECT_TRUE(matrix->IsCurrentFor(system));
  // Every cell — affected rows included — matches on-demand resolution.
  for (acm::ObjectId o = 0; o < system.eacm().object_count(); ++o) {
    for (acm::RightId r = 0; r < system.eacm().right_count(); ++r) {
      for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
        EXPECT_EQ(matrix->Lookup(v, o, r).value(),
                  system.CheckAccess(v, o, r, S("D+LP-")).value())
            << system.dag().name(v);
      }
    }
  }
}

TEST(EffectiveMatrixTest, RefreshGrowsWithNewSubjects) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("D+LP-"));
  ASSERT_TRUE(matrix.ok());
  const size_t subjects_before = matrix->subject_count();

  // A new hire under S2 inherits S2's '+' on (obj, read).
  ASSERT_TRUE(system.AddMembership("S2", "newhire").ok());
  EXPECT_FALSE(matrix->IsCurrentFor(system));
  auto refreshed = matrix->Refresh(system);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_TRUE(matrix->IsCurrentFor(system));
  EXPECT_EQ(matrix->subject_count(), subjects_before + 1);

  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  const graph::NodeId hire = system.dag().FindNode("newhire");
  EXPECT_EQ(matrix->Lookup(hire, obj, read).value(), Mode::kPositive);
}

// Interleaved rights and hierarchy edits: one Refresh must repair the
// lapsed column wholesale and the affected rows of the current ones.
TEST(EffectiveMatrixTest, RefreshHandlesMixedRightsAndHierarchyEdits) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("D+LP-"));
  ASSERT_TRUE(matrix.ok());

  ASSERT_TRUE(system.DenyAccess("S2", "obj", "write").ok());
  ASSERT_TRUE(system.RemoveMembership("S5", "User").ok());
  ASSERT_TRUE(system.AddMembership("S4", "newhire").ok());

  auto refreshed = matrix->Refresh(system);
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  EXPECT_EQ(*refreshed, 1u) << "only (obj, write) lapsed its epoch";
  EXPECT_TRUE(matrix->IsCurrentFor(system));
  for (acm::ObjectId o = 0; o < system.eacm().object_count(); ++o) {
    for (acm::RightId r = 0; r < system.eacm().right_count(); ++r) {
      for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
        EXPECT_EQ(matrix->Lookup(v, o, r).value(),
                  system.CheckAccess(v, o, r, S("D+LP-")).value())
            << system.dag().name(v);
      }
    }
  }
}

TEST(EffectiveMatrixTest, RefreshNoOpWhenCurrent) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("P-"));
  ASSERT_TRUE(matrix.ok());
  auto refreshed = matrix->Refresh(system);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_EQ(*refreshed, 0u);
}

TEST(EffectiveMatrixTest, RejectsUnknownIds) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("P-"));
  ASSERT_TRUE(matrix.ok());
  EXPECT_FALSE(matrix->Lookup(999, 0, 0).ok());
  EXPECT_FALSE(matrix->Lookup(0, 99, 0).ok());
  EXPECT_FALSE(matrix->Lookup(0, 0, 99).ok());
}

TEST(EffectiveMatrixTest, MemoryScalesWithColumns) {
  AccessControlSystem system = MakePaperSystem();
  auto matrix = EffectiveMatrix::Materialize(system, S("P-"));
  ASSERT_TRUE(matrix.ok());
  EXPECT_EQ(matrix->column_count(), 2u);  // (obj,read) and (obj,write).
  EXPECT_GT(matrix->MemoryBytes(), 0u);
  EXPECT_EQ(matrix->subject_count(), system.dag().node_count());
}

}  // namespace
}  // namespace ucr::core
