#include "core/dominance.h"

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/resolve.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;
using graph::Dag;

using Labels = std::vector<std::optional<Mode>>;

TEST(DominanceTest, NearestLabelWins) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("top", "mid").ok());
  ASSERT_TRUE(b.AddEdge("mid", "leaf").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(3);
  labels[dag->FindNode("top")] = Mode::kPositive;
  labels[dag->FindNode("mid")] = Mode::kNegative;
  EXPECT_EQ(Dominance(*dag, labels, dag->FindNode("leaf"),
                      DefaultRule::kPositive, PreferenceRule::kPositive),
            Mode::kNegative)
      << "mid's '-' is more specific than top's '+'";
}

TEST(DominanceTest, OwnLabelBeatsEverything) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("g", "u").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(2);
  labels[dag->FindNode("g")] = Mode::kNegative;
  labels[dag->FindNode("u")] = Mode::kPositive;
  EXPECT_EQ(Dominance(*dag, labels, dag->FindNode("u"),
                      DefaultRule::kNegative, PreferenceRule::kNegative),
            Mode::kPositive);
}

TEST(DominanceTest, MixedNearestLevelFallsToPreference) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("a", "s").ok());
  ASSERT_TRUE(b.AddEdge("b", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(3);
  labels[dag->FindNode("a")] = Mode::kPositive;
  labels[dag->FindNode("b")] = Mode::kNegative;
  EXPECT_EQ(Dominance(*dag, labels, dag->FindNode("s"), DefaultRule::kNone,
                      PreferenceRule::kNegative),
            Mode::kNegative);
  EXPECT_EQ(Dominance(*dag, labels, dag->FindNode("s"), DefaultRule::kNone,
                      PreferenceRule::kPositive),
            Mode::kPositive);
}

TEST(DominanceTest, UnlabeledRootsTakeDefault) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("root", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  const Labels labels(2);
  EXPECT_EQ(Dominance(*dag, labels, dag->FindNode("s"),
                      DefaultRule::kPositive, PreferenceRule::kNegative),
            Mode::kPositive);
  EXPECT_EQ(Dominance(*dag, labels, dag->FindNode("s"),
                      DefaultRule::kNegative, PreferenceRule::kPositive),
            Mode::kNegative);
}

TEST(DominanceTest, NoLabelsNoDefaultFallsToPreference) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("root", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  const Labels labels(2);
  EXPECT_EQ(Dominance(*dag, labels, dag->FindNode("s"), DefaultRule::kNone,
                      PreferenceRule::kPositive),
            Mode::kPositive);
}

TEST(DominanceTest, EarlyExitOnPreferredLabel) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("g", "u").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(2);
  labels[dag->FindNode("u")] = Mode::kNegative;
  DominanceStats stats;
  EXPECT_EQ(Dominance(*dag, labels, dag->FindNode("u"), DefaultRule::kNone,
                      PreferenceRule::kNegative, &stats),
            Mode::kNegative);
  EXPECT_TRUE(stats.early_exit);
  EXPECT_EQ(stats.nodes_visited, 1u);  // Never looked at g.
}

TEST(DominanceTest, NonPreferredLevelCompletesScan) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("g", "u").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(2);
  labels[dag->FindNode("u")] = Mode::kPositive;
  DominanceStats stats;
  EXPECT_EQ(Dominance(*dag, labels, dag->FindNode("u"), DefaultRule::kNone,
                      PreferenceRule::kNegative, &stats),
            Mode::kPositive);
  EXPECT_FALSE(stats.early_exit);
}

TEST(DominanceTest, PaperExampleMatchesPublishedDLPRows) {
  // Table 2: D+LP+ = '+', D+LP- = '-', D-LP+ = '+', D-LP- = '-'.
  const PaperExample ex = MakePaperExample();
  const auto labels =
      ex.eacm.ExtractLabels(ex.dag.node_count(), ex.obj, ex.read);
  EXPECT_EQ(Dominance(ex.dag, labels, ex.user, DefaultRule::kPositive,
                      PreferenceRule::kPositive),
            Mode::kPositive);
  EXPECT_EQ(Dominance(ex.dag, labels, ex.user, DefaultRule::kPositive,
                      PreferenceRule::kNegative),
            Mode::kNegative);
  EXPECT_EQ(Dominance(ex.dag, labels, ex.user, DefaultRule::kNegative,
                      PreferenceRule::kPositive),
            Mode::kPositive);
  EXPECT_EQ(Dominance(ex.dag, labels, ex.user, DefaultRule::kNegative,
                      PreferenceRule::kNegative),
            Mode::kNegative);
}

struct DlpParam {
  DefaultRule default_rule;
  PreferenceRule preference;
  const char* mnemonic;
};

class DominanceEquivalenceTest : public ::testing::TestWithParam<DlpParam> {};

INSTANTIATE_TEST_SUITE_P(
    DlpFamily, DominanceEquivalenceTest,
    ::testing::Values(
        DlpParam{DefaultRule::kPositive, PreferenceRule::kPositive, "D+LP+"},
        DlpParam{DefaultRule::kPositive, PreferenceRule::kNegative, "D+LP-"},
        DlpParam{DefaultRule::kNegative, PreferenceRule::kPositive, "D-LP+"},
        DlpParam{DefaultRule::kNegative, PreferenceRule::kNegative, "D-LP-"},
        DlpParam{DefaultRule::kNone, PreferenceRule::kPositive, "LP+"},
        DlpParam{DefaultRule::kNone, PreferenceRule::kNegative, "LP-"}),
    [](const auto& param_info) {
      std::string name = param_info.param.mnemonic;
      for (char& c : name) {
        if (c == '+') c = 'p';
        if (c == '-') c = 'm';
      }
      return name;
    });

// The paper's implicit claim: Dominance() computes exactly what
// Resolve() computes for the D*LP* family. Checked on random DAGs
// with random label placements, for every node (not just sinks).
TEST_P(DominanceEquivalenceTest, AgreesWithResolveOnRandomGraphs) {
  const DlpParam param = GetParam();
  auto strategy = ParseStrategy(param.mnemonic);
  ASSERT_TRUE(strategy.ok());

  Random rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    graph::LayeredDagOptions opt;
    opt.layers = 2 + static_cast<size_t>(rng.Uniform(4));
    opt.nodes_per_layer = 2 + static_cast<size_t>(rng.Uniform(5));
    opt.skip_edge_probability = 0.2;
    auto dag = graph::GenerateLayeredDag(opt, rng);
    ASSERT_TRUE(dag.ok());

    acm::ExplicitAcm eacm;
    const acm::ObjectId o = eacm.InternObject("obj").value();
    const acm::RightId r = eacm.InternRight("read").value();
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      if (rng.Bernoulli(0.25)) {
        ASSERT_TRUE(eacm.Set(v, o, r,
                             rng.Bernoulli(0.5) ? Mode::kPositive
                                                : Mode::kNegative)
                        .ok());
      }
    }
    const auto labels = eacm.ExtractLabels(dag->node_count(), o, r);

    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      const Mode dominance = Dominance(*dag, labels, v, param.default_rule,
                                       param.preference);
      auto resolve = ResolveAccess(*dag, eacm, v, o, r, *strategy);
      ASSERT_TRUE(resolve.ok());
      EXPECT_EQ(dominance, *resolve)
          << "trial " << trial << " node " << dag->name(v) << " strategy "
          << param.mnemonic;
    }
  }
}

// --- DominancePathwise: the reconstructed Fig. 7(a) baseline -------

TEST(DominancePathwiseTest, StopsAtFirstLabelPerPath) {
  // r(+) -> m(-) -> s: the path stops at m; r's '+' is never seen.
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("r", "m").ok());
  ASSERT_TRUE(b.AddEdge("m", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(3);
  labels[dag->FindNode("r")] = Mode::kPositive;
  labels[dag->FindNode("m")] = Mode::kNegative;
  auto mode = DominancePathwise(*dag, labels, dag->FindNode("s"),
                                DefaultRule::kPositive,
                                PreferenceRule::kPositive);
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, Mode::kNegative);
}

TEST(DominancePathwiseTest, PreferredOnAnyPathWins) {
  // Two paths: one ends at '+', one at '-'. Preference decides, in
  // both directions.
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("a", "s").ok());
  ASSERT_TRUE(b.AddEdge("b", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels labels(3);
  labels[dag->FindNode("a")] = Mode::kPositive;
  labels[dag->FindNode("b")] = Mode::kNegative;
  EXPECT_EQ(*DominancePathwise(*dag, labels, dag->FindNode("s"),
                               DefaultRule::kNone, PreferenceRule::kNegative),
            Mode::kNegative);
  EXPECT_EQ(*DominancePathwise(*dag, labels, dag->FindNode("s"),
                               DefaultRule::kNone, PreferenceRule::kPositive),
            Mode::kPositive);
}

TEST(DominancePathwiseTest, ShortCircuitIsPlacementDependent) {
  // A wide fan of parents: with the preferred label on the first
  // parent the scan prunes; with it on the last parent it visits all.
  graph::DagBuilder b;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(b.AddEdge("p" + std::to_string(i), "s").ok());
  }
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  Labels early(51);
  early[dag->FindNode("p0")] = Mode::kNegative;
  Labels late(51);
  late[dag->FindNode("p49")] = Mode::kNegative;

  DominanceStats stats_early;
  ASSERT_TRUE(DominancePathwise(*dag, early, dag->FindNode("s"),
                                DefaultRule::kNone, PreferenceRule::kNegative,
                                &stats_early)
                  .ok());
  DominanceStats stats_late;
  ASSERT_TRUE(DominancePathwise(*dag, late, dag->FindNode("s"),
                                DefaultRule::kNone, PreferenceRule::kNegative,
                                &stats_late)
                  .ok());
  EXPECT_LT(stats_early.nodes_visited * 10, stats_late.nodes_visited)
      << "early preferred label must prune the scan hard";
}

TEST(DominancePathwiseTest, StepBudgetTrips) {
  auto dag = graph::GenerateDiamondStack(30);  // 2^30 upward paths.
  ASSERT_TRUE(dag.ok());
  const Labels labels(dag->node_count());
  auto result = DominancePathwise(*dag, labels, dag->FindNode("Dsink"),
                                  DefaultRule::kPositive,
                                  PreferenceRule::kNegative, nullptr,
                                  /*max_steps=*/10'000);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

// On trees every ancestor is reached by exactly one path, so per-path
// most-specific coincides with the global most-specific rule: the
// pathwise baseline must agree with Resolve's D*LP* family (and with
// the level-BFS Dominance) exactly.
TEST(DominancePathwiseTest, AgreesWithResolveOnTrees) {
  Random rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    auto dag = graph::GenerateRandomTree(30, rng);
    ASSERT_TRUE(dag.ok());
    acm::ExplicitAcm eacm;
    const acm::ObjectId o = eacm.InternObject("obj").value();
    const acm::RightId r = eacm.InternRight("read").value();
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      if (rng.Bernoulli(0.2)) {
        ASSERT_TRUE(eacm.Set(v, o, r,
                             rng.Bernoulli(0.5) ? Mode::kPositive
                                                : Mode::kNegative)
                        .ok());
      }
    }
    const auto labels = eacm.ExtractLabels(dag->node_count(), o, r);
    for (const char* mnemonic : {"D+LP-", "D-LP+", "LP-", "LP+"}) {
      auto strategy = ParseStrategy(mnemonic);
      ASSERT_TRUE(strategy.ok());
      for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
        auto pathwise = DominancePathwise(*dag, labels, v,
                                          strategy->default_rule,
                                          strategy->preference_rule);
        ASSERT_TRUE(pathwise.ok());
        auto resolve = ResolveAccess(*dag, eacm, v, o, r, *strategy);
        ASSERT_TRUE(resolve.ok());
        EXPECT_EQ(*pathwise, *resolve)
            << "trial " << trial << " node " << dag->name(v) << " "
            << mnemonic;
      }
    }
  }
}

TEST(DominanceAccessTest, EndToEndConvenience) {
  const PaperExample ex = MakePaperExample();
  auto mode = DominanceAccess(ex.dag, ex.eacm, ex.user, ex.obj, ex.read,
                              DefaultRule::kPositive,
                              PreferenceRule::kNegative);
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, Mode::kNegative);
  EXPECT_EQ(DominanceAccess(ex.dag, ex.eacm, 999, ex.obj, ex.read,
                            DefaultRule::kNone, PreferenceRule::kNegative)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace ucr::core
