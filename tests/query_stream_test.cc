#include "workload/query_stream.h"

#include <map>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace ucr::workload {
namespace {

struct Fixture {
  graph::Dag dag;
  acm::ExplicitAcm eacm;
};

Fixture MakeFixture() {
  Random rng(1);
  auto dag = graph::GenerateLayeredDag({.layers = 3, .nodes_per_layer = 20},
                                       rng);
  EXPECT_TRUE(dag.ok());
  Fixture f{std::move(dag).value(), {}};
  const acm::ObjectId o = f.eacm.InternObject("obj").value();
  const acm::RightId r = f.eacm.InternRight("read").value();
  EXPECT_TRUE(f.eacm.Set(0, o, r, acm::Mode::kPositive).ok());
  (void)f.eacm.InternObject("obj2").value();
  (void)f.eacm.InternRight("write").value();
  return f;
}

TEST(QueryStreamTest, GeneratesRequestedCountWithValidIds) {
  Fixture f = MakeFixture();
  QueryStreamOptions opt;
  opt.count = 5000;
  auto stream = GenerateQueryStream(f.dag, f.eacm, opt);
  ASSERT_TRUE(stream.ok());
  ASSERT_EQ(stream->size(), 5000u);
  for (const auto& q : *stream) {
    EXPECT_LT(q.subject, f.dag.node_count());
    EXPECT_TRUE(f.dag.is_sink(q.subject)) << "sinks_only default";
    EXPECT_LT(q.object, f.eacm.object_count());
    EXPECT_LT(q.right, f.eacm.right_count());
  }
}

TEST(QueryStreamTest, DeterministicForSeed) {
  Fixture f = MakeFixture();
  QueryStreamOptions opt;
  opt.count = 200;
  auto a = GenerateQueryStream(f.dag, f.eacm, opt);
  auto b = GenerateQueryStream(f.dag, f.eacm, opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].subject, (*b)[i].subject);
    EXPECT_EQ((*a)[i].object, (*b)[i].object);
    EXPECT_EQ((*a)[i].right, (*b)[i].right);
  }
}

TEST(QueryStreamTest, HotSetConcentratesTraffic) {
  Fixture f = MakeFixture();
  QueryStreamOptions opt;
  opt.count = 20000;
  opt.distribution = SubjectDistribution::kHotSet;
  opt.hot_set_size = 4;
  opt.hot_fraction = 0.9;
  auto stream = GenerateQueryStream(f.dag, f.eacm, opt);
  ASSERT_TRUE(stream.ok());
  std::map<graph::NodeId, size_t> hits;
  for (const auto& q : *stream) ++hits[q.subject];
  // The four hottest subjects should carry roughly 90% of queries
  // (hot draws can also land on them uniformly, so at least that).
  std::vector<size_t> counts;
  for (const auto& [node, count] : hits) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  size_t top4 = 0;
  for (size_t i = 0; i < counts.size() && i < 4; ++i) top4 += counts[i];
  EXPECT_GT(top4, opt.count * 85 / 100);
}

TEST(QueryStreamTest, ZipfIsSkewedButCoversTail) {
  Fixture f = MakeFixture();
  QueryStreamOptions opt;
  opt.count = 30000;
  opt.distribution = SubjectDistribution::kZipf;
  opt.zipf_exponent = 1.2;
  opt.sinks_only = false;
  auto stream = GenerateQueryStream(f.dag, f.eacm, opt);
  ASSERT_TRUE(stream.ok());
  std::map<graph::NodeId, size_t> hits;
  for (const auto& q : *stream) ++hits[q.subject];
  std::vector<size_t> counts;
  for (const auto& [node, count] : hits) counts.push_back(count);
  std::sort(counts.rbegin(), counts.rend());
  EXPECT_GT(counts.front(), opt.count / 10) << "head is hot";
  EXPECT_GT(hits.size(), 20u) << "tail is covered";
}

TEST(QueryStreamTest, UniformSpreadsEvenly) {
  Fixture f = MakeFixture();
  QueryStreamOptions opt;
  opt.count = 20000;
  opt.distribution = SubjectDistribution::kUniform;
  auto stream = GenerateQueryStream(f.dag, f.eacm, opt);
  ASSERT_TRUE(stream.ok());
  std::map<graph::NodeId, size_t> hits;
  for (const auto& q : *stream) ++hits[q.subject];
  const size_t sinks = f.dag.Sinks().size();
  const double expected =
      static_cast<double>(opt.count) / static_cast<double>(sinks);
  for (const auto& [node, count] : hits) {
    EXPECT_NEAR(static_cast<double>(count), expected, expected * 0.5);
  }
}

TEST(QueryStreamTest, Validation) {
  Fixture f = MakeFixture();
  acm::ExplicitAcm empty;
  EXPECT_EQ(GenerateQueryStream(f.dag, empty, {}).status().code(),
            StatusCode::kFailedPrecondition);
  QueryStreamOptions opt;
  opt.distribution = SubjectDistribution::kHotSet;
  opt.hot_set_size = 0;
  EXPECT_EQ(GenerateQueryStream(f.dag, f.eacm, opt).status().code(),
            StatusCode::kInvalidArgument);
  opt.hot_set_size = 4;
  opt.hot_fraction = 1.5;
  EXPECT_EQ(GenerateQueryStream(f.dag, f.eacm, opt).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace ucr::workload
