#include "acm/assignment.h"

#include <cmath>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace ucr::acm {
namespace {

struct Fixture {
  graph::Dag dag;
  ExplicitAcm eacm;
  ObjectId obj;
  RightId read;
};

Fixture MakeFixture(size_t kdag_n, uint64_t seed) {
  Random rng(seed);
  auto dag = graph::GenerateKDag(kdag_n, rng);
  EXPECT_TRUE(dag.ok());
  Fixture f{std::move(dag).value(), {}, 0, 0};
  f.obj = f.eacm.InternObject("obj").value();
  f.read = f.eacm.InternRight("read").value();
  return f;
}

TEST(AssignmentTest, LabelsExpectedFraction) {
  Fixture f = MakeFixture(40, 1);  // 780 edges.
  Random rng(2);
  RandomAssignmentOptions opt;
  opt.authorization_rate = 0.10;
  auto summary =
      AssignRandomAuthorizations(f.dag, f.obj, f.read, opt, rng, &f.eacm);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->edges_selected, 78u);
  // Source dedup can only shrink the set.
  EXPECT_LE(summary->subjects_labeled, summary->edges_selected);
  EXPECT_GT(summary->subjects_labeled, 0u);
  EXPECT_EQ(f.eacm.size(), summary->subjects_labeled);
}

TEST(AssignmentTest, TinyRateStillLabelsOneSubject) {
  Fixture f = MakeFixture(10, 3);
  Random rng(4);
  RandomAssignmentOptions opt;
  opt.authorization_rate = 1e-6;
  auto summary =
      AssignRandomAuthorizations(f.dag, f.obj, f.read, opt, rng, &f.eacm);
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->subjects_labeled, 1u);
}

TEST(AssignmentTest, ExactNegativeFractions) {
  for (double neg : {0.0, 0.01, 0.5, 1.0}) {
    Fixture f = MakeFixture(40, 5);
    Random rng(6);
    RandomAssignmentOptions opt;
    opt.authorization_rate = 0.10;
    opt.negative_fraction = neg;
    auto summary =
        AssignRandomAuthorizations(f.dag, f.obj, f.read, opt, rng, &f.eacm);
    ASSERT_TRUE(summary.ok());
    const auto counts = f.eacm.CountLabels(f.obj, f.read);
    EXPECT_EQ(counts.negative, summary->negatives);
    EXPECT_EQ(counts.negative,
              static_cast<size_t>(std::llround(
                  neg * static_cast<double>(summary->subjects_labeled))));
    EXPECT_EQ(counts.positive + counts.negative, summary->subjects_labeled);
  }
}

TEST(AssignmentTest, SamePlacementDifferentSignsAcrossSeeds) {
  // Re-running with the same RNG seed must label the same subjects, so
  // negative-fraction sweeps vary placement signs only (the Fig. 7(a)
  // protocol).
  Fixture f1 = MakeFixture(30, 7);
  Fixture f2 = MakeFixture(30, 7);
  RandomAssignmentOptions opt;
  opt.authorization_rate = 0.08;
  opt.negative_fraction = 0.01;
  Random rng1(8);
  ASSERT_TRUE(AssignRandomAuthorizations(f1.dag, f1.obj, f1.read, opt, rng1,
                                         &f1.eacm)
                  .ok());
  opt.negative_fraction = 1.0;
  Random rng2(8);
  ASSERT_TRUE(AssignRandomAuthorizations(f2.dag, f2.obj, f2.read, opt, rng2,
                                         &f2.eacm)
                  .ok());
  const auto e1 = f1.eacm.SortedEntries();
  const auto e2 = f2.eacm.SortedEntries();
  ASSERT_EQ(e1.size(), e2.size());
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].subject, e2[i].subject);
  }
}

TEST(AssignmentTest, EdgeSamplingBiasesTowardHighFanout) {
  // A star: hub -> leaf0..leaf199, plus a long chain c0 -> ... -> c9
  // hanging off the hub so the chain nodes have out-degree 1. The hub
  // holds 200 of 210 edges, so it should be labeled almost always.
  graph::DagBuilder b;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(b.AddEdge("hub", "leaf" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(b.AddEdge("c0", "c1").ok());
  for (int i = 1; i < 9; ++i) {
    ASSERT_TRUE(
        b.AddEdge("c" + std::to_string(i), "c" + std::to_string(i + 1)).ok());
  }
  ASSERT_TRUE(b.AddEdge("c9", "hub").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());

  int hub_labeled = 0;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    ExplicitAcm eacm;
    const ObjectId o = eacm.InternObject("obj").value();
    const RightId r = eacm.InternRight("read").value();
    Random rng(seed);
    RandomAssignmentOptions opt;
    opt.authorization_rate = 0.01;  // ~2 edges.
    ASSERT_TRUE(
        AssignRandomAuthorizations(*dag, o, r, opt, rng, &eacm).ok());
    if (eacm.Get(dag->FindNode("hub"), o, r).has_value()) ++hub_labeled;
  }
  EXPECT_GT(hub_labeled, 40);  // 200/210 edge share => ~49/50 expected.
}

TEST(AssignmentTest, ValidatesArguments) {
  Fixture f = MakeFixture(10, 9);
  Random rng(10);
  RandomAssignmentOptions opt;
  opt.authorization_rate = 0.0;
  EXPECT_FALSE(
      AssignRandomAuthorizations(f.dag, f.obj, f.read, opt, rng, &f.eacm)
          .ok());
  opt.authorization_rate = 1.5;
  EXPECT_FALSE(
      AssignRandomAuthorizations(f.dag, f.obj, f.read, opt, rng, &f.eacm)
          .ok());
  opt.authorization_rate = 0.1;
  opt.negative_fraction = -0.1;
  EXPECT_FALSE(
      AssignRandomAuthorizations(f.dag, f.obj, f.read, opt, rng, &f.eacm)
          .ok());
  opt.negative_fraction = 0.5;
  EXPECT_FALSE(
      AssignRandomAuthorizations(f.dag, f.obj, f.read, opt, rng, nullptr)
          .ok());
}

TEST(AssignmentTest, FailsOnEdgelessGraph) {
  graph::DagBuilder b;
  b.AddNode("only");
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  ExplicitAcm eacm;
  const ObjectId o = eacm.InternObject("obj").value();
  const RightId r = eacm.InternRight("read").value();
  Random rng(11);
  EXPECT_EQ(AssignRandomAuthorizations(*dag, o, r, {}, rng, &eacm)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace ucr::acm
