// Tests for the declarative health engine (src/obs/health.h,
// DESIGN.md §13): rule evaluation over the telemetry timeline,
// ok|degraded|failing verdicts with per-rule reasons, transition audit
// events, and the end-to-end acceptance path — a perturbed shadow
// oracle drives real mismatches through the sampler and flips
// /healthz to 503 naming the failing rule.

#include "obs/health.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/paper_example.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "obs/audit_log.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/shadow.h"
#include "obs/timeseries.h"

namespace ucr::obs {
namespace {

#if !UCR_METRICS_ENABLED

TEST(ObsHealthTest, DisabledBuildRefusesToStart) {
  HealthEngine engine;
  std::string error;
  EXPECT_FALSE(engine.Start(/*interval_ms=*/10, &error));
  EXPECT_NE(error.find("UCR_METRICS=OFF"), std::string::npos) << error;
  EXPECT_EQ(engine.Evaluate().status, HealthStatus::kOk);
}

#else

/// Captures audit events into a vector (same idiom as
/// obs_audit_log_test).
class VectorSink : public AuditSink {
 public:
  explicit VectorSink(std::vector<std::string>* out) : out_(out) {}
  void Write(std::string_view line) override { out_->emplace_back(line); }

 private:
  std::vector<std::string>* out_;
};

class ObsHealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeSeriesSampler::Global().ResetForTesting();
    HealthEngine::Global().ResetForTesting();
  }
  void TearDown() override {
    HealthEngine::Global().ResetForTesting();
    TimeSeriesSampler::Global().ResetForTesting();
  }
};

TEST_F(ObsHealthTest, DefaultRulesReportOkOnQuietSeries) {
  TimeSeriesSampler::Global().TickOnceForTesting();  // Prime.
  TimeSeriesSampler::Global().TickOnceForTesting();
  const HealthVerdict verdict = HealthEngine::Global().Evaluate();
  EXPECT_EQ(verdict.status, HealthStatus::kOk);
  EXPECT_EQ(verdict.rules.size(), DefaultHealthRules().size());
  for (const HealthRuleResult& rule : verdict.rules) {
    EXPECT_EQ(rule.status, HealthStatus::kOk) << rule.reason;
  }
  EXPECT_EQ(std::string(HealthStatusName(verdict.status)), "ok");
}

TEST_F(ObsHealthTest, ShadowMismatchCounterFlipsVerdictToFailing) {
  Counter& mismatches = Registry::Global().GetCounter(
      "ucr_shadow_mismatch_total", "");
  TimeSeriesSampler::Global().TickOnceForTesting();  // Prime.
  mismatches.Inc();
  TimeSeriesSampler::Global().TickOnceForTesting();

  const HealthVerdict verdict = HealthEngine::Global().Evaluate();
  EXPECT_EQ(verdict.status, HealthStatus::kFailing);
  bool named = false;
  for (const HealthRuleResult& rule : verdict.rules) {
    if (rule.name != "shadow_mismatch_rate") continue;
    EXPECT_EQ(rule.status, HealthStatus::kFailing);
    EXPECT_NE(rule.reason.find("shadow_mismatch_rate"), std::string::npos);
    EXPECT_NE(rule.reason.find("ucr_shadow_mismatch_total"),
              std::string::npos);
    named = true;
  }
  EXPECT_TRUE(named);
  const std::string json = HealthEngine::Global().RenderJson();
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"status\":\"failing\""), std::string::npos);
}

TEST_F(ObsHealthTest, DegradedThresholdSitsBelowFailing) {
  Counter& drops = Registry::Global().GetCounter(
      "ucr_test_health_drops_total", "health threshold test");
  HealthRule rule;
  rule.name = "test_drop_rate";
  rule.metric = "ucr_test_health_drops_total";
  rule.signal = HealthRule::Signal::kCounterRate;
  rule.degraded_at = 0;    // Any drop degrades...
  rule.failing_at = 1000;  // ...but only a flood fails.
  HealthEngine::Global().SetRules({rule});

  TimeSeriesSampler::Global().TickOnceForTesting();  // Prime.
  drops.Inc(3);
  TimeSeriesSampler::Global().TickOnceForTesting();
  EXPECT_EQ(HealthEngine::Global().Evaluate().status,
            HealthStatus::kDegraded);

  drops.Inc(100'000'000);  // Overwhelms the rate over the window.
  TimeSeriesSampler::Global().TickOnceForTesting();
  EXPECT_EQ(HealthEngine::Global().Evaluate().status,
            HealthStatus::kFailing);
}

TEST_F(ObsHealthTest, TransitionsEmitAuditEventsAndRecover) {
  Counter& mismatches = Registry::Global().GetCounter(
      "ucr_shadow_mismatch_total", "");
  std::vector<std::string> lines;
  AuditLogOptions options;
  options.sinks.push_back(std::make_unique<VectorSink>(&lines));
  ASSERT_TRUE(AuditLog::Global().Start(std::move(options)));

  const uint64_t before = HealthEngine::Global().transitions_total();
  TimeSeriesSampler::Global().TickOnceForTesting();  // Prime.
  TimeSeriesSampler::Global().TickOnceForTesting();
  HealthEngine::Global().Evaluate();  // ok — no transition yet.

  mismatches.Inc();
  TimeSeriesSampler::Global().TickOnceForTesting();
  EXPECT_EQ(HealthEngine::Global().Evaluate().status,
            HealthStatus::kFailing);

  // The mismatch ages out of the per-interval deltas: recovery.
  const size_t window = DefaultHealthRules()[0].window;
  for (size_t i = 0; i <= window; ++i) {
    TimeSeriesSampler::Global().TickOnceForTesting();
  }
  EXPECT_EQ(HealthEngine::Global().Evaluate().status, HealthStatus::kOk);
  EXPECT_EQ(HealthEngine::Global().transitions_total(), before + 2);

  AuditLog::Global().Flush();
  AuditLog::Global().Stop();
  size_t transitions_logged = 0;
  bool failing_named_rule = false;
  for (const std::string& line : lines) {
    if (line.find("\"type\":\"health_transition\"") == std::string::npos) {
      continue;
    }
    ++transitions_logged;
    if (line.find("-> failing") != std::string::npos &&
        line.find("shadow_mismatch_rate") != std::string::npos) {
      failing_named_rule = true;
    }
  }
  EXPECT_EQ(transitions_logged, 2u);  // ok -> failing -> ok.
  EXPECT_TRUE(failing_named_rule);
}

TEST_F(ObsHealthTest, BackgroundThreadEvaluatesAndStops) {
  std::string error;
  ASSERT_TRUE(HealthEngine::Global().Start(/*interval_ms=*/5, &error))
      << error;
  EXPECT_FALSE(HealthEngine::Global().Start(/*interval_ms=*/5, &error));
  EXPECT_TRUE(HealthEngine::Global().running());
  HealthEngine::Global().Stop();
  HealthEngine::Global().Stop();  // Idempotent.
  EXPECT_FALSE(HealthEngine::Global().running());
}

// Acceptance: a perturbed shadow oracle produces genuine divergences on
// the fast-path serving route; the sampler turns them into a rate; the
// health engine fails the shadow_mismatch_rate rule; /healthz answers
// 503 and names the rule in the body.
TEST_F(ObsHealthTest, PerturbedOracleDrivesHealthzTo503) {
  core::PaperExample ex = core::MakePaperExample();

  TimeSeriesSampler::Global().TickOnceForTesting();  // Prime.

  ShadowVerifier& shadow = ShadowVerifier::Global();
  shadow.SetPerturbOracleForTesting(true);
  shadow.SetInterval(1);  // Verify every query.
  const uint64_t before = Registry::Global()
                              .GetCounter("ucr_shadow_mismatch_total", "")
                              .Value();
  core::ResolveAccessOptions options;
  options.use_fast_path = true;
  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(core::ResolveAccess(ex.dag, ex.eacm, ex.user, ex.obj,
                                    ex.read, strategy.Canonical(), options)
                    .ok());
  }
  shadow.SetInterval(0);
  shadow.SetPerturbOracleForTesting(false);
  ASSERT_GT(Registry::Global()
                .GetCounter("ucr_shadow_mismatch_total", "")
                .Value(),
            before)
      << "perturbed oracle produced no divergence";

  TimeSeriesSampler::Global().TickOnceForTesting();
  const HealthVerdict verdict = HealthEngine::Global().Evaluate();
  ASSERT_EQ(verdict.status, HealthStatus::kFailing);

  std::string body;
  std::string content_type;
  int http_status = 0;
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/healthz", &body, &content_type,
                                           &http_status));
  EXPECT_EQ(http_status, 503);
  EXPECT_EQ(content_type, "application/json");
  EXPECT_TRUE(JsonLooksValid(body)) << body;
  EXPECT_NE(body.find("\"status\":\"failing\""), std::string::npos) << body;
  EXPECT_NE(body.find("shadow_mismatch_rate"), std::string::npos) << body;

  // Other endpoints keep answering 200 while health is failing.
  int metrics_status = 0;
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/metrics", &body, &content_type,
                                           &metrics_status));
  EXPECT_EQ(metrics_status, 200);
}

TEST_F(ObsHealthTest, HealthzStaysLegacyOkBeforeFirstEvaluation) {
  // With no engine running and no verdict computed, /healthz keeps its
  // pre-PR-8 plain-text contract.
  std::string body;
  std::string content_type;
  int http_status = 0;
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/healthz", &body, &content_type,
                                           &http_status));
  EXPECT_EQ(body, "ok\n");
  EXPECT_EQ(http_status, 200);
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::obs
