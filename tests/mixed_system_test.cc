#include "core/mixed_system.h"

#include <gtest/gtest.h>

#include "core/strategy.h"
#include "graph/io.h"

namespace ucr::core {
namespace {

using acm::Mode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

MixedAccessControlSystem MakeStore() {
  auto subjects = graph::FromEdgeListText(
      "edge company engineering\n"
      "edge company legal\n"
      "edge engineering eve\n"
      "edge legal lara\n");
  auto objects = graph::FromEdgeListText(
      "edge drive eng-docs\n"
      "edge eng-docs design.md\n"
      "edge drive legal-docs\n"
      "edge legal-docs contract.md\n");
  EXPECT_TRUE(subjects.ok());
  EXPECT_TRUE(objects.ok());
  return MixedAccessControlSystem(std::move(subjects).value(),
                                  std::move(objects).value());
}

TEST(MixedSystemTest, GrantAndCheck) {
  MixedAccessControlSystem store = MakeStore();
  ASSERT_TRUE(store.Grant("engineering", "eng-docs", "read").ok());
  ASSERT_TRUE(store.DenyAccess("company", "drive", "read").ok());
  store.SetStrategy(S("LP-"));
  // eve's nearest authorization for design.md is the engineering
  // grant at joint distance 2 (vs the company denial at 4).
  EXPECT_EQ(store.CheckAccess("eve", "design.md", "read").value(),
            Mode::kPositive);
  // lara only has the company-wide denial.
  EXPECT_EQ(store.CheckAccess("lara", "contract.md", "read").value(),
            Mode::kNegative);
}

TEST(MixedSystemTest, StrategySwitchChangesDecision) {
  MixedAccessControlSystem store = MakeStore();
  ASSERT_TRUE(store.Grant("engineering", "eng-docs", "read").ok());
  ASSERT_TRUE(store.DenyAccess("company", "drive", "read").ok());
  store.SetStrategy(S("LP-"));
  EXPECT_EQ(store.CheckAccess("eve", "design.md", "read").value(),
            Mode::kPositive);
  store.SetStrategy(S("GP-"));  // Most general: the company denial.
  EXPECT_EQ(store.CheckAccess("eve", "design.md", "read").value(),
            Mode::kNegative);
}

TEST(MixedSystemTest, UnknownNamesReported) {
  MixedAccessControlSystem store = MakeStore();
  EXPECT_EQ(store.Grant("ghost", "drive", "read").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.Grant("eve", "ghost", "read").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.CheckAccess("ghost", "drive", "read").status().code(),
            StatusCode::kNotFound);
}

TEST(MixedSystemTest, UnknownRightResolvesFromDefaults) {
  MixedAccessControlSystem store = MakeStore();
  store.SetStrategy(S("D+P-"));
  EXPECT_EQ(store.CheckAccess("eve", "design.md", "never-granted").value(),
            Mode::kPositive);
  store.SetStrategy(S("D-P+"));
  EXPECT_EQ(store.CheckAccess("eve", "design.md", "never-granted").value(),
            Mode::kNegative);
}

TEST(MixedSystemTest, ContradictionRejectedRevokeWorks) {
  MixedAccessControlSystem store = MakeStore();
  ASSERT_TRUE(store.Grant("engineering", "eng-docs", "read").ok());
  EXPECT_EQ(store.DenyAccess("engineering", "eng-docs", "read").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(store.Grant("engineering", "eng-docs", "read").ok())
      << "idempotent re-grant";
  EXPECT_TRUE(store.Revoke("engineering", "eng-docs", "read").value());
  EXPECT_FALSE(store.Revoke("engineering", "eng-docs", "read").value());
  EXPECT_TRUE(store.DenyAccess("engineering", "eng-docs", "read").ok())
      << "after revoke, the opposite mode is legal";
  EXPECT_EQ(store.authorization_count(), 1u);
}

TEST(MixedSystemTest, RightsAreIndependentColumns) {
  MixedAccessControlSystem store = MakeStore();
  ASSERT_TRUE(store.Grant("company", "drive", "read").ok());
  ASSERT_TRUE(store.DenyAccess("company", "drive", "write").ok());
  store.SetStrategy(S("LP-"));
  EXPECT_EQ(store.CheckAccess("eve", "design.md", "read").value(),
            Mode::kPositive);
  EXPECT_EQ(store.CheckAccess("eve", "design.md", "write").value(),
            Mode::kNegative);
}

TEST(MixedSystemTest, StorageRoundTrip) {
  MixedAccessControlSystem original = MakeStore();
  ASSERT_TRUE(original.Grant("engineering", "eng-docs", "read").ok());
  ASSERT_TRUE(original.DenyAccess("company", "drive", "read").ok());
  ASSERT_TRUE(original.Grant("legal", "legal-docs", "write").ok());
  original.SetStrategy(S("D-LMP+"));

  const std::string text = SaveMixedSystemToText(original);
  auto loaded = LoadMixedSystemFromText(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->strategy().ToMnemonic(), "D-LMP+");
  EXPECT_EQ(loaded->authorization_count(), 3u);
  for (const char* who : {"eve", "lara"}) {
    for (const char* what : {"design.md", "contract.md"}) {
      for (const char* how : {"read", "write"}) {
        for (const Strategy& s : AllStrategies()) {
          EXPECT_EQ(loaded->CheckAccess(who, what, how, s).value(),
                    original.CheckAccess(who, what, how, s).value())
              << who << " " << what << " " << how << " " << s.ToMnemonic();
        }
      }
    }
  }
  // Byte-stable second round trip.
  EXPECT_EQ(SaveMixedSystemToText(*loaded), text);
}

TEST(MixedSystemTest, LoaderRejectsMalformedInput) {
  EXPECT_FALSE(LoadMixedSystemFromText("").ok());
  EXPECT_FALSE(LoadMixedSystemFromText("[subjects]\nnode a\n").ok());
  EXPECT_FALSE(LoadMixedSystemFromText(
                   "[subjects]\nnode a\n[objects]\nnode o\n"
                   "[authorizations]\nauth a o\n")
                   .ok());
  EXPECT_FALSE(LoadMixedSystemFromText(
                   "[subjects]\nnode a\n[objects]\nnode o\n"
                   "[authorizations]\nauth a o read *\n")
                   .ok());
  EXPECT_FALSE(LoadMixedSystemFromText(
                   "[subjects]\nnode a\n[objects]\nnode o\n"
                   "[authorizations]\nauth ghost o read +\n")
                   .ok());
}

}  // namespace
}  // namespace ucr::core
