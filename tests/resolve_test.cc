#include "core/resolve.h"

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/strategy.h"

namespace ucr::core {
namespace {

using acm::Mode;
using acm::PropagatedMode;

Strategy S(const char* mnemonic) {
  auto s = ParseStrategy(mnemonic);
  EXPECT_TRUE(s.ok()) << mnemonic;
  return *s;
}

RightsBag Bag(std::initializer_list<std::tuple<uint32_t, char, uint64_t>>
                  entries) {
  RightsBag bag;
  for (const auto& [dis, mode, mult] : entries) {
    PropagatedMode pm = mode == '+'   ? PropagatedMode::kPositive
                        : mode == '-' ? PropagatedMode::kNegative
                                      : PropagatedMode::kDefault;
    bag.Add(dis, pm, mult);
  }
  bag.Normalize();
  return bag;
}

TEST(ResolveTest, EmptyBagFallsToPreference) {
  ResolveTrace trace;
  EXPECT_EQ(Resolve(Bag({}), S("P+"), &trace), Mode::kPositive);
  EXPECT_EQ(trace.returned_line, 9);
  EXPECT_EQ(Resolve(Bag({}), S("D-LMP-")), Mode::kNegative);
}

TEST(ResolveTest, DroppedDefaultsLeaveEmptyBag) {
  // Only 'd' tuples + dRule "0": everything is dropped; preference
  // decides (the paper: "for non-root nodes only the preference policy
  // is deterministic").
  const RightsBag bag = Bag({{1, 'd', 1}, {2, 'd', 1}});
  ResolveTrace trace;
  EXPECT_EQ(Resolve(bag, S("LP+"), &trace), Mode::kPositive);
  EXPECT_EQ(trace.returned_line, 9);
  EXPECT_EQ(trace.AuthToString(), "{}");
}

TEST(ResolveTest, DefaultRewriteWinsAlone) {
  const RightsBag bag = Bag({{1, 'd', 1}});
  ResolveTrace trace;
  EXPECT_EQ(Resolve(bag, S("D+P-"), &trace), Mode::kPositive);
  EXPECT_EQ(trace.returned_line, 8);  // Single surviving authorization.
  EXPECT_EQ(Resolve(bag, S("D-P+")), Mode::kNegative);
}

TEST(ResolveTest, SingleExplicitModeReturnsAtLine8) {
  const RightsBag bag = Bag({{2, '+', 3}});
  ResolveTrace trace;
  EXPECT_EQ(Resolve(bag, S("P-"), &trace), Mode::kPositive);
  EXPECT_EQ(trace.returned_line, 8);
  EXPECT_FALSE(trace.c1.has_value());
  EXPECT_EQ(trace.AuthToString(), "+");
}

TEST(ResolveTest, MajorityCountsMultiplicities) {
  // One '+' group with multiplicity 3 vs three '-' groups of 1 each:
  // counting groups would give 1 vs 3; counting tuples gives 3 vs 3 —
  // a tie that must fall through to preference.
  const RightsBag bag =
      Bag({{1, '+', 3}, {2, '-', 1}, {3, '-', 1}, {4, '-', 1}});
  ResolveTrace trace;
  EXPECT_EQ(Resolve(bag, S("MP+"), &trace), Mode::kPositive);
  EXPECT_EQ(trace.returned_line, 9);
  EXPECT_EQ(*trace.c1, 3u);
  EXPECT_EQ(*trace.c2, 3u);
}

TEST(ResolveTest, StrictMajorityDecides) {
  const RightsBag bag = Bag({{1, '+', 4}, {2, '-', 3}});
  ResolveTrace trace;
  EXPECT_EQ(Resolve(bag, S("MP-"), &trace), Mode::kPositive);
  EXPECT_EQ(trace.returned_line, 6);
}

TEST(ResolveTest, MajorityAfterLocalityCountsFilteredBag) {
  // Globally '-' dominates 4:2, but at the minimum distance '+' wins
  // 2:1 — LMP must grant, MLP must deny.
  const RightsBag bag = Bag({{1, '+', 2}, {1, '-', 1}, {5, '-', 3}});
  EXPECT_EQ(Resolve(bag, S("LMP-")), Mode::kPositive);
  EXPECT_EQ(Resolve(bag, S("MLP+")), Mode::kNegative);
}

TEST(ResolveTest, LocalityMinPicksNearest) {
  const RightsBag bag = Bag({{1, '-', 1}, {4, '+', 10}});
  EXPECT_EQ(Resolve(bag, S("LP+")), Mode::kNegative);
}

TEST(ResolveTest, LocalityMaxPicksFarthest) {
  const RightsBag bag = Bag({{1, '-', 10}, {4, '+', 1}});
  EXPECT_EQ(Resolve(bag, S("GP-")), Mode::kPositive);
}

TEST(ResolveTest, LocalityTieAtSameDistanceFallsToPreference) {
  const RightsBag bag = Bag({{2, '-', 1}, {2, '+', 1}});
  ResolveTrace trace;
  EXPECT_EQ(Resolve(bag, S("LP-"), &trace), Mode::kNegative);
  EXPECT_EQ(trace.returned_line, 9);
  EXPECT_EQ(trace.AuthToString(), "+,-");
}

TEST(ResolveTest, DefaultsParticipateInMajorityAfterRewrite) {
  // Two 'd' + one '-': with D+ the defaults become '+' and win 2:1;
  // with D- they reinforce '-'.
  const RightsBag bag = Bag({{1, 'd', 2}, {1, '-', 1}});
  EXPECT_EQ(Resolve(bag, S("D+MP-")), Mode::kPositive);
  EXPECT_EQ(Resolve(bag, S("D-MP+")), Mode::kNegative);
}

TEST(ResolveTest, DefaultsMergeWithEqualDistanceExplicit) {
  // 'd' at dis 1 rewritten to '+' must merge with the explicit '+'
  // at dis 1 (multiplicity 2), beating the single '-' at dis 1.
  const RightsBag bag = Bag({{1, 'd', 1}, {1, '+', 1}, {1, '-', 1}});
  EXPECT_EQ(Resolve(bag, S("D+LMP-")), Mode::kPositive);
}

TEST(ResolveTest, NonCanonicalStrategyIsNormalized) {
  Strategy alias;  // identity locality...
  alias.majority_rule = MajorityRule::kAfter;  // ...with "after": alias.
  alias.preference_rule = PreferenceRule::kPositive;
  const RightsBag bag = Bag({{1, '+', 2}, {3, '-', 1}});
  Strategy canonical = alias.Canonical();
  EXPECT_EQ(Resolve(bag, alias), Resolve(bag, canonical));
}

TEST(ResolveTest, TraceIsResetBetweenRuns) {
  ResolveTrace trace;
  Resolve(Bag({{1, '+', 2}, {1, '-', 1}}), S("MP-"), &trace);
  EXPECT_TRUE(trace.c1.has_value());
  Resolve(Bag({{1, '+', 1}}), S("P-"), &trace);
  EXPECT_FALSE(trace.c1.has_value()) << "stale counters must be cleared";
  EXPECT_EQ(trace.returned_line, 8);
}

TEST(ResolveAccessTest, EndToEndOnPaperExample) {
  const PaperExample ex = MakePaperExample();
  auto mode = ResolveAccess(ex.dag, ex.eacm, ex.user, ex.obj, ex.read,
                            S("D+LMP+"));
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, Mode::kPositive);

  ResolveAccessOptions literal;
  literal.use_literal_engine = true;
  auto mode2 = ResolveAccess(ex.dag, ex.eacm, ex.user, ex.obj, ex.read,
                             S("D+LMP+"), literal);
  ASSERT_TRUE(mode2.ok());
  EXPECT_EQ(*mode2, *mode);
}

TEST(ResolveAccessTest, ValidatesIds) {
  const PaperExample ex = MakePaperExample();
  EXPECT_EQ(ResolveAccess(ex.dag, ex.eacm, 999, ex.obj, ex.read, S("P-"))
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ResolveAccess(ex.dag, ex.eacm, ex.user, 99, ex.read, S("P-"))
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ResolveAccess(ex.dag, ex.eacm, ex.user, ex.obj, 99, S("P-"))
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(ResolveAccessTest, LiteralBudgetSurfaces) {
  const PaperExample ex = MakePaperExample();
  ResolveAccessOptions options;
  options.use_literal_engine = true;
  options.literal_max_tuples = 2;  // Table 4 needs 15.
  EXPECT_EQ(ResolveAccess(ex.dag, ex.eacm, ex.user, ex.obj, ex.read, S("P-"),
                          options)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

// Every strategy is deterministic: equal inputs give equal outputs,
// and the result is always one of the two modes (total function).
TEST(ResolveTest, TotalAndDeterministicForAll48) {
  const RightsBag bag =
      Bag({{1, '-', 1}, {1, 'd', 1}, {2, 'd', 1}, {1, '+', 1},
           {3, '+', 1}, {3, 'd', 1}});
  for (const Strategy& s : AllStrategies()) {
    const Mode first = Resolve(bag, s);
    const Mode second = Resolve(bag, s);
    EXPECT_EQ(first, second) << s.ToMnemonic();
  }
}

}  // namespace
}  // namespace ucr::core
