#include "core/binary_snapshot.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/strategy.h"
#include "util/crc32.h"
#include "util/random.h"
#include "workload/enterprise.h"

namespace ucr::core {
namespace {

using acm::Mode;

AccessControlSystem MakePaperSystem() {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  system.SetStrategy(ParseStrategy("D+LMP-").value());
  return system;
}

TEST(BinarySnapshotTest, RoundTripPreservesEverything) {
  AccessControlSystem original = MakePaperSystem();
  const std::string bytes = EncodeBinarySnapshot(original, /*lsn=*/17);

  SnapshotMeta meta;
  auto loaded = DecodeBinarySnapshot(bytes, {}, &meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(meta.lsn, 17u);
  EXPECT_EQ(loaded->strategy().ToMnemonic(), "D+LMP-");
  EXPECT_EQ(loaded->dag().node_count(), original.dag().node_count());
  EXPECT_EQ(loaded->dag().edge_count(), original.dag().edge_count());
  EXPECT_EQ(loaded->eacm().size(), original.eacm().size());

  // Node ids, interned object/right ids, and edge iteration order all
  // survive — the decisions must be identical under every strategy.
  for (graph::NodeId v = 0; v < original.dag().node_count(); ++v) {
    EXPECT_EQ(loaded->dag().name(v), original.dag().name(v));
  }
  EXPECT_EQ(loaded->eacm().FindObject("obj").value(),
            original.eacm().FindObject("obj").value());
  for (const Strategy& s : AllStrategies()) {
    for (graph::NodeId v = 0; v < original.dag().node_count(); ++v) {
      const std::string& name = original.dag().name(v);
      EXPECT_EQ(loaded->CheckAccessByName(name, "obj", "read", s).value(),
                original.CheckAccessByName(name, "obj", "read", s).value())
          << s.ToMnemonic() << " subject " << name;
    }
  }
}

TEST(BinarySnapshotTest, SecondEncodeIsByteIdentical) {
  AccessControlSystem original = MakePaperSystem();
  const std::string once = EncodeBinarySnapshot(original, 5);
  auto loaded = DecodeBinarySnapshot(once, {});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(EncodeBinarySnapshot(*loaded, 5), once);
}

TEST(BinarySnapshotTest, PropagationModeSurvives) {
  PaperExample ex = MakePaperExample();
  SystemOptions options;
  options.propagation_mode = PropagationMode::kSecondWins;
  AccessControlSystem original(std::move(ex.dag), options);
  ASSERT_TRUE(original.Grant("S2", "obj", "read").ok());

  auto loaded = DecodeBinarySnapshot(EncodeBinarySnapshot(original, 1), {});
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->propagation_mode(), PropagationMode::kSecondWins);
}

// An enterprise-scale store with several columns and post-load
// mutations: the reloaded system must keep answering and mutating
// exactly like the original (interned ids stay live).
TEST(BinarySnapshotTest, EnterpriseRoundTripStaysMutable) {
  Random rng(20260808);
  workload::EnterpriseOptions shape;
  shape.individuals = 200;
  shape.groups = 120;
  shape.top_level_groups = 6;
  shape.target_edges = 700;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  ASSERT_TRUE(dag.ok());
  AccessControlSystem original(std::move(dag).value());
  for (int i = 0; i < 40; ++i) {
    const std::string subject = original.dag().name(static_cast<graph::NodeId>(
        rng.Uniform(original.dag().node_count())));
    const std::string right = (i % 2) != 0 ? "read" : "write";
    // Denies and grants target disjoint objects: a repeat of the same
    // triple is an idempotent no-op, never an opposite-mode conflict.
    if (i % 3 == 0) {
      const std::string object = "secret" + std::to_string(i % 5);
      ASSERT_TRUE(original.DenyAccess(subject, object, right).ok());
    } else {
      const std::string object = "doc" + std::to_string(i % 5);
      ASSERT_TRUE(original.Grant(subject, object, right).ok());
    }
  }

  auto loaded = DecodeBinarySnapshot(EncodeBinarySnapshot(original, 9), {});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Same decisions...
  for (graph::NodeId v = 0; v < original.dag().node_count(); v += 7) {
    const std::string& name = original.dag().name(v);
    auto a = original.CheckAccessByName(name, "doc1", "read");
    auto b = loaded->CheckAccessByName(name, "doc1", "read");
    ASSERT_EQ(a.ok(), b.ok()) << name;
    if (a.ok()) {
      EXPECT_EQ(a.value(), b.value()) << name;
    }
  }
  // ...and the loaded store accepts further mutations identically.
  ASSERT_TRUE(original.Grant("user0", "doc9", "own").ok());
  ASSERT_TRUE(loaded->Grant("user0", "doc9", "own").ok());
  EXPECT_EQ(loaded->CheckAccessByName("user0", "doc9", "own").value(),
            original.CheckAccessByName("user0", "doc9", "own").value());
}

TEST(BinarySnapshotTest, FileRoundTripViaMmap) {
  AccessControlSystem original = MakePaperSystem();
  const std::string path = ::testing::TempDir() + "/ucr_snapshot_test.ucrs";
  ASSERT_TRUE(WriteBinarySnapshot(original, 3, path).ok());
  SnapshotMeta meta;
  auto loaded = LoadBinarySnapshot(path, {}, &meta);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(meta.lsn, 3u);
  EXPECT_EQ(loaded->eacm().size(), 3u);
  std::remove(path.c_str());
  EXPECT_EQ(LoadBinarySnapshot(path, {}).status().code(),
            StatusCode::kNotFound);
}

TEST(BinarySnapshotTest, TruncationsAreCleanErrors) {
  AccessControlSystem original = MakePaperSystem();
  const std::string bytes = EncodeBinarySnapshot(original, 1);
  // Every prefix must fail cleanly — header, section boundary, or
  // mid-section.
  for (size_t len = 0; len < bytes.size(); len += 13) {
    auto result = DecodeBinarySnapshot(bytes.substr(0, len), {});
    EXPECT_FALSE(result.ok()) << "prefix length " << len;
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

TEST(BinarySnapshotTest, BadMagicRejected) {
  AccessControlSystem original = MakePaperSystem();
  std::string bytes = EncodeBinarySnapshot(original, 1);
  bytes[0] = 'X';
  auto result = DecodeBinarySnapshot(bytes, {});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);
}

TEST(BinarySnapshotTest, VersionSkewRejectedWithBothVersions) {
  AccessControlSystem original = MakePaperSystem();
  std::string bytes = EncodeBinarySnapshot(original, 1);
  bytes[8] = 2;  // Version field follows the 8-byte magic.
  // Header CRC must be recomputed or the version check is shadowed by
  // the checksum check; patch the CRC to isolate the version path.
  // (A future writer would produce exactly this: valid CRC, higher
  // version.)
  const size_t header_size = 8 + 4 + 8 + 1 + 1 + 2 + 12 * 2 + 4;
  const uint32_t crc = Crc32(bytes.data(), header_size - 4);
  for (size_t i = 0; i < 4; ++i) {
    bytes[header_size - 4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  auto result = DecodeBinarySnapshot(bytes, {});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST(BinarySnapshotTest, FlippedBodyBitFailsSectionChecksum) {
  AccessControlSystem original = MakePaperSystem();
  std::string bytes = EncodeBinarySnapshot(original, 1);
  bytes[bytes.size() - 3] ^= 0x04;  // Somewhere in the ACM section.
  auto result = DecodeBinarySnapshot(bytes, {});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

}  // namespace
}  // namespace ucr::core
