#include "relalg/operators.h"

#include <gtest/gtest.h>

#include "relalg/relation.h"
#include "relalg/value.h"

namespace ucr::relalg {
namespace {

Schema AbSchema() {
  return Schema({{"a", ValueType::kString}, {"b", ValueType::kInt}});
}

Relation MakeAb(std::initializer_list<std::pair<const char*, int64_t>> rows) {
  Relation r{AbSchema()};
  for (const auto& [a, b] : rows) {
    r.AppendUnchecked(Row{Value(a), Value(b)});
  }
  return r;
}

TEST(ValueTest, TypesAndAccessors) {
  const Value i{int64_t{7}};
  const Value s{"seven"};
  EXPECT_TRUE(i.is_int());
  EXPECT_TRUE(s.is_string());
  EXPECT_EQ(i.AsInt(), 7);
  EXPECT_EQ(s.AsString(), "seven");
  EXPECT_EQ(i.ToString(), "7");
  EXPECT_EQ(s.ToString(), "seven");
}

TEST(ValueTest, IntAndStringNeverEqualOrHashAlike) {
  const Value i{int64_t{1}};
  const Value s{"1"};
  EXPECT_FALSE(i == s);
  EXPECT_NE(i.Hash(), s.Hash());
}

TEST(ValueTest, OrderingIsTotal) {
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_TRUE(Value("a") < Value("b"));
  EXPECT_TRUE(Value(int64_t{99}) < Value("a"));  // Ints sort before strings.
}

TEST(SchemaTest, IndexOfAndEquality) {
  const Schema s = AbSchema();
  EXPECT_EQ(s.IndexOf("a"), 0u);
  EXPECT_EQ(s.IndexOf("b"), 1u);
  EXPECT_EQ(s.IndexOf("zz"), Schema::npos);
  EXPECT_TRUE(s == AbSchema());
  EXPECT_FALSE(s == Schema({{"a", ValueType::kString}}));
}

TEST(RelationTest, AppendValidates) {
  Relation r{AbSchema()};
  EXPECT_TRUE(r.Append(Row{Value("x"), Value(int64_t{1})}).ok());
  EXPECT_FALSE(r.Append(Row{Value("x")}).ok());  // Arity.
  EXPECT_FALSE(r.Append(Row{Value("x"), Value("y")}).ok());  // Type.
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, UpdateRewritesMatchingRows) {
  Relation r = MakeAb({{"d", 1}, {"x", 2}, {"d", 3}});
  const size_t updated = r.Update("a", Value("+"), [](const Row& row) {
    return row[0] == Value("d");
  });
  EXPECT_EQ(updated, 2u);
  EXPECT_EQ(r.row(0)[0], Value("+"));
  EXPECT_EQ(r.row(1)[0], Value("x"));
  EXPECT_EQ(r.row(2)[0], Value("+"));
}

TEST(SelectTest, EqualsAndNotEquals) {
  const Relation r = MakeAb({{"x", 1}, {"y", 2}, {"x", 3}});
  auto eq = SelectEquals(r, "a", Value("x"));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->size(), 2u);
  auto ne = SelectNotEquals(r, "a", Value("x"));
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->size(), 1u);
  EXPECT_FALSE(SelectEquals(r, "zz", Value("x")).ok());
}

TEST(ProjectTest, KeepsDuplicates) {
  const Relation r = MakeAb({{"x", 1}, {"x", 2}});
  auto p = Project(r, {"a"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 2u);  // Bag semantics: {x, x}.
  EXPECT_EQ(p->schema().size(), 1u);
}

TEST(ProjectTest, Reorders) {
  const Relation r = MakeAb({{"x", 1}});
  auto p = Project(r, {"b", "a"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->row(0)[0], Value(int64_t{1}));
  EXPECT_EQ(p->row(0)[1], Value("x"));
}

TEST(RenameTest, RenamesAndValidates) {
  const Relation r = MakeAb({{"x", 1}});
  auto renamed = Rename(r, "a", "subject");
  ASSERT_TRUE(renamed.ok());
  EXPECT_EQ(renamed->schema().IndexOf("subject"), 0u);
  EXPECT_EQ(renamed->schema().IndexOf("a"), Schema::npos);
  EXPECT_FALSE(Rename(r, "zz", "w").ok());
  EXPECT_FALSE(Rename(r, "a", "b").ok());  // Collision.
}

TEST(NaturalJoinTest, JoinsOnSharedAttribute) {
  const Relation left = MakeAb({{"x", 1}, {"y", 2}});
  Relation right{Schema({{"a", ValueType::kString},
                         {"c", ValueType::kString}})};
  right.AppendUnchecked(Row{Value("x"), Value("p")});
  right.AppendUnchecked(Row{Value("x"), Value("q")});
  const Relation joined = NaturalJoin(left, right);
  EXPECT_EQ(joined.size(), 2u);  // x joins twice, y joins zero times.
  EXPECT_EQ(joined.schema().size(), 3u);  // a, b, c.
}

TEST(NaturalJoinTest, BagMultiplicityIsProduct) {
  const Relation left = MakeAb({{"x", 1}, {"x", 1}});  // Two equal rows.
  Relation right{Schema({{"a", ValueType::kString}})};
  right.AppendUnchecked(Row{Value("x")});
  right.AppendUnchecked(Row{Value("x")});
  EXPECT_EQ(NaturalJoin(left, right).size(), 4u);  // 2 * 2.
}

TEST(NaturalJoinTest, NoSharedAttributesIsCrossProduct) {
  const Relation left = MakeAb({{"x", 1}, {"y", 2}});
  Relation right{Schema({{"c", ValueType::kInt}})};
  right.AppendUnchecked(Row{Value(int64_t{10})});
  right.AppendUnchecked(Row{Value(int64_t{20})});
  right.AppendUnchecked(Row{Value(int64_t{30})});
  EXPECT_EQ(NaturalJoin(left, right).size(), 6u);
}

TEST(UnionTest, ConcatenatesBags) {
  const Relation a = MakeAb({{"x", 1}});
  const Relation b = MakeAb({{"x", 1}, {"y", 2}});
  auto u = Union(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->size(), 3u);  // Duplicates preserved.
}

TEST(UnionTest, RejectsSchemaMismatch) {
  const Relation a = MakeAb({});
  Relation b{Schema({{"z", ValueType::kInt}})};
  EXPECT_FALSE(Union(a, b).ok());
}

TEST(DifferenceTest, RemovesAllOccurrences) {
  const Relation a = MakeAb({{"x", 1}, {"x", 1}, {"y", 2}});
  const Relation b = MakeAb({{"x", 1}});
  auto d = Difference(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 1u);
  EXPECT_EQ(d->row(0)[0], Value("y"));
}

TEST(DistinctTest, CollapsesDuplicates) {
  const Relation r = MakeAb({{"x", 1}, {"x", 1}, {"x", 2}});
  EXPECT_EQ(Distinct(r).size(), 2u);
}

TEST(ExtendConstantTest, AddsColumn) {
  const Relation r = MakeAb({{"x", 1}});
  auto e = ExtendConstant(r, "dis", Value(int64_t{0}));
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->schema().size(), 3u);
  EXPECT_EQ(e->row(0)[2], Value(int64_t{0}));
  EXPECT_FALSE(ExtendConstant(r, "a", Value(int64_t{0})).ok());  // Exists.
}

TEST(AggregateTest, CountMinMax) {
  const Relation r = MakeAb({{"x", 3}, {"y", 1}, {"z", 2}});
  EXPECT_EQ(Count(r), 3u);
  EXPECT_EQ(MinInt(r, "b").value(), 1);
  EXPECT_EQ(MaxInt(r, "b").value(), 3);
  EXPECT_EQ(MinInt(MakeAb({}), "b").value(), std::nullopt);
  EXPECT_FALSE(MinInt(r, "a").ok());  // Not an int column.
  EXPECT_FALSE(MinInt(r, "zz").ok());
}

TEST(RelationTest, SortRowsAndToString) {
  Relation r = MakeAb({{"y", 2}, {"x", 1}});
  r.SortRows();
  EXPECT_EQ(r.row(0)[0], Value("x"));
  const std::string rendered = r.ToString();
  EXPECT_NE(rendered.find("a | b"), std::string::npos);
  EXPECT_NE(rendered.find("x | 1"), std::string::npos);
}

}  // namespace
}  // namespace ucr::relalg
