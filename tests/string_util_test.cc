#include "util/string_util.h"

#include <gtest/gtest.h>

namespace ucr {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim("hello"), "hello");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(JoinTest, Basics) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("D+LMP-", "D+"));
  EXPECT_FALSE(StartsWith("LMP-", "D+"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("a", "ab"));
}

TEST(ParseUint64Test, ValidNumbers) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));  // UINT64_MAX.
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(ParseUint64Test, RejectsGarbageAndOverflow) {
  uint64_t v = 99;
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
  EXPECT_FALSE(ParseUint64("12x", &v));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // UINT64_MAX + 1.
  EXPECT_EQ(v, 99u) << "failed parse must not clobber output";
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.25", &d));
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &d));
  EXPECT_EQ(d, -1000.0);
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("3.25x", &d));
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
}

}  // namespace
}  // namespace ucr
