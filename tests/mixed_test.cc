#include "core/mixed.h"

#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "graph/ancestor_subgraph.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;
using acm::PropagatedMode;
using graph::Dag;

Dag Build(std::initializer_list<std::pair<const char*, const char*>> edges,
          std::initializer_list<const char*> extra_nodes = {}) {
  graph::DagBuilder b;
  for (const char* n : extra_nodes) b.AddNode(n);
  for (const auto& [p, c] : edges) EXPECT_TRUE(b.AddEdge(p, c).ok());
  auto dag = std::move(b).Build();
  EXPECT_TRUE(dag.ok());
  return std::move(dag).value();
}

Dag SingleNode(const char* name) { return Build({}, {name}); }

TEST(DistanceProfileTest, DiamondWithShortcut) {
  const Dag dag = Build({{"t", "a"}, {"t", "b"}, {"a", "s"}, {"b", "s"},
                         {"t", "s"}});
  const auto profile =
      DistanceProfile(dag, dag.FindNode("t"), dag.FindNode("s"));
  // One path of length 1 (direct), two of length 2 (via a, via b).
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_EQ(profile[0], 0u);
  EXPECT_EQ(profile[1], 1u);
  EXPECT_EQ(profile[2], 2u);
}

TEST(DistanceProfileTest, SelfAndUnreachable) {
  const Dag dag = Build({{"a", "b"}}, {"c"});
  const auto self = DistanceProfile(dag, dag.FindNode("b"), dag.FindNode("b"));
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0], 1u);  // The empty path.
  EXPECT_TRUE(
      DistanceProfile(dag, dag.FindNode("c"), dag.FindNode("b")).empty());
  EXPECT_TRUE(
      DistanceProfile(dag, dag.FindNode("b"), dag.FindNode("a")).empty());
}

TEST(MixedTest, FolderChainHandExample) {
  const Dag subjects = Build({{"g", "u"}});
  const Dag objects = Build({{"folder", "doc"}});
  std::vector<MixedAuthorization> auths{
      {subjects.FindNode("g"), objects.FindNode("folder"), Mode::kPositive}};
  auto bag = MixedPropagate(subjects, objects, auths, subjects.FindNode("u"),
                            objects.FindNode("doc"));
  ASSERT_TRUE(bag.ok());
  // The grant travels one subject edge + one object edge: distance 2.
  // The sole (subject-root, object-root) pair is labeled, so no 'd'.
  RightsBag expected;
  expected.Add(2, PropagatedMode::kPositive);
  expected.Normalize();
  EXPECT_EQ(*bag, expected) << bag->ToString();
}

TEST(MixedTest, UnlabeledRootPairGetsDefault) {
  const Dag subjects = Build({{"g", "u"}});
  const Dag objects = Build({{"folder", "doc"}});
  auto bag = MixedPropagate(subjects, objects, {}, subjects.FindNode("u"),
                            objects.FindNode("doc"));
  ASSERT_TRUE(bag.ok());
  RightsBag expected;
  expected.Add(2, PropagatedMode::kDefault);
  expected.Normalize();
  EXPECT_EQ(*bag, expected) << bag->ToString();
}

// With a single-node object hierarchy the mixed model must reduce to
// the paper's subject-only model, tuple for tuple and decision for
// decision — the key backward-compatibility property.
TEST(MixedTest, DegeneratesToSubjectOnlyModel) {
  const PaperExample ex = MakePaperExample();
  const Dag object_dag = SingleNode("obj");

  std::vector<MixedAuthorization> auths;
  for (const auto& e : ex.eacm.SortedEntries()) {
    auths.push_back(MixedAuthorization{e.subject, 0, e.mode});
  }

  auto mixed_bag =
      MixedPropagate(ex.dag, object_dag, auths, ex.user, 0);
  ASSERT_TRUE(mixed_bag.ok());

  const graph::AncestorSubgraph sub(ex.dag, ex.user);
  const auto labels =
      ex.eacm.ExtractLabels(ex.dag.node_count(), ex.obj, ex.read);
  const RightsBag subject_only = PropagateAggregated(sub, labels);
  EXPECT_EQ(*mixed_bag, subject_only)
      << "mixed: " << mixed_bag->ToString()
      << " subject-only: " << subject_only.ToString();

  for (const Strategy& s : AllStrategies()) {
    auto mixed_mode =
        MixedResolveAccess(ex.dag, object_dag, auths, ex.user, 0, s);
    ASSERT_TRUE(mixed_mode.ok());
    EXPECT_EQ(*mixed_mode, Resolve(subject_only, s)) << s.ToMnemonic();
  }
}

// The construction is symmetric in the two hierarchies.
TEST(MixedTest, SubjectObjectSymmetry) {
  Random rng(42);
  auto subjects = graph::GenerateLayeredDag({.layers = 3, .nodes_per_layer = 3},
                                            rng);
  auto objects = graph::GenerateLayeredDag({.layers = 2, .nodes_per_layer = 4},
                                           rng);
  ASSERT_TRUE(subjects.ok());
  ASSERT_TRUE(objects.ok());

  std::vector<MixedAuthorization> auths;
  for (graph::NodeId s = 0; s < subjects->node_count(); ++s) {
    for (graph::NodeId o = 0; o < objects->node_count(); ++o) {
      if (rng.Bernoulli(0.1)) {
        auths.push_back(MixedAuthorization{
            s, o, rng.Bernoulli(0.5) ? Mode::kPositive : Mode::kNegative});
      }
    }
  }
  std::vector<MixedAuthorization> swapped;
  for (const auto& a : auths) {
    swapped.push_back(MixedAuthorization{a.object, a.subject, a.mode});
  }

  const graph::NodeId qs = subjects->Sinks().front();
  const graph::NodeId qo = objects->Sinks().front();
  auto forward = MixedPropagate(*subjects, *objects, auths, qs, qo);
  auto backward = MixedPropagate(*objects, *subjects, swapped, qo, qs);
  ASSERT_TRUE(forward.ok());
  ASSERT_TRUE(backward.ok());
  EXPECT_EQ(*forward, *backward);
}

TEST(MixedTest, JointSpecificityTiesFallToPreference) {
  // Auth A at subject-distance 1 + object-distance 1; auth B at
  // subject-distance 0 + object-distance 2: equal joint distance.
  const Dag subjects = Build({{"team", "u"}});
  const Dag objects = Build({{"drive", "folder"}, {"folder", "doc"}});
  std::vector<MixedAuthorization> auths{
      {subjects.FindNode("team"), objects.FindNode("folder"),
       Mode::kPositive},
      {subjects.FindNode("u"), objects.FindNode("drive"), Mode::kNegative}};
  const graph::NodeId u = subjects.FindNode("u");
  const graph::NodeId doc = objects.FindNode("doc");

  ResolveTrace trace;
  auto lp_minus = MixedResolveAccess(subjects, objects, auths, u, doc,
                                     ParseStrategy("LP-").value(), &trace);
  ASSERT_TRUE(lp_minus.ok());
  EXPECT_EQ(*lp_minus, Mode::kNegative);
  EXPECT_EQ(trace.returned_line, 9) << "equal joint distance is a conflict";
  auto lp_plus = MixedResolveAccess(subjects, objects, auths, u, doc,
                                    ParseStrategy("LP+").value());
  ASSERT_TRUE(lp_plus.ok());
  EXPECT_EQ(*lp_plus, Mode::kPositive);
}

TEST(MixedTest, IrrelevantAuthorizationsAreIgnored) {
  const Dag subjects = Build({{"g", "u"}, {"g", "other"}});
  const Dag objects = Build({{"folder", "doc"}, {"folder", "other_doc"}});
  std::vector<MixedAuthorization> auths{
      {subjects.FindNode("other"), objects.FindNode("folder"),
       Mode::kNegative},  // Other subject: no path to u.
      {subjects.FindNode("g"), objects.FindNode("other_doc"),
       Mode::kNegative}};  // Other object: no path to doc.
  auto bag = MixedPropagate(subjects, objects, auths, subjects.FindNode("u"),
                            objects.FindNode("doc"));
  ASSERT_TRUE(bag.ok());
  // Only the default marker on the (g, folder) root pair remains.
  ASSERT_EQ(bag->GroupCount(), 1u);
  EXPECT_EQ(bag->entries()[0].mode, PropagatedMode::kDefault);
}

TEST(MixedTest, ContradictionAndDuplicateHandling) {
  const Dag subjects = Build({{"g", "u"}});
  const Dag objects = Build({{"folder", "doc"}});
  std::vector<MixedAuthorization> dup{
      {subjects.FindNode("g"), objects.FindNode("folder"), Mode::kPositive},
      {subjects.FindNode("g"), objects.FindNode("folder"), Mode::kPositive}};
  EXPECT_TRUE(MixedPropagate(subjects, objects, dup, subjects.FindNode("u"),
                             objects.FindNode("doc"))
                  .ok());
  std::vector<MixedAuthorization> contradiction{
      {subjects.FindNode("g"), objects.FindNode("folder"), Mode::kPositive},
      {subjects.FindNode("g"), objects.FindNode("folder"), Mode::kNegative}};
  EXPECT_EQ(MixedPropagate(subjects, objects, contradiction,
                           subjects.FindNode("u"), objects.FindNode("doc"))
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST(MixedTest, ValidatesIds) {
  const Dag subjects = Build({{"g", "u"}});
  const Dag objects = Build({{"folder", "doc"}});
  EXPECT_FALSE(
      MixedPropagate(subjects, objects, {}, 99, objects.FindNode("doc"))
          .ok());
  EXPECT_FALSE(
      MixedPropagate(subjects, objects, {}, subjects.FindNode("u"), 99).ok());
  std::vector<MixedAuthorization> bad{{99, 0, Mode::kPositive}};
  EXPECT_FALSE(MixedPropagate(subjects, objects, bad, subjects.FindNode("u"),
                              objects.FindNode("doc"))
                   .ok());
}

/// Brute-force oracle: enumerate (subject path, object path) pairs.
RightsBag MixedOracle(const Dag& subjects, const Dag& objects,
                      const std::vector<MixedAuthorization>& auths,
                      graph::NodeId qs, graph::NodeId qo) {
  auto paths_by_length = [](const Dag& dag, graph::NodeId from,
                            graph::NodeId to) {
    std::map<uint32_t, uint64_t> out;
    std::function<void(graph::NodeId, uint32_t)> dfs = [&](graph::NodeId v,
                                                           uint32_t len) {
      if (v == to) {
        ++out[len];
        return;
      }
      for (graph::NodeId c : dag.children(v)) dfs(c, len + 1);
    };
    dfs(from, 0);
    return out;
  };

  RightsBag bag;
  auto add_pair = [&](graph::NodeId s, graph::NodeId o, PropagatedMode mode) {
    const auto sp = paths_by_length(subjects, s, qs);
    const auto op = paths_by_length(objects, o, qo);
    for (const auto& [ls, cs] : sp) {
      for (const auto& [lo, co] : op) {
        bag.Add(ls + lo, mode, cs * co);
      }
    }
  };
  std::set<std::pair<graph::NodeId, graph::NodeId>> labeled;
  for (const auto& a : auths) {
    // Only pairs that reach the query matter for the labeled-set too,
    // matching MixedPropagate's per-query semantics.
    if (paths_by_length(subjects, a.subject, qs).empty()) continue;
    if (paths_by_length(objects, a.object, qo).empty()) continue;
    labeled.insert({a.subject, a.object});
    add_pair(a.subject, a.object, acm::ToPropagated(a.mode));
  }
  for (graph::NodeId rs : subjects.Roots()) {
    if (paths_by_length(subjects, rs, qs).empty()) continue;
    for (graph::NodeId ro : objects.Roots()) {
      if (paths_by_length(objects, ro, qo).empty()) continue;
      if (labeled.contains({rs, ro})) continue;
      add_pair(rs, ro, PropagatedMode::kDefault);
    }
  }
  bag.Normalize();
  return bag;
}

TEST(MixedTest, AgreesWithPairPathOracleOnRandomGraphs) {
  Random rng(777);
  for (int trial = 0; trial < 20; ++trial) {
    auto subjects = graph::GenerateLayeredDag(
        {.layers = 2 + rng.Uniform(2), .nodes_per_layer = 2 + rng.Uniform(3),
         .skip_edge_probability = 0.2},
        rng);
    auto objects = graph::GenerateLayeredDag(
        {.layers = 2 + rng.Uniform(2), .nodes_per_layer = 2 + rng.Uniform(3),
         .skip_edge_probability = 0.2},
        rng);
    ASSERT_TRUE(subjects.ok());
    ASSERT_TRUE(objects.ok());

    std::vector<MixedAuthorization> auths;
    std::set<std::pair<graph::NodeId, graph::NodeId>> used;
    for (int i = 0; i < 6; ++i) {
      const graph::NodeId s =
          static_cast<graph::NodeId>(rng.Uniform(subjects->node_count()));
      const graph::NodeId o =
          static_cast<graph::NodeId>(rng.Uniform(objects->node_count()));
      if (!used.insert({s, o}).second) continue;
      auths.push_back(MixedAuthorization{
          s, o, rng.Bernoulli(0.5) ? Mode::kPositive : Mode::kNegative});
    }

    const graph::NodeId qs = subjects->Sinks().front();
    const graph::NodeId qo = objects->Sinks().back();
    auto got = MixedPropagate(*subjects, *objects, auths, qs, qo);
    ASSERT_TRUE(got.ok());
    const RightsBag oracle = MixedOracle(*subjects, *objects, auths, qs, qo);
    EXPECT_EQ(*got, oracle)
        << "trial " << trial << "\ngot:    " << got->ToString()
        << "\noracle: " << oracle.ToString();
  }
}

}  // namespace
}  // namespace ucr::core
