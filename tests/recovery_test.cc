#include <csignal>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "core/binary_snapshot.h"
#include "core/persistent_system.h"
#include "core/strategy.h"
#include "core/system.h"
#include "util/fs.h"

namespace ucr::core {
namespace {

using MutationOp = AccessControlSystem::MutationOp;

// The acceptance test for the durability layer: a writer process is
// SIGKILLed mid-stream (sometimes mid-`ApplyMutations`, sometimes
// mid-compaction) and recovery must produce a state *bit-identical* to
// a never-crashed twin that applied exactly the committed prefix —
// verified both by byte-comparing the canonical binary encodings and
// by shadow-querying every subject under all 48 strategies.
//
// The batch stream is a pure function of the batch index, so parent
// and child agree on it without any shared state. Every op in a batch
// succeeds (unique edges, same-mode re-grants are idempotent, revokes
// target grants four batches old), and the batch's *last* op grants a
// marker object "batch<i>" — commits are written after the in-memory
// apply with the applied count, so the marker's presence in the
// recovered EACM certifies the whole batch replayed.

constexpr int kMaxBatches = 400;

std::vector<MutationOp> BatchOps(int i) {
  const std::string user = "user" + std::to_string(i);
  const std::string peer = "peer" + std::to_string(i);
  const std::string grp = "grp" + std::to_string(i % 8);
  const std::string res = "res" + std::to_string(i % 5);
  std::vector<MutationOp> ops;
  ops.push_back(MutationOp::AddMember(grp, user));
  ops.push_back(MutationOp::AddMember(grp, peer));
  ops.push_back(MutationOp::Grant(user, res, "read"));
  ops.push_back(MutationOp::Deny(grp, "neg" + std::to_string(i % 5), "write"));
  if (i >= 4) {
    ops.push_back(MutationOp::Revoke("user" + std::to_string(i - 4),
                                     "res" + std::to_string((i - 4) % 5),
                                     "read"));
  }
  ops.push_back(MutationOp::Grant(user, "batch" + std::to_string(i), "mark"));
  return ops;
}

std::string FreshStoreDir(const char* tag) {
  return ::testing::TempDir() + "/ucr_recovery_" +
         std::to_string(static_cast<long>(::getpid())) + "_" + tag;
}

// Runs in the forked child: open the store and stream batches until
// the parent's SIGKILL lands (or all batches are done). One ack byte
// per committed batch lets the parent aim its kill mid-stream. Uses
// `_exit`, never gtest assertions — the parent validates everything.
[[noreturn]] void WriterChild(const std::string& dir, int ack_fd) {
  auto store = PersistentSystem::Open(dir);
  if (!store.ok()) _exit(2);
  for (int i = 0; i < kMaxBatches; ++i) {
    if (!store->Apply(BatchOps(i)).ok()) _exit(3);
    // Compact periodically so kills also land mid-compaction (between
    // the snapshot rename and the WAL truncate, or mid-temp-write).
    if (i % 16 == 15 && !store->Compact().ok()) _exit(4);
    const char ack = 1;
    if (::write(ack_fd, &ack, 1) != 1) _exit(5);
  }
  _exit(0);
}

// Counts the committed prefix via the marker objects and asserts it
// IS a prefix — a hole would mean replay resurrected an uncommitted
// batch or dropped a committed one.
int CommittedPrefix(const AccessControlSystem& system) {
  int k = 0;
  while (k < kMaxBatches &&
         system.eacm().FindObject("batch" + std::to_string(k)).ok()) {
    ++k;
  }
  for (int i = k; i < kMaxBatches; ++i) {
    EXPECT_FALSE(
        system.eacm().FindObject("batch" + std::to_string(i)).ok())
        << "batch " << i << " present but batch " << k << " missing";
  }
  return k;
}

AccessControlSystem BuildTwin(int committed_batches) {
  AccessControlSystem twin{graph::Dag()};
  for (int i = 0; i < committed_batches; ++i) {
    const std::vector<MutationOp> ops = BatchOps(i);
    EXPECT_TRUE(twin.ApplyMutations(ops).ok()) << "twin batch " << i;
  }
  return twin;
}

void ExpectBitIdentical(AccessControlSystem& recovered,
                        AccessControlSystem& twin) {
  // Strongest check first: the canonical binary encodings (CSR arrays,
  // name tables in intern order, sorted EACM entries, strategy) must
  // be byte-equal. This is what "bit-identical" means here.
  EXPECT_EQ(EncodeBinarySnapshot(recovered, /*lsn=*/0),
            EncodeBinarySnapshot(twin, /*lsn=*/0));

  // And the decisions agree under every strategy, for every subject,
  // on a sample of live objects — the shadow-verification the paper's
  // Fig. 4 derivations would run.
  ASSERT_EQ(recovered.dag().node_count(), twin.dag().node_count());
  const std::vector<std::string> objects = {"res0", "res3", "neg2", "batch0"};
  for (const Strategy& s : AllStrategies()) {
    for (graph::NodeId v = 0; v < twin.dag().node_count(); v += 3) {
      const std::string& name = twin.dag().name(v);
      for (const std::string& object : objects) {
        const auto a = recovered.CheckAccessByName(name, object, "read", s);
        const auto b = twin.CheckAccessByName(name, object, "read", s);
        ASSERT_EQ(a.ok(), b.ok()) << s.ToMnemonic() << " " << name;
        if (a.ok()) {
          EXPECT_EQ(a.value(), b.value())
              << s.ToMnemonic() << " " << name << " " << object;
        }
      }
    }
  }
}

// One kill iteration: fork a writer, let it commit at least
// `min_batches`, SIGKILL it, recover, and compare against the twin.
void RunKillIteration(const char* tag, int min_batches) {
  const std::string dir = FreshStoreDir(tag);
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    ::close(pipe_fds[0]);
    WriterChild(dir, pipe_fds[1]);  // Never returns.
  }
  ::close(pipe_fds[1]);

  // Wait for `min_batches` acks, then kill. The child races ahead of
  // our reads, so the kill lands at an unpredictable point well past
  // the floor — different iterations die mid-batch, between batches,
  // and mid-compaction.
  int acked = 0;
  char buf;
  while (acked < min_batches) {
    const ssize_t n = ::read(pipe_fds[0], &buf, 1);
    if (n == 1) {
      ++acked;
    } else {
      break;  // EOF: the child finished every batch first. Also fine.
    }
  }
  ::kill(child, SIGKILL);
  ::close(pipe_fds[0]);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE((WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL) ||
              (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0))
      << "writer child failed before the kill, status " << wstatus;

  PersistentSystem::OpenStats stats;
  auto recovered = PersistentSystem::Open(dir, {}, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();

  const int committed = CommittedPrefix(recovered->system());
  ASSERT_GE(committed, min_batches);
  AccessControlSystem twin = BuildTwin(committed);
  ExpectBitIdentical(recovered->system(), twin);

  // Recovery is idempotent: a second open (no new writes) sees the
  // identical state.
  auto again = PersistentSystem::Open(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(EncodeBinarySnapshot(again->system(), 0),
            EncodeBinarySnapshot(twin, 0));
}

TEST(RecoveryTest, KillNineEarlyInStream) { RunKillIteration("early", 3); }

TEST(RecoveryTest, KillNinePastFirstCompaction) {
  RunKillIteration("mid", 20);
}

TEST(RecoveryTest, KillNineDeepInStream) { RunKillIteration("deep", 120); }

// The no-crash baseline: close cleanly, reopen, and the WAL replays
// everything (no snapshot yet); after Compact the snapshot carries it
// all and the WAL replays nothing.
TEST(RecoveryTest, CleanReopenReplaysWalThenSnapshotAfterCompact) {
  const std::string dir = FreshStoreDir("clean");
  {
    auto store = PersistentSystem::Open(dir);
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (int i = 0; i < 10; ++i) {
      AccessControlSystem::MutationBatchStats stats;
      ASSERT_TRUE(store->Apply(BatchOps(i), &stats).ok());
      EXPECT_GT(stats.last_lsn, 0u);
      EXPECT_EQ(stats.failed_index,
                AccessControlSystem::MutationBatchStats::kNone);
    }
  }
  PersistentSystem::OpenStats stats;
  auto reopened = PersistentSystem::Open(dir, {}, &stats);
  ASSERT_TRUE(reopened.ok());
  EXPECT_FALSE(stats.loaded_snapshot);
  EXPECT_EQ(stats.replayed_batches, 10u);
  EXPECT_EQ(CommittedPrefix(reopened->system()), 10);

  ASSERT_TRUE(reopened->Compact().ok());
  const uint64_t lsn_after_compact = reopened->last_lsn();
  ASSERT_TRUE(reopened->Apply(BatchOps(10)).ok());
  EXPECT_GT(reopened->last_lsn(), lsn_after_compact);

  PersistentSystem::OpenStats stats2;
  auto again = PersistentSystem::Open(dir, {}, &stats2);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(stats2.loaded_snapshot);
  EXPECT_EQ(stats2.snapshot_lsn, lsn_after_compact);
  EXPECT_EQ(stats2.replayed_batches, 1u);  // Only batch 10.
  EXPECT_EQ(CommittedPrefix(again->system()), 11);
  AccessControlSystem twin = BuildTwin(11);
  ExpectBitIdentical(again->system(), twin);
}

// Strategy changes are durable too, and survive both a plain reopen
// and a compaction (where the snapshot header carries them).
TEST(RecoveryTest, StrategyChangeSurvivesReopenAndCompaction) {
  const std::string dir = FreshStoreDir("strategy");
  {
    auto store = PersistentSystem::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Apply(BatchOps(0)).ok());
    ASSERT_TRUE(store->SetStrategy(ParseStrategy("D+LMP-").value()).ok());
  }
  {
    auto reopened = PersistentSystem::Open(dir);
    ASSERT_TRUE(reopened.ok());
    EXPECT_EQ(reopened->system().strategy().ToMnemonic(), "D+LMP-");
    ASSERT_TRUE(reopened->Compact().ok());
  }
  auto after_compact = PersistentSystem::Open(dir);
  ASSERT_TRUE(after_compact.ok());
  EXPECT_EQ(after_compact->system().strategy().ToMnemonic(), "D+LMP-");
}

// A batch that fails mid-way commits its applied prefix: the stats
// name the failing index, the commit record carries the same count,
// and recovery replays exactly that prefix.
TEST(RecoveryTest, PartialBatchFailureReplaysAppliedPrefixOnly) {
  const std::string dir = FreshStoreDir("partial");
  {
    auto store = PersistentSystem::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Apply(BatchOps(0)).ok());
    std::vector<MutationOp> bad;
    bad.push_back(MutationOp::Grant("user0", "ok_obj", "read"));
    bad.push_back(MutationOp::Grant("no_such_subject", "x", "read"));
    bad.push_back(MutationOp::Grant("user0", "never_reached", "read"));
    AccessControlSystem::MutationBatchStats stats;
    const Status status = store->Apply(bad, &stats);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(stats.applied, 1u);
    EXPECT_EQ(stats.failed_index, 1u);
    EXPECT_NE(status.message().find("op 1 (grant)"), std::string::npos);
  }
  auto recovered = PersistentSystem::Open(dir);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->system().eacm().FindObject("ok_obj").ok());
  EXPECT_FALSE(recovered->system().eacm().FindObject("x").ok());
  EXPECT_FALSE(recovered->system().eacm().FindObject("never_reached").ok());
}

// A failed WAL append may leave torn bytes on disk. The writer latches
// and the store refuses further writes — a later "successful" append
// would land beyond the tear, where recovery could never reach it.
// Compact re-persists memory, truncates the tear, and writes resume.
TEST(RecoveryTest, WalAppendFailureLatchesWritesUntilCompact) {
  const std::string dir = FreshStoreDir("poisoned_wal");
  auto store = PersistentSystem::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store->Apply(BatchOps(0)).ok());

  SetAtomicWriteLimitForTesting(4);  // Torn write a few bytes in.
  const Status torn = store->Apply(BatchOps(1));
  SetAtomicWriteLimitForTesting(-1);
  ASSERT_FALSE(torn.ok());
  // The write-ahead order protected memory: batch 1 never began.
  EXPECT_EQ(CommittedPrefix(store->system()), 1);
  EXPECT_TRUE(store->healthy());

  // The device "recovers", but appends stay refused — no silent resume
  // after the torn bytes.
  EXPECT_EQ(store->Apply(BatchOps(1)).code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(store->Compact().ok());
  ASSERT_TRUE(store->Apply(BatchOps(1)).ok());
  auto reopened = PersistentSystem::Open(dir);
  ASSERT_TRUE(reopened.ok());
  AccessControlSystem twin = BuildTwin(2);
  ExpectBitIdentical(reopened->system(), twin);
}

// If the WAL *commit* fails after the in-memory apply succeeded,
// memory is ahead of the durable log: a restart would roll back state
// callers can already observe. The store must latch unhealthy rather
// than keep acknowledging work that would vanish; Compact makes the
// in-memory state durable again and reopens the latch.
TEST(RecoveryTest, CommitFailureAfterApplyLatchesStoreUntilCompact) {
  const std::string dir = FreshStoreDir("unhealthy");
  auto store = PersistentSystem::Open(dir);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_TRUE(store->Apply(BatchOps(0)).ok());
  EXPECT_TRUE(store->healthy());

  // An empty batch writes nothing at BeginBatch, so the injected limit
  // lands the failure exactly on the commit record — the post-apply
  // window where durability is already owed.
  const std::vector<MutationOp> empty;
  SetAtomicWriteLimitForTesting(4);
  const Status failed = store->Apply(empty);
  SetAtomicWriteLimitForTesting(-1);
  ASSERT_FALSE(failed.ok());
  EXPECT_FALSE(store->healthy());

  // Latched: no more acknowledgements on top of undurable state.
  EXPECT_EQ(store->Apply(BatchOps(1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store->SetStrategy(ParseStrategy("D+LMP-").value()).code(),
            StatusCode::kFailedPrecondition);
  // Reads still serve the real in-memory state.
  EXPECT_EQ(CommittedPrefix(store->system()), 1);

  ASSERT_TRUE(store->Compact().ok());
  EXPECT_TRUE(store->healthy());
  ASSERT_TRUE(store->Apply(BatchOps(1)).ok());
  auto reopened = PersistentSystem::Open(dir);
  ASSERT_TRUE(reopened.ok());
  AccessControlSystem twin = BuildTwin(2);
  ExpectBitIdentical(reopened->system(), twin);
}

// Initialize seeds a store from an existing in-memory system; the
// seeded state round-trips and further durable writes stack on top.
TEST(RecoveryTest, InitializeSeedsStoreFromExistingSystem) {
  AccessControlSystem seed = BuildTwin(5);
  const std::string dir = FreshStoreDir("seeded");
  ASSERT_TRUE(PersistentSystem::Initialize(dir, seed).ok());
  // Double-initialize must refuse rather than clobber.
  EXPECT_EQ(PersistentSystem::Initialize(dir, seed).code(),
            StatusCode::kAlreadyExists);

  PersistentSystem::OpenStats stats;
  auto store = PersistentSystem::Open(dir, {}, &stats);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_TRUE(stats.loaded_snapshot);
  EXPECT_EQ(CommittedPrefix(store->system()), 5);
  ASSERT_TRUE(store->Apply(BatchOps(5)).ok());
  auto reopened = PersistentSystem::Open(dir);
  ASSERT_TRUE(reopened.ok());
  AccessControlSystem twin = BuildTwin(6);
  ExpectBitIdentical(reopened->system(), twin);
}

}  // namespace
}  // namespace ucr::core
