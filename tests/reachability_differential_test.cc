// Differential tests for the indexed query path (DESIGN.md §12): sink
// bags composed from the reachability index must yield decisions and
// traces bit-identical to classic ancestor-sub-graph extraction for
// all 48 canonical strategies — on the paper's example, on enterprise
// and random hierarchies, across propagation modes (second-wins
// falling back by design), under randomized `ApplyMutations`
// interleavings with incremental index rebuilds, and through the
// snapshot read path. Also covers the grant/deny conflict policy
// (`GrantConflictPolicy`) on both its reject and overwrite paths.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "acm/acm.h"
#include "core/paper_example.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "util/random.h"
#include "workload/enterprise.h"

namespace ucr::core {
namespace {

using acm::Mode;

struct Column {
  acm::ObjectId object;
  acm::RightId right;
};

Column MakeRandomColumn(acm::ExplicitAcm& eacm, const graph::Dag& dag,
                        const char* object, const char* right,
                        double label_rate, Random& rng) {
  const acm::ObjectId o = eacm.InternObject(object).value();
  const acm::RightId r = eacm.InternRight(right).value();
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    if (!rng.Bernoulli(label_rate)) continue;
    const Mode mode = rng.Bernoulli(0.4) ? Mode::kNegative : Mode::kPositive;
    EXPECT_TRUE(eacm.Set(v, o, r, mode).ok());
  }
  return {o, r};
}

void ExpectTraceEq(const ResolveTrace& indexed, const ResolveTrace& classic) {
  ASSERT_EQ(indexed.c1, classic.c1);
  ASSERT_EQ(indexed.c2, classic.c2);
  ASSERT_EQ(indexed.auth_computed, classic.auth_computed);
  ASSERT_EQ(indexed.auth_has_positive, classic.auth_has_positive);
  ASSERT_EQ(indexed.auth_has_negative, classic.auth_has_negative);
  ASSERT_EQ(indexed.returned_line, classic.returned_line);
  ASSERT_EQ(indexed.result, classic.result);
}

/// Indexed vs classic decisions and traces, every canonical strategy,
/// every propagation mode (second-wins exercises the fallback gate:
/// its per-column path gating is not indexable, so the indexed call
/// must transparently serve the classic answer).
void ExpectIndexedAgrees(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
                         const Column& column,
                         std::span<const graph::NodeId> subjects) {
  for (const PropagationMode mode :
       {PropagationMode::kBoth, PropagationMode::kFirstWins,
        PropagationMode::kSecondWins}) {
    const auto index =
        graph::ReachabilityIndex::Build(dag, eacm.epoch(), eacm.ReachRows());
    ASSERT_TRUE(index->ready());
    ResolveAccessOptions indexed_options;
    indexed_options.propagation_mode = mode;
    ResolveAccessOptions classic_options = indexed_options;
    classic_options.use_reachability_index = false;
    for (const graph::NodeId v : subjects) {
      for (const Strategy& strategy : AllStrategies()) {
        SCOPED_TRACE(std::string(strategy.ToMnemonic()) + " subject " +
                     dag.name(v) + " mode " + std::to_string(int(mode)));
        ResolveTrace indexed_trace, classic_trace;
        const auto indexed_mode =
            ResolveAccess(dag, eacm, v, column.object, column.right, strategy,
                          indexed_options, &indexed_trace, nullptr,
                          index.get());
        const auto classic_mode =
            ResolveAccess(dag, eacm, v, column.object, column.right, strategy,
                          classic_options, &classic_trace);
        ASSERT_TRUE(indexed_mode.ok());
        ASSERT_TRUE(classic_mode.ok());
        ASSERT_EQ(*indexed_mode, *classic_mode);
        ExpectTraceEq(indexed_trace, classic_trace);
      }
    }
  }
}

std::vector<graph::NodeId> AllSubjects(const graph::Dag& dag) {
  std::vector<graph::NodeId> out(dag.node_count());
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) out[v] = v;
  return out;
}

TEST(ReachabilityDifferentialTest, PaperExampleAllStrategies) {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  ASSERT_TRUE(system.Grant("S4", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S1", "obj", "write").ok());
  for (const char* right : {"read", "write"}) {
    const Column column{system.eacm().FindObject("obj").value(),
                        system.eacm().FindRight(right).value()};
    ExpectIndexedAgrees(system.dag(), system.eacm(), column,
                        AllSubjects(system.dag()));
  }
}

TEST(ReachabilityDifferentialTest, RandomLayeredDagsAllStrategies) {
  for (const uint64_t seed : {101u, 102u, 103u}) {
    Random rng(seed);
    graph::LayeredDagOptions shape;
    shape.layers = 5;
    shape.nodes_per_layer = 7;
    shape.skip_edge_probability = 0.2;
    auto dag = graph::GenerateLayeredDag(shape, rng);
    ASSERT_TRUE(dag.ok());
    acm::ExplicitAcm eacm;
    const Column sparse = MakeRandomColumn(eacm, *dag, "doc", "read", 0.2, rng);
    const Column dense = MakeRandomColumn(eacm, *dag, "doc", "write", 0.6, rng);
    ExpectIndexedAgrees(*dag, eacm, sparse, AllSubjects(*dag));
    ExpectIndexedAgrees(*dag, eacm, dense, AllSubjects(*dag));
  }
}

TEST(ReachabilityDifferentialTest, EnterpriseHierarchySampledSubjects) {
  Random rng(11);
  workload::EnterpriseOptions shape;
  shape.individuals = 150;
  shape.groups = 300;
  shape.top_level_groups = 8;
  shape.target_edges = 1200;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const Column column = MakeRandomColumn(eacm, *dag, "vault", "open", 0.05, rng);
  std::vector<graph::NodeId> sample;
  for (size_t i = 0; i < 80; ++i) {
    sample.push_back(static_cast<graph::NodeId>(rng.Uniform(dag->node_count())));
  }
  ExpectIndexedAgrees(*dag, eacm, column, sample);
}

/// Two systems fed identical mutation interleavings — one composing
/// from the incrementally maintained index, one forced classic — must
/// agree on every decision after every batch.
TEST(ReachabilityDifferentialTest, MutationChurnKeepsIndexBitIdentical) {
  Random rng(202);
  graph::LayeredDagOptions shape;
  shape.layers = 4;
  shape.nodes_per_layer = 6;
  shape.skip_edge_probability = 0.15;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());

  SystemOptions indexed_options;
  indexed_options.use_reachability_index = true;
  indexed_options.mutation_conflict_policy = GrantConflictPolicy::kOverwrite;
  SystemOptions classic_options = indexed_options;
  classic_options.use_reachability_index = false;
  AccessControlSystem indexed(*dag, indexed_options);
  AccessControlSystem classic(*dag, classic_options);

  const char* objects[] = {"doc", "vault"};
  const char* rights[] = {"read", "write"};
  auto random_name = [&](Random& r) {
    return std::string("L") + std::to_string(r.Uniform(shape.layers)) + "N" +
           std::to_string(r.Uniform(shape.nodes_per_layer));
  };

  for (int round = 0; round < 10; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    // One randomized batch of grants/denies/revokes/membership edits.
    std::vector<AccessControlSystem::MutationOp> ops;
    for (int i = 0; i < 6; ++i) {
      const std::string subject = random_name(rng);
      const std::string object = objects[rng.Uniform(2)];
      const std::string right = rights[rng.Uniform(2)];
      switch (rng.Uniform(5)) {
        case 0:
          ops.push_back(
              AccessControlSystem::MutationOp::Grant(subject, object, right));
          break;
        case 1:
          ops.push_back(
              AccessControlSystem::MutationOp::Deny(subject, object, right));
          break;
        case 2:
          ops.push_back(
              AccessControlSystem::MutationOp::Revoke(subject, object, right));
          break;
        case 3:
          ops.push_back(AccessControlSystem::MutationOp::AddMember(
              subject, random_name(rng)));
          break;
        default:
          ops.push_back(AccessControlSystem::MutationOp::RemoveMember(
              subject, random_name(rng)));
          break;
      }
    }
    // Both systems see the identical interleaving; individual ops may
    // fail (duplicate edge, cycle, missing edge) but must fail the
    // same way on both sides.
    const Status a = indexed.ApplyMutations(ops);
    const Status b = classic.ApplyMutations(ops);
    ASSERT_EQ(a.code(), b.code()) << a.message() << " vs " << b.message();

    // The indexed system must actually be serving from the index.
    const graph::ReachabilityIndex* index = indexed.reachability_index();
    ASSERT_NE(index, nullptr);
    ASSERT_TRUE(index->ready());
    ASSERT_EQ(index->dag_generation(), indexed.dag().generation());

    for (const char* object : objects) {
      for (const char* right : rights) {
        const auto o = indexed.eacm().FindObject(object);
        const auto r = indexed.eacm().FindRight(right);
        if (!o.ok() || !r.ok()) continue;
        for (graph::NodeId v = 0; v < indexed.dag().node_count(); ++v) {
          for (const Strategy& strategy : AllStrategies()) {
            const auto lhs = indexed.CheckAccess(v, *o, *r, strategy);
            const auto rhs = classic.CheckAccess(v, *o, *r, strategy);
            ASSERT_TRUE(lhs.ok());
            ASSERT_TRUE(rhs.ok());
            ASSERT_EQ(*lhs, *rhs)
                << strategy.ToMnemonic() << " subject "
                << indexed.dag().name(v) << " " << object << "/" << right;
          }
        }
      }
    }
  }
}

TEST(ReachabilityDifferentialTest, SnapshotReadsComposeFromSnapshotIndex) {
  Random rng(303);
  graph::LayeredDagOptions shape;
  shape.layers = 4;
  shape.nodes_per_layer = 5;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());

  SystemOptions options;
  options.use_reachability_index = true;
  AccessControlSystem indexed(*dag, options);
  SystemOptions classic_options = options;
  classic_options.use_reachability_index = false;
  AccessControlSystem classic(*dag, classic_options);
  indexed.EnableSnapshotReads();

  for (int round = 0; round < 6; ++round) {
    const std::string subject =
        "L" + std::to_string(rng.Uniform(shape.layers)) + "N" +
        std::to_string(rng.Uniform(shape.nodes_per_layer));
    const bool deny = rng.Bernoulli(0.4);
    const Status a = deny ? indexed.DenyAccess(subject, "doc", "read")
                          : indexed.Grant(subject, "doc", "read");
    const Status b = deny ? classic.DenyAccess(subject, "doc", "read")
                          : classic.Grant(subject, "doc", "read");
    ASSERT_EQ(a.code(), b.code());
  }
  // The published snapshot carries its own immutable index view.
  ASSERT_NE(indexed.snapshots(), nullptr);
  const auto o = indexed.eacm().FindObject("doc");
  const auto r = indexed.eacm().FindRight("read");
  ASSERT_TRUE(o.ok());
  ASSERT_TRUE(r.ok());
  for (graph::NodeId v = 0; v < indexed.dag().node_count(); ++v) {
    for (const Strategy& strategy : AllStrategies()) {
      const auto snap = indexed.CheckAccessSnapshot(v, *o, *r, strategy);
      const auto oracle = classic.CheckAccess(v, *o, *r, strategy);
      ASSERT_TRUE(snap.ok());
      ASSERT_TRUE(oracle.ok());
      ASSERT_EQ(*snap, *oracle)
          << strategy.ToMnemonic() << " subject " << indexed.dag().name(v);
    }
  }
}

// -- GrantConflictPolicy (grant/deny vs existing opposite entries) ----

graph::Dag TwoNodeDag() {
  graph::DagBuilder builder;
  builder.AddNode("team");
  builder.AddNode("alice");
  EXPECT_TRUE(builder.AddEdge("team", "alice").ok());
  return std::move(builder).Build().value();
}

TEST(ReachabilityDifferentialTest, ConflictPolicyRejectKeepsMatrixUnchanged) {
  AccessControlSystem system(TwoNodeDag());  // Default: kReject.
  ASSERT_TRUE(system.Grant("alice", "doc", "read").ok());

  const Status conflict = system.DenyAccess("alice", "doc", "read");
  EXPECT_EQ(conflict.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(conflict.message().find("opposite"), std::string::npos);
  // The matrix is untouched: the grant still decides.
  EXPECT_EQ(system.CheckAccessByName("alice", "doc", "read").value(),
            Mode::kPositive);
  // Re-granting the same mode is an idempotent no-op, not a conflict.
  EXPECT_TRUE(system.Grant("alice", "doc", "read").ok());
  // Revoke-then-deny is the sanctioned flip under kReject.
  ASSERT_TRUE(system.Revoke("alice", "doc", "read").ok());
  ASSERT_TRUE(system.DenyAccess("alice", "doc", "read").ok());
  EXPECT_EQ(system.CheckAccessByName("alice", "doc", "read").value(),
            Mode::kNegative);
}

TEST(ReachabilityDifferentialTest, ConflictPolicyOverwriteReplacesInPlace) {
  SystemOptions options;
  options.mutation_conflict_policy = GrantConflictPolicy::kOverwrite;
  AccessControlSystem system(TwoNodeDag(), options);
  ASSERT_TRUE(system.Grant("alice", "doc", "read").ok());
  ASSERT_TRUE(system.DenyAccess("alice", "doc", "read").ok());
  EXPECT_EQ(system.CheckAccessByName("alice", "doc", "read").value(),
            Mode::kNegative);
  ASSERT_TRUE(system.Grant("alice", "doc", "read").ok());
  EXPECT_EQ(system.CheckAccessByName("alice", "doc", "read").value(),
            Mode::kPositive);
}

TEST(ReachabilityDifferentialTest, ConflictPolicyAppliesToMutationBatches) {
  using Op = AccessControlSystem::MutationOp;
  {
    AccessControlSystem system(TwoNodeDag());  // kReject.
    const std::vector<Op> ops = {
        Op::Grant("team", "doc", "read"),
        Op::Deny("team", "doc", "read"),    // Conflicts: stops the batch.
        Op::Grant("alice", "doc", "write"),  // Never applied.
    };
    AccessControlSystem::MutationBatchStats stats;
    const Status status = system.ApplyMutations(ops, &stats);
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(stats.applied, 1u);  // Prior ops stay applied.
    EXPECT_EQ(system.CheckAccessByName("team", "doc", "read").value(),
              Mode::kPositive);
    EXPECT_FALSE(system.eacm().FindRight("write").ok());
  }
  {
    SystemOptions options;
    options.mutation_conflict_policy = GrantConflictPolicy::kOverwrite;
    AccessControlSystem system(TwoNodeDag(), options);
    const std::vector<Op> ops = {
        Op::Grant("team", "doc", "read"),
        Op::Deny("team", "doc", "read"),  // Overwrites in place.
        Op::Grant("alice", "doc", "write"),
    };
    AccessControlSystem::MutationBatchStats stats;
    ASSERT_TRUE(system.ApplyMutations(ops, &stats).ok());
    EXPECT_EQ(stats.applied, 3u);
    EXPECT_EQ(system.CheckAccessByName("team", "doc", "read").value(),
              Mode::kNegative);
    EXPECT_EQ(system.CheckAccessByName("alice", "doc", "write").value(),
              Mode::kPositive);
  }
}

}  // namespace
}  // namespace ucr::core
