#include "core/weak_strong.h"

#include <gtest/gtest.h>

#include "acm/acm.h"
#include "core/paper_example.h"
#include "core/resolve.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;

graph::Dag Chain() {
  graph::DagBuilder b;
  EXPECT_TRUE(b.AddEdge("root", "mid").ok());
  EXPECT_TRUE(b.AddEdge("mid", "leaf").ok());
  auto dag = std::move(b).Build();
  EXPECT_TRUE(dag.ok());
  return std::move(dag).value();
}

TEST(WeakStrongTest, StrongOverridesCloserWeak) {
  const graph::Dag dag = Chain();
  const std::vector<WeakStrongAuthorization> auths{
      {dag.FindNode("root"), Mode::kNegative, /*strong=*/true},
      {dag.FindNode("mid"), Mode::kPositive, /*strong=*/false},
  };
  // The weak '+' is more specific, but strong is unconditional.
  auto mode = WeakStrongDecide(dag, auths, dag.FindNode("leaf"));
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, Mode::kNegative);
}

TEST(WeakStrongTest, WeakSpecificityWinsWithoutStrong) {
  const graph::Dag dag = Chain();
  const std::vector<WeakStrongAuthorization> auths{
      {dag.FindNode("root"), Mode::kNegative, false},
      {dag.FindNode("mid"), Mode::kPositive, false},
  };
  auto mode = WeakStrongDecide(dag, auths, dag.FindNode("leaf"));
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, Mode::kPositive);
}

TEST(WeakStrongTest, OpenDefaultWhenNothingReaches) {
  const graph::Dag dag = Chain();
  auto mode = WeakStrongDecide(dag, {}, dag.FindNode("leaf"));
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, Mode::kPositive) << "Bertino's model is open by default";
}

TEST(WeakStrongTest, EquidistantWeakConflictDenies) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("a", "s").ok());
  ASSERT_TRUE(b.AddEdge("b", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  const std::vector<WeakStrongAuthorization> auths{
      {dag->FindNode("a"), Mode::kPositive, false},
      {dag->FindNode("b"), Mode::kNegative, false},
  };
  auto mode = WeakStrongDecide(*dag, auths, dag->FindNode("s"));
  ASSERT_TRUE(mode.ok());
  EXPECT_EQ(*mode, Mode::kNegative) << "denial takes precedence on ties";
}

TEST(WeakStrongTest, ConflictingStrongIsAnError) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("a", "s").ok());
  ASSERT_TRUE(b.AddEdge("b", "s").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  const std::vector<WeakStrongAuthorization> auths{
      {dag->FindNode("a"), Mode::kPositive, true},
      {dag->FindNode("b"), Mode::kNegative, true},
  };
  EXPECT_EQ(WeakStrongDecide(*dag, auths, dag->FindNode("s")).status().code(),
            StatusCode::kFailedPrecondition);
  // A subject reached by only one of them is still fine.
  // (b alone reaches nothing else here, so query a's side via s being
  // the only sink — instead check the roots themselves.)
  EXPECT_EQ(WeakStrongDecide(*dag, auths, dag->FindNode("a")).value(),
            Mode::kPositive);
}

TEST(WeakStrongTest, SameSubjectContradictionRejected) {
  const graph::Dag dag = Chain();
  const std::vector<WeakStrongAuthorization> auths{
      {dag.FindNode("root"), Mode::kPositive, false},
      {dag.FindNode("root"), Mode::kNegative, false},
  };
  EXPECT_EQ(WeakStrongDecide(dag, auths, dag.FindNode("leaf"))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// The §5 claim, verified: with no strong authorizations the
// weak/strong model coincides with strategy instance D+LP- on
// randomized DAGs, for every subject.
TEST(WeakStrongTest, WeakOnlyModelEqualsDPlusLPMinus) {
  Random rng(1999);  // Bertino et al.'s publication year.
  const Strategy d_plus_lp_minus = ParseStrategy("D+LP-").value();
  for (int trial = 0; trial < 25; ++trial) {
    auto dag = graph::GenerateLayeredDag(
        {.layers = 2 + static_cast<size_t>(rng.Uniform(4)),
         .nodes_per_layer = 2 + static_cast<size_t>(rng.Uniform(5)),
         .skip_edge_probability = 0.2},
        rng);
    ASSERT_TRUE(dag.ok());

    std::vector<WeakStrongAuthorization> auths;
    acm::ExplicitAcm eacm;
    const acm::ObjectId o = eacm.InternObject("obj").value();
    const acm::RightId r = eacm.InternRight("read").value();
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      if (rng.Bernoulli(0.25)) {
        const Mode mode =
            rng.Bernoulli(0.5) ? Mode::kPositive : Mode::kNegative;
        auths.push_back({v, mode, /*strong=*/false});
        ASSERT_TRUE(eacm.Set(v, o, r, mode).ok());
      }
    }
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      auto weak_strong = WeakStrongDecide(*dag, auths, v);
      ASSERT_TRUE(weak_strong.ok());
      auto unified = ResolveAccess(*dag, eacm, v, o, r, d_plus_lp_minus);
      ASSERT_TRUE(unified.ok());
      EXPECT_EQ(*weak_strong, *unified)
          << "trial " << trial << " subject " << dag->name(v);
    }
  }
}

TEST(WeakStrongTest, PaperExampleUnderWeakStrong) {
  const PaperExample ex = MakePaperExample();
  std::vector<WeakStrongAuthorization> auths;
  for (const auto& e : ex.eacm.SortedEntries()) {
    auths.push_back({e.subject, e.mode, /*strong=*/false});
  }
  // All weak => D+LP-, and Table 2 says D+LP- denies User.
  EXPECT_EQ(WeakStrongDecide(ex.dag, auths, ex.user).value(),
            Mode::kNegative);
  // Making S2's grant strong flips the outcome: it is unconditional.
  for (auto& a : auths) {
    if (a.subject == ex.dag.FindNode("S2")) a.strong = true;
  }
  EXPECT_EQ(WeakStrongDecide(ex.dag, auths, ex.user).value(),
            Mode::kPositive);
}

}  // namespace
}  // namespace ucr::core
