#include "core/sharded_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/paper_example.h"
#include "core/strategy.h"

namespace ucr::core {
namespace {

using acm::Mode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

// -- Single-threaded semantics: must match the unsharded caches. -----

TEST(ShardedResolutionCacheTest, MissThenHit) {
  ShardedResolutionCache cache;
  EXPECT_EQ(cache.Lookup(1, 0, 0, S("D+LP-"), 5), std::nullopt);
  cache.Store(1, 0, 0, S("D+LP-"), 5, Mode::kPositive);
  EXPECT_EQ(cache.Lookup(1, 0, 0, S("D+LP-"), 5), Mode::kPositive);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ShardedResolutionCacheTest, EpochChangeInvalidates) {
  ShardedResolutionCache cache;
  cache.Store(1, 0, 0, S("P-"), 5, Mode::kNegative);
  EXPECT_EQ(cache.Lookup(1, 0, 0, S("P-"), 6), std::nullopt);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 0u) << "stale entry must be evicted";
}

TEST(ShardedResolutionCacheTest, KeysDistinguishAllComponents) {
  ShardedResolutionCache cache;
  cache.Store(1, 2, 3, S("P-"), 0, Mode::kNegative);
  EXPECT_EQ(cache.Lookup(2, 2, 3, S("P-"), 0), std::nullopt);  // Subject.
  EXPECT_EQ(cache.Lookup(1, 3, 3, S("P-"), 0), std::nullopt);  // Object.
  EXPECT_EQ(cache.Lookup(1, 2, 4, S("P-"), 0), std::nullopt);  // Right.
  EXPECT_EQ(cache.Lookup(1, 2, 3, S("P+"), 0), std::nullopt);  // Strategy.
  EXPECT_EQ(cache.Lookup(1, 2, 3, S("P-"), 0), Mode::kNegative);
}

TEST(ShardedResolutionCacheTest, ClearDropsEntriesAndResetsStats) {
  ShardedResolutionCache cache;
  cache.Store(1, 0, 0, S("P-"), 0, Mode::kNegative);
  cache.Store(2, 0, 0, S("P-"), 0, Mode::kPositive);
  (void)cache.Lookup(1, 0, 0, S("P-"), 0);
  (void)cache.Lookup(9, 0, 0, S("P-"), 0);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().invalidations, 0u);
}

// -- Concurrency: the stress test the issue asks for. ----------------

// Hammers one shared cache from many threads with interleaved Store /
// Lookup traffic across several epochs (simulating explicit-matrix
// updates racing a query burst), then checks the books balance:
// every lookup is classified as exactly one hit or miss.
TEST(ShardedResolutionCacheTest, ConcurrentStoreLookupEpochStress) {
  ShardedResolutionCache cache;
  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 20000;
  constexpr uint32_t kSubjects = 64;
  constexpr uint64_t kEpochs = 4;

  std::atomic<uint64_t> lookups{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &lookups, t] {
      // Cheap deterministic per-thread mixing; no shared RNG state.
      uint64_t x = 0x9E3779B97F4A7C15ull * (t + 1);
      uint64_t local_lookups = 0;
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const auto subject = static_cast<graph::NodeId>(x % kSubjects);
        // Epoch advances over the run: later ops see newer epochs,
        // invalidating entries stored earlier — both paths must count.
        const uint64_t epoch = (op * kEpochs) / kOpsPerThread;
        const Strategy strategy = AllStrategies()[x % 48];
        if ((x >> 20) & 1) {
          cache.Store(subject, 0, 0, strategy, epoch,
                      (x >> 21) & 1 ? Mode::kPositive : Mode::kNegative);
        } else {
          (void)cache.Lookup(subject, 0, 0, strategy, epoch);
          ++local_lookups;
        }
      }
      lookups.fetch_add(local_lookups, std::memory_order_relaxed);
    });
  }
  for (std::thread& thread : threads) thread.join();

  const ResolutionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load())
      << "every lookup must be exactly one hit or one miss";
  EXPECT_LE(stats.invalidations, stats.misses)
      << "an invalidation always rides a miss";
  EXPECT_GT(stats.hits, 0u) << "the keyspace is small; hits must occur";
}

TEST(ShardedSubgraphCacheTest, ExtractsOnceAndReuses) {
  const PaperExample ex = MakePaperExample();
  ShardedSubgraphCache cache;
  const graph::AncestorSubgraph& first = cache.Get(ex.dag, ex.user);
  const graph::AncestorSubgraph& second = cache.Get(ex.dag, ex.user);
  EXPECT_EQ(&first, &second) << "cached sub-graph must be shared";
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.member_count(), 6u);
}

TEST(ShardedSubgraphCacheTest, ClearResetsCounters) {
  const PaperExample ex = MakePaperExample();
  ShardedSubgraphCache cache;
  cache.Get(ex.dag, ex.user);
  cache.Get(ex.dag, ex.user);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

// Many threads demand the same handful of sub-graphs; each subject
// must be extracted exactly once, every caller must get the same
// object, and hits + misses must equal the number of Get calls.
TEST(ShardedSubgraphCacheTest, ConcurrentGetSharesOneExtraction) {
  const PaperExample ex = MakePaperExample();
  ShardedSubgraphCache cache;
  const size_t node_count = ex.dag.node_count();
  constexpr size_t kThreads = 8;
  constexpr size_t kGetsPerThread = 5000;

  std::vector<std::vector<const graph::AncestorSubgraph*>> seen(
      kThreads, std::vector<const graph::AncestorSubgraph*>(node_count,
                                                            nullptr));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t g = 0; g < kGetsPerThread; ++g) {
        const auto subject =
            static_cast<graph::NodeId>((g * (t + 1)) % node_count);
        seen[t][subject] = &cache.Get(ex.dag, subject);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(cache.size(), node_count);
  EXPECT_EQ(cache.misses(), node_count) << "one extraction per subject";
  EXPECT_EQ(cache.hits() + cache.misses(), kThreads * kGetsPerThread);
  for (graph::NodeId v = 0; v < node_count; ++v) {
    // Thread 0's stride is 1, so it visited every subject.
    const graph::AncestorSubgraph* reference = seen[0][v];
    ASSERT_NE(reference, nullptr);
    for (size_t t = 1; t < kThreads; ++t) {
      if (seen[t][v] == nullptr) continue;  // Stride skipped this subject.
      ASSERT_EQ(seen[t][v], reference)
          << "thread " << t << " saw a different sub-graph for subject "
          << v;
    }
  }
}

// -- Observability (DESIGN.md §8): registry mirrors of the books. ----

#if UCR_METRICS_ENABLED

// Clear() must reset the rate stats (the PR-1 stats-leak regression
// class) while the eviction tally and the process-wide registry
// counter both record the drop.
TEST(ShardedResolutionCacheTest, ClearCountsEvictionsInStatsAndRegistry) {
  obs::Counter& evictions =
      internal::GetCacheMetrics().resolution_evictions;
  const uint64_t registry_before = evictions.Value();

  ShardedResolutionCache cache;
  cache.Store(1, 0, 0, S("P-"), 0, Mode::kNegative);
  cache.Store(2, 0, 0, S("P-"), 0, Mode::kPositive);
  cache.Store(3, 0, 0, S("P-"), 0, Mode::kPositive);
  (void)cache.Lookup(1, 0, 0, S("P-"), 0);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u) << "hit rates must not mix lifetimes";
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().evictions, 3u) << "drop tally accumulates";
  EXPECT_EQ(evictions.Value(), registry_before + 3);

  cache.Store(4, 0, 0, S("P-"), 0, Mode::kNegative);
  cache.Clear();
  EXPECT_EQ(cache.stats().evictions, 4u);
  EXPECT_EQ(evictions.Value(), registry_before + 4)
      << "the registry eviction counter is monotonic across clears";
}

// Epoch lapses (explicit-matrix mutations) must surface in the
// registry invalidation counter, not just the per-instance stats.
TEST(ShardedResolutionCacheTest, EpochInvalidationReachesRegistry) {
  internal::CacheMetrics& m = internal::GetCacheMetrics();
  const uint64_t invalidations_before = m.resolution_invalidations.Value();
  const uint64_t misses_before = m.resolution_misses.Value();

  ShardedResolutionCache cache;
  cache.Store(7, 0, 0, S("P-"), 10, Mode::kPositive);
  EXPECT_EQ(cache.Lookup(7, 0, 0, S("P-"), 11), std::nullopt);

  EXPECT_EQ(m.resolution_invalidations.Value(), invalidations_before + 1);
  EXPECT_EQ(m.resolution_misses.Value(), misses_before + 1)
      << "an invalidation rides a miss in the registry too";
}

TEST(ShardedSubgraphCacheTest, RegistryMirrorsHitsMissesAndEvictions) {
  internal::CacheMetrics& m = internal::GetCacheMetrics();
  const uint64_t hits_before = m.subgraph_hits.Value();
  const uint64_t misses_before = m.subgraph_misses.Value();
  const uint64_t evictions_before = m.subgraph_evictions.Value();

  const PaperExample ex = MakePaperExample();
  ShardedSubgraphCache cache;
  bool hit = true;
  cache.Get(ex.dag, ex.user, &hit);
  EXPECT_FALSE(hit);
  cache.Get(ex.dag, ex.user, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(m.subgraph_hits.Value(), hits_before + 1);
  EXPECT_EQ(m.subgraph_misses.Value(), misses_before + 1);

  cache.Clear();
  EXPECT_EQ(m.subgraph_evictions.Value(), evictions_before + 1);
  EXPECT_EQ(cache.hits(), 0u) << "instance counters reset on Clear";
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::core
