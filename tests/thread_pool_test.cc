#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <vector>

namespace ucr {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (const size_t workers : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
    ThreadPool pool(workers);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<uint32_t>> visits(kCount);
    pool.ParallelFor(0, kCount, [&](size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(visits[i].load(), 1u) << "index " << i << " with " << workers
                                      << " workers";
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), size_t{145});  // 10 + 11 + ... + 19.
}

TEST(ThreadPoolTest, ParallelForEmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelFor(9, 3, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 200;
  std::atomic<size_t> done{0};
  for (size_t t = 0; t < kTasks; ++t) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, InlinePoolRunsSubmittedTasksImmediately) {
  ThreadPool pool(0);
  bool ran = false;
  pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);
  pool.Wait();  // Nothing queued; must not block.
}

TEST(ThreadPoolTest, SequentialParallelForsReuseTheSamePool) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(0, 64, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), size_t{64 * 63 / 2});
  }
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

// -- Observability accessors (DESIGN.md §8): lock-free reads. --------

// queued_tasks()/active_workers() are relaxed atomic loads — readable
// from a monitoring thread without touching the queue mutex. While a
// worker is pinned inside a task, the books must show it.
TEST(ThreadPoolTest, QueueDepthAndActiveWorkersAreObservable) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queued_tasks(), 0u);
  EXPECT_EQ(pool.active_workers(), 0u);

  std::mutex gate;
  std::condition_variable cv;
  bool task_started = false;
  bool release_task = false;

  pool.Submit([&] {
    {
      std::lock_guard<std::mutex> lock(gate);
      task_started = true;
    }
    cv.notify_all();
    std::unique_lock<std::mutex> lock(gate);
    cv.wait(lock, [&] { return release_task; });
  });
  {
    std::unique_lock<std::mutex> lock(gate);
    cv.wait(lock, [&] { return task_started; });
  }
  // The single worker is blocked inside the task: it must read as
  // active, and a second submission must read as queued.
  EXPECT_EQ(pool.active_workers(), 1u);
  pool.Submit([] {});
  EXPECT_EQ(pool.queued_tasks(), 1u);

  {
    std::lock_guard<std::mutex> lock(gate);
    release_task = true;
  }
  cv.notify_all();
  pool.Wait();
  EXPECT_EQ(pool.queued_tasks(), 0u);
  EXPECT_EQ(pool.active_workers(), 0u);
}

TEST(ThreadPoolTest, InlinePoolKeepsGaugesAtZero) {
  ThreadPool pool(0);
  pool.Submit([] {});  // Runs inline; never queued, never a worker.
  EXPECT_EQ(pool.queued_tasks(), 0u);
  EXPECT_EQ(pool.active_workers(), 0u);
}

}  // namespace
}  // namespace ucr
