#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace ucr {
namespace {

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (const size_t workers : {size_t{0}, size_t{1}, size_t{3}, size_t{7}}) {
    ThreadPool pool(workers);
    constexpr size_t kCount = 1000;
    std::vector<std::atomic<uint32_t>> visits(kCount);
    pool.ParallelFor(0, kCount, [&](size_t i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kCount; ++i) {
      ASSERT_EQ(visits[i].load(), 1u) << "index " << i << " with " << workers
                                      << " workers";
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(2);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(10, 20, [&](size_t i) {
    sum.fetch_add(i, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), size_t{145});  // 10 + 11 + ... + 19.
}

TEST(ThreadPoolTest, ParallelForEmptyAndReversedRangesAreNoOps) {
  ThreadPool pool(2);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(5, 5, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelFor(9, 3, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  constexpr size_t kTasks = 200;
  std::atomic<size_t> done{0};
  for (size_t t = 0; t < kTasks; ++t) {
    pool.Submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPoolTest, InlinePoolRunsSubmittedTasksImmediately) {
  ThreadPool pool(0);
  bool ran = false;
  pool.Submit([&ran] { ran = true; });
  EXPECT_TRUE(ran);
  pool.Wait();  // Nothing queued; must not block.
}

TEST(ThreadPoolTest, SequentialParallelForsReuseTheSamePool) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(0, 64, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), size_t{64 * 63 / 2});
  }
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

}  // namespace
}  // namespace ucr
