#include "core/constraints.h"

#include <gtest/gtest.h>

#include "core/strategy.h"
#include "core/system.h"
#include "graph/io.h"

namespace ucr::core {
namespace {

using acm::Mode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

// finance: submits; audit: approves; chris sits in both teams.
AccessControlSystem MakeOrg() {
  auto dag = graph::FromEdgeListText(
      "edge company finance\n"
      "edge company audit\n"
      "edge finance alice\n"
      "edge finance chris\n"
      "edge audit bob\n"
      "edge audit chris\n");
  EXPECT_TRUE(dag.ok());
  AccessControlSystem system(std::move(dag).value());
  EXPECT_TRUE(system.Grant("finance", "invoice", "submit").ok());
  EXPECT_TRUE(system.Grant("audit", "invoice", "approve").ok());
  return system;
}

Permission Perm(const AccessControlSystem& system, const char* object,
                const char* right) {
  return Permission{system.eacm().FindObject(object).value(),
                    system.eacm().FindRight(right).value()};
}

TEST(ConstraintSetTest, ValidatesSod) {
  ConstraintSet set;
  const Permission a{0, 0};
  const Permission b{0, 1};
  EXPECT_FALSE(set.AddSod({"", a, b}).ok());
  EXPECT_FALSE(set.AddSod({"same", a, a}).ok());
  EXPECT_TRUE(set.AddSod({"ok", a, b}).ok());
  EXPECT_EQ(set.AddSod({"ok", a, b}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(set.size(), 1u);
}

TEST(ConstraintSetTest, ValidatesCoi) {
  ConstraintSet set;
  const Permission a{0, 0};
  const Permission b{0, 1};
  const Permission c{1, 0};
  EXPECT_FALSE(set.AddCoi({"few", {a}, 1}).ok());
  EXPECT_FALSE(set.AddCoi({"dup", {a, a, b}, 1}).ok());
  EXPECT_FALSE(set.AddCoi({"zero", {a, b}, 0}).ok());
  EXPECT_FALSE(set.AddCoi({"all", {a, b}, 2}).ok());
  EXPECT_TRUE(set.AddCoi({"ok", {a, b, c}, 1}).ok());
  EXPECT_EQ(set.AddSod({"ok", a, b}).code(), StatusCode::kAlreadyExists)
      << "names are shared across constraint kinds";
}

TEST(AuditConstraintsTest, FindsDualMembershipViolation) {
  AccessControlSystem system = MakeOrg();
  ConstraintSet constraints;
  ASSERT_TRUE(constraints
                  .AddSod({"submit-vs-approve",
                           Perm(system, "invoice", "submit"),
                           Perm(system, "invoice", "approve")})
                  .ok());

  auto violations = AuditConstraints(system, constraints, S("D-LP+"));
  ASSERT_TRUE(violations.ok());
  ASSERT_EQ(violations->size(), 1u);
  EXPECT_EQ((*violations)[0].subject, system.dag().FindNode("chris"));
  EXPECT_EQ((*violations)[0].constraint_name, "submit-vs-approve");
  EXPECT_EQ((*violations)[0].granted.size(), 2u);
}

TEST(AuditConstraintsTest, StrategyChangesCompliance) {
  // Under an open default (D+) *everyone* is effectively granted both
  // permissions (no denials exist), so every user violates; under a
  // closed default only chris does.
  AccessControlSystem system = MakeOrg();
  ConstraintSet constraints;
  ASSERT_TRUE(constraints
                  .AddSod({"sod", Perm(system, "invoice", "submit"),
                           Perm(system, "invoice", "approve")})
                  .ok());

  auto closed = AuditConstraints(system, constraints, S("D-LP+"));
  ASSERT_TRUE(closed.ok());
  EXPECT_EQ(closed->size(), 1u);

  auto open = AuditConstraints(system, constraints, S("D+LP+"));
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->size(), 3u) << "alice, bob, chris all pick up the root "
                                 "default grant";
}

TEST(AuditConstraintsTest, SinksOnlyToggle) {
  AccessControlSystem system = MakeOrg();
  ConstraintSet constraints;
  ASSERT_TRUE(constraints
                  .AddSod({"sod", Perm(system, "invoice", "submit"),
                           Perm(system, "invoice", "approve")})
                  .ok());
  AuditOptions options;
  options.sinks_only = false;
  auto all = AuditConstraints(system, constraints, S("D+LP+"), options);
  ASSERT_TRUE(all.ok());
  // Every subject including groups and the root violates under D+.
  EXPECT_EQ(all->size(), system.dag().node_count());
}

TEST(AuditConstraintsTest, CoiClassCounting) {
  auto dag = graph::FromEdgeListText(
      "edge consultants dana\n"
      "edge consultants emil\n");
  ASSERT_TRUE(dag.ok());
  AccessControlSystem system(std::move(dag).value());
  // dana works for two competitors; emil for one.
  ASSERT_TRUE(system.Grant("dana", "acme-files", "read").ok());
  ASSERT_TRUE(system.Grant("dana", "globex-files", "read").ok());
  ASSERT_TRUE(system.Grant("emil", "acme-files", "read").ok());
  ASSERT_TRUE(system.Grant("consultants", "initech-files", "read").ok());

  ConstraintSet constraints;
  ASSERT_TRUE(constraints
                  .AddCoi({"chinese-wall",
                           {Perm(system, "acme-files", "read"),
                            Perm(system, "globex-files", "read"),
                            Perm(system, "initech-files", "read")},
                           2})
                  .ok());
  auto violations = AuditConstraints(system, constraints, S("LP-"));
  ASSERT_TRUE(violations.ok());
  // dana holds acme + globex + inherited initech = 3 > 2; emil holds
  // acme + initech = 2 <= 2.
  ASSERT_EQ(violations->size(), 1u);
  EXPECT_EQ((*violations)[0].subject, system.dag().FindNode("dana"));
  EXPECT_EQ((*violations)[0].granted.size(), 3u);
}

TEST(AuditConstraintsTest, EmptyConstraintSetFindsNothing) {
  AccessControlSystem system = MakeOrg();
  auto violations = AuditConstraints(system, ConstraintSet{}, S("D+LP+"));
  ASSERT_TRUE(violations.ok());
  EXPECT_TRUE(violations->empty());
}

TEST(AuditConstraintsTest, DeterministicOrder) {
  AccessControlSystem system = MakeOrg();
  ConstraintSet constraints;
  ASSERT_TRUE(constraints
                  .AddSod({"sod", Perm(system, "invoice", "submit"),
                           Perm(system, "invoice", "approve")})
                  .ok());
  auto a = AuditConstraints(system, constraints, S("D+LP+"));
  auto b = AuditConstraints(system, constraints, S("D+LP+"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].subject, (*b)[i].subject);
    EXPECT_EQ((*a)[i].constraint_name, (*b)[i].constraint_name);
  }
}

}  // namespace
}  // namespace ucr::core
