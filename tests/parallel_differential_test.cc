// Differential tests for the parallel query-evaluation layer: every
// parallel path (EffectiveMatrix::Materialize/Refresh with threads,
// BatchResolver, CheckAccessBatch) must produce decisions bit-identical
// to the serial engines — for all 48 canonical strategies, on the
// paper's Fig. 1 example and on a generated enterprise hierarchy.

#include <gtest/gtest.h>

#include <vector>

#include "core/batch_resolver.h"
#include "core/effective_matrix.h"
#include "core/paper_example.h"
#include "core/strategy.h"
#include "core/system.h"
#include "util/random.h"
#include "workload/enterprise.h"
#include "workload/query_stream.h"

namespace ucr::core {
namespace {

using acm::Mode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

AccessControlSystem MakePaperSystem() {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S1", "obj", "write").ok());
  return system;
}

// A mid-sized enterprise hierarchy with explicit labels scattered over
// three (object, right) columns at realistic (sparse) rates.
AccessControlSystem MakeEnterpriseSystem() {
  Random rng(7);
  workload::EnterpriseOptions shape;
  shape.individuals = 200;
  shape.groups = 600;
  shape.top_level_groups = 8;
  shape.target_edges = 2200;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  EXPECT_TRUE(dag.ok());
  AccessControlSystem system(std::move(dag).value());

  const struct {
    const char* object;
    const char* right;
  } columns[] = {{"vault", "open"}, {"vault", "audit"}, {"wiki", "edit"}};
  for (const auto& column : columns) {
    for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
      if (!rng.Bernoulli(0.02)) continue;
      const std::string& name = system.dag().name(v);
      const Status status =
          rng.Bernoulli(0.3)
              ? system.DenyAccess(name, column.object, column.right)
              : system.Grant(name, column.object, column.right);
      EXPECT_TRUE(status.ok());
    }
  }
  return system;
}

void ExpectMatrixMatchesSerial(AccessControlSystem& system) {
  for (const Strategy& strategy : AllStrategies()) {
    auto serial = EffectiveMatrix::Materialize(system, strategy);
    auto parallel = EffectiveMatrix::Materialize(system, strategy, 4);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    for (acm::ObjectId o = 0; o < system.eacm().object_count(); ++o) {
      for (acm::RightId r = 0; r < system.eacm().right_count(); ++r) {
        for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
          ASSERT_EQ(parallel->Lookup(v, o, r).value(),
                    serial->Lookup(v, o, r).value())
              << strategy.ToMnemonic() << " subject "
              << system.dag().name(v) << " object " << o << " right " << r;
        }
      }
    }
  }
}

void ExpectBatchMatchesSerial(AccessControlSystem& system,
                              std::span<const BatchResolver::Query> queries) {
  BatchResolver resolver(system, /*threads=*/4);
  for (const Strategy& strategy : AllStrategies()) {
    auto batched = resolver.ResolveBatch(queries, strategy);
    ASSERT_TRUE(batched.ok());
    ASSERT_EQ(batched->size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      ASSERT_EQ((*batched)[i],
                system
                    .CheckAccess(queries[i].subject, queries[i].object,
                                 queries[i].right, strategy)
                    .value())
          << strategy.ToMnemonic() << " query " << i << " subject "
          << system.dag().name(queries[i].subject);
    }
  }
}

TEST(ParallelDifferentialTest, MaterializeAllStrategiesPaperExample) {
  AccessControlSystem system = MakePaperSystem();
  ExpectMatrixMatchesSerial(system);
}

TEST(ParallelDifferentialTest, MaterializeAllStrategiesEnterprise) {
  AccessControlSystem system = MakeEnterpriseSystem();
  ExpectMatrixMatchesSerial(system);
}

TEST(ParallelDifferentialTest, BatchResolverAllStrategiesPaperExample) {
  AccessControlSystem system = MakePaperSystem();
  // Every triple of the paper example is a query.
  std::vector<BatchResolver::Query> queries;
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    for (acm::ObjectId o = 0; o < system.eacm().object_count(); ++o) {
      for (acm::RightId r = 0; r < system.eacm().right_count(); ++r) {
        queries.push_back({v, o, r});
      }
    }
  }
  ExpectBatchMatchesSerial(system, queries);
}

TEST(ParallelDifferentialTest, BatchResolverAllStrategiesEnterprise) {
  AccessControlSystem system = MakeEnterpriseSystem();
  workload::QueryStreamOptions stream;
  stream.count = 300;
  stream.seed = 11;
  auto queries =
      workload::GenerateQueryStream(system.dag(), system.eacm(), stream);
  ASSERT_TRUE(queries.ok());
  ExpectBatchMatchesSerial(system, *queries);
}

TEST(ParallelDifferentialTest, ParallelRefreshMatchesSerialRefresh) {
  AccessControlSystem serial_system = MakeEnterpriseSystem();
  AccessControlSystem parallel_system = MakeEnterpriseSystem();
  const Strategy strategy = S("D+LP-");
  auto serial = EffectiveMatrix::Materialize(serial_system, strategy);
  auto parallel = EffectiveMatrix::Materialize(parallel_system, strategy, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());

  // The same administrative burst hits both systems: an update to an
  // existing column and a brand-new column.
  for (AccessControlSystem* system : {&serial_system, &parallel_system}) {
    ASSERT_TRUE(
        system->Grant(system->dag().name(0), "vault", "open").ok());
    ASSERT_TRUE(
        system->DenyAccess(system->dag().name(1), "ledger", "close").ok());
  }
  auto serial_refreshed = serial->Refresh(serial_system);
  auto parallel_refreshed = parallel->Refresh(parallel_system, 4);
  ASSERT_TRUE(serial_refreshed.ok());
  ASSERT_TRUE(parallel_refreshed.ok());
  EXPECT_EQ(*parallel_refreshed, *serial_refreshed);

  for (acm::ObjectId o = 0; o < serial_system.eacm().object_count(); ++o) {
    for (acm::RightId r = 0; r < serial_system.eacm().right_count(); ++r) {
      for (graph::NodeId v = 0; v < serial_system.dag().node_count(); ++v) {
        ASSERT_EQ(parallel->Lookup(v, o, r).value(),
                  serial->Lookup(v, o, r).value());
      }
    }
  }
}

TEST(ParallelDifferentialTest, CheckAccessBatchParallelMatchesInline) {
  AccessControlSystem system = MakeEnterpriseSystem();
  workload::QueryStreamOptions stream;
  stream.count = 500;
  stream.seed = 23;
  auto queries =
      workload::GenerateQueryStream(system.dag(), system.eacm(), stream);
  ASSERT_TRUE(queries.ok());
  for (const char* mnemonic : {"D+LP-", "D-GMP+", "MP-", "P+"}) {
    auto inline_results = system.CheckAccessBatch(*queries, S(mnemonic), 1);
    auto parallel_results = system.CheckAccessBatch(*queries, S(mnemonic), 4);
    ASSERT_TRUE(inline_results.ok());
    ASSERT_TRUE(parallel_results.ok());
    EXPECT_EQ(*inline_results, *parallel_results) << mnemonic;
  }
}

TEST(ParallelDifferentialTest, BatchResolverCachesStayWarmAcrossBatches) {
  AccessControlSystem system = MakeEnterpriseSystem();
  workload::QueryStreamOptions stream;
  stream.count = 400;
  stream.seed = 31;
  auto queries =
      workload::GenerateQueryStream(system.dag(), system.eacm(), stream);
  ASSERT_TRUE(queries.ok());
  BatchResolver resolver(system, /*threads=*/4);
  ASSERT_TRUE(resolver.ResolveBatch(*queries, S("D+LP-")).ok());
  const uint64_t misses_after_first = resolver.resolution_cache().stats().misses;
  ASSERT_TRUE(resolver.ResolveBatch(*queries, S("D+LP-")).ok());
  EXPECT_EQ(resolver.resolution_cache().stats().misses, misses_after_first)
      << "replaying the same batch must be all hits";
  EXPECT_GT(resolver.resolution_cache().stats().hits, 0u);
}

}  // namespace
}  // namespace ucr::core
