// The scratch-arena sub-graph extraction must be bit-identical to the
// classic hash-map extraction: same members in the same order, same
// CSR adjacency, same topological order, same derived metrics — on
// paper-scale shapes, adversarial shapes, and randomized DAGs, with
// one arena reused across many queries and across hierarchies of
// different sizes.

#include "graph/scratch_subgraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/ancestor_subgraph.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::graph {
namespace {

void ExpectViewMatchesClassic(const Dag& dag, NodeId sink,
                              const ScratchSubgraphView& view,
                              const SubgraphScratch& scratch) {
  const AncestorSubgraph classic(dag, sink);
  ASSERT_EQ(view.member_count(), classic.member_count());
  ASSERT_EQ(view.edge_count(), classic.edge_count());
  ASSERT_EQ(view.sink(), classic.sink());
  const auto n = static_cast<LocalId>(classic.member_count());
  for (LocalId v = 0; v < n; ++v) {
    ASSERT_EQ(view.global_id(v), classic.global_id(v)) << "local " << v;
    ASSERT_TRUE(std::ranges::equal(view.children(v), classic.children(v)))
        << "children of local " << v;
    ASSERT_TRUE(std::ranges::equal(view.parents(v), classic.parents(v)))
        << "parents of local " << v;
  }
  ASSERT_TRUE(std::ranges::equal(view.topological_order(),
                                 classic.topological_order()));
  for (NodeId g = 0; g < dag.node_count(); ++g) {
    ASSERT_EQ(scratch.ToLocal(g), classic.ToLocal(g)) << "global " << g;
  }
}

void ExpectScratchCtorMatchesClassic(const Dag& dag, NodeId sink,
                                     SubgraphScratch& scratch) {
  const AncestorSubgraph classic(dag, sink);
  const AncestorSubgraph fast(dag, sink, scratch);
  ASSERT_EQ(fast.member_count(), classic.member_count());
  ASSERT_EQ(fast.edge_count(), classic.edge_count());
  ASSERT_EQ(fast.sink(), classic.sink());
  ASSERT_EQ(fast.depth(), classic.depth());
  const auto n = static_cast<LocalId>(classic.member_count());
  for (LocalId v = 0; v < n; ++v) {
    ASSERT_EQ(fast.global_id(v), classic.global_id(v));
    ASSERT_TRUE(std::ranges::equal(fast.children(v), classic.children(v)));
    ASSERT_TRUE(std::ranges::equal(fast.parents(v), classic.parents(v)));
    ASSERT_EQ(fast.shortest_distance_to_sink(v),
              classic.shortest_distance_to_sink(v));
    ASSERT_EQ(fast.longest_distance_to_sink(v),
              classic.longest_distance_to_sink(v));
    ASSERT_EQ(fast.path_count(v), classic.path_count(v));
    ASSERT_EQ(fast.total_path_length(v), classic.total_path_length(v));
  }
  ASSERT_TRUE(std::ranges::equal(fast.roots(), classic.roots()));
  ASSERT_TRUE(std::ranges::equal(fast.topological_order(),
                                 classic.topological_order()));
  for (NodeId g = 0; g < dag.node_count(); ++g) {
    ASSERT_EQ(fast.ToLocal(g), classic.ToLocal(g));
  }
}

TEST(SubgraphScratchTest, MatchesClassicOnLayeredDagEverySink) {
  Random rng(3);
  auto dag = GenerateLayeredDag({}, rng);
  ASSERT_TRUE(dag.ok());
  SubgraphScratch scratch;  // One arena across every query.
  for (NodeId sink = 0; sink < dag->node_count(); ++sink) {
    const ScratchSubgraphView view = scratch.Extract(*dag, sink);
    ExpectViewMatchesClassic(*dag, sink, view, scratch);
  }
}

TEST(SubgraphScratchTest, MatchesClassicOnDiamondStackAndKDag) {
  Random rng(5);
  auto diamonds = GenerateDiamondStack(6);
  auto kdag = GenerateKDag(24, rng);
  ASSERT_TRUE(diamonds.ok());
  ASSERT_TRUE(kdag.ok());
  SubgraphScratch scratch;
  for (const Dag* dag : {&*diamonds, &*kdag}) {
    for (NodeId sink = 0; sink < dag->node_count(); ++sink) {
      const ScratchSubgraphView view = scratch.Extract(*dag, sink);
      ExpectViewMatchesClassic(*dag, sink, view, scratch);
    }
  }
}

TEST(SubgraphScratchTest, ScratchBackedConstructorMatchesClassic) {
  Random rng(11);
  LayeredDagOptions shape;
  shape.layers = 5;
  shape.nodes_per_layer = 10;
  shape.skip_edge_probability = 0.2;
  auto dag = GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());
  SubgraphScratch scratch;
  for (NodeId sink = 0; sink < dag->node_count(); ++sink) {
    ExpectScratchCtorMatchesClassic(*dag, sink, scratch);
  }
}

TEST(SubgraphScratchTest, SurvivesSwitchingBetweenDagsOfDifferentSizes) {
  Random rng(17);
  auto small = GenerateRandomTree(12, rng);
  LayeredDagOptions shape;
  shape.layers = 6;
  shape.nodes_per_layer = 12;
  auto large = GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  SubgraphScratch scratch;
  // Interleave: stale stamps from the larger hierarchy must never leak
  // into the smaller one (epochs, not clears, invalidate state).
  for (int round = 0; round < 3; ++round) {
    for (const Dag* dag : {&*small, &*large, &*small}) {
      const NodeId sink = static_cast<NodeId>(
          rng.Uniform(static_cast<uint64_t>(dag->node_count())));
      const ScratchSubgraphView view = scratch.Extract(*dag, sink);
      ExpectViewMatchesClassic(*dag, sink, view, scratch);
    }
  }
}

TEST(SubgraphScratchTest, ToLocalRejectsNonMembersAndForeignIds) {
  DagBuilder builder;
  builder.AddNode("root");
  builder.AddNode("mid");
  builder.AddNode("sink");
  builder.AddNode("bystander");
  ASSERT_TRUE(builder.AddEdge("root", "mid").ok());
  ASSERT_TRUE(builder.AddEdge("mid", "sink").ok());
  ASSERT_TRUE(builder.AddEdge("root", "bystander").ok());
  auto dag = std::move(builder).Build();
  ASSERT_TRUE(dag.ok());

  SubgraphScratch scratch;
  EXPECT_EQ(scratch.ToLocal(0), kInvalidNode) << "no extraction yet";
  scratch.Extract(*dag, dag->FindNode("sink"));
  EXPECT_EQ(scratch.ToLocal(dag->FindNode("bystander")), kInvalidNode);
  EXPECT_EQ(scratch.ToLocal(static_cast<NodeId>(dag->node_count() + 7)),
            kInvalidNode);
  EXPECT_NE(scratch.ToLocal(dag->FindNode("mid")), kInvalidNode);
}

}  // namespace
}  // namespace ucr::graph
