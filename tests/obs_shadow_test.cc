// Tests for online shadow verification (src/obs/shadow.h +
// core::ShadowVerifyDecision, DESIGN.md §9): sampling cadence, the
// agreeing steady state (checks counted, zero mismatches), and — via
// the perturbed-oracle hook — that a genuine fast/classic divergence
// is counted, retained with both Fig. 4 derivations, and audit-logged.

#include "obs/shadow.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/paper_example.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"

namespace ucr::obs {
namespace {

#if !UCR_METRICS_ENABLED

TEST(ObsShadowTest, DisabledBuildNeverShadows) {
  ShadowVerifier::Global().SetInterval(1);
  EXPECT_FALSE(ShadowVerifier::ShouldShadow());
  ShadowVerifier::Global().SetInterval(0);
}

#else

using core::ParseStrategy;
using core::ResolveAccess;
using core::ResolveAccessOptions;

/// Fresh Fig. 1 fixture: the `user`/obj/read query the paper walks
/// through, against the hierarchy and matrix of the worked example.
struct Fixture {
  Fixture() : ex(core::MakePaperExample()) {}
  core::PaperExample ex;
};

/// Runs one fast-path ResolveAccess with shadowing forced on for
/// exactly that query, then disables it again.
acm::Mode ResolveShadowed(Fixture& f, const core::Strategy& strategy) {
  ShadowVerifier::Global().SetInterval(1);
  ResolveAccessOptions options;
  options.use_fast_path = true;
  auto mode = ResolveAccess(f.ex.dag, f.ex.eacm, f.ex.user, f.ex.obj,
                            f.ex.read, strategy.Canonical(), options);
  ShadowVerifier::Global().SetInterval(0);
  EXPECT_TRUE(mode.ok());
  return *mode;
}

TEST(ObsShadowTest, SamplesEveryNthQueryPerThread) {
  ShadowVerifier::Global().SetInterval(1);
  ASSERT_TRUE(ShadowVerifier::ShouldShadow());  // Reset countdown.
  ShadowVerifier::Global().SetInterval(3);
  const std::vector<bool> expected = {false, false, true, false, false, true};
  for (const bool want : expected) {
    EXPECT_EQ(ShadowVerifier::ShouldShadow(), want);
  }
  ShadowVerifier::Global().SetInterval(0);
  EXPECT_FALSE(ShadowVerifier::ShouldShadow());
}

TEST(ObsShadowTest, AgreeingEnginesCountChecksAndNoMismatches) {
  ShadowVerifier::Global().Clear();
  Fixture f;
  for (const char* mnemonic : {"D+LP-", "P+", "N-", "D-GN+"}) {
    ResolveShadowed(f, ParseStrategy(mnemonic).value());
  }
  EXPECT_EQ(ShadowVerifier::Global().checks_total(), 4u);
  EXPECT_EQ(ShadowVerifier::Global().mismatch_total(), 0u);
  EXPECT_TRUE(ShadowVerifier::Global().RecentMismatches().empty());
}

TEST(ObsShadowTest, PerturbedOracleProvesDivergenceIsCaught) {
  ShadowVerifier::Global().Clear();
  Fixture f;
  const core::Strategy strategy = ParseStrategy("D+LP-").value();

  ShadowVerifier::Global().SetPerturbOracleForTesting(true);
  const acm::Mode fast_mode = ResolveShadowed(f, strategy);
  ShadowVerifier::Global().SetPerturbOracleForTesting(false);

  EXPECT_EQ(ShadowVerifier::Global().checks_total(), 1u);
  ASSERT_EQ(ShadowVerifier::Global().mismatch_total(), 1u);
  const std::vector<ShadowVerifier::Mismatch> dump =
      ShadowVerifier::Global().RecentMismatches();
  ASSERT_EQ(dump.size(), 1u);
  const ShadowVerifier::Mismatch& m = dump[0];
  EXPECT_EQ(m.subject, f.ex.user);
  EXPECT_EQ(m.object, f.ex.obj);
  EXPECT_EQ(m.right, f.ex.read);
  EXPECT_EQ(m.strategy_index, strategy.Canonical().CanonicalIndex());
  EXPECT_EQ(m.fast_granted, fast_mode == acm::Mode::kPositive);
  EXPECT_NE(m.fast_granted, m.oracle_granted);
  // Both derivations are rendered so the dump alone explains the
  // divergence (compact Fig. 4 form: counters, Auth set, line).
  EXPECT_NE(m.fast_derivation.find("line="), std::string::npos)
      << m.fast_derivation;
  EXPECT_NE(m.oracle_derivation.find("line="), std::string::npos)
      << m.oracle_derivation;
}

TEST(ObsShadowTest, MismatchEmitsAuditEventWithBothDerivations) {
  ShadowVerifier::Global().Clear();
  std::vector<std::string> lines;
  class VectorSink : public AuditSink {
   public:
    explicit VectorSink(std::vector<std::string>* out) : out_(out) {}
    void Write(std::string_view line) override { out_->emplace_back(line); }

   private:
    std::vector<std::string>* out_;
  };
  AuditLogOptions options;
  options.log_sampled_decisions = false;
  options.slow_query_threshold_ns = 0;
  options.sinks.push_back(std::make_unique<VectorSink>(&lines));
  ASSERT_TRUE(AuditLog::Global().Start(std::move(options)));

  Fixture f;
  ShadowVerifier::Global().SetPerturbOracleForTesting(true);
  ResolveShadowed(f, ParseStrategy("D+LP-").value());
  ShadowVerifier::Global().SetPerturbOracleForTesting(false);
  AuditLog::Global().Flush();
  AuditLog::Global().Stop();

  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("\"type\":\"shadow_mismatch\"") == std::string::npos) {
      continue;
    }
    found = true;
    EXPECT_TRUE(JsonLooksValid(line)) << line;
    EXPECT_NE(line.find("fast:"), std::string::npos) << line;
    EXPECT_NE(line.find("oracle:"), std::string::npos) << line;
  }
  EXPECT_TRUE(found) << "no shadow_mismatch audit event was written";
}

TEST(ObsShadowTest, MismatchRingIsBounded) {
  ShadowVerifier::Global().Clear();
  for (uint64_t i = 0; i < 3 * ShadowVerifier::kMismatchRingCapacity; ++i) {
    ShadowVerifier::Mismatch m;
    m.subject = static_cast<uint32_t>(i);
    ShadowVerifier::Global().RecordMismatch(std::move(m));
  }
  const auto dump = ShadowVerifier::Global().RecentMismatches();
  EXPECT_EQ(dump.size(), ShadowVerifier::kMismatchRingCapacity);
  EXPECT_EQ(ShadowVerifier::Global().mismatch_total(),
            3 * ShadowVerifier::kMismatchRingCapacity);
  // The retained window is the most recent capacity-many mismatches.
  for (const auto& m : dump) {
    EXPECT_GE(m.subject, 2 * ShadowVerifier::kMismatchRingCapacity);
  }
  ShadowVerifier::Global().Clear();
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::obs
