// Differential tests for the epoch snapshot read path (DESIGN.md §11):
// `SnapshotResolveAccess` over a published `HierarchySnapshot` must
// produce decisions, traces, and propagation stats bit-identical to
// the PR 2 fast path and to the classic aggregated oracle — for all 48
// canonical strategies, all three propagation modes, on the paper's
// Fig. 1 example and on randomized hierarchies — and the facade's
// `CheckAccessSnapshot` must keep agreeing with `CheckAccess` across
// live mutations (each of which publishes a fresh epoch).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "acm/acm.h"
#include "core/paper_example.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;

constexpr PropagationMode kAllModes[] = {PropagationMode::kBoth,
                                         PropagationMode::kFirstWins,
                                         PropagationMode::kSecondWins};

const char* ModeName(PropagationMode mode) {
  switch (mode) {
    case PropagationMode::kBoth: return "both";
    case PropagationMode::kFirstWins: return "first-wins";
    case PropagationMode::kSecondWins: return "second-wins";
  }
  return "?";
}

void ExpectTraceEq(const ResolveTrace& snapshot, const ResolveTrace& oracle) {
  ASSERT_EQ(snapshot.c1, oracle.c1);
  ASSERT_EQ(snapshot.c2, oracle.c2);
  ASSERT_EQ(snapshot.auth_computed, oracle.auth_computed);
  ASSERT_EQ(snapshot.auth_has_positive, oracle.auth_has_positive);
  ASSERT_EQ(snapshot.auth_has_negative, oracle.auth_has_negative);
  ASSERT_EQ(snapshot.returned_line, oracle.returned_line);
  ASSERT_EQ(snapshot.result, oracle.result);
}

/// Resolves every ⟨subject, object, right⟩ under every canonical
/// strategy through (a) the snapshot path with derivation out-params
/// (table-bypassing), (b) the snapshot path twice with the tables in
/// play (miss-then-hit), (c) the PR 2 fast path, and (d) the classic
/// oracle — asserting identical decisions everywhere and identical
/// traces/stats where derivations are reported.
void ExpectSnapshotAgrees(const HierarchySnapshot& snapshot) {
  ResolveAccessOptions fast;
  fast.propagation_mode = snapshot.propagation_mode;
  ResolveAccessOptions classic = fast;
  classic.use_fast_path = false;
  for (graph::NodeId v = 0; v < snapshot.dag.node_count(); ++v) {
    for (size_t o = 0; o < snapshot.eacm.object_count(); ++o) {
      for (size_t r = 0; r < snapshot.eacm.right_count(); ++r) {
        const auto object = static_cast<acm::ObjectId>(o);
        const auto right = static_cast<acm::RightId>(r);
        for (const Strategy& strategy : AllStrategies()) {
          SCOPED_TRACE(std::string(strategy.ToMnemonic()) + " mode " +
                       ModeName(snapshot.propagation_mode) + " subject " +
                       snapshot.dag.name(v) + " column " + std::to_string(o) +
                       "/" + std::to_string(r));
          ResolveTrace snap_trace, fast_trace, classic_trace;
          PropagateStats snap_stats, fast_stats, classic_stats;
          const auto snap_mode =
              SnapshotResolveAccess(snapshot, v, object, right, strategy, {},
                                    &snap_trace, &snap_stats);
          const auto fast_mode =
              ResolveAccess(snapshot.dag, snapshot.eacm, v, object, right,
                            strategy, fast, &fast_trace, &fast_stats);
          const auto classic_mode =
              ResolveAccess(snapshot.dag, snapshot.eacm, v, object, right,
                            strategy, classic, &classic_trace, &classic_stats);
          ASSERT_TRUE(snap_mode.ok()) << snap_mode.status().ToString();
          ASSERT_TRUE(fast_mode.ok());
          ASSERT_TRUE(classic_mode.ok());
          ASSERT_EQ(*snap_mode, *fast_mode);
          ASSERT_EQ(*snap_mode, *classic_mode);
          ExpectTraceEq(snap_trace, fast_trace);
          ExpectTraceEq(snap_trace, classic_trace);
          ASSERT_EQ(snap_stats.tuples_processed, fast_stats.tuples_processed);
          ASSERT_EQ(snap_stats.max_distance, fast_stats.max_distance);
          ASSERT_EQ(snap_stats.tuples_processed,
                    classic_stats.tuples_processed);
          ASSERT_EQ(snap_stats.max_distance, classic_stats.max_distance);
          // Memoized path: the first call may store, the second must
          // hit (or re-derive identically when the store was skipped);
          // either way the decision cannot change.
          const auto stored =
              SnapshotResolveAccess(snapshot, v, object, right, strategy);
          const auto memo =
              SnapshotResolveAccess(snapshot, v, object, right, strategy);
          ASSERT_TRUE(stored.ok());
          ASSERT_TRUE(memo.ok());
          ASSERT_EQ(*stored, *snap_mode);
          ASSERT_EQ(*memo, *snap_mode);
        }
      }
    }
  }
}

TEST(SnapshotDifferentialTest, PaperExampleAllStrategiesAllModes) {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  ASSERT_TRUE(system.Grant("S4", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S1", "obj", "write").ok());
  for (const PropagationMode mode : kAllModes) {
    const auto snapshot =
        BuildSnapshot(system.dag(), system.eacm(), system.strategy(), mode,
                      /*epoch=*/1, /*previous=*/nullptr,
                      /*resolution_capacity=*/1 << 12);
    ExpectSnapshotAgrees(*snapshot);
  }
}

TEST(SnapshotDifferentialTest, RandomLayeredDagsAgree) {
  for (const uint64_t seed : {7u, 11u}) {
    Random rng(seed);
    graph::LayeredDagOptions shape;
    shape.layers = 4;
    shape.nodes_per_layer = 6;
    shape.skip_edge_probability = 0.15;
    auto dag = graph::GenerateLayeredDag(shape, rng);
    ASSERT_TRUE(dag.ok());
    acm::ExplicitAcm eacm;
    const acm::ObjectId o = eacm.InternObject("doc").value();
    const acm::RightId r = eacm.InternRight("read").value();
    const acm::RightId w = eacm.InternRight("write").value();
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      if (rng.Bernoulli(0.2)) {
        ASSERT_TRUE(eacm.Set(v, o, r,
                             rng.Bernoulli(0.4) ? Mode::kNegative
                                                : Mode::kPositive)
                        .ok());
      }
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(eacm.Set(v, o, w,
                             rng.Bernoulli(0.4) ? Mode::kNegative
                                                : Mode::kPositive)
                        .ok());
      }
    }
    for (const PropagationMode mode : kAllModes) {
      const auto snapshot =
          BuildSnapshot(*dag, eacm, Strategy{}, mode, /*epoch=*/1,
                        /*previous=*/nullptr, /*resolution_capacity=*/1 << 12);
      ExpectSnapshotAgrees(*snapshot);
    }
  }
}

/// The facade path: every mutation publishes a new epoch warmed by
/// carry-over from the previous one; after each batch the snapshot
/// decisions must equal the classic facade's for every triple under
/// every canonical strategy.
TEST(SnapshotDifferentialTest, FacadeAgreesAcrossMutations) {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  ASSERT_TRUE(system.Grant("S4", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  system.EnableSnapshotReads();
  ASSERT_TRUE(system.snapshot_reads_enabled());
  ASSERT_NE(system.snapshots(), nullptr);

  const auto expect_all_agree = [&] {
    for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
      for (size_t o = 0; o < system.eacm().object_count(); ++o) {
        for (size_t r = 0; r < system.eacm().right_count(); ++r) {
          const auto object = static_cast<acm::ObjectId>(o);
          const auto right = static_cast<acm::RightId>(r);
          for (const Strategy& strategy : AllStrategies()) {
            SCOPED_TRACE(std::string(strategy.ToMnemonic()) + " subject " +
                         system.dag().name(v));
            const auto snap =
                system.CheckAccessSnapshot(v, object, right, strategy);
            const auto classic =
                system.CheckAccess(v, object, right, strategy);
            ASSERT_TRUE(snap.ok()) << snap.status().ToString();
            ASSERT_TRUE(classic.ok());
            ASSERT_EQ(*snap, *classic);
          }
        }
      }
    }
  };

  expect_all_agree();
  const uint64_t epoch_before = system.snapshots()->current_epoch();

  // Rights edit: lapses one column, carries the rest. (Revoke, not
  // deny: SetMode rejects a deny over the existing grant as a
  // contradicting explicit authorization.)
  ASSERT_TRUE(system.Revoke("S2", "obj", "read").ok());
  expect_all_agree();

  // Hierarchy edit batch: one publication for the whole batch.
  std::vector<AccessControlSystem::MutationOp> ops;
  ops.push_back(AccessControlSystem::MutationOp::AddMember("S1", "S6"));
  ops.push_back(
      AccessControlSystem::MutationOp::Grant("S6", "obj", "write"));
  ops.push_back(
      AccessControlSystem::MutationOp::Deny("S2", "obj", "read"));
  AccessControlSystem::MutationBatchStats stats;
  ASSERT_TRUE(system.ApplyMutations(ops, &stats).ok());
  EXPECT_EQ(stats.applied, 3u);
  expect_all_agree();

  // Strategy change publishes too (the snapshot carries the session
  // strategy, so the no-strategy overload must follow it).
  system.SetStrategy(ParseStrategy("D+LP-").value());
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    const auto snap = system.CheckAccessSnapshot(
        v, acm::ObjectId{0}, acm::RightId{0});
    const auto classic = system.CheckAccess(v, acm::ObjectId{0},
                                            acm::RightId{0},
                                            system.strategy());
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE(classic.ok());
    ASSERT_EQ(*snap, *classic);
  }
  EXPECT_GT(system.snapshots()->current_epoch(), epoch_before);

  // Name-based entry point resolves against the pinned snapshot.
  const auto by_name = system.CheckAccessSnapshotByName("S6", "obj", "write");
  const auto by_name_classic = system.CheckAccessByName("S6", "obj", "write");
  ASSERT_TRUE(by_name.ok());
  ASSERT_TRUE(by_name_classic.ok());
  EXPECT_EQ(*by_name, *by_name_classic);
  EXPECT_FALSE(system.CheckAccessSnapshotByName("nobody", "obj", "read").ok());
}

/// Carry-over correctness: decisions warmed into epoch N+1 from epoch
/// N's table must be exactly the still-derivable ones.
TEST(SnapshotDifferentialTest, CarryOverOnlyKeepsDerivableState) {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S1", "doc", "write").ok());

  auto first = BuildSnapshot(system.dag(), system.eacm(), system.strategy(),
                             PropagationMode::kBoth, /*epoch=*/1, nullptr,
                             /*resolution_capacity=*/1 << 12);
  // Warm every triple under the default strategy.
  for (graph::NodeId v = 0; v < first->dag.node_count(); ++v) {
    for (size_t o = 0; o < first->eacm.object_count(); ++o) {
      for (size_t r = 0; r < first->eacm.right_count(); ++r) {
        ASSERT_TRUE(SnapshotResolveAccess(*first, v,
                                          static_cast<acm::ObjectId>(o),
                                          static_cast<acm::RightId>(r),
                                          first->default_strategy)
                        .ok());
      }
    }
  }
  ASSERT_GT(first->resolution.size(), 0u);

  // Mutate one column ("obj", "read"): its entries must drop, the
  // ("doc", "write") column must carry.
  ASSERT_TRUE(system.DenyAccess("S4", "obj", "read").ok());
  SnapshotBuildStats stats;
  auto second = BuildSnapshot(system.dag(), system.eacm(), system.strategy(),
                              PropagationMode::kBoth, /*epoch=*/2, first.get(),
                              /*resolution_capacity=*/1 << 12,
                              /*reach_index=*/nullptr, &stats);
  EXPECT_GT(stats.resolution_carried, 0u);
  EXPECT_GT(stats.resolution_dropped, 0u);
  // Whatever carried must still produce oracle-identical decisions.
  ExpectSnapshotAgrees(*second);
}

}  // namespace
}  // namespace ucr::core
