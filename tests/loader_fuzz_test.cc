// Robustness fuzzing of every loader — the text formats and the binary
// snapshot format: random mutations of valid inputs (byte flips,
// truncations, line shuffles, duplications) must always produce either
// a successful parse or a clean error — never a crash, hang, or
// invariant break in the parsed result.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "acm/acm.h"
#include "core/binary_snapshot.h"
#include "core/mixed_system.h"
#include "core/paper_example.h"
#include "core/storage.h"
#include "core/system.h"
#include "graph/io.h"
#include "util/random.h"
#include "util/string_util.h"

namespace ucr {
namespace {

std::string Mutate(const std::string& input, Random& rng) {
  std::string out = input;
  switch (rng.Uniform(5)) {
    case 0: {  // Byte flip.
      if (out.empty()) break;
      const size_t pos = static_cast<size_t>(rng.Uniform(out.size()));
      out[pos] = static_cast<char>(' ' + rng.Uniform(95));
      break;
    }
    case 1: {  // Truncation.
      out.resize(static_cast<size_t>(rng.Uniform(out.size() + 1)));
      break;
    }
    case 2: {  // Delete one line.
      std::vector<std::string> lines = Split(out, '\n');
      if (lines.empty()) break;
      lines.erase(lines.begin() +
                  static_cast<long>(rng.Uniform(lines.size())));
      out = Join(lines, "\n");
      break;
    }
    case 3: {  // Duplicate one line.
      std::vector<std::string> lines = Split(out, '\n');
      if (lines.empty()) break;
      const size_t pick = static_cast<size_t>(rng.Uniform(lines.size()));
      lines.insert(lines.begin() + static_cast<long>(pick), lines[pick]);
      out = Join(lines, "\n");
      break;
    }
    case 4: {  // Shuffle all lines.
      std::vector<std::string> lines = Split(out, '\n');
      rng.Shuffle(lines);
      out = Join(lines, "\n");
      break;
    }
  }
  return out;
}

TEST(LoaderFuzzTest, GraphLoaderNeverCrashes) {
  const core::PaperExample ex = core::MakePaperExample();
  const std::string valid = graph::ToEdgeListText(ex.dag);
  Random rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = valid;
    for (uint64_t i = 0; i <= rng.Uniform(3); ++i) {
      mutated = Mutate(mutated, rng);
    }
    auto result = graph::FromEdgeListText(mutated);
    if (result.ok()) {
      // A successful parse must uphold the structure invariants.
      EXPECT_EQ(result->TopologicalOrder().size(), result->node_count());
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(LoaderFuzzTest, AcmLoaderNeverCrashes) {
  const core::PaperExample ex = core::MakePaperExample();
  const std::string valid = acm::ToText(ex.eacm, ex.dag);
  Random rng(2);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string mutated = Mutate(valid, rng);
    auto result = acm::FromText(mutated, ex.dag);
    if (result.ok()) {
      EXPECT_LE(result->size(), ex.eacm.size() + 2);
    }
  }
}

TEST(LoaderFuzzTest, SystemLoaderNeverCrashes) {
  core::PaperExample ex = core::MakePaperExample();
  core::AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  const std::string valid = core::SaveSystemToText(system);
  Random rng(3);
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = valid;
    for (uint64_t i = 0; i <= rng.Uniform(2); ++i) {
      mutated = Mutate(mutated, rng);
    }
    auto result = core::LoadSystemFromText(mutated);
    if (result.ok()) {
      // Loaded systems must be fully functional.
      for (const core::Strategy& s : core::AllStrategies()) {
        auto mode = result->CheckAccessByName("User", "obj", "read", s);
        if (!mode.ok()) break;  // Names may have mutated away; fine.
      }
    }
  }
}

TEST(LoaderFuzzTest, MixedSystemLoaderNeverCrashes) {
  auto subjects = graph::FromEdgeListText("edge g u\n");
  auto objects = graph::FromEdgeListText("edge folder doc\n");
  ASSERT_TRUE(subjects.ok());
  ASSERT_TRUE(objects.ok());
  core::MixedAccessControlSystem mixed(std::move(subjects).value(),
                                       std::move(objects).value());
  ASSERT_TRUE(mixed.Grant("g", "folder", "read").ok());
  const std::string valid = core::SaveMixedSystemToText(mixed);
  Random rng(4);
  for (int trial = 0; trial < 500; ++trial) {
    const std::string mutated = Mutate(valid, rng);
    auto result = core::LoadMixedSystemFromText(mutated);
    if (result.ok()) {
      EXPECT_LE(result->authorization_count(), 3u);
    }
  }
}

// Binary-format mutations: flips anywhere (header, section table, CSR
// arrays, name tables), truncations, and length-field forgeries. The
// checksums catch most flips; the point of the fuzz is the ones they
// can't distinguish from structure (lengths, counts, offsets), which
// the bounds-checked reader and `Dag::FromCsr` re-validation must turn
// into clean `kCorruption` errors — under asan/ubsan this is the proof
// the mmap'd loader never reads out of bounds on hostile input.
std::string MutateBinary(const std::string& input, Random& rng) {
  std::string out = input;
  switch (rng.Uniform(4)) {
    case 0: {  // Single byte to a random value.
      if (out.empty()) break;
      const size_t pos = static_cast<size_t>(rng.Uniform(out.size()));
      out[pos] = static_cast<char>(rng.Uniform(256));
      break;
    }
    case 1: {  // Single bit flip.
      if (out.empty()) break;
      const size_t pos = static_cast<size_t>(rng.Uniform(out.size()));
      out[pos] = static_cast<char>(
          static_cast<unsigned char>(out[pos]) ^ (1u << rng.Uniform(8)));
      break;
    }
    case 2: {  // Truncation.
      out.resize(static_cast<size_t>(rng.Uniform(out.size() + 1)));
      break;
    }
    case 3: {  // Splice a run of random bytes (forged lengths/counts).
      if (out.empty()) break;
      const size_t pos = static_cast<size_t>(rng.Uniform(out.size()));
      const size_t run =
          std::min(out.size() - pos, 1 + static_cast<size_t>(rng.Uniform(8)));
      for (size_t i = 0; i < run; ++i) {
        out[pos + i] = static_cast<char>(rng.Uniform(256));
      }
      break;
    }
  }
  return out;
}

TEST(LoaderFuzzTest, BinarySnapshotLoaderNeverCrashes) {
  core::PaperExample ex = core::MakePaperExample();
  core::AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  ASSERT_TRUE(system.Grant("S4", "doc", "write").ok());
  const std::string valid = core::EncodeBinarySnapshot(system, /*lsn=*/42);

  // The pristine encoding decodes; every mutant either decodes to a
  // structurally valid system or fails with a message-bearing error.
  ASSERT_TRUE(core::DecodeBinarySnapshot(valid, {}).ok());
  Random rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    for (uint64_t i = 0; i <= rng.Uniform(3); ++i) {
      mutated = MutateBinary(mutated, rng);
    }
    auto result = core::DecodeBinarySnapshot(mutated, {});
    if (result.ok()) {
      EXPECT_EQ(result->dag().TopologicalOrder().size(),
                result->dag().node_count());
      for (const core::Strategy& s : core::AllStrategies()) {
        auto mode = result->CheckAccessByName("User", "obj", "read", s);
        if (!mode.ok()) break;
      }
    } else {
      EXPECT_FALSE(result.status().message().empty());
    }
  }
}

TEST(SerializationGuardTest, NamesWithWhitespaceRejectedBeforeWrite) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("ok", "has space").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  EXPECT_FALSE(graph::IsSerializableName("has space"));
  EXPECT_FALSE(graph::IsSerializableName(""));
  EXPECT_FALSE(graph::IsSerializableName("#comment"));
  EXPECT_TRUE(graph::IsSerializableName("Payroll_Team-2.0"));
  EXPECT_EQ(graph::ValidateSerializable(*dag).code(),
            StatusCode::kInvalidArgument);
  const std::string path = ::testing::TempDir() + "/ucr_guard_test.sdag";
  EXPECT_FALSE(graph::WriteEdgeListFile(*dag, path).ok());

  core::AccessControlSystem system(std::move(dag).value());
  EXPECT_FALSE(core::SaveSystemToFile(system, path).ok());
}

}  // namespace
}  // namespace ucr
