// Tests for the retained telemetry timeline (src/obs/timeseries.h,
// DESIGN.md §13): per-interval counter deltas, gauge values, and
// histogram bucket-delta quantiles across both retention tiers; ring
// wrap; lock-free read consistency; JSON rendering; and the
// histogram-exemplar → /tracez linkage that connects a tail-latency
// bucket to its full Fig. 4 derivation.

#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "core/paper_example.h"
#include "core/strategy.h"
#include "core/system.h"
#include "obs/http_exporter.h"
#include "obs/trace.h"

namespace ucr::obs {
namespace {

#if !UCR_METRICS_ENABLED

TEST(ObsTimeseriesTest, DisabledBuildRefusesToStart) {
  TimeSeriesSampler sampler;
  std::string error;
  EXPECT_FALSE(sampler.Start(TimeSeriesSampler::Options{}, &error));
  EXPECT_NE(error.find("UCR_METRICS=OFF"), std::string::npos) << error;
  EXPECT_TRUE(sampler.Recent("anything", 10).empty());
  EXPECT_EQ(sampler.SeriesKind("anything"), -1);
}

#else

TEST(ObsTimeseriesTest, BucketDeltaQuantileNearestRank) {
  std::array<uint64_t, Histogram::kBuckets> deltas{};
  EXPECT_EQ(BucketDeltaQuantile(deltas, 0.99), 0u);  // Empty interval.

  // 90 observations in bucket 4 (le 15), 10 in bucket 10 (le 1023):
  // p50 lands in the low bucket, p99 in the tail bucket.
  deltas[4] = 90;
  deltas[10] = 10;
  EXPECT_EQ(BucketDeltaQuantile(deltas, 0.50), Histogram::BucketUpperBound(4));
  EXPECT_EQ(BucketDeltaQuantile(deltas, 0.99),
            Histogram::BucketUpperBound(10));

  // +Inf-bucket observations report the largest finite bound.
  std::array<uint64_t, Histogram::kBuckets> inf{};
  inf[Histogram::kBuckets - 1] = 5;
  EXPECT_EQ(BucketDeltaQuantile(inf, 0.99),
            Histogram::BucketUpperBound(Histogram::kBuckets - 2));
}

TEST(ObsTimeseriesTest, CountersBecomeIntervalDeltas) {
  Counter& counter = Registry::Global().GetCounter(
      "ucr_test_ts_counter_total", "timeseries test counter");
  TimeSeriesSampler sampler;
  counter.Inc(100);
  sampler.TickOnceForTesting();  // Primes the baseline, emits nothing.
  EXPECT_TRUE(sampler.Recent("ucr_test_ts_counter_total", 10).empty());

  counter.Inc(5);
  sampler.TickOnceForTesting();
  counter.Inc(3);
  sampler.TickOnceForTesting();
  const auto points = sampler.Recent("ucr_test_ts_counter_total", 10);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].delta, 5u);  // Oldest first.
  EXPECT_EQ(points[1].delta, 3u);
  EXPECT_LT(points[0].tick, points[1].tick);
  EXPECT_EQ(sampler.SeriesKind("ucr_test_ts_counter_total"), 0);
  EXPECT_EQ(sampler.SeriesKind("no_such_series"), -1);
}

TEST(ObsTimeseriesTest, GaugesKeepInstantaneousValue) {
  Gauge& gauge =
      Registry::Global().GetGauge("ucr_test_ts_gauge", "timeseries test");
  TimeSeriesSampler sampler;
  gauge.Set(7);
  sampler.TickOnceForTesting();  // Gauges emit from the first tick.
  gauge.Set(-3);
  sampler.TickOnceForTesting();
  const auto points = sampler.Recent("ucr_test_ts_gauge", 10);
  ASSERT_GE(points.size(), 2u);
  EXPECT_EQ(points[points.size() - 2].value, 7);
  EXPECT_EQ(points.back().value, -3);
}

TEST(ObsTimeseriesTest, HistogramsGetBucketDeltaQuantiles) {
  Histogram& hist = Registry::Global().GetHistogram(
      "ucr_test_ts_hist_ns", "timeseries test histogram");
  TimeSeriesSampler sampler;
  // Skew the pre-existing distribution: everything slow.
  for (int i = 0; i < 50; ++i) hist.Observe(1'000'000);
  sampler.TickOnceForTesting();  // Baseline swallows the slow history.

  // This interval is fast except two stragglers; interval quantiles
  // must reflect only the delta, not the slow history.
  for (int i = 0; i < 98; ++i) hist.Observe(100);
  hist.Observe(500'000);
  hist.Observe(500'000);
  sampler.TickOnceForTesting();
  const auto points = sampler.Recent("ucr_test_ts_hist_ns", 10);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].count_delta, 100u);
  EXPECT_LT(points[0].p50, 256u);      // 100 → bucket le 127.
  EXPECT_GT(points[0].p99, 100'000u);  // The straggler owns the tail.
}

TEST(ObsTimeseriesTest, Tier1FoldsStrideTicksIntoOnePoint) {
  Counter& counter = Registry::Global().GetCounter(
      "ucr_test_ts_tier1_total", "timeseries tier1 test");
  TimeSeriesSampler::Options options;
  options.tier1_stride = 2;
  TimeSeriesSampler sampler;
  sampler.ConfigureForTesting(options);

  counter.Inc(1);
  sampler.TickOnceForTesting();  // Tick 1: primes.
  counter.Inc(10);
  sampler.TickOnceForTesting();  // Tick 2: tier0 Δ10, tier1 Δ10 (2|2).
  counter.Inc(20);
  sampler.TickOnceForTesting();  // Tick 3: tier0 Δ20.
  counter.Inc(30);
  sampler.TickOnceForTesting();  // Tick 4: tier0 Δ30, tier1 Δ50.

  const auto tier0 = sampler.Recent("ucr_test_ts_tier1_total", 10);
  ASSERT_EQ(tier0.size(), 3u);
  EXPECT_EQ(tier0[0].delta, 10u);
  EXPECT_EQ(tier0[1].delta, 20u);
  EXPECT_EQ(tier0[2].delta, 30u);

  const auto tier1 = sampler.RecentTier1("ucr_test_ts_tier1_total", 10);
  ASSERT_EQ(tier1.size(), 2u);
  EXPECT_EQ(tier1[0].delta, 10u);
  EXPECT_EQ(tier1[1].delta, 50u);  // Ticks 3+4 folded.
}

TEST(ObsTimeseriesTest, RingWrapRetainsTheNewestPoints) {
  Counter& counter = Registry::Global().GetCounter(
      "ucr_test_ts_wrap_total", "timeseries wrap test");
  TimeSeriesSampler::Options options;
  options.tier0_capacity = 4;
  TimeSeriesSampler sampler;
  sampler.ConfigureForTesting(options);

  sampler.TickOnceForTesting();  // Primes.
  for (uint64_t i = 1; i <= 10; ++i) {
    counter.Inc(i);
    sampler.TickOnceForTesting();
  }
  const auto points = sampler.Recent("ucr_test_ts_wrap_total", 100);
  ASSERT_EQ(points.size(), 4u);  // Capacity bounds retention.
  EXPECT_EQ(points[0].delta, 7u);
  EXPECT_EQ(points[3].delta, 10u);

  // A smaller ask returns the newest slice.
  const auto two = sampler.Recent("ucr_test_ts_wrap_total", 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0].delta, 9u);
  EXPECT_EQ(two[1].delta, 10u);
}

TEST(ObsTimeseriesTest, RenderJsonIsValidAndCarriesSeries) {
  Counter& counter = Registry::Global().GetCounter(
      "ucr_test_ts_json_total", "timeseries json test");
  TimeSeriesSampler sampler;
  sampler.TickOnceForTesting();
  counter.Inc(4);
  sampler.TickOnceForTesting();
  const std::string json = sampler.RenderJson();
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"ucr_test_ts_json_total\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"delta\":4"), std::string::npos);
  EXPECT_NE(json.find("\"rate\":"), std::string::npos);
  EXPECT_NE(json.find("\"tiers\":[{\"stride\":1"), std::string::npos);
}

TEST(ObsTimeseriesTest, BackgroundThreadTicksAndStops) {
  TimeSeriesSampler sampler;
  TimeSeriesSampler::Options options;
  options.interval_ms = 5;
  std::string error;
  ASSERT_TRUE(sampler.Start(options, &error)) << error;
  EXPECT_FALSE(sampler.Start(options, &error));  // Already running.
  const uint64_t deadline_ms = 2000;
  for (uint64_t waited = 0;
       sampler.ticks_total() < 3 && waited < deadline_ms; waited += 10) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(sampler.ticks_total(), 3u);
  sampler.Stop();
  sampler.Stop();  // Idempotent.
  EXPECT_FALSE(sampler.running());
}

// Acceptance: a histogram exemplar recorded on the query path resolves
// to a complete Fig. 4 derivation via the tracer (/tracez carries the
// same record by sequence number).
TEST(ObsTimeseriesTest, ExemplarResolvesToFullFig4Trace) {
  core::PaperExample ex = core::MakePaperExample();
  core::AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S5", "obj", "read").ok());

  const uint64_t previous = QueryTracer::Global().sample_interval();
  QueryTracer::Global().SetSampleInterval(1);  // Sample everything.
  SetExemplarThreshold(0);                     // Capture everything.
  auto mode = system.CheckAccessByName("S2", "obj", "read");
  QueryTracer::Global().SetSampleInterval(previous);
  ASSERT_TRUE(mode.ok());

  // The system-path latency histogram must now hold >= 1 exemplar
  // whose trace id resolves to a retained tracer record.
  Histogram& latency = Registry::Global().GetHistogram(
      "ucr_system_query_latency_ns", "");
  bool linked = false;
  for (const Histogram::Exemplar& e : latency.SnapExemplars()) {
    if (!e.valid) continue;
    for (const QueryTraceRecord& r : QueryTracer::Global().Snapshot()) {
      if (r.sequence != e.trace_sequence) continue;
      EXPECT_EQ(r.subject, e.subject);
      EXPECT_EQ(r.object, e.object);
      EXPECT_EQ(r.right, e.right);
      // The record carries the full derivation: Fig. 4 renders with a
      // concrete returning line and decision.
      const std::string fig4 = ToFig4String(r);
      EXPECT_NE(fig4.find("line"), std::string::npos) << fig4;
      EXPECT_NE(fig4.find(r.granted ? "'+'" : "'-'"), std::string::npos);
      // /tracez serves the same record by sequence; /metrics JSON
      // carries the exemplar with that sequence.
      std::string body;
      std::string type;
      ASSERT_TRUE(HttpExporter::RenderEndpoint("/tracez", &body, &type));
      EXPECT_NE(
          body.find("\"sequence\":" + std::to_string(e.trace_sequence)),
          std::string::npos);
      EXPECT_NE(Registry::Global().RenderJson().find(
                    "\"trace_sequence\":" + std::to_string(e.trace_sequence)),
                std::string::npos);
      linked = true;
    }
  }
  EXPECT_TRUE(linked)
      << "no histogram exemplar resolved to a retained tracer record";
}

TEST(ObsTimeseriesTest, ExemplarThresholdFiltersSmallValues) {
  Histogram& hist = Registry::Global().GetHistogram(
      "ucr_test_ts_exemplar_ns", "exemplar threshold test");
  SetExemplarThreshold(1000);
  hist.RecordExemplar(999, 1, 2, 3, 4);  // Below threshold: dropped.
  bool any = false;
  for (const auto& e : hist.SnapExemplars()) any |= e.valid;
  EXPECT_FALSE(any);

  hist.RecordExemplar(1000, 7, 2, 3, 4);  // At threshold: kept.
  bool kept = false;
  for (const auto& e : hist.SnapExemplars()) {
    if (e.valid) {
      EXPECT_EQ(e.value, 1000u);
      EXPECT_EQ(e.trace_sequence, 7u);
      kept = true;
    }
  }
  EXPECT_TRUE(kept);
  SetExemplarThreshold(0);
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::obs
