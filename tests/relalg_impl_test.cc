// Differential tests of the paper-literal relational-algebra
// implementation (Figs. 4–5 transcribed onto ucr::relalg) against the
// native engines. Agreement across random hierarchies and all 48
// strategies is the strongest evidence that the native implementation
// faithfully realizes the published pseudocode.

#include "core/relalg_impl.h"

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "graph/ancestor_subgraph.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;
using graph::AncestorSubgraph;
using graph::Dag;

TEST(RelalgImplTest, BuildSdagRelationHasOneRowPerEdge) {
  const PaperExample ex = MakePaperExample();
  const relalg::Relation sdag = BuildSdagRelation(ex.dag);
  EXPECT_EQ(sdag.size(), ex.dag.edge_count());
  EXPECT_EQ(sdag.schema().IndexOf("subject"), 0u);
  EXPECT_EQ(sdag.schema().IndexOf("child"), 1u);
}

TEST(RelalgImplTest, BuildEacmRelationHasOneRowPerAuthorization) {
  const PaperExample ex = MakePaperExample();
  const relalg::Relation eacm = BuildEacmRelation(ex.eacm, ex.dag);
  EXPECT_EQ(eacm.size(), 3u);  // S2+, S4+, S5-.
}

TEST(RelalgImplTest, AncestorsFixpointOnPaperExample) {
  const PaperExample ex = MakePaperExample();
  const relalg::Relation sdag = BuildSdagRelation(ex.dag);
  auto anc = AncestorsRelalg(sdag, "User");
  ASSERT_TRUE(anc.ok());
  EXPECT_EQ(anc->size(), 6u);  // S1, S2, S3, S5, S6, User.
  auto self = AncestorsRelalg(sdag, "S1");
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self->size(), 1u);  // Roots are their own only ancestor.
}

TEST(RelalgImplTest, PropagateMatchesTable1) {
  const PaperExample ex = MakePaperExample();
  const relalg::Relation sdag = BuildSdagRelation(ex.dag);
  const relalg::Relation eacm = BuildEacmRelation(ex.eacm, ex.dag);
  auto all_rights = PropagateRelalg(sdag, eacm, "User", "obj", "read");
  ASSERT_TRUE(all_rights.ok()) << all_rights.status().ToString();
  EXPECT_EQ(all_rights->size(), 6u);  // Table 1 has six tuples.

  auto bag = RelationToRightsBag(*all_rights);
  ASSERT_TRUE(bag.ok());
  const AncestorSubgraph sub(ex.dag, ex.user);
  const auto labels =
      ex.eacm.ExtractLabels(ex.dag.node_count(), ex.obj, ex.read);
  EXPECT_EQ(*bag, PropagateAggregated(sub, labels));
}

TEST(RelalgImplTest, FullPMatchesTable4RowCount) {
  const PaperExample ex = MakePaperExample();
  const relalg::Relation sdag = BuildSdagRelation(ex.dag);
  const relalg::Relation eacm = BuildEacmRelation(ex.eacm, ex.dag);
  auto p = PropagateRelalgFullP(sdag, eacm, "User", "obj", "read");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->size(), 15u);  // Table 4 has fifteen tuples.
}

TEST(RelalgImplTest, IsolatedSubjectGetsDefaultViaNodeSetFix) {
  // The documented Fig. 5 deviation: an ancestor-less subject must
  // still be seeded (with its explicit label, or the 'd' marker).
  graph::DagBuilder b;
  b.AddNode("lonely");
  ASSERT_TRUE(b.AddEdge("g", "u").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const acm::ObjectId o = eacm.InternObject("obj").value();
  const acm::RightId r = eacm.InternRight("read").value();
  ASSERT_TRUE(eacm.Set(dag->FindNode("g"), o, r, Mode::kPositive).ok());

  const relalg::Relation sdag = BuildSdagRelation(*dag);
  const relalg::Relation eacm_rel = BuildEacmRelation(eacm, *dag);
  auto all_rights = PropagateRelalg(sdag, eacm_rel, "lonely", "obj", "read");
  ASSERT_TRUE(all_rights.ok());
  ASSERT_EQ(all_rights->size(), 1u);
  auto bag = RelationToRightsBag(*all_rights);
  ASSERT_TRUE(bag.ok());
  EXPECT_EQ(bag->entries()[0].mode, acm::PropagatedMode::kDefault);
  EXPECT_EQ(bag->entries()[0].dis, 0u);
}

TEST(RelalgImplTest, SinkOwnExplicitLabelIsSeeded) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("g", "u").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const acm::ObjectId o = eacm.InternObject("obj").value();
  const acm::RightId r = eacm.InternRight("read").value();
  ASSERT_TRUE(eacm.Set(dag->FindNode("u"), o, r, Mode::kNegative).ok());

  auto all_rights = PropagateRelalg(BuildSdagRelation(*dag),
                                    BuildEacmRelation(eacm, *dag), "u", "obj",
                                    "read");
  ASSERT_TRUE(all_rights.ok());
  auto bag = RelationToRightsBag(*all_rights);
  ASSERT_TRUE(bag.ok());
  // u's own '-' at distance 0 plus g's 'd' at distance 1.
  ASSERT_EQ(bag->GroupCount(), 2u);
  EXPECT_EQ(bag->entries()[0].dis, 0u);
  EXPECT_EQ(bag->entries()[0].mode, acm::PropagatedMode::kNegative);
}

TEST(RelalgImplTest, ResolveRelalgMatchesNativeOnPaperBag) {
  const PaperExample ex = MakePaperExample();
  const relalg::Relation sdag = BuildSdagRelation(ex.dag);
  const relalg::Relation eacm = BuildEacmRelation(ex.eacm, ex.dag);
  auto all_rights = PropagateRelalg(sdag, eacm, "User", "obj", "read");
  ASSERT_TRUE(all_rights.ok());
  auto bag = RelationToRightsBag(*all_rights);
  ASSERT_TRUE(bag.ok());

  for (const Strategy& s : AllStrategies()) {
    ResolveTrace relalg_trace;
    auto relalg_mode = ResolveRelalg(*all_rights, s, &relalg_trace);
    ASSERT_TRUE(relalg_mode.ok()) << s.ToMnemonic();
    ResolveTrace native_trace;
    const Mode native_mode = Resolve(*bag, s, &native_trace);
    EXPECT_EQ(*relalg_mode, native_mode) << s.ToMnemonic();
    EXPECT_EQ(relalg_trace.returned_line, native_trace.returned_line)
        << s.ToMnemonic();
    EXPECT_EQ(relalg_trace.C1ToString(), native_trace.C1ToString())
        << s.ToMnemonic();
    EXPECT_EQ(relalg_trace.C2ToString(), native_trace.C2ToString())
        << s.ToMnemonic();
  }
}

// The heavyweight differential property: on random layered DAGs with
// random labels, the full relational pipeline and the native pipeline
// agree for every sink and every strategy.
TEST(RelalgImplTest, EndToEndMatchesNativeOnRandomHierarchies) {
  Random rng(987);
  for (int trial = 0; trial < 6; ++trial) {
    graph::LayeredDagOptions opt;
    opt.layers = 3;
    opt.nodes_per_layer = 4;
    opt.edge_probability = 0.4;
    opt.skip_edge_probability = 0.2;
    auto dag = graph::GenerateLayeredDag(opt, rng);
    ASSERT_TRUE(dag.ok());

    acm::ExplicitAcm eacm;
    const acm::ObjectId o = eacm.InternObject("obj").value();
    const acm::RightId r = eacm.InternRight("read").value();
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      if (rng.Bernoulli(0.3)) {
        ASSERT_TRUE(eacm.Set(v, o, r,
                             rng.Bernoulli(0.5) ? Mode::kPositive
                                                : Mode::kNegative)
                        .ok());
      }
    }

    for (graph::NodeId sink : dag->Sinks()) {
      for (size_t si = 0; si < AllStrategies().size(); si += 5) {
        const Strategy& s = AllStrategies()[si];
        auto relalg_mode = ResolveAccessRelalg(*dag, eacm, sink, o, r, s);
        ASSERT_TRUE(relalg_mode.ok());
        auto native_mode = ResolveAccess(*dag, eacm, sink, o, r, s);
        ASSERT_TRUE(native_mode.ok());
        EXPECT_EQ(*relalg_mode, *native_mode)
            << "trial " << trial << " sink " << dag->name(sink)
            << " strategy " << s.ToMnemonic();
      }
    }
  }
}

TEST(RelalgImplTest, RelationToRightsBagValidatesSchemaAndContent) {
  relalg::Relation bad{relalg::Schema({{"x", relalg::ValueType::kInt}})};
  EXPECT_FALSE(RelationToRightsBag(bad).ok());

  relalg::Relation negative_dis{relalg::Schema(
      {{"dis", relalg::ValueType::kInt}, {"mode", relalg::ValueType::kString}})};
  negative_dis.AppendUnchecked(
      {relalg::Value(int64_t{-1}), relalg::Value("+")});
  EXPECT_FALSE(RelationToRightsBag(negative_dis).ok());

  relalg::Relation bad_mode{relalg::Schema(
      {{"dis", relalg::ValueType::kInt}, {"mode", relalg::ValueType::kString}})};
  bad_mode.AppendUnchecked({relalg::Value(int64_t{1}), relalg::Value("?")});
  EXPECT_FALSE(RelationToRightsBag(bad_mode).ok());
}

}  // namespace
}  // namespace ucr::core
