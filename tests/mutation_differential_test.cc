// Mutation-interleaving differential suite (DESIGN.md §10): randomized
// Grant/Deny/Revoke/AddMembership/RemoveMembership streams interleaved
// with queries, on the paper's Fig. 1 topology and on an enterprise
// hierarchy. After every round the in-place-mutated hierarchy is
// compared against an independent model (names + edge set maintained
// alongside the ops) and a from-scratch DagBuilder rebuild of that
// model; every decision of the incremental write path — the cached
// facade, the allocation-free fast path, and the multi-threaded
// BatchResolver with forwarded affected sets — must be bit-identical
// (decision, majority counters, Auth flags, returned line) to the
// classic engines resolving over the rebuilt oracle.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "acm/mode.h"
#include "core/batch_resolver.h"
#include "core/paper_example.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/dag.h"
#include "obs/shadow.h"
#include "util/random.h"
#include "workload/enterprise.h"

namespace ucr::core {
namespace {

using acm::Mode;

/// Independent record of what the hierarchy should look like,
/// maintained op by op next to the system's in-place mutations. Kept
/// as names (not ids) so a node-interning bug in the write path cannot
/// silently re-align the model with the corruption it should expose.
struct HierarchyModel {
  std::vector<std::string> names;  ///< In id order.
  std::vector<std::pair<std::string, std::string>> edges;

  void EnsureName(const std::string& name) {
    for (const std::string& existing : names) {
      if (existing == name) return;
    }
    names.push_back(name);
  }

  bool EraseEdge(const std::string& parent, const std::string& child) {
    for (size_t i = 0; i < edges.size(); ++i) {
      if (edges[i].first == parent && edges[i].second == child) {
        edges.erase(edges.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }
};

HierarchyModel SeedModel(const graph::Dag& dag) {
  HierarchyModel model;
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    model.names.push_back(dag.name(v));
  }
  for (graph::NodeId parent = 0; parent < dag.node_count(); ++parent) {
    for (graph::NodeId child : dag.children(parent)) {
      model.edges.emplace_back(dag.name(parent), dag.name(child));
    }
  }
  return model;
}

/// The from-scratch oracle: a DagBuilder rebuild of the model, with
/// nodes added in id order so oracle ids coincide with the live
/// hierarchy's.
graph::Dag RebuildOracle(const HierarchyModel& model) {
  graph::DagBuilder builder;
  for (const std::string& name : model.names) builder.AddNode(name);
  for (const auto& [parent, child] : model.edges) {
    EXPECT_TRUE(builder.AddEdge(parent, child).ok())
        << parent << " -> " << child;
  }
  auto dag = std::move(builder).Build();
  EXPECT_TRUE(dag.ok());
  return std::move(dag).value();
}

/// Structural differential: the in-place-mutated hierarchy must match
/// the model exactly — same nodes in the same id order, same edge set,
/// and a valid topological order (acyclicity survived the splices).
void ExpectStructureMatches(const graph::Dag& dag,
                            const HierarchyModel& model, size_t round) {
  ASSERT_EQ(dag.node_count(), model.names.size()) << "round " << round;
  ASSERT_EQ(dag.edge_count(), model.edges.size()) << "round " << round;
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    EXPECT_EQ(dag.name(v), model.names[v]) << "round " << round;
  }
  for (const auto& [parent, child] : model.edges) {
    EXPECT_TRUE(dag.HasEdge(dag.FindNode(parent), dag.FindNode(child)))
        << "round " << round << ": missing " << parent << " -> " << child;
  }
  EXPECT_EQ(dag.TopologicalOrder().size(), dag.node_count())
      << "round " << round;
}

void ExpectTracesEqual(const ResolveTrace& got, const ResolveTrace& want,
                       size_t round, size_t strategy_index) {
  EXPECT_EQ(got.result, want.result) << "round " << round;
  EXPECT_EQ(got.c1, want.c1) << "round " << round;
  EXPECT_EQ(got.c2, want.c2) << "round " << round;
  EXPECT_EQ(got.auth_computed, want.auth_computed) << "round " << round;
  EXPECT_EQ(got.auth_has_positive, want.auth_has_positive)
      << "round " << round;
  EXPECT_EQ(got.auth_has_negative, want.auth_has_negative)
      << "round " << round;
  EXPECT_EQ(got.returned_line, want.returned_line)
      << "round " << round << " strategy " << strategy_index;
}

/// One randomized mutation applied to the system, mirrored into the
/// model on success, and its affected set forwarded to the external
/// resolver — exactly what a long-running server's write path does.
void ApplyRandomOp(AccessControlSystem& system, BatchResolver& resolver,
                   HierarchyModel& model, Random& rng,
                   const std::string& object, const std::string& right,
                   size_t* fresh_counter) {
  const auto random_name = [&] {
    return model.names[rng.Uniform(model.names.size())];
  };
  std::vector<graph::NodeId> affected;
  switch (rng.Uniform(6)) {
    // Setting a triple that already carries a label is rejected
    // (Set, not Overwrite), so rights edits revoke first — the op
    // then always lands and keeps the column epoch churning.
    case 0: {
      const std::string subject = random_name();
      (void)system.Revoke(subject, object, right);
      ASSERT_TRUE(system.Grant(subject, object, right).ok());
      break;
    }
    case 1: {
      const std::string subject = random_name();
      (void)system.Revoke(subject, object, right);
      ASSERT_TRUE(system.DenyAccess(subject, object, right).ok());
      break;
    }
    case 2:
      // Revoking an absent label may report NotFound; both outcomes
      // leave the column's epoch guard consistent.
      (void)system.Revoke(random_name(), object, right);
      break;
    case 3: {
      // Random pair: duplicates, self-loops, and would-be cycles are
      // rejected with the hierarchy unchanged.
      const std::string parent = random_name();
      const std::string child = random_name();
      if (system.AddMembership(parent, child, &affected).ok()) {
        model.edges.emplace_back(parent, child);
      }
      break;
    }
    case 4: {
      // New hire: a fresh sink joining an existing group can never
      // cycle, so this op must succeed and grow the node set.
      const std::string parent = random_name();
      const std::string child = "hire" + std::to_string((*fresh_counter)++);
      ASSERT_TRUE(system.AddMembership(parent, child, &affected).ok());
      model.EnsureName(parent);
      model.EnsureName(child);
      model.edges.emplace_back(parent, child);
      break;
    }
    default: {
      if (!model.edges.empty() && rng.Bernoulli(0.8)) {
        const auto& edge = model.edges[rng.Uniform(model.edges.size())];
        const std::string parent = edge.first;
        const std::string child = edge.second;
        ASSERT_TRUE(system.RemoveMembership(parent, child, &affected).ok());
        ASSERT_TRUE(model.EraseEdge(parent, child));
      } else {
        // Random pair: usually absent; NotFound leaves state unchanged.
        const std::string parent = random_name();
        const std::string child = random_name();
        if (system.RemoveMembership(parent, child, &affected).ok()) {
          ASSERT_TRUE(model.EraseEdge(parent, child));
        }
      }
      break;
    }
  }
  if (!affected.empty()) resolver.InvalidateSubjects(affected);
}

/// The differential driver: `rounds` rounds of 1–2 random mutations,
/// each followed by a structural check, a from-scratch oracle rebuild,
/// and a sweep of queries comparing the cached facade, the fast path
/// (with its Fig. 4 trace), and — every fourth round — a
/// multi-threaded BatchResolver batch against the classic engines on
/// the oracle. Strategies rotate through all 48 canonical instances.
void RunDifferential(AccessControlSystem& system, const std::string& object,
                     const std::string& right, uint64_t seed, size_t rounds,
                     size_t queries_per_round) {
  HierarchyModel model = SeedModel(system.dag());
  BatchResolver resolver(system, /*threads=*/2);
  const std::vector<Strategy>& strategies = AllStrategies();
  Random rng(seed);
  size_t fresh_counter = 0;
  size_t strategy_index = 0;

  const auto object_id = system.eacm().FindObject(object);
  const auto right_id = system.eacm().FindRight(right);
  ASSERT_TRUE(object_id.ok() && right_id.ok());

  ResolveAccessOptions classic;
  classic.use_fast_path = false;

  for (size_t round = 0; round < rounds; ++round) {
    const size_t ops = 1 + rng.Uniform(2);
    for (size_t i = 0; i < ops; ++i) {
      ApplyRandomOp(system, resolver, model, rng, object, right,
                    &fresh_counter);
      if (::testing::Test::HasFatalFailure()) return;
    }

    ExpectStructureMatches(system.dag(), model, round);
    if (::testing::Test::HasFatalFailure()) return;
    const graph::Dag oracle = RebuildOracle(model);
    ASSERT_EQ(oracle.node_count(), system.dag().node_count());

    for (size_t q = 0; q < queries_per_round; ++q) {
      const graph::NodeId subject =
          static_cast<graph::NodeId>(rng.Uniform(system.dag().node_count()));
      const Strategy& strategy =
          strategies[strategy_index++ % strategies.size()];

      ResolveTrace classic_trace;
      const auto want = ResolveAccess(oracle, system.eacm(), subject,
                                      *object_id, *right_id, strategy,
                                      classic, &classic_trace);
      ASSERT_TRUE(want.ok()) << "round " << round;

      // The cached incremental facade (scoped invalidation) ...
      const auto cached =
          system.CheckAccess(subject, *object_id, *right_id, strategy);
      ASSERT_TRUE(cached.ok()) << "round " << round;
      EXPECT_EQ(*cached, *want)
          << "round " << round << " subject "
          << system.dag().name(subject) << " strategy "
          << strategy.CanonicalIndex();

      // ... and the fast path over the in-place-mutated hierarchy must
      // both match the classic rebuild, derivation included.
      ResolveTrace fast_trace;
      const auto fast =
          ResolveAccess(system.dag(), system.eacm(), subject, *object_id,
                        *right_id, strategy, {}, &fast_trace);
      ASSERT_TRUE(fast.ok()) << "round " << round;
      EXPECT_EQ(*fast, *want) << "round " << round;
      ExpectTracesEqual(fast_trace, classic_trace, round,
                        strategy.CanonicalIndex());
    }

    if (round % 4 == 3) {
      const Strategy& strategy =
          strategies[strategy_index++ % strategies.size()];
      std::vector<BatchResolver::Query> batch;
      for (size_t i = 0; i < 16; ++i) {
        batch.push_back({static_cast<graph::NodeId>(
                             rng.Uniform(system.dag().node_count())),
                         *object_id, *right_id});
      }
      const auto results = resolver.ResolveBatch(batch, strategy);
      ASSERT_TRUE(results.ok()) << "round " << round;
      for (size_t i = 0; i < batch.size(); ++i) {
        const auto want =
            ResolveAccess(oracle, system.eacm(), batch[i].subject,
                          *object_id, *right_id, strategy, classic);
        ASSERT_TRUE(want.ok());
        EXPECT_EQ((*results)[i], *want)
            << "round " << round << " batch query " << i << " subject "
            << system.dag().name(batch[i].subject);
      }
    }
  }
}

AccessControlSystem MakePaperSystem() {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag), {});
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  return system;
}

AccessControlSystem MakeEnterpriseSystem(SystemOptions options = {}) {
  Random rng(11);
  workload::EnterpriseOptions shape;
  shape.individuals = 250;
  shape.groups = 550;
  shape.top_level_groups = 8;
  shape.target_edges = 2100;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  EXPECT_TRUE(dag.ok());
  AccessControlSystem system(std::move(dag).value(), options);
  Random labels(12);
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    if (!labels.Bernoulli(0.03)) continue;
    const std::string& name = system.dag().name(v);
    const Status status = labels.Bernoulli(0.3)
                              ? system.DenyAccess(name, "doc", "read")
                              : system.Grant(name, "doc", "read");
    EXPECT_TRUE(status.ok());
  }
  return system;
}

TEST(MutationDifferentialTest, PaperTopologyChurnMatchesFromScratchRebuild) {
  AccessControlSystem system = MakePaperSystem();
  RunDifferential(system, "obj", "read", /*seed=*/101, /*rounds=*/120,
                  /*queries_per_round=*/4);
}

TEST(MutationDifferentialTest,
     EnterpriseTopologyChurnMatchesFromScratchRebuild) {
  AccessControlSystem system = MakeEnterpriseSystem();
  RunDifferential(system, "doc", "read", /*seed=*/202, /*rounds=*/40,
                  /*queries_per_round=*/6);
}

// The two invalidation policies must be observationally identical:
// drive an incremental system and a full-clear system through the same
// randomized ApplyMutations batches and compare every decision.
TEST(MutationDifferentialTest, ScopedAndFullClearPoliciesAgreeUnderChurn) {
  SystemOptions full_clear_options;
  full_clear_options.incremental_hierarchy_updates = false;
  AccessControlSystem incremental = MakeEnterpriseSystem();
  AccessControlSystem full_clear = MakeEnterpriseSystem(full_clear_options);
  ASSERT_EQ(incremental.dag().node_count(), full_clear.dag().node_count());

  const auto object = incremental.eacm().FindObject("doc");
  const auto right = incremental.eacm().FindRight("read");
  ASSERT_TRUE(object.ok() && right.ok());
  const std::vector<Strategy>& strategies = AllStrategies();

  using Op = AccessControlSystem::MutationOp;
  Random rng(303);
  size_t fresh = 0;
  for (size_t round = 0; round < 30; ++round) {
    // Both systems evolve identically, so a batch that aborts midway
    // (e.g. on a duplicate edge) aborts at the same op in both.
    std::vector<Op> ops;
    const size_t batch_size = 1 + rng.Uniform(3);
    for (size_t i = 0; i < batch_size; ++i) {
      const std::string a =
          incremental.dag().name(static_cast<graph::NodeId>(
              rng.Uniform(incremental.dag().node_count())));
      const std::string b =
          incremental.dag().name(static_cast<graph::NodeId>(
              rng.Uniform(incremental.dag().node_count())));
      switch (rng.Uniform(5)) {
        case 0:
          ops.push_back(Op::Grant(a, "doc", "read"));
          break;
        case 1:
          ops.push_back(Op::Deny(a, "doc", "read"));
          break;
        case 2:
          ops.push_back(
              Op::AddMember(a, "batchhire" + std::to_string(fresh++)));
          break;
        case 3:
          ops.push_back(Op::AddMember(a, b));
          break;
        default:
          ops.push_back(Op::RemoveMember(a, b));
          break;
      }
    }
    AccessControlSystem::MutationBatchStats incr_stats;
    AccessControlSystem::MutationBatchStats clear_stats;
    const Status incr_status = incremental.ApplyMutations(ops, &incr_stats);
    const Status clear_status = full_clear.ApplyMutations(ops, &clear_stats);
    ASSERT_EQ(incr_status.ok(), clear_status.ok()) << "round " << round;
    ASSERT_EQ(incr_stats.applied, clear_stats.applied) << "round " << round;
    ASSERT_EQ(incr_stats.affected, clear_stats.affected) << "round " << round;
    ASSERT_EQ(incremental.dag().node_count(), full_clear.dag().node_count());

    const Strategy& strategy = strategies[round % strategies.size()];
    for (size_t q = 0; q < 8; ++q) {
      const graph::NodeId subject = static_cast<graph::NodeId>(
          rng.Uniform(incremental.dag().node_count()));
      const auto scoped =
          incremental.CheckAccess(subject, *object, *right, strategy);
      const auto cleared =
          full_clear.CheckAccess(subject, *object, *right, strategy);
      ASSERT_TRUE(scoped.ok() && cleared.ok()) << "round " << round;
      EXPECT_EQ(*scoped, *cleared)
          << "round " << round << " subject "
          << incremental.dag().name(subject);
    }
  }
}

#if UCR_METRICS_ENABLED

// The PR's online guarantee: with shadow verification at interval 1,
// every fast-path miss after a membership edit is re-resolved by the
// classic oracle over the same (in-place-mutated) hierarchy — zero
// divergences means the incremental write path never serves a
// decision the from-scratch engines would not.
TEST(MutationDifferentialTest, ShadowVerificationSeesNoDivergenceUnderChurn) {
  obs::ShadowVerifier& shadow = obs::ShadowVerifier::Global();
  const uint64_t checks_before = shadow.checks_total();
  const uint64_t mismatches_before = shadow.mismatch_total();
  shadow.SetInterval(1);

  AccessControlSystem system = MakeEnterpriseSystem();
  const auto object = system.eacm().FindObject("doc");
  const auto right = system.eacm().FindRight("read");
  ASSERT_TRUE(object.ok() && right.ok());
  const Strategy strategy = ParseStrategy("D+LP-").value();

  BatchResolver resolver(system, /*threads=*/2);
  Random rng(404);
  size_t fresh = 0;
  for (size_t round = 0; round < 12; ++round) {
    const std::string parent = system.dag().name(static_cast<graph::NodeId>(
        rng.Uniform(system.dag().node_count())));
    std::vector<graph::NodeId> affected;
    ASSERT_TRUE(system
                    .AddMembership(parent,
                                   "shadowhire" + std::to_string(fresh++),
                                   &affected)
                    .ok());
    resolver.InvalidateSubjects(affected);

    std::vector<BatchResolver::Query> batch;
    for (size_t i = 0; i < 16; ++i) {
      batch.push_back({static_cast<graph::NodeId>(
                           rng.Uniform(system.dag().node_count())),
                       *object, *right});
    }
    ASSERT_TRUE(resolver.ResolveBatch(batch, strategy).ok());
  }

  shadow.SetInterval(0);
  EXPECT_GT(shadow.checks_total(), checks_before)
      << "shadowing never engaged — the guarantee was not exercised";
  EXPECT_EQ(shadow.mismatch_total(), mismatches_before);
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::core
