// Golden tests reproducing every table of the paper from the Fig. 1
// fixture: Table 1 (allRights of User), Table 2 (all 48 strategy
// outcomes), Table 3 (Resolve() traces), and Table 4 (the full
// propagation relation P). These are the strongest fidelity checks in
// the suite: a semantic drift in propagation or resolution breaks an
// exact published artifact.

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include <algorithm>

#include <gtest/gtest.h>

#include "acm/mode.h"
#include "core/paper_example.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/ancestor_subgraph.h"

namespace ucr::core {
namespace {

using acm::Mode;
using acm::PropagatedMode;

class PaperTablesTest : public ::testing::Test {
 protected:
  PaperTablesTest() : ex_(MakePaperExample()), sub_(ex_.dag, ex_.user) {
    labels_ = ex_.eacm.ExtractLabels(ex_.dag.node_count(), ex_.obj, ex_.read);
  }

  RightsBag UserAllRights() {
    return PropagateAggregated(sub_, labels_);
  }

  PaperExample ex_;
  graph::AncestorSubgraph sub_;
  std::vector<std::optional<Mode>> labels_;
};

// Figure 3: the sub-hierarchy of User contains exactly
// {S1, S2, S3, S5, S6, User} with S1, S2, S6 as roots.
TEST_F(PaperTablesTest, Figure3SubgraphShape) {
  EXPECT_EQ(sub_.member_count(), 6u);
  EXPECT_EQ(sub_.edge_count(), 7u);
  std::vector<std::string> member_names;
  for (graph::LocalId v = 0; v < sub_.member_count(); ++v) {
    member_names.push_back(ex_.dag.name(sub_.global_id(v)));
  }
  std::sort(member_names.begin(), member_names.end());
  EXPECT_EQ(member_names, (std::vector<std::string>{"S1", "S2", "S3", "S5",
                                                    "S6", "User"}));
  std::vector<std::string> root_names;
  for (graph::LocalId r : sub_.roots()) {
    root_names.push_back(ex_.dag.name(sub_.global_id(r)));
  }
  std::sort(root_names.begin(), root_names.end());
  EXPECT_EQ(root_names, (std::vector<std::string>{"S1", "S2", "S6"}));
  EXPECT_EQ(ex_.dag.name(sub_.global_id(sub_.sink())), "User");
}

// Table 1: all read authorizations of User on obj.
TEST_F(PaperTablesTest, Table1AllRightsOfUser) {
  RightsBag expected;
  expected.Add(1, PropagatedMode::kNegative);  // S5's '-' at distance 1.
  expected.Add(1, PropagatedMode::kDefault);   // S6 direct.
  expected.Add(2, PropagatedMode::kDefault);   // S6 via S5.
  expected.Add(1, PropagatedMode::kPositive);  // S2 direct.
  expected.Add(3, PropagatedMode::kPositive);  // S2 via S3, S5.
  expected.Add(3, PropagatedMode::kDefault);   // S1 via S3, S5.
  expected.Normalize();
  EXPECT_EQ(UserAllRights(), expected)
      << "got " << UserAllRights().ToString();
}

// Table 1 must come out identically from the literal engine.
TEST_F(PaperTablesTest, Table1LiteralEngineAgrees) {
  auto literal = PropagateLiteral(sub_, labels_);
  ASSERT_TRUE(literal.ok()) << literal.status().ToString();
  EXPECT_EQ(*literal, UserAllRights());
}

// Table 4: the entire propagation relation P over the sub-hierarchy.
TEST_F(PaperTablesTest, Table4FullPropagationRelation) {
  auto all = PropagateLiteralAll(sub_, labels_);
  ASSERT_TRUE(all.ok());

  // (subject, dis, mode) -> multiplicity; Table 4 lists 15 tuples, all
  // with multiplicity 1.
  std::map<std::tuple<std::string, uint32_t, char>, uint64_t> got;
  for (graph::LocalId v = 0; v < sub_.member_count(); ++v) {
    const std::string name = ex_.dag.name(sub_.global_id(v));
    for (const RightsEntry& e : (*all)[v].entries()) {
      got[{name, e.dis, acm::PropagatedModeToChar(e.mode)}] += e.multiplicity;
    }
  }

  const std::vector<std::tuple<std::string, uint32_t, char>> expected = {
      {"S2", 0, '+'},   {"S5", 0, '-'},   {"S1", 0, 'd'},  {"S6", 0, 'd'},
      {"User", 1, '+'}, {"S3", 1, '+'},   {"User", 1, '-'}, {"S3", 1, 'd'},
      {"User", 1, 'd'}, {"S5", 1, 'd'},   {"S5", 2, '+'},  {"S5", 2, 'd'},
      {"User", 2, 'd'}, {"User", 3, '+'}, {"User", 3, 'd'},
  };
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& key : expected) {
    auto it = got.find(key);
    ASSERT_NE(it, got.end())
        << "missing tuple (" << std::get<0>(key) << ", " << std::get<1>(key)
        << ", " << std::get<2>(key) << ")";
    EXPECT_EQ(it->second, 1u);
  }
}

// Table 2: the resolved mode of <User, obj, read> for each of the 48
// strategy instances.
TEST_F(PaperTablesTest, Table2AllFortyEightStrategies) {
  const std::vector<std::pair<std::string, char>> expected = {
      // Column 1 of Table 2.
      {"D+LMP+", '+'}, {"D+LMP-", '+'}, {"D-LMP+", '-'}, {"D-LMP-", '-'},
      {"D+GMP+", '+'}, {"D+GMP-", '+'}, {"D-GMP+", '+'}, {"D-GMP-", '-'},
      {"D+MP+", '+'},  {"D+MP-", '+'},  {"D-MP+", '-'},  {"D-MP-", '-'},
      // Column 2.
      {"D+LP+", '+'},  {"D+LP-", '-'},  {"D-LP+", '+'},  {"D-LP-", '-'},
      {"D+GP+", '+'},  {"D+GP-", '+'},  {"D-GP+", '+'},  {"D-GP-", '-'},
      {"D+P+", '+'},   {"D+P-", '-'},   {"D-P+", '+'},   {"D-P-", '-'},
      // Column 3.
      {"LMP+", '+'},   {"LMP-", '-'},   {"GMP+", '+'},   {"GMP-", '+'},
      {"MP+", '+'},    {"MP-", '+'},    {"LP+", '+'},    {"LP-", '-'},
      {"GP+", '+'},    {"GP-", '+'},    {"P+", '+'},     {"P-", '-'},
      // Column 4.
      {"D+MLP+", '+'}, {"D+MLP-", '+'}, {"D-MLP+", '-'}, {"D-MLP-", '-'},
      {"D+MGP+", '+'}, {"D+MGP-", '+'}, {"D-MGP+", '-'}, {"D-MGP-", '-'},
      {"MLP+", '+'},   {"MLP-", '+'},   {"MGP+", '+'},   {"MGP-", '+'},
  };
  ASSERT_EQ(expected.size(), 48u);

  const RightsBag bag = UserAllRights();
  for (const auto& [mnemonic, want] : expected) {
    auto strategy = ParseStrategy(mnemonic);
    ASSERT_TRUE(strategy.ok()) << mnemonic;
    const Mode got = Resolve(bag, *strategy);
    EXPECT_EQ(acm::ModeToChar(got), want) << "strategy " << mnemonic;
  }
}

struct TraceExpectation {
  std::string mnemonic;
  std::string c1;
  std::string c2;
  std::string auth;
  char mode;
  int line;
};

// Table 3: the execution trace of Resolve() for eight illustrative
// strategies. One published row (MGP-) is internally inconsistent with
// Fig. 4 and with the paper's own §3 prose, which counts "two +'s
// (rows 4 and 5) as opposed to only one -" for the same strategy; we
// assert the Fig. 4 semantics (c1=2, c2=1) — same resolved mode and
// returning line as the paper.
TEST_F(PaperTablesTest, Table3ResolveTraces) {
  const std::vector<TraceExpectation> expected = {
      {"D+LMP+", "2", "1", "n/a", '+', 6},
      {"D-GMP-", "1", "1", "+,-", '-', 9},
      {"D-MP-", "2", "4", "n/a", '-', 6},
      {"D-LP+", "n/a", "n/a", "+,-", '+', 9},
      {"D+GP-", "n/a", "n/a", "+", '+', 8},
      {"GMP-", "1", "0", "n/a", '+', 6},
      {"P-", "n/a", "n/a", "+,-", '-', 9},
      {"MGP-", "2", "1", "n/a", '+', 6},  // Paper's row says c1=1, c2=0.
  };

  const RightsBag bag = UserAllRights();
  for (const auto& e : expected) {
    auto strategy = ParseStrategy(e.mnemonic);
    ASSERT_TRUE(strategy.ok()) << e.mnemonic;
    ResolveTrace trace;
    const Mode got = Resolve(bag, *strategy, &trace);
    EXPECT_EQ(trace.C1ToString(), e.c1) << e.mnemonic;
    EXPECT_EQ(trace.C2ToString(), e.c2) << e.mnemonic;
    EXPECT_EQ(trace.AuthToString(), e.auth) << e.mnemonic;
    EXPECT_EQ(acm::ModeToChar(got), e.mode) << e.mnemonic;
    EXPECT_EQ(trace.returned_line, e.line) << e.mnemonic;
  }
}

// §1.1's referee scenario: with the S1 -> S2 edge and '+' on S1, the
// "most global takes precedence" strategy lets User referee (grants),
// even under a negative preference, while most-specific still leaves
// the decision to the preference rule.
TEST(RefereeExampleTest, GlobalityGrantsUser) {
  PaperExample ex = MakeRefereeExample();
  const graph::AncestorSubgraph sub(ex.dag, ex.user);
  const auto labels =
      ex.eacm.ExtractLabels(ex.dag.node_count(), ex.obj, ex.read);
  const RightsBag bag = PropagateAggregated(sub, labels);

  auto gp_minus = ParseStrategy("D+GP-");
  ASSERT_TRUE(gp_minus.ok());
  EXPECT_EQ(Resolve(bag, *gp_minus), Mode::kPositive);

  auto lp_minus = ParseStrategy("D+LP-");
  ASSERT_TRUE(lp_minus.ok());
  // Most specific: S2's '+' and S5's '-' are both at distance 1 —
  // conflict; preference '-' denies.
  EXPECT_EQ(Resolve(bag, *lp_minus), Mode::kNegative);
}

}  // namespace
}  // namespace ucr::core
