// Randomized algebraic-identity tests of the relational engine. The
// paper-literal implementations of Propagate()/Resolve() are built on
// these operators, so their laws are load-bearing: a bag-semantics
// slip here would silently skew the majority policy.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "relalg/operators.h"
#include "relalg/relation.h"
#include "util/random.h"

namespace ucr::relalg {
namespace {

Schema TestSchema() {
  return Schema({{"s", ValueType::kString},
                 {"d", ValueType::kInt},
                 {"m", ValueType::kString}});
}

Relation RandomRelation(Random& rng, size_t max_rows = 12) {
  static const char* kSubjects[] = {"a", "b", "c"};
  static const char* kModes[] = {"+", "-", "d"};
  Relation r{TestSchema()};
  const size_t rows = rng.Uniform(max_rows + 1);
  for (size_t i = 0; i < rows; ++i) {
    r.AppendUnchecked(Row{Value(kSubjects[rng.Uniform(3)]),
                          Value(static_cast<int64_t>(rng.Uniform(4))),
                          Value(kModes[rng.Uniform(3)])});
  }
  return r;
}

/// Canonical multiset fingerprint for order-insensitive comparison.
std::vector<std::string> Fingerprint(const Relation& r) {
  std::vector<std::string> rows;
  for (const Row& row : r.rows()) {
    std::string s;
    for (const Value& v : row) s += v.ToString() + "|";
    rows.push_back(s);
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class RelalgFuzzTest : public ::testing::Test {
 protected:
  Random rng_{20070705};
};

TEST_F(RelalgFuzzTest, SelectionsCommute) {
  for (int trial = 0; trial < 100; ++trial) {
    const Relation r = RandomRelation(rng_);
    auto ab = SelectEquals(SelectNotEquals(r, "m", Value("d")).value(), "s",
                           Value("a"));
    auto ba = SelectNotEquals(SelectEquals(r, "s", Value("a")).value(), "m",
                              Value("d"));
    ASSERT_TRUE(ab.ok());
    ASSERT_TRUE(ba.ok());
    EXPECT_EQ(Fingerprint(*ab), Fingerprint(*ba));
  }
}

TEST_F(RelalgFuzzTest, SelectSplitsBagExactly) {
  // σ_p(R) ∪ σ_!p(R) is a permutation of R — no row lost or invented.
  for (int trial = 0; trial < 100; ++trial) {
    const Relation r = RandomRelation(rng_);
    auto yes = SelectEquals(r, "m", Value("+"));
    auto no = SelectNotEquals(r, "m", Value("+"));
    ASSERT_TRUE(yes.ok());
    ASSERT_TRUE(no.ok());
    auto merged = Union(*yes, *no);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(Fingerprint(*merged), Fingerprint(r));
  }
}

TEST_F(RelalgFuzzTest, ProjectPreservesCardinality) {
  for (int trial = 0; trial < 100; ++trial) {
    const Relation r = RandomRelation(rng_);
    auto p = Project(r, {"m"});
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->size(), r.size()) << "bag projection must not dedup";
  }
}

TEST_F(RelalgFuzzTest, DistinctIsIdempotentAndMinimal) {
  for (int trial = 0; trial < 100; ++trial) {
    const Relation r = RandomRelation(rng_);
    const Relation d1 = Distinct(r);
    const Relation d2 = Distinct(d1);
    EXPECT_EQ(Fingerprint(d1), Fingerprint(d2));
    // Every distinct row appears in the original.
    auto fp_r = Fingerprint(r);
    for (const std::string& row : Fingerprint(d1)) {
      EXPECT_TRUE(std::binary_search(fp_r.begin(), fp_r.end(), row));
    }
  }
}

TEST_F(RelalgFuzzTest, UnionCardinalityIsAdditive) {
  for (int trial = 0; trial < 100; ++trial) {
    const Relation a = RandomRelation(rng_);
    const Relation b = RandomRelation(rng_);
    auto u = Union(a, b);
    ASSERT_TRUE(u.ok());
    EXPECT_EQ(u->size(), a.size() + b.size());
  }
}

TEST_F(RelalgFuzzTest, DifferenceThenIntersectIsEmpty) {
  for (int trial = 0; trial < 100; ++trial) {
    const Relation a = RandomRelation(rng_);
    const Relation b = RandomRelation(rng_);
    auto diff = Difference(a, b);
    ASSERT_TRUE(diff.ok());
    // No row of the difference appears in b.
    auto fp_b = Fingerprint(b);
    for (const std::string& row : Fingerprint(*diff)) {
      EXPECT_FALSE(std::binary_search(fp_b.begin(), fp_b.end(), row));
    }
  }
}

TEST_F(RelalgFuzzTest, JoinCardinalityMatchesBruteForce) {
  for (int trial = 0; trial < 60; ++trial) {
    const Relation a = RandomRelation(rng_);
    Relation b{Schema({{"s", ValueType::kString},
                       {"extra", ValueType::kInt}})};
    const size_t rows = rng_.Uniform(8);
    static const char* kSubjects[] = {"a", "b", "c", "z"};
    for (size_t i = 0; i < rows; ++i) {
      b.AppendUnchecked(Row{Value(kSubjects[rng_.Uniform(4)]),
                            Value(static_cast<int64_t>(rng_.Uniform(3)))});
    }
    const Relation joined = NaturalJoin(a, b);
    size_t expected = 0;
    for (const Row& ra : a.rows()) {
      for (const Row& rb : b.rows()) {
        if (ra[0] == rb[0]) ++expected;
      }
    }
    EXPECT_EQ(joined.size(), expected);
  }
}

TEST_F(RelalgFuzzTest, JoinCommutesUpToColumnOrder) {
  for (int trial = 0; trial < 60; ++trial) {
    const Relation a = RandomRelation(rng_, 8);
    Relation b{Schema({{"m", ValueType::kString},
                       {"w", ValueType::kInt}})};
    static const char* kModes[] = {"+", "-", "d"};
    for (size_t i = 0; i < rng_.Uniform(8); ++i) {
      b.AppendUnchecked(Row{Value(kModes[rng_.Uniform(3)]),
                            Value(static_cast<int64_t>(rng_.Uniform(3)))});
    }
    const Relation ab = NaturalJoin(a, b);
    const Relation ba = NaturalJoin(b, a);
    auto ab_norm = Project(ab, {"s", "d", "m", "w"});
    auto ba_norm = Project(ba, {"s", "d", "m", "w"});
    ASSERT_TRUE(ab_norm.ok());
    ASSERT_TRUE(ba_norm.ok());
    EXPECT_EQ(Fingerprint(*ab_norm), Fingerprint(*ba_norm));
  }
}

TEST_F(RelalgFuzzTest, ExtendThenProjectAwayIsIdentity) {
  for (int trial = 0; trial < 100; ++trial) {
    const Relation r = RandomRelation(rng_);
    auto extended = ExtendConstant(r, "k", Value(int64_t{7}));
    ASSERT_TRUE(extended.ok());
    auto back = Project(*extended, {"s", "d", "m"});
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(Fingerprint(*back), Fingerprint(r));
  }
}

TEST_F(RelalgFuzzTest, MinMaxConsistency) {
  for (int trial = 0; trial < 100; ++trial) {
    const Relation r = RandomRelation(rng_);
    auto min = MinInt(r, "d");
    auto max = MaxInt(r, "d");
    ASSERT_TRUE(min.ok());
    ASSERT_TRUE(max.ok());
    if (r.empty()) {
      EXPECT_EQ(*min, std::nullopt);
      EXPECT_EQ(*max, std::nullopt);
    } else {
      ASSERT_TRUE(min->has_value());
      ASSERT_TRUE(max->has_value());
      EXPECT_LE(**min, **max);
      // Filtering on the min keeps at least one row and nothing below.
      auto at_min = SelectEquals(r, "d", Value(**min));
      ASSERT_TRUE(at_min.ok());
      EXPECT_GE(at_min->size(), 1u);
    }
  }
}

TEST_F(RelalgFuzzTest, RenameRoundTrip) {
  for (int trial = 0; trial < 50; ++trial) {
    const Relation r = RandomRelation(rng_);
    auto there = Rename(r, "s", "subject");
    ASSERT_TRUE(there.ok());
    auto back = Rename(*there, "subject", "s");
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->schema() == r.schema());
    EXPECT_EQ(Fingerprint(*back), Fingerprint(r));
  }
}

}  // namespace
}  // namespace ucr::relalg
