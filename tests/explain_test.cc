#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;
using acm::PropagatedMode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

const Contribution* FindSource(const Explanation& e, const graph::Dag& dag,
                               const char* name) {
  for (const Contribution& c : e.contributions) {
    if (dag.name(c.source) == name) return &c;
  }
  return nullptr;
}

TEST(ExplainTest, PaperExampleContributions) {
  const PaperExample ex = MakePaperExample();
  auto explanation =
      ExplainAccess(ex.dag, ex.eacm, ex.user, ex.obj, ex.read, S("D+LP-"));
  ASSERT_TRUE(explanation.ok()) << explanation.status().ToString();

  // Sources: S2 (+), S5 (-), defaults on S1 and S6 — four of them.
  ASSERT_EQ(explanation->contributions.size(), 4u);
  const Contribution* s2 = FindSource(*explanation, ex.dag, "S2");
  const Contribution* s5 = FindSource(*explanation, ex.dag, "S5");
  const Contribution* s1 = FindSource(*explanation, ex.dag, "S1");
  const Contribution* s6 = FindSource(*explanation, ex.dag, "S6");
  ASSERT_NE(s2, nullptr);
  ASSERT_NE(s5, nullptr);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s6, nullptr);

  EXPECT_EQ(s2->mode, PropagatedMode::kPositive);
  EXPECT_EQ(s2->min_distance, 1u);
  EXPECT_EQ(s2->max_distance, 3u);
  EXPECT_EQ(s2->tuple_count, 2u);  // Two paths (Table 1 rows 1+, 3+).
  EXPECT_EQ(s5->mode, PropagatedMode::kNegative);
  EXPECT_EQ(s5->tuple_count, 1u);
  EXPECT_EQ(s1->mode, PropagatedMode::kDefault);
  EXPECT_EQ(s6->mode, PropagatedMode::kDefault);
  EXPECT_EQ(s6->tuple_count, 2u);  // Direct and via S5.
}

TEST(ExplainTest, LocalityFilterSurvivorsMarked) {
  const PaperExample ex = MakePaperExample();
  auto explanation =
      ExplainAccess(ex.dag, ex.eacm, ex.user, ex.obj, ex.read, S("D+LP-"));
  ASSERT_TRUE(explanation.ok());
  // Most specific: distance-1 tuples survive — S2, S5, S6; S1's only
  // path has length 3.
  EXPECT_TRUE(FindSource(*explanation, ex.dag, "S2")->survived_filters);
  EXPECT_TRUE(FindSource(*explanation, ex.dag, "S5")->survived_filters);
  EXPECT_TRUE(FindSource(*explanation, ex.dag, "S6")->survived_filters);
  EXPECT_FALSE(FindSource(*explanation, ex.dag, "S1")->survived_filters);
  EXPECT_EQ(explanation->decision, Mode::kNegative);
  EXPECT_EQ(explanation->deciding_policy, "preference");
}

TEST(ExplainTest, GlobalitySurvivors) {
  const PaperExample ex = MakePaperExample();
  auto explanation =
      ExplainAccess(ex.dag, ex.eacm, ex.user, ex.obj, ex.read, S("D+GP-"));
  ASSERT_TRUE(explanation.ok());
  // Farthest distance is 3: S2 (via S3,S5) and S1 survive.
  EXPECT_TRUE(FindSource(*explanation, ex.dag, "S2")->survived_filters);
  EXPECT_TRUE(FindSource(*explanation, ex.dag, "S1")->survived_filters);
  EXPECT_FALSE(FindSource(*explanation, ex.dag, "S5")->survived_filters);
  EXPECT_FALSE(FindSource(*explanation, ex.dag, "S6")->survived_filters);
  EXPECT_EQ(explanation->deciding_policy, "locality");
  EXPECT_EQ(explanation->decision, Mode::kPositive);
}

TEST(ExplainTest, DroppedDefaultsUnderNoDefaultRule) {
  const PaperExample ex = MakePaperExample();
  auto explanation =
      ExplainAccess(ex.dag, ex.eacm, ex.user, ex.obj, ex.read, S("MP-"));
  ASSERT_TRUE(explanation.ok());
  EXPECT_FALSE(FindSource(*explanation, ex.dag, "S1")->survived_filters);
  EXPECT_FALSE(FindSource(*explanation, ex.dag, "S6")->survived_filters);
  EXPECT_TRUE(FindSource(*explanation, ex.dag, "S2")->survived_filters);
  EXPECT_EQ(explanation->deciding_policy, "majority");
}

TEST(ExplainTest, DefaultPolicyNamedWhenOnlyDefaultsSurvive) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("root", "u").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const acm::ObjectId o = eacm.InternObject("obj").value();
  const acm::RightId r = eacm.InternRight("read").value();
  auto explanation =
      ExplainAccess(*dag, eacm, dag->FindNode("u"), o, r, S("D+P-"));
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->decision, Mode::kPositive);
  EXPECT_EQ(explanation->deciding_policy, "default");
}

TEST(ExplainTest, UnanimityNamedForSingleExplicitMode) {
  graph::DagBuilder b;
  ASSERT_TRUE(b.AddEdge("g", "u").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const acm::ObjectId o = eacm.InternObject("obj").value();
  const acm::RightId r = eacm.InternRight("read").value();
  ASSERT_TRUE(eacm.Set(dag->FindNode("g"), o, r, Mode::kPositive).ok());
  auto explanation =
      ExplainAccess(*dag, eacm, dag->FindNode("u"), o, r, S("P-"));
  ASSERT_TRUE(explanation.ok());
  EXPECT_EQ(explanation->decision, Mode::kPositive);
  EXPECT_EQ(explanation->deciding_policy, "unanimity");
}

TEST(ExplainTest, RenderedReportMentionsEverything) {
  const PaperExample ex = MakePaperExample();
  auto explanation =
      ExplainAccess(ex.dag, ex.eacm, ex.user, ex.obj, ex.read, S("D+LMP+"));
  ASSERT_TRUE(explanation.ok());
  const std::string report = explanation->ToString(ex.dag);
  EXPECT_NE(report.find("GRANTED"), std::string::npos);
  EXPECT_NE(report.find("majority"), std::string::npos);
  EXPECT_NE(report.find("S5"), std::string::npos);
  EXPECT_NE(report.find("c1=2"), std::string::npos);
}

// The explanation's decision must equal ResolveAccess for every
// strategy on randomized hierarchies — provenance must not perturb
// semantics.
TEST(ExplainTest, DecisionMatchesResolveEverywhere) {
  Random rng(606);
  for (int trial = 0; trial < 10; ++trial) {
    auto dag = graph::GenerateLayeredDag(
        {.layers = 3, .nodes_per_layer = 5, .skip_edge_probability = 0.2},
        rng);
    ASSERT_TRUE(dag.ok());
    acm::ExplicitAcm eacm;
    const acm::ObjectId o = eacm.InternObject("obj").value();
    const acm::RightId r = eacm.InternRight("read").value();
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      if (rng.Bernoulli(0.3)) {
        ASSERT_TRUE(eacm.Set(v, o, r,
                             rng.Bernoulli(0.5) ? Mode::kPositive
                                                : Mode::kNegative)
                        .ok());
      }
    }
    for (graph::NodeId sink : dag->Sinks()) {
      for (const Strategy& s : AllStrategies()) {
        auto explanation = ExplainAccess(*dag, eacm, sink, o, r, s);
        ASSERT_TRUE(explanation.ok());
        auto resolved = ResolveAccess(*dag, eacm, sink, o, r, s);
        ASSERT_TRUE(resolved.ok());
        EXPECT_EQ(explanation->decision, *resolved)
            << s.ToMnemonic() << " at " << dag->name(sink);
        // Trace agreement too: same deciding line and counters.
        ResolveTrace reference;
        (void)ResolveAccess(*dag, eacm, sink, o, r, s, {}, &reference);
        EXPECT_EQ(explanation->trace.returned_line, reference.returned_line);
        EXPECT_EQ(explanation->trace.C1ToString(), reference.C1ToString());
      }
    }
  }
}

TEST(ExplainTest, ValidatesIds) {
  const PaperExample ex = MakePaperExample();
  EXPECT_FALSE(ExplainAccess(ex.dag, ex.eacm, 999, ex.obj, ex.read, S("P-"))
                   .ok());
  EXPECT_FALSE(ExplainAccess(ex.dag, ex.eacm, ex.user, 99, ex.read, S("P-"))
                   .ok());
}

}  // namespace
}  // namespace ucr::core
