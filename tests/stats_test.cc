#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ucr {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Mean(), 0.0);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.StdDev(), 0.0);
}

TEST(RunningStatsTest, SingleObservation) {
  RunningStats s;
  s.Add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.Mean(), 4.5);
  EXPECT_EQ(s.Variance(), 0.0);
  EXPECT_EQ(s.Min(), 4.5);
  EXPECT_EQ(s.Max(), 4.5);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.Variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.StdDev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_EQ(s.Min(), 2.0);
  EXPECT_EQ(s.Max(), 9.0);
}

TEST(RunningStatsTest, StableUnderLargeOffsets) {
  // Welford should not lose precision with a big common offset.
  RunningStats s;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0}) s.Add(offset + x);
  EXPECT_NEAR(s.Variance(), 1.0, 1e-6);
}

TEST(QuantileTest, EmptyReturnsZero) {
  EXPECT_EQ(Quantile({}, 0.5), 0.0);
}

TEST(QuantileTest, MedianOfOddCount) {
  EXPECT_EQ(Quantile({3, 1, 2}, 0.5), 2.0);
}

TEST(QuantileTest, InterpolatesBetweenOrderStatistics) {
  EXPECT_DOUBLE_EQ(Quantile({0, 10}, 0.25), 2.5);
}

TEST(QuantileTest, ExtremesAndClamping) {
  const std::vector<double> v{5, 1, 9};
  EXPECT_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_EQ(Quantile(v, 1.0), 9.0);
  EXPECT_EQ(Quantile(v, -3.0), 1.0);
  EXPECT_EQ(Quantile(v, 17.0), 9.0);
}

TEST(FitLineTest, PerfectLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 2x + 1.
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLineTest, DegenerateInputsGiveZeroFit) {
  EXPECT_EQ(FitLine({1}, {2}).slope, 0.0);
  EXPECT_EQ(FitLine({1, 2}, {1}).slope, 0.0);       // Size mismatch.
  EXPECT_EQ(FitLine({3, 3}, {1, 5}).slope, 0.0);    // Vertical.
}

TEST(FitLineTest, NoisyLineRSquaredBelowOne) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  const std::vector<double> y{2.1, 3.9, 6.2, 7.8, 10.1};
  const LinearFit fit = FitLine(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
  EXPECT_LT(fit.r_squared, 1.0);
}

}  // namespace
}  // namespace ucr
