#include "core/rights_bag.h"

#include <gtest/gtest.h>

namespace ucr::core {
namespace {

using acm::PropagatedMode;

TEST(RightsBagTest, EmptyBag) {
  RightsBag bag;
  EXPECT_TRUE(bag.empty());
  EXPECT_EQ(bag.TotalTuples(), 0u);
  EXPECT_EQ(bag.GroupCount(), 0u);
  EXPECT_EQ(bag.ToString(), "{}");
}

TEST(RightsBagTest, NormalizeMergesEqualGroups) {
  RightsBag bag;
  bag.Add(1, PropagatedMode::kPositive);
  bag.Add(1, PropagatedMode::kPositive, 2);
  bag.Add(2, PropagatedMode::kPositive);
  bag.Normalize();
  EXPECT_EQ(bag.GroupCount(), 2u);
  EXPECT_EQ(bag.TotalTuples(), 4u);
  EXPECT_EQ(bag.entries()[0].multiplicity, 3u);
}

TEST(RightsBagTest, NormalizeSortsByDistanceThenMode) {
  RightsBag bag;
  bag.Add(3, PropagatedMode::kDefault);
  bag.Add(1, PropagatedMode::kNegative);
  bag.Add(1, PropagatedMode::kPositive);
  bag.Normalize();
  EXPECT_EQ(bag.entries()[0].dis, 1u);
  EXPECT_EQ(bag.entries()[0].mode, PropagatedMode::kPositive);
  EXPECT_EQ(bag.entries()[1].dis, 1u);
  EXPECT_EQ(bag.entries()[1].mode, PropagatedMode::kNegative);
  EXPECT_EQ(bag.entries()[2].dis, 3u);
}

TEST(RightsBagTest, ZeroMultiplicityIsIgnored) {
  RightsBag bag;
  bag.Add(1, PropagatedMode::kPositive, 0);
  bag.Normalize();
  EXPECT_TRUE(bag.empty());
}

TEST(RightsBagTest, EqualityAfterNormalization) {
  RightsBag a;
  a.Add(1, PropagatedMode::kPositive);
  a.Add(1, PropagatedMode::kPositive);
  a.Normalize();
  RightsBag b;
  b.Add(1, PropagatedMode::kPositive, 2);
  b.Normalize();
  EXPECT_EQ(a, b);
}

TEST(RightsBagTest, TotalTuplesSaturates) {
  RightsBag bag;
  bag.Add(1, PropagatedMode::kPositive, UINT64_MAX);
  bag.Add(2, PropagatedMode::kPositive, 5);
  bag.Normalize();
  EXPECT_EQ(bag.TotalTuples(), UINT64_MAX);
}

TEST(RightsBagTest, MultiplicitySaturatesOnMerge) {
  RightsBag bag;
  bag.Add(1, PropagatedMode::kPositive, UINT64_MAX - 1);
  bag.Add(1, PropagatedMode::kPositive, 5);
  bag.Normalize();
  EXPECT_EQ(bag.entries()[0].multiplicity, UINT64_MAX);
}

TEST(RightsBagTest, ToStringShowsMultiplicities) {
  RightsBag bag;
  bag.Add(1, PropagatedMode::kNegative);
  bag.Add(2, PropagatedMode::kDefault, 3);
  bag.Normalize();
  EXPECT_EQ(bag.ToString(), "{1:-, 2:d x3}");
}

}  // namespace
}  // namespace ucr::core
