// Reachability-scoped cache invalidation on the write path
// (DESIGN.md §10): a hierarchy edit must drop exactly the affected
// subjects' cached state — and nothing else. Covers the serial caches
// behind AccessControlSystem, the sharded caches behind BatchResolver,
// the batched ApplyMutations sweep, and the write-path observability
// (mutation counters, audit events carrying affected-set size).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/batch_resolver.h"
#include "core/paper_example.h"
#include "core/system.h"
#include "graph/dag.h"
#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "util/random.h"
#include "workload/enterprise.h"

namespace ucr::core {
namespace {

using acm::Mode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

/// The paper's Fig. 1 fixture wrapped in a system (same labels the
/// system_test suite uses).
AccessControlSystem MakePaperSystem(SystemOptions options = {}) {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag), options);
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  return system;
}

/// A small enterprise hierarchy with one populated column, the test
/// stand-in for the bench/mutation_churn workload.
AccessControlSystem MakeEnterpriseSystem(SystemOptions options = {}) {
  Random rng(7);
  workload::EnterpriseOptions shape;
  shape.individuals = 300;
  shape.groups = 700;
  shape.top_level_groups = 10;
  shape.target_edges = 2600;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  EXPECT_TRUE(dag.ok());
  AccessControlSystem system(std::move(dag).value(), options);
  Random labels(8);
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    if (!labels.Bernoulli(0.02)) continue;
    const std::string& name = system.dag().name(v);
    const Status status = labels.Bernoulli(0.3)
                              ? system.DenyAccess(name, "doc", "read")
                              : system.Grant(name, "doc", "read");
    EXPECT_TRUE(status.ok());
  }
  return system;
}

/// First sink with at least one parent — the churned user. Sinks have
/// no descendants, so the affected set of editing its membership is
/// exactly that one subject.
graph::NodeId FindChurnUser(const graph::Dag& dag) {
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    if (dag.children(v).empty() && !dag.parents(v).empty()) return v;
  }
  return graph::kInvalidNode;
}

/// Queries every sink once, warming both caches.
std::vector<graph::NodeId> WarmSinks(AccessControlSystem& system,
                                     const Strategy& strategy) {
  std::vector<graph::NodeId> sinks;
  const auto object = system.eacm().FindObject("doc");
  const auto right = system.eacm().FindRight("read");
  EXPECT_TRUE(object.ok() && right.ok());
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    if (!system.dag().children(v).empty()) continue;
    EXPECT_TRUE(system.CheckAccess(v, *object, *right, strategy).ok());
    sinks.push_back(v);
  }
  return sinks;
}

// The PR's acceptance criterion: after a single membership edit on the
// enterprise workload, cache entries for subjects outside the affected
// set survive and keep serving hits. The reachability index is pinned
// off: this test is about the classic extraction path's scoped
// invalidation, and the indexed path never populates the subgraph
// cache it measures.
TEST(MutationInvalidationTest, SingleEditKeepsUnaffectedEntriesWarm) {
  SystemOptions classic;
  classic.use_reachability_index = false;
  AccessControlSystem system = MakeEnterpriseSystem(classic);
  const Strategy strategy = S("D+LP-");
  const std::vector<graph::NodeId> sinks = WarmSinks(system, strategy);
  ASSERT_GT(sinks.size(), 100u);

  const graph::NodeId churn = FindChurnUser(system.dag());
  ASSERT_NE(churn, graph::kInvalidNode);
  const std::string parent = system.dag().name(system.dag().parents(churn)[0]);
  const std::string child = system.dag().name(churn);

  const size_t resolution_before = system.resolution_cache().size();
  const size_t subgraph_before = system.subgraph_cache().size();
  ASSERT_GE(resolution_before, sinks.size());

  std::vector<graph::NodeId> affected;
  ASSERT_TRUE(system.RemoveMembership(parent, child, &affected).ok());
  EXPECT_EQ(affected, std::vector<graph::NodeId>{churn});

  // Exactly the churned user's entries dropped; everyone else's
  // survived.
  EXPECT_EQ(system.resolution_cache().size(), resolution_before - 1);
  EXPECT_EQ(system.subgraph_cache().size(), subgraph_before - 1);

  // Re-querying the surviving sinks is all hits: the edit did not cost
  // the rest of the directory its warm cache (hit-rate retention).
  const auto stats_before = system.resolution_cache().stats();
  const auto object = system.eacm().FindObject("doc");
  const auto right = system.eacm().FindRight("read");
  size_t requeried = 0;
  for (const graph::NodeId v : sinks) {
    if (v == churn) continue;
    ASSERT_TRUE(system.CheckAccess(v, *object, *right, strategy).ok());
    ++requeried;
  }
  const auto stats_after = system.resolution_cache().stats();
  EXPECT_EQ(stats_after.hits - stats_before.hits, requeried);
  EXPECT_EQ(stats_after.misses, stats_before.misses);
}

TEST(MutationInvalidationTest, FullClearBaselineDropsEverything) {
  SystemOptions options;
  options.incremental_hierarchy_updates = false;
  AccessControlSystem system = MakeEnterpriseSystem(options);
  const Strategy strategy = S("D+LP-");
  WarmSinks(system, strategy);
  ASSERT_GT(system.resolution_cache().size(), 0u);

  const graph::NodeId churn = FindChurnUser(system.dag());
  const std::string parent = system.dag().name(system.dag().parents(churn)[0]);
  ASSERT_TRUE(system.RemoveMembership(parent, system.dag().name(churn)).ok());

  // The pre-§10 write path: both caches wiped, warm or not.
  EXPECT_EQ(system.resolution_cache().size(), 0u);
  EXPECT_EQ(system.subgraph_cache().size(), 0u);
}

TEST(MutationInvalidationTest, EditedSubjectIsReResolvedNotServedStale) {
  AccessControlSystem system = MakePaperSystem();
  system.SetStrategy(S("D+LP-"));
  // Warm the cache with the pre-edit decision (denied via S5).
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kNegative);
  // Detach User from S5's group: the denial no longer reaches User.
  ASSERT_TRUE(system.RemoveMembership("S5", "User").ok());
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kPositive);
  // And the reverse edit restores the denial — no stale cache either
  // way.
  ASSERT_TRUE(system.AddMembership("S5", "User").ok());
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kNegative);
}

TEST(MutationInvalidationTest, BatchResolverInvalidateSubjectsIsScoped) {
  AccessControlSystem system = MakeEnterpriseSystem();
  const Strategy strategy = S("D+LP-");
  const auto object = system.eacm().FindObject("doc");
  const auto right = system.eacm().FindRight("read");
  ASSERT_TRUE(object.ok() && right.ok());

  BatchResolver resolver(system, /*threads=*/2);
  std::vector<BatchResolver::Query> queries;
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    if (system.dag().children(v).empty()) {
      queries.push_back({v, *object, *right});
    }
  }
  ASSERT_TRUE(resolver.ResolveBatch(queries, strategy).ok());
  const size_t subgraphs_before = resolver.subgraph_cache().size();
  const size_t resolutions_before = resolver.resolution_cache().size();
  ASSERT_GT(subgraphs_before, 0u);

  const graph::NodeId churn = FindChurnUser(system.dag());
  const std::string parent = system.dag().name(system.dag().parents(churn)[0]);
  std::vector<graph::NodeId> affected;
  ASSERT_TRUE(
      system.RemoveMembership(parent, system.dag().name(churn), &affected)
          .ok());
  const size_t dropped = resolver.InvalidateSubjects(affected);
  EXPECT_GE(dropped, 1u);
  EXPECT_EQ(resolver.subgraph_cache().size(), subgraphs_before - 1);
  EXPECT_EQ(resolver.resolution_cache().size(), resolutions_before - 1);

  // Post-edit batch decisions match a resolver with no history.
  auto warm = resolver.ResolveBatch(queries, strategy);
  BatchResolver cold(system, /*threads=*/2);
  auto fresh = cold.ResolveBatch(queries, strategy);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(*warm, *fresh);
}

TEST(MutationInvalidationTest, ApplyMutationsCoalescesOneSweep) {
  AccessControlSystem system = MakePaperSystem();
  system.SetStrategy(S("D+LP-"));
  ASSERT_TRUE(system.CheckAccessByName("User", "obj", "read").ok());

  using Op = AccessControlSystem::MutationOp;
  const std::vector<Op> ops = {
      Op::Grant("S3", "obj", "write"),
      Op::AddMember("S2", "contractor"),
      Op::AddMember("S3", "contractor"),
      Op::RemoveMember("S5", "User"),
  };
  AccessControlSystem::MutationBatchStats stats;
  ASSERT_TRUE(system.ApplyMutations(ops, &stats).ok());
  EXPECT_EQ(stats.applied, ops.size());

  // The coalesced affected set: contractor (twice edited, reported
  // once) and User — ascending, unique.
  std::vector<graph::NodeId> expected = {
      system.dag().FindNode("contractor"), system.dag().FindNode("User")};
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(stats.affected, expected);

  // The batch's effects all landed.
  EXPECT_TRUE(system.dag().HasEdge(system.dag().FindNode("S2"),
                                   system.dag().FindNode("contractor")));
  EXPECT_EQ(system.CheckAccessByName("contractor", "obj", "read").value(),
            Mode::kPositive);  // Inherits S2's grant.
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kPositive);  // S5's denial detached.
}

TEST(MutationInvalidationTest, ApplyMutationsStopsAtFirstFailureButSweeps) {
  AccessControlSystem system = MakePaperSystem();
  system.SetStrategy(S("D+LP-"));
  // Warm a decision that op #1 affects, to prove the sweep still ran.
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kNegative);

  using Op = AccessControlSystem::MutationOp;
  const std::vector<Op> ops = {
      Op::RemoveMember("S5", "User"),
      Op::AddMember("User", "User"),  // Self-loop: fails.
      Op::Grant("S3", "obj", "write"),  // Never reached.
  };
  AccessControlSystem::MutationBatchStats stats;
  const Status status = system.ApplyMutations(ops, &stats);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stats.applied, 1u);
  EXPECT_EQ(stats.affected,
            std::vector<graph::NodeId>{system.dag().FindNode("User")});
  // Op #1 stayed applied and its invalidation sweep ran: the query
  // reflects the new hierarchy, not the warm pre-batch decision.
  EXPECT_EQ(system.CheckAccessByName("User", "obj", "read").value(),
            Mode::kPositive);
  // Op #3 was never applied.
  EXPECT_FALSE(system.eacm().FindRight("write").ok());
}

// The partial-failure report names the failing position and kind —
// both in the stats (machine-readable resume point, and the boundary
// the WAL commit record persists) and in the status message itself.
TEST(MutationInvalidationTest, BatchFailureNamesIndexAndKind) {
  AccessControlSystem system = MakePaperSystem();
  using Op = AccessControlSystem::MutationOp;
  AccessControlSystem::MutationBatchStats stats;

  // Success: no failed index.
  const std::vector<Op> ok_ops = {Op::Grant("S3", "obj", "write")};
  ASSERT_TRUE(system.ApplyMutations(ok_ops, &stats).ok());
  EXPECT_EQ(stats.failed_index, AccessControlSystem::MutationBatchStats::kNone);

  // Failure at op 2: failed_index == applied, and the message carries
  // the index, the op kind, and the underlying cause.
  const std::vector<Op> ops = {
      Op::Grant("S3", "doc", "read"),
      Op::Deny("S4", "doc", "write"),
      Op::AddMember("S1", "S1"),  // Self-loop: fails.
      Op::Grant("S3", "doc", "own"),
  };
  const Status status = system.ApplyMutations(ops, &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(stats.applied, 2u);
  EXPECT_EQ(stats.failed_index, 2u);
  EXPECT_EQ(stats.failed_index, stats.applied);
  EXPECT_NE(status.message().find("op 2 (add_membership)"),
            std::string::npos);
  EXPECT_NE(status.message().find("self-loop"), std::string::npos);
}

#if UCR_METRICS_ENABLED

TEST(MutationInvalidationTest, WritePathMetricsAndAuditAffectedSize) {
  obs::Counter& mutations = obs::Registry::Global().GetCounter(
      "ucr_mutations_total",
      "Hierarchy mutations applied (membership edge inserts/removals)");
  const uint64_t mutations_before = mutations.Value();

  // Capture the audit stream around one membership edit.
  struct VectorSink : obs::AuditSink {
    explicit VectorSink(std::vector<std::string>* out) : out_(out) {}
    void Write(std::string_view line) override { out_->emplace_back(line); }
    std::vector<std::string>* out_;
  };
  std::vector<std::string> lines;
  obs::AuditLogOptions options;
  options.sinks.push_back(std::make_unique<VectorSink>(&lines));
  ASSERT_TRUE(obs::AuditLog::Global().Start(std::move(options)));

  AccessControlSystem system = MakePaperSystem();
  // S2 -> User exists; removing it affects User only (User is a sink),
  // so the audit event's value — the affected-set size — is 1.
  ASSERT_TRUE(system.RemoveMembership("S2", "User").ok());
  obs::AuditLog::Global().Stop();

  EXPECT_EQ(mutations.Value(), mutations_before + 1);
  bool found = false;
  for (const std::string& line : lines) {
    if (line.find("remove_member") == std::string::npos) continue;
    EXPECT_NE(line.find("S2 -> User"), std::string::npos) << line;
    EXPECT_NE(line.find("\"value\":1"), std::string::npos) << line;
    found = true;
  }
  EXPECT_TRUE(found) << "no remove_member audit event captured";
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::core
