// Monotonicity of the whole framework: adding a positive explicit
// authorization can only preserve or *expand* effective access — it
// never revokes anyone, under any of the 48 strategies (and dually,
// adding a denial never grants anyone). Sketch of why: a new '+' only
// adds positive tuples and can only replace root 'd' markers; at every
// decision point of Fig. 4 (majority counts, locality-filtered level,
// Auth set) extra positive weight can flip '-' to '+' but never the
// reverse. These tests probe the claim with randomized hierarchies —
// a counterexample would mean one of the policies silently privileges
// removal, which would be a real framework finding.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "acm/acm.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;

struct Trial {
  graph::Dag dag;
  acm::ExplicitAcm eacm;
  acm::ObjectId obj;
  acm::RightId right;
};

Trial MakeTrial(Random& rng) {
  auto dag = graph::GenerateLayeredDag(
      {.layers = 2 + static_cast<size_t>(rng.Uniform(3)),
       .nodes_per_layer = 2 + static_cast<size_t>(rng.Uniform(4)),
       .skip_edge_probability = 0.25},
      rng);
  EXPECT_TRUE(dag.ok());
  Trial t{std::move(dag).value(), {}, 0, 0};
  t.obj = t.eacm.InternObject("obj").value();
  t.right = t.eacm.InternRight("read").value();
  for (graph::NodeId v = 0; v < t.dag.node_count(); ++v) {
    if (rng.Bernoulli(0.25)) {
      EXPECT_TRUE(t.eacm
                      .Set(v, t.obj, t.right,
                           rng.Bernoulli(0.5) ? Mode::kPositive
                                              : Mode::kNegative)
                      .ok());
    }
  }
  return t;
}

std::vector<Mode> AllDecisions(const Trial& t, const Strategy& s) {
  std::vector<Mode> out;
  for (graph::NodeId v = 0; v < t.dag.node_count(); ++v) {
    auto mode = ResolveAccess(t.dag, t.eacm, v, t.obj, t.right, s);
    EXPECT_TRUE(mode.ok());
    out.push_back(*mode);
  }
  return out;
}

TEST(MonotonicityTest, AddingAGrantNeverRevokesAnyone) {
  Random rng(31415);
  for (int trial = 0; trial < 12; ++trial) {
    Trial t = MakeTrial(rng);
    // Pick an unlabeled subject and grant it.
    graph::NodeId target = graph::kInvalidNode;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto v =
          static_cast<graph::NodeId>(rng.Uniform(t.dag.node_count()));
      if (!t.eacm.Get(v, t.obj, t.right).has_value()) {
        target = v;
        break;
      }
    }
    if (target == graph::kInvalidNode) continue;

    for (const Strategy& s : AllStrategies()) {
      const std::vector<Mode> before = AllDecisions(t, s);
      ASSERT_TRUE(t.eacm.Set(target, t.obj, t.right, Mode::kPositive).ok());
      const std::vector<Mode> after = AllDecisions(t, s);
      for (size_t v = 0; v < before.size(); ++v) {
        EXPECT_FALSE(before[v] == Mode::kPositive &&
                     after[v] == Mode::kNegative)
            << "granting " << t.dag.name(target) << " revoked "
            << t.dag.name(static_cast<graph::NodeId>(v)) << " under "
            << s.ToMnemonic();
      }
      ASSERT_TRUE(t.eacm.Erase(target, t.obj, t.right));
    }
  }
}

TEST(MonotonicityTest, AddingADenialNeverGrantsAnyone) {
  Random rng(27182);
  for (int trial = 0; trial < 12; ++trial) {
    Trial t = MakeTrial(rng);
    graph::NodeId target = graph::kInvalidNode;
    for (int attempt = 0; attempt < 64; ++attempt) {
      const auto v =
          static_cast<graph::NodeId>(rng.Uniform(t.dag.node_count()));
      if (!t.eacm.Get(v, t.obj, t.right).has_value()) {
        target = v;
        break;
      }
    }
    if (target == graph::kInvalidNode) continue;

    for (const Strategy& s : AllStrategies()) {
      const std::vector<Mode> before = AllDecisions(t, s);
      ASSERT_TRUE(t.eacm.Set(target, t.obj, t.right, Mode::kNegative).ok());
      const std::vector<Mode> after = AllDecisions(t, s);
      for (size_t v = 0; v < before.size(); ++v) {
        EXPECT_FALSE(before[v] == Mode::kNegative &&
                     after[v] == Mode::kPositive)
            << "denying " << t.dag.name(target) << " granted "
            << t.dag.name(static_cast<graph::NodeId>(v)) << " under "
            << s.ToMnemonic();
      }
      ASSERT_TRUE(t.eacm.Erase(target, t.obj, t.right));
    }
  }
}

// Corollary at the strategy level, on the unchanged matrix: relaxing
// only the preference from '-' to '+' never revokes (tested already in
// audit_test via RankStrategies counts; here per subject).
TEST(MonotonicityTest, PreferenceRelaxationIsPerSubjectMonotone) {
  Random rng(16180);
  for (int trial = 0; trial < 8; ++trial) {
    const Trial t = MakeTrial(rng);
    for (const Strategy& s : AllStrategies()) {
      if (s.preference_rule != PreferenceRule::kNegative) continue;
      Strategy relaxed = s;
      relaxed.preference_rule = PreferenceRule::kPositive;
      const std::vector<Mode> strict = AllDecisions(t, s);
      const std::vector<Mode> open = AllDecisions(t, relaxed);
      for (size_t v = 0; v < strict.size(); ++v) {
        EXPECT_FALSE(strict[v] == Mode::kPositive &&
                     open[v] == Mode::kNegative)
            << s.ToMnemonic() << " -> " << relaxed.ToMnemonic() << " at "
            << t.dag.name(static_cast<graph::NodeId>(v));
      }
    }
  }
}

}  // namespace
}  // namespace ucr::core
