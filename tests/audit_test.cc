#include "core/audit.h"

#include <map>
#include <string>

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/strategy.h"
#include "core/system.h"

namespace ucr::core {
namespace {

using acm::Mode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

AccessControlSystem MakePaperSystem() {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  return system;
}

TEST(CompareStrategiesTest, UserGainsUnderGlobality) {
  AccessControlSystem system = MakePaperSystem();
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  // Table 2: D+LP- denies User, D+GP- grants — migrating gains User.
  auto report =
      CompareStrategies(system, obj, read, S("D+LP-"), S("D+GP-"));
  ASSERT_TRUE(report.ok());
  bool user_gained = false;
  for (const MigrationDelta& d : report->gained) {
    if (system.dag().name(d.subject) == "User") user_gained = true;
  }
  EXPECT_TRUE(user_gained);
  EXPECT_EQ(report->granted_after,
            report->granted_before + report->gained.size() -
                report->lost.size());
}

TEST(CompareStrategiesTest, IdentityMigrationChangesNothing) {
  AccessControlSystem system = MakePaperSystem();
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  auto report =
      CompareStrategies(system, obj, read, S("D-LMP+"), S("D-LMP+"));
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->changed(), 0u);
  EXPECT_EQ(report->granted_before, report->granted_after);
}

TEST(CompareStrategiesTest, CountsMatchEffectiveColumns) {
  AccessControlSystem system = MakePaperSystem();
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  const Strategy from = S("D-P-");
  const Strategy to = S("D+P+");
  auto report = CompareStrategies(system, obj, read, from, to);
  ASSERT_TRUE(report.ok());

  auto count_granted_sinks = [&](const Strategy& s) {
    auto column = system.MaterializeEffectiveColumn(obj, read, s).value();
    size_t granted = 0;
    for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
      if (system.dag().is_sink(v) && column[v] == Mode::kPositive) ++granted;
    }
    return granted;
  };
  EXPECT_EQ(report->granted_before, count_granted_sinks(from));
  EXPECT_EQ(report->granted_after, count_granted_sinks(to));
}

TEST(CompareStrategiesTest, SinksOnlyToggleWidensAudit) {
  AccessControlSystem system = MakePaperSystem();
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  CompareOptions all;
  all.sinks_only = false;
  auto wide =
      CompareStrategies(system, obj, read, S("D-P-"), S("D+P+"), all);
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->subjects_audited, system.dag().node_count());
}

TEST(CompareStrategiesTest, SummarizeMentionsNamesAndCounts) {
  AccessControlSystem system = MakePaperSystem();
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  auto report =
      CompareStrategies(system, obj, read, S("D+LP-"), S("D+GP-"));
  ASSERT_TRUE(report.ok());
  const std::string summary = report->Summarize(system.dag());
  EXPECT_NE(summary.find("D+LP- -> D+GP-"), std::string::npos);
  EXPECT_NE(summary.find("User"), std::string::npos);
}

TEST(RankStrategiesTest, CoversAll48AndSortsDescending) {
  AccessControlSystem system = MakePaperSystem();
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  auto ranking = RankStrategies(system, obj, read);
  ASSERT_TRUE(ranking.ok());
  ASSERT_EQ(ranking->size(), 48u);
  for (size_t i = 1; i < ranking->size(); ++i) {
    EXPECT_GE((*ranking)[i - 1].granted, (*ranking)[i].granted);
  }
}

TEST(RankStrategiesTest, PositivePreferenceNeverLessPermissive) {
  // Flipping P- to P+ only changes line-9 (conflict/empty) outcomes,
  // all of which flip toward grant: granted(X P+) >= granted(X P-).
  AccessControlSystem system = MakePaperSystem();
  const acm::ObjectId obj = system.eacm().FindObject("obj").value();
  const acm::RightId read = system.eacm().FindRight("read").value();
  auto ranking = RankStrategies(system, obj, read);
  ASSERT_TRUE(ranking.ok());
  std::map<std::string, size_t> by_name;
  for (const auto& entry : *ranking) {
    by_name[entry.strategy.ToMnemonic()] = entry.granted;
  }
  for (const Strategy& s : AllStrategies()) {
    if (s.preference_rule != PreferenceRule::kNegative) continue;
    Strategy twin = s;
    twin.preference_rule = PreferenceRule::kPositive;
    EXPECT_GE(by_name.at(twin.ToMnemonic()), by_name.at(s.ToMnemonic()))
        << s.ToMnemonic();
  }
}

}  // namespace
}  // namespace ucr::core
