// End-to-end integration tests across modules: serialization round
// trips feeding live queries, strategy reconfiguration on a realistic
// organization, propagation-mode extensions through the public entry
// points, and cross-engine agreement on a generated enterprise.

#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "acm/acm.h"
#include "acm/assignment.h"
#include "core/dominance.h"
#include "core/relalg_impl.h"
#include "core/resolve.h"
#include "core/system.h"
#include "graph/io.h"
#include "util/random.h"
#include "workload/enterprise.h"

namespace ucr {
namespace {

using acm::Mode;
using core::ParseStrategy;
using core::Strategy;

// A small org: engineering and security teams, one contractor in both.
constexpr const char* kOrgText =
    "# demo organization\n"
    "edge company engineering\n"
    "edge company security\n"
    "edge engineering backend\n"
    "edge engineering frontend\n"
    "edge backend alice\n"
    "edge backend contractor\n"
    "edge security contractor\n"
    "edge frontend bob\n";

TEST(IntegrationTest, SerializedOrgAnswersQueries) {
  auto dag = graph::FromEdgeListText(kOrgText);
  ASSERT_TRUE(dag.ok());

  core::AccessControlSystem system(std::move(dag).value());
  ASSERT_TRUE(system.Grant("engineering", "repo", "push").ok());
  ASSERT_TRUE(system.DenyAccess("security", "repo", "push").ok());

  // The contractor inherits '+' via backend (distance 2) and '-' via
  // security (distance 1): most-specific denies, most-general depends
  // on the root default.
  EXPECT_EQ(system
                .CheckAccessByName("contractor", "repo", "push",
                                   ParseStrategy("LP+").value())
                .value(),
            Mode::kNegative);
  EXPECT_EQ(system
                .CheckAccessByName("contractor", "repo", "push",
                                   ParseStrategy("D+GP-").value())
                .value(),
            Mode::kPositive)
      << "company root defaults '+' at the greatest distance";
  // Alice only inherits the engineering grant.
  EXPECT_EQ(system
                .CheckAccessByName("alice", "repo", "push",
                                   ParseStrategy("LP-").value())
                .value(),
            Mode::kPositive);
}

TEST(IntegrationTest, AcmRoundTripPreservesDecisions) {
  auto dag = graph::FromEdgeListText(kOrgText);
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const acm::ObjectId repo = eacm.InternObject("repo").value();
  const acm::RightId push = eacm.InternRight("push").value();
  ASSERT_TRUE(
      eacm.Set(dag->FindNode("engineering"), repo, push, Mode::kPositive)
          .ok());
  ASSERT_TRUE(
      eacm.Set(dag->FindNode("security"), repo, push, Mode::kNegative).ok());

  const std::string acm_text = acm::ToText(eacm, *dag);
  auto reread = acm::FromText(acm_text, *dag);
  ASSERT_TRUE(reread.ok());

  const graph::NodeId contractor = dag->FindNode("contractor");
  for (const Strategy& s : core::AllStrategies()) {
    auto a = core::ResolveAccess(*dag, eacm, contractor, repo, push, s);
    auto b = core::ResolveAccess(*dag, *reread, contractor,
                                 reread->FindObject("repo").value(),
                                 reread->FindRight("push").value(), s);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << s.ToMnemonic();
  }
}

TEST(IntegrationTest, PropagationModesChangeOutcomes) {
  auto dag = graph::FromEdgeListText(kOrgText);
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const acm::ObjectId repo = eacm.InternObject("repo").value();
  const acm::RightId push = eacm.InternRight("push").value();
  // company grants; security denies. contractor: company's '+' passes
  // through unlabeled engineering/backend but is blocked by labeled
  // security under kSecondWins.
  ASSERT_TRUE(
      eacm.Set(dag->FindNode("company"), repo, push, Mode::kPositive).ok());
  ASSERT_TRUE(
      eacm.Set(dag->FindNode("security"), repo, push, Mode::kNegative).ok());
  const graph::NodeId contractor = dag->FindNode("contractor");
  const Strategy gp_minus = ParseStrategy("GP-").value();

  core::ResolveAccessOptions both;  // Paper default.
  auto mode_both = core::ResolveAccess(*dag, eacm, contractor, repo, push,
                                       gp_minus, both);
  ASSERT_TRUE(mode_both.ok());
  // Farthest tuple: company's '+' at distance 3 via backend.
  EXPECT_EQ(*mode_both, Mode::kPositive);

  core::ResolveAccessOptions second;
  second.propagation_mode = core::PropagationMode::kSecondWins;
  auto mode_second = core::ResolveAccess(*dag, eacm, contractor, repo, push,
                                         gp_minus, second);
  ASSERT_TRUE(mode_second.ok());
  EXPECT_EQ(*mode_second, Mode::kPositive)
      << "company '+' still reaches via the unlabeled backend chain";

  // Deny engineering instead: now every path from company to the
  // contractor crosses a labeled node, so under kSecondWins only the
  // near labels survive and the globality decision flips.
  eacm.Overwrite(dag->FindNode("engineering"), repo, push, Mode::kNegative);
  auto flipped = core::ResolveAccess(*dag, eacm, contractor, repo, push,
                                     gp_minus, second);
  ASSERT_TRUE(flipped.ok());
  EXPECT_EQ(*flipped, Mode::kNegative);
  auto unflipped = core::ResolveAccess(*dag, eacm, contractor, repo, push,
                                       gp_minus, both);
  ASSERT_TRUE(unflipped.ok());
  EXPECT_EQ(*unflipped, Mode::kPositive)
      << "kBoth still lets company's '+' through at distance 3";
}

TEST(IntegrationTest, EnterpriseCrossEngineAgreement) {
  Random rng(31337);
  workload::EnterpriseOptions opt;
  opt.individuals = 40;
  opt.groups = 120;
  opt.top_level_groups = 5;
  opt.max_group_depth = 5;
  opt.target_edges = 360;
  auto dag = workload::GenerateEnterpriseHierarchy(opt, rng);
  ASSERT_TRUE(dag.ok());

  acm::ExplicitAcm eacm;
  const acm::ObjectId o = eacm.InternObject("vault").value();
  const acm::RightId r = eacm.InternRight("open").value();
  acm::RandomAssignmentOptions assign;
  assign.authorization_rate = 0.05;
  assign.negative_fraction = 0.4;
  ASSERT_TRUE(
      acm::AssignRandomAuthorizations(*dag, o, r, assign, rng, &eacm).ok());

  // Native aggregated vs literal vs Dominance on the D*LP* family,
  // across a sample of sinks.
  const auto sinks = dag->Sinks();
  for (size_t i = 0; i < sinks.size(); i += 4) {
    const graph::NodeId sink = sinks[i];
    for (const char* mnemonic : {"D+LP-", "D-LP+", "LP-"}) {
      const Strategy s = ParseStrategy(mnemonic).value();
      auto aggregated = core::ResolveAccess(*dag, eacm, sink, o, r, s);
      core::ResolveAccessOptions literal_opt;
      literal_opt.use_literal_engine = true;
      auto literal =
          core::ResolveAccess(*dag, eacm, sink, o, r, s, literal_opt);
      auto dominance = core::DominanceAccess(*dag, eacm, sink, o, r,
                                             s.default_rule,
                                             s.preference_rule);
      ASSERT_TRUE(aggregated.ok());
      ASSERT_TRUE(literal.ok());
      ASSERT_TRUE(dominance.ok());
      EXPECT_EQ(*aggregated, *literal) << mnemonic;
      EXPECT_EQ(*aggregated, *dominance) << mnemonic;
    }
  }
}

TEST(IntegrationTest, EffectiveColumnConsistentWithRelalgReference) {
  auto dag = graph::FromEdgeListText(kOrgText);
  ASSERT_TRUE(dag.ok());
  core::AccessControlSystem system(std::move(dag).value());
  ASSERT_TRUE(system.Grant("company", "wiki", "edit").ok());
  ASSERT_TRUE(system.DenyAccess("frontend", "wiki", "edit").ok());

  const acm::ObjectId wiki = system.eacm().FindObject("wiki").value();
  const acm::RightId edit = system.eacm().FindRight("edit").value();
  const Strategy s = ParseStrategy("D-LP-").value();
  auto column = system.MaterializeEffectiveColumn(wiki, edit, s);
  ASSERT_TRUE(column.ok());

  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    auto reference = core::ResolveAccessRelalg(system.dag(), system.eacm(),
                                               v, wiki, edit, s);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ((*column)[v], *reference) << system.dag().name(v);
  }
}

}  // namespace
}  // namespace ucr
