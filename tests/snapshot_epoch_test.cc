// Epoch machinery tests (DESIGN.md §11): the lock-free per-snapshot
// tables, the slot-ring publication/reclamation protocol, and the
// torn-publish scenario — a reader pinned on epoch N while the writer
// publishes N+1 and tries to retire N. The whole file runs under the
// tsan preset (label `epoch`), so the concurrent cases double as data-
// race proofs, not just logic checks.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "acm/acm.h"
#include "core/paper_example.h"
#include "core/snapshot.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/ancestor_subgraph.h"
#include "graph/dag.h"

namespace ucr::core {
namespace {

using acm::Mode;

TEST(EpochResolutionTableTest, StoreLookupRoundTrip) {
  EpochResolutionTable table(64);
  EXPECT_EQ(table.capacity(), 64u);
  EXPECT_FALSE(table.Lookup(1, 2, 3, 0).has_value());
  ASSERT_TRUE(table.TryStore(1, 2, 3, 0, Mode::kPositive));
  ASSERT_TRUE(table.TryStore(1, 2, 3, 7, Mode::kNegative));
  EXPECT_EQ(table.Lookup(1, 2, 3, 0), Mode::kPositive);
  // Same triple, different canonical strategy: distinct entry.
  EXPECT_EQ(table.Lookup(1, 2, 3, 7), Mode::kNegative);
  EXPECT_FALSE(table.Lookup(1, 2, 3, 1).has_value());
  EXPECT_FALSE(table.Lookup(9, 2, 3, 0).has_value());
  EXPECT_EQ(table.size(), 2u);
}

TEST(EpochResolutionTableTest, CapacityRoundsUpAndLoadCaps) {
  EpochResolutionTable table(3);  // Rounds up to 4; load cap 3.
  EXPECT_EQ(table.capacity(), 4u);
  size_t stored = 0;
  for (uint32_t s = 0; s < 16; ++s) {
    if (table.TryStore(s, 0, 0, 0, Mode::kPositive)) ++stored;
  }
  EXPECT_LE(stored, 3u);  // 3/4 load cap.
  EXPECT_GT(stored, 0u);
  // Stored entries stay readable; refused ones are simply absent.
  size_t readable = 0;
  for (uint32_t s = 0; s < 16; ++s) {
    if (table.Lookup(s, 0, 0, 0).has_value()) ++readable;
  }
  EXPECT_EQ(readable, stored);
}

TEST(EpochResolutionTableTest, ForEachEnumeratesReadyEntries) {
  EpochResolutionTable table(64);
  ASSERT_TRUE(table.TryStore(5, 1, 2, 3, Mode::kPositive));
  ASSERT_TRUE(table.TryStore(6, 0, 0, 0, Mode::kNegative));
  size_t seen = 0;
  table.ForEach([&](graph::NodeId s, acm::ObjectId o, acm::RightId r,
                    uint8_t strategy, Mode mode) {
    ++seen;
    if (s == 5) {
      EXPECT_EQ(o, 1);
      EXPECT_EQ(r, 2);
      EXPECT_EQ(strategy, 3);
      EXPECT_EQ(mode, Mode::kPositive);
    } else {
      EXPECT_EQ(s, 6u);
      EXPECT_EQ(mode, Mode::kNegative);
    }
  });
  EXPECT_EQ(seen, 2u);
}

TEST(EpochResolutionTableTest, ConcurrentStoresStayConsistent) {
  EpochResolutionTable table(1 << 12);
  constexpr int kThreads = 4;
  constexpr uint32_t kSubjects = 512;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&table] {
      // All threads derive the same deterministic decision per triple,
      // exactly like racing snapshot readers.
      for (uint32_t s = 0; s < kSubjects; ++s) {
        table.TryStore(s, 0, 0, 0,
                       (s % 3 == 0) ? Mode::kPositive : Mode::kNegative);
        const auto seen = table.Lookup(s, 0, 0, 0);
        if (seen.has_value()) {
          EXPECT_EQ(*seen,
                    (s % 3 == 0) ? Mode::kPositive : Mode::kNegative);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (uint32_t s = 0; s < kSubjects; ++s) {
    const auto seen = table.Lookup(s, 0, 0, 0);
    ASSERT_TRUE(seen.has_value());
    EXPECT_EQ(*seen, (s % 3 == 0) ? Mode::kPositive : Mode::kNegative);
  }
}

TEST(EpochSubgraphTableTest, InstallOwnershipProtocol) {
  PaperExample ex = MakePaperExample();
  const graph::Dag dag = std::move(ex.dag);
  EpochSubgraphTable table(64);
  EXPECT_EQ(table.Find(0), nullptr);

  auto mine = std::unique_ptr<const graph::AncestorSubgraph>(
      new graph::AncestorSubgraph(dag, 0));
  const graph::AncestorSubgraph* raw = mine.get();
  const graph::AncestorSubgraph* resident = table.Install(0, mine);
  EXPECT_EQ(resident, raw);
  EXPECT_EQ(mine, nullptr);  // Ownership moved into the table.
  EXPECT_EQ(table.Find(0), raw);

  // A second extraction of the same subject loses the race: the
  // resident one is returned and the caller keeps ownership.
  auto second = std::unique_ptr<const graph::AncestorSubgraph>(
      new graph::AncestorSubgraph(dag, 0));
  EXPECT_EQ(table.Install(0, second), raw);
  EXPECT_NE(second, nullptr);
  EXPECT_EQ(table.size(), 1u);
}

TEST(EpochSubgraphTableTest, ConcurrentInstallOneWinner) {
  PaperExample ex = MakePaperExample();
  const graph::Dag dag = std::move(ex.dag);
  for (int round = 0; round < 8; ++round) {
    EpochSubgraphTable table(64);
    constexpr int kThreads = 4;
    std::atomic<const graph::AncestorSubgraph*> winner{nullptr};
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([&] {
        auto sub = std::unique_ptr<const graph::AncestorSubgraph>(
            new graph::AncestorSubgraph(dag, 1));
        const graph::AncestorSubgraph* resident = table.Install(1, sub);
        ASSERT_NE(resident, nullptr);
        const graph::AncestorSubgraph* expected = nullptr;
        winner.compare_exchange_strong(expected, resident);
        // Everyone must end up using the same resident extraction or
        // their own still-owned copy — never a freed pointer.
        if (sub == nullptr) {
          EXPECT_EQ(resident, table.Find(1));
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(table.size(), 1u);
    EXPECT_EQ(table.Find(1), winner.load());
  }
}

std::unique_ptr<const HierarchySnapshot> MakeSnapshot(
    const AccessControlSystem& system, uint64_t epoch,
    const HierarchySnapshot* previous = nullptr) {
  return BuildSnapshot(system.dag(), system.eacm(), system.strategy(),
                       system.propagation_mode(), epoch, previous,
                       /*resolution_capacity=*/1 << 10);
}

AccessControlSystem MakePaperSystem() {
  PaperExample ex = MakePaperExample();
  AccessControlSystem system(std::move(ex.dag));
  EXPECT_TRUE(system.Grant("S2", "obj", "read").ok());
  EXPECT_TRUE(system.Grant("S4", "obj", "read").ok());
  EXPECT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  return system;
}

TEST(SnapshotManagerTest, PinBeforeFirstPublishIsEmpty) {
  SnapshotManager manager;
  EXPECT_EQ(manager.current_epoch(), 0u);
  const SnapshotManager::ReadPin pin = manager.Pin();
  EXPECT_FALSE(pin);
  EXPECT_EQ(manager.active_readers(), 0u);
}

TEST(SnapshotManagerTest, PublishPinRelease) {
  AccessControlSystem system = MakePaperSystem();
  SnapshotManager manager;
  manager.Publish(MakeSnapshot(system, 1));
  EXPECT_EQ(manager.current_epoch(), 1u);
  EXPECT_EQ(manager.published_total(), 1u);
  {
    const SnapshotManager::ReadPin pin = manager.Pin();
    ASSERT_TRUE(pin);
    EXPECT_EQ(pin->epoch, 1u);
    EXPECT_EQ(manager.active_readers(), 1u);
    const SnapshotManager::ReadPin second = manager.Pin();
    EXPECT_EQ(manager.active_readers(), 2u);
  }
  EXPECT_EQ(manager.active_readers(), 0u);
}

TEST(SnapshotManagerTest, RetiresOnlyAfterRingWraps) {
  AccessControlSystem system = MakePaperSystem();
  SnapshotManager manager;
  const size_t n = SnapshotManager::kEpochSlots + 2;
  for (uint64_t e = 1; e <= n; ++e) {
    manager.Publish(MakeSnapshot(system, e));
  }
  EXPECT_EQ(manager.current_epoch(), n);
  EXPECT_EQ(manager.published_total(), n);
  // The ring retains the last kEpochSlots snapshots; everything older
  // was retired when its slot was reused.
  EXPECT_EQ(manager.retired_total(), n - SnapshotManager::kEpochSlots);
}

/// The torn-publish scenario: a reader pinned on epoch N keeps its
/// snapshot fully usable while the writer publishes N+1 and — once the
/// ring wraps onto N's slot — blocks in Publish until the pin drops.
TEST(SnapshotManagerTest, PinnedReaderSurvivesPublishAndBlocksReclaim) {
  AccessControlSystem system = MakePaperSystem();
  SnapshotManager manager;
  manager.Publish(MakeSnapshot(system, 1));

  SnapshotManager::ReadPin pin = manager.Pin();
  ASSERT_TRUE(pin);
  ASSERT_EQ(pin->epoch, 1u);

  // Publish up to the ring edge: epoch 1's slot is not reused yet, so
  // none of these can block.
  for (uint64_t e = 2; e <= SnapshotManager::kEpochSlots; ++e) {
    manager.Publish(MakeSnapshot(system, e));
  }
  // The pinned snapshot still answers queries — its state is epoch
  // 1's, untouched by the newer publications.
  const auto pinned_mode = SnapshotResolveAccess(
      *pin, 0, acm::ObjectId{0}, acm::RightId{0}, pin->default_strategy);
  ASSERT_TRUE(pinned_mode.ok());
  EXPECT_EQ(manager.current_epoch(), SnapshotManager::kEpochSlots);
  EXPECT_EQ(manager.retired_total(), 0u);

  // Epoch kEpochSlots + 1 maps onto epoch 1's slot: the writer must
  // wait for the pin. Run it on a thread and verify it does not
  // complete while the pin is held.
  std::atomic<bool> published{false};
  std::thread writer([&] {
    manager.Publish(MakeSnapshot(system, SnapshotManager::kEpochSlots + 1));
    published.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(published.load(std::memory_order_acquire));
  // The pinned reader can still resolve right up to release.
  ASSERT_TRUE(SnapshotResolveAccess(*pin, 1, acm::ObjectId{0},
                                    acm::RightId{0}, pin->default_strategy)
                  .ok());
  pin = SnapshotManager::ReadPin();  // Release: unblocks the writer.
  writer.join();
  EXPECT_TRUE(published.load(std::memory_order_acquire));
  EXPECT_EQ(manager.current_epoch(), SnapshotManager::kEpochSlots + 1);
  EXPECT_EQ(manager.retired_total(), 1u);
}

/// tsan workhorse: N reader threads pin/query/unpin continuously while
/// one writer keeps mutating the system (each successful mutator
/// publishes). Any torn publication, use-after-retire, or unsynchron-
/// ized table access shows up as a race or a failed decision here.
TEST(SnapshotManagerTest, ConcurrentReadersUnderContinuousMutation) {
  AccessControlSystem system = MakePaperSystem();
  system.EnableSnapshotReads();
  ASSERT_NE(system.snapshots(), nullptr);

  constexpr int kReaders = 3;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  const size_t subjects = system.dag().node_count();
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      uint64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const auto subject = static_cast<graph::NodeId>(
            (local + static_cast<uint64_t>(t)) % subjects);
        const auto mode = system.CheckAccessSnapshot(
            subject, acm::ObjectId{0}, acm::RightId{0});
        // The snapshot path can never fail on valid ids, no matter
        // what the writer is doing.
        ASSERT_TRUE(mode.ok()) << mode.status().ToString();
        ++local;
      }
      queries.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // Writer: alternating grant/revoke batches plus membership churn on
  // a side chain, so hierarchy generations and column epochs both
  // move.
  for (int round = 0; round < 40; ++round) {
    std::vector<AccessControlSystem::MutationOp> ops;
    if (round % 2 == 0) {
      ops.push_back(AccessControlSystem::MutationOp::Grant(
          "S3", "obj", "read"));
      ops.push_back(AccessControlSystem::MutationOp::AddMember(
          "S1", "churn" + std::to_string(round)));
    } else {
      ops.push_back(AccessControlSystem::MutationOp::Revoke(
          "S3", "obj", "read"));
    }
    ASSERT_TRUE(system.ApplyMutations(ops).ok());
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& r : readers) r.join();
  EXPECT_GT(queries.load(), 0u);
  EXPECT_GE(system.snapshots()->published_total(), 40u);

  // Quiesced: final snapshot state equals the classic path's.
  for (graph::NodeId v = 0; v < system.dag().node_count(); ++v) {
    const auto snap =
        system.CheckAccessSnapshot(v, acm::ObjectId{0}, acm::RightId{0});
    const auto classic = system.CheckAccess(v, acm::ObjectId{0},
                                            acm::RightId{0},
                                            system.strategy());
    ASSERT_TRUE(snap.ok());
    ASSERT_TRUE(classic.ok());
    EXPECT_EQ(*snap, *classic);
  }
}

TEST(SnapshotSystemTest, DisabledPathFailsPrecondition) {
  AccessControlSystem system = MakePaperSystem();
  EXPECT_FALSE(system.snapshot_reads_enabled());
  EXPECT_EQ(system.snapshots(), nullptr);
  const auto mode =
      system.CheckAccessSnapshot(0, acm::ObjectId{0}, acm::RightId{0});
  EXPECT_FALSE(mode.ok());
  system.EnableSnapshotReads();
  system.EnableSnapshotReads();  // Idempotent.
  EXPECT_TRUE(system.snapshot_reads_enabled());
  EXPECT_TRUE(
      system.CheckAccessSnapshot(0, acm::ObjectId{0}, acm::RightId{0}).ok());
}

}  // namespace
}  // namespace ucr::core
