// Unit tests for the reachability index (src/graph/reachability.h,
// DESIGN.md §12): Reaches() against a BFS oracle on both answer paths
// (2-hop labels and the interval-filtered traversal), supernode
// folding on the paper's Fig. 7b diamond stacks, incremental-rebuild
// equivalence with a from-scratch build under randomized hierarchy and
// row churn, budget-abort stickiness, and the million-node layered
// generator's shape contract.

#include "graph/reachability.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

#include "graph/dag.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::graph {
namespace {

ReachLabeledRow Row(NodeId node, std::vector<uint64_t> keys) {
  std::sort(keys.begin(), keys.end());
  return ReachLabeledRow{node, std::move(keys)};
}

/// BFS oracle: every node reachable from `a` along child edges.
std::vector<uint8_t> ReachableFrom(const Dag& dag, NodeId a) {
  std::vector<uint8_t> seen(dag.node_count(), 0);
  std::vector<NodeId> queue{a};
  seen[a] = 1;
  for (size_t head = 0; head < queue.size(); ++head) {
    for (const NodeId c : dag.children(queue[head])) {
      if (!seen[c]) {
        seen[c] = 1;
        queue.push_back(c);
      }
    }
  }
  return seen;
}

void ExpectReachesMatchesOracle(const Dag& dag, const ReachabilityIndex& idx) {
  for (NodeId a = 0; a < dag.node_count(); ++a) {
    const std::vector<uint8_t> oracle = ReachableFrom(dag, a);
    for (NodeId b = 0; b < dag.node_count(); ++b) {
      ASSERT_EQ(idx.Reaches(a, b), oracle[b] != 0)
          << dag.name(a) << " -> " << dag.name(b);
    }
  }
}

TEST(ReachabilityTest, ReachesMatchesBfsOracleViaTwoHopLabels) {
  Random rng(7);
  LayeredDagOptions shape;
  shape.layers = 6;
  shape.nodes_per_layer = 9;
  shape.skip_edge_probability = 0.2;
  auto dag = GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());
  auto idx = ReachabilityIndex::Build(*dag, 1, {});
  ASSERT_TRUE(idx->ready());
  ASSERT_TRUE(idx->stats().two_hop_ready);
  ExpectReachesMatchesOracle(*dag, *idx);
}

TEST(ReachabilityTest, ReachesMatchesBfsOracleViaTraversalFallback) {
  Random rng(8);
  LayeredDagOptions shape;
  shape.layers = 5;
  shape.nodes_per_layer = 8;
  shape.skip_edge_probability = 0.25;
  auto dag = GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());
  // Above the (zeroed) 2-hop gate: interval fast-accept + filtered DFS.
  ReachabilityOptions options;
  options.two_hop_max_nodes = 0;
  auto idx = ReachabilityIndex::Build(*dag, 1, {}, options);
  ASSERT_TRUE(idx->ready());
  ASSERT_FALSE(idx->stats().two_hop_ready);
  ExpectReachesMatchesOracle(*dag, *idx);
}

TEST(ReachabilityTest, DiamondStackFoldsToOneInteriorRegion) {
  // Fig. 7b worst case: 2^k root-to-sink paths over 3k+1 nodes. Every
  // node but the (labeled) root is label-equivalent pure interior, so
  // the summary collapses to a single supernode class and the label
  // pool stays linear in k while the path count is exponential.
  constexpr size_t k = 40;
  auto dag = GenerateDiamondStack(k);
  ASSERT_TRUE(dag.ok());
  const std::vector<ReachLabeledRow> rows = {Row(0, {42})};
  auto idx = ReachabilityIndex::Build(*dag, 1, rows);
  ASSERT_TRUE(idx->ready());

  const ReachabilityIndex::IndexStats stats = idx->stats();
  EXPECT_EQ(stats.supernodes, 1u);           // The labeled root class.
  EXPECT_EQ(stats.folded_nodes, 3 * k);      // Everything else.
  EXPECT_LE(stats.label_entries, 4 * k + 4);  // Polynomial, not 2^k.

  // The sink's whole compressed profile is one entry carrying the
  // exact (saturating) path count: 2^k paths of length 2k.
  const NodeId sink = dag->FindNode("Dsink");
  ASSERT_NE(sink, kInvalidNode);
  const auto label = idx->label(sink);
  ASSERT_EQ(label.size(), 1u);
  EXPECT_EQ(label[0].cls, idx->class_of(0));
  EXPECT_EQ(label[0].dis, 2 * k);
  EXPECT_EQ(label[0].count, uint64_t{1} << k);
}

// Decoded profile entry: the class id is replaced by its (row,
// root-ness) content so labels from independently built indexes (whose
// interned ids may differ) compare structurally.
using DecodedEntry = std::tuple<std::vector<uint64_t>, bool, uint32_t,
                                uint64_t>;

std::vector<DecodedEntry> DecodedLabel(const ReachabilityIndex& idx,
                                       NodeId v) {
  std::vector<DecodedEntry> out;
  for (const ReachabilityIndex::ProfileEntry& e : idx.label(v)) {
    const ReachabilityIndex::ClassInfo info = idx.class_info(e.cls);
    out.emplace_back(std::vector<uint64_t>(info.row.begin(), info.row.end()),
                     info.is_root, e.dis, e.count);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<ReachLabeledRow> RowsOf(
    const std::map<NodeId, std::vector<uint64_t>>& rows) {
  std::vector<ReachLabeledRow> out;
  for (const auto& [node, row] : rows) out.push_back(Row(node, row));
  return out;
}

void ExpectIndexesEquivalent(const Dag& dag, const ReachabilityIndex& a,
                             const ReachabilityIndex& b) {
  ASSERT_EQ(a.ready(), b.ready());
  ASSERT_EQ(a.node_count(), b.node_count());
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    SCOPED_TRACE("node " + dag.name(v));
    // Class content (not id) must agree, interior-ness included.
    const bool a_interior =
        a.class_of(v) == ReachabilityIndex::kInteriorClass;
    const bool b_interior =
        b.class_of(v) == ReachabilityIndex::kInteriorClass;
    ASSERT_EQ(a_interior, b_interior);
    if (!a_interior) {
      const auto ia = a.class_info(a.class_of(v));
      const auto ib = b.class_info(b.class_of(v));
      ASSERT_EQ(ia.is_root, ib.is_root);
      ASSERT_TRUE(std::equal(ia.row.begin(), ia.row.end(), ib.row.begin(),
                             ib.row.end()));
    }
    ASSERT_EQ(DecodedLabel(a, v), DecodedLabel(b, v));
  }
}

TEST(ReachabilityTest, IncrementalRebuildMatchesFullBuildUnderChurn) {
  Random rng(33);
  LayeredDagOptions shape;
  shape.layers = 6;
  shape.nodes_per_layer = 8;
  shape.skip_edge_probability = 0.2;
  auto built = GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(built.ok());
  Dag dag = std::move(built).value();

  // Sparse initial rows from a small key alphabet.
  const uint64_t alphabet[] = {3, 7, 11, 19};
  std::map<NodeId, std::vector<uint64_t>> rows;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    if (!rng.Bernoulli(0.3)) continue;
    std::vector<uint64_t> row;
    for (const uint64_t key : alphabet) {
      if (rng.Bernoulli(0.5)) row.push_back(key);
    }
    if (!row.empty()) rows[v] = row;
  }

  uint64_t epoch = 1;
  auto incremental =
      ReachabilityIndex::Build(dag, epoch, RowsOf(rows));
  ASSERT_TRUE(incremental->ready());

  for (int step = 0; step < 24; ++step) {
    SCOPED_TRACE("step " + std::to_string(step));
    std::vector<NodeId> affected;
    std::vector<ReachLabeledRow> changed;
    const uint64_t choice = rng.Uniform(4);
    if (choice == 0) {
      // Insert a random edge (skip the step on cycle/duplicate).
      const NodeId p = static_cast<NodeId>(rng.Uniform(dag.node_count()));
      const NodeId c = static_cast<NodeId>(rng.Uniform(dag.node_count()));
      if (p == c || !dag.InsertEdge(p, c, &affected).ok()) continue;
    } else if (choice == 1) {
      // Erase some node's first parent edge — the child may become a
      // root, exercising the class root-ness fix-up.
      const NodeId c = static_cast<NodeId>(rng.Uniform(dag.node_count()));
      if (dag.parents(c).empty()) continue;
      ASSERT_TRUE(dag.EraseEdge(dag.parents(c).front(), c, &affected).ok());
    } else if (choice == 2) {
      // Grow the hierarchy: a brand-new node under a random parent.
      const NodeId p = static_cast<NodeId>(rng.Uniform(dag.node_count()));
      const NodeId c = dag.EnsureNode("extra" + std::to_string(step));
      ASSERT_TRUE(dag.InsertEdge(p, c, &affected).ok());
    } else {
      // Rewrite a random subject's row (possibly to empty).
      const NodeId v = static_cast<NodeId>(rng.Uniform(dag.node_count()));
      std::vector<uint64_t> row;
      for (const uint64_t key : alphabet) {
        if (rng.Bernoulli(0.4)) row.push_back(key);
      }
      if (row.empty()) {
        rows.erase(v);
      } else {
        rows[v] = row;
      }
      changed.push_back(Row(v, rows.count(v) ? rows[v] : std::vector<uint64_t>{}));
      affected = dag.DescendantsOf(v);
      ++epoch;
    }

    incremental = ReachabilityIndex::RebuildIncremental(
        dag, epoch, incremental, affected, changed);
    ASSERT_TRUE(incremental->ready());
    const auto fresh = ReachabilityIndex::Build(dag, epoch, RowsOf(rows));
    ASSERT_TRUE(fresh->ready());
    ExpectIndexesEquivalent(dag, *incremental, *fresh);
    ASSERT_EQ(incremental->dag_generation(), dag.generation());
  }
}

TEST(ReachabilityTest, LabelBudgetAbortIsStickyAcrossIncrementalRebuilds) {
  Random rng(55);
  LayeredDagOptions shape;
  shape.layers = 4;
  shape.nodes_per_layer = 6;
  auto built = GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(built.ok());
  Dag dag = std::move(built).value();

  // Every node gets a distinct row -> every node is its own class and
  // the label pool is super-linear; a mean budget of 1 entry per node
  // must abort the build.
  std::vector<ReachLabeledRow> rows;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    rows.push_back(Row(v, {uint64_t{100} + v}));
  }
  ReachabilityOptions tight;
  tight.max_mean_label_entries = 1;
  auto idx = ReachabilityIndex::Build(dag, 1, rows, tight);
  EXPECT_FALSE(idx->ready());
  // Boolean reachability stays exact without the profile labels.
  ExpectReachesMatchesOracle(dag, *idx);

  // A later mutation cannot resurrect the labels from nothing: the
  // abort is sticky and callers keep the classic engine.
  std::vector<NodeId> affected;
  const NodeId last = static_cast<NodeId>(dag.node_count() - 1);
  ASSERT_TRUE(dag.EraseEdge(dag.parents(last).front(), last, &affected).ok());
  const auto rebuilt = ReachabilityIndex::RebuildIncremental(
      dag, 2, idx, affected, {});
  EXPECT_FALSE(rebuilt->ready());
  EXPECT_EQ(rebuilt->dag_generation(), dag.generation());
}

TEST(ReachabilityTest, ScaleLayeredGeneratorShapeContract) {
  Random rng(77);
  ScaleLayeredDagOptions shape;
  shape.nodes = 1000;
  shape.layers = 10;
  shape.parents_per_node = 3;
  auto dag = GenerateScaleLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());
  ASSERT_EQ(dag->node_count(), 1000u);

  // Layer-contiguous ids; every non-first-layer node has 1..3 parents,
  // all in the layer directly above.
  auto layer_of = [&](NodeId v) { return (v * shape.layers) / shape.nodes; };
  for (NodeId v = 0; v < dag->node_count(); ++v) {
    if (layer_of(v) == 0) {
      EXPECT_TRUE(dag->parents(v).empty());
      continue;
    }
    const auto parents = dag->parents(v);
    ASSERT_GE(parents.size(), 1u);
    ASSERT_LE(parents.size(), shape.parents_per_node);
    for (const NodeId p : parents) {
      EXPECT_EQ(layer_of(p) + 1, layer_of(v));
    }
  }

  EXPECT_FALSE(GenerateScaleLayeredDag({1, 1, 1}, rng).ok());
  EXPECT_FALSE(GenerateScaleLayeredDag({4, 9, 1}, rng).ok());
  EXPECT_FALSE(GenerateScaleLayeredDag({4, 2, 0}, rng).ok());
}

}  // namespace
}  // namespace ucr::graph
