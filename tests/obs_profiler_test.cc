// Tests for the continuous-profiling layer (src/obs/profiler.h,
// DESIGN.md §14): phase-collection ownership and nesting, scoped
// timer attribution, per-phase histogram population from sampled
// queries, the SIGPROF wall-clock sampler (lifecycle, folded-stack
// rendering, restart semantics), a signal storm racing mutation churn
// (a data-race proof under the TSan preset), and the EINTR audit —
// /metrics and /profilez scrapes plus the audit writer staying intact
// while every thread is being signalled at ~1 kHz.

#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "acm/acm.h"
#include "core/paper_example.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "obs/audit_log.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/random.h"

namespace ucr::obs {
namespace {

#if !UCR_METRICS_ENABLED

// The UCR_METRICS=OFF gating satellite: every profiler entry point
// must compile to an inert inline body (the nometrics CI preset builds
// this branch), and none of them may pretend to be live.
TEST(ObsProfilerTest, DisabledBuildCompilesToNoops) {
  WallProfiler& profiler = WallProfiler::Global();
  EXPECT_FALSE(profiler.Start());
  EXPECT_FALSE(profiler.Start(WallProfiler::Options{}));
  EXPECT_FALSE(profiler.running());
  profiler.Stop();
  profiler.TickOnceForTesting();
  EXPECT_TRUE(profiler.RenderFolded().empty());
  EXPECT_EQ(profiler.GetStats().samples_total, 0u);

  EXPECT_FALSE(PhaseCollectionActive());
  ScopedPhaseCollection collection(true);
  EXPECT_FALSE(collection.owner());
  EXPECT_FALSE(PhaseCollectionActive());
  AddPhaseNs(Phase::kExtract, 100);
  { ScopedPhaseTimer timer(Phase::kResolve); }
  { ScopedPhaseSuspend suspend; }
  EXPECT_EQ(collection.Snapshot().TotalNs(), 0u);
}

#else

/// One blocking HTTP exchange against 127.0.0.1:`port` (same helper as
/// obs_http_exporter_test); returns the raw response.
std::string HttpRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return HttpRequest(port,
                     "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

std::string BodyOf(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

/// Parses one folded-stack blob: every line must be
/// `frame[;frame...] <count>` with a positive integer count. Returns
/// the number of samples (sum of counts); -1 on any malformed line.
int64_t ParseFolded(const std::string& folded, std::string* error) {
  int64_t total = 0;
  std::istringstream lines(folded);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0) {
      *error = "no count separator: " + line;
      return -1;
    }
    const std::string stack = line.substr(0, space);
    if (stack.empty() || stack.front() == ';' || stack.back() == ';') {
      *error = "malformed stack: " + line;
      return -1;
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long count =
        std::strtoull(line.c_str() + space + 1, &end, 10);
    if (errno != 0 || end == line.c_str() + space + 1 || *end != '\0' ||
        count == 0) {
      *error = "bad count: " + line;
      return -1;
    }
    total += static_cast<int64_t>(count);
  }
  return total;
}

/// Count of one `ucr_phase_*_ns` histogram (pre-interned by the
/// profiler, so the help string here is never the registered one).
uint64_t PhaseHistogramCount(Phase phase) {
  return Registry::Global()
      .GetHistogram(PhaseMetricName(phase), "(test read)")
      .Snap()
      .count;
}

TEST(ObsProfilerTest, PhaseNamesAndMetricNamesAreStable) {
  for (size_t i = 0; i < kPhaseCount; ++i) {
    const Phase phase = static_cast<Phase>(i);
    const std::string name = PhaseName(phase);
    const std::string metric = PhaseMetricName(phase);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(metric, "ucr_phase_" + name + "_ns");
  }
  EXPECT_STREQ(PhaseName(Phase::kCacheProbe), "cache_probe");
  EXPECT_STREQ(PhaseName(Phase::kBatchAssemble), "batch_assemble");
}

TEST(ObsProfilerTest, CollectionOwnershipGatesAttribution) {
  ASSERT_FALSE(PhaseCollectionActive());

  {
    ScopedPhaseCollection unsampled(false);
    EXPECT_FALSE(unsampled.owner());
    EXPECT_FALSE(PhaseCollectionActive());
    AddPhaseNs(Phase::kExtract, 100);  // Dropped: no active scope.
    EXPECT_EQ(unsampled.Snapshot().TotalNs(), 0u);
  }

  const uint64_t extract_before = PhaseHistogramCount(Phase::kExtract);
  {
    ScopedPhaseCollection sampled(true);
    EXPECT_TRUE(sampled.owner());
    EXPECT_TRUE(PhaseCollectionActive());
    AddPhaseNs(Phase::kExtract, 100);
    AddPhaseNs(Phase::kResolve, 7);

    // A nested scope (ResolveAccess under CheckAccess) must not steal
    // ownership or flush early.
    {
      ScopedPhaseCollection nested(true);
      EXPECT_FALSE(nested.owner());
      AddPhaseNs(Phase::kExtract, 23);
    }
    EXPECT_TRUE(PhaseCollectionActive());

    // Suspension (the shadow oracle's re-resolution) drops attribution
    // without ending the scope.
    {
      ScopedPhaseSuspend suspend;
      EXPECT_FALSE(PhaseCollectionActive());
      AddPhaseNs(Phase::kExtract, 1'000'000);  // Dropped.
    }
    EXPECT_TRUE(PhaseCollectionActive());

    const PhaseBreakdown snapshot = sampled.Snapshot();
    EXPECT_EQ(snapshot.of(Phase::kExtract), 123u);
    EXPECT_EQ(snapshot.of(Phase::kResolve), 7u);
    EXPECT_EQ(snapshot.TotalNs(), 130u);
  }
  EXPECT_FALSE(PhaseCollectionActive());
  // The owner's destructor flushed into the phase histograms.
  EXPECT_EQ(PhaseHistogramCount(Phase::kExtract), extract_before + 1);
}

TEST(ObsProfilerTest, ScopedTimerMeasuresOnlyInsideACollection) {
  // Outside any collection scope the timer must not arm (the unsampled
  // hot path is one TLS load + branch, no clock read).
  {
    ScopedPhaseTimer timer(Phase::kPropagate);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  ScopedPhaseCollection sampled(true);
  ASSERT_TRUE(sampled.owner());
  {
    ScopedPhaseTimer timer(Phase::kPropagate);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const PhaseBreakdown snapshot = sampled.Snapshot();
  EXPECT_GE(snapshot.of(Phase::kPropagate), 1'000'000u)
      << "a 2 ms timed region attributed less than 1 ms";
  EXPECT_EQ(snapshot.of(Phase::kExtract), 0u)
      << "the pre-collection timer leaked into the scope";
}

TEST(ObsProfilerTest, SampledQueriesPopulatePhaseHistograms) {
  Random rng(97);
  graph::LayeredDagOptions shape;
  shape.layers = 4;
  shape.nodes_per_layer = 8;
  shape.skip_edge_probability = 0.2;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());
  acm::ExplicitAcm eacm;
  const acm::ObjectId object = eacm.InternObject("o").value();
  const acm::RightId right = eacm.InternRight("r").value();
  ASSERT_TRUE(eacm.Set(0, object, right, acm::Mode::kPositive).ok());

  QueryTracer& tracer = QueryTracer::Global();
  const uint64_t previous_interval = tracer.sample_interval();
  tracer.SetSampleInterval(1);

  const uint64_t extract_before = PhaseHistogramCount(Phase::kExtract);
  const uint64_t propagate_before = PhaseHistogramCount(Phase::kPropagate);
  const uint64_t resolve_before = PhaseHistogramCount(Phase::kResolve);

  const core::Strategy strategy = core::ParseStrategy("D+LP-").value();
  for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
    ASSERT_TRUE(
        core::ResolveAccess(*dag, eacm, v, object, right, strategy).ok());
  }
  tracer.SetSampleInterval(previous_interval);

  EXPECT_GT(PhaseHistogramCount(Phase::kExtract), extract_before);
  EXPECT_GT(PhaseHistogramCount(Phase::kPropagate), propagate_before);
  EXPECT_GT(PhaseHistogramCount(Phase::kResolve), resolve_before);

  // The sampled trace records carry the same breakdown.
  const std::vector<QueryTraceRecord> records = tracer.Snapshot();
  ASSERT_FALSE(records.empty());
  bool any_phases = false;
  for (const QueryTraceRecord& record : records) {
    any_phases = any_phases || record.phases.TotalNs() > 0;
  }
  EXPECT_TRUE(any_phases)
      << "no sampled record carried a non-zero phase breakdown";
}

TEST(ObsProfilerTest, WallProfilerCapturesAndRendersFoldedStacks) {
  WallProfiler& profiler = WallProfiler::Global();
  ASSERT_FALSE(profiler.running());
  WallProfiler::Options options;
  options.hz = 197;
  ASSERT_TRUE(profiler.Start(options));
  EXPECT_TRUE(profiler.running());
  EXPECT_FALSE(profiler.Start()) << "double Start must be refused";

  // Deterministic sample counts: synchronous signal+drain passes
  // instead of waiting out the ticker interval.
  for (int i = 0; i < 8; ++i) profiler.TickOnceForTesting();

  const WallProfiler::Stats stats = profiler.GetStats();
  EXPECT_TRUE(stats.running);
  EXPECT_GE(stats.signals_sent, 8u);
  EXPECT_GE(stats.samples_total, 1u);
  EXPECT_GE(stats.threads_seen, 1u);
  EXPECT_LE(stats.samples_total, stats.signals_sent + stats.dropped_total);

  const std::string folded = profiler.RenderFolded();
  ASSERT_FALSE(folded.empty());
  std::string error;
  const int64_t rendered = ParseFolded(folded, &error);
  ASSERT_GE(rendered, 1) << error;
  EXPECT_LE(static_cast<uint64_t>(rendered), stats.samples_total + 8);

  profiler.Stop();
  EXPECT_FALSE(profiler.running());
  profiler.Stop();  // Idempotent.
  // The aggregated profile stays readable after Stop...
  EXPECT_FALSE(profiler.RenderFolded().empty());

  // ...and a restart resets the aggregation.
  ASSERT_TRUE(profiler.Start(options));
  EXPECT_EQ(profiler.GetStats().samples_total, 0u);
  profiler.Stop();
}

TEST(ObsProfilerTest, RingWrapUnderSignalBurstsKeepsTotalsCoherent) {
  WallProfiler& profiler = WallProfiler::Global();
  WallProfiler::Options options;
  options.hz = 997;  // ~1 kHz: rings wrap when a drain falls behind.
  ASSERT_TRUE(profiler.Start(options));

  // Busy threads give the handler distinct stacks to capture while the
  // free-running ticker signals at ~1 kHz.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> sink{0};
  std::vector<std::thread> busy;
  for (int t = 0; t < 3; ++t) {
    busy.emplace_back([&] {
      uint64_t x = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        x = x * 2862933555777941757ull + 3037000493ull;
        sink.fetch_add(x, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  for (int i = 0; i < 64; ++i) profiler.TickOnceForTesting();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : busy) thread.join();
  profiler.Stop();

  const WallProfiler::Stats stats = profiler.GetStats();
  EXPECT_GE(stats.samples_total, 32u);
  EXPECT_GE(stats.threads_seen, 4u);  // Main + busy workers.
  // Overflow may or may not have happened on this host; whatever was
  // kept must still render as well-formed folded stacks.
  std::string error;
  EXPECT_GE(ParseFolded(profiler.RenderFolded(), &error), 1) << error;
}

// The TSan target: a ~1 kHz signal storm interrupting threads that are
// mutating the hierarchy (epoch churn, cache sweeps) and resolving
// sampled queries (phase TLS traffic) concurrently. The handler writes
// rings that the ticker drains; any ordering bug between them is a
// torn sample this test makes TSan watch for.
TEST(ObsProfilerTest, SignalStormSurvivesMutationChurn) {
  core::PaperExample ex = core::MakePaperExample();
  core::AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  // Readers ride the epoch-snapshot path: it is the one read API
  // specified to race ApplyMutations, and its resolve runs the same
  // phase collection as the mutable-path entry points.
  system.EnableSnapshotReads();

  QueryTracer& tracer = QueryTracer::Global();
  const uint64_t previous_interval = tracer.sample_interval();
  tracer.SetSampleInterval(1);  // Every query runs a phase collection.

  WallProfiler& profiler = WallProfiler::Global();
  WallProfiler::Options options;
  options.hz = 997;
  ASSERT_TRUE(profiler.Start(options));

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    using MutationOp = core::AccessControlSystem::MutationOp;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::vector<MutationOp> grow = {
          MutationOp::Grant("S6", "obj", "read"),
          MutationOp::AddMember("S1", "S6"),
      };
      const std::vector<MutationOp> shrink = {
          MutationOp::RemoveMember("S1", "S6"),
          MutationOp::Revoke("S6", "obj", "read"),
      };
      core::AccessControlSystem::MutationBatchStats stats;
      ASSERT_TRUE(system.ApplyMutations(grow, &stats).ok());
      ASSERT_TRUE(system.ApplyMutations(shrink, &stats).ok());
    }
  });

  constexpr int kReaders = 3;
  constexpr int kQueriesEach = 400;
  std::atomic<int> readers_active{kReaders};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      for (int i = 0; i < kQueriesEach; ++i) {
        ASSERT_TRUE(
            system.CheckAccessSnapshotByName("User", "obj", "read").ok());
      }
      readers_active.fetch_sub(1, std::memory_order_relaxed);
    });
  }
  // Drive the storm synchronously while the readers and the churn
  // thread are live: each tick signals EVERY thread, so the queries
  // above really are interrupted mid-resolve.
  while (readers_active.load(std::memory_order_relaxed) > 0) {
    profiler.TickOnceForTesting();
  }
  for (std::thread& reader : readers) reader.join();
  stop.store(true, std::memory_order_relaxed);
  churn.join();

  profiler.Stop();
  tracer.SetSampleInterval(previous_interval);

  const WallProfiler::Stats stats = profiler.GetStats();
  EXPECT_GE(stats.signals_sent, 1u);
  std::string error;
  EXPECT_GE(ParseFolded(profiler.RenderFolded(), &error), 0) << error;
}

// The §14 EINTR audit, as a test: with every thread being signalled at
// ~1 kHz, (a) /metrics and /profilez scrapes over real sockets must
// come back complete — a recv/send loop that treats EINTR as EOF
// truncates mid-body — and (b) the audit writer's fwrite loop must
// keep emitting whole JSON lines to its file sink.
TEST(ObsProfilerTest, ScrapesAndAuditWriterSurviveOneKhzProfiling) {
  const std::string audit_path =
      ::testing::TempDir() + "/profiler_eintr_audit.jsonl";
  std::remove(audit_path.c_str());

  QueryTracer& tracer = QueryTracer::Global();
  const uint64_t previous_interval = tracer.sample_interval();
  tracer.SetSampleInterval(1);
  AuditLogOptions audit_options;
  audit_options.sinks.push_back(
      std::make_unique<RotatingFileSink>(audit_path));
  ASSERT_TRUE(AuditLog::Global().Start(std::move(audit_options)));

  WallProfiler& profiler = WallProfiler::Global();
  WallProfiler::Options options;
  options.hz = 997;
  ASSERT_TRUE(profiler.Start(options));

  HttpExporter exporter;
  std::string error;
  ASSERT_TRUE(exporter.Start(0, &error)) << error;

  // Sampled queries keep audit events flowing while we scrape.
  core::PaperExample ex = core::MakePaperExample();
  core::AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());

  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(system.CheckAccessByName("User", "obj", "read").ok());
    const std::string metrics = Get(exporter.port(), "/metrics");
    EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
    const std::string text = BodyOf(metrics);
    EXPECT_NE(text.find("# HELP"), std::string::npos)
        << "truncated /metrics body under signal load (EINTR mishandled?)";
    EXPECT_NE(text.find("ucr_phase_extract_ns"), std::string::npos);

    const std::string profilez = Get(exporter.port(), "/profilez");
    EXPECT_NE(profilez.find("HTTP/1.1 200 OK"), std::string::npos);
    std::string parse_error;
    EXPECT_GE(ParseFolded(BodyOf(profilez), &parse_error), 0) << parse_error;
  }

  exporter.Stop();
  profiler.Stop();
  AuditLog::Global().Stop();  // Flushes the writer.
  tracer.SetSampleInterval(previous_interval);

  // Every line the writer produced under signal pressure is a whole
  // JSON object: no short-write truncation.
  std::ifstream audit(audit_path);
  ASSERT_TRUE(audit.good()) << audit_path;
  std::string line;
  size_t lines = 0;
  while (std::getline(audit, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << "torn audit line: " << line;
  }
  EXPECT_GE(lines, 1u) << "the audit writer emitted nothing";
  std::remove(audit_path.c_str());
}

TEST(ObsProfilerTest, ProfilezEndpointRendersThroughTheExporter) {
  WallProfiler& profiler = WallProfiler::Global();
  ASSERT_TRUE(profiler.Start());
  for (int i = 0; i < 4; ++i) profiler.TickOnceForTesting();
  profiler.Stop();

  std::string body;
  std::string type;
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/profilez", &body, &type));
  EXPECT_NE(type.find("text/plain"), std::string::npos);
  std::string error;
  EXPECT_GE(ParseFolded(body, &error), 1) << error;

  // The profiler surfaces live in /varz and /statz too.
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/varz", &body, &type));
  EXPECT_NE(body.find("\"profiler\""), std::string::npos);
  EXPECT_NE(body.find("\"samples_total\""), std::string::npos);
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/statz", &body, &type));
  EXPECT_NE(body.find("\"phases\""), std::string::npos);
  EXPECT_NE(body.find("\"cache_probe\""), std::string::npos);
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::obs
