// Fig. 7b diamond stacks at depths beyond the paper's sweep
// (satellite of DESIGN.md §12): the compressed reachability-index path
// must stay sub-second where the uncompressed paper-literal engine is
// budget-capped (its tuple count is 2^k), and its decisions must match
// the oracle engines on every size both can run.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "acm/acm.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/generators.h"
#include "graph/reachability.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;

struct DiamondFixture {
  graph::Dag dag;
  acm::ExplicitAcm eacm;
  acm::ObjectId object;
  acm::RightId right;
  graph::NodeId sink;
};

/// A k-diamond stack with an adversarial column: the root granted, a
/// mid-stack shoulder denied — decisions then genuinely depend on the
/// strategy's distance/specificity rules, not on a single label.
DiamondFixture MakeFixture(size_t k) {
  auto dag = graph::GenerateDiamondStack(k);
  EXPECT_TRUE(dag.ok());
  DiamondFixture f{std::move(dag).value(), {}, 0, 0, 0};
  f.object = f.eacm.InternObject("doc").value();
  f.right = f.eacm.InternRight("read").value();
  f.sink = f.dag.FindNode("Dsink");
  EXPECT_NE(f.sink, graph::kInvalidNode);
  EXPECT_TRUE(
      f.eacm.Set(f.dag.FindNode("D0t"), f.object, f.right, Mode::kPositive)
          .ok());
  const std::string mid = "D" + std::to_string(k / 2) + "a";
  EXPECT_TRUE(
      f.eacm.Set(f.dag.FindNode(mid), f.object, f.right, Mode::kNegative)
          .ok());
  return f;
}

TEST(DiamondDepthTest, IndexedMatchesAllOraclesWhereAllCanRun) {
  // 2^12 = 4096 literal tuples: every engine is comfortable, so the
  // indexed path is checked against both oracles, trace included.
  for (const size_t k : {4u, 12u}) {
    DiamondFixture f = MakeFixture(k);
    const auto index = graph::ReachabilityIndex::Build(f.dag, f.eacm.epoch(),
                                                       f.eacm.ReachRows());
    ASSERT_TRUE(index->ready());
    ResolveAccessOptions indexed_options;
    ResolveAccessOptions classic_options;
    classic_options.use_reachability_index = false;
    ResolveAccessOptions literal_options;
    literal_options.use_literal_engine = true;
    for (graph::NodeId v = 0; v < f.dag.node_count(); ++v) {
      for (const Strategy& strategy : AllStrategies()) {
        SCOPED_TRACE("k=" + std::to_string(k) + " " +
                     std::string(strategy.ToMnemonic()) + " subject " +
                     f.dag.name(v));
        ResolveTrace indexed_trace, classic_trace, literal_trace;
        const auto indexed = ResolveAccess(f.dag, f.eacm, v, f.object,
                                           f.right, strategy, indexed_options,
                                           &indexed_trace, nullptr,
                                           index.get());
        const auto classic =
            ResolveAccess(f.dag, f.eacm, v, f.object, f.right, strategy,
                          classic_options, &classic_trace);
        const auto literal =
            ResolveAccess(f.dag, f.eacm, v, f.object, f.right, strategy,
                          literal_options, &literal_trace);
        ASSERT_TRUE(indexed.ok());
        ASSERT_TRUE(classic.ok());
        ASSERT_TRUE(literal.ok());
        ASSERT_EQ(*indexed, *classic);
        ASSERT_EQ(*indexed, *literal);
        ASSERT_EQ(indexed_trace.returned_line, classic_trace.returned_line);
        ASSERT_EQ(indexed_trace.result, classic_trace.result);
      }
    }
  }
}

TEST(DiamondDepthTest, LiteralEngineIsBudgetCappedWhereIndexAnswers) {
  // At k = 64 the literal engine would enqueue 2^64 sink tuples; under
  // any finite budget it must refuse rather than run — while the same
  // query through the index is a two-entry bag composition.
  constexpr size_t k = 64;
  DiamondFixture f = MakeFixture(k);
  ResolveAccessOptions literal_options;
  literal_options.use_literal_engine = true;
  literal_options.literal_max_tuples = uint64_t{1} << 20;
  const auto capped = ResolveAccess(f.dag, f.eacm, f.sink, f.object, f.right,
                                    Strategy{}, literal_options);
  ASSERT_FALSE(capped.ok());
  EXPECT_EQ(capped.status().code(), StatusCode::kFailedPrecondition);

  const auto index = graph::ReachabilityIndex::Build(f.dag, f.eacm.epoch(),
                                                     f.eacm.ReachRows());
  ASSERT_TRUE(index->ready());
  const auto indexed = ResolveAccess(f.dag, f.eacm, f.sink, f.object, f.right,
                                     Strategy{}, {}, nullptr, nullptr,
                                     index.get());
  ASSERT_TRUE(indexed.ok());
  // And it agrees with the (polynomial) aggregated oracle.
  ResolveAccessOptions classic_options;
  classic_options.use_reachability_index = false;
  const auto oracle = ResolveAccess(f.dag, f.eacm, f.sink, f.object, f.right,
                                    Strategy{}, classic_options);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(*indexed, *oracle);
}

TEST(DiamondDepthTest, DepthsBeyondPaperSweepStaySubSecondCompressed) {
  // The repo's existing suites stop at k = 70; the paper's own sweep is
  // shallower still. Push two orders of magnitude past it: build +
  // 48-strategy resolve at the sink must finish inside one second on
  // the compressed path (the structure folds to one interior class, so
  // labels stay O(k) while the path count is 2^k), and every decision
  // must match the aggregated oracle, which is polynomial too.
  for (const size_t k : {512u, 2048u}) {
    DiamondFixture f = MakeFixture(k);
    const auto t0 = std::chrono::steady_clock::now();
    const auto index = graph::ReachabilityIndex::Build(f.dag, f.eacm.epoch(),
                                                       f.eacm.ReachRows());
    ASSERT_TRUE(index->ready());
    std::vector<Mode> indexed_modes;
    for (const Strategy& strategy : AllStrategies()) {
      const auto mode = ResolveAccess(f.dag, f.eacm, f.sink, f.object,
                                      f.right, strategy, {}, nullptr, nullptr,
                                      index.get());
      ASSERT_TRUE(mode.ok());
      indexed_modes.push_back(*mode);
    }
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                  .count(),
              1000)
        << "compressed path not sub-second at k=" << k;

    // The fold is total: one supernode, everything else interior, and
    // the sink's profile stays constant-size regardless of depth.
    const auto stats = index->stats();
    EXPECT_EQ(stats.supernodes, 2u);  // Granted root + denied shoulder.
    EXPECT_GE(stats.folded_nodes, 3 * k - 2);
    EXPECT_LE(index->label(f.sink).size(), 4u);

    ResolveAccessOptions classic_options;
    classic_options.use_reachability_index = false;
    size_t i = 0;
    for (const Strategy& strategy : AllStrategies()) {
      SCOPED_TRACE("k=" + std::to_string(k) + " " +
                   std::string(strategy.ToMnemonic()));
      const auto oracle = ResolveAccess(f.dag, f.eacm, f.sink, f.object,
                                        f.right, strategy, classic_options);
      ASSERT_TRUE(oracle.ok());
      ASSERT_EQ(indexed_modes[i++], *oracle);
    }
  }
}

}  // namespace
}  // namespace ucr::core
