#!/usr/bin/env python3
"""End-to-end check of `ucr_admin serve` with an ephemeral port.

Regression test for the port-binding race: with port 0 the kernel picks
the port, so a script cannot know where to connect unless the server
says so. `ucr_admin serve` prints `listening 127.0.0.1:<port>` as its
FIRST stdout line (flushed before the banner); this test builds a demo
store, starts the server on port 0, parses that line, and exercises the
HTTP surface:

  /healthz  -> 200, body "ok"
  /varz     -> 200, JSON carrying the "epoch" object (current epoch,
               reader pins, publication lag) because serve enables
               snapshot reads before starting the exporter.

Usage: serve_endpoint_test.py <path-to-ucr_admin>
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request


def fail(proc, message):
    try:
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=5)
    except Exception:
        proc.kill()
        out = "<no output captured>"
    print(f"FAIL: {message}", file=sys.stderr)
    print(f"--- server output ---\n{out}", file=sys.stderr)
    return 1


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-ucr_admin>", file=sys.stderr)
        return 2
    admin = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "demo.ucr")
        demo = subprocess.run([admin, "demo", store], capture_output=True,
                              text=True)
        if demo.returncode != 0:
            print(f"FAIL: demo exited {demo.returncode}\n{demo.stderr}",
                  file=sys.stderr)
            return 1

        proc = subprocess.Popen([admin, "serve", store, "0"],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)
        try:
            # The listening line is printed and flushed before anything
            # else, so one blocking readline is the whole handshake —
            # no polling, no sleep, no race.
            line = proc.stdout.readline().strip()
            prefix = "listening 127.0.0.1:"
            if "UCR_METRICS=OFF" in line:
                # Instrumentation compiled out: serve has no exporter
                # to bind. Exit 77 = ctest SKIP_RETURN_CODE.
                print(f"SKIP: {line}")
                return 77
            if not line.startswith(prefix):
                return fail(proc, f"first line {line!r} lacks {prefix!r}")
            port = int(line[len(prefix):])
            if not 1 <= port <= 65535:
                return fail(proc, f"nonsense port {port}")

            base = f"http://127.0.0.1:{port}"
            status, body = fetch(base + "/healthz")
            if status != 200 or "ok" not in body:
                return fail(proc, f"/healthz -> {status} {body!r}")

            status, body = fetch(base + "/varz")
            if status != 200:
                return fail(proc, f"/varz -> {status}")
            varz = json.loads(body)
            epoch = varz.get("epoch")
            if not isinstance(epoch, dict):
                return fail(proc, f"/varz lacks epoch object: {body[:200]}")
            for field in ("current", "readers", "lag", "published_total"):
                if field not in epoch:
                    return fail(proc, f"epoch object lacks {field!r}: {epoch}")
            # Serve publishes at least the initial snapshot before the
            # listening line appears.
            if int(epoch["current"]) < 1:
                return fail(proc, f"epoch.current={epoch['current']}, want >=1")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    print("PASS: listening-line handshake, /healthz, /varz epoch object")
    return 0


if __name__ == "__main__":
    sys.exit(main())
