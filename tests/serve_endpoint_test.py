#!/usr/bin/env python3
"""End-to-end check of `ucr_admin serve` with an ephemeral port.

Regression test for the port-binding race: with port 0 the kernel picks
the port, so a script cannot know where to connect unless the server
says so. `ucr_admin serve` prints `listening 127.0.0.1:<port>` as its
FIRST stdout line (flushed before the banner); this test builds a demo
store, starts the server on port 0, parses that line, and exercises the
HTTP surface:

  /healthz     -> 200; serve runs the health engine, so the body is
                  the JSON verdict (status "ok" on a healthy server)
  /varz        -> 200, JSON carrying the "epoch" object (current
                  epoch, reader pins, publication lag) because serve
                  enables snapshot reads before starting the exporter
  /timeseries  -> 200, JSON from the live sampler ("running": true)
  /statz       -> 200, JSON one-page summary (qps, health, phases)
  /profilez    -> 200, folded stacks from the wall-clock profiler
                  serve starts (every line `frame[;frame...] <count>`)

plus one `ucr_admin top <host:port> --once` invocation against the
running server — the operator dashboard's whole data path — and one
`ucr_admin profile <host:port> --once`, the flamegraph-export path.

Usage: serve_endpoint_test.py <path-to-ucr_admin>
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request


def fail(proc, message):
    try:
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=5)
    except Exception:
        proc.kill()
        out = "<no output captured>"
    print(f"FAIL: {message}", file=sys.stderr)
    print(f"--- server output ---\n{out}", file=sys.stderr)
    return 1


def fetch(url):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, response.read().decode("utf-8")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <path-to-ucr_admin>", file=sys.stderr)
        return 2
    admin = sys.argv[1]

    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "demo.ucr")
        demo = subprocess.run([admin, "demo", store], capture_output=True,
                              text=True)
        if demo.returncode != 0:
            print(f"FAIL: demo exited {demo.returncode}\n{demo.stderr}",
                  file=sys.stderr)
            return 1

        proc = subprocess.Popen([admin, "serve", store, "0"],
                                stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)
        try:
            # The listening line is printed and flushed before anything
            # else, so one blocking readline is the whole handshake —
            # no polling, no sleep, no race.
            line = proc.stdout.readline().strip()
            prefix = "listening 127.0.0.1:"
            if "UCR_METRICS=OFF" in line:
                # Instrumentation compiled out: serve has no exporter
                # to bind. Exit 77 = ctest SKIP_RETURN_CODE.
                print(f"SKIP: {line}")
                return 77
            if not line.startswith(prefix):
                return fail(proc, f"first line {line!r} lacks {prefix!r}")
            port = int(line[len(prefix):])
            if not 1 <= port <= 65535:
                return fail(proc, f"nonsense port {port}")

            base = f"http://127.0.0.1:{port}"
            status, body = fetch(base + "/healthz")
            if status != 200 or "ok" not in body:
                return fail(proc, f"/healthz -> {status} {body!r}")

            status, body = fetch(base + "/varz")
            if status != 200:
                return fail(proc, f"/varz -> {status}")
            varz = json.loads(body)
            epoch = varz.get("epoch")
            if not isinstance(epoch, dict):
                return fail(proc, f"/varz lacks epoch object: {body[:200]}")
            for field in ("current", "readers", "lag", "published_total"):
                if field not in epoch:
                    return fail(proc, f"epoch object lacks {field!r}: {epoch}")
            # Serve publishes at least the initial snapshot before the
            # listening line appears.
            if int(epoch["current"]) < 1:
                return fail(proc, f"epoch.current={epoch['current']}, want >=1")

            status, body = fetch(base + "/timeseries")
            if status != 200:
                return fail(proc, f"/timeseries -> {status}")
            timeseries = json.loads(body)
            if timeseries.get("running") is not True:
                return fail(proc, f"/timeseries sampler not running: "
                                  f"{body[:200]}")
            if "series" not in timeseries or "tiers" not in timeseries:
                return fail(proc, f"/timeseries lacks series/tiers: "
                                  f"{body[:200]}")

            status, body = fetch(base + "/statz")
            if status != 200:
                return fail(proc, f"/statz -> {status}")
            statz = json.loads(body)
            for field in ("qps", "health", "sampler", "phases", "profiler"):
                if field not in statz:
                    return fail(proc, f"/statz lacks {field!r}: {body[:200]}")
            profiler = statz["profiler"]
            if profiler.get("running") is not True:
                return fail(proc, f"serve did not start the wall profiler: "
                                  f"{profiler}")

            # The continuous profiler: folded stacks, one
            # `frame[;frame...] <count>` per line.
            status, body = fetch(base + "/profilez")
            if status != 200:
                return fail(proc, f"/profilez -> {status}")
            for line in body.splitlines():
                if not line:
                    continue
                stack, _, count = line.rpartition(" ")
                if not stack or not count.isdigit() or int(count) < 1:
                    return fail(proc, f"/profilez line not folded-stack "
                                      f"format: {line!r}")

            # The operator dashboard end to end: one non-interactive
            # frame against the live server.
            top = subprocess.run([admin, "top", f"127.0.0.1:{port}",
                                  "--once"],
                                 capture_output=True, text=True, timeout=30)
            if top.returncode != 0:
                return fail(proc, f"top --once exited {top.returncode}\n"
                                  f"{top.stdout}\n{top.stderr}")
            if "health" not in top.stdout:
                return fail(proc, f"top --once output lacks health line:\n"
                                  f"{top.stdout}")

            # The flamegraph-export path end to end: one cumulative
            # profile fetch. Retried briefly — the 97 Hz sampler may
            # not have captured its first stack yet on a slow host.
            for attempt in range(10):
                prof = subprocess.run([admin, "profile",
                                       f"127.0.0.1:{port}", "--once"],
                                      capture_output=True, text=True,
                                      timeout=30)
                if prof.returncode == 0:
                    break
                time.sleep(0.5)
            if prof.returncode != 0:
                return fail(proc, f"profile --once exited "
                                  f"{prof.returncode}\n{prof.stdout}\n"
                                  f"{prof.stderr}")
            folded = [l for l in prof.stdout.splitlines() if l.strip()]
            if not folded:
                return fail(proc, "profile --once printed no stacks")
            for line in folded:
                stack, _, count = line.rpartition(" ")
                if not stack or not count.isdigit():
                    return fail(proc, f"profile --once line not folded-"
                                      f"stack format: {line!r}")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    print("PASS: listening-line handshake, /healthz, /varz epoch object, "
          "/timeseries, /statz phases+profiler, /profilez, top --once, "
          "profile --once")
    return 0


if __name__ == "__main__":
    sys.exit(main())
