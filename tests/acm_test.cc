#include "acm/acm.h"

#include <gtest/gtest.h>

#include "acm/mode.h"
#include "graph/dag.h"

namespace ucr::acm {
namespace {

graph::Dag TwoNodeDag() {
  graph::DagBuilder b;
  EXPECT_TRUE(b.AddEdge("g", "u").ok());
  auto dag = std::move(b).Build();
  EXPECT_TRUE(dag.ok());
  return std::move(dag).value();
}

TEST(ModeTest, CharConversions) {
  EXPECT_EQ(ModeToChar(Mode::kPositive), '+');
  EXPECT_EQ(ModeToChar(Mode::kNegative), '-');
  EXPECT_EQ(PropagatedModeToChar(PropagatedMode::kDefault), 'd');
  EXPECT_EQ(ModeFromChar('+'), Mode::kPositive);
  EXPECT_EQ(ModeFromChar('-'), Mode::kNegative);
  EXPECT_EQ(ModeFromChar('d'), std::nullopt);
  EXPECT_EQ(ModeFromChar('x'), std::nullopt);
}

TEST(ModeTest, NegateAndWiden) {
  EXPECT_EQ(Negate(Mode::kPositive), Mode::kNegative);
  EXPECT_EQ(Negate(Mode::kNegative), Mode::kPositive);
  EXPECT_EQ(ToPropagated(Mode::kPositive), PropagatedMode::kPositive);
  EXPECT_EQ(ToPropagated(Mode::kNegative), PropagatedMode::kNegative);
}

TEST(ExplicitAcmTest, InterningIsIdempotent) {
  ExplicitAcm eacm;
  auto o1 = eacm.InternObject("doc");
  auto o2 = eacm.InternObject("doc");
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  EXPECT_EQ(*o1, *o2);
  EXPECT_EQ(eacm.object_count(), 1u);
  EXPECT_EQ(eacm.object_name(*o1), "doc");
}

TEST(ExplicitAcmTest, FindMissReturnsNotFound) {
  ExplicitAcm eacm;
  EXPECT_EQ(eacm.FindObject("ghost").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(eacm.FindRight("ghost").status().code(), StatusCode::kNotFound);
}

TEST(ExplicitAcmTest, SetGetErase) {
  ExplicitAcm eacm;
  const ObjectId o = eacm.InternObject("doc").value();
  const RightId r = eacm.InternRight("read").value();
  EXPECT_EQ(eacm.Get(3, o, r), std::nullopt);
  ASSERT_TRUE(eacm.Set(3, o, r, Mode::kNegative).ok());
  EXPECT_EQ(eacm.Get(3, o, r), Mode::kNegative);
  EXPECT_EQ(eacm.size(), 1u);
  EXPECT_TRUE(eacm.Erase(3, o, r));
  EXPECT_FALSE(eacm.Erase(3, o, r));
  EXPECT_EQ(eacm.Get(3, o, r), std::nullopt);
}

TEST(ExplicitAcmTest, ContradictionRejectedDuplicateIgnored) {
  ExplicitAcm eacm;
  const ObjectId o = eacm.InternObject("doc").value();
  const RightId r = eacm.InternRight("read").value();
  ASSERT_TRUE(eacm.Set(1, o, r, Mode::kPositive).ok());
  EXPECT_TRUE(eacm.Set(1, o, r, Mode::kPositive).ok());  // Same mode: OK.
  EXPECT_EQ(eacm.Set(1, o, r, Mode::kNegative).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(eacm.Get(1, o, r), Mode::kPositive);
}

TEST(ExplicitAcmTest, OverwriteReplaces) {
  ExplicitAcm eacm;
  const ObjectId o = eacm.InternObject("doc").value();
  const RightId r = eacm.InternRight("read").value();
  ASSERT_TRUE(eacm.Set(1, o, r, Mode::kPositive).ok());
  eacm.Overwrite(1, o, r, Mode::kNegative);
  EXPECT_EQ(eacm.Get(1, o, r), Mode::kNegative);
}

TEST(ExplicitAcmTest, EpochAdvancesOnMutation) {
  ExplicitAcm eacm;
  const ObjectId o = eacm.InternObject("doc").value();
  const RightId r = eacm.InternRight("read").value();
  const uint64_t e0 = eacm.epoch();
  ASSERT_TRUE(eacm.Set(1, o, r, Mode::kPositive).ok());
  const uint64_t e1 = eacm.epoch();
  EXPECT_GT(e1, e0);
  ASSERT_TRUE(eacm.Set(1, o, r, Mode::kPositive).ok());  // No-op...
  EXPECT_EQ(eacm.epoch(), e1);                           // ...same epoch.
  eacm.Erase(1, o, r);
  EXPECT_GT(eacm.epoch(), e1);
}

TEST(ExplicitAcmTest, ExtractLabelsFiltersByObjectAndRight) {
  ExplicitAcm eacm;
  const ObjectId doc = eacm.InternObject("doc").value();
  const ObjectId img = eacm.InternObject("img").value();
  const RightId read = eacm.InternRight("read").value();
  const RightId write = eacm.InternRight("write").value();
  ASSERT_TRUE(eacm.Set(0, doc, read, Mode::kPositive).ok());
  ASSERT_TRUE(eacm.Set(1, doc, write, Mode::kNegative).ok());
  ASSERT_TRUE(eacm.Set(2, img, read, Mode::kNegative).ok());

  const auto labels = eacm.ExtractLabels(4, doc, read);
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], Mode::kPositive);
  EXPECT_EQ(labels[1], std::nullopt);  // Different right.
  EXPECT_EQ(labels[2], std::nullopt);  // Different object.
  EXPECT_EQ(labels[3], std::nullopt);  // Unlabeled.
}

TEST(ExplicitAcmTest, CountLabels) {
  ExplicitAcm eacm;
  const ObjectId o = eacm.InternObject("doc").value();
  const RightId r = eacm.InternRight("read").value();
  ASSERT_TRUE(eacm.Set(0, o, r, Mode::kPositive).ok());
  ASSERT_TRUE(eacm.Set(1, o, r, Mode::kPositive).ok());
  ASSERT_TRUE(eacm.Set(2, o, r, Mode::kNegative).ok());
  const auto counts = eacm.CountLabels(o, r);
  EXPECT_EQ(counts.positive, 2u);
  EXPECT_EQ(counts.negative, 1u);
}

TEST(ExplicitAcmTest, SortedEntriesAreOrdered) {
  ExplicitAcm eacm;
  const ObjectId o = eacm.InternObject("doc").value();
  const RightId r = eacm.InternRight("read").value();
  ASSERT_TRUE(eacm.Set(5, o, r, Mode::kPositive).ok());
  ASSERT_TRUE(eacm.Set(1, o, r, Mode::kNegative).ok());
  ASSERT_TRUE(eacm.Set(3, o, r, Mode::kPositive).ok());
  const auto entries = eacm.SortedEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].subject, 1u);
  EXPECT_EQ(entries[1].subject, 3u);
  EXPECT_EQ(entries[2].subject, 5u);
}

TEST(AcmTextTest, RoundTrip) {
  const graph::Dag dag = TwoNodeDag();
  ExplicitAcm eacm;
  const ObjectId o = eacm.InternObject("doc").value();
  const RightId r = eacm.InternRight("read").value();
  ASSERT_TRUE(eacm.Set(dag.FindNode("g"), o, r, Mode::kPositive).ok());
  ASSERT_TRUE(eacm.Set(dag.FindNode("u"), o, r, Mode::kNegative).ok());

  const std::string text = ToText(eacm, dag);
  auto parsed = FromText(text, dag);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 2u);
  const ObjectId po = parsed->FindObject("doc").value();
  const RightId pr = parsed->FindRight("read").value();
  EXPECT_EQ(parsed->Get(dag.FindNode("g"), po, pr), Mode::kPositive);
  EXPECT_EQ(parsed->Get(dag.FindNode("u"), po, pr), Mode::kNegative);
}

TEST(AcmTextTest, ParsesWindowsLineEndings) {
  const graph::Dag dag = TwoNodeDag();
  auto parsed = FromText(
      "# exported on Windows\r\n"
      "auth g doc read +\r\n"
      "auth u doc read -\r\n",
      dag);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->size(), 2u);
  // The \r must not be folded into the trailing mode field.
  const ObjectId o = parsed->FindObject("doc").value();
  const RightId r = parsed->FindRight("read").value();
  EXPECT_EQ(parsed->Get(dag.FindNode("u"), o, r), Mode::kNegative);
}

TEST(AcmTextTest, RejectsUnknownSubject) {
  const graph::Dag dag = TwoNodeDag();
  auto parsed = FromText("auth ghost doc read +\n", dag);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("unknown subject"),
            std::string::npos);
}

TEST(AcmTextTest, RejectsBadMode) {
  const graph::Dag dag = TwoNodeDag();
  auto parsed = FromText("auth g doc read *\n", dag);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("mode"), std::string::npos);
}

TEST(AcmTextTest, RejectsMalformedLine) {
  const graph::Dag dag = TwoNodeDag();
  EXPECT_FALSE(FromText("auth g doc read\n", dag).ok());
  EXPECT_FALSE(FromText("grant g doc read +\n", dag).ok());
}

}  // namespace
}  // namespace ucr::acm
