#include "workload/experiments.h"

#include <gtest/gtest.h>

namespace ucr::workload {
namespace {

TEST(KdagSweepTest, ProducesFullGrid) {
  KdagSweepOptions opt;
  opt.sizes = {8, 10};
  opt.rate_min = 0.02;
  opt.rate_max = 0.10;
  opt.rate_step = 0.04;
  opt.repetitions = 3;
  auto rows = RunKdagSweep(opt);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u * 3u);  // 2 sizes x 3 rate points.
  for (const KdagSweepRow& row : *rows) {
    EXPECT_GT(row.mean_tuples, 0.0);
    EXPECT_GE(row.mean_us, 0.0);
    EXPECT_EQ(row.repetitions, 3u);
    EXPECT_GE(row.mean_labeled, 1.0);
  }
}

TEST(KdagSweepTest, WorkGrowsWithRate) {
  // The paper's Fig. 6 claim: Propagate() work is roughly linear in
  // the authorization rate. Check monotone growth of the tuple count
  // (time is too noisy for a unit test).
  KdagSweepOptions opt;
  opt.sizes = {14};
  opt.rate_min = 0.01;
  opt.rate_max = 0.10;
  opt.rate_step = 0.03;
  opt.repetitions = 10;
  auto rows = RunKdagSweep(opt);
  ASSERT_TRUE(rows.ok());
  ASSERT_GE(rows->size(), 3u);
  EXPECT_LT((*rows)[0].mean_tuples, rows->back().mean_tuples);
}

TEST(KdagSweepTest, ValidatesOptions) {
  KdagSweepOptions opt;
  opt.rate_step = 0.0;
  EXPECT_FALSE(RunKdagSweep(opt).ok());
  opt = KdagSweepOptions{};
  opt.repetitions = 0;
  EXPECT_FALSE(RunKdagSweep(opt).ok());
  opt = KdagSweepOptions{};
  opt.rate_min = 0.2;
  opt.rate_max = 0.1;
  EXPECT_FALSE(RunKdagSweep(opt).ok());
}

EnterpriseExperimentOptions SmallEnterpriseRun() {
  EnterpriseExperimentOptions opt;
  opt.enterprise.individuals = 60;
  opt.enterprise.groups = 150;
  opt.enterprise.top_level_groups = 6;
  opt.enterprise.max_group_depth = 5;
  opt.enterprise.target_edges = 450;
  opt.authorization_rate = 0.02;
  opt.max_sinks = 25;
  opt.timing_reps = 1;
  return opt;
}

TEST(EnterpriseExperimentTest, ProducesPerSinkRows) {
  auto result = RunEnterpriseExperiment(SmallEnterpriseRun());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 25u);
  for (const SinkMeasurement& m : result->rows) {
    EXPECT_GT(m.subgraph_nodes, 0u);
    EXPECT_GT(m.d, 0u) << "roots always seed, so d >= depth >= 1";
    EXPECT_GE(m.resolve_us, 0.0);
    EXPECT_GE(m.dominance_us, 0.0);
  }
  EXPECT_GT(result->resolve_mean_us, 0.0);
  EXPECT_GT(result->dominance_mean_us, 0.0);
  EXPECT_EQ(result->hierarchy_stats.nodes, 210u);
}

TEST(EnterpriseExperimentTest, RejectsIncomparableStrategy) {
  EnterpriseExperimentOptions opt = SmallEnterpriseRun();
  opt.strategy = core::ParseStrategy("D+LMP-").value();  // Majority: no.
  EXPECT_FALSE(RunEnterpriseExperiment(opt).ok());
  opt.strategy = core::ParseStrategy("D+GP-").value();  // Globality: no.
  EXPECT_FALSE(RunEnterpriseExperiment(opt).ok());
}

TEST(EnterpriseExperimentTest, AcceptsWholeDlpFamily) {
  EnterpriseExperimentOptions opt = SmallEnterpriseRun();
  opt.max_sinks = 5;
  for (const char* mnemonic : {"D+LP+", "D-LP-", "LP+", "LP-"}) {
    opt.strategy = core::ParseStrategy(mnemonic).value();
    EXPECT_TRUE(RunEnterpriseExperiment(opt).ok()) << mnemonic;
  }
}

TEST(EnterpriseExperimentTest, RequiresNegativeFractions) {
  EnterpriseExperimentOptions opt = SmallEnterpriseRun();
  opt.negative_fractions = {};
  EXPECT_FALSE(RunEnterpriseExperiment(opt).ok());
}

TEST(EnterpriseExperimentTest, DeterministicRowsForSeed) {
  auto a = RunEnterpriseExperiment(SmallEnterpriseRun());
  auto b = RunEnterpriseExperiment(SmallEnterpriseRun());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->rows.size(), b->rows.size());
  for (size_t i = 0; i < a->rows.size(); ++i) {
    EXPECT_EQ(a->rows[i].sink, b->rows[i].sink);
    EXPECT_EQ(a->rows[i].d, b->rows[i].d);
    EXPECT_EQ(a->rows[i].subgraph_nodes, b->rows[i].subgraph_nodes);
    EXPECT_EQ(a->rows[i].resolve_mode, b->rows[i].resolve_mode);
  }
}

}  // namespace
}  // namespace ucr::workload
