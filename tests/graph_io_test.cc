#include "graph/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "util/random.h"

namespace ucr::graph {
namespace {

TEST(GraphIoTest, RoundTripPreservesStructureAndIds) {
  Random rng(1);
  auto original = GenerateLayeredDag({.layers = 3, .nodes_per_layer = 4}, rng);
  ASSERT_TRUE(original.ok());

  const std::string text = ToEdgeListText(*original);
  auto parsed = FromEdgeListText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->node_count(), original->node_count());
  EXPECT_EQ(parsed->edge_count(), original->edge_count());
  for (NodeId v = 0; v < original->node_count(); ++v) {
    EXPECT_EQ(parsed->name(v), original->name(v)) << "id stability";
    ASSERT_EQ(parsed->children(v).size(), original->children(v).size());
    for (size_t i = 0; i < original->children(v).size(); ++i) {
      EXPECT_EQ(parsed->children(v)[i], original->children(v)[i]);
    }
  }
}

TEST(GraphIoTest, ParsesHandWrittenInput) {
  auto dag = FromEdgeListText(
      "# a comment\n"
      "\n"
      "node isolated\n"
      "edge a b\n"
      "edge a c\n");
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->node_count(), 4u);
  EXPECT_EQ(dag->edge_count(), 2u);
  EXPECT_EQ(dag->FindNode("isolated"), 0u);
}

// Files edited on Windows (or checked out with autocrlf) arrive with
// \r\n line endings; the parser must treat them as plain newlines,
// not fold the \r into the last field of each line.
TEST(GraphIoTest, ParsesWindowsLineEndings) {
  auto dag = FromEdgeListText(
      "# a comment\r\n"
      "\r\n"
      "node isolated\r\n"
      "edge a b\r\n"
      "edge a c\r\n");
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  EXPECT_EQ(dag->node_count(), 4u);
  EXPECT_EQ(dag->edge_count(), 2u);
  // The \r must not become part of a node name.
  EXPECT_EQ(dag->FindNode("b"), 2u);
  EXPECT_EQ(dag->FindNode("b\r"), kInvalidNode);
  EXPECT_TRUE(dag->HasEdge(dag->FindNode("a"), dag->FindNode("c")));
}

TEST(GraphIoTest, ReportsLineNumbersOnErrors) {
  auto bad = FromEdgeListText("node a\nedge a\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, RejectsUnknownDirective) {
  auto bad = FromEdgeListText("vertex a\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unknown directive"),
            std::string::npos);
}

TEST(GraphIoTest, RejectsCycle) {
  auto bad = FromEdgeListText("edge a b\nedge b a\n");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

TEST(GraphIoTest, RejectsDuplicateEdgeWithLocation) {
  auto bad = FromEdgeListText("edge a b\nedge a b\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, DotOutputContainsAllEdges) {
  DagBuilder b;
  ASSERT_TRUE(b.AddEdge("g1", "u1").ok());
  ASSERT_TRUE(b.AddEdge("g1", "u2").ok());
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  const std::string dot = ToDot(*dag);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"g1\" -> \"u1\";"), std::string::npos);
  EXPECT_NE(dot.find("\"g1\" -> \"u2\";"), std::string::npos);
}

TEST(GraphIoTest, FileRoundTrip) {
  Random rng(2);
  auto dag = GenerateRandomTree(20, rng);
  ASSERT_TRUE(dag.ok());
  const std::string path = ::testing::TempDir() + "/ucr_graph_io_test.sdag";
  ASSERT_TRUE(WriteEdgeListFile(*dag, path).ok());
  auto reread = ReadEdgeListFile(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread->node_count(), 20u);
  EXPECT_EQ(reread->edge_count(), 19u);
  std::remove(path.c_str());
}

TEST(GraphIoTest, MissingFileIsNotFound) {
  auto missing = ReadEdgeListFile("/nonexistent/definitely/not/here.sdag");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace ucr::graph
