#include "graph/ancestor_subgraph.h"

#include <gtest/gtest.h>

#include "graph/dag.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::graph {
namespace {

Dag Build(std::initializer_list<std::pair<const char*, const char*>> edges,
          std::initializer_list<const char*> extra_nodes = {}) {
  DagBuilder b;
  for (const char* n : extra_nodes) b.AddNode(n);
  for (const auto& [p, c] : edges) EXPECT_TRUE(b.AddEdge(p, c).ok());
  auto dag = std::move(b).Build();
  EXPECT_TRUE(dag.ok());
  return std::move(dag).value();
}

TEST(AncestorSubgraphTest, ExcludesNonAncestors) {
  // X is a sibling branch; Y is a descendant of the sink.
  const Dag dag = Build({{"r", "a"}, {"r", "x"}, {"a", "s"}, {"s", "y"}});
  const AncestorSubgraph sub(dag, dag.FindNode("s"));
  EXPECT_EQ(sub.member_count(), 3u);  // r, a, s.
  EXPECT_EQ(sub.ToLocal(dag.FindNode("x")), kInvalidNode);
  EXPECT_EQ(sub.ToLocal(dag.FindNode("y")), kInvalidNode);
  EXPECT_NE(sub.ToLocal(dag.FindNode("r")), kInvalidNode);
}

TEST(AncestorSubgraphTest, SinkIsSoleSink) {
  const Dag dag = Build({{"r", "a"}, {"r", "b"}, {"a", "s"}, {"b", "s"},
                         {"a", "b"}});
  const AncestorSubgraph sub(dag, dag.FindNode("s"));
  for (LocalId v = 0; v < sub.member_count(); ++v) {
    if (v == sub.sink()) {
      EXPECT_TRUE(sub.children(v).empty());
    } else {
      EXPECT_FALSE(sub.children(v).empty())
          << "non-sink member must keep a path to the sink";
    }
  }
}

TEST(AncestorSubgraphTest, IsolatedSubjectIsItsOwnRoot) {
  const Dag dag = Build({{"a", "b"}}, {"lonely"});
  const AncestorSubgraph sub(dag, dag.FindNode("lonely"));
  EXPECT_EQ(sub.member_count(), 1u);
  EXPECT_EQ(sub.edge_count(), 0u);
  ASSERT_EQ(sub.roots().size(), 1u);
  EXPECT_EQ(sub.roots()[0], sub.sink());
  EXPECT_EQ(sub.depth(), 0u);
  EXPECT_EQ(sub.path_count(sub.sink()), 1u);
  EXPECT_EQ(sub.total_path_length(sub.sink()), 0u);
}

TEST(AncestorSubgraphTest, DistancesOnDiamond) {
  const Dag dag = Build({{"t", "a"}, {"t", "b"}, {"a", "s"}, {"b", "s"},
                         {"t", "s"}});
  const AncestorSubgraph sub(dag, dag.FindNode("s"));
  const LocalId t = sub.ToLocal(dag.FindNode("t"));
  EXPECT_EQ(sub.shortest_distance_to_sink(t), 1u);  // Direct edge.
  EXPECT_EQ(sub.longest_distance_to_sink(t), 2u);   // Via a or b.
  EXPECT_EQ(sub.path_count(t), 3u);                 // Direct, via a, via b.
  EXPECT_EQ(sub.total_path_length(t), 1u + 2u + 2u);
  EXPECT_EQ(sub.depth(), 2u);
}

TEST(AncestorSubgraphTest, PathCountExplodesOnDiamondStack) {
  Random rng(1);
  auto dag = GenerateDiamondStack(20);
  ASSERT_TRUE(dag.ok());
  const NodeId sink = dag->FindNode("Dsink");
  const AncestorSubgraph sub(*dag, sink);
  const LocalId top = sub.ToLocal(dag->FindNode("D0t"));
  EXPECT_EQ(sub.path_count(top), 1ull << 20);
  EXPECT_EQ(sub.depth(), 40u);  // Two edges per diamond.
}

TEST(AncestorSubgraphTest, PathCountSaturatesInsteadOfOverflowing) {
  auto dag = GenerateDiamondStack(70);  // 2^70 > UINT64_MAX paths.
  ASSERT_TRUE(dag.ok());
  const AncestorSubgraph sub(*dag, dag->FindNode("Dsink"));
  const LocalId top = sub.ToLocal(dag->FindNode("D0t"));
  EXPECT_EQ(sub.path_count(top), UINT64_MAX);
  EXPECT_EQ(sub.total_path_length(top), UINT64_MAX);
}

TEST(AncestorSubgraphTest, TopologicalOrderIsComplete) {
  Random rng(5);
  auto dag = GenerateLayeredDag({.layers = 5, .nodes_per_layer = 6}, rng);
  ASSERT_TRUE(dag.ok());
  for (NodeId sink : dag->Sinks()) {
    const AncestorSubgraph sub(*dag, sink);
    EXPECT_EQ(sub.topological_order().size(), sub.member_count());
    // Parents appear before children.
    std::vector<size_t> pos(sub.member_count());
    for (size_t i = 0; i < sub.topological_order().size(); ++i) {
      pos[sub.topological_order()[i]] = i;
    }
    for (LocalId v = 0; v < sub.member_count(); ++v) {
      for (LocalId c : sub.children(v)) EXPECT_LT(pos[v], pos[c]);
    }
  }
}

TEST(AncestorSubgraphTest, TotalPathLengthSumsSources) {
  const Dag dag = Build({{"t", "a"}, {"t", "b"}, {"a", "s"}, {"b", "s"}});
  const AncestorSubgraph sub(dag, dag.FindNode("s"));
  const LocalId t = sub.ToLocal(dag.FindNode("t"));
  const LocalId a = sub.ToLocal(dag.FindNode("a"));
  std::vector<LocalId> sources{t, a};
  // t: two paths of length 2 => 4; a: one path of length 1 => 1.
  EXPECT_EQ(sub.TotalPathLength(sources), 5u);
}

TEST(AncestorSubgraphTest, GlobalLocalRoundTrip) {
  Random rng(11);
  auto dag = GenerateLayeredDag({.layers = 4, .nodes_per_layer = 5}, rng);
  ASSERT_TRUE(dag.ok());
  const NodeId sink = dag->Sinks().front();
  const AncestorSubgraph sub(*dag, sink);
  for (LocalId v = 0; v < sub.member_count(); ++v) {
    EXPECT_EQ(sub.ToLocal(sub.global_id(v)), v);
  }
}

}  // namespace
}  // namespace ucr::graph
