#include "graph/dag.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace ucr::graph {
namespace {

Dag BuildSmall() {
  DagBuilder b;
  EXPECT_TRUE(b.AddEdge("A", "B").ok());
  EXPECT_TRUE(b.AddEdge("A", "C").ok());
  EXPECT_TRUE(b.AddEdge("B", "D").ok());
  EXPECT_TRUE(b.AddEdge("C", "D").ok());
  auto dag = std::move(b).Build();
  EXPECT_TRUE(dag.ok());
  return std::move(dag).value();
}

TEST(DagBuilderTest, NodesGetSequentialIdsInFirstMentionOrder) {
  DagBuilder b;
  EXPECT_EQ(b.AddNode("x"), 0u);
  EXPECT_EQ(b.AddNode("y"), 1u);
  EXPECT_EQ(b.AddNode("x"), 0u);  // Idempotent.
  EXPECT_EQ(b.node_count(), 2u);
}

TEST(DagBuilderTest, RejectsSelfLoop) {
  DagBuilder b;
  const Status s = b.AddEdge("a", "a");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DagBuilderTest, RejectsDuplicateEdge) {
  DagBuilder b;
  EXPECT_TRUE(b.AddEdge("a", "b").ok());
  EXPECT_EQ(b.AddEdge("a", "b").code(), StatusCode::kAlreadyExists);
}

TEST(DagBuilderTest, RejectsUnknownIds) {
  DagBuilder b;
  b.AddNode("a");
  EXPECT_EQ(b.AddEdgeById(0, 5).code(), StatusCode::kOutOfRange);
}

TEST(DagBuilderTest, DetectsTwoNodeCycle) {
  DagBuilder b;
  EXPECT_TRUE(b.AddEdge("a", "b").ok());
  EXPECT_TRUE(b.AddEdge("b", "a").ok());  // Edge itself is fine...
  auto dag = std::move(b).Build();        // ...the cycle fails at Build.
  EXPECT_FALSE(dag.ok());
  EXPECT_EQ(dag.status().code(), StatusCode::kInvalidArgument);
}

TEST(DagBuilderTest, DetectsLongCycle) {
  DagBuilder b;
  EXPECT_TRUE(b.AddEdge("a", "b").ok());
  EXPECT_TRUE(b.AddEdge("b", "c").ok());
  EXPECT_TRUE(b.AddEdge("c", "d").ok());
  EXPECT_TRUE(b.AddEdge("d", "b").ok());
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(DagBuilderTest, EmptyGraphBuilds) {
  DagBuilder b;
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->node_count(), 0u);
  EXPECT_EQ(dag->edge_count(), 0u);
}

TEST(DagTest, AdjacencyAndDegrees) {
  const Dag dag = BuildSmall();
  EXPECT_EQ(dag.node_count(), 4u);
  EXPECT_EQ(dag.edge_count(), 4u);

  const NodeId a = dag.FindNode("A");
  const NodeId d = dag.FindNode("D");
  EXPECT_EQ(dag.children(a).size(), 2u);
  EXPECT_EQ(dag.parents(a).size(), 0u);
  EXPECT_EQ(dag.children(d).size(), 0u);
  EXPECT_EQ(dag.parents(d).size(), 2u);
  EXPECT_TRUE(dag.is_root(a));
  EXPECT_TRUE(dag.is_sink(d));
  EXPECT_FALSE(dag.is_sink(a));
}

TEST(DagTest, FindNodeMissReturnsInvalid) {
  const Dag dag = BuildSmall();
  EXPECT_EQ(dag.FindNode("nope"), kInvalidNode);
}

TEST(DagTest, HasEdge) {
  const Dag dag = BuildSmall();
  EXPECT_TRUE(dag.HasEdge(dag.FindNode("A"), dag.FindNode("B")));
  EXPECT_FALSE(dag.HasEdge(dag.FindNode("B"), dag.FindNode("A")));
  EXPECT_FALSE(dag.HasEdge(dag.FindNode("A"), dag.FindNode("D")));
}

TEST(DagTest, RootsAndSinks) {
  const Dag dag = BuildSmall();
  EXPECT_EQ(dag.Roots(), std::vector<NodeId>{dag.FindNode("A")});
  EXPECT_EQ(dag.Sinks(), std::vector<NodeId>{dag.FindNode("D")});
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  const Dag dag = BuildSmall();
  const std::vector<NodeId> order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), dag.node_count());
  std::vector<size_t> position(dag.node_count());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) {
      EXPECT_LT(position[v], position[c]);
    }
  }
}

TEST(DagTest, IsolatedNodeIsRootAndSink) {
  DagBuilder b;
  b.AddNode("lonely");
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag->is_root(0));
  EXPECT_TRUE(dag->is_sink(0));
}

TEST(DagTest, CopySemantics) {
  const Dag dag = BuildSmall();
  const Dag copy = dag;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.node_count(), dag.node_count());
  EXPECT_EQ(copy.FindNode("B"), dag.FindNode("B"));
}

bool Contains(const std::vector<NodeId>& set, NodeId v) {
  return std::find(set.begin(), set.end(), v) != set.end();
}

TEST(DagMutationTest, EnsureNodeInternsOnceAndStampsNewNodes) {
  Dag dag = BuildSmall();
  EXPECT_EQ(dag.generation(), 0u);
  const NodeId e = dag.EnsureNode("E");
  EXPECT_EQ(e, 4u);
  EXPECT_EQ(dag.node_count(), 5u);
  EXPECT_GT(dag.node_generation(e), 0u);
  EXPECT_EQ(dag.EnsureNode("E"), e);   // Idempotent...
  EXPECT_EQ(dag.node_count(), 5u);     // ...and no duplicate node.
  EXPECT_EQ(dag.EnsureNode("A"), dag.FindNode("A"));
  EXPECT_TRUE(dag.is_root(e));
  EXPECT_TRUE(dag.is_sink(e));
}

TEST(DagMutationTest, InsertEdgeUpdatesBothAdjacencyDirections) {
  Dag dag = BuildSmall();
  const NodeId c = dag.FindNode("C");
  const NodeId e = dag.EnsureNode("E");
  std::vector<NodeId> affected;
  ASSERT_TRUE(dag.InsertEdge(c, e, &affected).ok());
  EXPECT_EQ(dag.edge_count(), 5u);
  EXPECT_TRUE(dag.HasEdge(c, e));
  ASSERT_EQ(dag.children(c).size(), 2u);
  ASSERT_EQ(dag.parents(e).size(), 1u);
  EXPECT_EQ(dag.parents(e)[0], c);
  // Affected set of an insert: the child and its descendants (E is a
  // sink, so just E).
  EXPECT_EQ(affected, std::vector<NodeId>{e});
}

TEST(DagMutationTest, InsertEdgeAffectedSetIsChildAndDescendants) {
  Dag dag = BuildSmall();
  const NodeId b = dag.FindNode("B");
  const NodeId d = dag.FindNode("D");
  const NodeId x = dag.EnsureNode("X");
  const uint64_t before = dag.generation();
  std::vector<NodeId> affected;
  ASSERT_TRUE(dag.InsertEdge(x, b, &affected).ok());
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_TRUE(Contains(affected, b));
  EXPECT_TRUE(Contains(affected, d));
  // Generation stamps move for exactly the affected set.
  EXPECT_GT(dag.node_generation(b), before);
  EXPECT_GT(dag.node_generation(d), before);
  EXPECT_LE(dag.node_generation(dag.FindNode("A")), before);
  EXPECT_LE(dag.node_generation(dag.FindNode("C")), before);
}

TEST(DagMutationTest, InsertEdgeRejectsCycleLeavingStateUntouched) {
  Dag dag = BuildSmall();
  const NodeId a = dag.FindNode("A");
  const NodeId d = dag.FindNode("D");
  const uint64_t generation = dag.generation();
  // D -> A closes the loop A -> B -> D -> A.
  const Status status = dag.InsertEdge(d, a);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dag.edge_count(), 4u);
  EXPECT_FALSE(dag.HasEdge(d, a));
  EXPECT_EQ(dag.generation(), generation);  // No stamp on failure.
}

TEST(DagMutationTest, InsertEdgeRejectsSelfLoopDuplicateAndBadIds) {
  Dag dag = BuildSmall();
  const NodeId a = dag.FindNode("A");
  const NodeId b = dag.FindNode("B");
  EXPECT_EQ(dag.InsertEdge(a, a).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dag.InsertEdge(a, b).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(dag.InsertEdge(a, 99).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dag.InsertEdge(99, a).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(dag.edge_count(), 4u);
}

TEST(DagMutationTest, EraseEdgeRemovesAdjacencyAndStampsDescendants) {
  Dag dag = BuildSmall();
  const NodeId a = dag.FindNode("A");
  const NodeId b = dag.FindNode("B");
  const NodeId d = dag.FindNode("D");
  const uint64_t before = dag.generation();
  std::vector<NodeId> affected;
  ASSERT_TRUE(dag.EraseEdge(a, b, &affected).ok());
  EXPECT_EQ(dag.edge_count(), 3u);
  EXPECT_FALSE(dag.HasEdge(a, b));
  EXPECT_TRUE(dag.is_root(b));  // B lost its only parent.
  EXPECT_EQ(affected.size(), 2u);
  EXPECT_TRUE(Contains(affected, b));
  EXPECT_TRUE(Contains(affected, d));
  EXPECT_GT(dag.node_generation(b), before);
  EXPECT_GT(dag.node_generation(d), before);

  EXPECT_EQ(dag.EraseEdge(a, b).code(), StatusCode::kNotFound);
}

TEST(DagMutationTest, MutatedDagMatchesFromScratchRebuild) {
  Dag dag = BuildSmall();
  const NodeId c = dag.FindNode("C");
  const NodeId e = dag.EnsureNode("E");
  ASSERT_TRUE(dag.InsertEdge(c, e).ok());
  ASSERT_TRUE(dag.EraseEdge(dag.FindNode("A"), dag.FindNode("B")).ok());

  DagBuilder b;
  for (NodeId v = 0; v < dag.node_count(); ++v) b.AddNode(dag.name(v));
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId child : dag.children(v)) {
      ASSERT_TRUE(b.AddEdgeById(v, child).ok());
    }
  }
  auto rebuilt = std::move(b).Build();
  ASSERT_TRUE(rebuilt.ok());  // Still acyclic.
  EXPECT_EQ(rebuilt->node_count(), dag.node_count());
  EXPECT_EQ(rebuilt->edge_count(), dag.edge_count());
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    EXPECT_EQ(rebuilt->name(v), dag.name(v));
    // Parent mirror stays consistent with the child arrays.
    for (NodeId p : dag.parents(v)) EXPECT_TRUE(dag.HasEdge(p, v));
  }

  // The topological order of the mutated dag is still a valid order.
  const std::vector<NodeId> order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), dag.node_count());
  std::vector<size_t> position(dag.node_count());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId child : dag.children(v)) {
      EXPECT_LT(position[v], position[child]);
    }
  }
}

TEST(DagMutationTest, DescendantsOfIncludesStartAndFollowsChildren) {
  const Dag dag = BuildSmall();
  const std::vector<NodeId> from_a = dag.DescendantsOf(dag.FindNode("A"));
  EXPECT_EQ(from_a.size(), 4u);  // Whole graph.
  const std::vector<NodeId> from_d = dag.DescendantsOf(dag.FindNode("D"));
  EXPECT_EQ(from_d, std::vector<NodeId>{dag.FindNode("D")});
}

}  // namespace
}  // namespace ucr::graph
