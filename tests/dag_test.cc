#include "graph/dag.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

namespace ucr::graph {
namespace {

Dag BuildSmall() {
  DagBuilder b;
  EXPECT_TRUE(b.AddEdge("A", "B").ok());
  EXPECT_TRUE(b.AddEdge("A", "C").ok());
  EXPECT_TRUE(b.AddEdge("B", "D").ok());
  EXPECT_TRUE(b.AddEdge("C", "D").ok());
  auto dag = std::move(b).Build();
  EXPECT_TRUE(dag.ok());
  return std::move(dag).value();
}

TEST(DagBuilderTest, NodesGetSequentialIdsInFirstMentionOrder) {
  DagBuilder b;
  EXPECT_EQ(b.AddNode("x"), 0u);
  EXPECT_EQ(b.AddNode("y"), 1u);
  EXPECT_EQ(b.AddNode("x"), 0u);  // Idempotent.
  EXPECT_EQ(b.node_count(), 2u);
}

TEST(DagBuilderTest, RejectsSelfLoop) {
  DagBuilder b;
  const Status s = b.AddEdge("a", "a");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(DagBuilderTest, RejectsDuplicateEdge) {
  DagBuilder b;
  EXPECT_TRUE(b.AddEdge("a", "b").ok());
  EXPECT_EQ(b.AddEdge("a", "b").code(), StatusCode::kAlreadyExists);
}

TEST(DagBuilderTest, RejectsUnknownIds) {
  DagBuilder b;
  b.AddNode("a");
  EXPECT_EQ(b.AddEdgeById(0, 5).code(), StatusCode::kOutOfRange);
}

TEST(DagBuilderTest, DetectsTwoNodeCycle) {
  DagBuilder b;
  EXPECT_TRUE(b.AddEdge("a", "b").ok());
  EXPECT_TRUE(b.AddEdge("b", "a").ok());  // Edge itself is fine...
  auto dag = std::move(b).Build();        // ...the cycle fails at Build.
  EXPECT_FALSE(dag.ok());
  EXPECT_EQ(dag.status().code(), StatusCode::kInvalidArgument);
}

TEST(DagBuilderTest, DetectsLongCycle) {
  DagBuilder b;
  EXPECT_TRUE(b.AddEdge("a", "b").ok());
  EXPECT_TRUE(b.AddEdge("b", "c").ok());
  EXPECT_TRUE(b.AddEdge("c", "d").ok());
  EXPECT_TRUE(b.AddEdge("d", "b").ok());
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(DagBuilderTest, EmptyGraphBuilds) {
  DagBuilder b;
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  EXPECT_EQ(dag->node_count(), 0u);
  EXPECT_EQ(dag->edge_count(), 0u);
}

TEST(DagTest, AdjacencyAndDegrees) {
  const Dag dag = BuildSmall();
  EXPECT_EQ(dag.node_count(), 4u);
  EXPECT_EQ(dag.edge_count(), 4u);

  const NodeId a = dag.FindNode("A");
  const NodeId d = dag.FindNode("D");
  EXPECT_EQ(dag.children(a).size(), 2u);
  EXPECT_EQ(dag.parents(a).size(), 0u);
  EXPECT_EQ(dag.children(d).size(), 0u);
  EXPECT_EQ(dag.parents(d).size(), 2u);
  EXPECT_TRUE(dag.is_root(a));
  EXPECT_TRUE(dag.is_sink(d));
  EXPECT_FALSE(dag.is_sink(a));
}

TEST(DagTest, FindNodeMissReturnsInvalid) {
  const Dag dag = BuildSmall();
  EXPECT_EQ(dag.FindNode("nope"), kInvalidNode);
}

TEST(DagTest, HasEdge) {
  const Dag dag = BuildSmall();
  EXPECT_TRUE(dag.HasEdge(dag.FindNode("A"), dag.FindNode("B")));
  EXPECT_FALSE(dag.HasEdge(dag.FindNode("B"), dag.FindNode("A")));
  EXPECT_FALSE(dag.HasEdge(dag.FindNode("A"), dag.FindNode("D")));
}

TEST(DagTest, RootsAndSinks) {
  const Dag dag = BuildSmall();
  EXPECT_EQ(dag.Roots(), std::vector<NodeId>{dag.FindNode("A")});
  EXPECT_EQ(dag.Sinks(), std::vector<NodeId>{dag.FindNode("D")});
}

TEST(DagTest, TopologicalOrderRespectsEdges) {
  const Dag dag = BuildSmall();
  const std::vector<NodeId> order = dag.TopologicalOrder();
  ASSERT_EQ(order.size(), dag.node_count());
  std::vector<size_t> position(dag.node_count());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) {
      EXPECT_LT(position[v], position[c]);
    }
  }
}

TEST(DagTest, IsolatedNodeIsRootAndSink) {
  DagBuilder b;
  b.AddNode("lonely");
  auto dag = std::move(b).Build();
  ASSERT_TRUE(dag.ok());
  EXPECT_TRUE(dag->is_root(0));
  EXPECT_TRUE(dag->is_sink(0));
}

TEST(DagTest, CopySemantics) {
  const Dag dag = BuildSmall();
  const Dag copy = dag;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(copy.node_count(), dag.node_count());
  EXPECT_EQ(copy.FindNode("B"), dag.FindNode("B"));
}

}  // namespace
}  // namespace ucr::graph
