// Allocation-regression test for the hot path (DESIGN.md §7): once the
// per-thread arenas have grown to their steady-state footprint, a
// fast-path `ResolveAccess` query performs ZERO heap allocations —
// no hash maps, no label vectors, no per-node bags. This binary links
// `ucr_alloc_counter`, which replaces the global allocation functions
// with counting versions (see util/alloc_counter.h).

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "acm/acm.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "graph/generators.h"
#include "obs/audit_log.h"
#include "obs/profiler.h"
#include "obs/shadow.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/alloc_counter.h"
#include "util/random.h"

// Sanitizer builds interpose their own allocator machinery; the strict
// zero-allocation bound is asserted by the plain build only.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define UCR_ALLOC_TEST_SKIP 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define UCR_ALLOC_TEST_SKIP 1
#endif
#endif
#ifndef UCR_ALLOC_TEST_SKIP
#define UCR_ALLOC_TEST_SKIP 0
#endif

namespace ucr::core {
namespace {

TEST(HotPathAllocTest, CountingAllocatorIsLive) {
  const uint64_t before = AllocationCount();
  // A direct call (not a new-expression) cannot be elided by the
  // compiler's allocation-elision rules.
  void* probe = ::operator new(64);
  const uint64_t after = AllocationCount();
  ::operator delete(probe);
  EXPECT_GE(after - before, 1u)
      << "counting operator new is not linked in; the zero-allocation "
         "assertions below would be vacuous";
}

TEST(HotPathAllocTest, SteadyStateResolveAccessIsAllocationFree) {
  if (UCR_ALLOC_TEST_SKIP) {
    GTEST_SKIP() << "allocation bounds are checked without sanitizers";
  }

  Random rng(91);
  graph::LayeredDagOptions shape;
  shape.layers = 5;
  shape.nodes_per_layer = 12;
  shape.skip_edge_probability = 0.1;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());

  acm::ExplicitAcm eacm;
  const acm::ObjectId object = eacm.InternObject("o").value();
  const acm::RightId right = eacm.InternRight("r").value();
  for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
    if (!rng.Bernoulli(0.2)) continue;
    const acm::Mode mode =
        rng.Bernoulli(0.4) ? acm::Mode::kNegative : acm::Mode::kPositive;
    ASSERT_TRUE(eacm.Set(v, object, right, mode).ok());
  }

  const std::vector<Strategy> strategies = AllStrategies();
  const auto resolve_all = [&] {
    for (const PropagationMode mode :
         {PropagationMode::kBoth, PropagationMode::kFirstWins,
          PropagationMode::kSecondWins}) {
      ResolveAccessOptions options;
      options.propagation_mode = mode;
      for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
        for (const Strategy& strategy : strategies) {
          const auto result =
              ResolveAccess(*dag, eacm, v, object, right, strategy, options);
          ASSERT_TRUE(result.ok());
        }
      }
    }
  };

  // Warm-up: arenas, label stamps, and bag pools grow to the largest
  // sub-graph in the workload. Buffers only ever grow, so one full
  // sweep reaches the steady state for every query that follows.
  resolve_all();

  const uint64_t before = AllocationCount();
  resolve_all();
  const uint64_t allocations = AllocationCount() - before;
  EXPECT_EQ(allocations, 0u)
      << "the fast path allocated on warm arenas — a regression in "
         "scratch extraction, flat propagation, or streaming resolve";
}

// The observability acceptance bound (DESIGN.md §8): metrics recording
// and even 1-in-1 query tracing stay inside the zero-allocation
// budget. Counters/histograms are relaxed atomics on preallocated
// shards, trace records are fixed-size copies into a preallocated
// ring, and registry interning happens once during warm-up.
TEST(HotPathAllocTest, SteadyStateStaysAllocationFreeWithTracingEveryQuery) {
  if (UCR_ALLOC_TEST_SKIP) {
    GTEST_SKIP() << "allocation bounds are checked without sanitizers";
  }
  if (!obs::kEnabled) {
    GTEST_SKIP() << "instrumentation compiled out (UCR_METRICS=OFF)";
  }

  Random rng(93);
  graph::LayeredDagOptions shape;
  shape.layers = 4;
  shape.nodes_per_layer = 10;
  shape.skip_edge_probability = 0.15;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());

  acm::ExplicitAcm eacm;
  const acm::ObjectId object = eacm.InternObject("o").value();
  const acm::RightId right = eacm.InternRight("r").value();
  for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
    if (!rng.Bernoulli(0.25)) continue;
    const acm::Mode mode =
        rng.Bernoulli(0.4) ? acm::Mode::kNegative : acm::Mode::kPositive;
    ASSERT_TRUE(eacm.Set(v, object, right, mode).ok());
  }

  obs::QueryTracer& tracer = obs::QueryTracer::Global();
  const uint64_t previous_interval = tracer.sample_interval();
  tracer.SetSampleInterval(1);  // Worst case: every query is sampled.

  // A majority strategy, so the sampled records carry c1/c2 too.
  const Strategy strategy = ParseStrategy("D+LMP-").value();
  const auto sweep = [&] {
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      ASSERT_TRUE(
          ResolveAccess(*dag, eacm, v, object, right, strategy).ok());
    }
  };

  sweep();  // Warm-up: arenas AND metric handles reach steady state.
  const uint64_t before = AllocationCount();
  sweep();
  const uint64_t allocations = AllocationCount() - before;
  tracer.SetSampleInterval(previous_interval);
  EXPECT_EQ(allocations, 0u)
      << "instrumentation allocated on the hot path — a regression in "
         "the sharded metrics, the trace ring, or a renderer leaked "
         "into the recording path";
}

// The §9 extension of the same bound: with the audit log running
// (sampled decisions -> discard sink) AND shadow verification firing
// on every query, the *query thread's* budget stays at zero. Event
// emission is a trivially-copyable write into the preallocated ring;
// the writer thread's rendering and the shadow oracle's deliberate
// classic re-resolution run under ScopedAllocExclusion, off budget.
TEST(HotPathAllocTest, SteadyStateStaysAllocationFreeWithAuditAndShadow) {
  if (UCR_ALLOC_TEST_SKIP) {
    GTEST_SKIP() << "allocation bounds are checked without sanitizers";
  }
  if (!obs::kEnabled) {
    GTEST_SKIP() << "instrumentation compiled out (UCR_METRICS=OFF)";
  }

  Random rng(94);
  graph::LayeredDagOptions shape;
  shape.layers = 4;
  shape.nodes_per_layer = 10;
  shape.skip_edge_probability = 0.15;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());

  acm::ExplicitAcm eacm;
  const acm::ObjectId object = eacm.InternObject("o").value();
  const acm::RightId right = eacm.InternRight("r").value();
  for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
    if (!rng.Bernoulli(0.25)) continue;
    const acm::Mode mode =
        rng.Bernoulli(0.4) ? acm::Mode::kNegative : acm::Mode::kPositive;
    ASSERT_TRUE(eacm.Set(v, object, right, mode).ok());
  }

  obs::QueryTracer& tracer = obs::QueryTracer::Global();
  const uint64_t previous_interval = tracer.sample_interval();
  tracer.SetSampleInterval(1);
  obs::AuditLogOptions audit_options;
  audit_options.sinks.push_back(std::make_unique<obs::DiscardSink>());
  ASSERT_TRUE(obs::AuditLog::Global().Start(std::move(audit_options)));
  obs::ShadowVerifier::Global().SetInterval(1);  // Worst case.

  const Strategy strategy = ParseStrategy("D+LMP-").value();
  const auto sweep = [&] {
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      ASSERT_TRUE(
          ResolveAccess(*dag, eacm, v, object, right, strategy).ok());
    }
  };

  sweep();  // Warm-up: arenas, metric handles, oracle scratch.
  const uint64_t before = AllocationCount();
  sweep();
  const uint64_t allocations = AllocationCount() - before;
  obs::ShadowVerifier::Global().SetInterval(0);
  obs::AuditLog::Global().Stop();
  tracer.SetSampleInterval(previous_interval);
  EXPECT_EQ(allocations, 0u)
      << "audit emission or shadow verification allocated on the query "
         "thread's budget — an event field grew past the POD buffer, or "
         "an exclusion scope was dropped";
  EXPECT_EQ(obs::ShadowVerifier::Global().mismatch_total(), 0u)
      << "the shadow oracle disagreed with the fast path";
}

// The §13 extension: the full PR-8 telemetry stack — time-series
// sampler ticking in the background, exemplar capture enabled at
// threshold 0, tracing every query — keeps the query thread's budget
// at zero. The sampler thread scrapes under ScopedAllocExclusion, and
// exemplar capture is a CAS plus relaxed stores into preallocated
// per-bucket slots.
TEST(HotPathAllocTest, SteadyStateStaysAllocationFreeWithSamplerLive) {
  if (UCR_ALLOC_TEST_SKIP) {
    GTEST_SKIP() << "allocation bounds are checked without sanitizers";
  }
  if (!obs::kEnabled) {
    GTEST_SKIP() << "instrumentation compiled out (UCR_METRICS=OFF)";
  }

  Random rng(95);
  graph::LayeredDagOptions shape;
  shape.layers = 4;
  shape.nodes_per_layer = 10;
  shape.skip_edge_probability = 0.15;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());

  acm::ExplicitAcm eacm;
  const acm::ObjectId object = eacm.InternObject("o").value();
  const acm::RightId right = eacm.InternRight("r").value();
  for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
    if (!rng.Bernoulli(0.25)) continue;
    const acm::Mode mode =
        rng.Bernoulli(0.4) ? acm::Mode::kNegative : acm::Mode::kPositive;
    ASSERT_TRUE(eacm.Set(v, object, right, mode).ok());
  }

  obs::QueryTracer& tracer = obs::QueryTracer::Global();
  const uint64_t previous_interval = tracer.sample_interval();
  tracer.SetSampleInterval(1);   // Worst case: every query sampled...
  obs::SetExemplarThreshold(0);  // ...and every sample leaves an exemplar.
  obs::TimeSeriesSampler::Options ts_options;
  ts_options.interval_ms = 1;  // Scrape as often as the OS allows.
  ASSERT_TRUE(obs::TimeSeriesSampler::Global().Start(ts_options, nullptr));

  const Strategy strategy = ParseStrategy("D+LMP-").value();
  const auto sweep = [&] {
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      ASSERT_TRUE(
          ResolveAccess(*dag, eacm, v, object, right, strategy).ok());
    }
  };

  sweep();  // Warm-up: arenas, metric handles, exemplar slots.
  const uint64_t before = AllocationCount();
  // Keep querying until the sampler has demonstrably scraped mid-sweep
  // (bounded: CI schedulers can delay the first tick), so the zero
  // budget is measured while ticks really overlap the queries.
  for (int pass = 0;
       pass < 5000 && obs::TimeSeriesSampler::Global().ticks_total() < 2;
       ++pass) {
    sweep();
  }
  const uint64_t allocations = AllocationCount() - before;
  obs::TimeSeriesSampler::Global().Stop();
  tracer.SetSampleInterval(previous_interval);
  EXPECT_GE(obs::TimeSeriesSampler::Global().ticks_total(), 2u)
      << "the sampler never ticked; the overlap this test wants did "
         "not happen";
  EXPECT_EQ(allocations, 0u)
      << "the sampler or exemplar capture allocated on the query "
         "thread's budget — a scrape escaped ScopedAllocExclusion, or "
         "exemplar capture left its preallocated slots";
}

// The §14 extension: phase timers collecting on EVERY query (tracing
// 1-in-1) while the SIGPROF wall sampler interrupts the query thread
// at ~1 kHz. The phase accumulator is zero-initialized POD TLS, the
// flush observes into preallocated histogram shards, the signal
// handler writes a CAS-claimed static ring, and the ticker thread
// drains under ScopedAllocExclusion — so the query thread's budget
// stays at zero even mid-interrupt.
TEST(HotPathAllocTest, SteadyStateStaysAllocationFreeWithProfilerLive) {
  if (UCR_ALLOC_TEST_SKIP) {
    GTEST_SKIP() << "allocation bounds are checked without sanitizers";
  }
  if (!obs::kEnabled) {
    GTEST_SKIP() << "instrumentation compiled out (UCR_METRICS=OFF)";
  }

  Random rng(96);
  graph::LayeredDagOptions shape;
  shape.layers = 4;
  shape.nodes_per_layer = 10;
  shape.skip_edge_probability = 0.15;
  auto dag = graph::GenerateLayeredDag(shape, rng);
  ASSERT_TRUE(dag.ok());

  acm::ExplicitAcm eacm;
  const acm::ObjectId object = eacm.InternObject("o").value();
  const acm::RightId right = eacm.InternRight("r").value();
  for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
    if (!rng.Bernoulli(0.25)) continue;
    const acm::Mode mode =
        rng.Bernoulli(0.4) ? acm::Mode::kNegative : acm::Mode::kPositive;
    ASSERT_TRUE(eacm.Set(v, object, right, mode).ok());
  }

  obs::QueryTracer& tracer = obs::QueryTracer::Global();
  const uint64_t previous_interval = tracer.sample_interval();
  tracer.SetSampleInterval(1);  // Every query runs a phase collection.
  obs::WallProfiler::Options profiler_options;
  profiler_options.hz = 997;  // ~1 kHz: far above the production 97 Hz.
  ASSERT_TRUE(obs::WallProfiler::Global().Start(profiler_options));

  const Strategy strategy = ParseStrategy("D+LMP-").value();
  const auto sweep = [&] {
    for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
      ASSERT_TRUE(
          ResolveAccess(*dag, eacm, v, object, right, strategy).ok());
    }
  };

  sweep();  // Warm-up: arenas, metric handles, phase histograms.
  const uint64_t before = AllocationCount();
  // Keep querying until the sampler has demonstrably interrupted the
  // process mid-sweep (bounded: signal delivery can lag on loaded CI
  // hosts), so the zero budget is measured under real interrupts.
  for (int pass = 0;
       pass < 5000 &&
       obs::WallProfiler::Global().GetStats().samples_total < 8;
       ++pass) {
    sweep();
  }
  const uint64_t allocations = AllocationCount() - before;
  const auto stats = obs::WallProfiler::Global().GetStats();
  obs::WallProfiler::Global().Stop();
  tracer.SetSampleInterval(previous_interval);
  EXPECT_GE(stats.samples_total, 8u)
      << "the wall sampler never captured mid-sweep; the overlap this "
         "test wants did not happen";
  EXPECT_EQ(allocations, 0u)
      << "phase timers or the wall sampler allocated on the query "
         "thread's budget — a flush left its preallocated histograms, "
         "or the signal handler escaped the static ring pool";
}

TEST(HotPathAllocTest, ArenaSwitchReachesSteadyStateAcrossDagSizes) {
  if (UCR_ALLOC_TEST_SKIP) {
    GTEST_SKIP() << "allocation bounds are checked without sanitizers";
  }

  Random rng(92);
  auto small = graph::GenerateRandomTree(16, rng);
  auto large = graph::GenerateDiamondStack(8);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  acm::ExplicitAcm small_acm, large_acm;
  const acm::ObjectId o_small = small_acm.InternObject("o").value();
  const acm::RightId r_small = small_acm.InternRight("r").value();
  const acm::ObjectId o_large = large_acm.InternObject("o").value();
  const acm::RightId r_large = large_acm.InternRight("r").value();
  ASSERT_TRUE(small_acm.Set(0, o_small, r_small, acm::Mode::kPositive).ok());
  ASSERT_TRUE(large_acm.Set(1, o_large, r_large, acm::Mode::kNegative).ok());

  const Strategy strategy = ParseStrategy("D+LP-").value();
  const auto sweep = [&] {
    for (graph::NodeId v = 0; v < small->node_count(); ++v) {
      ASSERT_TRUE(
          ResolveAccess(*small, small_acm, v, o_small, r_small, strategy)
              .ok());
    }
    for (graph::NodeId v = 0; v < large->node_count(); ++v) {
      ASSERT_TRUE(
          ResolveAccess(*large, large_acm, v, o_large, r_large, strategy)
              .ok());
    }
  };

  // Alternating between hierarchies of different sizes must not evict
  // the arenas back to cold: epochs invalidate, capacity stays.
  sweep();
  const uint64_t before = AllocationCount();
  sweep();
  sweep();
  EXPECT_EQ(AllocationCount() - before, 0u);
}

}  // namespace
}  // namespace ucr::core
