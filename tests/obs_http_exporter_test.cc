// Tests for the live exposition server (src/obs/http_exporter.h,
// DESIGN.md §9): endpoint rendering, and a real-socket round trip
// against every endpoint plus the 404 and 405 paths.

#include "obs/http_exporter.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/metrics.h"

namespace ucr::obs {
namespace {

#if !UCR_METRICS_ENABLED

TEST(ObsHttpExporterTest, DisabledBuildRefusesToStart) {
  HttpExporter exporter;
  std::string error;
  EXPECT_FALSE(exporter.Start(0, &error));
  EXPECT_NE(error.find("UCR_METRICS=OFF"), std::string::npos) << error;
  EXPECT_FALSE(exporter.running());
}

#else

/// One blocking HTTP exchange against 127.0.0.1:`port`; returns the
/// raw response (status line + headers + body).
std::string HttpRequest(uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(uint16_t port, const std::string& path) {
  return HttpRequest(port,
                     "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n");
}

TEST(ObsHttpExporterTest, RenderEndpointCoversAllPaths) {
  // Touch one counter so /metrics is non-empty.
  Registry::Global().GetCounter("ucr_exporter_test_total", "t").Inc();

  std::string body;
  std::string type;
  ASSERT_TRUE(HttpExporter::RenderEndpoint("/metrics", &body, &type));
  EXPECT_NE(type.find("text/plain"), std::string::npos);
  EXPECT_NE(body.find("# HELP"), std::string::npos);
  EXPECT_NE(body.find("ucr_exporter_test_total"), std::string::npos);

  ASSERT_TRUE(HttpExporter::RenderEndpoint("/healthz", &body, &type));
  EXPECT_EQ(body, "ok\n");

  ASSERT_TRUE(HttpExporter::RenderEndpoint("/varz", &body, &type));
  EXPECT_NE(type.find("application/json"), std::string::npos);
  EXPECT_TRUE(JsonLooksValid(body)) << body;
  EXPECT_NE(body.find("\"epoch\""), std::string::npos);
  EXPECT_NE(body.find("\"current\""), std::string::npos);
  EXPECT_NE(body.find("\"readers\""), std::string::npos);
  EXPECT_NE(body.find("\"lag\""), std::string::npos);
  EXPECT_NE(body.find("\"tracer\""), std::string::npos);
  EXPECT_NE(body.find("\"audit\""), std::string::npos);
  EXPECT_NE(body.find("\"shadow\""), std::string::npos);

  ASSERT_TRUE(HttpExporter::RenderEndpoint("/tracez", &body, &type));
  EXPECT_TRUE(JsonLooksValid(body)) << body;
  EXPECT_NE(body.find("\"traces\""), std::string::npos);
  EXPECT_NE(body.find("\"shadow_mismatches\""), std::string::npos);

  EXPECT_FALSE(HttpExporter::RenderEndpoint("/nope", &body, &type));
}

TEST(ObsHttpExporterTest, ServesAllEndpointsOverARealSocket) {
  HttpExporter exporter;
  std::string error;
  ASSERT_TRUE(exporter.Start(0, &error)) << error;
  ASSERT_TRUE(exporter.running());
  ASSERT_NE(exporter.port(), 0);

  const std::string metrics = Get(exporter.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain"), std::string::npos);
  EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
  EXPECT_NE(metrics.find("Content-Length:"), std::string::npos);

  const std::string healthz = Get(exporter.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(healthz.find("ok"), std::string::npos);

  const std::string varz = Get(exporter.port(), "/varz");
  EXPECT_NE(varz.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(varz.find("\"metrics\""), std::string::npos);

  // Query strings are ignored when routing (Prometheus scrapers may
  // append parameters).
  const std::string tracez = Get(exporter.port(), "/tracez?limit=5");
  EXPECT_NE(tracez.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(tracez.find("\"traces\""), std::string::npos);

  const std::string missing = Get(exporter.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos) << missing;

  const std::string post = HttpRequest(
      exporter.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(post.find("HTTP/1.1 405"), std::string::npos) << post;

  EXPECT_GE(exporter.requests_total(), 6u);
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
}

TEST(ObsHttpExporterTest, StopIsIdempotentAndRestartWorks) {
  HttpExporter exporter;
  ASSERT_TRUE(exporter.Start(0));
  const uint16_t first_port = exporter.port();
  EXPECT_NE(first_port, 0);
  exporter.Stop();
  exporter.Stop();  // Idempotent.

  ASSERT_TRUE(exporter.Start(0));
  EXPECT_NE(Get(exporter.port(), "/healthz").find("200 OK"),
            std::string::npos);
  exporter.Stop();
}

TEST(ObsHttpExporterTest, StallingClientDoesNotWedgeTheServer) {
  HttpExporter exporter;
  // Short timeout so the test runs in milliseconds; production default
  // is 5s.
  exporter.set_client_timeout_ms(200);
  std::string error;
  ASSERT_TRUE(exporter.Start(0, &error)) << error;

  // A client that connects and never sends a byte. Before the socket
  // timeouts, this parked the single-threaded accept loop in recv()
  // forever and every later scrape hung.
  const int staller = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(staller, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(exporter.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(
      ::connect(staller, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);

  // A well-behaved scrape issued while the staller holds the loop: it
  // must still be answered (after at most the timeout), proving the
  // stalled connection was dropped rather than served forever.
  const std::string healthz = Get(exporter.port(), "/healthz");
  EXPECT_NE(healthz.find("HTTP/1.1 200 OK"), std::string::npos) << healthz;
  EXPECT_GE(exporter.timeouts_total(), 1u);

  // A second stalled connection, this time with a half-written request
  // (no header terminator): same outcome.
  const int partial = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(partial, 0);
  ASSERT_EQ(
      ::connect(partial, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
      0);
  const char half[] = "GET /metrics HTT";
  ASSERT_EQ(::send(partial, half, sizeof(half) - 1, 0),
            static_cast<ssize_t>(sizeof(half) - 1));
  const std::string varz = Get(exporter.port(), "/varz");
  EXPECT_NE(varz.find("HTTP/1.1 200 OK"), std::string::npos) << varz;
  EXPECT_GE(exporter.timeouts_total(), 2u);

  ::close(staller);
  ::close(partial);
  exporter.Stop();
}

TEST(ObsHttpExporterTest, PortAlreadyInUseFailsWithError) {
  HttpExporter first;
  ASSERT_TRUE(first.Start(0));
  HttpExporter second;
  std::string error;
  EXPECT_FALSE(second.Start(first.port(), &error));
  EXPECT_FALSE(error.empty());
  first.Stop();
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::obs
