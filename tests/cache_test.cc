#include "core/cache.h"

#include <gtest/gtest.h>

#include "core/paper_example.h"
#include "core/strategy.h"

namespace ucr::core {
namespace {

using acm::Mode;

Strategy S(const char* mnemonic) { return ParseStrategy(mnemonic).value(); }

TEST(ResolutionCacheTest, MissThenHit) {
  ResolutionCache cache;
  EXPECT_EQ(cache.Lookup(1, 0, 0, S("D+LP-"), 5), std::nullopt);
  cache.Store(1, 0, 0, S("D+LP-"), 5, Mode::kPositive);
  EXPECT_EQ(cache.Lookup(1, 0, 0, S("D+LP-"), 5), Mode::kPositive);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ResolutionCacheTest, EpochChangeInvalidates) {
  ResolutionCache cache;
  cache.Store(1, 0, 0, S("P-"), 5, Mode::kNegative);
  EXPECT_EQ(cache.Lookup(1, 0, 0, S("P-"), 6), std::nullopt);
  EXPECT_EQ(cache.stats().invalidations, 1u);
  EXPECT_EQ(cache.size(), 0u) << "stale entry must be evicted";
}

TEST(ResolutionCacheTest, KeysDistinguishAllComponents) {
  ResolutionCache cache;
  cache.Store(1, 2, 3, S("P-"), 0, Mode::kNegative);
  EXPECT_EQ(cache.Lookup(2, 2, 3, S("P-"), 0), std::nullopt);  // Subject.
  EXPECT_EQ(cache.Lookup(1, 3, 3, S("P-"), 0), std::nullopt);  // Object.
  EXPECT_EQ(cache.Lookup(1, 2, 4, S("P-"), 0), std::nullopt);  // Right.
  EXPECT_EQ(cache.Lookup(1, 2, 3, S("P+"), 0), std::nullopt);  // Strategy.
  EXPECT_EQ(cache.Lookup(1, 2, 3, S("P-"), 0), Mode::kNegative);
}

TEST(ResolutionCacheTest, NonCanonicalStrategySharesEntry) {
  ResolutionCache cache;
  Strategy alias;
  alias.majority_rule = MajorityRule::kAfter;  // Identity+after alias.
  cache.Store(1, 0, 0, alias, 0, Mode::kPositive);
  EXPECT_EQ(cache.Lookup(1, 0, 0, alias.Canonical(), 0), Mode::kPositive);
}

TEST(ResolutionCacheTest, ClearDropsEverything) {
  ResolutionCache cache;
  cache.Store(1, 0, 0, S("P-"), 0, Mode::kNegative);
  cache.Store(2, 0, 0, S("P-"), 0, Mode::kPositive);
  EXPECT_EQ(cache.size(), 2u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(1, 0, 0, S("P-"), 0), std::nullopt);
}

TEST(ResolutionCacheTest, StoreOverwritesForNewEpoch) {
  ResolutionCache cache;
  cache.Store(1, 0, 0, S("P-"), 0, Mode::kNegative);
  cache.Store(1, 0, 0, S("P-"), 1, Mode::kPositive);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup(1, 0, 0, S("P-"), 1), Mode::kPositive);
}

TEST(SubgraphCacheTest, ExtractsOnceAndReuses) {
  const PaperExample ex = MakePaperExample();
  SubgraphCache cache;
  const graph::AncestorSubgraph& first = cache.Get(ex.dag, ex.user);
  const graph::AncestorSubgraph& second = cache.Get(ex.dag, ex.user);
  EXPECT_EQ(&first, &second) << "cached sub-graph must be shared";
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first.member_count(), 6u);
}

TEST(SubgraphCacheTest, DistinctSubjectsDistinctEntries) {
  const PaperExample ex = MakePaperExample();
  SubgraphCache cache;
  cache.Get(ex.dag, ex.user);
  cache.Get(ex.dag, ex.dag.FindNode("S5"));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(SubgraphCacheTest, ClearResetsStatsAlongsideEntries) {
  // Regression: Clear() used to drop the sub-graphs but keep hits_/
  // misses_, so hit-rate reporting mixed pre- and post-clear epochs.
  const PaperExample ex = MakePaperExample();
  SubgraphCache cache;
  cache.Get(ex.dag, ex.user);
  cache.Get(ex.dag, ex.user);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(SubgraphCacheTest, ReferencesSurviveRehash) {
  // References returned earlier must stay valid as the cache grows
  // (unique_ptr indirection); fill with many subjects and re-check.
  const PaperExample ex = MakePaperExample();
  SubgraphCache cache;
  const graph::AncestorSubgraph& user_sub = cache.Get(ex.dag, ex.user);
  const size_t members_before = user_sub.member_count();
  for (graph::NodeId v = 0; v < ex.dag.node_count(); ++v) {
    cache.Get(ex.dag, v);
  }
  EXPECT_EQ(user_sub.member_count(), members_before);
  EXPECT_EQ(&cache.Get(ex.dag, ex.user), &user_sub);
}

}  // namespace
}  // namespace ucr::core
