// Tests for the sampling query tracer (src/obs/trace.h, DESIGN.md §8):
// sampling cadence, ring-buffer retention, and — the audit-grade
// property — that a sampled trace of the paper's worked example
// reproduces the Fig. 4 derivation exactly, for every canonical
// strategy.

#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/paper_example.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "core/system.h"
#include "obs/metrics.h"

namespace ucr::obs {
namespace {

#if !UCR_METRICS_ENABLED
TEST(ObsTraceTest, DisabledBuildNeverSamples) {
  QueryTracer& tracer = QueryTracer::Global();
  tracer.SetSampleInterval(1);
  EXPECT_FALSE(tracer.ShouldSample());
}
#else

// ShouldSample keeps per-thread countdown state; one call at interval
// 1 always samples and resets the countdown, making what follows
// deterministic regardless of earlier tests on this thread.
void ResetSamplingState(QueryTracer& tracer) {
  tracer.SetSampleInterval(1);
  ASSERT_TRUE(tracer.ShouldSample());
}

TEST(ObsTraceTest, SamplesEveryNthQueryPerThread) {
  QueryTracer& tracer = QueryTracer::Global();
  ResetSamplingState(tracer);

  tracer.SetSampleInterval(3);
  const std::vector<bool> expected = {false, false, true,
                                      false, false, true};
  for (const bool want : expected) {
    EXPECT_EQ(tracer.ShouldSample(), want);
  }
  tracer.SetSampleInterval(QueryTracer::kDefaultInterval);
}

TEST(ObsTraceTest, IntervalZeroDisablesSampling) {
  QueryTracer& tracer = QueryTracer::Global();
  ResetSamplingState(tracer);
  tracer.SetSampleInterval(0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(tracer.ShouldSample());
  tracer.SetSampleInterval(QueryTracer::kDefaultInterval);
}

TEST(ObsTraceTest, RingRetainsNewestRecordsOldestFirst) {
  QueryTracer& tracer = QueryTracer::Global();
  tracer.Clear();
  const uint64_t total = QueryTracer::kRingCapacity + 44;
  for (uint64_t i = 0; i < total; ++i) {
    QueryTraceRecord record;
    record.subject = static_cast<uint32_t>(i);
    tracer.Record(record);
  }
  EXPECT_EQ(tracer.recorded_total(), total);

  const std::vector<QueryTraceRecord> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), QueryTracer::kRingCapacity);
  // The 44 oldest records were overwritten; the rest arrive in order.
  EXPECT_EQ(snap.front().subject, 44u);
  EXPECT_EQ(snap.back().subject, total - 1);
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].subject, snap[i - 1].subject + 1);
  }
  tracer.Clear();
  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.recorded_total(), 0u);
}

// The acceptance property of the tracer: for the paper's own example
// (User querying read on obj), the sampled record carries the same
// Fig. 4 derivation — majority counters, Auth set, returning line,
// decision — that a direct traced resolution produces. Checked for
// all 48 canonical strategies so every Fig. 4 branch is covered.
TEST(ObsTraceTest, SampledTraceReproducesFig4OnPaperExample) {
  core::PaperExample ex = core::MakePaperExample();
  QueryTracer& tracer = QueryTracer::Global();
  ResetSamplingState(tracer);
  tracer.SetSampleInterval(1);

  for (const core::Strategy& strategy : core::AllStrategies()) {
    core::ResolveTrace want;
    const auto direct = core::ResolveAccess(ex.dag, ex.eacm, ex.user, ex.obj,
                                            ex.read, strategy, {}, &want);
    ASSERT_TRUE(direct.ok());

    tracer.Clear();
    const auto mode = core::ResolveAccess(ex.dag, ex.eacm, ex.user, ex.obj,
                                          ex.read, strategy);
    ASSERT_TRUE(mode.ok());
    EXPECT_EQ(*mode, *direct);

    const std::vector<QueryTraceRecord> snap = tracer.Snapshot();
    ASSERT_EQ(snap.size(), 1u) << strategy.ToMnemonic();
    const QueryTraceRecord& got = snap.back();

    EXPECT_EQ(got.subject, ex.user);
    EXPECT_EQ(got.object, ex.obj);
    EXPECT_EQ(got.right, ex.read);
    EXPECT_EQ(got.strategy_index, strategy.Canonical().CanonicalIndex());
    EXPECT_EQ(got.has_majority, want.c1.has_value()) << strategy.ToMnemonic();
    EXPECT_EQ(got.c1, want.c1.value_or(0)) << strategy.ToMnemonic();
    EXPECT_EQ(got.c2, want.c2.value_or(0)) << strategy.ToMnemonic();
    EXPECT_EQ(got.auth_computed, want.auth_computed);
    EXPECT_EQ(got.auth_has_positive, want.auth_has_positive);
    EXPECT_EQ(got.auth_has_negative, want.auth_has_negative);
    EXPECT_EQ(got.returned_line, want.returned_line) << strategy.ToMnemonic();
    EXPECT_EQ(got.granted, want.result == acm::Mode::kPositive);
    EXPECT_GT(got.total_ns, 0u);
  }
  tracer.SetSampleInterval(QueryTracer::kDefaultInterval);
  tracer.Clear();
}

// The system front door (CheckAccess) records the same derivation,
// plus cache interactions: a repeat query is a resolution-cache hit
// with no Fig. 4 payload of its own.
TEST(ObsTraceTest, SystemQueriesRecordCacheInteractions) {
  core::PaperExample ex = core::MakePaperExample();
  core::AccessControlSystem system(std::move(ex.dag));
  ASSERT_TRUE(system.Grant("S2", "obj", "read").ok());
  ASSERT_TRUE(system.Grant("S4", "obj", "read").ok());
  ASSERT_TRUE(system.DenyAccess("S5", "obj", "read").ok());
  system.SetStrategy(core::ParseStrategy("D+LP-").value());

  QueryTracer& tracer = QueryTracer::Global();
  ResetSamplingState(tracer);
  tracer.SetSampleInterval(1);
  tracer.Clear();

  for (int repeat = 0; repeat < 2; ++repeat) {
    const auto mode = system.CheckAccessByName("User", "obj", "read");
    ASSERT_TRUE(mode.ok());
    // Paper Table 2, strategy D+LP-: the preference rule settles the
    // {+,-} conflict in favour of '-'.
    EXPECT_EQ(*mode, acm::Mode::kNegative);
  }

  const std::vector<QueryTraceRecord> snap = tracer.Snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_FALSE(snap[0].resolution_cache_hit);
  EXPECT_TRUE(snap[0].auth_computed);
  EXPECT_TRUE(snap[0].auth_has_positive);
  EXPECT_TRUE(snap[0].auth_has_negative);
  EXPECT_EQ(snap[0].returned_line, 9);
  EXPECT_TRUE(snap[1].resolution_cache_hit);
  EXPECT_FALSE(snap[1].auth_computed);  // Hits re-serve, not re-derive.
  EXPECT_EQ(snap[0].granted, snap[1].granted);

  tracer.SetSampleInterval(QueryTracer::kDefaultInterval);
  tracer.Clear();
}

TEST(ObsTraceTest, RenderersEmitTheDerivation) {
  QueryTraceRecord record;
  record.strategy_index = 21;
  record.auth_computed = true;
  record.auth_has_positive = true;
  record.auth_has_negative = true;
  record.returned_line = 9;
  record.granted = false;

  const std::string fig4 = ToFig4String(record);
  EXPECT_NE(fig4.find("Auth = {+,-}"), std::string::npos) << fig4;
  EXPECT_NE(fig4.find("line 9"), std::string::npos) << fig4;

  const std::string json = ToJson(record);
  EXPECT_TRUE(JsonLooksValid(json)) << json;
  EXPECT_NE(json.find("\"returned_line\":9"), std::string::npos);
  EXPECT_NE(json.find("\"strategy_index\":21"), std::string::npos);

  // A majority outcome renders its counters.
  record.has_majority = true;
  record.c1 = 2;
  record.c2 = 1;
  record.returned_line = 6;
  record.granted = true;
  const std::string majority = ToFig4String(record);
  EXPECT_NE(majority.find("line 6"), std::string::npos) << majority;
  EXPECT_NE(majority.find("c1 = 2"), std::string::npos) << majority;
}

#endif  // UCR_METRICS_ENABLED

}  // namespace
}  // namespace ucr::obs
