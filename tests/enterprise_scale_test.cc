// Scale-level integration checks on a Livelink-shaped hierarchy: the
// consistency properties that must survive thousands of subjects —
// batch parallelism, whole-graph materialization, caching, and the
// persistence round trip all agreeing with scalar resolution.

#include <gtest/gtest.h>

#include "acm/assignment.h"
#include "core/storage.h"
#include "graph/io.h"
#include "core/system.h"
#include "util/random.h"
#include "workload/enterprise.h"
#include "workload/query_stream.h"

namespace ucr {
namespace {

using acm::Mode;
using core::Strategy;

core::AccessControlSystem MakeScaleSystem() {
  Random rng(2026);
  workload::EnterpriseOptions shape;
  shape.individuals = 500;
  shape.groups = 1700;
  shape.top_level_groups = 20;
  shape.target_edges = 6000;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  EXPECT_TRUE(dag.ok());
  core::AccessControlSystem system(std::move(dag).value());

  acm::ExplicitAcm seed;
  const acm::ObjectId o = seed.InternObject("vault").value();
  const acm::RightId r = seed.InternRight("open").value();
  acm::RandomAssignmentOptions assign;
  assign.authorization_rate = 0.008;
  assign.negative_fraction = 0.35;
  EXPECT_TRUE(
      acm::AssignRandomAuthorizations(system.dag(), o, r, assign, rng, &seed)
          .ok());
  for (const auto& e : seed.SortedEntries()) {
    const std::string& name = system.dag().name(e.subject);
    const Status status = e.mode == Mode::kPositive
                              ? system.Grant(name, "vault", "open")
                              : system.DenyAccess(name, "vault", "open");
    EXPECT_TRUE(status.ok());
  }
  return system;
}

TEST(EnterpriseScaleTest, ParallelBatchEqualsSerialOnRealWorkload) {
  core::AccessControlSystem system = MakeScaleSystem();
  workload::QueryStreamOptions stream_opt;
  stream_opt.count = 600;
  stream_opt.distribution = workload::SubjectDistribution::kZipf;
  auto queries =
      workload::GenerateQueryStream(system.dag(), system.eacm(), stream_opt);
  ASSERT_TRUE(queries.ok());

  const Strategy s = core::ParseStrategy("D+LP-").value();
  auto serial = system.CheckAccessBatch(*queries, s, 1);
  auto parallel = system.CheckAccessBatch(*queries, s, 8);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(*serial, *parallel);
}

TEST(EnterpriseScaleTest, EffectiveColumnAgreesWithScalarQueries) {
  core::AccessControlSystem system = MakeScaleSystem();
  const acm::ObjectId o = system.eacm().FindObject("vault").value();
  const acm::RightId r = system.eacm().FindRight("open").value();
  for (const char* mnemonic : {"D-GMP+", "MLP-", "D+LP-"}) {
    const Strategy s = core::ParseStrategy(mnemonic).value();
    auto column = system.MaterializeEffectiveColumn(o, r, s);
    ASSERT_TRUE(column.ok());
    // Sample every 37th subject (full sweep is the benches' job).
    for (graph::NodeId v = 0; v < system.dag().node_count(); v += 37) {
      EXPECT_EQ((*column)[v], system.CheckAccess(v, o, r, s).value())
          << mnemonic << " " << system.dag().name(v);
    }
  }
}

TEST(EnterpriseScaleTest, CachedAndUncachedAgreeUnderChurn) {
  core::SystemOptions uncached_opt;
  uncached_opt.enable_resolution_cache = false;
  uncached_opt.enable_subgraph_cache = false;

  core::AccessControlSystem cached = MakeScaleSystem();
  core::AccessControlSystem uncached = MakeScaleSystem();
  // (Same seed => identical systems; only the cache settings differ,
  // applied post-hoc via a fresh build for `uncached`.)
  core::AccessControlSystem uncached_rebuilt(
      graph::FromEdgeListText(graph::ToEdgeListText(uncached.dag())).value(),
      uncached_opt);
  for (const auto& e : uncached.eacm().SortedEntries()) {
    const std::string& name = uncached.dag().name(e.subject);
    ASSERT_TRUE((e.mode == Mode::kPositive
                     ? uncached_rebuilt.Grant(name, "vault", "open")
                     : uncached_rebuilt.DenyAccess(name, "vault", "open"))
                    .ok());
  }

  const Strategy s = core::ParseStrategy("LMP-").value();
  Random rng(99);
  const auto sinks = cached.dag().Sinks();
  for (int round = 0; round < 4; ++round) {
    // Query a sample twice (to exercise hits), then churn the matrix.
    for (int i = 0; i < 50; ++i) {
      const graph::NodeId v = sinks[rng.Uniform(sinks.size())];
      auto a = cached.CheckAccessByName(cached.dag().name(v), "vault",
                                        "open", s);
      auto b = uncached_rebuilt.CheckAccessByName(cached.dag().name(v),
                                                  "vault", "open", s);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(*a, *b) << cached.dag().name(v);
    }
    const graph::NodeId target = static_cast<graph::NodeId>(
        rng.Uniform(cached.dag().node_count()));
    const std::string name = cached.dag().name(target);
    (void)cached.Revoke(name, "vault", "open");
    (void)uncached_rebuilt.Revoke(name, "vault", "open");
    ASSERT_TRUE(cached.Grant(name, "vault", "open").ok());
    ASSERT_TRUE(uncached_rebuilt.Grant(name, "vault", "open").ok());
  }
}

TEST(EnterpriseScaleTest, PersistenceRoundTripAtScale) {
  core::AccessControlSystem original = MakeScaleSystem();
  original.SetStrategy(core::ParseStrategy("D-MLP+").value());
  const std::string text = core::SaveSystemToText(original);
  auto loaded = core::LoadSystemFromText(text);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dag().node_count(), original.dag().node_count());
  EXPECT_EQ(loaded->eacm().size(), original.eacm().size());

  Random rng(7);
  const auto sinks = original.dag().Sinks();
  for (int i = 0; i < 60; ++i) {
    const graph::NodeId v = sinks[rng.Uniform(sinks.size())];
    const std::string& name = original.dag().name(v);
    EXPECT_EQ(loaded->CheckAccessByName(name, "vault", "open").value(),
              original.CheckAccessByName(name, "vault", "open").value())
        << name;
  }
}

}  // namespace
}  // namespace ucr
