#include "workload/enterprise.h"

#include <gtest/gtest.h>

#include "graph/ancestor_subgraph.h"
#include "util/random.h"

namespace ucr::workload {
namespace {

EnterpriseOptions SmallOptions() {
  EnterpriseOptions opt;
  opt.individuals = 120;
  opt.groups = 300;
  opt.top_level_groups = 8;
  opt.max_group_depth = 6;
  opt.target_edges = 900;
  return opt;
}

TEST(EnterpriseTest, SmallHierarchyShape) {
  Random rng(1);
  auto dag = GenerateEnterpriseHierarchy(SmallOptions(), rng);
  ASSERT_TRUE(dag.ok()) << dag.status().ToString();
  EXPECT_EQ(dag->node_count(), 420u);
  // Edge target is met up to duplicate-draw shortfall.
  EXPECT_GE(dag->edge_count(), 850u);
  EXPECT_LE(dag->edge_count(), 900u);
  // All users are sinks; groups may incidentally be childless, so the
  // sink count is at least the user count... in fact users never get
  // children, so:
  EXPECT_GE(dag->Sinks().size(), 120u);
  EXPECT_LE(dag->Roots().size(), 8u);
}

TEST(EnterpriseTest, UsersAreSinksAndNamed) {
  Random rng(2);
  auto dag = GenerateEnterpriseHierarchy(SmallOptions(), rng);
  ASSERT_TRUE(dag.ok());
  for (graph::NodeId v = 0; v < dag->node_count(); ++v) {
    if (dag->name(v).rfind("user", 0) == 0) {
      EXPECT_TRUE(dag->is_sink(v)) << dag->name(v);
      EXPECT_FALSE(dag->is_root(v)) << "users always belong to a group";
    }
  }
}

TEST(EnterpriseTest, DeterministicForSeed) {
  Random rng1(3);
  Random rng2(3);
  auto a = GenerateEnterpriseHierarchy(SmallOptions(), rng1);
  auto b = GenerateEnterpriseHierarchy(SmallOptions(), rng2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->edge_count(), b->edge_count());
  for (graph::NodeId v = 0; v < a->node_count(); ++v) {
    ASSERT_EQ(a->children(v).size(), b->children(v).size());
  }
}

TEST(EnterpriseTest, ValidatesOptions) {
  Random rng(4);
  EnterpriseOptions opt = SmallOptions();
  opt.top_level_groups = 0;
  EXPECT_FALSE(GenerateEnterpriseHierarchy(opt, rng).ok());
  opt = SmallOptions();
  opt.groups = 2;
  opt.top_level_groups = 8;
  EXPECT_FALSE(GenerateEnterpriseHierarchy(opt, rng).ok());
  opt = SmallOptions();
  opt.individuals = 0;
  EXPECT_FALSE(GenerateEnterpriseHierarchy(opt, rng).ok());
  opt = SmallOptions();
  opt.max_group_depth = 0;
  EXPECT_FALSE(GenerateEnterpriseHierarchy(opt, rng).ok());
}

TEST(EnterpriseTest, StatsReflectShape) {
  Random rng(5);
  auto dag = GenerateEnterpriseHierarchy(SmallOptions(), rng);
  ASSERT_TRUE(dag.ok());
  const EnterpriseStats stats = ComputeEnterpriseStats(*dag);
  EXPECT_EQ(stats.nodes, dag->node_count());
  EXPECT_EQ(stats.edges, dag->edge_count());
  EXPECT_EQ(stats.sinks, dag->Sinks().size());
  EXPECT_EQ(stats.roots, dag->Roots().size());
  EXPECT_GE(stats.min_sink_depth, 1u);
  EXPECT_LE(stats.max_sink_depth, 7u);  // max_group_depth + 1.
  EXPECT_GE(stats.max_sink_depth, stats.min_sink_depth);
}

// The Livelink-scale defaults must reproduce the published shape:
// >8000 nodes, ~22,000 edges, 1582 sinks, depths within 1..11.
TEST(EnterpriseTest, DefaultsMatchPublishedLivelinkShape) {
  Random rng(6);
  auto dag = GenerateEnterpriseHierarchy({}, rng);
  ASSERT_TRUE(dag.ok());
  EXPECT_GT(dag->node_count(), 8000u);
  EXPECT_NEAR(static_cast<double>(dag->edge_count()), 22000.0, 300.0);
  EXPECT_GE(dag->Sinks().size(), 1582u);

  const EnterpriseStats stats = ComputeEnterpriseStats(*dag);
  EXPECT_GE(stats.min_sink_depth, 1u);
  EXPECT_LE(stats.max_sink_depth, 11u);
  EXPECT_GE(stats.max_sink_depth, 8u) << "deep nesting should occur";
}

}  // namespace
}  // namespace ucr::workload
