// Exact validation of the paper's §3.3 cost accounting. The paper
// bounds Propagate() by O(n + d) with d = total length of all paths
// from every source to the subject. The literal queue actually creates
// one tuple per *distinct path prefix*, which equals d only when the
// descent below each source is tree-shaped and is strictly smaller
// when full paths share prefixes — so the tests pin the exact
// prefix-count oracle and the paper's bound.

#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "acm/mode.h"
#include "core/propagate.h"
#include "graph/ancestor_subgraph.h"
#include "graph/generators.h"
#include "util/random.h"

namespace ucr::core {
namespace {

using acm::Mode;
using graph::AncestorSubgraph;
using graph::LocalId;

using Labels = std::vector<std::optional<Mode>>;

struct CostBreakdown {
  uint64_t seeds = 0;
  uint64_t prefixes = 0;  // Distinct nonempty paths from every source.
  uint64_t d = 0;         // Paper metric: total full-path length.
};

/// Counts every distinct nonempty path starting at `v` (each is one
/// tuple move of the literal engine). Exponential; small graphs only.
uint64_t CountPathPrefixes(const AncestorSubgraph& sub, LocalId v) {
  uint64_t count = 0;
  for (LocalId c : sub.children(v)) {
    count += 1 + CountPathPrefixes(sub, c);
  }
  return count;
}

CostBreakdown ExpectedCost(const AncestorSubgraph& sub,
                           const Labels& labels) {
  CostBreakdown cost;
  for (LocalId v = 0; v < sub.member_count(); ++v) {
    const bool seeded = labels[sub.global_id(v)].has_value() ||
                        sub.parents(v).empty();
    if (!seeded) continue;
    ++cost.seeds;
    cost.prefixes += CountPathPrefixes(sub, v);
    cost.d += sub.total_path_length(v);
  }
  return cost;
}

Labels RandomLabels(const graph::Dag& dag, double rate, Random& rng) {
  Labels labels(dag.node_count());
  for (size_t v = 0; v < dag.node_count(); ++v) {
    if (rng.Bernoulli(rate)) {
      labels[v] = rng.Bernoulli(0.5) ? Mode::kPositive : Mode::kNegative;
    }
  }
  return labels;
}

TEST(CostModelTest, LiteralWorkEqualsSeedsPlusPrefixesOnRandomGraphs) {
  Random rng(1212);
  for (int trial = 0; trial < 30; ++trial) {
    graph::LayeredDagOptions opt;
    opt.layers = 2 + static_cast<size_t>(rng.Uniform(4));
    opt.nodes_per_layer = 2 + static_cast<size_t>(rng.Uniform(6));
    opt.skip_edge_probability = 0.2;
    auto dag = graph::GenerateLayeredDag(opt, rng);
    ASSERT_TRUE(dag.ok());
    const Labels labels = RandomLabels(*dag, 0.25, rng);
    for (graph::NodeId sink : dag->Sinks()) {
      const AncestorSubgraph sub(*dag, sink);
      const CostBreakdown expected = ExpectedCost(sub, labels);
      PropagateStats stats;
      ASSERT_TRUE(PropagateLiteral(sub, labels, {}, &stats).ok());
      EXPECT_EQ(stats.tuples_processed, expected.seeds + expected.prefixes)
          << "trial " << trial << " sink " << dag->name(sink);
      // The paper's O(n + d) bound holds with room to spare.
      EXPECT_LE(stats.tuples_processed, expected.seeds + expected.d)
          << "trial " << trial << " sink " << dag->name(sink);
    }
  }
}

TEST(CostModelTest, LiteralWorkOnTreesEqualsThePaperMetricExactly) {
  // On trees every full path has unshared prefixes below the source,
  // so the prefix count *equals* d and the paper's accounting is
  // tight.
  Random rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    auto dag = graph::GenerateRandomTree(40, rng);
    ASSERT_TRUE(dag.ok());
    const Labels labels = RandomLabels(*dag, 0.3, rng);
    for (graph::NodeId sink : dag->Sinks()) {
      const AncestorSubgraph sub(*dag, sink);
      const CostBreakdown expected = ExpectedCost(sub, labels);
      EXPECT_EQ(expected.prefixes, expected.d) << "tree property";
      PropagateStats stats;
      ASSERT_TRUE(PropagateLiteral(sub, labels, {}, &stats).ok());
      EXPECT_EQ(stats.tuples_processed, expected.seeds + expected.d);
    }
  }
}

TEST(CostModelTest, PrefixSharingMakesLiteralCheaperThanDOnKDags) {
  // On a complete DAG full paths share prefixes heavily: the engine's
  // work sits well under the published bound.
  Random rng(78);
  auto dag = graph::GenerateKDag(12, rng);
  ASSERT_TRUE(dag.ok());
  const AncestorSubgraph sub(*dag, static_cast<graph::NodeId>(11));
  Labels labels(12);
  labels[0] = Mode::kPositive;
  const CostBreakdown expected = ExpectedCost(sub, labels);
  PropagateStats stats;
  ASSERT_TRUE(PropagateLiteral(sub, labels, {}, &stats).ok());
  EXPECT_EQ(stats.tuples_processed, expected.seeds + expected.prefixes);
  EXPECT_LT(stats.tuples_processed * 2, expected.seeds + expected.d)
      << "sharing should save at least half on KDAG(12)";
}

TEST(CostModelTest, MaxDistanceEqualsDeepestContributingPath) {
  Random rng(88);
  for (int trial = 0; trial < 20; ++trial) {
    auto dag = graph::GenerateLayeredDag(
        {.layers = 4, .nodes_per_layer = 4, .skip_edge_probability = 0.2},
        rng);
    ASSERT_TRUE(dag.ok());
    const Labels labels = RandomLabels(*dag, 0.3, rng);
    const graph::NodeId sink = dag->Sinks().front();
    const AncestorSubgraph sub(*dag, sink);
    uint32_t deepest = 0;
    for (LocalId v = 0; v < sub.member_count(); ++v) {
      if (labels[sub.global_id(v)].has_value() || sub.parents(v).empty()) {
        deepest = std::max(deepest, sub.longest_distance_to_sink(v));
      }
    }
    PropagateStats stats;
    ASSERT_TRUE(PropagateLiteral(sub, labels, {}, &stats).ok());
    EXPECT_EQ(stats.max_distance, deepest) << "trial " << trial;
  }
}

TEST(CostModelTest, AggregatedWorkIsPolynomialWhereLiteralExplodes) {
  // The same query on a diamond stack: literal work doubles per
  // diamond; aggregated group-work grows linearly. This is the
  // quantitative heart of the engine split.
  Labels empty;
  uint64_t previous_literal = 0;
  uint64_t previous_groups = 0;
  for (size_t k : {size_t{8}, size_t{10}, size_t{12}}) {
    auto dag = graph::GenerateDiamondStack(k);
    ASSERT_TRUE(dag.ok());
    Labels labels(dag->node_count());
    labels[dag->FindNode("D0t")] = Mode::kPositive;
    const AncestorSubgraph sub(*dag, dag->FindNode("Dsink"));

    PropagateStats literal;
    ASSERT_TRUE(PropagateLiteral(sub, labels, {}, &literal).ok());
    PropagateStats aggregated;
    PropagateAggregated(sub, labels, {}, &aggregated);

    if (previous_literal > 0) {
      EXPECT_GT(literal.tuples_processed, previous_literal * 3)
          << "literal work ~quadruples per +2 diamonds";
      EXPECT_LT(aggregated.tuples_processed, previous_groups * 2)
          << "aggregated work grows gently";
    }
    previous_literal = literal.tuples_processed;
    previous_groups = aggregated.tuples_processed;
  }
}

}  // namespace
}  // namespace ucr::core
