#!/usr/bin/env python3
"""Compare committed BENCH_*.json results against the previous commit.

Each BENCH_*.json file is JSON-lines: one object per benchmark section
with at least {"bench", "section"} and either "qps", "p99_ns", or both,
plus optionally "fast_path" and "threads" (the identity key) and
"allocs_per_query". This script reads the working-tree files, pulls the
same files from a baseline git revision (HEAD~1 by default, i.e. the
previous commit), matches rows by identity key, and reports the qps
delta per row.

Rows that also carry "p99_ns" (latency benches such as read_churn) are
additionally gated on tail latency: a p99 *rise* beyond --threshold is
a regression even when throughput held — a latency bench whose p99
doubles at constant qps is exactly the failure the epoch read path
exists to prevent. Latency-only rows (p50_ns/p99_ns with no qps, e.g.
reach_scale's per-query percentiles) are trended on that gate alone.

Exit codes:
  0  no regression (or nothing to compare)
  1  at least one row regressed by more than --threshold (default 10%)
  2  usage / environment error

Rows present on only one side are reported but never fail the run: new
benchmarks appear and old ones retire as the repo grows. Stdlib only.
"""

import argparse
import glob
import json
import os
import subprocess
import sys


def parse_json_lines(text, origin):
    """Yields (key, row) for every parsable JSON-lines row in `text`."""
    rows = {}
    for line_no, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or not line.startswith("{"):
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError as error:
            print(f"warning: {origin}:{line_no}: unparsable line ({error})",
                  file=sys.stderr)
            continue
        if ("qps" not in row and "p99_ns" not in row
                and row.get("section") not in ("timeseries_summary",
                                               "profiler_summary",
                                               "durability_summary")):
            continue  # Metrics snapshots etc. ride along; skip them.
        if row.get("section") == "profiler_summary":
            # Continuous-profiling summary (bench/hotpath.cc): gated on
            # its own terms below — the overhead budget is hard.
            try:
                row["overhead_pct"] = float(row.get("overhead_pct", 0))
            except (TypeError, ValueError):
                row["overhead_pct"] = 0.0
            key = (
                row.get("bench", os.path.basename(origin)),
                "profiler_summary",
                False,
                1,
            )
            rows[key] = row
            continue
        if row.get("section") == "durability_summary":
            # Durable-store summary (bench/durability.cc): gated on its
            # own absolute budgets below — WAL-append overhead on the
            # churn workload and the mmap'd cold-start bound.
            for field in ("wal_overhead_pct", "durable_overhead_pct",
                          "cold_start_millis"):
                try:
                    row[field] = float(row.get(field, 0))
                except (TypeError, ValueError):
                    row[field] = 0.0
            key = (
                row.get("bench", os.path.basename(origin)),
                "durability_summary",
                False,
                1,
            )
            rows[key] = row
            continue
        if row.get("section") == "timeseries_summary":
            # Telemetry-timeline summary (bench/bench_obs.h): trended on
            # its own terms below — scrape cost with log2-bucket slack,
            # plus a hard health gate.
            try:
                row["scrape_p99_ns"] = float(row.get("scrape_p99_ns", 0))
            except (TypeError, ValueError):
                row["scrape_p99_ns"] = 0.0
            key = (
                row.get("bench", os.path.basename(origin)),
                "timeseries_summary",
                False,
                1,
            )
            rows[key] = row
            continue
        if "qps" in row:
            try:
                row["qps"] = float(row["qps"])
            except (TypeError, ValueError):
                print(f"warning: {origin}:{line_no}: non-numeric qps "
                      f"({row['qps']!r}) — dropped", file=sys.stderr)
                del row["qps"]  # May still trend as latency-only.
        if "p99_ns" in row:
            try:
                row["p99_ns"] = float(row["p99_ns"])
            except (TypeError, ValueError):
                del row["p99_ns"]  # Gate only what parses.
        if "qps" not in row and "p99_ns" not in row:
            continue  # Nothing numeric survived.
        key = (
            row.get("bench", os.path.basename(origin)),
            row.get("section", "?"),
            bool(row.get("fast_path", False)),
            int(row.get("threads", 1)),
        )
        rows[key] = row
    return rows


def baseline_file(rev, path):
    """Returns the file's content at `rev`, or None if it is absent."""
    result = subprocess.run(
        ["git", "show", f"{rev}:{path}"],
        capture_output=True,
        text=True,
        check=False,
    )
    return result.stdout if result.returncode == 0 else None


def revision_exists(rev):
    """True when `rev` resolves to a commit in this repository."""
    result = subprocess.run(
        ["git", "rev-parse", "--verify", "--quiet", f"{rev}^{{commit}}"],
        capture_output=True,
        text=True,
        check=False,
    )
    return result.returncode == 0


def describe(key):
    bench, section, fast_path, threads = key
    engine = "fast" if fast_path else "classic"
    return f"{bench}/{section} [{engine} @{threads}t]"


def main():
    parser = argparse.ArgumentParser(
        description="Fail on benchmark throughput regressions vs a "
                    "baseline commit.")
    parser.add_argument("--baseline", default="HEAD~1",
                        help="git revision to compare against "
                             "(default: HEAD~1)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="maximum tolerated qps drop in percent "
                             "(default: 10)")
    parser.add_argument("files", nargs="*",
                        help="BENCH_*.json files (default: glob the "
                             "repo root)")
    args = parser.parse_args()

    repo_root = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True, text=True, check=False)
    if repo_root.returncode != 0:
        print("error: not inside a git repository", file=sys.stderr)
        return 2
    root = repo_root.stdout.strip()

    files = args.files or sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not files:
        print("nothing to compare: no BENCH_*.json files found")
        return 0

    # A missing baseline is "no comparison", not a failure: the first
    # commit of a repo has no HEAD~1, and shallow clones may lack the
    # requested revision entirely.
    if not revision_exists(args.baseline):
        print(f"nothing to compare: baseline revision '{args.baseline}' "
              f"does not resolve to a commit (first commit or shallow "
              f"clone?)")
        return 0

    regressions = []
    compared = 0
    for path in files:
        rel = os.path.relpath(path, root)
        try:
            with open(path, encoding="utf-8") as f:
                current = parse_json_lines(f.read(), rel)
        except OSError as error:
            print(f"warning: cannot read {rel}: {error}", file=sys.stderr)
            continue
        base_text = baseline_file(args.baseline, rel)
        if base_text is None:
            print(f"{rel}: no baseline at {args.baseline} (new file?) — "
                  f"skipped")
            continue
        baseline = parse_json_lines(base_text, f"{args.baseline}:{rel}")
        if not baseline:
            # The file existed at the baseline but held no comparable
            # rows (empty, truncated, or a format the parser rejects):
            # that is "no comparison", not a sea of NEW rows.
            print(f"{rel}: baseline at {args.baseline} has no comparable "
                  f"rows — skipped")
            continue

        def headline(row):
            if row.get("section") == "profiler_summary":
                return (f"overhead {row.get('overhead_pct', 0):.2f}%, "
                        f"{row.get('samples_per_sec', 0):.0f} samples/s")
            if row.get("section") == "timeseries_summary":
                return (f"scrape p99 {row.get('scrape_p99_ns', 0):.0f} ns, "
                        f"health {row.get('health_status', '?')}")
            if row.get("section") == "durability_summary":
                return (f"WAL overhead {row.get('wal_overhead_pct', 0):.2f}%, "
                        f"cold start {row.get('cold_start_millis', 0):.0f} ms")
            if "qps" in row:
                return f"{row['qps']:.0f} qps"
            return f"p99 {row['p99_ns']:.0f} ns"

        for key in sorted(set(current) | set(baseline)):
            if key not in baseline:
                print(f"  NEW   {describe(key)}: {headline(current[key])}")
                continue
            if key not in current:
                print(f"  GONE  {describe(key)} "
                      f"(was {headline(baseline[key])})")
                continue
            # Rows measured on a degenerate host (e.g. a multi-thread
            # sweep on one granted core) are marked by the bench; a
            # delta against or from them means nothing.
            if current[key].get("skipped_scaling") or \
                    baseline[key].get("skipped_scaling"):
                print(f"  skipped    {describe(key)}: degenerate-host "
                      f"row (skipped_scaling)")
                continue
            if current[key].get("section") == "profiler_summary":
                # Continuous-profiling gate (DESIGN.md §14): phase
                # timers + the wall sampler must stay within the <=2%
                # budget. A small slack above the documented budget
                # absorbs run-to-run scheduler noise on loaded CI
                # hosts; the budget itself is asserted by the bench on
                # quiet hardware.
                compared += 1
                overhead = current[key].get("overhead_pct", 0.0)
                marker = "ok"
                if overhead > 4.0:
                    marker = "REGRESSION"
                    regressions.append((key, 0, overhead, overhead,
                                        "% profiler overhead"))
                print(f"  {marker:<10} {describe(key)}: overhead "
                      f"{overhead:.2f}%, "
                      f"{current[key].get('samples_per_sec', 0):.0f} "
                      f"samples/s, dropped "
                      f"{current[key].get('dropped_total', '?')}, "
                      f"top {current[key].get('top_phases', '?')!r}")
                continue
            if current[key].get("section") == "durability_summary":
                # Durable-store gate (DESIGN.md §15). Two absolute
                # budgets, both hard: the relaxed WAL append must cost
                # <=5% of churn-workload throughput (the fsync-bound
                # durable row is reported but priced by the device, not
                # the code, so it is not gated here), and the mmap'd
                # cold start of the million-subject snapshot must answer
                # its first query inside five seconds.
                compared += 1
                overhead = current[key].get("wal_overhead_pct", 0.0)
                cold = current[key].get("cold_start_millis", 0.0)
                marker = "ok"
                if overhead > 5.0:
                    marker = "REGRESSION"
                    regressions.append((key, 0, overhead, overhead,
                                        "% WAL-append overhead"))
                if cold >= 5000.0:
                    marker = "REGRESSION"
                    regressions.append((key, 0, cold, cold,
                                        "ms cold start"))
                print(f"  {marker:<10} {describe(key)}: WAL append "
                      f"{overhead:+.2f}%, durable "
                      f"{current[key].get('durable_overhead_pct', 0):+.2f}%, "
                      f"cold start {cold:.0f} ms for "
                      f"{current[key].get('cold_start_subjects', '?')} "
                      f"subjects")
                continue
            if current[key].get("section") == "timeseries_summary":
                # Telemetry-timeline gate. The health verdict is hard:
                # a bench run must end healthy (the perturbed-oracle
                # path is test-only). The scrape cost is trended with
                # log2-bucket slack — the p99 comes from power-of-two
                # histogram buckets, so anything under a two-bucket
                # (4x) growth is bucket noise, not a regression.
                compared += 1
                status = current[key].get("health_status", "?")
                old_scrape = baseline[key].get("scrape_p99_ns", 0.0)
                new_scrape = current[key].get("scrape_p99_ns", 0.0)
                marker = "ok"
                if status != "ok":
                    marker = "REGRESSION"
                    regressions.append((key, 0, 0, 0.0,
                                        f"health={status}"))
                elif old_scrape > 0 and new_scrape > 4 * old_scrape:
                    marker = "REGRESSION"
                    delta = 100.0 * (new_scrape - old_scrape) / old_scrape
                    regressions.append((key, old_scrape, new_scrape,
                                        delta, "ns scrape p99"))
                print(f"  {marker:<10} {describe(key)}: scrape p99 "
                      f"{old_scrape:.0f} -> {new_scrape:.0f} ns, "
                      f"health {status}, "
                      f"ticks {current[key].get('sampler_ticks', '?')}, "
                      f"exemplars {current[key].get('exemplars', '?')}")
                continue
            old = baseline[key].get("qps")
            new = current[key].get("qps")
            if old is not None and new is not None and old > 0:
                compared += 1
                delta = 100.0 * (new - old) / old
                marker = "ok"
                if delta < -args.threshold:
                    marker = "REGRESSION"
                    regressions.append((key, old, new, delta, "qps"))
                print(f"  {marker:<10} {describe(key)}: {old:.0f} -> "
                      f"{new:.0f} qps ({delta:+.1f}%)")
            # Tail-latency gate: only for rows measured on both sides.
            # Latency-only rows (no qps) are trended solely by this.
            old_p99 = baseline[key].get("p99_ns")
            new_p99 = current[key].get("p99_ns")
            if old_p99 and new_p99 and old_p99 > 0:
                if old is None or new is None:
                    compared += 1
                p99_delta = 100.0 * (new_p99 - old_p99) / old_p99
                p99_marker = "ok"
                if p99_delta > args.threshold:
                    p99_marker = "REGRESSION"
                    regressions.append(
                        (key, old_p99, new_p99, p99_delta, "ns p99"))
                print(f"  {p99_marker:<10} {describe(key)}: p99 "
                      f"{old_p99:.0f} -> {new_p99:.0f} ns "
                      f"({p99_delta:+.1f}%)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0f}%:")
        for key, old, new, delta, unit in regressions:
            print(f"  {describe(key)}: {old:.0f} -> {new:.0f} {unit} "
                  f"({delta:+.1f}%)")
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}% "
          f"({compared} row(s) compared against {args.baseline})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
