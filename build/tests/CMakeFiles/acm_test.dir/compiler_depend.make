# Empty compiler generated dependencies file for acm_test.
# This may be replaced when dependencies are built.
