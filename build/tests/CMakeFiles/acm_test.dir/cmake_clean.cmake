file(REMOVE_RECURSE
  "CMakeFiles/acm_test.dir/acm_test.cc.o"
  "CMakeFiles/acm_test.dir/acm_test.cc.o.d"
  "acm_test"
  "acm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
