
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/cost_model_test.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/cost_model_test.dir/cost_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ucr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ucr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/relalg/CMakeFiles/ucr_relalg.dir/DependInfo.cmake"
  "/root/repo/build/src/acm/CMakeFiles/ucr_acm.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ucr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ucr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
