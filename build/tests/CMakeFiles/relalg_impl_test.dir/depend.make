# Empty dependencies file for relalg_impl_test.
# This may be replaced when dependencies are built.
