file(REMOVE_RECURSE
  "CMakeFiles/relalg_impl_test.dir/relalg_impl_test.cc.o"
  "CMakeFiles/relalg_impl_test.dir/relalg_impl_test.cc.o.d"
  "relalg_impl_test"
  "relalg_impl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relalg_impl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
