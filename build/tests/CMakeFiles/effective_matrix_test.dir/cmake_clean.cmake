file(REMOVE_RECURSE
  "CMakeFiles/effective_matrix_test.dir/effective_matrix_test.cc.o"
  "CMakeFiles/effective_matrix_test.dir/effective_matrix_test.cc.o.d"
  "effective_matrix_test"
  "effective_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/effective_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
