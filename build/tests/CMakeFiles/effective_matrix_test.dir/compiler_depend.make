# Empty compiler generated dependencies file for effective_matrix_test.
# This may be replaced when dependencies are built.
