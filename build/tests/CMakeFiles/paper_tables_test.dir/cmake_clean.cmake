file(REMOVE_RECURSE
  "CMakeFiles/paper_tables_test.dir/paper_tables_test.cc.o"
  "CMakeFiles/paper_tables_test.dir/paper_tables_test.cc.o.d"
  "paper_tables_test"
  "paper_tables_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
