file(REMOVE_RECURSE
  "CMakeFiles/relalg_fuzz_test.dir/relalg_fuzz_test.cc.o"
  "CMakeFiles/relalg_fuzz_test.dir/relalg_fuzz_test.cc.o.d"
  "relalg_fuzz_test"
  "relalg_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relalg_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
