# Empty dependencies file for weak_strong_test.
# This may be replaced when dependencies are built.
