file(REMOVE_RECURSE
  "CMakeFiles/weak_strong_test.dir/weak_strong_test.cc.o"
  "CMakeFiles/weak_strong_test.dir/weak_strong_test.cc.o.d"
  "weak_strong_test"
  "weak_strong_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_strong_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
