# Empty dependencies file for propagation_strategy_matrix_test.
# This may be replaced when dependencies are built.
