file(REMOVE_RECURSE
  "CMakeFiles/propagation_strategy_matrix_test.dir/propagation_strategy_matrix_test.cc.o"
  "CMakeFiles/propagation_strategy_matrix_test.dir/propagation_strategy_matrix_test.cc.o.d"
  "propagation_strategy_matrix_test"
  "propagation_strategy_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propagation_strategy_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
