file(REMOVE_RECURSE
  "CMakeFiles/enterprise_scale_test.dir/enterprise_scale_test.cc.o"
  "CMakeFiles/enterprise_scale_test.dir/enterprise_scale_test.cc.o.d"
  "enterprise_scale_test"
  "enterprise_scale_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_scale_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
