# Empty compiler generated dependencies file for ancestor_subgraph_test.
# This may be replaced when dependencies are built.
