file(REMOVE_RECURSE
  "CMakeFiles/ancestor_subgraph_test.dir/ancestor_subgraph_test.cc.o"
  "CMakeFiles/ancestor_subgraph_test.dir/ancestor_subgraph_test.cc.o.d"
  "ancestor_subgraph_test"
  "ancestor_subgraph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ancestor_subgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
