file(REMOVE_RECURSE
  "CMakeFiles/query_stream_test.dir/query_stream_test.cc.o"
  "CMakeFiles/query_stream_test.dir/query_stream_test.cc.o.d"
  "query_stream_test"
  "query_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
