file(REMOVE_RECURSE
  "CMakeFiles/rights_bag_test.dir/rights_bag_test.cc.o"
  "CMakeFiles/rights_bag_test.dir/rights_bag_test.cc.o.d"
  "rights_bag_test"
  "rights_bag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rights_bag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
