# Empty dependencies file for rights_bag_test.
# This may be replaced when dependencies are built.
