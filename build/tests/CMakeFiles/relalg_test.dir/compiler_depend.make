# Empty compiler generated dependencies file for relalg_test.
# This may be replaced when dependencies are built.
