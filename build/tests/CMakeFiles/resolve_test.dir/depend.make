# Empty dependencies file for resolve_test.
# This may be replaced when dependencies are built.
