file(REMOVE_RECURSE
  "CMakeFiles/enterprise_test.dir/enterprise_test.cc.o"
  "CMakeFiles/enterprise_test.dir/enterprise_test.cc.o.d"
  "enterprise_test"
  "enterprise_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
