# Empty compiler generated dependencies file for loader_fuzz_test.
# This may be replaced when dependencies are built.
