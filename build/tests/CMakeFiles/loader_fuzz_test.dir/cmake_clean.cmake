file(REMOVE_RECURSE
  "CMakeFiles/loader_fuzz_test.dir/loader_fuzz_test.cc.o"
  "CMakeFiles/loader_fuzz_test.dir/loader_fuzz_test.cc.o.d"
  "loader_fuzz_test"
  "loader_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loader_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
