file(REMOVE_RECURSE
  "CMakeFiles/repro_tables.dir/repro_tables.cc.o"
  "CMakeFiles/repro_tables.dir/repro_tables.cc.o.d"
  "repro_tables"
  "repro_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
