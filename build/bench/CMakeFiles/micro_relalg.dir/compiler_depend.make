# Empty compiler generated dependencies file for micro_relalg.
# This may be replaced when dependencies are built.
