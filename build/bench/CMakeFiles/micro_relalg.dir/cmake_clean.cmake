file(REMOVE_RECURSE
  "CMakeFiles/micro_relalg.dir/micro_relalg.cc.o"
  "CMakeFiles/micro_relalg.dir/micro_relalg.cc.o.d"
  "micro_relalg"
  "micro_relalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_relalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
