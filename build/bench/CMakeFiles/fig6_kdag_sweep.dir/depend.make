# Empty dependencies file for fig6_kdag_sweep.
# This may be replaced when dependencies are built.
