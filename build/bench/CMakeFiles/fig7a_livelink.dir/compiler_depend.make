# Empty compiler generated dependencies file for fig7a_livelink.
# This may be replaced when dependencies are built.
