file(REMOVE_RECURSE
  "CMakeFiles/fig7a_livelink.dir/fig7a_livelink.cc.o"
  "CMakeFiles/fig7a_livelink.dir/fig7a_livelink.cc.o.d"
  "fig7a_livelink"
  "fig7a_livelink.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_livelink.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
