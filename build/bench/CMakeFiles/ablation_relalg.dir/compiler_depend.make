# Empty compiler generated dependencies file for ablation_relalg.
# This may be replaced when dependencies are built.
