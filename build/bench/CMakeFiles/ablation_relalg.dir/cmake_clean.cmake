file(REMOVE_RECURSE
  "CMakeFiles/ablation_relalg.dir/ablation_relalg.cc.o"
  "CMakeFiles/ablation_relalg.dir/ablation_relalg.cc.o.d"
  "ablation_relalg"
  "ablation_relalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_relalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
