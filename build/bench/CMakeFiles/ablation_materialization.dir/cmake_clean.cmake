file(REMOVE_RECURSE
  "CMakeFiles/ablation_materialization.dir/ablation_materialization.cc.o"
  "CMakeFiles/ablation_materialization.dir/ablation_materialization.cc.o.d"
  "ablation_materialization"
  "ablation_materialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_materialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
