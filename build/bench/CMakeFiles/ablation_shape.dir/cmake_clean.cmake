file(REMOVE_RECURSE
  "CMakeFiles/ablation_shape.dir/ablation_shape.cc.o"
  "CMakeFiles/ablation_shape.dir/ablation_shape.cc.o.d"
  "ablation_shape"
  "ablation_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
