file(REMOVE_RECURSE
  "CMakeFiles/fig7b_paths_vs_nodes.dir/fig7b_paths_vs_nodes.cc.o"
  "CMakeFiles/fig7b_paths_vs_nodes.dir/fig7b_paths_vs_nodes.cc.o.d"
  "fig7b_paths_vs_nodes"
  "fig7b_paths_vs_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_paths_vs_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
