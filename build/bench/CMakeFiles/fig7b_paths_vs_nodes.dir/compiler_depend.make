# Empty compiler generated dependencies file for fig7b_paths_vs_nodes.
# This may be replaced when dependencies are built.
