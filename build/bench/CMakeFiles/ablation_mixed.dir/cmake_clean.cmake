file(REMOVE_RECURSE
  "CMakeFiles/ablation_mixed.dir/ablation_mixed.cc.o"
  "CMakeFiles/ablation_mixed.dir/ablation_mixed.cc.o.d"
  "ablation_mixed"
  "ablation_mixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
