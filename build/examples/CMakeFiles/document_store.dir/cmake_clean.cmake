file(REMOVE_RECURSE
  "CMakeFiles/document_store.dir/document_store.cpp.o"
  "CMakeFiles/document_store.dir/document_store.cpp.o.d"
  "document_store"
  "document_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
