file(REMOVE_RECURSE
  "CMakeFiles/enterprise_audit.dir/enterprise_audit.cpp.o"
  "CMakeFiles/enterprise_audit.dir/enterprise_audit.cpp.o.d"
  "enterprise_audit"
  "enterprise_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
