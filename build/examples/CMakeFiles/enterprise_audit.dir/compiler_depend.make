# Empty compiler generated dependencies file for enterprise_audit.
# This may be replaced when dependencies are built.
