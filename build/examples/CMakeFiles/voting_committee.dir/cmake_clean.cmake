file(REMOVE_RECURSE
  "CMakeFiles/voting_committee.dir/voting_committee.cpp.o"
  "CMakeFiles/voting_committee.dir/voting_committee.cpp.o.d"
  "voting_committee"
  "voting_committee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voting_committee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
