# Empty dependencies file for voting_committee.
# This may be replaced when dependencies are built.
