file(REMOVE_RECURSE
  "CMakeFiles/ucr_admin.dir/ucr_admin.cpp.o"
  "CMakeFiles/ucr_admin.dir/ucr_admin.cpp.o.d"
  "ucr_admin"
  "ucr_admin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucr_admin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
