# Empty dependencies file for ucr_admin.
# This may be replaced when dependencies are built.
