file(REMOVE_RECURSE
  "CMakeFiles/sod_auditor.dir/sod_auditor.cpp.o"
  "CMakeFiles/sod_auditor.dir/sod_auditor.cpp.o.d"
  "sod_auditor"
  "sod_auditor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sod_auditor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
