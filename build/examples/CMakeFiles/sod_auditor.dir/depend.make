# Empty dependencies file for sod_auditor.
# This may be replaced when dependencies are built.
