file(REMOVE_RECURSE
  "CMakeFiles/ucr_acm.dir/acm.cc.o"
  "CMakeFiles/ucr_acm.dir/acm.cc.o.d"
  "CMakeFiles/ucr_acm.dir/assignment.cc.o"
  "CMakeFiles/ucr_acm.dir/assignment.cc.o.d"
  "libucr_acm.a"
  "libucr_acm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucr_acm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
