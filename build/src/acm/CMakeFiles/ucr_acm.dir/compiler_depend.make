# Empty compiler generated dependencies file for ucr_acm.
# This may be replaced when dependencies are built.
