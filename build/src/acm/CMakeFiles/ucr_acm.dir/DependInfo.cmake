
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acm/acm.cc" "src/acm/CMakeFiles/ucr_acm.dir/acm.cc.o" "gcc" "src/acm/CMakeFiles/ucr_acm.dir/acm.cc.o.d"
  "/root/repo/src/acm/assignment.cc" "src/acm/CMakeFiles/ucr_acm.dir/assignment.cc.o" "gcc" "src/acm/CMakeFiles/ucr_acm.dir/assignment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ucr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ucr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
