file(REMOVE_RECURSE
  "libucr_acm.a"
)
