file(REMOVE_RECURSE
  "libucr_util.a"
)
