file(REMOVE_RECURSE
  "CMakeFiles/ucr_util.dir/random.cc.o"
  "CMakeFiles/ucr_util.dir/random.cc.o.d"
  "CMakeFiles/ucr_util.dir/stats.cc.o"
  "CMakeFiles/ucr_util.dir/stats.cc.o.d"
  "CMakeFiles/ucr_util.dir/status.cc.o"
  "CMakeFiles/ucr_util.dir/status.cc.o.d"
  "CMakeFiles/ucr_util.dir/stopwatch.cc.o"
  "CMakeFiles/ucr_util.dir/stopwatch.cc.o.d"
  "CMakeFiles/ucr_util.dir/string_util.cc.o"
  "CMakeFiles/ucr_util.dir/string_util.cc.o.d"
  "CMakeFiles/ucr_util.dir/table_printer.cc.o"
  "CMakeFiles/ucr_util.dir/table_printer.cc.o.d"
  "libucr_util.a"
  "libucr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
