# Empty compiler generated dependencies file for ucr_util.
# This may be replaced when dependencies are built.
