file(REMOVE_RECURSE
  "CMakeFiles/ucr_relalg.dir/operators.cc.o"
  "CMakeFiles/ucr_relalg.dir/operators.cc.o.d"
  "CMakeFiles/ucr_relalg.dir/relation.cc.o"
  "CMakeFiles/ucr_relalg.dir/relation.cc.o.d"
  "CMakeFiles/ucr_relalg.dir/value.cc.o"
  "CMakeFiles/ucr_relalg.dir/value.cc.o.d"
  "libucr_relalg.a"
  "libucr_relalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucr_relalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
