file(REMOVE_RECURSE
  "libucr_relalg.a"
)
