
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relalg/operators.cc" "src/relalg/CMakeFiles/ucr_relalg.dir/operators.cc.o" "gcc" "src/relalg/CMakeFiles/ucr_relalg.dir/operators.cc.o.d"
  "/root/repo/src/relalg/relation.cc" "src/relalg/CMakeFiles/ucr_relalg.dir/relation.cc.o" "gcc" "src/relalg/CMakeFiles/ucr_relalg.dir/relation.cc.o.d"
  "/root/repo/src/relalg/value.cc" "src/relalg/CMakeFiles/ucr_relalg.dir/value.cc.o" "gcc" "src/relalg/CMakeFiles/ucr_relalg.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ucr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
