# Empty compiler generated dependencies file for ucr_relalg.
# This may be replaced when dependencies are built.
