# Empty dependencies file for ucr_core.
# This may be replaced when dependencies are built.
