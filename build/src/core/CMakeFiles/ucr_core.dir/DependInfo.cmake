
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit.cc" "src/core/CMakeFiles/ucr_core.dir/audit.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/audit.cc.o.d"
  "/root/repo/src/core/cache.cc" "src/core/CMakeFiles/ucr_core.dir/cache.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/cache.cc.o.d"
  "/root/repo/src/core/constraints.cc" "src/core/CMakeFiles/ucr_core.dir/constraints.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/constraints.cc.o.d"
  "/root/repo/src/core/dominance.cc" "src/core/CMakeFiles/ucr_core.dir/dominance.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/dominance.cc.o.d"
  "/root/repo/src/core/effective_matrix.cc" "src/core/CMakeFiles/ucr_core.dir/effective_matrix.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/effective_matrix.cc.o.d"
  "/root/repo/src/core/explain.cc" "src/core/CMakeFiles/ucr_core.dir/explain.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/explain.cc.o.d"
  "/root/repo/src/core/mixed.cc" "src/core/CMakeFiles/ucr_core.dir/mixed.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/mixed.cc.o.d"
  "/root/repo/src/core/mixed_system.cc" "src/core/CMakeFiles/ucr_core.dir/mixed_system.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/mixed_system.cc.o.d"
  "/root/repo/src/core/paper_example.cc" "src/core/CMakeFiles/ucr_core.dir/paper_example.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/paper_example.cc.o.d"
  "/root/repo/src/core/propagate.cc" "src/core/CMakeFiles/ucr_core.dir/propagate.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/propagate.cc.o.d"
  "/root/repo/src/core/relalg_impl.cc" "src/core/CMakeFiles/ucr_core.dir/relalg_impl.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/relalg_impl.cc.o.d"
  "/root/repo/src/core/resolve.cc" "src/core/CMakeFiles/ucr_core.dir/resolve.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/resolve.cc.o.d"
  "/root/repo/src/core/rights_bag.cc" "src/core/CMakeFiles/ucr_core.dir/rights_bag.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/rights_bag.cc.o.d"
  "/root/repo/src/core/storage.cc" "src/core/CMakeFiles/ucr_core.dir/storage.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/storage.cc.o.d"
  "/root/repo/src/core/strategy.cc" "src/core/CMakeFiles/ucr_core.dir/strategy.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/strategy.cc.o.d"
  "/root/repo/src/core/system.cc" "src/core/CMakeFiles/ucr_core.dir/system.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/system.cc.o.d"
  "/root/repo/src/core/weak_strong.cc" "src/core/CMakeFiles/ucr_core.dir/weak_strong.cc.o" "gcc" "src/core/CMakeFiles/ucr_core.dir/weak_strong.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ucr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ucr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/acm/CMakeFiles/ucr_acm.dir/DependInfo.cmake"
  "/root/repo/build/src/relalg/CMakeFiles/ucr_relalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
