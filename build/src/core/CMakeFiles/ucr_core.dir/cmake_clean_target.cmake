file(REMOVE_RECURSE
  "libucr_core.a"
)
