file(REMOVE_RECURSE
  "libucr_graph.a"
)
