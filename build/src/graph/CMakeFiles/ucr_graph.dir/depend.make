# Empty dependencies file for ucr_graph.
# This may be replaced when dependencies are built.
