file(REMOVE_RECURSE
  "CMakeFiles/ucr_graph.dir/ancestor_subgraph.cc.o"
  "CMakeFiles/ucr_graph.dir/ancestor_subgraph.cc.o.d"
  "CMakeFiles/ucr_graph.dir/dag.cc.o"
  "CMakeFiles/ucr_graph.dir/dag.cc.o.d"
  "CMakeFiles/ucr_graph.dir/generators.cc.o"
  "CMakeFiles/ucr_graph.dir/generators.cc.o.d"
  "CMakeFiles/ucr_graph.dir/io.cc.o"
  "CMakeFiles/ucr_graph.dir/io.cc.o.d"
  "libucr_graph.a"
  "libucr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
