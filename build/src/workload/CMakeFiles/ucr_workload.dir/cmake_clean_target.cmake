file(REMOVE_RECURSE
  "libucr_workload.a"
)
