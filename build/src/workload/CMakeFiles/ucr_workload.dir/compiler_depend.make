# Empty compiler generated dependencies file for ucr_workload.
# This may be replaced when dependencies are built.
