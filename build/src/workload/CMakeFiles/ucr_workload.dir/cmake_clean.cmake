file(REMOVE_RECURSE
  "CMakeFiles/ucr_workload.dir/enterprise.cc.o"
  "CMakeFiles/ucr_workload.dir/enterprise.cc.o.d"
  "CMakeFiles/ucr_workload.dir/experiments.cc.o"
  "CMakeFiles/ucr_workload.dir/experiments.cc.o.d"
  "CMakeFiles/ucr_workload.dir/query_stream.cc.o"
  "CMakeFiles/ucr_workload.dir/query_stream.cc.o.d"
  "libucr_workload.a"
  "libucr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
