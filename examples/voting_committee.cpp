// Voting committee: the paper's majority-policy scenario (§2.1, the
// GATT example) modeled directly.
//
// An applicant seeks admission to a trade organization. Each member
// state is a parent group of the applicant-relations desk and casts
// its vote as an explicit authorization. Under an M*P strategy the
// decision is the vote count; the example contrasts that with
// locality-based strategies, where geography (hierarchy distance)
// rather than headcount decides — and shows the tie-break role of the
// preference rule.
//
// Run:  ./voting_committee [yes-votes] [no-votes]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/resolve.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/dag.h"

int main(int argc, char** argv) {
  using namespace ucr;  // NOLINT(build/namespaces): example brevity.

  const int yes_votes = argc > 1 ? std::atoi(argv[1]) : 7;
  const int no_votes = argc > 2 ? std::atoi(argv[2]) : 5;
  if (yes_votes < 0 || no_votes < 0 || yes_votes + no_votes == 0) {
    std::cerr << "usage: voting_committee [yes-votes >= 0] [no-votes >= 0]\n";
    return 2;
  }

  // Hierarchy: council -> member states -> applicant desk.
  graph::DagBuilder builder;
  auto check = [](const Status& s) {
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      std::exit(1);
    }
  };
  for (int i = 0; i < yes_votes + no_votes; ++i) {
    const std::string member = "member" + std::to_string(i);
    check(builder.AddEdge("council", member));
    check(builder.AddEdge(member, "applicant"));
  }
  auto dag = std::move(builder).Build();
  if (!dag.ok()) {
    std::cerr << dag.status().ToString() << "\n";
    return 1;
  }

  core::AccessControlSystem org(std::move(dag).value());
  for (int i = 0; i < yes_votes + no_votes; ++i) {
    const std::string member = "member" + std::to_string(i);
    if (i < yes_votes) {
      check(org.Grant(member, "membership", "admit"));
    } else {
      check(org.DenyAccess(member, "membership", "admit"));
    }
  }

  std::printf("Votes: %d in favour, %d against\n\n", yes_votes, no_votes);

  struct Scenario {
    const char* mnemonic;
    const char* description;
  };
  const Scenario scenarios[] = {
      {"MP-", "majority rules; a tie denies (closed preference)"},
      {"MP+", "majority rules; a tie admits (open preference)"},
      {"MLP-", "majority first, then most-specific, then deny"},
      {"LP-", "no vote counting: nearest authorization, ties deny"},
      {"D-MP+", "abstaining council defaults to 'no', then majority"},
  };

  for (const Scenario& scenario : scenarios) {
    auto strategy = core::ParseStrategy(scenario.mnemonic);
    if (!strategy.ok()) {
      std::cerr << strategy.status().ToString() << "\n";
      return 1;
    }
    auto decision = org.CheckAccessByName("applicant", "membership", "admit",
                                          *strategy);
    if (!decision.ok()) {
      std::cerr << decision.status().ToString() << "\n";
      return 1;
    }
    std::printf("  %-6s -> %-8s (%s)\n", scenario.mnemonic,
                *decision == acm::Mode::kPositive ? "ADMITTED" : "rejected",
                scenario.description);
  }

  std::cout << "\nNote how MP- and MP+ differ only when the vote is tied, "
               "and how LP- ignores\nthe tally entirely: every member is "
               "equidistant, so any dissent becomes a\nconflict settled by "
               "the preference rule.\n";
  return 0;
}
