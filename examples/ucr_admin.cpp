// ucr_admin: a small administration CLI over a persisted ucr system
// file (core/storage.h). Demonstrates the full operational loop the
// paper envisions: one installed system, policy edits and *strategy*
// changes applied as data, decisions and their explanations on tap.
//
// Usage:
//   ucr_admin demo <file>                      write the Fig. 1 system
//   ucr_admin info <file>
//   ucr_admin grant  <file> <subject> <object> <right>
//   ucr_admin deny   <file> <subject> <object> <right>
//   ucr_admin revoke <file> <subject> <object> <right>
//   ucr_admin add-member    <file> <group> <member>
//   ucr_admin remove-member <file> <group> <member>
//   ucr_admin set-strategy <file> <mnemonic>
//   ucr_admin check   <file> <subject> <object> <right>
//   ucr_admin explain <file> <subject> <object> <right>
//   ucr_admin metrics <file> [prom|json]       sweep + metrics snapshot
//   ucr_admin trace   <file> <subject> <object> <right>
//   ucr_admin serve   <file> [port]            live exposition server
//   ucr_admin top <host:port> [--once]         terminal dashboard over
//                                              a running serve instance
//
// Durable-store verbs (core/persistent_system.h; <dir> holds a binary
// snapshot plus a MutationOp WAL):
//   ucr_admin import  <file> <dir>             seed a store from a
//                                              text system file
//   ucr_admin recover <dir>                    replay the WAL, repair
//                                              any torn tail, report
//   ucr_admin compact <dir>                    fold the WAL into a
//                                              fresh snapshot
//
// Exit codes: 0 success, 1 operation failed, 2 bad usage, 3 the system
// file could not be loaded.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "core/explain.h"
#include "core/paper_example.h"
#include "core/persistent_system.h"
#include "core/storage.h"
#include "core/strategy.h"
#include "core/system.h"
#include "obs/audit_log.h"
#include "obs/health.h"
#include "obs/http_exporter.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/shadow.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

#ifndef UCR_ADMIN_VERSION
#define UCR_ADMIN_VERSION "dev"
#endif

namespace {

using namespace ucr;  // NOLINT(build/namespaces): example brevity.

constexpr int kExitOperationFailed = 1;
constexpr int kExitBadUsage = 2;
constexpr int kExitLoadFailed = 3;

int Fail(const Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return kExitOperationFailed;
}

int Demo(const std::string& path) {
  core::PaperExample ex = core::MakePaperExample();
  core::AccessControlSystem system(std::move(ex.dag));
  for (const auto& [subject, mode] :
       {std::pair{"S2", '+'}, {"S4", '+'}, {"S5", '-'}}) {
    const Status status = mode == '+'
                              ? system.Grant(subject, "obj", "read")
                              : system.DenyAccess(subject, "obj", "read");
    if (!status.ok()) return Fail(status);
  }
  system.SetStrategy(core::ParseStrategy("D+LP-").value());
  const Status saved = core::SaveSystemToFile(system, path);
  if (!saved.ok()) return Fail(saved);
  std::cout << "wrote the paper's Fig. 1 system (strategy D+LP-) to "
            << path << "\n";
  return 0;
}

void PrintStoreSummary(const core::PersistentSystem& store) {
  const core::AccessControlSystem& system = store.system();
  std::cout << "subjects:       " << system.dag().node_count() << "\n"
            << "memberships:    " << system.dag().edge_count() << "\n"
            << "authorizations: " << system.eacm().size() << "\n"
            << "strategy:       " << system.strategy().ToMnemonic() << "\n"
            << "last lsn:       " << store.last_lsn() << "\n";
}

// Seeds a durable store directory from a text system file: one binary
// snapshot at LSN 0 plus an empty WAL. Refuses to clobber an existing
// store.
int Import(const std::string& file, const std::string& dir) {
  auto system = core::LoadSystemFromFile(file);
  if (!system.ok()) {
    std::cerr << "error: cannot load '" << file
              << "': " << system.status().ToString() << "\n";
    return kExitLoadFailed;
  }
  const Status status = core::PersistentSystem::Initialize(dir, *system);
  if (!status.ok()) return Fail(status);
  std::cout << "imported " << file << " into store " << dir << "\n";
  return 0;
}

// Opening IS recovery (snapshot + WAL replay + torn-tail repair); the
// verb makes it explicit and reports what recovery found.
int Recover(const std::string& dir) {
  core::PersistentSystem::OpenStats stats;
  auto store = core::PersistentSystem::Open(dir, {}, &stats);
  if (!store.ok()) {
    std::cerr << "error: cannot recover '" << dir
              << "': " << store.status().ToString() << "\n";
    return kExitLoadFailed;
  }
  std::cout << "recovered " << dir << "\n"
            << "snapshot:       "
            << (stats.loaded_snapshot
                    ? "loaded (lsn " + std::to_string(stats.snapshot_lsn) + ")"
                    : "none")
            << "\n"
            << "wal batches:    " << stats.replayed_batches << " replayed ("
            << stats.replayed_ops << " ops)\n"
            << "uncommitted:    " << stats.discarded_ops << " ops discarded\n"
            << "torn tail:      " << stats.torn_bytes << " bytes truncated\n";
  PrintStoreSummary(*store);
  return 0;
}

int CompactStore(const std::string& dir) {
  core::PersistentSystem::OpenStats stats;
  auto store = core::PersistentSystem::Open(dir, {}, &stats);
  if (!store.ok()) {
    std::cerr << "error: cannot open '" << dir
              << "': " << store.status().ToString() << "\n";
    return kExitLoadFailed;
  }
  const Status status = store->Compact();
  if (!status.ok()) return Fail(status);
  std::cout << "compacted " << dir << " (" << stats.replayed_batches
            << " wal batches folded into the snapshot at lsn "
            << store->last_lsn() << ")\n";
  return 0;
}

int WithSystem(const std::string& path,
               const std::function<int(core::AccessControlSystem&)>& body,
               bool save_back) {
  auto system = core::LoadSystemFromFile(path);
  if (!system.ok()) {
    std::cerr << "error: cannot load '" << path
              << "': " << system.status().ToString() << "\n";
    return kExitLoadFailed;
  }
  const int rc = body(*system);
  if (rc == 0 && save_back) {
    const Status saved = core::SaveSystemToFile(*system, path);
    if (!saved.ok()) return Fail(saved);
  }
  return rc;
}

// Runs every ⟨subject, object, right⟩ query in the system once so the
// metrics snapshot reflects a full decision sweep, then renders the
// registry. `format` is "prom", "json", or "" (both).
int Metrics(const std::string& path, const std::string& format) {
  return WithSystem(path, [&](core::AccessControlSystem& system) {
    const size_t subjects = system.dag().node_count();
    const size_t objects = system.eacm().object_count();
    const size_t rights = system.eacm().right_count();
    // Latency histograms only record sampled queries (the hot path
    // skips the clock for the rest); sweep at interval 1 so every
    // decision lands in the histograms, then restore.
    const uint64_t previous = obs::QueryTracer::Global().sample_interval();
    obs::QueryTracer::Global().SetSampleInterval(1);
    for (size_t s = 0; s < subjects; ++s) {
      for (size_t o = 0; o < objects; ++o) {
        for (size_t r = 0; r < rights; ++r) {
          auto mode = system.CheckAccess(
              static_cast<graph::NodeId>(s), static_cast<acm::ObjectId>(o),
              static_cast<acm::RightId>(r), system.strategy());
          if (!mode.ok()) return Fail(mode.status());
        }
      }
    }
    obs::QueryTracer::Global().SetSampleInterval(previous);
    if (format.empty() || format == "prom") {
      std::cout << obs::Registry::Global().RenderPrometheus();
    }
    if (format.empty() || format == "json") {
      const std::string json = obs::Registry::Global().RenderJson();
      if (!obs::JsonLooksValid(json)) {
        return Fail(
            Status::FailedPrecondition("metrics JSON failed validation"));
      }
      std::cout << json << "\n";
    }
    return 0;
  }, /*save_back=*/false);
}

// Forces the tracer to sample the next query, runs it, and prints the
// audit-grade record: the Fig. 4 derivation plus the full span JSON.
int Trace(const std::string& path, const std::string& subject,
          const std::string& object, const std::string& right) {
  return WithSystem(path, [&](core::AccessControlSystem& system) {
    const uint64_t previous = obs::QueryTracer::Global().sample_interval();
    obs::QueryTracer::Global().SetSampleInterval(1);
    auto mode = system.CheckAccessByName(subject, object, right);
    obs::QueryTracer::Global().SetSampleInterval(previous);
    if (!mode.ok()) return Fail(mode.status());
    const std::vector<obs::QueryTraceRecord> records =
        obs::QueryTracer::Global().Snapshot();
    if (records.empty()) {
      return Fail(Status::FailedPrecondition(
          "no trace captured (built with UCR_METRICS=OFF?)"));
    }
    const obs::QueryTraceRecord& record = records.back();
    const core::Strategy& strategy =
        core::AllStrategies()[record.strategy_index];
    std::cout << subject << (mode.value() == acm::Mode::kPositive
                                 ? " MAY "
                                 : " may NOT ")
              << right << " " << object << " (strategy "
              << strategy.ToMnemonic() << ")\n"
              << obs::ToFig4String(record) << "\n"
              << obs::ToJson(record) << "\n";
    return 0;
  }, /*save_back=*/false);
}

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

// ---------------------------------------------------------------------------
// top: a dependency-free refreshing dashboard over a serve instance.
// Plain sockets + anchored field extraction from /statz — both ends of
// the protocol live in this repo, so a JSON library would be dead
// weight in an example binary.

/// One short HTTP/1.1 GET against host:port. Returns false on any
/// socket failure; fills the response body and status code otherwise.
bool HttpGetBody(const std::string& host, uint16_t port,
                 const std::string& path, std::string* body,
                 int* status_code) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return false;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: " + host +
      "\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return false;
  if (status_code != nullptr) {
    *status_code = std::atoi(response.c_str() + response.find(' ') + 1);
  }
  *body = response.substr(header_end + 4);
  return true;
}

/// The numeric value following `"key":` (first occurrence; /statz keys
/// are unique at the level we read). 0 when absent.
double JsonNumber(const std::string& json, const std::string& key) {
  const std::string anchor = "\"" + key + "\":";
  const size_t pos = json.find(anchor);
  if (pos == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + pos + anchor.size(), nullptr);
}

/// The string value following `anchor` (which must end just before the
/// opening quote). Empty when absent.
std::string JsonStringAfter(const std::string& json,
                            const std::string& anchor) {
  const size_t pos = json.find(anchor);
  if (pos == std::string::npos) return "";
  const size_t start = pos + anchor.size();
  const size_t end = json.find('"', start);
  if (end == std::string::npos) return "";
  return json.substr(start, end - start);
}

/// Every `"reason":"..."` in the health object, for the verdict lines.
std::vector<std::string> JsonReasons(const std::string& json) {
  std::vector<std::string> reasons;
  size_t pos = 0;
  const std::string anchor = "\"reason\":\"";
  while ((pos = json.find(anchor, pos)) != std::string::npos) {
    const size_t start = pos + anchor.size();
    const size_t end = json.find('"', start);
    if (end == std::string::npos) break;
    reasons.push_back(json.substr(start, end - start));
    pos = end;
  }
  return reasons;
}

std::string FormatNs(double ns) {
  char buf[32];
  if (ns <= 0) {
    return "-";
  } else if (ns < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.0f ns", ns);
  } else if (ns < 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1f us", ns / 1e3);
  } else if (ns < 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", ns / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", ns / 1e9);
  }
  return buf;
}

int Top(const std::string& target, bool once) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= target.size()) {
    std::cerr << "error: top expects <host:port>, got '" << target << "'\n";
    return kExitBadUsage;
  }
  const std::string host = target.substr(0, colon);
  const long port = std::strtol(target.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::cerr << "error: bad port in '" << target << "'\n";
    return kExitBadUsage;
  }
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::string body;
    int status = 0;
    if (!HttpGetBody(host, static_cast<uint16_t>(port), "/statz", &body,
                     &status)) {
      std::cerr << "error: cannot reach http://" << target << "/statz\n";
      return kExitOperationFailed;
    }
    std::ostringstream screen;
    const std::string health =
        JsonStringAfter(body, "\"health\":{\"status\":\"");
    screen << "ucr " << target << "  —  "
           << (once ? "single shot" : "refreshing 1s, Ctrl-C quits") << "\n\n"
           << "  qps          " << JsonNumber(body, "qps") << "\n"
           << "  p99          resolve " << FormatNs(JsonNumber(body, "resolve_p99_ns"))
           << "   system " << FormatNs(JsonNumber(body, "system_p99_ns"))
           << "   snapshot " << FormatNs(JsonNumber(body, "snapshot_p99_ns"))
           << "   batch " << FormatNs(JsonNumber(body, "batch_p99_ns")) << "\n"
           << "  cache hits   resolution "
           << JsonNumber(body, "resolution_cache_hit_rate") * 100.0
           << "%   snapshot "
           << JsonNumber(body, "snapshot_cache_hit_rate") * 100.0 << "%\n"
           << "  epoch        publish " << JsonNumber(body, "epoch_publish_rate")
           << "/s   lag " << JsonNumber(body, "epoch_lag") << "\n"
           << "  rates        slow " << JsonNumber(body, "slow_query_rate")
           << "/s   audit drop " << JsonNumber(body, "audit_drop_rate")
           << "/s   shadow mismatch "
           << JsonNumber(body, "shadow_mismatch_rate") << "/s\n"
           << "  sampler      ticks " << JsonNumber(body, "ticks") << "\n"
           << "  health       " << (health.empty() ? "(no engine)" : health)
           << "\n";
    for (const std::string& reason : JsonReasons(body)) {
      screen << "    ! " << reason << "\n";
    }
    if (!once) {
      // Clear + home keeps the dashboard in place between refreshes.
      std::cout << "\033[2J\033[H";
    }
    std::cout << screen.str() << std::flush;
    if (once) return 0;
    for (int i = 0; i < 10 && g_stop_requested == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  return 0;
}

// profile: pull the wall profiler's folded stacks off a running serve
// instance. Default is a windowed profile — fetch /profilez, wait
// `seconds`, fetch again, and print the per-stack count difference so
// the output covers exactly the window (serve keeps its profiler
// running for the life of the process). --once prints the cumulative
// profile from a single fetch instead. Both outputs are flamegraph.pl
// / speedscope "folded stacks" input.
int Profile(const std::string& target, int seconds, bool once) {
  const size_t colon = target.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= target.size()) {
    std::cerr << "error: profile expects <host:port>, got '" << target
              << "'\n";
    return kExitBadUsage;
  }
  const std::string host = target.substr(0, colon);
  const long port = std::strtol(target.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) {
    std::cerr << "error: bad port in '" << target << "'\n";
    return kExitBadUsage;
  }
  const auto fetch_folded = [&](std::map<std::string, uint64_t>* out) {
    std::string body;
    int status = 0;
    if (!HttpGetBody(host, static_cast<uint16_t>(port), "/profilez", &body,
                     &status) ||
        status != 200) {
      std::cerr << "error: cannot reach http://" << target << "/profilez\n";
      return false;
    }
    size_t pos = 0;
    while (pos < body.size()) {
      size_t eol = body.find('\n', pos);
      if (eol == std::string::npos) eol = body.size();
      const std::string line = body.substr(pos, eol - pos);
      pos = eol + 1;
      const size_t space = line.rfind(' ');
      if (space == std::string::npos || space == 0) continue;
      const uint64_t count =
          std::strtoull(line.c_str() + space + 1, nullptr, 10);
      if (count > 0) (*out)[line.substr(0, space)] += count;
    }
    return true;
  };
  std::map<std::string, uint64_t> before;
  if (!once) {
    if (!fetch_folded(&before)) return kExitOperationFailed;
    std::cerr << "profiling " << target << " for " << seconds << "s...\n";
    std::this_thread::sleep_for(std::chrono::seconds(seconds));
  }
  std::map<std::string, uint64_t> after;
  if (!fetch_folded(&after)) return kExitOperationFailed;
  uint64_t total = 0;
  for (const auto& [stack, count] : after) {
    const auto it = before.find(stack);
    const uint64_t prior = it == before.end() ? 0 : it->second;
    if (count > prior) {
      std::cout << stack << " " << (count - prior) << "\n";
      total += count - prior;
    }
  }
  if (total == 0) {
    std::cerr << "no samples captured (is the profiler running? serve "
                 "starts it automatically)\n";
    return kExitOperationFailed;
  }
  std::cerr << total << " samples\n";
  return 0;
}

// Long-running operational mode (DESIGN.md §9, §11): loads the system,
// enables epoch-pinned snapshot reads, starts the audit log (rotating
// file next to the system file), turns on 1-in-64 shadow verification,
// and serves /metrics /healthz /varz /tracez until SIGINT or SIGTERM.
// The demo traffic loop alternates classic and snapshot sweeps so the
// epoch gauges in /varz show live numbers.
int Serve(const std::string& path, uint16_t port) {
  return WithSystem(path, [&](core::AccessControlSystem& system) {
    system.EnableSnapshotReads();
    obs::AuditLogOptions audit_options;
    const std::string audit_path = path + ".audit.jsonl";
    auto file_sink = std::make_unique<obs::RotatingFileSink>(audit_path);
    if constexpr (obs::kEnabled) {
      if (!file_sink->ok()) {
        return Fail(Status::Internal("cannot open audit log " + audit_path));
      }
    }
    audit_options.sinks.push_back(std::move(file_sink));
    obs::AuditLog::Global().Start(std::move(audit_options));
    obs::ShadowVerifier::Global().SetInterval(64);
    // Telemetry timeline + live health verdict (DESIGN.md §13): the
    // sampler retains two tiers of history for /timeseries and /statz,
    // the health engine turns them into /healthz. Start failures are
    // non-fatal (already running, or metrics compiled out — in which
    // case the exporter refuses to start below anyway).
    obs::TimeSeriesSampler::Global().Start();
    obs::HealthEngine::Global().Start();
    // Continuous wall-clock profiling (DESIGN.md §14): 97 Hz SIGPROF
    // sampling for the life of the serve process, read back through
    // /profilez or `ucr_admin profile`.
    obs::WallProfiler::Global().Start();
    const auto stop_telemetry = [] {
      obs::WallProfiler::Global().Stop();
      obs::HealthEngine::Global().Stop();
      obs::TimeSeriesSampler::Global().Stop();
    };

    obs::HttpExporter exporter;
    std::string error;
    if (!exporter.Start(port, &error)) {
      stop_telemetry();
      obs::AuditLog::Global().Stop();
      return Fail(Status::Internal("cannot start exporter: " + error));
    }
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    // First line, flushed before the banner and before any traffic:
    // "listening <host>:<port>". With port 0 the kernel picks the
    // port, so scripts (and tests/serve_endpoint_test.py) parse this
    // line instead of racing a fixed port or scraping the banner.
    std::cout << "listening 127.0.0.1:" << exporter.port() << std::endl;
    std::cout << "serving http://127.0.0.1:" << exporter.port()
              << "/{metrics,healthz,varz,tracez,timeseries,statz,profilez}\n"
              << "audit log: " << audit_path << "\n"
              << "shadow verification: 1-in-64\n"
              << "telemetry: 1s sampler + health engine (try `ucr_admin "
                 "top 127.0.0.1:"
              << exporter.port() << "`)\n"
              << "profiler: 97 Hz wall-clock sampler (try `ucr_admin "
                 "profile 127.0.0.1:"
              << exporter.port() << " 5`)\n"
              << "snapshot reads: enabled (epoch "
              << system.snapshots()->current_epoch() << ")\n"
              << "press Ctrl-C to stop" << std::endl;

    // Background decision traffic: sweep every triple under the
    // session strategy so the exported counters, histograms, traces
    // and shadow checks reflect a live system rather than zeros.
    // Even sweeps use the classic facade path, odd sweeps the
    // epoch-pinned snapshot path, so both metric families move.
    const size_t subjects = system.dag().node_count();
    const size_t objects = system.eacm().object_count();
    const size_t rights = system.eacm().right_count();
    uint64_t sweep = 0;
    while (g_stop_requested == 0) {
      const bool use_snapshot = (sweep++ % 2) == 1;
      for (size_t s = 0; s < subjects && g_stop_requested == 0; ++s) {
        for (size_t o = 0; o < objects; ++o) {
          for (size_t r = 0; r < rights; ++r) {
            const auto subject = static_cast<graph::NodeId>(s);
            const auto object = static_cast<acm::ObjectId>(o);
            const auto right = static_cast<acm::RightId>(r);
            auto mode =
                use_snapshot
                    ? system.CheckAccessSnapshot(subject, object, right)
                    : system.CheckAccess(subject, object, right,
                                         system.strategy());
            if (!mode.ok()) {
              exporter.Stop();
              stop_telemetry();
              obs::AuditLog::Global().Stop();
              return Fail(mode.status());
            }
          }
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
    std::cout << "\nstopping (" << exporter.requests_total()
              << " requests served)\n";
    exporter.Stop();
    stop_telemetry();
    obs::ShadowVerifier::Global().SetInterval(0);
    obs::AuditLog::Global().Stop();
    return 0;
  }, /*save_back=*/false);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string usage =
      "usage: ucr_admin <command> <file> [args...]\n"
      "\n"
      "commands:\n"
      "  demo <file>                          write the Fig. 1 system\n"
      "  info <file>                          summarize the system\n"
      "  grant  <file> <subject> <object> <right>\n"
      "  deny   <file> <subject> <object> <right>\n"
      "  revoke <file> <subject> <object> <right>\n"
      "  add-member    <file> <group> <member>\n"
      "  remove-member <file> <group> <member>\n"
      "  set-strategy <file> <mnemonic>       e.g. D+LP-\n"
      "  check   <file> <subject> <object> <right>\n"
      "  explain <file> <subject> <object> <right>\n"
      "  metrics <file> [prom|json]           sweep + metrics snapshot\n"
      "  trace   <file> <subject> <object> <right>\n"
      "  serve   <file> [port]                live exposition server\n"
      "                                       (default port 9464) with\n"
      "                                       audit log + shadow checks\n"
      "  top <host:port> [--once]             refreshing dashboard over\n"
      "                                       a running serve instance\n"
      "                                       (--once prints one frame)\n"
      "  profile <host:port> [seconds] [--once]\n"
      "                                       folded wall-clock stacks\n"
      "                                       from a running serve\n"
      "                                       instance (default 10s\n"
      "                                       window; --once dumps the\n"
      "                                       cumulative profile)\n"
      "\n"
      "durable store (a <dir> holds a binary snapshot + MutationOp WAL):\n"
      "  import  <file> <dir>                 seed a store from a text\n"
      "                                       system file\n"
      "  recover <dir>                        replay the WAL, repair a\n"
      "                                       torn tail, report state\n"
      "  compact <dir>                        fold the WAL into a fresh\n"
      "                                       snapshot (atomic rename)\n"
      "\n"
      "flags: --help, --version\n"
      "exit codes: 0 ok, 1 operation failed, 2 bad usage, 3 load failed\n";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage;
      return 0;
    }
    if (arg == "--version") {
      std::cout << "ucr_admin " << UCR_ADMIN_VERSION << "\n";
      return 0;
    }
  }
  if (argc < 3) {
    std::cerr << usage;
    return kExitBadUsage;
  }
  const std::string command = argv[1];
  const std::string path = argv[2];

  if (command == "demo") return Demo(path);

  if (command == "recover" || command == "compact") {
    if (argc != 3) {
      std::cerr << usage;
      return kExitBadUsage;
    }
    return command == "recover" ? Recover(path) : CompactStore(path);
  }

  if (command == "import") {
    if (argc != 4) {
      std::cerr << usage;
      return kExitBadUsage;
    }
    return Import(path, argv[3]);
  }

  if (command == "profile") {
    int seconds = 10;
    bool once = false;
    for (int i = 3; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--once") {
        once = true;
      } else {
        char* end = nullptr;
        const long parsed = std::strtol(arg.c_str(), &end, 10);
        if (end == arg.c_str() || *end != '\0' || parsed < 1 ||
            parsed > 3600) {
          std::cerr << "profile: seconds must be 1..3600\n";
          return kExitBadUsage;
        }
        seconds = static_cast<int>(parsed);
      }
    }
    return Profile(path, seconds, once);
  }

  if (command == "top") {
    if (argc != 3 && !(argc == 4 && std::string(argv[3]) == "--once")) {
      std::cerr << usage;
      return kExitBadUsage;
    }
    return Top(path, /*once=*/argc == 4);
  }

  if (command == "serve") {
    if (argc != 3 && argc != 4) {
      std::cerr << usage;
      return kExitBadUsage;
    }
    uint16_t port = 9464;
    if (argc == 4) {
      char* end = nullptr;
      const long parsed = std::strtol(argv[3], &end, 10);
      if (end == argv[3] || *end != '\0' || parsed < 0 || parsed > 65535) {
        std::cerr << "serve: port must be 0..65535 (0 = ephemeral)\n";
        return kExitBadUsage;
      }
      port = static_cast<uint16_t>(parsed);
    }
    return Serve(path, port);
  }

  if (command == "info") {
    return WithSystem(path, [](core::AccessControlSystem& system) {
      std::cout << "subjects:       " << system.dag().node_count() << " ("
                << system.dag().Sinks().size() << " sinks)\n"
                << "memberships:    " << system.dag().edge_count() << "\n"
                << "authorizations: " << system.eacm().size() << "\n"
                << "strategy:       " << system.strategy().ToMnemonic()
                << "\n";
      return 0;
    }, /*save_back=*/false);
  }

  if (command == "set-strategy") {
    if (argc != 4) {
      std::cerr << usage;
      return kExitBadUsage;
    }
    auto strategy = core::ParseStrategy(argv[3]);
    if (!strategy.ok()) return Fail(strategy.status());
    return WithSystem(path, [&](core::AccessControlSystem& system) {
      system.SetStrategy(*strategy);
      std::cout << "strategy is now " << strategy->ToMnemonic() << "\n";
      return 0;
    }, /*save_back=*/true);
  }

  if (command == "add-member" || command == "remove-member") {
    if (argc != 5) {
      std::cerr << usage;
      return kExitBadUsage;
    }
    const std::string group = argv[3];
    const std::string member = argv[4];
    return WithSystem(path, [&](core::AccessControlSystem& system) {
      const Status status = command == "add-member"
                                ? system.AddMembership(group, member)
                                : system.RemoveMembership(group, member);
      if (!status.ok()) return Fail(status);
      std::cout << member << (command == "add-member" ? " joined "
                                                      : " left ")
                << group << "\n";
      return 0;
    }, /*save_back=*/true);
  }

  if (command == "metrics") {
    if (argc != 3 && argc != 4) {
      std::cerr << usage;
      return kExitBadUsage;
    }
    const std::string format = argc == 4 ? argv[3] : "";
    if (!format.empty() && format != "prom" && format != "json") {
      std::cerr << "metrics format must be 'prom' or 'json'\n";
      return kExitBadUsage;
    }
    return Metrics(path, format);
  }

  if (argc != 6) {
    std::cerr << usage;
    return kExitBadUsage;
  }
  const std::string subject = argv[3];
  const std::string object = argv[4];
  const std::string right = argv[5];

  if (command == "grant" || command == "deny" || command == "revoke") {
    return WithSystem(path, [&](core::AccessControlSystem& system) {
      const Status status =
          command == "grant"  ? system.Grant(subject, object, right)
          : command == "deny" ? system.DenyAccess(subject, object, right)
                              : system.Revoke(subject, object, right);
      if (!status.ok()) return Fail(status);
      std::cout << command << " applied\n";
      return 0;
    }, /*save_back=*/true);
  }

  if (command == "trace") return Trace(path, subject, object, right);

  if (command == "check" || command == "explain") {
    return WithSystem(path, [&](core::AccessControlSystem& system) {
      auto mode = system.CheckAccessByName(subject, object, right);
      if (!mode.ok()) return Fail(mode.status());
      std::cout << subject << (mode.value() == acm::Mode::kPositive
                                   ? " MAY "
                                   : " may NOT ")
                << right << " " << object << " (strategy "
                << system.strategy().ToMnemonic() << ")\n";
      if (command == "explain") {
        const graph::NodeId s = system.dag().FindNode(subject);
        auto o = system.eacm().FindObject(object);
        auto r = system.eacm().FindRight(right);
        if (o.ok() && r.ok()) {
          auto explanation = core::ExplainAccess(
              system.dag(), system.eacm(), s, *o, *r, system.strategy());
          if (!explanation.ok()) return Fail(explanation.status());
          std::cout << explanation->ToString(system.dag());
        }
      }
      return 0;
    }, /*save_back=*/false);
  }

  std::cerr << usage;
  return kExitBadUsage;
}
