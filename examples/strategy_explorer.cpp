// Strategy explorer: an interactive-grade CLI over the public API.
//
// Loads a subject hierarchy (edge-list file) and an explicit matrix
// (auth file), then answers one access query under one strategy — or
// under all 48 when asked — printing the Resolve() trace so an
// administrator can see *why* a decision came out the way it did.
//
// Usage:
//   strategy_explorer --list-strategies
//   strategy_explorer <graph> <acm> <subject> <object> <right> <strategy>
//   strategy_explorer <graph> <acm> <subject> <object> <right> ALL
//
// Without arguments, runs the paper's Fig. 1 example on D+LMP+.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "acm/acm.h"
#include "core/explain.h"
#include "core/paper_example.h"
#include "core/relalg_impl.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "graph/io.h"
#include "util/table_printer.h"

namespace {

using namespace ucr;  // NOLINT(build/namespaces): example brevity.

int ListStrategies() {
  TablePrinter table({"#", "mnemonic", "default", "locality", "majority",
                      "preference"});
  for (const core::Strategy& s : core::AllStrategies()) {
    const char* def = s.default_rule == core::DefaultRule::kPositive ? "+"
                      : s.default_rule == core::DefaultRule::kNegative ? "-"
                                                                       : "off";
    const char* loc =
        s.locality_rule == core::LocalityRule::kMostSpecific  ? "min"
        : s.locality_rule == core::LocalityRule::kMostGeneral ? "max"
                                                              : "off";
    const char* maj = s.majority_rule == core::MajorityRule::kBefore
                          ? "before locality"
                      : s.majority_rule == core::MajorityRule::kAfter
                          ? "after locality"
                          : "off";
    table.AddRow({std::to_string(s.CanonicalIndex()), s.ToMnemonic(), def,
                  loc, maj,
                  s.preference_rule == core::PreferenceRule::kPositive
                      ? "+"
                      : "-"});
  }
  table.Print(std::cout);
  return 0;
}

int Query(const graph::Dag& dag, const acm::ExplicitAcm& eacm,
          const std::string& subject, const std::string& object,
          const std::string& right, const std::string& strategy_name) {
  const graph::NodeId s = dag.FindNode(subject);
  if (s == graph::kInvalidNode) {
    std::cerr << "unknown subject '" << subject << "'\n";
    return 1;
  }
  auto o = eacm.FindObject(object);
  auto r = eacm.FindRight(right);
  if (!o.ok() || !r.ok()) {
    std::cerr << "unknown object or right (nothing was ever authorized on "
                 "it)\n";
    return 1;
  }

  std::vector<core::Strategy> strategies;
  if (strategy_name == "ALL") {
    strategies = core::AllStrategies();
  } else {
    auto parsed = core::ParseStrategy(strategy_name);
    if (!parsed.ok()) {
      std::cerr << parsed.status().ToString() << "\n";
      return 2;
    }
    strategies.push_back(*parsed);
  }

  TablePrinter table({"strategy", "mode", "c1", "c2", "Auth", "line"});
  for (const core::Strategy& strategy : strategies) {
    core::ResolveTrace trace;
    auto mode = core::ResolveAccess(dag, eacm, s, *o, *r, strategy, {},
                                    &trace);
    if (!mode.ok()) {
      std::cerr << mode.status().ToString() << "\n";
      return 1;
    }
    table.AddRow({strategy.ToMnemonic(),
                  std::string(1, acm::ModeToChar(*mode)), trace.C1ToString(),
                  trace.C2ToString(), trace.AuthToString(),
                  std::to_string(trace.returned_line)});
  }
  std::cout << "<" << subject << ", " << object << ", " << right << ">:\n";
  table.Print(std::cout);

  // For a single strategy, also explain the decision's provenance.
  if (strategies.size() == 1) {
    auto explanation =
        core::ExplainAccess(dag, eacm, s, *o, *r, strategies.front());
    if (explanation.ok()) {
      std::cout << "\n" << explanation->ToString(dag);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::string(argv[1]) == "--list-strategies") {
    return ListStrategies();
  }
  if (argc == 1) {
    // Demo mode: the paper's example.
    const core::PaperExample ex = core::MakePaperExample();
    std::cout << "(demo mode: paper Fig. 1; pass files to load your own)\n";
    return Query(ex.dag, ex.eacm, "User", "obj", "read", "D+LMP+");
  }
  if (argc != 7) {
    std::cerr << "usage:\n"
              << "  strategy_explorer --list-strategies\n"
              << "  strategy_explorer <graph-file> <acm-file> <subject> "
                 "<object> <right> <strategy|ALL>\n";
    return 2;
  }

  std::ifstream graph_in(argv[1]);
  if (!graph_in) {
    std::cerr << "cannot open graph file " << argv[1] << "\n";
    return 1;
  }
  std::ostringstream graph_text;
  graph_text << graph_in.rdbuf();
  auto dag = ucr::graph::FromEdgeListText(graph_text.str());
  if (!dag.ok()) {
    std::cerr << "graph: " << dag.status().ToString() << "\n";
    return 1;
  }

  std::ifstream acm_in(argv[2]);
  if (!acm_in) {
    std::cerr << "cannot open acm file " << argv[2] << "\n";
    return 1;
  }
  std::ostringstream acm_text;
  acm_text << acm_in.rdbuf();
  auto eacm = ucr::acm::FromText(acm_text.str(), *dag);
  if (!eacm.ok()) {
    std::cerr << "acm: " << eacm.status().ToString() << "\n";
    return 1;
  }

  return Query(*dag, *eacm, argv[3], argv[4], argv[5], argv[6]);
}
