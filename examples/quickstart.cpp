// Quickstart: the paper's motivating example (Fig. 1) end to end.
//
// Builds the nine-subject hierarchy, grants/denies the explicit
// authorizations, shows the propagated allRights relation (Table 1),
// and resolves User's access under every conflict-resolution strategy
// (Table 2) — demonstrating the single parametric algorithm the paper
// proposes: one system, 48 strategies, no reinstallation.
//
// Run:  ./quickstart

#include <cstdio>
#include <iostream>

#include "core/paper_example.h"
#include "core/propagate.h"
#include "core/resolve.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/ancestor_subgraph.h"
#include "util/table_printer.h"

int main() {
  using namespace ucr;  // NOLINT(build/namespaces): example brevity.

  // ---- 1. The subject hierarchy and explicit authorizations --------
  core::PaperExample ex = core::MakePaperExample();
  std::cout << "Subject hierarchy (Fig. 1): " << ex.dag.node_count()
            << " subjects, " << ex.dag.edge_count() << " membership edges\n"
            << "Explicit authorizations: S2:+  S4:+  S5:-  on <obj, read>\n\n";

  // ---- 2. Propagation (Steps 1-3): User's allRights (Table 1) ------
  const graph::AncestorSubgraph sub(ex.dag, ex.user);
  const auto labels =
      ex.eacm.ExtractLabels(ex.dag.node_count(), ex.obj, ex.read);
  const core::RightsBag all_rights = core::PropagateAggregated(sub, labels);

  TablePrinter table1({"subject", "object", "right", "dis", "mode"});
  for (const core::RightsEntry& e : all_rights.entries()) {
    for (uint64_t i = 0; i < e.multiplicity; ++i) {
      table1.AddRow({"User", "obj", "read", std::to_string(e.dis),
                     std::string(1, acm::PropagatedModeToChar(e.mode))});
    }
  }
  std::cout << "All read authorizations of User on obj (paper Table 1):\n";
  table1.Print(std::cout);

  // ---- 3. Resolution (Step 4) under every strategy (Table 2) -------
  std::cout << "\nResolved mode per strategy instance (paper Table 2):\n";
  TablePrinter table2({"strategy", "mode", "decided by (Fig. 4 line)"});
  for (const core::Strategy& s : core::AllStrategies()) {
    core::ResolveTrace trace;
    const acm::Mode mode = core::Resolve(all_rights, s, &trace);
    const char* decided = trace.returned_line == 6   ? "majority (6)"
                          : trace.returned_line == 8 ? "locality (8)"
                                                     : "preference (9)";
    table2.AddRow({s.ToMnemonic(), std::string(1, acm::ModeToChar(mode)),
                   decided});
  }
  table2.Print(std::cout);

  // ---- 4. The facade: switch strategies at run time ----------------
  core::AccessControlSystem system(ex.dag);
  (void)system.Grant("S2", "obj", "read");
  (void)system.Grant("S4", "obj", "read");
  (void)system.DenyAccess("S5", "obj", "read");

  std::cout << "\nRuntime strategy switching (no reinstall):\n";
  for (const char* mnemonic : {"D+LP-", "D+GP-", "D+LMP+", "MP-"}) {
    auto strategy = core::ParseStrategy(mnemonic);
    if (!strategy.ok()) continue;
    system.SetStrategy(*strategy);
    auto decision = system.CheckAccessByName("User", "obj", "read");
    if (!decision.ok()) {
      std::cerr << "query failed: " << decision.status().ToString() << "\n";
      return 1;
    }
    std::printf("  strategy %-7s -> User %s read obj\n", mnemonic,
                *decision == acm::Mode::kPositive ? "MAY" : "may NOT");
  }
  return 0;
}
