// Enterprise audit: what changes if the company switches its conflict
// resolution strategy?
//
// Generates a Livelink-scale subject hierarchy (thousands of nested
// groups, ~1600 users), sprinkles explicit grants/denials on a
// document, then materializes the *effective* access control column
// under two strategies and reports exactly which users gain or lose
// access in the migration — the analysis a security administrator
// would run before flipping the switch the paper makes flippable.
//
// Run:  ./enterprise_audit [from-strategy] [to-strategy]
// E.g.: ./enterprise_audit D+LP- D-GP-

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "acm/assignment.h"
#include "core/audit.h"
#include "core/strategy.h"
#include "core/system.h"
#include "util/random.h"
#include "workload/enterprise.h"

namespace {

constexpr uint64_t kSeed = 2007;  // Publication year; any seed works.

}  // namespace

int main(int argc, char** argv) {
  using namespace ucr;  // NOLINT(build/namespaces): example brevity.

  const std::string from_name = argc > 1 ? argv[1] : "D+LP-";
  const std::string to_name = argc > 2 ? argv[2] : "D-GP-";
  auto from = core::ParseStrategy(from_name);
  auto to = core::ParseStrategy(to_name);
  if (!from.ok() || !to.ok()) {
    std::cerr << "usage: enterprise_audit [from-strategy] [to-strategy]\n"
              << "strategies are paper mnemonics, e.g. D+LP- or MGP+\n";
    return 2;
  }

  // A mid-size enterprise (scaled from the paper's Livelink shape so
  // the audit finishes in about a second).
  Random rng(kSeed);
  workload::EnterpriseOptions shape;
  shape.individuals = 800;
  shape.groups = 2600;
  shape.top_level_groups = 30;
  shape.target_edges = 9000;
  auto dag = workload::GenerateEnterpriseHierarchy(shape, rng);
  if (!dag.ok()) {
    std::cerr << "generation failed: " << dag.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Hierarchy: " << dag->node_count() << " subjects, "
            << dag->edge_count() << " memberships, " << dag->Sinks().size()
            << " individual users\n";

  core::AccessControlSystem system(std::move(dag).value());

  // Explicit policy on one sensitive document: 1% of memberships'
  // source groups get a grant or denial (40% denials).
  acm::ExplicitAcm seed_acm;
  const acm::ObjectId doc = seed_acm.InternObject("q3-forecast.xls").value();
  const acm::RightId read = seed_acm.InternRight("read").value();
  acm::RandomAssignmentOptions assign;
  assign.authorization_rate = 0.01;
  assign.negative_fraction = 0.4;
  auto summary = acm::AssignRandomAuthorizations(system.dag(), doc, read,
                                                 assign, rng, &seed_acm);
  if (!summary.ok()) {
    std::cerr << summary.status().ToString() << "\n";
    return 1;
  }
  for (const auto& e : seed_acm.SortedEntries()) {
    const std::string& subject = system.dag().name(e.subject);
    const Status status =
        e.mode == acm::Mode::kPositive
            ? system.Grant(subject, "q3-forecast.xls", "read")
            : system.DenyAccess(subject, "q3-forecast.xls", "read");
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }
  std::cout << "Explicit authorizations: " << summary->subjects_labeled
            << " (" << summary->negatives << " denials)\n\n";

  // Diff the effective column between the two strategies using the
  // library's migration analysis (core/audit.h).
  const acm::ObjectId obj = system.eacm().FindObject("q3-forecast.xls").value();
  const acm::RightId right = system.eacm().FindRight("read").value();
  auto report = core::CompareStrategies(system, obj, right, *from, *to);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    return 1;
  }

  std::printf("Strategy migration %s -> %s on q3-forecast.xls:\n",
              from_name.c_str(), to_name.c_str());
  std::printf("  sinks with read access before: %zu / %zu\n",
              report->granted_before, report->subjects_audited);
  std::printf("  sinks with read access after:  %zu / %zu\n",
              report->granted_after, report->subjects_audited);
  std::printf("  net change: %+lld\n",
              static_cast<long long>(report->granted_after) -
                  static_cast<long long>(report->granted_before));
  std::cout << "  " << report->Summarize(system.dag()) << "\n";

  // And a quick map of the whole policy space for this document.
  auto ranking = core::RankStrategies(system, obj, right);
  if (!ranking.ok()) {
    std::cerr << ranking.status().ToString() << "\n";
    return 1;
  }
  std::printf(
      "\nPolicy-space spread across all 48 strategies: %zu (most "
      "permissive, %s)\n  down to %zu (least permissive, %s) granted "
      "sinks.\n",
      ranking->front().granted,
      ranking->front().strategy.ToMnemonic().c_str(),
      ranking->back().granted,
      ranking->back().strategy.ToMnemonic().c_str());
  return 0;
}
