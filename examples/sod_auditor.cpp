// SoD auditor: does switching the conflict-resolution strategy keep
// the organization compliant?
//
// Builds a payment workflow with a separation-of-duty rule (no one
// both submits and approves invoices) and a Chinese-wall
// conflict-of-interest class over client files, then audits the
// *effective* matrix under several strategies (core/constraints.h,
// the paper's future-work #4) and prints a migration report
// (core/audit.h). The punchline: compliance is a property of the
// strategy, not just of the explicit matrix — flip the paper's
// runtime switch carelessly and an auditor-approved configuration
// starts violating.
//
// Run:  ./sod_auditor

#include <cstdio>
#include <iostream>

#include "core/audit.h"
#include "core/constraints.h"
#include "core/strategy.h"
#include "core/system.h"
#include "graph/io.h"
#include "util/table_printer.h"

int main() {
  using namespace ucr;  // NOLINT(build/namespaces): example brevity.

  auto dag = graph::FromEdgeListText(
      "edge firm payments\n"
      "edge firm compliance\n"
      "edge payments clerks\n"
      "edge payments managers\n"
      "edge clerks carol\n"
      "edge clerks dave\n"
      "edge managers erin\n"
      "edge compliance erin\n"       // Erin wears two hats.
      "edge firm consultants\n"
      "edge consultants frank\n");
  if (!dag.ok()) {
    std::cerr << dag.status().ToString() << "\n";
    return 1;
  }
  core::AccessControlSystem system(std::move(dag).value());
  auto check = [](const Status& status) {
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      std::exit(1);
    }
  };
  // The explicit policy.
  check(system.Grant("clerks", "invoice", "submit"));
  check(system.Grant("managers", "invoice", "approve"));
  check(system.Grant("compliance", "invoice", "approve"));
  check(system.DenyAccess("consultants", "invoice", "submit"));
  check(system.Grant("consultants", "acme-files", "read"));
  check(system.Grant("frank", "globex-files", "read"));
  check(system.DenyAccess("firm", "globex-files", "read"));

  auto perm = [&](const char* object, const char* right) {
    return core::Permission{system.eacm().FindObject(object).value(),
                            system.eacm().FindRight(right).value()};
  };
  core::ConstraintSet constraints;
  check(constraints.AddSod({"submit-vs-approve", perm("invoice", "submit"),
                            perm("invoice", "approve")}));
  check(constraints.AddCoi({"client-wall",
                            {perm("acme-files", "read"),
                             perm("globex-files", "read")},
                            1}));

  std::cout << "Constraint audit under candidate strategies:\n\n";
  TablePrinter table({"strategy", "violations", "who (constraint)"});
  for (const char* mnemonic : {"D-LP-", "D-LP+", "LP-", "D+LP-", "D+P+"}) {
    auto strategy = core::ParseStrategy(mnemonic);
    check(strategy.status());
    auto violations = core::AuditConstraints(system, constraints, *strategy);
    check(violations.status());
    std::string who;
    for (size_t i = 0; i < violations->size() && i < 4; ++i) {
      if (i > 0) who += ", ";
      who += system.dag().name((*violations)[i].subject) + " (" +
             (*violations)[i].constraint_name + ")";
    }
    if (violations->size() > 4) who += ", ...";
    table.AddRow({mnemonic, std::to_string(violations->size()), who});
  }
  table.Print(std::cout);

  // What would the migration the CISO wants actually change?
  const core::Strategy from = core::ParseStrategy("D-LP-").value();
  const core::Strategy to = core::ParseStrategy("D+P+").value();
  auto report = core::CompareStrategies(
      system, system.eacm().FindObject("invoice").value(),
      system.eacm().FindRight("approve").value(), from, to);
  check(report.status());
  std::cout << "\nMigration impact on <invoice, approve>:\n  "
            << report->Summarize(system.dag()) << "\n";

  auto ranking = core::RankStrategies(
      system, system.eacm().FindObject("invoice").value(),
      system.eacm().FindRight("approve").value());
  check(ranking.status());
  std::cout << "\nMost and least permissive strategies for <invoice, "
               "approve> (of all 48):\n";
  std::printf("  most:  %-7s grants %zu subjects\n",
              ranking->front().strategy.ToMnemonic().c_str(),
              ranking->front().granted);
  std::printf("  least: %-7s grants %zu subjects\n",
              ranking->back().strategy.ToMnemonic().c_str(),
              ranking->back().granted);
  return 0;
}
