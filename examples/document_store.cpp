// Document store: mixed subject AND object hierarchies (the paper's
// §6 future-work #2, implemented in core/mixed.h).
//
// Subjects: a small company; objects: a shared drive whose folders
// nest and *cross-link* (a release folder appears under both
// engineering and legal — object hierarchies are DAGs too).
// Authorizations attach to (group, folder) pairs and propagate down
// both hierarchies at once; "most specific" ranks joint specificity
// (subject distance + object distance).
//
// Run:  ./document_store

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/mixed.h"
#include "core/strategy.h"
#include "graph/dag.h"
#include "util/table_printer.h"

int main() {
  using namespace ucr;  // NOLINT(build/namespaces): example brevity.

  // ---- Subject hierarchy -------------------------------------------
  graph::DagBuilder sb;
  auto check = [](const Status& status) {
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      std::exit(1);
    }
  };
  check(sb.AddEdge("company", "engineering"));
  check(sb.AddEdge("company", "legal"));
  check(sb.AddEdge("engineering", "eve"));
  check(sb.AddEdge("legal", "lara"));
  check(sb.AddEdge("engineering", "mallory"));
  check(sb.AddEdge("legal", "mallory"));  // In both departments.
  auto subjects_or = std::move(sb).Build();
  if (!subjects_or.ok()) return 1;
  const graph::Dag subjects = std::move(subjects_or).value();

  // ---- Object hierarchy (folders are a DAG: cross-linked) ----------
  graph::DagBuilder ob;
  check(ob.AddEdge("drive", "eng-docs"));
  check(ob.AddEdge("drive", "legal-docs"));
  check(ob.AddEdge("eng-docs", "release"));
  check(ob.AddEdge("legal-docs", "release"));  // Linked in both trees.
  check(ob.AddEdge("release", "launch-plan.md"));
  check(ob.AddEdge("eng-docs", "design.md"));
  auto objects_or = std::move(ob).Build();
  if (!objects_or.ok()) return 1;
  const graph::Dag objects = std::move(objects_or).value();

  // ---- Pair authorizations -----------------------------------------
  const std::vector<core::MixedAuthorization> auths{
      {subjects.FindNode("engineering"), objects.FindNode("eng-docs"),
       acm::Mode::kPositive},
      {subjects.FindNode("legal"), objects.FindNode("legal-docs"),
       acm::Mode::kPositive},
      {subjects.FindNode("company"), objects.FindNode("release"),
       acm::Mode::kNegative},  // Releases frozen company-wide...
      {subjects.FindNode("legal"), objects.FindNode("release"),
       acm::Mode::kPositive},  // ...except for legal review.
  };

  std::cout
      << "Mixed-hierarchy resolution: authorization distance = subject "
         "hops + object hops.\n\n";

  const struct {
    const char* who;
    const char* what;
  } queries[] = {
      {"eve", "design.md"},       {"eve", "launch-plan.md"},
      {"lara", "launch-plan.md"}, {"mallory", "launch-plan.md"},
  };

  TablePrinter table({"subject", "object", "D+LP-", "D+GP-", "allRights"});
  for (const auto& q : queries) {
    const graph::NodeId s = subjects.FindNode(q.who);
    const graph::NodeId o = objects.FindNode(q.what);
    auto bag = core::MixedPropagate(subjects, objects, auths, s, o);
    if (!bag.ok()) {
      std::cerr << bag.status().ToString() << "\n";
      return 1;
    }
    std::string row[2];
    for (int i = 0; i < 2; ++i) {
      auto strategy = core::ParseStrategy(i == 0 ? "D+LP-" : "D+GP-");
      auto mode = core::Resolve(*bag, *strategy);
      row[i] = std::string(1, acm::ModeToChar(mode));
    }
    table.AddRow({q.who, q.what, row[0], row[1], bag->ToString()});
  }
  table.Print(std::cout);

  std::cout
      << "\nReading the launch-plan row for lara: legal's '+' on the "
         "release folder is\n2 hops away (legal->lara, "
         "release->launch-plan.md), the company-wide '-' is\n3 hops — so "
         "most-specific grants her review access while the same data "
         "under\nmost-general (D+GP-) answers with the farthest "
         "authorization instead.\n";
  return 0;
}
