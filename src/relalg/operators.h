#ifndef UCR_RELALG_OPERATORS_H_
#define UCR_RELALG_OPERATORS_H_

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "relalg/relation.h"
#include "util/status.h"

namespace ucr::relalg {

/// Row predicate used by Select; sees the input relation's row layout.
using RowPredicate = std::function<bool(const Row&)>;

/// σ — rows of `input` satisfying `predicate` (duplicates preserved).
Relation Select(const Relation& input, const RowPredicate& predicate);

/// σ attr = value. Fails if `attribute` is absent.
StatusOr<Relation> SelectEquals(const Relation& input,
                                std::string_view attribute,
                                const Value& value);

/// σ attr <> value.
StatusOr<Relation> SelectNotEquals(const Relation& input,
                                   std::string_view attribute,
                                   const Value& value);

/// Π — bag projection onto `attributes` (order given; duplicates kept,
/// as in the paper's Π_mode on allRights which may yield {+,+,-}).
StatusOr<Relation> Project(const Relation& input,
                           const std::vector<std::string>& attributes);

/// Renames attribute `from` to `to`. Fails if `from` is absent or `to`
/// already exists.
StatusOr<Relation> Rename(const Relation& input, std::string_view from,
                          std::string_view to);

/// ⋈ — natural join on all shared attribute names (hash join; bag
/// semantics: result multiplicity is the product of input
/// multiplicities). With no shared attributes this is the cartesian
/// product.
Relation NaturalJoin(const Relation& left, const Relation& right);

/// ∪ — bag union (concatenation). Fails on schema mismatch.
StatusOr<Relation> Union(const Relation& left, const Relation& right);

/// − over single bags with *set* semantics on the right side: keeps
/// rows of `left` that do not appear anywhere in `right` (every
/// occurrence removed). This matches the paper's root computation
/// (Fig. 5 line 4), where the operands are logically sets of subjects.
StatusOr<Relation> Difference(const Relation& left, const Relation& right);

/// Collapses duplicate rows (bag -> set).
Relation Distinct(const Relation& input);

/// Appends a new attribute `name` holding the constant `value` on
/// every row (the generalized-projection constant column the paper's
/// Fig. 5 uses for the iteration counter `i`). Fails if `name`
/// already exists.
StatusOr<Relation> ExtendConstant(const Relation& input,
                                  std::string_view name, const Value& value);

/// COUNT(*) — bag cardinality (the paper's Π_count()).
inline size_t Count(const Relation& input) { return input.size(); }

/// Minimum of an int attribute; nullopt when empty.
StatusOr<std::optional<int64_t>> MinInt(const Relation& input,
                                        std::string_view attribute);

/// Maximum of an int attribute; nullopt when empty.
StatusOr<std::optional<int64_t>> MaxInt(const Relation& input,
                                        std::string_view attribute);

}  // namespace ucr::relalg

#endif  // UCR_RELALG_OPERATORS_H_
