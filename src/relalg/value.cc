#include "relalg/value.h"

#include <functional>

namespace ucr::relalg {

std::string Value::ToString() const {
  if (is_int()) return std::to_string(AsInt());
  return AsString();
}

size_t Value::Hash() const {
  if (is_int()) {
    // Distinguish int 1 from string "1" by salting the type.
    return std::hash<int64_t>{}(AsInt()) * 0x9E3779B97F4A7C15ull + 1;
  }
  return std::hash<std::string>{}(AsString()) * 0x9E3779B97F4A7C15ull + 2;
}

bool Value::operator<(const Value& other) const {
  if (type() != other.type()) return type() < other.type();
  if (is_int()) return AsInt() < other.AsInt();
  return AsString() < other.AsString();
}

}  // namespace ucr::relalg
