#ifndef UCR_RELALG_VALUE_H_
#define UCR_RELALG_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace ucr::relalg {

/// Attribute type of a relational column.
enum class ValueType : uint8_t {
  kInt = 0,
  kString = 1,
};

/// \brief A single attribute value: 64-bit integer or string.
///
/// Two types are all the paper's relations need (distances are
/// integers; subjects, objects, rights, and modes are symbols). The
/// type is a thin wrapper over std::variant with hashing and printing,
/// so relations can be joined and displayed generically.
class Value {
 public:
  Value() : data_(int64_t{0}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  ValueType type() const {
    return std::holds_alternative<int64_t>(data_) ? ValueType::kInt
                                                  : ValueType::kString;
  }

  bool is_int() const { return type() == ValueType::kInt; }
  bool is_string() const { return type() == ValueType::kString; }

  /// Requires is_int().
  int64_t AsInt() const { return std::get<int64_t>(data_); }

  /// Requires is_string().
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Renders the value for table output ("3", "User", ...).
  std::string ToString() const;

  /// Stable hash, suitable for hash joins.
  size_t Hash() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

  /// Total order: ints before strings, then natural order within type.
  /// Used only for deterministic output ordering, not semantics.
  bool operator<(const Value& other) const;

 private:
  std::variant<int64_t, std::string> data_;
};

}  // namespace ucr::relalg

#endif  // UCR_RELALG_VALUE_H_
