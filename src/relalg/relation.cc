#include "relalg/relation.h"

#include <algorithm>

#include "util/table_printer.h"

namespace ucr::relalg {

Schema::Schema(std::vector<Attribute> attributes)
    : attributes_(std::move(attributes)) {}

size_t Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return npos;
}

bool Schema::operator==(const Schema& other) const {
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name != other.attributes_[i].name ||
        attributes_[i].type != other.attributes_[i].type) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> Schema::CommonAttributes(const Schema& other) const {
  std::vector<std::string> out;
  for (const auto& attr : attributes_) {
    if (other.IndexOf(attr.name) != npos) out.push_back(attr.name);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += attributes_[i].type == ValueType::kInt ? ":int" : ":str";
  }
  return out;
}

Status Relation::Append(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        "arity mismatch: row has " + std::to_string(row.size()) +
        " values, schema has " + std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].type() != schema_.attribute(i).type) {
      return Status::InvalidArgument("type mismatch in attribute '" +
                                     schema_.attribute(i).name + "'");
    }
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

void Relation::SortRows() {
  std::sort(rows_.begin(), rows_.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      if (a[i] < b[i]) return true;
      if (b[i] < a[i]) return false;
    }
    return a.size() < b.size();
  });
}

std::string Relation::ToString() const {
  std::vector<std::string> headers;
  for (size_t i = 0; i < schema_.size(); ++i) {
    headers.push_back(schema_.attribute(i).name);
  }
  TablePrinter printer(std::move(headers));
  for (const auto& r : rows_) {
    std::vector<std::string> cells;
    cells.reserve(r.size());
    for (const auto& v : r) cells.push_back(v.ToString());
    printer.AddRow(std::move(cells));
  }
  return printer.ToString();
}

}  // namespace ucr::relalg
