#include "relalg/operators.h"

#include <algorithm>
#include <unordered_map>

namespace ucr::relalg {

namespace {

size_t HashRowKey(const Row& row, const std::vector<size_t>& indices) {
  size_t h = 0x9E3779B97F4A7C15ull;
  for (size_t i : indices) {
    h = h * 1099511628211ull ^ row[i].Hash();
  }
  return h;
}

bool KeysEqual(const Row& a, const std::vector<size_t>& ai, const Row& b,
               const std::vector<size_t>& bi) {
  for (size_t k = 0; k < ai.size(); ++k) {
    if (!(a[ai[k]] == b[bi[k]])) return false;
  }
  return true;
}

StatusOr<size_t> RequireAttribute(const Relation& rel,
                                  std::string_view attribute) {
  const size_t idx = rel.schema().IndexOf(attribute);
  if (idx == Schema::npos) {
    return Status::InvalidArgument("unknown attribute '" +
                                   std::string(attribute) + "' in schema [" +
                                   rel.schema().ToString() + "]");
  }
  return idx;
}

}  // namespace

Relation Select(const Relation& input, const RowPredicate& predicate) {
  Relation out(input.schema());
  for (const auto& r : input.rows()) {
    if (predicate(r)) out.AppendUnchecked(r);
  }
  return out;
}

StatusOr<Relation> SelectEquals(const Relation& input,
                                std::string_view attribute,
                                const Value& value) {
  UCR_ASSIGN_OR_RETURN(const size_t idx, RequireAttribute(input, attribute));
  return Select(input, [idx, &value](const Row& r) { return r[idx] == value; });
}

StatusOr<Relation> SelectNotEquals(const Relation& input,
                                   std::string_view attribute,
                                   const Value& value) {
  UCR_ASSIGN_OR_RETURN(const size_t idx, RequireAttribute(input, attribute));
  return Select(input,
                [idx, &value](const Row& r) { return !(r[idx] == value); });
}

StatusOr<Relation> Project(const Relation& input,
                           const std::vector<std::string>& attributes) {
  std::vector<size_t> indices;
  std::vector<Schema::Attribute> out_attrs;
  for (const auto& name : attributes) {
    UCR_ASSIGN_OR_RETURN(const size_t idx, RequireAttribute(input, name));
    indices.push_back(idx);
    out_attrs.push_back(input.schema().attribute(idx));
  }
  Relation out{Schema(std::move(out_attrs))};
  for (const auto& r : input.rows()) {
    Row projected;
    projected.reserve(indices.size());
    for (size_t idx : indices) projected.push_back(r[idx]);
    out.AppendUnchecked(std::move(projected));
  }
  return out;
}

StatusOr<Relation> Rename(const Relation& input, std::string_view from,
                          std::string_view to) {
  UCR_ASSIGN_OR_RETURN(const size_t idx, RequireAttribute(input, from));
  if (input.schema().IndexOf(to) != Schema::npos) {
    return Status::InvalidArgument("attribute '" + std::string(to) +
                                   "' already exists");
  }
  std::vector<Schema::Attribute> attrs;
  for (size_t i = 0; i < input.schema().size(); ++i) {
    attrs.push_back(input.schema().attribute(i));
  }
  attrs[idx].name = std::string(to);
  Relation out{Schema(std::move(attrs))};
  for (const auto& r : input.rows()) out.AppendUnchecked(r);
  return out;
}

Relation NaturalJoin(const Relation& left, const Relation& right) {
  const std::vector<std::string> common =
      left.schema().CommonAttributes(right.schema());

  std::vector<size_t> left_keys;
  std::vector<size_t> right_keys;
  for (const auto& name : common) {
    left_keys.push_back(left.schema().IndexOf(name));
    right_keys.push_back(right.schema().IndexOf(name));
  }

  // Output schema: all of left, then right's non-shared attributes.
  std::vector<Schema::Attribute> attrs;
  std::vector<size_t> right_extra;
  for (size_t i = 0; i < left.schema().size(); ++i) {
    attrs.push_back(left.schema().attribute(i));
  }
  for (size_t i = 0; i < right.schema().size(); ++i) {
    if (left.schema().IndexOf(right.schema().attribute(i).name) ==
        Schema::npos) {
      attrs.push_back(right.schema().attribute(i));
      right_extra.push_back(i);
    }
  }
  Relation out{Schema(std::move(attrs))};

  // Hash join: build on the right input.
  std::unordered_map<size_t, std::vector<size_t>> buckets;
  for (size_t i = 0; i < right.size(); ++i) {
    buckets[HashRowKey(right.row(i), right_keys)].push_back(i);
  }
  for (const auto& lrow : left.rows()) {
    auto it = buckets.find(HashRowKey(lrow, left_keys));
    if (it == buckets.end()) continue;
    for (size_t ri : it->second) {
      const Row& rrow = right.row(ri);
      if (!KeysEqual(lrow, left_keys, rrow, right_keys)) continue;
      Row joined = lrow;
      for (size_t i : right_extra) joined.push_back(rrow[i]);
      out.AppendUnchecked(std::move(joined));
    }
  }
  return out;
}

StatusOr<Relation> Union(const Relation& left, const Relation& right) {
  if (!(left.schema() == right.schema())) {
    return Status::InvalidArgument("union schema mismatch: [" +
                                   left.schema().ToString() + "] vs [" +
                                   right.schema().ToString() + "]");
  }
  Relation out(left.schema());
  for (const auto& r : left.rows()) out.AppendUnchecked(r);
  for (const auto& r : right.rows()) out.AppendUnchecked(r);
  return out;
}

StatusOr<Relation> Difference(const Relation& left, const Relation& right) {
  if (!(left.schema() == right.schema())) {
    return Status::InvalidArgument("difference schema mismatch: [" +
                                   left.schema().ToString() + "] vs [" +
                                   right.schema().ToString() + "]");
  }
  std::vector<size_t> all_cols(left.schema().size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;

  std::unordered_map<size_t, std::vector<size_t>> buckets;
  for (size_t i = 0; i < right.size(); ++i) {
    buckets[HashRowKey(right.row(i), all_cols)].push_back(i);
  }
  auto present_in_right = [&](const Row& r) {
    auto it = buckets.find(HashRowKey(r, all_cols));
    if (it == buckets.end()) return false;
    for (size_t ri : it->second) {
      if (KeysEqual(r, all_cols, right.row(ri), all_cols)) return true;
    }
    return false;
  };

  Relation out(left.schema());
  for (const auto& r : left.rows()) {
    if (!present_in_right(r)) out.AppendUnchecked(r);
  }
  return out;
}

Relation Distinct(const Relation& input) {
  std::vector<size_t> all_cols(input.schema().size());
  for (size_t i = 0; i < all_cols.size(); ++i) all_cols[i] = i;

  Relation out(input.schema());
  std::unordered_map<size_t, std::vector<size_t>> emitted;
  for (const auto& r : input.rows()) {
    const size_t h = HashRowKey(r, all_cols);
    auto& bucket = emitted[h];
    bool duplicate = false;
    for (size_t oi : bucket) {
      if (KeysEqual(r, all_cols, out.row(oi), all_cols)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      bucket.push_back(out.size());
      out.AppendUnchecked(r);
    }
  }
  return out;
}

StatusOr<Relation> ExtendConstant(const Relation& input,
                                  std::string_view name, const Value& value) {
  if (input.schema().IndexOf(name) != Schema::npos) {
    return Status::InvalidArgument("attribute '" + std::string(name) +
                                   "' already exists");
  }
  std::vector<Schema::Attribute> attrs;
  for (size_t i = 0; i < input.schema().size(); ++i) {
    attrs.push_back(input.schema().attribute(i));
  }
  attrs.push_back(Schema::Attribute{std::string(name), value.type()});
  Relation out{Schema(std::move(attrs))};
  for (const auto& r : input.rows()) {
    Row extended = r;
    extended.push_back(value);
    out.AppendUnchecked(std::move(extended));
  }
  return out;
}

namespace {

StatusOr<std::optional<int64_t>> ExtremeInt(const Relation& input,
                                            std::string_view attribute,
                                            bool want_min) {
  UCR_ASSIGN_OR_RETURN(const size_t idx, RequireAttribute(input, attribute));
  if (input.schema().attribute(idx).type != ValueType::kInt) {
    return Status::InvalidArgument("attribute '" + std::string(attribute) +
                                   "' is not an int");
  }
  std::optional<int64_t> best;
  for (const auto& r : input.rows()) {
    const int64_t v = r[idx].AsInt();
    if (!best.has_value() || (want_min ? v < *best : v > *best)) best = v;
  }
  return best;
}

}  // namespace

StatusOr<std::optional<int64_t>> MinInt(const Relation& input,
                                        std::string_view attribute) {
  return ExtremeInt(input, attribute, /*want_min=*/true);
}

StatusOr<std::optional<int64_t>> MaxInt(const Relation& input,
                                        std::string_view attribute) {
  return ExtremeInt(input, attribute, /*want_min=*/false);
}

}  // namespace ucr::relalg
