#ifndef UCR_RELALG_RELATION_H_
#define UCR_RELALG_RELATION_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "relalg/value.h"
#include "util/status.h"

namespace ucr::relalg {

/// A tuple: one value per schema attribute, in schema order.
using Row = std::vector<Value>;

/// \brief Ordered list of named, typed attributes.
class Schema {
 public:
  struct Attribute {
    std::string name;
    ValueType type;
  };

  Schema() = default;
  explicit Schema(std::vector<Attribute> attributes);

  size_t size() const { return attributes_.size(); }
  const Attribute& attribute(size_t i) const { return attributes_[i]; }

  /// Index of the attribute named `name`, or npos.
  static constexpr size_t npos = static_cast<size_t>(-1);
  size_t IndexOf(std::string_view name) const;

  bool operator==(const Schema& other) const;

  /// Attribute names shared with `other`, in this schema's order.
  std::vector<std::string> CommonAttributes(const Schema& other) const;

  /// "name:type, name:type, ..." for diagnostics.
  std::string ToString() const;

 private:
  std::vector<Attribute> attributes_;
};

/// \brief A relation with *bag* (multiset) semantics.
///
/// The paper's `allRights` relation is a bag: after the default rule
/// rewrites 'd' tuples (Fig. 4 line 3) the relation may contain equal
/// tuples, and the majority policy counts them multiply (the paper's
/// own D-MP- trace reports c2 = 4 on Table 1, which is only reachable
/// with duplicate counting). All operators below therefore preserve
/// duplicates; `Distinct()` collapses them on demand.
///
/// The engine is deliberately small and row-oriented: it exists to
/// transcribe the paper's Figs. 4–5 operator-for-operator as the
/// reference implementation, not to compete with the native one.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Appends a tuple. Fails if arity or types mismatch the schema.
  Status Append(Row row);

  /// Appends without validation; callers must guarantee conformance.
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  /// In-place update: rows satisfying `predicate` get `column` set to
  /// `value` (the paper's `update allRights set mode=dRule where ...`).
  /// Returns the number of rows updated. `column` must exist and the
  /// value type must match.
  template <typename Predicate>
  size_t Update(std::string_view column, const Value& value,
                Predicate predicate) {
    const size_t idx = schema_.IndexOf(column);
    size_t updated = 0;
    for (auto& r : rows_) {
      if (predicate(r)) {
        r[idx] = value;
        ++updated;
      }
    }
    return updated;
  }

  /// Sorts rows lexicographically — output determinism for tests and
  /// printing only; relations are semantically unordered.
  void SortRows();

  /// Renders an aligned ASCII table of the relation.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace ucr::relalg

#endif  // UCR_RELALG_RELATION_H_
