#ifndef UCR_ACM_ASSIGNMENT_H_
#define UCR_ACM_ASSIGNMENT_H_

#include <cstddef>

#include "acm/acm.h"
#include "graph/dag.h"
#include "util/random.h"
#include "util/status.h"

namespace ucr::acm {

/// Options for `AssignRandomAuthorizations`.
struct RandomAssignmentOptions {
  /// Fraction of the graph's *edges* to select; the source node of
  /// each selected edge receives an explicit authorization. Sampling
  /// edges rather than nodes biases selection toward subjects with
  /// many members ("choosing subjects proportionally to the number of
  /// members", paper §4). Range (0, 1].
  double authorization_rate = 0.007;  // The paper's Livelink setting: 0.7%.

  /// Fraction of the assigned authorizations that are negative. The
  /// paper's Fig. 7(a) uses 0.01, 0.5, and 1.0 for the Dominance()
  /// placement-sensitivity study.
  double negative_fraction = 0.5;

  /// When true, the sink itself may receive an explicit authorization
  /// (if a selected edge originates at it — impossible for true sinks,
  /// kept for forward compatibility with node-sampled policies).
  bool allow_sink_labels = true;
};

/// Result summary of a random assignment.
struct AssignmentSummary {
  size_t edges_selected = 0;   ///< Edges drawn (before source dedup).
  size_t subjects_labeled = 0; ///< Distinct subjects assigned a mode.
  size_t negatives = 0;        ///< How many of those are denials.
};

/// \brief Populates `eacm` for one (object, right) with random explicit
/// authorizations following the paper's §4 protocol: draw
/// `authorization_rate * edge_count` edges without replacement and
/// label each edge's source node, skipping nodes labeled by an earlier
/// draw (at most one authorization per subject-object-right).
///
/// Negative modes are assigned to the first
/// `round(negative_fraction * labeled)` drawn subjects after a
/// deterministic shuffle, so the negative count is exact rather than
/// binomial — Fig. 7(a) requires exact 1% / 50% / 100% placements.
StatusOr<AssignmentSummary> AssignRandomAuthorizations(
    const graph::Dag& dag, ObjectId object, RightId right,
    const RandomAssignmentOptions& options, Random& rng, ExplicitAcm* eacm);

}  // namespace ucr::acm

#endif  // UCR_ACM_ASSIGNMENT_H_
