#ifndef UCR_ACM_ACM_H_
#define UCR_ACM_ACM_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "acm/mode.h"
#include "graph/dag.h"
#include "graph/reachability.h"
#include "util/status.h"

namespace ucr::acm {

/// Interned identifier of an object (column of the matrix).
using ObjectId = uint16_t;
/// Interned identifier of a right/operation (read, write, ...).
using RightId = uint16_t;

/// \brief The *explicit* access control matrix (EACM, paper §2).
///
/// Stores only explicitly granted/denied authorizations, keyed by
/// ⟨subject, object, right⟩. The matrix is sparse by design: derived
/// (effective) authorizations are computed on demand by the conflict
/// resolution algorithms in `ucr::core`, never stored here.
///
/// The paper assumes at most one explicit authorization per triple
/// ("duplicates are meaningless and contradicting authorizations can
/// be assumed to be disallowed", §3.3); `Set` therefore *fails* if the
/// triple already holds the opposite mode and is a no-op for an equal
/// one. Use `Overwrite` for administrative updates.
///
/// Object and right names are interned to dense 16-bit ids, capping a
/// matrix at 65,536 objects and rights each (subjects are 32-bit).
/// Every mutation bumps `epoch()`, which resolution caches use for
/// invalidation.
class ExplicitAcm {
 public:
  ExplicitAcm() = default;

  /// Interns an object name (idempotent). Fails when the 16-bit id
  /// space is exhausted.
  StatusOr<ObjectId> InternObject(std::string_view name);

  /// Interns a right name (idempotent).
  StatusOr<RightId> InternRight(std::string_view name);

  /// Id of an already-interned object, or NotFound.
  StatusOr<ObjectId> FindObject(std::string_view name) const;

  /// Id of an already-interned right, or NotFound.
  StatusOr<RightId> FindRight(std::string_view name) const;

  const std::string& object_name(ObjectId o) const { return objects_[o]; }
  const std::string& right_name(RightId r) const { return rights_[r]; }
  size_t object_count() const { return objects_.size(); }
  size_t right_count() const { return rights_.size(); }

  /// Records ⟨subject, object, right⟩ = mode. No-op if the identical
  /// authorization exists; fails with FailedPrecondition if the triple
  /// holds the opposite mode (contradictions are disallowed).
  Status Set(graph::NodeId subject, ObjectId object, RightId right, Mode mode);

  /// Unconditionally (re)writes the triple's mode.
  void Overwrite(graph::NodeId subject, ObjectId object, RightId right,
                 Mode mode);

  /// Removes an explicit authorization. Returns false if absent.
  bool Erase(graph::NodeId subject, ObjectId object, RightId right);

  /// The explicit mode of a triple, if any.
  std::optional<Mode> Get(graph::NodeId subject, ObjectId object,
                          RightId right) const;

  /// Number of explicit authorizations stored.
  size_t size() const { return entries_.size(); }

  /// Monotonic counter bumped by every successful mutation.
  uint64_t epoch() const { return epoch_; }

  /// Monotonic counter bumped only by mutations touching this
  /// (object, right) column. Lets caches of derived decisions survive
  /// updates to unrelated columns (finer than the paper's wholesale
  /// invalidation concern in §5). A column never mutated reports 0.
  uint64_t ColumnEpoch(ObjectId object, RightId right) const;

  /// \brief Dense per-subject label array for one (object, right) pair.
  ///
  /// `labels[v]` is the explicit mode of subject `v`, or nullopt. This
  /// is the "appropriately extracted subset of the matrix" the paper's
  /// §2 says a practical system feeds to the resolution algorithm.
  /// `subject_count` is the node count of the subject hierarchy.
  std::vector<std::optional<Mode>> ExtractLabels(size_t subject_count,
                                                 ObjectId object,
                                                 RightId right) const;

  /// One explicit authorization of a (object, right) column.
  struct ColumnEntry {
    graph::NodeId subject;
    Mode mode;
  };

  /// \brief Sparse view of one (object, right) column: exactly the
  /// explicit entries, one per labeled subject, in insertion order.
  ///
  /// This is the allocation-free counterpart of `ExtractLabels` for
  /// the hot path (DESIGN.md §7): iterating it costs O(column size)
  /// instead of materializing a node-count-sized dense vector.
  /// Subjects are unique within a column; entries may reference
  /// subjects outside a smaller hierarchy — consumers apply the same
  /// `subject < subject_count` guard `ExtractLabels` does. The span is
  /// invalidated by any mutation of the matrix.
  std::span<const ColumnEntry> Column(ObjectId object, RightId right) const;

  /// Counts explicit '+' and '-' authorizations for one (object, right).
  struct LabelCounts {
    size_t positive = 0;
    size_t negative = 0;
  };
  LabelCounts CountLabels(ObjectId object, RightId right) const;

  /// One stored authorization, for iteration and serialization.
  struct Entry {
    graph::NodeId subject;
    ObjectId object;
    RightId right;
    Mode mode;
  };

  /// All entries, sorted by (subject, object, right) for determinism.
  std::vector<Entry> SortedEntries() const;

  // -- Reachability-index row views (DESIGN.md §12) ------------------
  //
  // The reachability index folds subjects whose *entire* explicit rows
  // match into one supernode class. The graph layer treats rows as
  // opaque sorted uint64 keys; this is the packing.

  /// Packs one ⟨object, right, mode⟩ into the opaque row key the
  /// reachability index compares. Mode sits in the low bit so a row
  /// stays sorted by (object, right) with the grant/deny distinction
  /// folded in.
  static uint64_t PackReachEntry(ObjectId object, RightId right, Mode mode) {
    return (static_cast<uint64_t>(object) << 17) |
           (static_cast<uint64_t>(right) << 1) | static_cast<uint64_t>(mode);
  }

  /// The explicit mode of column (object, right) within a packed row,
  /// if present. O(log row) — rows are sorted and at most two keys
  /// (one per mode) can match a column prefix, but contradictions are
  /// disallowed so at most one exists.
  static std::optional<Mode> ReachRowMode(std::span<const uint64_t> row,
                                          ObjectId object, RightId right);

  /// Packed row of one subject (sorted ascending; empty if unlabeled).
  std::vector<uint64_t> ReachRow(graph::NodeId subject) const;

  /// Packed rows of every labeled subject, one matrix scan. Order is
  /// unspecified (index construction does not depend on it).
  std::vector<graph::ReachLabeledRow> ReachRows() const;

  /// Packed rows for exactly `subjects` (including now-empty ones, so
  /// incremental index rebuilds observe un-labelings). One matrix scan
  /// regardless of the subject count.
  std::vector<graph::ReachLabeledRow> ReachRowsFor(
      std::span<const graph::NodeId> subjects) const;

 private:
  static uint64_t Key(graph::NodeId s, ObjectId o, RightId r) {
    return (static_cast<uint64_t>(s) << 32) |
           (static_cast<uint64_t>(o) << 16) | static_cast<uint64_t>(r);
  }

  std::vector<std::string> objects_;
  std::vector<std::string> rights_;
  std::unordered_map<std::string, ObjectId> object_ids_;
  std::unordered_map<std::string, RightId> right_ids_;
  static uint32_t ColumnKey(ObjectId o, RightId r) {
    return (static_cast<uint32_t>(o) << 16) | static_cast<uint32_t>(r);
  }
  void BumpEpoch(ObjectId object, RightId right) {
    ++epoch_;
    column_epochs_[ColumnKey(object, right)] = epoch_;
  }

  std::unordered_map<uint64_t, Mode> entries_;
  std::unordered_map<uint32_t, uint64_t> column_epochs_;
  /// Per-column view of entries_, so per-query label extraction costs
  /// O(column size) instead of O(matrix size). Erased subjects are
  /// compacted lazily on extraction.
  std::unordered_map<uint32_t, std::vector<ColumnEntry>> column_index_;
  uint64_t epoch_ = 0;
};

/// \brief Serializes the matrix as text, one `auth <subject-name>
/// <object> <right> <+|->` line per entry (sorted, deterministic).
/// Subject names come from `dag`.
std::string ToText(const ExplicitAcm& eacm, const graph::Dag& dag);

/// Parses the text format produced by `ToText`; subjects are resolved
/// against `dag` by name.
StatusOr<ExplicitAcm> FromText(std::string_view text, const graph::Dag& dag);

/// \brief Appends the matrix in the binary snapshot layout: object and
/// right name tables *in intern order* (so every interned id survives a
/// save/load cycle byte-for-byte — cached column epochs, packed reach
/// rows, and WAL replay all key on those ids), then the entries sorted
/// by (subject, object, right).
void AppendAcmBinary(const ExplicitAcm& eacm, std::string* out);

/// \brief Parses `AppendAcmBinary` output. `subject_count` is the node
/// count of the subject hierarchy the matrix accompanies; entries
/// referencing subjects at or beyond it — like out-of-range object or
/// right ids, contradictions, or truncation — are `kCorruption`, never
/// UB. The bytes are untrusted (fuzzed under asan-ubsan).
StatusOr<ExplicitAcm> AcmFromBinary(std::string_view bytes,
                                    size_t subject_count);

}  // namespace ucr::acm

#endif  // UCR_ACM_ACM_H_
