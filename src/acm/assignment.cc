#include "acm/assignment.h"

#include <cmath>
#include <vector>

namespace ucr::acm {

StatusOr<AssignmentSummary> AssignRandomAuthorizations(
    const graph::Dag& dag, ObjectId object, RightId right,
    const RandomAssignmentOptions& options, Random& rng, ExplicitAcm* eacm) {
  if (eacm == nullptr) {
    return Status::InvalidArgument("eacm must not be null");
  }
  if (options.authorization_rate <= 0.0 || options.authorization_rate > 1.0) {
    return Status::InvalidArgument("authorization_rate must be in (0, 1]");
  }
  if (options.negative_fraction < 0.0 || options.negative_fraction > 1.0) {
    return Status::InvalidArgument("negative_fraction must be in [0, 1]");
  }
  const size_t edge_count = dag.edge_count();
  if (edge_count == 0) {
    return Status::FailedPrecondition("graph has no edges to sample");
  }

  // Materialize edge sources in a deterministic order (by parent id,
  // then child position) and sample edge indices without replacement.
  std::vector<graph::NodeId> edge_sources;
  edge_sources.reserve(edge_count);
  for (graph::NodeId v = 0; v < dag.node_count(); ++v) {
    for (size_t i = 0; i < dag.children(v).size(); ++i) {
      edge_sources.push_back(v);
    }
  }

  size_t to_draw = static_cast<size_t>(std::llround(
      options.authorization_rate * static_cast<double>(edge_count)));
  if (to_draw == 0) to_draw = 1;  // Rates below one edge still label one.
  to_draw = std::min(to_draw, edge_count);

  AssignmentSummary summary;
  summary.edges_selected = to_draw;

  std::vector<graph::NodeId> labeled;
  std::vector<char> seen(dag.node_count(), 0);
  for (size_t idx : rng.SampleWithoutReplacement(edge_count, to_draw)) {
    const graph::NodeId subject = edge_sources[idx];
    if (seen[subject]) continue;  // One authorization per subject.
    if (!options.allow_sink_labels && dag.is_sink(subject)) continue;
    seen[subject] = 1;
    labeled.push_back(subject);
  }

  // Exact negative count over the (already random-ordered) subjects.
  const size_t negatives = static_cast<size_t>(std::llround(
      options.negative_fraction * static_cast<double>(labeled.size())));
  for (size_t i = 0; i < labeled.size(); ++i) {
    const Mode mode = i < negatives ? Mode::kNegative : Mode::kPositive;
    UCR_RETURN_IF_ERROR(eacm->Set(labeled[i], object, right, mode));
  }
  summary.subjects_labeled = labeled.size();
  summary.negatives = negatives;
  return summary;
}

}  // namespace ucr::acm
