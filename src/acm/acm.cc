#include "acm/acm.h"

#include <algorithm>
#include <sstream>

#include "obs/audit_log.h"
#include "obs/metrics.h"
#include "util/binio.h"
#include "util/string_util.h"

namespace ucr::acm {

namespace {

/// Counts successful explicit-matrix mutations — the events that bump
/// column epochs and therefore lapse cached derived decisions.
/// Exposed so operators can correlate cache invalidation spikes with
/// policy churn (DESIGN.md §8).
void CountMutation() {
  if constexpr (obs::kEnabled) {
    static obs::Counter& mutations = obs::Registry::Global().GetCounter(
        "ucr_eacm_mutations_total",
        "Explicit ACM mutations (grants, denies, revocations)");
    mutations.Inc();
  }
}

/// Audit trail for column-epoch advances (DESIGN.md §9): every matrix
/// edit lapses the column's cached derived decisions, and the trail
/// records which column and the epoch it reached.
[[gnu::noinline, gnu::cold]] void AuditEpochBump(graph::NodeId subject,
                                                 ObjectId object,
                                                 RightId right,
                                                 uint64_t epoch) {
  obs::AuditEvent event;
  event.type = obs::AuditEventType::kEpochBump;
  event.has_ids = true;
  event.subject = subject;
  event.object = object;
  event.right = right;
  event.value = epoch;
  obs::AuditLog::Global().Emit(event);
}

template <typename IdType>
StatusOr<IdType> Intern(std::string_view name, std::vector<std::string>& names,
                        std::unordered_map<std::string, IdType>& ids,
                        const char* kind) {
  auto it = ids.find(std::string(name));
  if (it != ids.end()) return it->second;
  if (names.size() > static_cast<size_t>(UINT16_MAX)) {
    return Status::OutOfRange(std::string(kind) + " id space exhausted");
  }
  const IdType id = static_cast<IdType>(names.size());
  names.emplace_back(name);
  ids.emplace(std::string(name), id);
  return id;
}

}  // namespace

StatusOr<ObjectId> ExplicitAcm::InternObject(std::string_view name) {
  return Intern<ObjectId>(name, objects_, object_ids_, "object");
}

StatusOr<RightId> ExplicitAcm::InternRight(std::string_view name) {
  return Intern<RightId>(name, rights_, right_ids_, "right");
}

StatusOr<ObjectId> ExplicitAcm::FindObject(std::string_view name) const {
  auto it = object_ids_.find(std::string(name));
  if (it == object_ids_.end()) {
    return Status::NotFound("object '" + std::string(name) + "'");
  }
  return it->second;
}

StatusOr<RightId> ExplicitAcm::FindRight(std::string_view name) const {
  auto it = right_ids_.find(std::string(name));
  if (it == right_ids_.end()) {
    return Status::NotFound("right '" + std::string(name) + "'");
  }
  return it->second;
}

Status ExplicitAcm::Set(graph::NodeId subject, ObjectId object, RightId right,
                        Mode mode) {
  auto [it, inserted] = entries_.try_emplace(Key(subject, object, right), mode);
  if (!inserted) {
    if (it->second == mode) return Status::OK();  // Idempotent.
    return Status::FailedPrecondition(
        "contradicting explicit authorization for subject " +
        std::to_string(subject));
  }
  column_index_[ColumnKey(object, right)].push_back(
      ColumnEntry{subject, mode});
  BumpEpoch(object, right);
  CountMutation();
  if (obs::AuditLog::Enabled()) {
    AuditEpochBump(subject, object, right, ColumnEpoch(object, right));
  }
  return Status::OK();
}

void ExplicitAcm::Overwrite(graph::NodeId subject, ObjectId object,
                            RightId right, Mode mode) {
  entries_[Key(subject, object, right)] = mode;
  auto& column = column_index_[ColumnKey(object, right)];
  bool updated = false;
  for (ColumnEntry& e : column) {
    if (e.subject == subject) {
      e.mode = mode;
      updated = true;
      break;
    }
  }
  if (!updated) column.push_back(ColumnEntry{subject, mode});
  BumpEpoch(object, right);
  CountMutation();
  if (obs::AuditLog::Enabled()) {
    AuditEpochBump(subject, object, right, ColumnEpoch(object, right));
  }
}

bool ExplicitAcm::Erase(graph::NodeId subject, ObjectId object,
                        RightId right) {
  const bool erased = entries_.erase(Key(subject, object, right)) > 0;
  if (erased) {
    auto& column = column_index_[ColumnKey(object, right)];
    for (size_t i = 0; i < column.size(); ++i) {
      if (column[i].subject == subject) {
        column[i] = column.back();
        column.pop_back();
        break;
      }
    }
    BumpEpoch(object, right);
    CountMutation();
    if (obs::AuditLog::Enabled()) {
      AuditEpochBump(subject, object, right, ColumnEpoch(object, right));
    }
  }
  return erased;
}

uint64_t ExplicitAcm::ColumnEpoch(ObjectId object, RightId right) const {
  auto it = column_epochs_.find(ColumnKey(object, right));
  return it == column_epochs_.end() ? 0 : it->second;
}

std::optional<Mode> ExplicitAcm::Get(graph::NodeId subject, ObjectId object,
                                     RightId right) const {
  auto it = entries_.find(Key(subject, object, right));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::optional<Mode>> ExplicitAcm::ExtractLabels(
    size_t subject_count, ObjectId object, RightId right) const {
  std::vector<std::optional<Mode>> labels(subject_count);
  auto it = column_index_.find(ColumnKey(object, right));
  if (it == column_index_.end()) return labels;
  for (const ColumnEntry& e : it->second) {
    if (e.subject < subject_count) labels[e.subject] = e.mode;
  }
  return labels;
}

std::span<const ExplicitAcm::ColumnEntry> ExplicitAcm::Column(
    ObjectId object, RightId right) const {
  auto it = column_index_.find(ColumnKey(object, right));
  if (it == column_index_.end()) return {};
  return it->second;
}

ExplicitAcm::LabelCounts ExplicitAcm::CountLabels(ObjectId object,
                                                  RightId right) const {
  LabelCounts counts;
  auto it = column_index_.find(ColumnKey(object, right));
  if (it == column_index_.end()) return counts;
  for (const ColumnEntry& e : it->second) {
    if (e.mode == Mode::kPositive) {
      ++counts.positive;
    } else {
      ++counts.negative;
    }
  }
  return counts;
}

std::vector<ExplicitAcm::Entry> ExplicitAcm::SortedEntries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [key, mode] : entries_) {
    out.push_back(Entry{static_cast<graph::NodeId>(key >> 32),
                        static_cast<ObjectId>((key >> 16) & 0xFFFF),
                        static_cast<RightId>(key & 0xFFFF), mode});
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.subject != b.subject) return a.subject < b.subject;
    if (a.object != b.object) return a.object < b.object;
    return a.right < b.right;
  });
  return out;
}

std::optional<Mode> ExplicitAcm::ReachRowMode(std::span<const uint64_t> row,
                                              ObjectId object, RightId right) {
  // Contradictions are disallowed, so at most one of the two
  // mode-variants of a column key exists; probe the positive packing
  // and its negative sibling with one lower_bound.
  const uint64_t key = PackReachEntry(object, right, Mode::kPositive);
  const auto it = std::lower_bound(row.begin(), row.end(), key);
  if (it == row.end() || (*it & ~uint64_t{1}) != key) return std::nullopt;
  return (*it & 1) == 0 ? Mode::kPositive : Mode::kNegative;
}

std::vector<uint64_t> ExplicitAcm::ReachRow(graph::NodeId subject) const {
  std::vector<uint64_t> row;
  for (const auto& [key, mode] : entries_) {
    if (static_cast<graph::NodeId>(key >> 32) != subject) continue;
    row.push_back(PackReachEntry(static_cast<ObjectId>((key >> 16) & 0xFFFF),
                                 static_cast<RightId>(key & 0xFFFF), mode));
  }
  std::sort(row.begin(), row.end());
  return row;
}

std::vector<graph::ReachLabeledRow> ExplicitAcm::ReachRows() const {
  std::unordered_map<graph::NodeId, size_t> slot;
  std::vector<graph::ReachLabeledRow> rows;
  for (const auto& [key, mode] : entries_) {
    const auto subject = static_cast<graph::NodeId>(key >> 32);
    auto [it, inserted] = slot.try_emplace(subject, rows.size());
    if (inserted) rows.push_back(graph::ReachLabeledRow{subject, {}});
    rows[it->second].row.push_back(
        PackReachEntry(static_cast<ObjectId>((key >> 16) & 0xFFFF),
                       static_cast<RightId>(key & 0xFFFF), mode));
  }
  for (graph::ReachLabeledRow& r : rows) {
    std::sort(r.row.begin(), r.row.end());
  }
  return rows;
}

std::vector<graph::ReachLabeledRow> ExplicitAcm::ReachRowsFor(
    std::span<const graph::NodeId> subjects) const {
  std::unordered_map<graph::NodeId, size_t> slot;
  std::vector<graph::ReachLabeledRow> rows;
  rows.reserve(subjects.size());
  for (const graph::NodeId s : subjects) {
    auto [it, inserted] = slot.try_emplace(s, rows.size());
    if (inserted) rows.push_back(graph::ReachLabeledRow{s, {}});
  }
  for (const auto& [key, mode] : entries_) {
    const auto subject = static_cast<graph::NodeId>(key >> 32);
    const auto it = slot.find(subject);
    if (it == slot.end()) continue;
    rows[it->second].row.push_back(
        PackReachEntry(static_cast<ObjectId>((key >> 16) & 0xFFFF),
                       static_cast<RightId>(key & 0xFFFF), mode));
  }
  for (graph::ReachLabeledRow& r : rows) {
    std::sort(r.row.begin(), r.row.end());
  }
  return rows;
}

std::string ToText(const ExplicitAcm& eacm, const graph::Dag& dag) {
  std::ostringstream out;
  out << "# ucr explicit access control matrix: " << eacm.size()
      << " authorizations\n";
  for (const auto& e : eacm.SortedEntries()) {
    out << "auth " << dag.name(e.subject) << " " << eacm.object_name(e.object)
        << " " << eacm.right_name(e.right) << " " << ModeToChar(e.mode)
        << "\n";
  }
  return out.str();
}

StatusOr<ExplicitAcm> FromText(std::string_view text, const graph::Dag& dag) {
  ExplicitAcm eacm;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(pos, end - pos));
    pos = end + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string> fields;
    for (auto& f : Split(line, ' ')) {
      if (!f.empty()) fields.push_back(std::move(f));
    }
    auto error = [&](const std::string& what) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (fields[0] != "auth" || fields.size() != 5) {
      return error("expected 'auth <subject> <object> <right> <+|->'");
    }
    const graph::NodeId subject = dag.FindNode(fields[1]);
    if (subject == graph::kInvalidNode) {
      return error("unknown subject '" + fields[1] + "'");
    }
    auto object = eacm.InternObject(fields[2]);
    if (!object.ok()) return error(object.status().message());
    auto right = eacm.InternRight(fields[3]);
    if (!right.ok()) return error(right.status().message());
    const auto mode =
        fields[4].size() == 1 ? ModeFromChar(fields[4][0]) : std::nullopt;
    if (!mode.has_value()) return error("mode must be '+' or '-'");
    Status s = eacm.Set(subject, *object, *right, *mode);
    if (!s.ok()) return error(s.message());
  }
  return eacm;
}

void AppendAcmBinary(const ExplicitAcm& eacm, std::string* out) {
  bin::AppendU32(static_cast<uint32_t>(eacm.object_count()), out);
  bin::AppendU32(static_cast<uint32_t>(eacm.right_count()), out);
  const std::vector<ExplicitAcm::Entry> entries = eacm.SortedEntries();
  bin::AppendU64(entries.size(), out);
  for (size_t o = 0; o < eacm.object_count(); ++o) {
    bin::AppendString(eacm.object_name(static_cast<ObjectId>(o)), out);
  }
  for (size_t r = 0; r < eacm.right_count(); ++r) {
    bin::AppendString(eacm.right_name(static_cast<RightId>(r)), out);
  }
  for (const auto& entry : entries) {
    bin::AppendU32(entry.subject, out);
    bin::AppendU16(entry.object, out);
    bin::AppendU16(entry.right, out);
    out->push_back(static_cast<char>(entry.mode));
  }
}

StatusOr<ExplicitAcm> AcmFromBinary(std::string_view bytes,
                                    size_t subject_count) {
  bin::Reader reader(bytes);
  uint32_t object_count = 0;
  uint32_t right_count = 0;
  uint64_t entry_count = 0;
  if (!reader.ReadU32(&object_count) || !reader.ReadU32(&right_count) ||
      !reader.ReadU64(&entry_count)) {
    return Status::Corruption("acm section: truncated header");
  }
  // 16-bit id spaces bound the name tables; entries are 9 bytes each,
  // so a plausibility floor rejects OOM-bait counts up front.
  if (object_count > 65536 || right_count > 65536 ||
      entry_count > bytes.size() / 9) {
    return Status::Corruption("acm section: implausible counts");
  }

  ExplicitAcm eacm;
  std::string name;
  for (uint32_t o = 0; o < object_count; ++o) {
    if (!reader.ReadString(&name)) {
      return Status::Corruption("acm section: truncated object table");
    }
    auto id = eacm.InternObject(name);
    if (!id.ok() || id.value() != o) {
      return Status::Corruption("acm section: duplicate object name");
    }
  }
  for (uint32_t r = 0; r < right_count; ++r) {
    if (!reader.ReadString(&name)) {
      return Status::Corruption("acm section: truncated right table");
    }
    auto id = eacm.InternRight(name);
    if (!id.ok() || id.value() != r) {
      return Status::Corruption("acm section: duplicate right name");
    }
  }
  for (uint64_t i = 0; i < entry_count; ++i) {
    uint32_t subject = 0;
    uint16_t object = 0;
    uint16_t right = 0;
    if (!reader.ReadU32(&subject) || !reader.ReadU16(&object) ||
        !reader.ReadU16(&right) || reader.remaining() < 1) {
      return Status::Corruption("acm section: truncated entries");
    }
    std::string_view mode_byte;
    reader.ReadBytes(1, &mode_byte);
    const auto raw_mode = static_cast<unsigned char>(mode_byte[0]);
    if (subject >= subject_count || object >= object_count ||
        right >= right_count || raw_mode > 1) {
      return Status::Corruption("acm section: entry out of range");
    }
    const Status set = eacm.Set(subject, object, right,
                                static_cast<Mode>(raw_mode));
    if (!set.ok()) {
      // Duplicate or contradicting triple — SortedEntries never emits
      // either, so the bytes were tampered with.
      return Status::Corruption("acm section: conflicting duplicate entry");
    }
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("acm section: trailing bytes");
  }
  return eacm;
}

}  // namespace ucr::acm
