#ifndef UCR_ACM_MODE_H_
#define UCR_ACM_MODE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace ucr::acm {

/// \brief An explicit authorization mode: grant or deny.
///
/// The paper's hybrid model stores only these two modes explicitly;
/// the "d" (default) marker exists only on propagated tuples, never in
/// the explicit matrix, so it lives in `PropagatedMode` instead.
enum class Mode : uint8_t {
  kPositive = 0,  ///< '+' — access granted.
  kNegative = 1,  ///< '-' — access denied.
};

/// \brief Mode of a tuple in the propagated `allRights` relation
/// (paper Table 1): explicit grant, explicit denial, or the default
/// placeholder 'd' attached to unlabeled roots (paper §3 Step 2).
enum class PropagatedMode : uint8_t {
  kPositive = 0,  ///< '+'
  kNegative = 1,  ///< '-'
  kDefault = 2,   ///< 'd'
};

/// Renders '+' or '-'.
constexpr char ModeToChar(Mode m) {
  return m == Mode::kPositive ? '+' : '-';
}

/// Renders '+', '-', or 'd'.
constexpr char PropagatedModeToChar(PropagatedMode m) {
  switch (m) {
    case PropagatedMode::kPositive:
      return '+';
    case PropagatedMode::kNegative:
      return '-';
    case PropagatedMode::kDefault:
      return 'd';
  }
  return '?';
}

/// Parses '+' or '-'; std::nullopt otherwise.
constexpr std::optional<Mode> ModeFromChar(char c) {
  if (c == '+') return Mode::kPositive;
  if (c == '-') return Mode::kNegative;
  return std::nullopt;
}

/// Widens an explicit mode into the propagated-tuple domain.
constexpr PropagatedMode ToPropagated(Mode m) {
  return m == Mode::kPositive ? PropagatedMode::kPositive
                              : PropagatedMode::kNegative;
}

/// The opposite mode.
constexpr Mode Negate(Mode m) {
  return m == Mode::kPositive ? Mode::kNegative : Mode::kPositive;
}

}  // namespace ucr::acm

#endif  // UCR_ACM_MODE_H_
