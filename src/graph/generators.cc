#include "graph/generators.h"

#include <vector>

namespace ucr::graph {

StatusOr<Dag> GenerateKDag(size_t n, Random& rng) {
  if (n < 2) {
    return Status::InvalidArgument("KDAG requires at least 2 nodes");
  }
  // A complete DAG is a random permutation of nodes with all forward
  // edges. We name nodes by their position in the order so the single
  // root is K0 and the single sink is K<n-1>; the randomness is in
  // which "identity" lands at which position, which is irrelevant to
  // the structure, so we simply consume the permutation draw to keep
  // the stream position of `rng` faithful to a permutation-based
  // implementation (and future-proof against adding node payloads).
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  rng.Shuffle(perm);

  DagBuilder builder;
  for (size_t i = 0; i < n; ++i) {
    builder.AddNode("K" + std::to_string(i));
  }
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      UCR_RETURN_IF_ERROR(builder.AddEdgeById(i, j));
    }
  }
  return std::move(builder).Build();
}

StatusOr<Dag> GenerateLayeredDag(const LayeredDagOptions& options,
                                 Random& rng) {
  if (options.layers == 0 || options.nodes_per_layer == 0) {
    return Status::InvalidArgument(
        "layered DAG requires at least one layer and one node per layer");
  }
  const size_t layers = options.layers;
  const size_t width = options.nodes_per_layer;

  DagBuilder builder;
  auto node_name = [&](size_t layer, size_t j) {
    return "L" + std::to_string(layer) + "N" + std::to_string(j);
  };
  for (size_t layer = 0; layer < layers; ++layer) {
    for (size_t j = 0; j < width; ++j) builder.AddNode(node_name(layer, j));
  }
  auto id_of = [&](size_t layer, size_t j) {
    return static_cast<NodeId>(layer * width + j);
  };

  for (size_t layer = 1; layer < layers; ++layer) {
    for (size_t j = 0; j < width; ++j) {
      const NodeId child = id_of(layer, j);
      bool has_parent = false;
      for (size_t p = 0; p < width; ++p) {
        if (rng.Bernoulli(options.edge_probability)) {
          UCR_RETURN_IF_ERROR(builder.AddEdgeById(id_of(layer - 1, p), child));
          has_parent = true;
        }
      }
      if (!has_parent) {
        // Guarantee downward connectivity with one random parent.
        const size_t p = static_cast<size_t>(rng.Uniform(width));
        UCR_RETURN_IF_ERROR(builder.AddEdgeById(id_of(layer - 1, p), child));
      }
      // Skip edges create same-endpoint paths of unequal length.
      for (size_t above = 2; above <= layer; ++above) {
        if (rng.Bernoulli(options.skip_edge_probability)) {
          const size_t p = static_cast<size_t>(rng.Uniform(width));
          Status s = builder.AddEdgeById(id_of(layer - above, p), child);
          // A duplicate skip edge is harmless; any other failure is not.
          if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
        }
      }
    }
  }
  return std::move(builder).Build();
}

StatusOr<Dag> GenerateScaleLayeredDag(const ScaleLayeredDagOptions& options,
                                      Random& rng) {
  if (options.nodes < 2 || options.layers == 0 ||
      options.layers > options.nodes || options.parents_per_node == 0) {
    return Status::InvalidArgument(
        "scale layered DAG requires nodes >= 2, 1 <= layers <= nodes, and "
        "parents_per_node >= 1");
  }
  const size_t n = options.nodes;
  const size_t layers = options.layers;
  DagBuilder builder;
  for (size_t i = 0; i < n; ++i) builder.AddNode("S" + std::to_string(i));
  // Layer l spans [first_of(l), first_of(l+1)); n >= layers keeps every
  // layer non-empty.
  auto first_of = [&](size_t l) { return l * n / layers; };
  for (size_t l = 1; l < layers; ++l) {
    const size_t lo = first_of(l);
    const size_t hi = first_of(l + 1);
    const size_t parent_lo = first_of(l - 1);
    const size_t parent_width = lo - parent_lo;
    for (size_t v = lo; v < hi; ++v) {
      for (size_t k = 0; k < options.parents_per_node; ++k) {
        const NodeId p =
            static_cast<NodeId>(parent_lo + rng.Uniform(parent_width));
        const Status s = builder.AddEdgeById(p, static_cast<NodeId>(v));
        // A duplicate parent draw is dropped; any other failure is not.
        if (!s.ok() && s.code() != StatusCode::kAlreadyExists) return s;
      }
    }
  }
  return std::move(builder).Build();
}

StatusOr<Dag> GenerateRandomTree(size_t n, Random& rng) {
  if (n == 0) {
    return Status::InvalidArgument("tree requires at least one node");
  }
  DagBuilder builder;
  for (size_t i = 0; i < n; ++i) builder.AddNode("T" + std::to_string(i));
  for (NodeId v = 1; v < n; ++v) {
    const NodeId parent = static_cast<NodeId>(rng.Uniform(v));
    UCR_RETURN_IF_ERROR(builder.AddEdgeById(parent, v));
  }
  return std::move(builder).Build();
}

StatusOr<Dag> GenerateDiamondStack(size_t k) {
  if (k == 0) {
    return Status::InvalidArgument("diamond stack requires k >= 1");
  }
  DagBuilder builder;
  std::string top = "D0t";
  builder.AddNode(top);
  for (size_t i = 0; i < k; ++i) {
    const std::string a = "D" + std::to_string(i) + "a";
    const std::string b = "D" + std::to_string(i) + "b";
    const std::string bottom =
        i + 1 == k ? std::string("Dsink") : "D" + std::to_string(i + 1) + "t";
    UCR_RETURN_IF_ERROR(builder.AddEdge(top, a));
    UCR_RETURN_IF_ERROR(builder.AddEdge(top, b));
    UCR_RETURN_IF_ERROR(builder.AddEdge(a, bottom));
    UCR_RETURN_IF_ERROR(builder.AddEdge(b, bottom));
    top = bottom;
  }
  return std::move(builder).Build();
}

}  // namespace ucr::graph
