#ifndef UCR_GRAPH_ANCESTOR_SUBGRAPH_H_
#define UCR_GRAPH_ANCESTOR_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/dag.h"

namespace ucr::graph {

class SubgraphScratch;

/// Dense id local to one `AncestorSubgraph` (0 .. member_count-1).
using LocalId = uint32_t;

/// \brief The maximal sub-graph H of a `Dag` in which a chosen subject
/// `s` is the sole sink and all other nodes are its ancestors
/// (paper §3, Step 1; Fig. 3).
///
/// Members are the ancestors of `s` plus `s` itself; edges are exactly
/// the original edges between members. Because the parent of an
/// ancestor of `s` is itself an ancestor of `s`, every member except
/// `s` keeps at least one outgoing edge inside H, so `s` really is the
/// only sink. Member ids are re-densified into `LocalId` so per-query
/// scratch arrays are proportional to |H|, not |Dag|.
///
/// The extraction walks parent edges breadth-first from `s`; cost is
/// O(|H| + edges(H)). The object is immutable after construction.
class AncestorSubgraph {
 public:
  /// Extracts the ancestor sub-graph of `sink`.
  /// Requires `sink < dag.node_count()`.
  AncestorSubgraph(const Dag& dag, NodeId sink);

  /// Same extraction through an epoch-stamped scratch arena
  /// (`graph/scratch_subgraph.h`): the per-query dedup hash map is
  /// replaced by the arena's flat visited/local-id arrays, so repeated
  /// construction on a warm arena touches no per-node hash buckets.
  /// The resulting object is bit-identical to `AncestorSubgraph(dag,
  /// sink)` and fully owns its storage — it stays valid after the
  /// arena is reused. Invalidates live `ScratchSubgraphView`s of
  /// `scratch`.
  AncestorSubgraph(const Dag& dag, NodeId sink, SubgraphScratch& scratch);

  /// Number of member nodes (ancestors + the sink itself).
  size_t member_count() const { return members_.size(); }

  /// The underlying graph this sub-graph was extracted from.
  const Dag& dag() const { return *dag_; }

  /// Number of edges inside the sub-graph.
  size_t edge_count() const { return edge_count_; }

  /// Global node id of local member `v`.
  NodeId global_id(LocalId v) const { return members_[v]; }

  /// Local id of the sink `s`.
  LocalId sink() const { return sink_local_; }

  /// Local id for global node `id`, or `kInvalidNode` if not a member.
  LocalId ToLocal(NodeId id) const;

  /// Children of `v` inside the sub-graph.
  std::span<const LocalId> children(LocalId v) const {
    return {children_.data() + child_offsets_[v],
            child_offsets_[v + 1] - child_offsets_[v]};
  }

  /// Parents of `v` inside the sub-graph.
  std::span<const LocalId> parents(LocalId v) const {
    return {parents_.data() + parent_offsets_[v],
            parent_offsets_[v + 1] - parent_offsets_[v]};
  }

  /// Local ids of root members (no parents inside H). If the sink has
  /// no ancestors, the sink itself is the unique root.
  std::span<const LocalId> roots() const { return roots_; }

  /// Members in a topological order (parents before children).
  std::span<const LocalId> topological_order() const { return topo_; }

  /// Shortest directed distance (edge count) from `v` to the sink.
  /// The sink itself is at distance 0.
  uint32_t shortest_distance_to_sink(LocalId v) const {
    return shortest_dist_[v];
  }

  /// Longest directed distance from `v` to the sink.
  uint32_t longest_distance_to_sink(LocalId v) const {
    return longest_dist_[v];
  }

  /// Depth of the sub-graph: the longest root-to-sink path length.
  uint32_t depth() const { return depth_; }

  /// Number of distinct directed paths from `v` to the sink, saturated
  /// at UINT64_MAX (path counts explode on diamond stacks).
  uint64_t path_count(LocalId v) const { return path_count_[v]; }

  /// Sum of the lengths of all directed paths from `v` to the sink,
  /// saturated at UINT64_MAX. This is the per-source contribution to
  /// the paper's cost metric `d` (§3.3).
  uint64_t total_path_length(LocalId v) const { return total_path_len_[v]; }

  /// The paper's `d`: sum of all path lengths from every node in
  /// `sources` to the sink (saturating).
  uint64_t TotalPathLength(std::span<const LocalId> sources) const;

 private:
  /// Computes roots, distance/path DP, and depth from the already
  /// filled members/CSR/topo fields (shared by both constructors).
  void ComputeMetrics();

  std::vector<NodeId> members_;          // local -> global
  std::vector<LocalId> roots_;
  std::vector<LocalId> topo_;
  std::vector<size_t> child_offsets_{0};
  std::vector<LocalId> children_;
  std::vector<size_t> parent_offsets_{0};
  std::vector<LocalId> parents_;
  std::vector<uint32_t> shortest_dist_;
  std::vector<uint32_t> longest_dist_;
  std::vector<uint64_t> path_count_;
  std::vector<uint64_t> total_path_len_;
  std::unordered_map<NodeId, LocalId> local_index_;
  const Dag* dag_ = nullptr;
  LocalId sink_local_ = 0;
  size_t edge_count_ = 0;
  uint32_t depth_ = 0;
};

}  // namespace ucr::graph

#endif  // UCR_GRAPH_ANCESTOR_SUBGRAPH_H_
