#ifndef UCR_GRAPH_IO_H_
#define UCR_GRAPH_IO_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/dag.h"
#include "util/status.h"

namespace ucr::graph {

/// \brief Serializes `dag` in the ucr edge-list text format:
///
///     # comment
///     node <name>            (declares an isolated or ordering-pinned node)
///     edge <parent> <child>
///
/// Every node is declared before any edge mentions it, so parsing the
/// output reproduces identical node ids.
std::string ToEdgeListText(const Dag& dag);

/// \brief Parses the edge-list text format produced by
/// `ToEdgeListText` (or written by hand). Unknown directives, missing
/// fields, and cycles are reported as errors with a line number.
StatusOr<Dag> FromEdgeListText(std::string_view text);

/// \brief Renders `dag` in Graphviz DOT syntax (edges parent -> child).
/// Handy for eyeballing small hierarchies such as the paper's Fig. 1.
std::string ToDot(const Dag& dag);

/// True iff `name` survives the space-delimited text formats: no
/// whitespace, not empty, and no leading '#'.
bool IsSerializableName(std::string_view name);

/// Checks every node name of `dag` with `IsSerializableName`; names
/// that would corrupt the text formats are reported before any write
/// happens.
Status ValidateSerializable(const Dag& dag);

/// Writes `ToEdgeListText(dag)` to `path`. Fails on I/O errors or
/// non-serializable node names.
Status WriteEdgeListFile(const Dag& dag, const std::string& path);

/// Reads and parses an edge-list file.
StatusOr<Dag> ReadEdgeListFile(const std::string& path);

// -- Binary CSR serialization (the snapshot format's graph section) ---

/// \brief Appends `dag` to `out` in the binary CSR layout: node and
/// edge counts, the name table in id order, then both adjacency
/// directions verbatim (child offsets + children, parent offsets +
/// parents), all little-endian.
///
/// Storing the parent direction instead of re-deriving it preserves
/// *insertion order* of each parent list across a save/load cycle —
/// the recovery acceptance test demands bit-identical decisions from a
/// reloaded system, so iteration order must survive, not just the edge
/// set. Costs ~2× the minimal encoding; snapshots optimize restart
/// latency, not bytes.
void AppendDagBinary(const Dag& dag, std::string* out);

/// \brief Parses `AppendDagBinary` output. The bytes are untrusted:
/// all structure is re-validated through `Dag::FromCsr`, so truncation,
/// bit flips, or adversarial edits yield `kCorruption` — never UB.
StatusOr<Dag> DagFromBinary(std::string_view bytes);

}  // namespace ucr::graph

#endif  // UCR_GRAPH_IO_H_
