#include "graph/io.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/binio.h"
#include "util/string_util.h"

namespace ucr::graph {

std::string ToEdgeListText(const Dag& dag) {
  std::ostringstream out;
  out << "# ucr subject hierarchy: " << dag.node_count() << " nodes, "
      << dag.edge_count() << " edges\n";
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    out << "node " << dag.name(v) << "\n";
  }
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) {
      out << "edge " << dag.name(v) << " " << dag.name(c) << "\n";
    }
  }
  return out.str();
}

StatusOr<Dag> FromEdgeListText(std::string_view text) {
  DagBuilder builder;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(pos, end - pos));
    pos = end + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string> fields;
    for (auto& f : Split(line, ' ')) {
      if (!f.empty()) fields.push_back(std::move(f));
    }
    auto error = [&](const std::string& what) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (fields[0] == "node") {
      if (fields.size() != 2) return error("expected 'node <name>'");
      builder.AddNode(fields[1]);
    } else if (fields[0] == "edge") {
      if (fields.size() != 3) return error("expected 'edge <parent> <child>'");
      Status s = builder.AddEdge(fields[1], fields[2]);
      if (!s.ok()) return error(s.message());
    } else {
      return error("unknown directive '" + fields[0] + "'");
    }
  }
  auto result = std::move(builder).Build();
  if (!result.ok()) {
    return Status::Corruption("graph invalid: " + result.status().message());
  }
  return result;
}

std::string ToDot(const Dag& dag) {
  std::ostringstream out;
  out << "digraph subjects {\n  rankdir=TB;\n";
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    out << "  \"" << dag.name(v) << "\";\n";
  }
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) {
      out << "  \"" << dag.name(v) << "\" -> \"" << dag.name(c) << "\";\n";
    }
  }
  out << "}\n";
  return out.str();
}

bool IsSerializableName(std::string_view name) {
  if (name.empty() || name[0] == '#') return false;
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Status ValidateSerializable(const Dag& dag) {
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    if (!IsSerializableName(dag.name(v))) {
      return Status::InvalidArgument(
          "node name '" + dag.name(v) +
          "' cannot be serialized (whitespace, empty, or leading '#')");
    }
  }
  return Status::OK();
}

Status WriteEdgeListFile(const Dag& dag, const std::string& path) {
  UCR_RETURN_IF_ERROR(ValidateSerializable(dag));
  std::ofstream out(path);
  if (!out) return Status::Corruption("cannot open for writing: " + path);
  out << ToEdgeListText(dag);
  out.flush();
  if (!out) return Status::Corruption("write failed: " + path);
  return Status::OK();
}

StatusOr<Dag> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromEdgeListText(buffer.str());
}

void AppendDagBinary(const Dag& dag, std::string* out) {
  const size_t n = dag.node_count();
  bin::AppendU64(n, out);
  bin::AppendU64(dag.edge_count(), out);
  for (NodeId v = 0; v < n; ++v) {
    bin::AppendString(dag.name(v), out);
  }
  // Both directions, offsets rebuilt from the public spans so the
  // encoder needs no private access and the decoder re-validates the
  // mirror anyway.
  uint64_t offset = 0;
  for (NodeId v = 0; v < n; ++v) {
    bin::AppendU64(offset, out);
    offset += dag.children(v).size();
  }
  bin::AppendU64(offset, out);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId child : dag.children(v)) bin::AppendU32(child, out);
  }
  offset = 0;
  for (NodeId v = 0; v < n; ++v) {
    bin::AppendU64(offset, out);
    offset += dag.parents(v).size();
  }
  bin::AppendU64(offset, out);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId parent : dag.parents(v)) bin::AppendU32(parent, out);
  }
}

StatusOr<Dag> DagFromBinary(std::string_view bytes) {
  bin::Reader reader(bytes);
  uint64_t node_count = 0;
  uint64_t edge_count = 0;
  if (!reader.ReadU64(&node_count) || !reader.ReadU64(&edge_count)) {
    return Status::Corruption("dag section: truncated header");
  }
  // A node costs ≥5 bytes (name length prefix + two 8-byte offsets is
  // more, but 5 is a safe floor) and an edge ≥8 (one u32 per
  // direction); reject absurd counts before any reserve so a corrupt
  // header cannot OOM the loader.
  if (node_count > bytes.size() / 5 || edge_count > bytes.size() / 8 ||
      node_count >= kInvalidNode) {
    return Status::Corruption("dag section: implausible node/edge count");
  }
  const size_t n = static_cast<size_t>(node_count);
  const size_t e = static_cast<size_t>(edge_count);

  std::vector<std::string> names(n);
  for (size_t v = 0; v < n; ++v) {
    if (!reader.ReadString(&names[v])) {
      return Status::Corruption("dag section: truncated name table");
    }
  }

  auto read_offsets = [&reader, n](std::vector<size_t>* out) {
    out->resize(n + 1);
    for (size_t i = 0; i <= n; ++i) {
      uint64_t v = 0;
      if (!reader.ReadU64(&v)) return false;
      (*out)[i] = static_cast<size_t>(v);
    }
    return true;
  };
  auto read_ids = [&reader, e](std::vector<NodeId>* out) {
    out->resize(e);
    for (size_t i = 0; i < e; ++i) {
      uint32_t v = 0;
      if (!reader.ReadU32(&v)) return false;
      (*out)[i] = v;
    }
    return true;
  };

  std::vector<size_t> child_offsets;
  std::vector<NodeId> children;
  std::vector<size_t> parent_offsets;
  std::vector<NodeId> parents;
  if (!read_offsets(&child_offsets) || !read_ids(&children) ||
      !read_offsets(&parent_offsets) || !read_ids(&parents)) {
    return Status::Corruption("dag section: truncated adjacency arrays");
  }
  if (reader.remaining() != 0) {
    return Status::Corruption("dag section: trailing bytes");
  }
  return Dag::FromCsr(std::move(names), std::move(child_offsets),
                      std::move(children), std::move(parent_offsets),
                      std::move(parents));
}

}  // namespace ucr::graph
