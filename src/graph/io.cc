#include "graph/io.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace ucr::graph {

std::string ToEdgeListText(const Dag& dag) {
  std::ostringstream out;
  out << "# ucr subject hierarchy: " << dag.node_count() << " nodes, "
      << dag.edge_count() << " edges\n";
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    out << "node " << dag.name(v) << "\n";
  }
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) {
      out << "edge " << dag.name(v) << " " << dag.name(c) << "\n";
    }
  }
  return out.str();
}

StatusOr<Dag> FromEdgeListText(std::string_view text) {
  DagBuilder builder;
  size_t line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = Trim(text.substr(pos, end - pos));
    pos = end + 1;
    ++line_no;
    if (line.empty() || line[0] == '#') continue;

    std::vector<std::string> fields;
    for (auto& f : Split(line, ' ')) {
      if (!f.empty()) fields.push_back(std::move(f));
    }
    auto error = [&](const std::string& what) {
      return Status::Corruption("line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (fields[0] == "node") {
      if (fields.size() != 2) return error("expected 'node <name>'");
      builder.AddNode(fields[1]);
    } else if (fields[0] == "edge") {
      if (fields.size() != 3) return error("expected 'edge <parent> <child>'");
      Status s = builder.AddEdge(fields[1], fields[2]);
      if (!s.ok()) return error(s.message());
    } else {
      return error("unknown directive '" + fields[0] + "'");
    }
  }
  auto result = std::move(builder).Build();
  if (!result.ok()) {
    return Status::Corruption("graph invalid: " + result.status().message());
  }
  return result;
}

std::string ToDot(const Dag& dag) {
  std::ostringstream out;
  out << "digraph subjects {\n  rankdir=TB;\n";
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    out << "  \"" << dag.name(v) << "\";\n";
  }
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    for (NodeId c : dag.children(v)) {
      out << "  \"" << dag.name(v) << "\" -> \"" << dag.name(c) << "\";\n";
    }
  }
  out << "}\n";
  return out.str();
}

bool IsSerializableName(std::string_view name) {
  if (name.empty() || name[0] == '#') return false;
  for (char c : name) {
    if (std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

Status ValidateSerializable(const Dag& dag) {
  for (NodeId v = 0; v < dag.node_count(); ++v) {
    if (!IsSerializableName(dag.name(v))) {
      return Status::InvalidArgument(
          "node name '" + dag.name(v) +
          "' cannot be serialized (whitespace, empty, or leading '#')");
    }
  }
  return Status::OK();
}

Status WriteEdgeListFile(const Dag& dag, const std::string& path) {
  UCR_RETURN_IF_ERROR(ValidateSerializable(dag));
  std::ofstream out(path);
  if (!out) return Status::Corruption("cannot open for writing: " + path);
  out << ToEdgeListText(dag);
  out.flush();
  if (!out) return Status::Corruption("write failed: " + path);
  return Status::OK();
}

StatusOr<Dag> ReadEdgeListFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromEdgeListText(buffer.str());
}

}  // namespace ucr::graph
