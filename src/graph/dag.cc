#include "graph/dag.h"

#include <algorithm>
#include <deque>

namespace ucr::graph {

NodeId Dag::FindNode(std::string_view node_name) const {
  auto it = name_to_id_.find(std::string(node_name));
  return it == name_to_id_.end() ? kInvalidNode : it->second;
}

std::vector<NodeId> Dag::Roots() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (is_root(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Dag::Sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (is_sink(v)) out.push_back(v);
  }
  return out;
}

bool Dag::HasEdge(NodeId parent, NodeId child) const {
  auto kids = children(parent);
  return std::find(kids.begin(), kids.end(), child) != kids.end();
}

std::vector<NodeId> Dag::TopologicalOrder() const {
  // Kahn's algorithm with a FIFO queue: deterministic order given the
  // deterministic id assignment of DagBuilder.
  std::vector<size_t> indegree(node_count());
  for (NodeId v = 0; v < node_count(); ++v) {
    indegree[v] = parents(v).size();
  }
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::vector<NodeId> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (NodeId c : children(v)) {
      if (--indegree[c] == 0) ready.push_back(c);
    }
  }
  return order;  // Complete by construction: Dag is acyclic.
}

NodeId DagBuilder::AddNode(std::string_view name) {
  auto [it, inserted] =
      name_to_id_.try_emplace(std::string(name), static_cast<NodeId>(names_.size()));
  if (inserted) {
    names_.emplace_back(name);
    adj_children_.emplace_back();
    adj_parents_.emplace_back();
  }
  return it->second;
}

Status DagBuilder::AddEdge(std::string_view parent, std::string_view child) {
  const NodeId p = AddNode(parent);
  const NodeId c = AddNode(child);
  return AddEdgeById(p, c);
}

Status DagBuilder::AddEdgeById(NodeId parent, NodeId child) {
  if (parent >= names_.size() || child >= names_.size()) {
    return Status::OutOfRange("AddEdgeById: unknown node id");
  }
  if (parent == child) {
    return Status::InvalidArgument("self-loop on node '" + names_[parent] +
                                   "'");
  }
  auto& kids = adj_children_[parent];
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) {
    return Status::AlreadyExists("duplicate edge " + names_[parent] + " -> " +
                                 names_[child]);
  }
  kids.push_back(child);
  adj_parents_[child].push_back(parent);
  ++edge_count_;
  return Status::OK();
}

StatusOr<Dag> DagBuilder::Build() && {
  // Cycle check via Kahn's algorithm on the adjacency lists.
  const size_t n = names_.size();
  std::vector<size_t> indegree(n);
  for (size_t v = 0; v < n; ++v) indegree[v] = adj_parents_[v].size();
  std::deque<NodeId> ready;
  for (size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(static_cast<NodeId>(v));
  }
  size_t visited = 0;
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop_front();
    ++visited;
    for (NodeId c : adj_children_[v]) {
      if (--indegree[c] == 0) ready.push_back(c);
    }
  }
  if (visited != n) {
    return Status::InvalidArgument(
        "graph contains a cycle; subject hierarchies must be acyclic");
  }

  Dag dag;
  dag.edge_count_ = edge_count_;
  dag.names_ = std::move(names_);
  dag.name_to_id_ = std::move(name_to_id_);
  dag.child_offsets_.assign(1, 0);
  dag.parent_offsets_.assign(1, 0);
  dag.child_offsets_.reserve(n + 1);
  dag.parent_offsets_.reserve(n + 1);
  for (size_t v = 0; v < n; ++v) {
    dag.children_.insert(dag.children_.end(), adj_children_[v].begin(),
                         adj_children_[v].end());
    dag.child_offsets_.push_back(dag.children_.size());
    dag.parents_.insert(dag.parents_.end(), adj_parents_[v].begin(),
                        adj_parents_[v].end());
    dag.parent_offsets_.push_back(dag.parents_.size());
  }
  return dag;
}

}  // namespace ucr::graph
