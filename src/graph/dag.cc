#include "graph/dag.h"

#include <algorithm>
#include <deque>

namespace ucr::graph {

NodeId Dag::FindNode(std::string_view node_name) const {
  auto it = name_to_id_.find(std::string(node_name));
  return it == name_to_id_.end() ? kInvalidNode : it->second;
}

std::vector<NodeId> Dag::Roots() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (is_root(v)) out.push_back(v);
  }
  return out;
}

std::vector<NodeId> Dag::Sinks() const {
  std::vector<NodeId> out;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (is_sink(v)) out.push_back(v);
  }
  return out;
}

bool Dag::HasEdge(NodeId parent, NodeId child) const {
  auto kids = children(parent);
  return std::find(kids.begin(), kids.end(), child) != kids.end();
}

std::vector<NodeId> Dag::TopologicalOrder() const {
  // Kahn's algorithm with a FIFO queue: deterministic order given the
  // deterministic id assignment of DagBuilder.
  std::vector<size_t> indegree(node_count());
  for (NodeId v = 0; v < node_count(); ++v) {
    indegree[v] = parents(v).size();
  }
  std::deque<NodeId> ready;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (indegree[v] == 0) ready.push_back(v);
  }
  std::vector<NodeId> order;
  order.reserve(node_count());
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop_front();
    order.push_back(v);
    for (NodeId c : children(v)) {
      if (--indegree[c] == 0) ready.push_back(c);
    }
  }
  return order;  // Complete by construction: Dag is acyclic.
}

std::vector<NodeId> Dag::DescendantsOf(NodeId start) const {
  std::vector<NodeId> out;
  std::vector<uint8_t> seen(node_count(), 0);
  out.push_back(start);
  seen[start] = 1;
  for (size_t i = 0; i < out.size(); ++i) {
    for (NodeId c : children(out[i])) {
      if (!seen[c]) {
        seen[c] = 1;
        out.push_back(c);
      }
    }
  }
  return out;
}

StatusOr<Dag> Dag::FromCsr(std::vector<std::string> names,
                           std::vector<size_t> child_offsets,
                           std::vector<NodeId> children,
                           std::vector<size_t> parent_offsets,
                           std::vector<NodeId> parents) {
  const size_t n = names.size();
  auto corrupt = [](const char* what) {
    return Status::Corruption(std::string("CSR graph: ") + what);
  };
  if (child_offsets.size() != n + 1 || parent_offsets.size() != n + 1) {
    return corrupt("offset array size mismatch");
  }
  if (child_offsets.front() != 0 || parent_offsets.front() != 0 ||
      child_offsets.back() != children.size() ||
      parent_offsets.back() != parents.size() ||
      children.size() != parents.size()) {
    return corrupt("offset bounds do not match edge arrays");
  }
  for (size_t v = 0; v < n; ++v) {
    if (child_offsets[v] > child_offsets[v + 1] ||
        parent_offsets[v] > parent_offsets[v + 1]) {
      return corrupt("non-monotonic offsets");
    }
  }
  for (const NodeId id : children) {
    if (id >= n) return corrupt("child id out of range");
  }
  for (const NodeId id : parents) {
    if (id >= n) return corrupt("parent id out of range");
  }

  // The two adjacency directions must describe the same edge set with
  // no duplicates or self-loops; a file that breaks the mirror would
  // desynchronize every traversal that mixes directions (Kahn's
  // indegrees vs child expansion, ancestor vs descendant sweeps).
  std::vector<uint64_t> down;
  std::vector<uint64_t> up;
  down.reserve(children.size());
  up.reserve(parents.size());
  for (size_t v = 0; v < n; ++v) {
    for (size_t i = child_offsets[v]; i < child_offsets[v + 1]; ++i) {
      if (children[i] == v) return corrupt("self-loop");
      down.push_back((static_cast<uint64_t>(v) << 32) | children[i]);
    }
    for (size_t i = parent_offsets[v]; i < parent_offsets[v + 1]; ++i) {
      up.push_back((static_cast<uint64_t>(parents[i]) << 32) | v);
    }
  }
  std::sort(down.begin(), down.end());
  std::sort(up.begin(), up.end());
  if (down != up) return corrupt("child/parent adjacency mismatch");
  if (std::adjacent_find(down.begin(), down.end()) != down.end()) {
    return corrupt("duplicate edge");
  }

  std::unordered_map<std::string, NodeId> name_to_id;
  name_to_id.reserve(n);
  for (size_t v = 0; v < n; ++v) {
    if (!name_to_id.try_emplace(names[v], static_cast<NodeId>(v)).second) {
      return corrupt("duplicate node name");
    }
  }

  Dag dag;
  dag.edge_count_ = children.size();
  dag.names_ = std::move(names);
  dag.name_to_id_ = std::move(name_to_id);
  dag.child_offsets_ = std::move(child_offsets);
  dag.children_ = std::move(children);
  dag.parent_offsets_ = std::move(parent_offsets);
  dag.parents_ = std::move(parents);
  dag.node_generations_.assign(n, 0);

  // Acyclicity last, on the assembled graph: Kahn's completes iff the
  // edge set has no cycle.
  if (dag.TopologicalOrder().size() != n) {
    return Status::Corruption("CSR graph: contains a cycle");
  }
  return dag;
}

void Dag::StampNodes(const std::vector<NodeId>& nodes) {
  ++generation_;
  for (NodeId v : nodes) node_generations_[v] = generation_;
}

NodeId Dag::EnsureNode(std::string_view name) {
  auto [it, inserted] = name_to_id_.try_emplace(
      std::string(name), static_cast<NodeId>(names_.size()));
  if (inserted) {
    names_.emplace_back(name);
    child_offsets_.push_back(children_.size());
    parent_offsets_.push_back(parents_.size());
    // A fresh node's (empty) ancestor set is itself new derived state:
    // stamp it so generation-scoped consumers (EffectiveMatrix rows)
    // pick it up.
    ++generation_;
    node_generations_.push_back(generation_);
  }
  return it->second;
}

Status Dag::InsertEdge(NodeId parent, NodeId child,
                       std::vector<NodeId>* affected) {
  if (parent >= node_count() || child >= node_count()) {
    return Status::OutOfRange("InsertEdge: unknown node id");
  }
  if (parent == child) {
    return Status::InvalidArgument("self-loop on node '" + names_[parent] +
                                   "'");
  }
  if (HasEdge(parent, child)) {
    return Status::AlreadyExists("duplicate edge " + names_[parent] + " -> " +
                                 names_[child]);
  }
  // The edge closes a cycle iff `parent` is already reachable from
  // `child`: check only the part of the graph below `child` instead of
  // replaying full-graph acyclicity.
  std::vector<NodeId> below = DescendantsOf(child);
  for (NodeId v : below) {
    if (v == parent) {
      return Status::InvalidArgument("edge " + names_[parent] + " -> " +
                                     names_[child] +
                                     " would create a cycle");
    }
  }

  // CSR splice: the new child goes at the end of `parent`'s list (the
  // insertion-order contract of DagBuilder), shifting later rows.
  children_.insert(children_.begin() +
                       static_cast<ptrdiff_t>(child_offsets_[parent + 1]),
                   child);
  for (size_t v = parent + 1; v < child_offsets_.size(); ++v) {
    ++child_offsets_[v];
  }
  parents_.insert(parents_.begin() +
                      static_cast<ptrdiff_t>(parent_offsets_[child + 1]),
                  parent);
  for (size_t v = child + 1; v < parent_offsets_.size(); ++v) {
    ++parent_offsets_[v];
  }
  ++edge_count_;
  StampNodes(below);  // `below` is child + descendants: the affected set.
  if (affected != nullptr) *affected = std::move(below);
  return Status::OK();
}

Status Dag::EraseEdge(NodeId parent, NodeId child,
                      std::vector<NodeId>* affected) {
  if (parent >= node_count() || child >= node_count() ||
      !HasEdge(parent, child)) {
    return Status::NotFound("no edge " +
                            (parent < node_count() ? names_[parent]
                                                   : "<unknown>") +
                            " -> " +
                            (child < node_count() ? names_[child]
                                                  : "<unknown>"));
  }
  const auto kids_begin =
      children_.begin() + static_cast<ptrdiff_t>(child_offsets_[parent]);
  const auto kids_end =
      children_.begin() + static_cast<ptrdiff_t>(child_offsets_[parent + 1]);
  children_.erase(std::find(kids_begin, kids_end, child));
  for (size_t v = parent + 1; v < child_offsets_.size(); ++v) {
    --child_offsets_[v];
  }
  const auto par_begin =
      parents_.begin() + static_cast<ptrdiff_t>(parent_offsets_[child]);
  const auto par_end =
      parents_.begin() + static_cast<ptrdiff_t>(parent_offsets_[child + 1]);
  parents_.erase(std::find(par_begin, par_end, parent));
  for (size_t v = child + 1; v < parent_offsets_.size(); ++v) {
    --parent_offsets_[v];
  }
  --edge_count_;
  // Affected set computed *after* the erase — identical membership to
  // before (reachability via the removed edge starts above `child`),
  // and the post-edit graph is what invalidation consumers care about.
  std::vector<NodeId> below = DescendantsOf(child);
  StampNodes(below);
  if (affected != nullptr) *affected = std::move(below);
  return Status::OK();
}

NodeId DagBuilder::AddNode(std::string_view name) {
  auto [it, inserted] =
      name_to_id_.try_emplace(std::string(name), static_cast<NodeId>(names_.size()));
  if (inserted) {
    names_.emplace_back(name);
    adj_children_.emplace_back();
    adj_parents_.emplace_back();
  }
  return it->second;
}

Status DagBuilder::AddEdge(std::string_view parent, std::string_view child) {
  const NodeId p = AddNode(parent);
  const NodeId c = AddNode(child);
  return AddEdgeById(p, c);
}

Status DagBuilder::AddEdgeById(NodeId parent, NodeId child) {
  if (parent >= names_.size() || child >= names_.size()) {
    return Status::OutOfRange("AddEdgeById: unknown node id");
  }
  if (parent == child) {
    return Status::InvalidArgument("self-loop on node '" + names_[parent] +
                                   "'");
  }
  auto& kids = adj_children_[parent];
  if (std::find(kids.begin(), kids.end(), child) != kids.end()) {
    return Status::AlreadyExists("duplicate edge " + names_[parent] + " -> " +
                                 names_[child]);
  }
  kids.push_back(child);
  adj_parents_[child].push_back(parent);
  ++edge_count_;
  return Status::OK();
}

StatusOr<Dag> DagBuilder::Build() && {
  // Cycle check via Kahn's algorithm on the adjacency lists.
  const size_t n = names_.size();
  std::vector<size_t> indegree(n);
  for (size_t v = 0; v < n; ++v) indegree[v] = adj_parents_[v].size();
  std::deque<NodeId> ready;
  for (size_t v = 0; v < n; ++v) {
    if (indegree[v] == 0) ready.push_back(static_cast<NodeId>(v));
  }
  size_t visited = 0;
  while (!ready.empty()) {
    NodeId v = ready.front();
    ready.pop_front();
    ++visited;
    for (NodeId c : adj_children_[v]) {
      if (--indegree[c] == 0) ready.push_back(c);
    }
  }
  if (visited != n) {
    return Status::InvalidArgument(
        "graph contains a cycle; subject hierarchies must be acyclic");
  }

  Dag dag;
  dag.edge_count_ = edge_count_;
  dag.node_generations_.assign(n, 0);
  dag.names_ = std::move(names_);
  dag.name_to_id_ = std::move(name_to_id_);
  dag.child_offsets_.assign(1, 0);
  dag.parent_offsets_.assign(1, 0);
  dag.child_offsets_.reserve(n + 1);
  dag.parent_offsets_.reserve(n + 1);
  for (size_t v = 0; v < n; ++v) {
    dag.children_.insert(dag.children_.end(), adj_children_[v].begin(),
                         adj_children_[v].end());
    dag.child_offsets_.push_back(dag.children_.size());
    dag.parents_.insert(dag.parents_.end(), adj_parents_[v].begin(),
                        adj_parents_[v].end());
    dag.parent_offsets_.push_back(dag.parents_.size());
  }
  return dag;
}

}  // namespace ucr::graph
