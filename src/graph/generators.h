#ifndef UCR_GRAPH_GENERATORS_H_
#define UCR_GRAPH_GENERATORS_H_

#include <cstdint>
#include <string>

#include "graph/dag.h"
#include "util/random.h"
#include "util/status.h"

namespace ucr::graph {

/// \brief Generates `KDAG(n)`: a random *complete* DAG (paper §4).
///
/// `n` nodes, one root, one sink, and an edge between every pair of
/// nodes directed so as to prevent cycles — i.e. the nodes are placed
/// in a uniformly random linear order and every edge points from the
/// earlier to the later node. Such graphs contain far more paths than
/// typical subject hierarchies (the path count from root to sink is
/// 2^(n-2)), which is exactly why the paper uses them as stress tests.
///
/// Node names are "K0" (root) .. "K<n-1>" (sink) in position order.
/// Requires n >= 2.
StatusOr<Dag> GenerateKDag(size_t n, Random& rng);

/// Options for `GenerateLayeredDag`.
struct LayeredDagOptions {
  size_t layers = 4;            ///< Number of layers (>= 1).
  size_t nodes_per_layer = 8;   ///< Nodes in each layer (>= 1).
  /// Probability of an edge from a node in layer i to a node in layer
  /// i+1. Each node is additionally guaranteed one parent in the layer
  /// above (except layer 0) so the graph stays connected downward.
  double edge_probability = 0.3;
  /// Probability of a "skip" edge jumping over at least one layer,
  /// giving paths of different lengths between the same endpoints —
  /// required to exercise the locality policy on non-tree data.
  double skip_edge_probability = 0.05;
};

/// \brief Generates a layered random DAG resembling an organizational
/// hierarchy: layer 0 holds top-level groups, the last layer holds
/// individuals (sinks). Names are "L<i>N<j>".
StatusOr<Dag> GenerateLayeredDag(const LayeredDagOptions& options,
                                 Random& rng);

/// Options for `GenerateScaleLayeredDag`.
struct ScaleLayeredDagOptions {
  size_t nodes = size_t{1} << 20;  ///< Total node count (>= 2).
  size_t layers = 24;              ///< Layers; layer l gets ~nodes/layers.
  size_t parents_per_node = 2;     ///< Parents sampled from the layer above.
};

/// \brief Generates a layered DAG at million-node scale.
///
/// `GenerateLayeredDag` examines every (parent, child) pair within
/// adjacent layers — O(layers * width^2), unusable at 10^6 nodes. Here
/// each non-root node directly samples `parents_per_node` parents
/// uniformly from the layer above, so construction is
/// O(nodes * parents_per_node). Nodes are named "S<id>" and laid out
/// layer-contiguously (layer l spans ids [l*n/layers, (l+1)*n/layers)).
/// Duplicate parent draws are dropped, so in-degrees are at most (not
/// exactly) `parents_per_node`.
StatusOr<Dag> GenerateScaleLayeredDag(const ScaleLayeredDagOptions& options,
                                      Random& rng);

/// \brief Generates a random tree with `n` nodes; node 0 ("T0") is the
/// root and each other node receives one uniformly random parent among
/// earlier nodes. Trees are the degenerate hierarchy shape prior work
/// handled; used as a baseline structure in tests. Requires n >= 1.
StatusOr<Dag> GenerateRandomTree(size_t n, Random& rng);

/// \brief Generates a stack of `k` diamonds:
///
///     top -> a_i, b_i -> bottom_i (= top of diamond i+1) ...
///
/// The number of root-to-sink paths is 2^k with only 3k+1 nodes — the
/// adversarial shape from the paper's §3.3 worst-case analysis.
/// Names: "D<i>t" (top of diamond i), "D<i>a", "D<i>b", sink "Dsink".
/// Requires k >= 1.
StatusOr<Dag> GenerateDiamondStack(size_t k);

}  // namespace ucr::graph

#endif  // UCR_GRAPH_GENERATORS_H_
