#ifndef UCR_GRAPH_DAG_H_
#define UCR_GRAPH_DAG_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace ucr::graph {

/// Dense identifier of a subject node within one `Dag`.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = UINT32_MAX;

/// \brief Directed acyclic graph of subjects.
///
/// Nodes represent subjects (individuals and groups); a directed edge
/// `u -> v` means "v is a member of group u" (paper §2.1): labels
/// propagate downward along edges. Individuals are sinks; top-level
/// groups are roots. The structure is guaranteed acyclic — `DagBuilder`
/// constructs one wholesale and rejects cycles, and the in-place
/// mutators (`InsertEdge`, `EraseEdge`, `EnsureNode`) preserve the
/// invariant edit by edit (`InsertEdge` runs a reachability cycle
/// check and fails without modifying anything).
///
/// `Dag` is a value type: cheap to move, copyable, safe to share
/// across threads for reads. Mutation is not synchronized — callers
/// must quiesce readers around an edit (the write path of
/// `AccessControlSystem` does).
///
/// Every successful structural mutation bumps `generation()` and
/// stamps the nodes whose *ancestor sets* the edit can have changed —
/// the edited child and all of its descendants in the membership
/// direction — with the new generation. Derived-state caches use the
/// stamps for reachability-scoped invalidation instead of wholesale
/// clears (DESIGN.md §10).
class Dag {
 public:
  /// Constructs an empty graph (0 nodes). Useful as a placeholder.
  Dag() = default;

  Dag(const Dag&) = default;
  Dag& operator=(const Dag&) = default;
  Dag(Dag&&) = default;
  Dag& operator=(Dag&&) = default;

  /// Number of nodes.
  size_t node_count() const { return names_.size(); }

  /// Number of edges.
  size_t edge_count() const { return edge_count_; }

  /// Name of node `id`. Requires `id < node_count()`.
  const std::string& name(NodeId id) const { return names_[id]; }

  /// Id for `name`, or `kInvalidNode` if absent.
  NodeId FindNode(std::string_view node_name) const;

  /// Children of `id` (members of group `id`), in insertion order.
  std::span<const NodeId> children(NodeId id) const {
    return {children_.data() + child_offsets_[id],
            child_offsets_[id + 1] - child_offsets_[id]};
  }

  /// Parents of `id` (groups `id` belongs to), in insertion order.
  std::span<const NodeId> parents(NodeId id) const {
    return {parents_.data() + parent_offsets_[id],
            parent_offsets_[id + 1] - parent_offsets_[id]};
  }

  bool is_root(NodeId id) const { return parents(id).empty(); }
  bool is_sink(NodeId id) const { return children(id).empty(); }

  /// All root node ids, ascending.
  std::vector<NodeId> Roots() const;

  /// All sink node ids, ascending.
  std::vector<NodeId> Sinks() const;

  /// True iff edge `parent -> child` exists. O(out-degree(parent)).
  bool HasEdge(NodeId parent, NodeId child) const;

  /// A topological order (parents before children). Stable across runs.
  std::vector<NodeId> TopologicalOrder() const;

  // -- In-place mutation (reachability-scoped; DESIGN.md §10) --------

  /// Monotonic counter bumped by every successful structural mutation
  /// (edge insert/remove, node creation). 0 for a freshly built graph.
  uint64_t generation() const { return generation_; }

  /// Generation of the last mutation that can have changed node `id`'s
  /// ancestor set (0 = untouched since construction). Consumers of
  /// derived per-subject state compare this against the generation
  /// they captured at derivation time.
  uint64_t node_generation(NodeId id) const { return node_generations_[id]; }

  /// All per-node stamps at once, indexed by node id — for bulk
  /// survivorship filters (snapshot carry-over scans every cached
  /// entry; one span read beats node_count() bounds-checked calls).
  std::span<const uint64_t> node_generations() const {
    return node_generations_;
  }

  /// Returns the id of `name`, appending a new isolated node (a root
  /// and sink, stamped with a fresh generation) if absent.
  NodeId EnsureNode(std::string_view name);

  /// \brief Adds edge `parent -> child` in place. Fails on self-loops,
  /// duplicates, unknown ids, and — after an O(reachable) reachability
  /// check — on edges that would close a cycle; on failure the graph
  /// is unchanged. O(V + E) worst case for the CSR splice, but with no
  /// name-map rehash, no per-node allocations, and no full-graph
  /// acyclicity replay (the `DagBuilder` rebuild this replaces).
  ///
  /// On success stamps `child` and every descendant of `child` with
  /// the new generation; when `affected` is non-null it receives those
  /// node ids (the subjects whose ancestor sub-graphs may now differ).
  Status InsertEdge(NodeId parent, NodeId child,
                    std::vector<NodeId>* affected = nullptr);

  /// Removes edge `parent -> child` in place; NotFound if absent.
  /// Removal cannot create a cycle, so it always succeeds on an
  /// existing edge. Stamps and reports affected nodes like
  /// `InsertEdge`.
  Status EraseEdge(NodeId parent, NodeId child,
                   std::vector<NodeId>* affected = nullptr);

  /// `start` plus every node reachable from it along child edges, in
  /// BFS discovery order — exactly the subjects whose ancestor sets an
  /// edit of an edge into `start` can change.
  std::vector<NodeId> DescendantsOf(NodeId start) const;

  /// \brief Reassembles a graph from serialized CSR parts (the binary
  /// snapshot format, graph/io.h).
  ///
  /// Unlike `DagBuilder` this adopts the adjacency arrays wholesale —
  /// O(V + E) with no per-edge hash lookups — which is what makes a
  /// million-node cold start feasible. Because the parts may come from
  /// a corrupted or adversarial file, everything is re-validated:
  /// offset monotonicity, id ranges, child/parent mirror consistency
  /// (same edge multiset, no duplicates, no self-loops), unique node
  /// names, and acyclicity. Any violation is a clean `kCorruption`;
  /// a returned graph upholds every `Dag` invariant. Generations are
  /// zeroed, exactly like a `DagBuilder`-built graph.
  static StatusOr<Dag> FromCsr(std::vector<std::string> names,
                               std::vector<size_t> child_offsets,
                               std::vector<NodeId> children,
                               std::vector<size_t> parent_offsets,
                               std::vector<NodeId> parents);

 private:
  friend class DagBuilder;

  /// Stamps `nodes` with a freshly bumped generation.
  void StampNodes(const std::vector<NodeId>& nodes);

  size_t edge_count_ = 0;
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> name_to_id_;
  // CSR adjacency: children_[child_offsets_[v] .. child_offsets_[v+1])
  std::vector<size_t> child_offsets_{0};
  std::vector<NodeId> children_;
  std::vector<size_t> parent_offsets_{0};
  std::vector<NodeId> parents_;
  uint64_t generation_ = 0;
  std::vector<uint64_t> node_generations_;
};

/// \brief Incremental, validating constructor of `Dag`.
///
/// Usage:
///
///     DagBuilder b;
///     b.AddEdge("S1", "S3");   // nodes auto-created on first mention
///     auto dag = b.Build();    // StatusOr — fails on a cycle
///
/// Node ids are assigned in first-mention order, so a fixed sequence of
/// calls yields identical ids on every platform (experiments depend on
/// this determinism).
class DagBuilder {
 public:
  DagBuilder() = default;

  // One builder produces one graph; copying half-built state is a
  // likely bug, so the type is move-only.
  DagBuilder(const DagBuilder&) = delete;
  DagBuilder& operator=(const DagBuilder&) = delete;
  DagBuilder(DagBuilder&&) = default;
  DagBuilder& operator=(DagBuilder&&) = default;

  /// Adds a node (no-op if present). Returns its id.
  NodeId AddNode(std::string_view name);

  /// Adds edge `parent -> child`, creating missing nodes.
  /// Fails on self-loops and duplicate edges.
  Status AddEdge(std::string_view parent, std::string_view child);

  /// Id-based overload; both ids must already exist.
  Status AddEdgeById(NodeId parent, NodeId child);

  /// Number of nodes added so far.
  size_t node_count() const { return names_.size(); }

  /// Validates acyclicity and produces the immutable graph.
  /// The builder is left in a valid empty-ish state afterwards; reuse
  /// for a second graph is not supported.
  StatusOr<Dag> Build() &&;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> name_to_id_;
  std::vector<std::vector<NodeId>> adj_children_;
  std::vector<std::vector<NodeId>> adj_parents_;
  size_t edge_count_ = 0;
};

}  // namespace ucr::graph

#endif  // UCR_GRAPH_DAG_H_
