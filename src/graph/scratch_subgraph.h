#ifndef UCR_GRAPH_SCRATCH_SUBGRAPH_H_
#define UCR_GRAPH_SCRATCH_SUBGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/ancestor_subgraph.h"
#include "graph/dag.h"

namespace ucr::graph {

class SubgraphScratch;

/// \brief A read-only view of the ancestor sub-graph most recently
/// extracted into a `SubgraphScratch` — the allocation-free stand-in
/// for `AncestorSubgraph` on the per-query hot path.
///
/// The view exposes the subset of the `AncestorSubgraph` interface the
/// propagation engines consume (members, CSR adjacency, topological
/// order, sink); the derived path metrics (distances, path counts) are
/// deliberately absent because no per-query engine needs them. All
/// spans alias the scratch arena's buffers: the view is invalidated by
/// the next `Extract` call on the same scratch.
class ScratchSubgraphView {
 public:
  size_t member_count() const;
  size_t edge_count() const;

  /// Global node id of local member `v`.
  NodeId global_id(LocalId v) const;

  /// Local id of the extraction sink.
  LocalId sink() const;

  /// Children of `v` inside the sub-graph.
  std::span<const LocalId> children(LocalId v) const;

  /// Parents of `v` inside the sub-graph.
  std::span<const LocalId> parents(LocalId v) const;

  /// Members in a topological order (parents before children).
  std::span<const LocalId> topological_order() const;

 private:
  friend class SubgraphScratch;
  explicit ScratchSubgraphView(const SubgraphScratch* scratch)
      : scratch_(scratch) {}
  const SubgraphScratch* scratch_;
};

/// \brief Epoch-stamped per-thread scratch arena for ancestor
/// sub-graph extraction (DESIGN.md §7 "Hot-path memory layout").
///
/// The classic `AncestorSubgraph` constructor allocates an
/// `unordered_map<NodeId, LocalId>` per query to densify member ids.
/// The scratch arena replaces it with two flat arrays indexed by
/// *global* node id — `visited_epoch` and `local_id` — sized once per
/// hierarchy and never cleared: a new query bumps the 64-bit epoch
/// counter, which invalidates every stale stamp in O(1). All other
/// buffers (member list, CSR adjacency, topological order) are reused
/// across queries, so steady-state extraction performs zero heap
/// allocations.
///
/// One instance per thread (see `ucr::core::HotPath`); instances are
/// not thread-safe and views must not outlive the next `Extract`.
/// A single scratch may serve hierarchies of different sizes: buffers
/// only ever grow, and the epoch stamp makes stale entries from a
/// previous hierarchy unreadable.
class SubgraphScratch {
 public:
  SubgraphScratch() = default;

  SubgraphScratch(const SubgraphScratch&) = delete;
  SubgraphScratch& operator=(const SubgraphScratch&) = delete;

  /// Extracts the ancestor sub-graph of `sink` (paper §3, Step 1) into
  /// the arena and returns a view of it. Bit-identical topology to
  /// `AncestorSubgraph(dag, sink)`: same members in the same discovery
  /// order, same CSR layout, same Kahn-FIFO topological order.
  /// Requires `sink < dag.node_count()`. Invalidates previous views.
  ScratchSubgraphView Extract(const Dag& dag, NodeId sink);

  /// Local id of global node `id` in the *current* extraction, or
  /// `kInvalidNode` if it is not a member (or no extraction is live).
  LocalId ToLocal(NodeId id) const;

  /// Members of the current extraction (local -> global).
  std::span<const NodeId> members() const {
    return {members_.data(), members_.size()};
  }

 private:
  friend class ScratchSubgraphView;

  void EnsureNodeCapacity(size_t node_count);

  uint64_t epoch_ = 0;
  // Global-id-indexed, epoch-stamped: `local_id_[g]` is meaningful only
  // while `visited_epoch_[g] == epoch_`. Never cleared.
  std::vector<uint64_t> visited_epoch_;
  std::vector<LocalId> local_id_;

  // Reused per query (clear() keeps capacity; no steady-state allocs).
  std::vector<NodeId> members_;  // Doubles as the BFS discovery queue.
  std::vector<LocalId> topo_;    // Doubles as the Kahn ready queue.
  std::vector<uint32_t> indegree_;
  std::vector<size_t> child_offsets_;
  std::vector<LocalId> children_;
  std::vector<size_t> parent_offsets_;
  std::vector<LocalId> parents_;
  LocalId sink_local_ = 0;
};

inline size_t ScratchSubgraphView::member_count() const {
  return scratch_->members_.size();
}

inline size_t ScratchSubgraphView::edge_count() const {
  return scratch_->children_.size();
}

inline NodeId ScratchSubgraphView::global_id(LocalId v) const {
  return scratch_->members_[v];
}

inline LocalId ScratchSubgraphView::sink() const {
  return scratch_->sink_local_;
}

inline std::span<const LocalId> ScratchSubgraphView::children(
    LocalId v) const {
  return {scratch_->children_.data() + scratch_->child_offsets_[v],
          scratch_->child_offsets_[v + 1] - scratch_->child_offsets_[v]};
}

inline std::span<const LocalId> ScratchSubgraphView::parents(LocalId v) const {
  return {scratch_->parents_.data() + scratch_->parent_offsets_[v],
          scratch_->parent_offsets_[v + 1] - scratch_->parent_offsets_[v]};
}

inline std::span<const LocalId> ScratchSubgraphView::topological_order()
    const {
  return {scratch_->topo_.data(), scratch_->topo_.size()};
}

}  // namespace ucr::graph

#endif  // UCR_GRAPH_SCRATCH_SUBGRAPH_H_
