#include "graph/ancestor_subgraph.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_map>

#include "graph/scratch_subgraph.h"
#include "obs/profiler.h"

namespace ucr::graph {

namespace {

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

}  // namespace

AncestorSubgraph::AncestorSubgraph(const Dag& dag, NodeId sink) : dag_(&dag) {
  assert(sink < dag.node_count());
  // Classic-engine extraction shares the extract phase with the
  // scratch arena (DESIGN.md §14); inert unless the query is sampled.
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kExtract);

  // Reverse BFS from the sink over parent edges discovers the member
  // set in deterministic order; the discovery order is also convenient
  // because we later want the sink's local id.
  std::unordered_map<NodeId, LocalId> local;
  std::deque<NodeId> queue;
  auto discover = [&](NodeId g) -> LocalId {
    auto [it, inserted] =
        local.try_emplace(g, static_cast<LocalId>(members_.size()));
    if (inserted) {
      members_.push_back(g);
      queue.push_back(g);
    }
    return it->second;
  };
  sink_local_ = discover(sink);
  while (!queue.empty()) {
    NodeId g = queue.front();
    queue.pop_front();
    for (NodeId p : dag.parents(g)) discover(p);
  }

  const size_t n = members_.size();

  // Build intra-subgraph adjacency (CSR). Every parent of a member is a
  // member, so parent lists copy verbatim; child lists are filtered.
  child_offsets_.assign(1, 0);
  parent_offsets_.assign(1, 0);
  for (LocalId v = 0; v < n; ++v) {
    const NodeId g = members_[v];
    for (NodeId c : dag.children(g)) {
      auto it = local.find(c);
      if (it != local.end()) children_.push_back(it->second);
    }
    child_offsets_.push_back(children_.size());
    for (NodeId p : dag.parents(g)) {
      parents_.push_back(local.at(p));
    }
    parent_offsets_.push_back(parents_.size());
  }
  edge_count_ = children_.size();
  assert(parents_.size() == children_.size());

  // Topological order (Kahn, FIFO: deterministic).
  {
    std::vector<size_t> indegree(n);
    std::deque<LocalId> ready;
    for (LocalId v = 0; v < n; ++v) {
      indegree[v] = parents(v).size();
      if (indegree[v] == 0) ready.push_back(v);
    }
    topo_.reserve(n);
    while (!ready.empty()) {
      LocalId v = ready.front();
      ready.pop_front();
      topo_.push_back(v);
      for (LocalId c : children(v)) {
        if (--indegree[c] == 0) ready.push_back(c);
      }
    }
    assert(topo_.size() == n && "subgraph of a DAG must be acyclic");
  }

  ComputeMetrics();

  // Retain the lookup table for ToLocal() queries.
  local_index_ = std::move(local);
}

AncestorSubgraph::AncestorSubgraph(const Dag& dag, NodeId sink,
                                   SubgraphScratch& scratch)
    : dag_(&dag) {
  const ScratchSubgraphView view = scratch.Extract(dag, sink);
  const std::span<const NodeId> members = scratch.members();
  members_.assign(members.begin(), members.end());
  sink_local_ = view.sink();
  const size_t n = members_.size();

  child_offsets_.assign(1, 0);
  parent_offsets_.assign(1, 0);
  for (LocalId v = 0; v < n; ++v) {
    const std::span<const LocalId> cs = view.children(v);
    children_.insert(children_.end(), cs.begin(), cs.end());
    child_offsets_.push_back(children_.size());
    const std::span<const LocalId> ps = view.parents(v);
    parents_.insert(parents_.end(), ps.begin(), ps.end());
    parent_offsets_.push_back(parents_.size());
  }
  edge_count_ = children_.size();

  const std::span<const LocalId> topo = view.topological_order();
  topo_.assign(topo.begin(), topo.end());

  ComputeMetrics();

  local_index_.reserve(n);
  for (LocalId v = 0; v < n; ++v) local_index_.emplace(members_[v], v);
}

void AncestorSubgraph::ComputeMetrics() {
  const size_t n = members_.size();
  roots_.clear();
  for (LocalId v = 0; v < n; ++v) {
    if (parents(v).empty()) roots_.push_back(v);
  }

  // Distance and path DP in reverse topological order: children are
  // finalized before their parents.
  shortest_dist_.assign(n, 0);
  longest_dist_.assign(n, 0);
  path_count_.assign(n, 0);
  total_path_len_.assign(n, 0);
  path_count_[sink_local_] = 1;  // The empty path.
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    const LocalId v = *it;
    if (v == sink_local_) continue;
    uint32_t sd = UINT32_MAX;
    uint32_t ld = 0;
    uint64_t pc = 0;
    uint64_t tl = 0;
    for (LocalId c : children(v)) {
      sd = std::min(sd, shortest_dist_[c] + 1);
      ld = std::max(ld, longest_dist_[c] + 1);
      pc = SatAdd(pc, path_count_[c]);
      // Each path through c is one edge longer than the path from c.
      tl = SatAdd(tl, SatAdd(total_path_len_[c], path_count_[c]));
    }
    // Every non-sink member reaches the sink, so it has children in H.
    assert(!children(v).empty());
    shortest_dist_[v] = sd;
    longest_dist_[v] = ld;
    path_count_[v] = pc;
    total_path_len_[v] = tl;
  }
  for (LocalId r : roots_) depth_ = std::max(depth_, longest_dist_[r]);
}

LocalId AncestorSubgraph::ToLocal(NodeId id) const {
  auto it = local_index_.find(id);
  return it == local_index_.end() ? kInvalidNode : it->second;
}

uint64_t AncestorSubgraph::TotalPathLength(
    std::span<const LocalId> sources) const {
  uint64_t total = 0;
  for (LocalId v : sources) total = SatAdd(total, total_path_len_[v]);
  return total;
}

}  // namespace ucr::graph
