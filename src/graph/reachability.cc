#include "graph/reachability.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/metrics.h"

namespace ucr::graph {

namespace {

/// Index health telemetry (DESIGN.md §12). Gauges describe the most
/// recently published generation; counters/histograms accumulate.
struct ReachMetrics {
  obs::Gauge& supernodes = obs::Registry::Global().GetGauge(
      "ucr_reach_supernodes",
      "Summary-DAG supernodes (label-equivalence classes with members)");
  obs::Gauge& folded_nodes = obs::Registry::Global().GetGauge(
      "ucr_reach_folded_nodes",
      "Hierarchy nodes folded into the interior class");
  obs::Gauge& label_entries = obs::Registry::Global().GetGauge(
      "ucr_reach_label_entries",
      "Compressed profile-label entries across all nodes");
  obs::Gauge& label_bytes = obs::Registry::Global().GetGauge(
      "ucr_reach_label_bytes",
      "Reachability-index label footprint (profile + 2-hop pools)");
  obs::Counter& builds = obs::Registry::Global().GetCounter(
      "ucr_reach_builds_total", "Full reachability-index builds");
  obs::Counter& incremental = obs::Registry::Global().GetCounter(
      "ucr_reach_incremental_rebuilds_total",
      "Scoped (affected-set) reachability-index rebuilds");
  obs::Counter& budget_aborts = obs::Registry::Global().GetCounter(
      "ucr_reach_budget_aborts_total",
      "Label builds abandoned over a ReachabilityOptions budget");
  obs::Counter& fallbacks = obs::Registry::Global().GetCounter(
      "ucr_reach_traversal_fallbacks_total",
      "Reaches() queries answered by filtered traversal (no 2-hop hit)");
  obs::Histogram& rebuild_ns = obs::Registry::Global().GetHistogram(
      "ucr_reach_rebuild_ns",
      "Incremental reachability-index rebuild latency (ns, log2 buckets)");
  obs::Histogram& affected = obs::Registry::Global().GetHistogram(
      "ucr_reach_rebuild_affected_nodes",
      "Nodes relabeled per incremental rebuild (log2 buckets)");
};

ReachMetrics& Metrics() {
  static ReachMetrics* metrics = new ReachMetrics();
  return *metrics;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > UINT64_MAX - b ? UINT64_MAX : a + b;
}

/// Thread-local scratch for the traversal fallback of `Reaches`:
/// epoch-stamped visited marks plus an explicit DFS stack, both grown
/// on demand and reused across queries (and across index generations —
/// the epoch bump makes stale stamps harmless).
struct ReachScratch {
  uint64_t epoch = 0;
  std::vector<uint64_t> visited;
  std::vector<NodeId> stack;

  static ReachScratch& ThreadLocal() {
    thread_local ReachScratch scratch;
    return scratch;
  }
};

}  // namespace

bool ReachabilityIndex::is_root(NodeId v) const {
  const ClassId c = class_of_[v];
  return c != kInteriorClass && classes_[c].is_root;
}

ReachabilityIndex::ClassId ReachabilityIndex::InternClass(
    std::vector<uint64_t> row, bool root) {
  ClassKey key{std::move(row), root};
  auto it = class_ids_.find(key);
  if (it != class_ids_.end()) return it->second;
  const auto id = static_cast<ClassId>(classes_.size());
  classes_.push_back(ClassData{std::move(key.first), root, 0});
  // The key's row vector was moved into the class; rebuild it as a
  // view-equal copy for the map. (Build-time only; class counts are
  // tiny next to node counts.)
  class_ids_.emplace(ClassKey{classes_.back().row, root}, id);
  return id;
}

void ReachabilityIndex::AssignClasses(const Dag& dag,
                                      std::span<const ReachLabeledRow> rows) {
  const size_t n = dag.node_count();
  class_of_.assign(n, kInteriorClass);
  for (const ReachLabeledRow& r : rows) {
    assert(r.node < n);
    assert(std::is_sorted(r.row.begin(), r.row.end()));
    if (r.row.empty()) continue;  // Unlabeled: root-ness decides below.
    class_of_[r.node] = InternClass(r.row, dag.is_root(r.node));
  }
  for (NodeId v = 0; v < n; ++v) {
    if (class_of_[v] == kInteriorClass && dag.is_root(v)) {
      class_of_[v] = InternClass({}, true);
    }
  }
  for (const ClassId c : class_of_) {
    if (c != kInteriorClass) ++classes_[c].members;
  }
}

bool ReachabilityIndex::ComputeLabels(const Dag& dag,
                                      const std::vector<uint8_t>* affected,
                                      const ReachabilityIndex* prev) {
  const size_t n = dag.node_count();
  const size_t pool_budget = n * options_.max_mean_label_entries;
  label_begin_.assign(n, 0);
  label_end_.assign(n, 0);
  label_pool_.clear();

  // The order to (re)compute: full topological order, or a Kahn order
  // over the affected-induced sub-graph (affected sets are closed
  // under descendants, so an affected node's unaffected parents keep
  // their previous labels — copied below — and its affected parents
  // precede it in the Kahn order).
  std::vector<NodeId> order;
  if (affected == nullptr) {
    order = dag.TopologicalOrder();
  } else {
    assert(prev != nullptr && prev->ready());
    size_t kept_entries = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (v < prev->node_count() && !(*affected)[v]) {
        kept_entries += prev->label_end_[v] - prev->label_begin_[v];
      }
    }
    label_pool_.reserve(kept_entries);
    for (NodeId v = 0; v < n; ++v) {
      if (v < prev->node_count() && !(*affected)[v]) {
        label_begin_[v] = label_pool_.size();
        label_pool_.insert(
            label_pool_.end(),
            prev->label_pool_.begin() +
                static_cast<ptrdiff_t>(prev->label_begin_[v]),
            prev->label_pool_.begin() +
                static_cast<ptrdiff_t>(prev->label_end_[v]));
        label_end_[v] = label_pool_.size();
      }
    }
    // Kahn over the affected nodes only: in-degree restricted to
    // affected parents.
    std::vector<uint32_t> indegree(n, 0);
    for (NodeId v = 0; v < n; ++v) {
      if (!(*affected)[v]) continue;
      uint32_t d = 0;
      for (const NodeId p : dag.parents(v)) d += (*affected)[p] ? 1u : 0u;
      indegree[v] = d;
      if (d == 0) order.push_back(v);
    }
    for (size_t head = 0; head < order.size(); ++head) {
      for (const NodeId c : dag.children(order[head])) {
        if ((*affected)[c] && --indegree[c] == 0) order.push_back(c);
      }
    }
  }

  // Topological DP: L(v) = sum over parents p of shift1(L(p)) plus a
  // (class(p), dis=1, 1) unit for each anchor parent. Entries merge by
  // (class, distance) with saturating counts — the same per-node
  // normalize-and-merge the propagation engines perform, so the
  // aggregated counts are bit-identical to engine multiplicities.
  std::vector<ProfileEntry> merge;
  for (const NodeId v : order) {
    merge.clear();
    for (const NodeId p : dag.parents(v)) {
      for (const ProfileEntry& e : label(p)) {
        merge.push_back(ProfileEntry{e.cls, e.dis + 1, e.count});
      }
      const ClassId pc = class_of_[p];
      if (pc != kInteriorClass) merge.push_back(ProfileEntry{pc, 1, 1});
    }
    std::sort(merge.begin(), merge.end(),
              [](const ProfileEntry& a, const ProfileEntry& b) {
                return a.cls != b.cls ? a.cls < b.cls : a.dis < b.dis;
              });
    size_t out = 0;
    for (size_t i = 0; i < merge.size(); ++i) {
      if (out > 0 && merge[out - 1].cls == merge[i].cls &&
          merge[out - 1].dis == merge[i].dis) {
        merge[out - 1].count = SatAdd(merge[out - 1].count, merge[i].count);
      } else {
        merge[out++] = merge[i];
      }
    }
    merge.resize(out);

    if (out > options_.max_node_label_entries ||
        label_pool_.size() + out > pool_budget) {
      return false;
    }
    label_begin_[v] = label_pool_.size();
    label_pool_.insert(label_pool_.end(), merge.begin(), merge.end());
    label_end_[v] = label_pool_.size();
  }
  return true;
}

void ReachabilityIndex::BuildReachSupport(const Dag& dag,
                                          const ReachabilityOptions& options) {
  const size_t n = dag.node_count();

  // Private child-adjacency copy: `Reaches` must stay valid after the
  // source Dag mutates into its next generation.
  adj_offsets_.assign(n + 1, 0);
  adj_children_.clear();
  adj_children_.reserve(dag.edge_count());
  for (NodeId v = 0; v < n; ++v) {
    const std::span<const NodeId> kids = dag.children(v);
    adj_children_.insert(adj_children_.end(), kids.begin(), kids.end());
    adj_offsets_[v + 1] = adj_children_.size();
  }

  const std::vector<NodeId> topo = dag.TopologicalOrder();
  topo_pos_.assign(n, 0);
  for (size_t i = 0; i < topo.size(); ++i) {
    topo_pos_[topo[i]] = static_cast<uint32_t>(i);
  }

  // DFS-forest intervals over child edges: containment proves a tree
  // path, so `ivl(a) ⊇ ivl(b)` is a sufficient (not necessary)
  // reachability witness the traversal fallback accepts for free.
  ivl_begin_.assign(n, 0);
  ivl_end_.assign(n, 0);
  {
    std::vector<uint8_t> seen(n, 0);
    // Frame = (node, next child index); explicit stack to stay safe on
    // million-node chains.
    std::vector<std::pair<NodeId, size_t>> stack;
    uint32_t clock = 0;
    for (const NodeId r : topo) {
      if (seen[r]) continue;
      if (!dag.is_root(r)) continue;
      seen[r] = 1;
      ivl_begin_[r] = clock++;
      stack.emplace_back(r, 0);
      while (!stack.empty()) {
        auto& [v, next] = stack.back();
        const std::span<const NodeId> kids = dag.children(v);
        bool descended = false;
        while (next < kids.size()) {
          const NodeId c = kids[next++];
          if (!seen[c]) {
            seen[c] = 1;
            ivl_begin_[c] = clock++;
            stack.emplace_back(c, 0);
            descended = true;
            break;
          }
        }
        if (!descended) {
          ivl_end_[v] = clock++;
          stack.pop_back();
        }
      }
    }
    // Isolated components unreachable from any root cannot exist in a
    // DAG (every component has a parentless node), but guard anyway:
    // unvisited nodes keep the empty interval [0, 0), which never
    // claims containment of a distinct node's interval.
  }

  // Exact 2-hop (pruned-landmark) labels, gated by size. Landmarks in
  // descending total-degree order: high-degree hubs cover the most
  // paths first, which is what makes pruning effective.
  two_hop_ready_ = false;
  in_offsets_.clear();
  out_offsets_.clear();
  in_pool_.clear();
  out_pool_.clear();
  rank_of_.clear();
  if (n == 0 || n > options.two_hop_max_nodes) return;

  std::vector<NodeId> by_degree(n);
  std::iota(by_degree.begin(), by_degree.end(), NodeId{0});
  std::sort(by_degree.begin(), by_degree.end(), [&](NodeId a, NodeId b) {
    const size_t da = dag.children(a).size() + dag.parents(a).size();
    const size_t db = dag.children(b).size() + dag.parents(b).size();
    return da != db ? da > db : a < b;
  });
  rank_of_.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    rank_of_[by_degree[i]] = static_cast<uint32_t>(i);
  }

  // Per-node label vectors during construction (ranks appended in
  // ascending order, so each stays sorted); flattened into pools below.
  std::vector<std::vector<uint32_t>> in_label(n);
  std::vector<std::vector<uint32_t>> out_label(n);
  const size_t hop_budget = n * options.max_mean_hop_entries;
  size_t hop_entries = 0;

  const auto covered = [&](NodeId a, NodeId b) {
    const std::vector<uint32_t>& out = out_label[a];
    const std::vector<uint32_t>& in = in_label[b];
    size_t i = 0;
    size_t j = 0;
    while (i < out.size() && j < in.size()) {
      if (out[i] == in[j]) return true;
      if (out[i] < in[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return false;
  };

  // Visit stamps (2k = forward sweep of landmark k, 2k+1 = backward)
  // so a pruned node is inspected once per sweep, not once per
  // incoming edge.
  std::vector<uint64_t> stamp(n, UINT64_MAX);
  std::vector<NodeId> queue;
  for (size_t k = 0; k < n && hop_entries <= hop_budget; ++k) {
    const NodeId lm = by_degree[k];
    // Forward sweep: lm reaches u  =>  rank k enters in_label[u].
    queue.clear();
    queue.push_back(lm);
    stamp[lm] = 2 * k;
    in_label[lm].push_back(static_cast<uint32_t>(k));
    ++hop_entries;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const NodeId c : dag.children(queue[head])) {
        if (stamp[c] == 2 * k) continue;
        stamp[c] = 2 * k;
        if (covered(lm, c)) continue;  // Higher-rank landmark already covers.
        in_label[c].push_back(static_cast<uint32_t>(k));
        ++hop_entries;
        queue.push_back(c);
      }
    }
    // Backward sweep: u reaches lm  =>  rank k enters out_label[u].
    queue.clear();
    queue.push_back(lm);
    stamp[lm] = 2 * k + 1;
    out_label[lm].push_back(static_cast<uint32_t>(k));
    ++hop_entries;
    for (size_t head = 0; head < queue.size(); ++head) {
      for (const NodeId p : dag.parents(queue[head])) {
        if (stamp[p] == 2 * k + 1) continue;
        stamp[p] = 2 * k + 1;
        if (covered(p, lm)) continue;
        out_label[p].push_back(static_cast<uint32_t>(k));
        ++hop_entries;
        queue.push_back(p);
      }
    }
  }
  if (hop_entries > hop_budget) return;  // Profiles stay usable.

  in_offsets_.assign(n + 1, 0);
  out_offsets_.assign(n + 1, 0);
  in_pool_.reserve(hop_entries / 2);
  out_pool_.reserve(hop_entries / 2);
  for (NodeId v = 0; v < n; ++v) {
    in_pool_.insert(in_pool_.end(), in_label[v].begin(), in_label[v].end());
    out_pool_.insert(out_pool_.end(), out_label[v].begin(),
                     out_label[v].end());
    in_offsets_[v + 1] = in_pool_.size();
    out_offsets_[v + 1] = out_pool_.size();
  }
  two_hop_ready_ = true;
}

bool ReachabilityIndex::Reaches(NodeId a, NodeId b) const {
  assert(a < node_count() && b < node_count());
  if (a == b) return true;
  // Topological positions: ancestors strictly precede descendants.
  if (topo_pos_[a] >= topo_pos_[b]) return false;

  if (two_hop_ready_) {
    const uint32_t* out = out_pool_.data() + out_offsets_[a];
    const uint32_t* out_end = out_pool_.data() + out_offsets_[a + 1];
    const uint32_t* in = in_pool_.data() + in_offsets_[b];
    const uint32_t* in_end = in_pool_.data() + in_offsets_[b + 1];
    while (out != out_end && in != in_end) {
      if (*out == *in) return true;
      if (*out < *in) {
        ++out;
      } else {
        ++in;
      }
    }
    return false;
  }

  // Spanning-forest interval containment: sufficient, so accept free.
  const auto contains = [this](NodeId u, NodeId v) {
    return ivl_begin_[u] <= ivl_begin_[v] && ivl_end_[v] <= ivl_end_[u] &&
           ivl_begin_[u] < ivl_end_[u];
  };
  if (contains(a, b)) return true;

  if constexpr (obs::kEnabled) Metrics().fallbacks.Inc();
  ReachScratch& scratch = ReachScratch::ThreadLocal();
  if (scratch.visited.size() < node_count()) {
    scratch.visited.resize(node_count(), 0);
  }
  const uint64_t epoch = ++scratch.epoch;
  scratch.stack.clear();
  scratch.stack.push_back(a);
  scratch.visited[a] = epoch;
  const uint32_t limit = topo_pos_[b];
  while (!scratch.stack.empty()) {
    const NodeId v = scratch.stack.back();
    scratch.stack.pop_back();
    const std::span<const NodeId> kids{
        adj_children_.data() + adj_offsets_[v],
        adj_offsets_[v + 1] - adj_offsets_[v]};
    for (const NodeId c : kids) {
      if (c == b) return true;
      // Prune: nodes at or past b's topological position cannot lead
      // to b; contained intervals prove reachability outright.
      if (topo_pos_[c] >= limit) continue;
      if (scratch.visited[c] == epoch) continue;
      scratch.visited[c] = epoch;
      if (contains(c, b)) return true;
      scratch.stack.push_back(c);
    }
  }
  return false;
}

ReachabilityIndex::IndexStats ReachabilityIndex::stats() const {
  IndexStats s;
  s.ready = ready_;
  s.two_hop_ready = two_hop_ready_;
  for (const ClassData& c : classes_) {
    if (c.members > 0) ++s.supernodes;
  }
  for (const ClassId c : class_of_) {
    if (c == kInteriorClass) ++s.folded_nodes;
  }
  s.label_entries = label_pool_.size();
  s.two_hop_entries = in_pool_.size() + out_pool_.size();
  s.label_bytes = label_pool_.size() * sizeof(ProfileEntry) +
                  (label_begin_.size() + label_end_.size()) * sizeof(size_t) +
                  s.two_hop_entries * sizeof(uint32_t);
  return s;
}

std::map<std::pair<ReachabilityIndex::ClassId, ReachabilityIndex::ClassId>,
         size_t>
ReachabilityIndex::SummaryEdges() const {
  std::map<std::pair<ClassId, ClassId>, size_t> edges;
  for (NodeId v = 0; v < node_count(); ++v) {
    const ClassId to = class_of_[v];
    if (to == kInteriorClass) continue;
    for (const ProfileEntry& e : label(v)) {
      ++edges[{e.cls, to}];
    }
  }
  return edges;
}

void ReachabilityIndex::PublishMetrics() const {
  if constexpr (!obs::kEnabled) return;
  const IndexStats s = stats();
  ReachMetrics& m = Metrics();
  m.supernodes.Set(static_cast<int64_t>(s.supernodes));
  m.folded_nodes.Set(static_cast<int64_t>(s.folded_nodes));
  m.label_entries.Set(static_cast<int64_t>(s.label_entries));
  m.label_bytes.Set(static_cast<int64_t>(s.label_bytes));
}

std::shared_ptr<const ReachabilityIndex> ReachabilityIndex::Build(
    const Dag& dag, uint64_t acm_epoch, std::span<const ReachLabeledRow> rows,
    const ReachabilityOptions& options) {
  auto index = std::shared_ptr<ReachabilityIndex>(new ReachabilityIndex());
  index->options_ = options;
  index->dag_generation_ = dag.generation();
  index->acm_epoch_ = acm_epoch;
  index->AssignClasses(dag, rows);
  index->BuildReachSupport(dag, options);
  index->ready_ = index->ComputeLabels(dag, nullptr, nullptr);
  if (!index->ready_) {
    index->label_pool_.clear();
    index->label_begin_.assign(dag.node_count(), 0);
    index->label_end_.assign(dag.node_count(), 0);
    if constexpr (obs::kEnabled) Metrics().budget_aborts.Inc();
  }
  if constexpr (obs::kEnabled) Metrics().builds.Inc();
  index->PublishMetrics();
  return index;
}

std::shared_ptr<const ReachabilityIndex> ReachabilityIndex::RebuildIncremental(
    const Dag& dag, uint64_t acm_epoch,
    const std::shared_ptr<const ReachabilityIndex>& previous,
    std::span<const NodeId> affected,
    std::span<const ReachLabeledRow> changed_rows) {
  assert(previous != nullptr);
  const uint64_t start_ns = obs::NowNs();
  const size_t n = dag.node_count();

  auto index = std::shared_ptr<ReachabilityIndex>(new ReachabilityIndex());
  index->options_ = previous->options_;
  index->dag_generation_ = dag.generation();
  index->acm_epoch_ = acm_epoch;

  // Classes: start from the previous assignment, then apply row edits
  // and classify new nodes. The intern map persists across generations
  // so class ids are stable (labels copied from `previous` stay
  // decodable).
  index->classes_ = previous->classes_;
  index->class_ids_ = previous->class_ids_;
  index->class_of_ = previous->class_of_;
  index->class_of_.resize(n, kInteriorClass);
  const auto reassign = [&](NodeId v, ClassId next) {
    ClassId& cur = index->class_of_[v];
    if (cur == next) return;
    if (cur != kInteriorClass) --index->classes_[cur].members;
    if (next != kInteriorClass) ++index->classes_[next].members;
    cur = next;
  };
  for (const ReachLabeledRow& r : changed_rows) {
    assert(r.node < n);
    reassign(r.node, r.row.empty()
                         ? (dag.is_root(r.node)
                                ? index->InternClass({}, true)
                                : kInteriorClass)
                         : index->InternClass(r.row, dag.is_root(r.node)));
  }

  // Affected bitmap: caller-listed nodes plus nodes new since
  // `previous`.
  std::vector<uint8_t> dirty(n, 0);
  for (const NodeId v : affected) {
    assert(v < n);
    dirty[v] = 1;
  }
  for (NodeId v = static_cast<NodeId>(previous->node_count());
       v < static_cast<NodeId>(n); ++v) {
    dirty[v] = 1;
    if (index->class_of_[v] == kInteriorClass && dag.is_root(v)) {
      reassign(v, index->InternClass({}, true));
    }
  }
  // Edge edits can flip root-ness (an erase leaving the child
  // parentless, an insert taking a root's independence away), and
  // root-ness is half of the class key: the unlabeled-root class seeds
  // `kDefault`, and `kFirstWins` restricts seeding to root classes.
  // The flips happen only at edited children, which the caller's
  // affected set covers — re-derive those nodes' classes from the
  // current hierarchy.
  for (const NodeId v : affected) {
    const ClassId cur = index->class_of_[v];
    const bool root = dag.is_root(v);
    if (cur == kInteriorClass) {
      if (root) reassign(v, index->InternClass({}, true));
      continue;
    }
    if (index->classes_[cur].is_root == root) continue;
    std::vector<uint64_t> row = index->classes_[cur].row;
    reassign(v, row.empty() && !root
                    ? kInteriorClass
                    : index->InternClass(std::move(row), root));
  }
  // A changed row changes what v's *descendants* inherit; callers pass
  // DescendantsOf(v) in `affected`, which includes v itself.

  size_t dirty_count = 0;
  for (const uint8_t d : dirty) dirty_count += d;

  // Boolean reachability support is matrix-independent: reuse it
  // wholesale unless the hierarchy itself changed.
  if (dag.generation() == previous->dag_generation_ &&
      n == previous->node_count()) {
    index->adj_offsets_ = previous->adj_offsets_;
    index->adj_children_ = previous->adj_children_;
    index->topo_pos_ = previous->topo_pos_;
    index->ivl_begin_ = previous->ivl_begin_;
    index->ivl_end_ = previous->ivl_end_;
    index->two_hop_ready_ = previous->two_hop_ready_;
    index->rank_of_ = previous->rank_of_;
    index->in_offsets_ = previous->in_offsets_;
    index->out_offsets_ = previous->out_offsets_;
    index->in_pool_ = previous->in_pool_;
    index->out_pool_ = previous->out_pool_;
  } else {
    // The 2-hop attempt dominates the support build and a budget abort
    // discards it wholesale; a topology that blew that budget will blow
    // it again unless it shrank, so skip the retry rather than paying
    // the doomed sweep on every mutation.
    ReachabilityOptions support_options = index->options_;
    if (!previous->two_hop_ready_ && n >= previous->node_count()) {
      support_options.two_hop_max_nodes = 0;
    }
    index->BuildReachSupport(dag, support_options);
  }

  // Budget aborts are sticky: without previous labels there is nothing
  // to scope the rebuild against, and a topology that blew the budget
  // once will blow it again — callers stay on the classic engine.
  if (!previous->ready()) {
    index->ready_ = false;
    index->label_begin_.assign(n, 0);
    index->label_end_.assign(n, 0);
  } else {
    index->ready_ = index->ComputeLabels(dag, &dirty, previous.get());
    if (!index->ready_) {
      index->label_pool_.clear();
      index->label_begin_.assign(n, 0);
      index->label_end_.assign(n, 0);
      if constexpr (obs::kEnabled) Metrics().budget_aborts.Inc();
    }
  }
  if constexpr (obs::kEnabled) {
    ReachMetrics& m = Metrics();
    m.incremental.Inc();
    m.rebuild_ns.Observe(obs::NowNs() - start_ns);
    m.affected.Observe(dirty_count);
  }
  index->PublishMetrics();
  return index;
}

}  // namespace ucr::graph
