#include "graph/scratch_subgraph.h"

#include <cassert>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace ucr::graph {

namespace {

/// Step-1 telemetry (DESIGN.md §8): extraction volume and sub-graph
/// size distribution. Handles are cached statics; the recording calls
/// are lock-free and allocation-free, preserving the arena's
/// zero-allocation contract.
struct ExtractMetrics {
  obs::Counter& extractions = obs::Registry::Global().GetCounter(
      "ucr_subgraph_extractions_total",
      "Ancestor sub-graph extractions (scratch arena, Step 1)");
  obs::Histogram& nodes = obs::Registry::Global().GetHistogram(
      "ucr_subgraph_nodes",
      "Members per extracted ancestor sub-graph (log2 buckets)");
};

ExtractMetrics& Metrics() {
  static ExtractMetrics* metrics = new ExtractMetrics();
  return *metrics;
}

}  // namespace

void SubgraphScratch::EnsureNodeCapacity(size_t node_count) {
  if (visited_epoch_.size() < node_count) {
    visited_epoch_.resize(node_count, 0);
    local_id_.resize(node_count, kInvalidNode);
    indegree_.resize(node_count, 0);
    child_offsets_.resize(node_count + 1, 0);
    parent_offsets_.resize(node_count + 1, 0);
  }
}

ScratchSubgraphView SubgraphScratch::Extract(const Dag& dag, NodeId sink) {
  assert(sink < dag.node_count());
  // Phase attribution (DESIGN.md §14): armed only inside a sampled
  // query's collection scope — a TLS load + branch otherwise.
  obs::ScopedPhaseTimer phase_timer(obs::Phase::kExtract);
  EnsureNodeCapacity(dag.node_count());
  ++epoch_;

  // Reverse BFS from the sink over parent edges, identical discovery
  // order to the classic constructor; `members_` doubles as the queue.
  members_.clear();
  auto discover = [&](NodeId g) {
    if (visited_epoch_[g] != epoch_) {
      visited_epoch_[g] = epoch_;
      local_id_[g] = static_cast<LocalId>(members_.size());
      members_.push_back(g);
    }
  };
  discover(sink);
  sink_local_ = 0;
  for (size_t head = 0; head < members_.size(); ++head) {
    for (NodeId p : dag.parents(members_[head])) discover(p);
  }

  // Intra-subgraph CSR: every parent of a member is a member, so parent
  // lists copy verbatim; child lists are filtered by the epoch stamp.
  const size_t n = members_.size();
  children_.clear();
  parents_.clear();
  child_offsets_[0] = 0;
  parent_offsets_[0] = 0;
  for (LocalId v = 0; v < n; ++v) {
    const NodeId g = members_[v];
    for (NodeId c : dag.children(g)) {
      if (visited_epoch_[c] == epoch_) children_.push_back(local_id_[c]);
    }
    child_offsets_[v + 1] = children_.size();
    for (NodeId p : dag.parents(g)) {
      parents_.push_back(local_id_[p]);
    }
    parent_offsets_[v + 1] = parents_.size();
  }
  assert(parents_.size() == children_.size());

  // Kahn FIFO topological order; `topo_` doubles as the ready queue.
  topo_.clear();
  ScratchSubgraphView view(this);
  for (LocalId v = 0; v < n; ++v) {
    indegree_[v] = static_cast<uint32_t>(view.parents(v).size());
    if (indegree_[v] == 0) topo_.push_back(v);
  }
  for (size_t head = 0; head < topo_.size(); ++head) {
    for (LocalId c : view.children(topo_[head])) {
      if (--indegree_[c] == 0) topo_.push_back(c);
    }
  }
  assert(topo_.size() == n && "subgraph of a DAG must be acyclic");
  if constexpr (obs::kEnabled) {
    ExtractMetrics& m = Metrics();
    m.extractions.Inc();
    m.nodes.Observe(n);
  }
  return view;
}

LocalId SubgraphScratch::ToLocal(NodeId id) const {
  if (id >= visited_epoch_.size() || visited_epoch_[id] != epoch_ ||
      epoch_ == 0) {
    return kInvalidNode;
  }
  return local_id_[id];
}

}  // namespace ucr::graph
