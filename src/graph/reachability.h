#ifndef UCR_GRAPH_REACHABILITY_H_
#define UCR_GRAPH_REACHABILITY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/dag.h"

namespace ucr::graph {

/// \brief One subject's explicit-matrix row, packed for the
/// reachability index (DESIGN.md §12).
///
/// `row` holds one opaque 64-bit key per explicit ⟨object, right,
/// mode⟩ entry of the subject, sorted ascending. The graph layer never
/// interprets the keys — it only compares rows for equality to fold
/// label-equivalent nodes into one supernode class; the packing (and
/// the per-column lookup the query path needs) is defined by
/// `acm::ExplicitAcm::PackReachEntry` / `ReachRowMode`.
struct ReachLabeledRow {
  NodeId node = kInvalidNode;
  /// Sorted packed entries; empty = the subject is now unlabeled
  /// (meaningful in incremental row updates).
  std::vector<uint64_t> row;
};

/// Build-time budgets for `ReachabilityIndex`. All are safety valves:
/// exceeding one marks the index not-`ready()` and the query layer
/// falls back to classic ancestor-sub-graph extraction, never to a
/// wrong answer.
struct ReachabilityOptions {
  /// Mean per-node budget for the compressed profile labels: a build
  /// aborts once the pool exceeds `node_count * max_mean_label_entries`
  /// (adversarial mixes of many distinct label signatures and wide
  /// distance spreads can make the labels super-linear).
  size_t max_mean_label_entries = 64;

  /// Hard per-node profile cap, against single pathological sinks.
  size_t max_node_label_entries = 4096;

  /// 2-hop labels (the O(label∩) `Reaches` fast path) are built only
  /// for hierarchies up to this many nodes; larger graphs answer
  /// `Reaches` through the interval-filtered traversal fallback.
  size_t two_hop_max_nodes = size_t{1} << 16;

  /// Mean per-node budget for the 2-hop labels; on breach the 2-hop
  /// structure alone is discarded (the profile labels stay usable).
  size_t max_mean_hop_entries = 48;
};

/// \brief Reachability labels + summary-DAG compression over the
/// subject hierarchy (DESIGN.md §12).
///
/// Three cooperating structures, all immutable once built:
///
///  1. **Supernode classes** — every node is classified by its packed
///     explicit-matrix row plus its root-ness. Nodes with identical
///     rows (and root-ness) are *label-equivalent*: they seed the same
///     propagated mode in every column under every strategy, so the
///     paper's Fig. 7b diamond regions (all unlabeled interior nodes)
///     fold into a single interior class and the summary DAG over the
///     classes stays polynomial where the path count is exponential.
///  2. **Compressed profile labels** — per node `t`, the bag-algebra
///     label `L(t) = {(class, distance) -> path count}` aggregating
///     every hierarchy path from every member of each class down to
///     `t` (counts saturate exactly like the propagation engines').
///     The sink's propagated `allRights` bag is a direct function of
///     `L(t)` and the query column, so an indexed query touches
///     O(|L(t)|) entries instead of extracting the ancestor sub-graph.
///  3. **Boolean reachability labels** — a 2-hop (pruned-landmark)
///     label set answering `Reaches(a, b)` as one sorted-set
///     intersection, with a DFS-interval + topological-position
///     filtered traversal as the exact fallback above the 2-hop size
///     gate.
///
/// Incremental maintenance (`RebuildIncremental`) recomputes profile
/// labels only for the *affected set* — the same
/// edited-child-plus-descendants sets the PR 5 scoped invalidation
/// machinery already produces — and copies everything else from the
/// previous generation, so each `HierarchySnapshot` can carry a
/// shared immutable view and snapshot readers stay lock-free.
class ReachabilityIndex {
 public:
  using ClassId = uint32_t;
  /// Class of unlabeled non-root nodes: pure pass-through structure,
  /// folded away (they never seed a propagated mode).
  static constexpr ClassId kInteriorClass = UINT32_MAX;

  /// One group of the compressed label of a node: `count` hierarchy
  /// paths of length `dis` from members of class `cls` down to the
  /// node. Sorted by (cls, dis) within a label; counts saturate.
  struct ProfileEntry {
    ClassId cls = 0;
    uint32_t dis = 0;
    uint64_t count = 0;
  };

  /// One supernode of the summary DAG.
  struct ClassInfo {
    /// The packed explicit row shared by every member (empty for the
    /// unlabeled-root class).
    std::span<const uint64_t> row;
    bool is_root = false;
    /// Members currently assigned (0 for a class abandoned by
    /// incremental row churn; kept so older labels stay decodable).
    size_t member_count = 0;
  };

  /// Size/health counters for exposition and tests.
  struct IndexStats {
    bool ready = false;
    bool two_hop_ready = false;
    size_t supernodes = 0;       ///< Classes with at least one member.
    size_t folded_nodes = 0;     ///< Interior nodes (no class of their own).
    size_t label_entries = 0;    ///< Profile pool size.
    size_t label_bytes = 0;      ///< Profile + 2-hop label footprint.
    size_t two_hop_entries = 0;  ///< 2-hop pool size (in + out).
  };

  /// \brief Full build against one (hierarchy, matrix) generation.
  ///
  /// `acm_epoch` is the matrix epoch the rows were extracted at; the
  /// query layer compares it (and `dag_generation`) before trusting
  /// the index. `rows` lists every labeled subject (unlabeled subjects
  /// are implied). Never fails: on budget breach the returned index
  /// reports `ready() == false` and callers fall back.
  static std::shared_ptr<const ReachabilityIndex> Build(
      const Dag& dag, uint64_t acm_epoch,
      std::span<const ReachLabeledRow> rows,
      const ReachabilityOptions& options = {});

  /// \brief Derives the next index generation from `previous`,
  /// recomputing only the affected scope.
  ///
  /// `affected` must contain every node whose ancestor set or own row
  /// may have changed, *closed under hierarchy descendants* — exactly
  /// the sets `Dag::InsertEdge`/`EraseEdge` report and
  /// `Dag::DescendantsOf(subject)` yields for a row edit. Nodes with
  /// ids at or beyond the previous generation's node count are
  /// implicitly affected (they are new). `changed_rows` carries the
  /// new packed rows of subjects whose explicit entries changed (an
  /// empty row = now unlabeled).
  ///
  /// Profile labels of unaffected nodes are copied verbatim; the
  /// boolean-reachability structures are reused as-is when the
  /// hierarchy itself is unchanged (row-only churn, the common case)
  /// and rebuilt otherwise — they are independent of the matrix.
  static std::shared_ptr<const ReachabilityIndex> RebuildIncremental(
      const Dag& dag, uint64_t acm_epoch,
      const std::shared_ptr<const ReachabilityIndex>& previous,
      std::span<const NodeId> affected,
      std::span<const ReachLabeledRow> changed_rows);

  /// False when a build budget tripped: the profile labels are absent
  /// and only `Reaches`/class metadata may be consulted.
  bool ready() const { return ready_; }

  /// The `Dag::generation()` / matrix epoch this index describes.
  uint64_t dag_generation() const { return dag_generation_; }
  uint64_t acm_epoch() const { return acm_epoch_; }
  size_t node_count() const { return class_of_.size(); }

  /// Class of node `v`, or `kInteriorClass` for folded interiors.
  ClassId class_of(NodeId v) const { return class_of_[v]; }
  bool is_root(NodeId v) const;

  size_t class_count() const { return classes_.size(); }
  ClassInfo class_info(ClassId c) const {
    const ClassData& d = classes_[c];
    return ClassInfo{{d.row.data(), d.row.size()}, d.is_root, d.members};
  }

  /// Compressed label of node `v` (requires `ready()`).
  std::span<const ProfileEntry> label(NodeId v) const {
    return {label_pool_.data() + label_begin_[v],
            label_end_[v] - label_begin_[v]};
  }

  /// \brief Exact hierarchy reachability: true iff a directed
  /// membership path `a -> ... -> b` exists (or `a == b`).
  ///
  /// O(|label|) sorted-set intersection when the 2-hop labels are
  /// built; otherwise an interval/topological-position filtered DFS
  /// (exact, counted by `ucr_reach_traversal_fallbacks_total`).
  /// Thread-safe; the fallback uses thread-local scratch.
  bool Reaches(NodeId a, NodeId b) const;

  IndexStats stats() const;

  /// Summary-DAG edges between classes: `(from, to) -> distinct
  /// (distance, count) groups`, aggregated over the member profiles of
  /// `to`. Derived on demand (exposition/tests, not the query path).
  std::map<std::pair<ClassId, ClassId>, size_t> SummaryEdges() const;

 private:
  ReachabilityIndex() = default;

  struct ClassData {
    std::vector<uint64_t> row;
    bool is_root = false;
    size_t members = 0;
  };

  /// (row, is_root) -> ClassId interning key. Build-time only.
  using ClassKey = std::pair<std::vector<uint64_t>, bool>;

  ClassId InternClass(std::vector<uint64_t> row, bool root);
  void AssignClasses(const Dag& dag, std::span<const ReachLabeledRow> rows);
  /// Recomputes profile labels. With `affected == nullptr` the whole
  /// hierarchy is labeled in topological order; otherwise only nodes
  /// flagged in the bitmap are recomputed (in a Kahn order over the
  /// affected-induced sub-graph) and every other segment is copied
  /// verbatim from `prev`. Returns false on budget breach.
  bool ComputeLabels(const Dag& dag, const std::vector<uint8_t>* affected,
                     const ReachabilityIndex* prev);
  void BuildReachSupport(const Dag& dag, const ReachabilityOptions& options);
  void PublishMetrics() const;

  bool ready_ = false;
  uint64_t dag_generation_ = 0;
  uint64_t acm_epoch_ = 0;
  ReachabilityOptions options_;

  std::vector<ClassData> classes_;
  std::map<ClassKey, ClassId> class_ids_;
  std::vector<ClassId> class_of_;

  // Profile pool; per-node [begin, end) segments. Segments are laid
  // out in whatever order the (possibly scoped) label pass visited
  // nodes, so the two offset arrays are independent — not a CSR.
  std::vector<size_t> label_begin_;
  std::vector<size_t> label_end_;
  std::vector<ProfileEntry> label_pool_;

  // Boolean-reachability support: a private copy of the child
  // adjacency (the index outlives the mutable `Dag` it was built
  // from), a topological position per node (necessary-condition
  // filter), DFS-forest intervals over child edges
  // (sufficient-condition fast accept), and optional exact 2-hop
  // labels (landmark ranks, sorted ascending per node).
  std::vector<size_t> adj_offsets_;
  std::vector<NodeId> adj_children_;
  std::vector<uint32_t> topo_pos_;
  std::vector<uint32_t> ivl_begin_;
  std::vector<uint32_t> ivl_end_;
  bool two_hop_ready_ = false;
  std::vector<uint32_t> rank_of_;  ///< node -> landmark rank.
  std::vector<size_t> in_offsets_;
  std::vector<size_t> out_offsets_;
  std::vector<uint32_t> in_pool_;
  std::vector<uint32_t> out_pool_;
};

}  // namespace ucr::graph

#endif  // UCR_GRAPH_REACHABILITY_H_
