#include "obs/audit_log.h"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace ucr::obs {

std::string_view AuditEventTypeName(AuditEventType type) {
  switch (type) {
    case AuditEventType::kGrant: return "grant";
    case AuditEventType::kDeny: return "deny";
    case AuditEventType::kRevoke: return "revoke";
    case AuditEventType::kAddMember: return "add_member";
    case AuditEventType::kRemoveMember: return "remove_member";
    case AuditEventType::kStrategyChange: return "strategy_change";
    case AuditEventType::kCacheClear: return "cache_clear";
    case AuditEventType::kEpochBump: return "epoch_bump";
    case AuditEventType::kAccessDecision: return "access_decision";
    case AuditEventType::kSlowQuery: return "slow_query";
    case AuditEventType::kShadowMismatch: return "shadow_mismatch";
    case AuditEventType::kHealthTransition: return "health_transition";
    case AuditEventType::kWalCommit: return "wal_commit";
  }
  return "unknown";
}

namespace {

/// JSON string escaping for the free-form detail field (quotes,
/// backslashes, control characters).
void AppendEscaped(std::ostringstream& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

}  // namespace

std::string AuditEventToJson(const AuditEvent& e) {
  std::ostringstream out;
  out << "{\"seq\":" << e.sequence << ",\"ts_unix_ns\":" << e.wall_ns
      << ",\"type\":\"" << AuditEventTypeName(e.type) << "\"";
  if (e.has_ids) {
    out << ",\"subject\":" << e.subject << ",\"object\":" << e.object
        << ",\"right\":" << e.right;
  }
  if (e.has_decision) {
    out << ",\"granted\":" << (e.granted ? "true" : "false");
  }
  if (e.has_strategy) {
    out << ",\"strategy_index\":" << static_cast<int>(e.strategy_index);
  }
  if (e.latency_ns != 0) out << ",\"latency_ns\":" << e.latency_ns;
  if (e.value != 0) out << ",\"value\":" << e.value;
  if (e.detail[0] != '\0') {
    out << ",\"detail\":\"";
    AppendEscaped(out, e.detail);
    out << "\"";
  }
  out << "}";
  return out.str();
}

#if UCR_METRICS_ENABLED

namespace {

uint64_t WallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

struct AuditMetrics {
  Counter& events = Registry::Global().GetCounter(
      "ucr_audit_events_total", "Audit events accepted into the ring");
  Counter& dropped = Registry::Global().GetCounter(
      "ucr_audit_dropped_total",
      "Audit events dropped because the ring was full");
  Counter& written = Registry::Global().GetCounter(
      "ucr_audit_written_total", "Audit events rendered to sinks");
  Counter& sink_errors = Registry::Global().GetCounter(
      "ucr_audit_sink_errors_total",
      "Audit sink I/O failures (open, write, rotation rename)");
};

AuditMetrics& GetAuditMetrics() {
  static AuditMetrics* metrics = new AuditMetrics();
  return *metrics;
}

}  // namespace

AuditSink::~AuditSink() = default;

RotatingFileSink::RotatingFileSink(std::string path, size_t max_bytes,
                                   int max_backups, bool fsync_on_flush)
    : path_(std::move(path)),
      max_bytes_(max_bytes),
      max_backups_(max_backups < 1 ? 1 : max_backups),
      fsync_on_flush_(fsync_on_flush) {
  OpenFile();
}

RotatingFileSink::~RotatingFileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

void RotatingFileSink::NoteError(const char* what) {
  ++errors_;
  GetAuditMetrics().sink_errors.Inc();
  if (!reported_failed_) {
    reported_failed_ = true;
    std::fprintf(stderr,
                 "ucr: audit sink %s failed for '%s' (%s); diverting audit "
                 "lines to stderr\n",
                 what, path_.c_str(), std::strerror(errno));
  }
}

void RotatingFileSink::OpenFile() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    NoteError("open");
    return;
  }
  const long pos = std::ftell(file_);
  bytes_ = pos > 0 ? static_cast<size_t>(pos) : 0;
  reported_failed_ = false;
}

void RotatingFileSink::Rotate() {
  std::fclose(file_);
  file_ = nullptr;
  // path.N-1 -> path.N, ..., path -> path.1; the oldest falls off.
  // The remove of the retiring backup may legitimately find nothing;
  // every rename of an *existing* file that fails is a real error
  // (ENOENT for a gap in the backup chain is expected and skipped).
  std::remove((path_ + "." + std::to_string(max_backups_)).c_str());
  for (int i = max_backups_ - 1; i >= 1; --i) {
    if (std::rename((path_ + "." + std::to_string(i)).c_str(),
                    (path_ + "." + std::to_string(i + 1)).c_str()) != 0 &&
        errno != ENOENT) {
      NoteError("rename");
    }
  }
  if (std::rename(path_.c_str(), (path_ + ".1").c_str()) != 0) {
    // The active file definitely existed; a failed rename here means
    // the rotation did not happen. Reopen and keep appending to the
    // oversized file — losing the size bound beats losing the trail.
    NoteError("rename");
  }
  OpenFile();
  ++rotations_;
}

void RotatingFileSink::Write(std::string_view line) {
  if (file_ == nullptr) {
    // Retry the open each line: the sink self-heals once the path is
    // writable (disk freed, directory recreated). Until then the
    // event still reaches an operator via stderr instead of vanishing.
    OpenFile();
    if (file_ == nullptr) {
      fallback_.Write(line);
      return;
    }
  }
  if (bytes_ > 0 && bytes_ + line.size() + 1 > max_bytes_) Rotate();
  if (file_ == nullptr) {
    fallback_.Write(line);
    return;
  }
  // §14 EINTR audit: the wall profiler's SIGPROF lands on the writer
  // thread too. A signal mid-write can leave fwrite short with the
  // stream's error flag set; retry the remainder instead of silently
  // truncating the event line.
  size_t off = 0;
  bool failed = false;
  while (off < line.size()) {
    const size_t n =
        std::fwrite(line.data() + off, 1, line.size() - off, file_);
    off += n;
    if (n == 0 || std::ferror(file_)) {
      if (errno == EINTR) {
        std::clearerr(file_);
        continue;
      }
      failed = true;
      break;
    }
  }
  if (!failed && std::fputc('\n', file_) == EOF) failed = true;
  if (failed) {
    // Count it, close the broken stream, and divert this line; the
    // next Write retries the open.
    NoteError("write");
    std::fclose(file_);
    file_ = nullptr;
    fallback_.Write(line);
    return;
  }
  bytes_ += line.size() + 1;
}

void RotatingFileSink::Flush() {
  if (file_ == nullptr) return;
  if (std::fflush(file_) != 0) {
    NoteError("flush");
    return;
  }
  if (fsync_on_flush_) {
    const int fd = ::fileno(file_);
    if (fd >= 0) {
      int rc;
      do {
        rc = ::fsync(fd);
      } while (rc != 0 && errno == EINTR);
      if (rc != 0) NoteError("fsync");
    }
  }
}

void StderrSink::Write(std::string_view line) {
  std::fwrite(line.data(), 1, line.size(), stderr);
  std::fputc('\n', stderr);
}

void StderrSink::Flush() { std::fflush(stderr); }

AuditLog& AuditLog::Global() {
  // Leaked on purpose: producers may still emit during static
  // destruction of other translation units.
  static AuditLog* global = new AuditLog();
  return *global;
}

AuditLog::AuditLog() {
  for (size_t i = 0; i < kRingCapacity; ++i) {
    ring_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool AuditLog::Start(AuditLogOptions options) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load(std::memory_order_relaxed)) return false;
  sinks_ = std::move(options.sinks);
  g_slow_ns.store(options.slow_query_threshold_ns, std::memory_order_relaxed);
  g_log_decisions.store(options.log_sampled_decisions,
                        std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  writer_ = std::thread([this] { WriterLoop(); });
  g_enabled.store(true, std::memory_order_release);
  return true;
}

void AuditLog::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_.load(std::memory_order_relaxed)) return;
  // Close the front door first so the final drain converges.
  g_enabled.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> wake(wake_mu_);
    running_.store(false, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  writer_.join();
  DrainOnce();  // Writer is gone; drain the tail inline.
  for (auto& sink : sinks_) sink->Flush();
  sinks_.clear();
  g_slow_ns.store(0, std::memory_order_relaxed);
  g_log_decisions.store(false, std::memory_order_relaxed);
}

bool AuditLog::Emit(const AuditEvent& event) {
  if (!Enabled()) return false;
  uint64_t pos = head_.load(std::memory_order_relaxed);
  for (;;) {
    Slot& slot = ring_[pos & (kRingCapacity - 1)];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    const int64_t dif = static_cast<int64_t>(seq) - static_cast<int64_t>(pos);
    if (dif == 0) {
      if (head_.compare_exchange_weak(pos, pos + 1,
                                      std::memory_order_relaxed)) {
        slot.event = event;
        slot.event.sequence = pos;
        if (slot.event.wall_ns == 0) slot.event.wall_ns = WallNs();
        slot.seq.store(pos + 1, std::memory_order_release);
        emitted_.fetch_add(1, std::memory_order_relaxed);
        GetAuditMetrics().events.Inc();
        return true;
      }
    } else if (dif < 0) {
      // Ring full: the consumer is behind by a whole lap. Backpressure
      // policy is drop-and-count — auditing must never block serving.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      GetAuditMetrics().dropped.Inc();
      return false;
    } else {
      pos = head_.load(std::memory_order_relaxed);
    }
  }
}

size_t AuditLog::DrainOnce() {
  // All the heap traffic of rendering happens on this thread, inside
  // an exclusion scope: deliberate observability work, off the
  // hot-path allocation budget.
  ScopedAllocExclusion off_budget;
  size_t drained = 0;
  for (;;) {
    Slot& slot = ring_[tail_ & (kRingCapacity - 1)];
    const uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<int64_t>(seq) - static_cast<int64_t>(tail_ + 1) < 0) {
      break;  // Not yet published.
    }
    const AuditEvent event = slot.event;
    slot.seq.store(tail_ + kRingCapacity, std::memory_order_release);
    ++tail_;
    ++drained;
    const std::string line = AuditEventToJson(event);
    for (auto& sink : sinks_) sink->Write(line);
    written_.fetch_add(1, std::memory_order_relaxed);
    GetAuditMetrics().written.Inc();
  }
  return drained;
}

void AuditLog::WriterLoop() {
  while (true) {
    const size_t drained = DrainOnce();
    std::unique_lock<std::mutex> wake(wake_mu_);
    if (!running_.load(std::memory_order_relaxed)) return;
    if (drained == 0) {
      wake_cv_.wait_for(wake, std::chrono::milliseconds(5));
    }
  }
}

void AuditLog::Flush() {
  if (!running_.load(std::memory_order_relaxed)) return;
  const uint64_t target = head_.load(std::memory_order_relaxed);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  // Dropped events never claim a ring position, so the writer's
  // written count alone converges on the claim cursor.
  while (written_.load(std::memory_order_relaxed) < target) {
    wake_cv_.notify_all();
    if (std::chrono::steady_clock::now() > deadline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  for (auto& sink : sinks_) sink->Flush();
}

#else  // !UCR_METRICS_ENABLED

AuditLog& AuditLog::Global() {
  static AuditLog* global = new AuditLog();
  return *global;
}

#endif  // UCR_METRICS_ENABLED

}  // namespace ucr::obs
