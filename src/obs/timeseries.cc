#include "obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace ucr::obs {

TimeSeriesSampler& TimeSeriesSampler::Global() {
  // Leaked on purpose, like Registry::Global: tear-down order against
  // detached scrapers is unknowable.
  static TimeSeriesSampler* global = new TimeSeriesSampler();
  return *global;
}

TimeSeriesSampler::~TimeSeriesSampler() {
  // Only non-global instances (tests) ever get here; by then no
  // scraper can hold a Series pointer.
  Stop();
  for (auto& slot : slots_) {
    delete slot.exchange(nullptr, std::memory_order_relaxed);
  }
}

uint64_t BucketDeltaQuantile(
    const std::array<uint64_t, Histogram::kBuckets>& deltas, double q) {
  uint64_t total = 0;
  for (const uint64_t d : deltas) total += d;
  if (total == 0) return 0;
  // Rank of the q-quantile observation, 1-based, nearest-rank method.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(total) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < Histogram::kBuckets; ++i) {
    seen += deltas[i];
    if (seen >= rank) {
      // The +Inf bucket has no finite bound; report the largest finite
      // one (values that large saturate the scale anyway).
      if (i == Histogram::kBuckets - 1) {
        return Histogram::BucketUpperBound(Histogram::kBuckets - 2);
      }
      return Histogram::BucketUpperBound(i);
    }
  }
  return Histogram::BucketUpperBound(Histogram::kBuckets - 2);
}

#if UCR_METRICS_ENABLED

namespace {

uint64_t WallMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

struct SamplerMetrics {
  Counter& ticks;
  Histogram& scrape_ns;
  Gauge& series;
};

SamplerMetrics& GetSamplerMetrics() {
  static SamplerMetrics* metrics = new SamplerMetrics{
      Registry::Global().GetCounter("ucr_timeseries_ticks_total",
                                    "Completed time-series scrape ticks"),
      Registry::Global().GetHistogram(
          "ucr_timeseries_scrape_ns",
          "Wall time of one registry scrape tick (ns)"),
      Registry::Global().GetGauge("ucr_timeseries_series",
                                  "Metrics retained as time series")};
  return *metrics;
}

}  // namespace

bool TimeSeriesSampler::Start(Options options, std::string* error) {
  if (running_.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "sampler already running";
    return false;
  }
  if (options.interval_ms == 0 || options.tier0_capacity == 0 ||
      options.tier1_capacity == 0 || options.tier1_stride == 0) {
    if (error != nullptr) *error = "sampler options must be non-zero";
    return false;
  }
  options_ = options;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void TimeSeriesSampler::Stop() {
  if (!running_.exchange(false, std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void TimeSeriesSampler::Loop() {
  // The whole scrape loop is deliberate observability work: its heap
  // traffic (Collect, directory growth) must not count against the
  // query hot path's 0-alloc budget.
  ScopedAllocExclusion alloc_exclusion;
  std::unique_lock<std::mutex> lock(wake_mu_);
  while (running_.load(std::memory_order_relaxed)) {
    lock.unlock();
    Tick();
    lock.lock();
    wake_cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                      [this] {
                        return !running_.load(std::memory_order_relaxed);
                      });
  }
}

void TimeSeriesSampler::PushPoint(TierRing& ring, const Point& point) {
  const uint64_t w = ring.written.load(std::memory_order_relaxed);
  AtomicPoint& slot = ring.points[w % ring.points.size()];
  // Invalidate first so a concurrent reader of the oldest point sees a
  // zero tick (and retries/skips) instead of torn fields.
  slot.tick.store(0, std::memory_order_release);
  slot.wall_ms.store(point.wall_ms, std::memory_order_relaxed);
  slot.delta.store(point.delta, std::memory_order_relaxed);
  slot.value.store(point.value, std::memory_order_relaxed);
  slot.count_delta.store(point.count_delta, std::memory_order_relaxed);
  slot.sum_delta.store(point.sum_delta, std::memory_order_relaxed);
  slot.p50.store(point.p50, std::memory_order_relaxed);
  slot.p99.store(point.p99, std::memory_order_relaxed);
  slot.tick.store(point.tick, std::memory_order_release);
  ring.written.store(w + 1, std::memory_order_release);
}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::ReadRing(
    const TierRing& ring, size_t n) {
  std::vector<Point> out;
  const uint64_t w = ring.written.load(std::memory_order_acquire);
  const size_t capacity = ring.points.size();
  const size_t available = static_cast<size_t>(
      std::min<uint64_t>(w, static_cast<uint64_t>(capacity)));
  const size_t take = std::min(n, available);
  out.reserve(take);
  for (uint64_t i = w - take; i < w; ++i) {
    const AtomicPoint& slot = ring.points[i % capacity];
    Point p;
    p.tick = slot.tick.load(std::memory_order_acquire);
    if (p.tick == 0) continue;  // Empty or mid-overwrite: skip.
    p.wall_ms = slot.wall_ms.load(std::memory_order_relaxed);
    p.delta = slot.delta.load(std::memory_order_relaxed);
    p.value = slot.value.load(std::memory_order_relaxed);
    p.count_delta = slot.count_delta.load(std::memory_order_relaxed);
    p.sum_delta = slot.sum_delta.load(std::memory_order_relaxed);
    p.p50 = slot.p50.load(std::memory_order_relaxed);
    p.p99 = slot.p99.load(std::memory_order_relaxed);
    // If the writer lapped us mid-read, the tick word changed (it goes
    // through 0 first); drop the torn point.
    if (slot.tick.load(std::memory_order_acquire) != p.tick) continue;
    out.push_back(p);
  }
  return out;
}

void TimeSeriesSampler::Tick() {
  // TickOnceForTesting runs on the caller's thread; exclude its scrape
  // allocations there too (no-op when already under the loop's scope).
  ScopedAllocExclusion alloc_exclusion;
  const uint64_t t0 = NowNs();
  const uint64_t tick = ticks_.load(std::memory_order_relaxed) + 1;
  const uint64_t wall_ms = WallMs();
  const std::vector<Registry::CollectedMetric> metrics =
      Registry::Global().Collect();
  for (const Registry::CollectedMetric& m : metrics) {
    Series* series = nullptr;
    auto it = index_.find(m.name);
    if (it != index_.end()) {
      series = it->second;
    } else {
      const size_t count = series_count_.load(std::memory_order_relaxed);
      if (count >= kMaxSeries) continue;  // Directory full: ignore.
      series = new Series(m.name, m.kind, options_.tier0_capacity,
                          options_.tier1_capacity);
      index_.emplace(series->name, series);
      slots_[count].store(series, std::memory_order_relaxed);
      // Publish after the slot pointer so lock-free readers only ever
      // see constructed series.
      series_count_.store(count + 1, std::memory_order_release);
    }
    const bool tier1_due = (tick % options_.tier1_stride) == 0;
    if (!series->primed) {
      // First sight: record the baseline, emit nothing — the first
      // interval has no defined delta and a cumulative-since-start
      // spike would poison every rate rule.
      series->primed = true;
      series->prev_counter[0] = series->prev_counter[1] = m.counter;
      series->prev_hist[0] = series->prev_hist[1] = m.histogram;
      if (series->kind == 1) {
        Point p;
        p.tick = tick;
        p.wall_ms = wall_ms;
        p.value = m.gauge;
        PushPoint(series->tier0, p);
        if (tier1_due) PushPoint(series->tier1, p);
      }
      continue;
    }
    for (int tier = 0; tier < 2; ++tier) {
      if (tier == 1 && !tier1_due) continue;
      Point p;
      p.tick = tick;
      p.wall_ms = wall_ms;
      switch (series->kind) {
        case 0:
          p.delta = m.counter - series->prev_counter[tier];
          series->prev_counter[tier] = m.counter;
          break;
        case 1:
          p.value = m.gauge;
          break;
        default: {
          const Histogram::Snapshot& prev = series->prev_hist[tier];
          std::array<uint64_t, Histogram::kBuckets> deltas{};
          for (size_t i = 0; i < Histogram::kBuckets; ++i) {
            deltas[i] = m.histogram.counts[i] - prev.counts[i];
          }
          p.count_delta = m.histogram.count - prev.count;
          p.sum_delta = m.histogram.sum - prev.sum;
          p.p50 = BucketDeltaQuantile(deltas, 0.50);
          p.p99 = BucketDeltaQuantile(deltas, 0.99);
          series->prev_hist[tier] = m.histogram;
          break;
        }
      }
      PushPoint(tier == 0 ? series->tier0 : series->tier1, p);
    }
  }
  ticks_.store(tick, std::memory_order_relaxed);
  SamplerMetrics& sm = GetSamplerMetrics();
  sm.ticks.Inc();
  sm.series.Set(
      static_cast<int64_t>(series_count_.load(std::memory_order_relaxed)));
  sm.scrape_ns.Observe(NowNs() - t0);
}

const TimeSeriesSampler::Series* TimeSeriesSampler::FindSeries(
    std::string_view metric) const {
  const size_t count = series_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    const Series* series = slots_[i].load(std::memory_order_relaxed);
    if (series != nullptr && series->name == metric) return series;
  }
  return nullptr;
}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::Recent(
    std::string_view metric, size_t n) const {
  const Series* series = FindSeries(metric);
  if (series == nullptr) return {};
  return ReadRing(series->tier0, n);
}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::RecentTier1(
    std::string_view metric, size_t n) const {
  const Series* series = FindSeries(metric);
  if (series == nullptr) return {};
  return ReadRing(series->tier1, n);
}

int TimeSeriesSampler::SeriesKind(std::string_view metric) const {
  const Series* series = FindSeries(metric);
  return series == nullptr ? -1 : series->kind;
}

std::string TimeSeriesSampler::RenderJson() const {
  std::ostringstream out;
  out << "{\"running\":" << (running() ? "true" : "false")
      << ",\"interval_ms\":" << options_.interval_ms
      << ",\"ticks\":" << ticks_total() << ",\"tiers\":[{\"stride\":1"
      << ",\"capacity\":" << options_.tier0_capacity
      << "},{\"stride\":" << options_.tier1_stride
      << ",\"capacity\":" << options_.tier1_capacity << "}],\"series\":{";
  const double tier0_s = static_cast<double>(options_.interval_ms) / 1000.0;
  const double tier1_s = tier0_s * static_cast<double>(options_.tier1_stride);
  const size_t count = series_count_.load(std::memory_order_acquire);
  bool first_series = true;
  for (size_t i = 0; i < count; ++i) {
    const Series* series = slots_[i].load(std::memory_order_relaxed);
    if (series == nullptr) continue;
    out << (first_series ? "" : ",") << "\"" << series->name << "\":{";
    first_series = false;
    switch (series->kind) {
      case 0:
        out << "\"kind\":\"counter\"";
        break;
      case 1:
        out << "\"kind\":\"gauge\"";
        break;
      default:
        out << "\"kind\":\"histogram\"";
        break;
    }
    for (int tier = 0; tier < 2; ++tier) {
      const TierRing& ring = tier == 0 ? series->tier0 : series->tier1;
      const double interval_s = tier == 0 ? tier0_s : tier1_s;
      out << ",\"tier" << tier << "\":[";
      const std::vector<Point> points = ReadRing(ring, ring.points.size());
      bool first_point = true;
      for (const Point& p : points) {
        out << (first_point ? "" : ",") << "{\"tick\":" << p.tick
            << ",\"wall_ms\":" << p.wall_ms;
        first_point = false;
        switch (series->kind) {
          case 0:
            out << ",\"delta\":" << p.delta << ",\"rate\":"
                << static_cast<double>(p.delta) / interval_s;
            break;
          case 1:
            out << ",\"value\":" << p.value;
            break;
          default:
            out << ",\"count_delta\":" << p.count_delta
                << ",\"sum_delta\":" << p.sum_delta << ",\"p50\":" << p.p50
                << ",\"p99\":" << p.p99;
            break;
        }
        out << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << "}}";
  return out.str();
}

void TimeSeriesSampler::ResetForTesting() {
  // The caller guarantees no sampler thread and no concurrent scraper
  // (see the header contract), so the Series objects can be freed.
  series_count_.store(0, std::memory_order_relaxed);
  for (auto& slot : slots_) {
    delete slot.exchange(nullptr, std::memory_order_relaxed);
  }
  index_.clear();
  ticks_.store(0, std::memory_order_relaxed);
}

#else  // !UCR_METRICS_ENABLED

bool TimeSeriesSampler::Start(Options options, std::string* error) {
  options_ = options;
  if (error != nullptr) *error = "instrumentation compiled out (UCR_METRICS=OFF)";
  return false;
}

void TimeSeriesSampler::Stop() {}

void TimeSeriesSampler::Loop() {}

void TimeSeriesSampler::Tick() {}

void TimeSeriesSampler::PushPoint(TierRing&, const Point&) {}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::ReadRing(
    const TierRing&, size_t) {
  return {};
}

const TimeSeriesSampler::Series* TimeSeriesSampler::FindSeries(
    std::string_view) const {
  return nullptr;
}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::Recent(
    std::string_view, size_t) const {
  return {};
}

std::vector<TimeSeriesSampler::Point> TimeSeriesSampler::RecentTier1(
    std::string_view, size_t) const {
  return {};
}

int TimeSeriesSampler::SeriesKind(std::string_view) const { return -1; }

std::string TimeSeriesSampler::RenderJson() const {
  return "{\"running\":false,\"ticks\":0,\"series\":{}}";
}

void TimeSeriesSampler::ResetForTesting() {}

#endif  // UCR_METRICS_ENABLED

}  // namespace ucr::obs
